// Benchmarks regenerating the paper's evaluation artifacts. Each Benchmark
// function corresponds to one table or figure; `cmd/ir-bench` produces the
// full paper-formatted rows over all fifteen applications, while these
// benchmarks time the same code paths on a representative application
// subset so that `go test -bench=.` stays fast.
//
//	BenchmarkTable1MemoryDiff   §5.2   identity of re-execution
//	BenchmarkTable2Crasher      §5.2.1 race reproduction search
//	BenchmarkTable3Overhead     §5.3   recording overhead by system
//	BenchmarkFigure5Detectors   §5.4.2 detector overhead vs ASan
//	BenchmarkDetectionTable     §5.4.1 bug-corpus effectiveness
//	BenchmarkBatchReplay        offline replay throughput by worker count
package ireplayer_test

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/record"
	"repro/internal/tir"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// benchApps is the representative subset: one float-compute app, the
// lock-rate extreme, the branch-density extreme, an IO-bound app, and the
// allocation-heavy pipeline.
var benchApps = []string{"blackscholes", "fluidanimate", "x264", "aget", "dedup"}

func specFor(b *testing.B, name string, scale float64) workloads.Spec {
	b.Helper()
	s, ok := workloads.ByName(name)
	if !ok {
		b.Fatalf("unknown app %s", name)
	}
	s.Iters = int(float64(s.Iters) * scale)
	if s.Iters < 3 {
		s.Iters = 3
	}
	return s
}

func BenchmarkTable1MemoryDiff(b *testing.B) {
	for _, name := range []string{"swaptions", "pfscan"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := bench.Table1([]workloads.Spec{specFor(b, name, 0.15)}, 1)
				if err != nil {
					b.Fatal(err)
				}
				if rows[0].IR != 0 {
					b.Fatalf("IR diff = %.3f%%, identity violated", rows[0].IR)
				}
			}
		})
	}
}

func BenchmarkTable2Crasher(b *testing.B) {
	var crashes, firstTry, failures int
	for i := 0; i < b.N; i++ {
		res, err := bench.Table2(5, workloads.DefaultCrasher())
		if err != nil {
			b.Fatal(err)
		}
		crashes += res.Crashes
		firstTry += res.Buckets[0]
		failures += res.Failures
	}
	if crashes > 0 {
		b.ReportMetric(100*float64(firstTry)/float64(crashes), "%first-replay")
		b.ReportMetric(100*float64(failures)/float64(crashes), "%unreproduced")
	}
	// The paper's Table 2 has a >=4-attempt tail (0.007%); with a bounded
	// search a small unreproduced tail is reported, not fatal — but it must
	// stay a tail.
	if crashes > 0 && failures*10 > crashes {
		b.Fatalf("unreproduced tail too large: %d/%d", failures, crashes)
	}
}

func BenchmarkTable3Overhead(b *testing.B) {
	systems := []bench.System{bench.SysBaseline, bench.SysIRAlloc, bench.SysIReplayer, bench.SysCLAP, bench.SysRR}
	for _, name := range benchApps {
		for _, sys := range systems {
			b.Run(fmt.Sprintf("%s/%v", name, sys), func(b *testing.B) {
				s := specFor(b, name, 0.15)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := bench.RunOnce(s, sys, int64(i)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkFigure5Detectors(b *testing.B) {
	systems := []bench.System{bench.SysIReplayer, bench.SysIRDetect, bench.SysASan}
	for _, name := range benchApps {
		for _, sys := range systems {
			b.Run(fmt.Sprintf("%s/%v", name, sys), func(b *testing.B) {
				s := specFor(b, name, 0.15)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := bench.RunOnce(s, sys, int64(i)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkBatchReplay measures parallel offline replay: one trace is
// recorded up front, then each iteration fans eight re-replays of it across
// the worker pool. Comparing ns/op across the workers sub-benchmarks shows
// the throughput scaling of the sharded batch replayer (bounded by
// GOMAXPROCS on small hosts); events/s reports absolute replay throughput.
func BenchmarkBatchReplay(b *testing.B) {
	spec := specFor(b, "streamcluster", 0.15)
	opts := core.Options{Seed: 21}
	mod, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	tr := &trace.Trace{Header: trace.Header{
		App: spec.Name, ModuleHash: tir.Fingerprint(mod),
	}}
	recOpts := opts
	recOpts.TraceSink = func(ep *record.EpochLog) error {
		tr.Epochs = append(tr.Epochs, ep)
		return nil
	}
	rt, err := core.New(mod, recOpts)
	if err != nil {
		b.Fatal(err)
	}
	spec.SetupOS(rt.OS())
	rep, err := rt.Run()
	if err != nil {
		b.Fatal(err)
	}
	tr.Summary = &trace.Summary{Exit: rep.Exit, Output: rep.Output}

	job := trace.Job{
		Name: spec.Name, Module: mod, Handle: trace.OpenTrace(tr), Opts: core.Options{Seed: 21},
		Setup: func(rt *core.Runtime) error { spec.SetupOS(rt.OS()); return nil },
	}
	const fan = 8
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var events int64
			for i := 0; i < b.N; i++ {
				results, stats := trace.ReplayBatch(trace.Fanout(job, fan), workers)
				if stats.Failed != 0 {
					b.Fatalf("batch failed: %+v", results)
				}
				events += stats.Events
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

func BenchmarkDetectionTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.DetectionTable()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.Detected {
				b.Fatalf("%s escaped detection", r.Bug)
			}
		}
	}
}
