// Package ireplayer is a Go reproduction of "iReplayer: In-situ and
// Identical Record-and-Replay for Multithreaded Applications" (Liu,
// Silvestro, Wang, Tian, Liu — PLDI 2018).
//
// Programs under test are expressed in TIR (package internal/tir), a small
// register-based thread IR executed on checkpointable virtual CPUs, so that
// the paper's mechanisms — epoch checkpoints of thread contexts, in-situ
// rollback, identical replay via per-thread/per-variable event lists, and
// watchpoint-driven root-cause analysis — are implemented directly rather
// than approximated over goroutines (see DESIGN.md for the substitution
// argument).
//
// The package re-exports the runtime's public surface:
//
//	rt, err := ireplayer.New(module, ireplayer.Options{})
//	report, err := rt.Run()
//
// Tools hook epoch boundaries through Options.OnEpochEnd /
// Options.OnReplayMatched; the bundled detectors (internal/detect), the
// interactive debugger (internal/debug), the evaluation baselines
// (internal/baseline/...), and the synthesized applications
// (internal/workloads) all build on exactly this surface.
//
// Above the library sit the persistent trace layer (internal/trace: an
// indexed store of replayable recordings with random-access Handles —
// epoch ranges and checkpoints decode on demand, so consumers pay for the
// segments they touch, not the recordings they store), the replay-time
// analysis subsystem (internal/analysis), and the trace service
// (internal/sched + internal/server + cmd/ir-served), which serves one
// store to many clients over HTTP with scheduled, cancelable
// record/replay/analyze jobs. See docs/ARCHITECTURE.md for the subsystem
// map.
package ireplayer

import (
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/record"
	"repro/internal/tir"
)

// Runtime executes one TIR program under record-and-replay.
type Runtime = core.Runtime

// Options configures a Runtime.
type Options = core.Options

// Report summarizes a completed run.
type Report = core.Report

// Stats aggregates runtime counters.
type Stats = core.Stats

// Decision is a tool's verdict at an epoch boundary.
type Decision = core.Decision

// EpochEndInfo describes why an epoch ended.
type EpochEndInfo = core.EpochEndInfo

// StopReason explains an epoch boundary.
type StopReason = core.StopReason

// Epoch-boundary decisions.
const (
	// Proceed continues to the next epoch.
	Proceed = core.Proceed
	// Replay rolls back and re-executes the last epoch in-situ.
	Replay = core.Replay
	// Abort terminates the program.
	Abort = core.Abort
)

// Epoch-end reasons.
const (
	// StopLogFull: a preallocated event list was exhausted.
	StopLogFull = core.StopLogFull
	// StopIrrevocable: an irrevocable system call closed the epoch.
	StopIrrevocable = core.StopIrrevocable
	// StopProgramEnd: main returned.
	StopProgramEnd = core.StopProgramEnd
	// StopFault: a thread trapped (the SIGSEGV analogue).
	StopFault = core.StopFault
	// StopTool: a tool or user requested the boundary.
	StopTool = core.StopTool
)

// Module is a TIR program.
type Module = tir.Module

// NewModuleBuilder starts building a TIR program.
var NewModuleBuilder = tir.NewModuleBuilder

// New builds a runtime for a validated module.
func New(mod *Module, opts Options) (*Runtime, error) {
	return core.New(mod, opts)
}

// --- persistent traces and offline replay (internal/trace) ---

// EpochLog is one epoch's finalized event record, the unit Options.TraceSink
// receives at every epoch boundary and the unit offline replay consumes.
type EpochLog = record.EpochLog

// ThreadLog is one thread's slice of an epoch.
type ThreadLog = record.ThreadLog

// VarLog is one synchronization variable's slice of an epoch.
type VarLog = record.VarLog

// Fingerprint hashes a module's observable content; trace stores index
// recordings by it and offline replay refuses mismatched modules.
var Fingerprint = tir.Fingerprint

// PrepareReplay builds a runtime primed to re-execute a recorded epoch
// sequence from program start; populate the virtual OS (input files) before
// calling RunReplay on the result.
var PrepareReplay = core.PrepareReplay

// ReplayFromTrace loads a recorded epoch sequence and re-executes it
// through the divergence-checking replay path: PrepareReplay + optional OS
// setup + RunReplay.
var ReplayFromTrace = core.ReplayFromTrace

// Checkpoint is a persisted epoch-boundary checkpoint (trace format v2):
// the memory snapshot, allocator metadata, vCPU contexts, shadow
// synchronization state, and filesystem state the runtime captures at every
// epoch begin, exported so one long trace becomes independently replayable
// segments. Produce them with Options.CheckpointEvery/CheckpointSink;
// consume them with PrepareReplayAt.
type Checkpoint = core.Checkpoint

// PrepareReplayAt builds a runtime primed to resume a trace mid-way from a
// persisted checkpoint, replaying one segment of epochs with divergence
// retries bounded to the segment; when the next checkpoint is supplied, the
// segment's end memory image is verified byte-identical against it.
var PrepareReplayAt = core.PrepareReplayAt

// --- replay-time analysis (internal/analysis) ---

// Observer attaches a passive tool to an execution via Options.Observers;
// capability interfaces (core.SyncObserver, core.AccessObserver, ...) are
// discovered by assertion. The replay-time analyzers and the §4 detectors
// share this surface.
type Observer = core.Observer

// Analyzer is one pluggable replay-time analysis (race, leak, profile).
type Analyzer = analysis.Analyzer

// Finding is a machine-checkable analysis result.
type Finding = analysis.Finding

// NewRaceDetector builds the vector-clock happens-before data-race
// analyzer: it reports precise racing pairs (both access addresses, both
// call stacks) from a single re-execution of a stored trace.
var NewRaceDetector = analysis.NewRaceDetector

// NewLeakDetector builds the memory-leak analyzer: it diffs allocator state
// against conservative reachability scans and blames the leaking
// allocation site.
var NewLeakDetector = analysis.NewLeakDetector

// Analyze re-executes a recorded epoch sequence once with the given
// analyzers attached and collects their findings.
var Analyze = analysis.Run
