// Package hostrace reports whether the host Go race detector is active.
//
// vthreads are real goroutines and programs under test race on real byte
// slices by design (see internal/mem): a ground-truth racy workload is a
// genuine Go-level data race. Tests that deliberately run racy programs
// consult Enabled and skip under `go test -race`, so the race job checks
// the runtime's own synchronization — quiescence, rollback, observer
// dispatch, the trace store and worker pools — without tripping over races
// the corpus exists to contain.
package hostrace
