//go:build race

package hostrace

// Enabled reports that this binary was built with -race.
const Enabled = true
