package record

import (
	"reflect"
	"testing"
)

// TestKindStringRoundTrip: every defined kind must map to a distinct
// mnemonic and parse back to itself — the property trace tooling relies on
// when it prints and filters events.
func TestKindStringRoundTrip(t *testing.T) {
	kinds := []Kind{KMutexLock, KMutexTry, KCondWake, KBarrier, KCreate,
		KJoin, KExit, KSyscall, KBlockFetch}
	seen := map[string]Kind{}
	for _, k := range kinds {
		s := k.String()
		if prev, dup := seen[s]; dup {
			t.Fatalf("kinds %v and %v share mnemonic %q", prev, k, s)
		}
		seen[s] = k
		back, ok := ParseKind(s)
		if !ok || back != k {
			t.Fatalf("ParseKind(%q) = %v, %v; want %v", s, back, ok, k)
		}
	}
	// Unknown kinds format distinctly and do not parse.
	if s := Kind(200).String(); s != "kind(200)" {
		t.Fatalf("unknown kind formats as %q", s)
	}
	if _, ok := ParseKind("kind(200)"); ok {
		t.Fatal("unknown mnemonic must not parse")
	}
	if _, ok := ParseKind(""); ok {
		t.Fatal("empty mnemonic must not parse")
	}
}

// TestVarListOrderingInvariants: the per-variable list must preserve
// append order, expose it stably through Order/Owner, and replay it
// slot-by-slot through the turn cursor — the cross-thread ordering contract
// the trace encoder and offline replayer both depend on.
func TestVarListOrderingInvariants(t *testing.T) {
	l := NewVarList(8)
	tids := []int32{3, 0, 2, 0, 1}
	for i, tid := range tids {
		pos, full := l.Append(tid)
		if pos != int32(i) {
			t.Fatalf("append %d returned slot %d, want %d", tid, pos, i)
		}
		if full {
			t.Fatalf("list reported full at %d of %d", i+1, l.Cap())
		}
	}
	if got := l.Order(); !reflect.DeepEqual(got, tids) {
		t.Fatalf("Order() = %v, want %v", got, tids)
	}
	for i, tid := range tids {
		if l.Owner(int32(i)) != tid {
			t.Fatalf("Owner(%d) = %d, want %d", i, l.Owner(int32(i)), tid)
		}
	}
	// Turn cursor replays slots in recorded order, independently of the
	// record cursor.
	for i := range tids {
		if l.Turn() != int32(i) {
			t.Fatalf("turn = %d, want %d", l.Turn(), i)
		}
		l.AdvanceTurn()
	}
	l.ResetReplay()
	if l.Turn() != 0 {
		t.Fatal("ResetReplay must rewind the turn cursor")
	}
	if got := l.Order(); !reflect.DeepEqual(got, tids) {
		t.Fatal("ResetReplay must not disturb recorded order")
	}
}

// TestLoadedListsStartAtBeginning: lists rebuilt from a trace must hold the
// events verbatim with both cursors rewound.
func TestLoadedListsStartAtBeginning(t *testing.T) {
	evs := []Event{
		{Kind: KMutexLock, Var: 0x10, Pos: 0},
		{Kind: KSyscall, Aux: 5, Ret: 9, Pos: -1},
		{Kind: KExit, Pos: -1},
	}
	l := LoadThreadList(evs)
	if l.Len() != len(evs) || l.Replayed() {
		t.Fatalf("loaded list len=%d replayed=%v", l.Len(), l.Replayed())
	}
	if !reflect.DeepEqual(l.Events(), evs) {
		t.Fatalf("loaded events = %+v", l.Events())
	}
	if e := l.Peek(); e == nil || e.Kind != KMutexLock {
		t.Fatalf("peek = %+v", e)
	}
	vl := LoadVarList([]int32{1, 0, 1})
	if vl.Len() != 3 || vl.Turn() != 0 || vl.Owner(2) != 1 {
		t.Fatalf("loaded var list len=%d turn=%d", vl.Len(), vl.Turn())
	}
}

// TestFlattenEpochsRebasesPositions: concatenating epochs must shift each
// ordered event's Pos by the length its variable's order list accumulated
// in earlier epochs, and must not mutate the inputs.
func TestFlattenEpochsRebasesPositions(t *testing.T) {
	ep1 := &EpochLog{
		Epoch: 1,
		Threads: []ThreadLog{
			{TID: 0, EntryFn: 0, Events: []Event{
				{Kind: KMutexLock, Var: 0x10, Pos: 0},
				{Kind: KCreate, Var: 1, Aux: 1, Pos: 0},
			}},
			{TID: 1, EntryFn: 2, Events: []Event{
				{Kind: KMutexLock, Var: 0x10, Pos: 1},
			}},
		},
		Vars: []VarLog{
			{Addr: 0x10, Order: []int32{0, 1}},
			{Addr: 1, Order: []int32{0}},
		},
	}
	ep2 := &EpochLog{
		Epoch: 2,
		Threads: []ThreadLog{
			{TID: 0, EntryFn: 0, Events: []Event{
				{Kind: KMutexLock, Var: 0x10, Pos: 0},
				{Kind: KExit, Pos: -1},
			}},
			{TID: 1, EntryFn: 2, Events: []Event{
				{Kind: KMutexLock, Var: 0x10, Pos: 1},
				{Kind: KExit, Pos: -1},
			}},
		},
		Vars: []VarLog{
			{Addr: 0x10, Order: []int32{1, 0}},
		},
	}
	threads, vars, err := FlattenEpochs([]*EpochLog{ep1, ep2})
	if err != nil {
		t.Fatal(err)
	}
	if len(threads) != 2 || threads[0].TID != 0 || threads[1].TID != 1 {
		t.Fatalf("threads = %+v", threads)
	}
	// Thread 0's epoch-2 lock at per-epoch slot 0 rebases to global slot 2.
	if got := threads[0].Events[2]; got.Pos != 2 {
		t.Fatalf("rebased pos = %d, want 2 (%+v)", got.Pos, got)
	}
	if got := threads[1].Events[1]; got.Pos != 3 {
		t.Fatalf("rebased pos = %d, want 3 (%+v)", got.Pos, got)
	}
	// Unordered events keep Pos -1.
	if got := threads[0].Events[3]; got.Pos != -1 {
		t.Fatalf("exit pos = %d, want -1", got.Pos)
	}
	// Var orders concatenate in epoch order.
	if !reflect.DeepEqual(vars[0].Order, []int32{0, 1, 1, 0}) {
		t.Fatalf("var order = %v", vars[0].Order)
	}
	// Inputs untouched.
	if ep2.Threads[0].Events[0].Pos != 0 {
		t.Fatal("FlattenEpochs mutated its input")
	}

	// Inconsistent entry functions are rejected.
	bad := &EpochLog{Epoch: 3, Threads: []ThreadLog{{TID: 1, EntryFn: 5}}}
	if _, _, err := FlattenEpochs([]*EpochLog{ep1, bad}); err == nil {
		t.Fatal("entry-function mismatch accepted")
	}
	// Non-dense thread IDs are rejected.
	gap := &EpochLog{Epoch: 1, Threads: []ThreadLog{{TID: 0}, {TID: 2}}}
	if _, _, err := FlattenEpochs([]*EpochLog{gap}); err == nil {
		t.Fatal("non-dense thread IDs accepted")
	}
}

func TestFlattenEpochsAtSparseTIDs(t *testing.T) {
	// Degenerate inputs a segment replay can legitimately produce.
	if threads, vars, err := FlattenEpochsAt(nil); err != nil || len(threads) != 0 || len(vars) != 0 {
		t.Fatalf("empty input: threads=%v vars=%v err=%v", threads, vars, err)
	}
	empty := &EpochLog{Epoch: 4}
	if threads, _, err := FlattenEpochsAt([]*EpochLog{empty}); err != nil || len(threads) != 0 {
		t.Fatalf("threadless epoch: threads=%v err=%v", threads, err)
	}

	// Mid-trace segment: TIDs 3 and 7 survive from before the range
	// (threads 0-2 and 4-6 were reclaimed and leave permanent gaps), and 7
	// dies after the first epoch — its placeholder simply stops appearing.
	ep5 := &EpochLog{
		Epoch: 5,
		Threads: []ThreadLog{
			{TID: 3, EntryFn: 1, Events: []Event{{Kind: KMutexLock, Var: 0x20, Pos: 0}}},
			{TID: 7, EntryFn: 2, Events: []Event{
				{Kind: KMutexLock, Var: 0x20, Pos: 1},
				{Kind: KExit, Pos: -1},
			}},
		},
		Vars: []VarLog{{Addr: 0x20, Order: []int32{3, 7}}},
	}
	ep6 := &EpochLog{
		Epoch: 6,
		Threads: []ThreadLog{
			{TID: 3, EntryFn: 1, Events: []Event{{Kind: KMutexLock, Var: 0x20, Pos: 0}}},
		},
		Vars: []VarLog{{Addr: 0x20, Order: []int32{3}}},
	}
	threads, vars, err := FlattenEpochsAt([]*EpochLog{ep5, ep6})
	if err != nil {
		t.Fatal(err)
	}
	if len(threads) != 2 || threads[0].TID != 3 || threads[1].TID != 7 {
		t.Fatalf("threads = %+v, want sparse TIDs 3 and 7", threads)
	}
	// FlattenEpochs must reject the same input: slot 0 holds TID 3.
	if _, _, err := FlattenEpochs([]*EpochLog{ep5, ep6}); err == nil {
		t.Fatal("FlattenEpochs accepted sparse thread IDs")
	}
	// Thread 3's epoch-6 lock rebases past epoch 5's two acquisitions.
	if got := threads[0].Events[1]; got.Pos != 2 {
		t.Fatalf("rebased pos = %d, want 2 (%+v)", got.Pos, got)
	}
	// The dead thread keeps only its epoch-5 events.
	if len(threads[1].Events) != 2 {
		t.Fatalf("dead thread events = %+v", threads[1].Events)
	}
	if !reflect.DeepEqual(vars[0].Order, []int32{3, 7, 3}) {
		t.Fatalf("var order = %v", vars[0].Order)
	}

	// A single-thread segment needs no ordering at all.
	solo := &EpochLog{Epoch: 9, Threads: []ThreadLog{
		{TID: 5, EntryFn: 3, Events: []Event{{Kind: KExit, Pos: -1}}},
	}}
	threads, _, err = FlattenEpochsAt([]*EpochLog{solo})
	if err != nil || len(threads) != 1 || threads[0].TID != 5 {
		t.Fatalf("single thread: threads=%+v err=%v", threads, err)
	}

	// Corruption is still rejected: descending TIDs within an epoch, and a
	// thread whose entry function changes across epochs.
	unordered := &EpochLog{Epoch: 1, Threads: []ThreadLog{{TID: 7}, {TID: 3}}}
	if _, _, err := FlattenEpochsAt([]*EpochLog{unordered}); err == nil {
		t.Fatal("unordered thread IDs accepted")
	}
	turncoat := &EpochLog{Epoch: 6, Threads: []ThreadLog{{TID: 3, EntryFn: 9}}}
	if _, _, err := FlattenEpochsAt([]*EpochLog{ep5, turncoat}); err == nil {
		t.Fatal("entry-function change accepted")
	}
}
