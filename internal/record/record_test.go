package record

import (
	"testing"
	"testing/quick"
)

func TestThreadListAppendPeekAdvance(t *testing.T) {
	l := NewThreadList(4)
	if l.Append(Event{Kind: KMutexLock, Var: 100}) {
		t.Fatal("list should not be full after 1 of 4")
	}
	l.Append(Event{Kind: KSyscall, Aux: 7})
	if l.Len() != 2 {
		t.Fatalf("len = %d", l.Len())
	}
	e := l.Peek()
	if e == nil || e.Kind != KMutexLock || e.Var != 100 {
		t.Fatalf("peek = %+v", e)
	}
	l.Advance()
	e = l.Peek()
	if e == nil || e.Kind != KSyscall {
		t.Fatalf("peek 2 = %+v", e)
	}
	l.Advance()
	if !l.Replayed() {
		t.Fatal("should be replayed")
	}
	if l.Peek() != nil {
		t.Fatal("peek past end must be nil")
	}
}

func TestThreadListFullSignal(t *testing.T) {
	l := NewThreadList(2)
	if l.Append(Event{Kind: KExit}) {
		t.Fatal("not full yet")
	}
	if !l.Append(Event{Kind: KExit}) {
		t.Fatal("append of last entry must report full")
	}
	if !l.Full() {
		t.Fatal("Full() should be true")
	}
}

func TestThreadListOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l := NewThreadList(1)
	l.Append(Event{})
	l.Append(Event{})
}

func TestThreadListResetAndClear(t *testing.T) {
	l := NewThreadList(4)
	l.Append(Event{Kind: KMutexLock})
	l.Advance()
	l.ResetReplay()
	if l.Replayed() {
		t.Fatal("reset must rewind replay cursor")
	}
	l.Clear()
	if l.Len() != 0 || l.Peek() != nil {
		t.Fatal("clear must discard events")
	}
}

func TestVarListTurnProtocol(t *testing.T) {
	v := NewVarList(8)
	p0, _ := v.Append(3)
	p1, _ := v.Append(5)
	p2, _ := v.Append(3)
	if p0 != 0 || p1 != 1 || p2 != 2 {
		t.Fatalf("positions = %d %d %d", p0, p1, p2)
	}
	if v.Turn() != 0 || v.Owner(v.Turn()) != 3 {
		t.Fatal("first turn must belong to thread 3")
	}
	v.AdvanceTurn()
	if v.Owner(v.Turn()) != 5 {
		t.Fatal("second turn must belong to thread 5")
	}
	v.ResetReplay()
	if v.Turn() != 0 {
		t.Fatal("reset must rewind turn")
	}
}

func TestMatches(t *testing.T) {
	lock := &Event{Kind: KMutexLock, Var: 0x40}
	if !Matches(lock, KMutexLock, 0x40, 0) {
		t.Fatal("identical lock must match")
	}
	if Matches(lock, KMutexLock, 0x48, 0) {
		t.Fatal("different var must not match")
	}
	if Matches(lock, KCondWake, 0x40, 0) {
		t.Fatal("different kind must not match")
	}
	sc := &Event{Kind: KSyscall, Aux: 42}
	if !Matches(sc, KSyscall, 0, 42) {
		t.Fatal("same syscall must match")
	}
	if Matches(sc, KSyscall, 0, 43) {
		t.Fatal("different syscall number must not match")
	}
	if Matches(nil, KSyscall, 0, 42) {
		t.Fatal("nil event must not match")
	}
	// Barrier events are unordered: var addr is not compared.
	bar := &Event{Kind: KBarrier, Var: 0x10}
	if !Matches(bar, KBarrier, 0x99, 0) {
		t.Fatal("barrier events are unordered; var must be ignored")
	}
	// Trylocks compare the var even though failed tries are unordered.
	try := &Event{Kind: KMutexTry, Var: 0x10}
	if Matches(try, KMutexTry, 0x20, 0) {
		t.Fatal("trylock on different var must not match")
	}
}

func TestOrderedKinds(t *testing.T) {
	for k, want := range map[Kind]bool{
		KMutexLock: true, KCondWake: true, KCreate: true, KBlockFetch: true,
		KMutexTry: false, KBarrier: false, KJoin: false, KExit: false, KSyscall: false,
	} {
		if k.Ordered() != want {
			t.Errorf("%v.Ordered() = %v, want %v", k, k.Ordered(), want)
		}
	}
}

// Property: for any sequence of appends within capacity, replaying the list
// yields exactly the recorded sequence, and ResetReplay makes it repeatable.
func TestQuickThreadListRoundTrip(t *testing.T) {
	f := func(vars []uint64) bool {
		if len(vars) > 64 {
			vars = vars[:64]
		}
		l := NewThreadList(64)
		for _, v := range vars {
			l.Append(Event{Kind: KMutexLock, Var: v})
		}
		for pass := 0; pass < 2; pass++ {
			for _, v := range vars {
				e := l.Peek()
				if e == nil || e.Var != v {
					return false
				}
				l.Advance()
			}
			if !l.Replayed() {
				return false
			}
			l.ResetReplay()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a VarList's turn order visits owners in append order.
func TestQuickVarListOrder(t *testing.T) {
	f := func(tids []int32) bool {
		if len(tids) > 64 {
			tids = tids[:64]
		}
		v := NewVarList(64)
		for _, id := range tids {
			v.Append(id)
		}
		for _, id := range tids {
			if v.Owner(v.Turn()) != id {
				return false
			}
			v.AdvanceTurn()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
