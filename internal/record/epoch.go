package record

import "fmt"

// EpochLog is one epoch's complete, finalized event record: every live
// thread's per-thread list and every touched variable's cross-thread order
// list, captured at the epoch boundary after any tool-driven replays have
// resolved. It is the unit the runtime hands to a trace sink and the unit
// the offline replayer consumes — deliberately a plain value type with only
// exported, encode-stable fields so that serialization layers (internal/
// trace) need no access to runtime internals.
type EpochLog struct {
	// Epoch is the 1-based epoch sequence number.
	Epoch int64
	// Reason is the StopReason that closed the epoch (stored as its integer
	// value so this package stays independent of internal/core).
	Reason int32
	// Threads holds one entry per live thread, in ascending TID order.
	Threads []ThreadLog
	// Vars holds one entry per variable with at least one ordered event this
	// epoch, in shadow-creation order.
	Vars []VarLog
}

// ThreadLog is one thread's slice of an epoch.
type ThreadLog struct {
	// TID is the thread's deterministic identifier.
	TID int32
	// EntryFn is the index of the thread's entry function — needed by the
	// offline replayer to pre-create the thread before its recorded creation
	// event releases it.
	EntryFn int32
	// Events are the thread's recorded events, in program order.
	Events []Event
}

// VarLog is one synchronization variable's slice of an epoch.
type VarLog struct {
	// Addr is the variable's VM address (or pseudo-address).
	Addr uint64
	// Order is the recorded acquisition/wake-up order as thread IDs.
	Order []int32
}

// EventCount returns the number of events across all threads of the epoch.
func (ep *EpochLog) EventCount() int {
	n := 0
	for i := range ep.Threads {
		n += len(ep.Threads[i].Events)
	}
	return n
}

// FlattenEpochs merges a multi-epoch log sequence into whole-program
// per-thread and per-variable lists suitable for a single replay pass from
// program start: per-thread lists are concatenated in epoch order, and each
// ordered event's Pos is rebased by the length its variable's order list had
// accumulated in earlier epochs. Inputs are not mutated (epoch logs may be
// cached by a trace store); the returned lists are fresh copies.
//
// Thread IDs must be dense (0..N-1 over the union of all epochs) and each
// thread's entry function must be consistent across epochs — both hold for
// any log sequence the runtime produced.
func FlattenEpochs(epochs []*EpochLog) (threads []ThreadLog, vars []VarLog, err error) {
	threads, vars, err = FlattenEpochsAt(epochs)
	if err != nil {
		return nil, nil, err
	}
	for i := range threads {
		if threads[i].TID != int32(i) {
			// The runtime allocates TIDs densely and captures threads in
			// ascending order, so a gap means a corrupted or truncated log.
			return nil, nil, fmt.Errorf("record: non-dense thread IDs in epoch logs (slot %d holds tid %d)",
				i, threads[i].TID)
		}
	}
	return threads, vars, nil
}

// FlattenEpochsAt is FlattenEpochs for a mid-trace epoch range (segment
// replay from a checkpoint): thread IDs need not start at zero or be dense,
// because threads reclaimed before the range leave permanent gaps. Threads
// are returned in ascending TID order.
func FlattenEpochsAt(epochs []*EpochLog) (threads []ThreadLog, vars []VarLog, err error) {
	f := NewFlattener()
	for _, ep := range epochs {
		f.Add(ep)
	}
	fl, err := f.Flat()
	if err != nil {
		return nil, nil, err
	}
	return fl.Threads, fl.Vars, nil
}

// Flat is a flattened epoch range: the concatenated per-thread and
// per-variable lists plus the range's epoch count and final stop reason —
// everything a whole-range replay derives from an epoch slice. Consumers
// that stream epochs in bounded windows (trace analysis workers) build one
// incrementally through Flattener instead of pinning every decoded epoch
// frame at once.
type Flat struct {
	// Threads holds the concatenated per-thread lists, ascending TID.
	Threads []ThreadLog
	// Vars holds the rebased per-variable order lists, first-use order.
	Vars []VarLog
	// Epochs counts the epochs folded in.
	Epochs int64
	// Reason is the last folded epoch's StopReason integer.
	Reason int32
}

// Flattener incrementally builds a Flat from an epoch stream. It carries
// the per-variable rebase offsets across Add calls, so a caller can decode
// a window of epoch frames, fold it, and release it before fetching the
// next — decoded-frame lifetime becomes the window's, not the trace's.
// Errors are sticky and surface from Flat.
type Flattener struct {
	flat      Flat
	threadIdx map[int32]int
	varIdx    map[uint64]int
	err       error
}

// NewFlattener returns an empty Flattener.
func NewFlattener() *Flattener {
	return &Flattener{threadIdx: map[int32]int{}, varIdx: map[uint64]int{}}
}

// Add folds one more epoch into the flattened lists. Epochs must be added
// in trace order; the input is not mutated (epoch logs may be cached by a
// trace store) and its events are copied.
func (f *Flattener) Add(ep *EpochLog) {
	if f.err != nil {
		return
	}
	threads, vars := f.flat.Threads, f.flat.Vars
	// Per-epoch rebase offsets: the accumulated order length of each
	// variable before this epoch's events.
	offsets := map[uint64]int32{}
	for _, vl := range ep.Vars {
		i, ok := f.varIdx[vl.Addr]
		if !ok {
			i = len(vars)
			f.varIdx[vl.Addr] = i
			vars = append(vars, VarLog{Addr: vl.Addr})
		}
		offsets[vl.Addr] = int32(len(vars[i].Order))
		vars[i].Order = append(vars[i].Order, vl.Order...)
	}
	for _, tl := range ep.Threads {
		i, ok := f.threadIdx[tl.TID]
		if !ok {
			i = len(threads)
			f.threadIdx[tl.TID] = i
			threads = append(threads, ThreadLog{TID: tl.TID, EntryFn: tl.EntryFn})
		} else if threads[i].EntryFn != tl.EntryFn {
			f.err = fmt.Errorf(
				"record: thread %d changes entry function (%d vs %d) across epochs",
				tl.TID, threads[i].EntryFn, tl.EntryFn)
			return
		}
		for _, ev := range tl.Events {
			if ev.Pos >= 0 {
				ev.Pos += offsets[ev.Var]
			}
			threads[i].Events = append(threads[i].Events, ev)
		}
	}
	f.flat.Threads, f.flat.Vars = threads, vars
	f.flat.Epochs++
	f.flat.Reason = ep.Reason
}

// Flat validates thread ordering and returns the flattened range. The
// Flattener must not be reused afterwards.
func (f *Flattener) Flat() (*Flat, error) {
	if f.err != nil {
		return nil, f.err
	}
	threads := f.flat.Threads
	for i := 1; i < len(threads); i++ {
		if threads[i].TID <= threads[i-1].TID {
			// TIDs are allocated monotonically and epochs list threads in
			// ascending order, so first appearances are already sorted; a
			// violation means a corrupted log.
			return nil, fmt.Errorf("record: unordered thread IDs in epoch logs (%d after %d)",
				threads[i].TID, threads[i-1].TID)
		}
	}
	return &f.flat, nil
}

// LoadThreadList builds a ThreadList whose recorded contents are events and
// whose replay cursor is at the beginning — the offline replayer's
// counterpart of a rolled-back in-situ list. A small amount of spare
// capacity is kept so a post-replay append cannot overflow.
func LoadThreadList(events []Event) *ThreadList {
	l := &ThreadList{events: make([]Event, len(events)+16)}
	l.n = copy(l.events, events)
	return l
}

// LoadVarList builds a VarList whose recorded order is order, replay cursor
// at the beginning.
func LoadVarList(order []int32) *VarList {
	l := &VarList{order: make([]int32, len(order)+16)}
	l.n = copy(l.order, order)
	return l
}

// Order returns the recorded thread-ID order (read-only view).
func (l *VarList) Order() []int32 { return l.order[:l.n] }

// ParseKind inverts Kind.String for the mnemonic kinds. It scans kinds in
// numeric order rather than ranging over kindNames: map iteration order
// would make the answer depend on the iteration should two kinds ever share
// a mnemonic, and a duplicated name would then be a silent coin flip
// instead of a deterministic (lowest-kind) answer.
func ParseKind(s string) (Kind, bool) {
	for k := KMutexLock; k <= KBlockFetch; k++ {
		if kindNames[k] == s {
			return k, true
		}
	}
	return 0, false
}
