package record

import (
	"sync"
	"testing"
)

// Ablation: the preallocated per-thread list (the paper's design, §3.2)
// versus a naively growing slice. Preallocation keeps the recording hot path
// allocation-free.
func BenchmarkAppendPreallocated(b *testing.B) {
	l := NewThreadList(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if l.Full() {
			l.Clear()
		}
		l.Append(Event{Kind: KMutexLock, Var: uint64(i)})
	}
}

func BenchmarkAppendGrowingSlice(b *testing.B) {
	var l []Event
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(l) == 1<<16 {
			l = nil
		}
		l = append(l, Event{Kind: KMutexLock, Var: uint64(i)})
	}
}

// Ablation: per-variable lists versus a single global ordered log guarded by
// one mutex (the "global order" design the paper rejects, §3.2): the global
// log serializes recording across threads.
func BenchmarkVarListPerVariable(b *testing.B) {
	lists := make([]*VarList, 64)
	for i := range lists {
		lists[i] = NewVarList(1 << 16)
	}
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			l := lists[i%64]
			if l.Full() {
				l.Clear()
			}
			l.Append(int32(i))
			i++
		}
	})
}

func BenchmarkVarListGlobalLog(b *testing.B) {
	var mu sync.Mutex
	log := make([]int32, 0, 1<<16)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			mu.Lock()
			if len(log) == 1<<16 {
				log = log[:0]
			}
			log = append(log, int32(i))
			mu.Unlock()
			i++
		}
	})
}
