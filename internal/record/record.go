// Package record implements iReplayer's event log (§3.2, Figures 3 and 4):
// every synchronization and system-call event is appended to its thread's
// per-thread list and, for cross-thread-ordered events, to the corresponding
// per-variable list.
//
// The two-list structure removes any need for a global order: program order
// fixes the sequence within a thread, and each variable's list fixes the
// interleaving across threads. It also makes divergence checking O(1) — a
// replaying thread compares its next action against the head of its own
// per-thread list.
//
// Lists are preallocated (§3.2): appending never allocates, and exhausting a
// thread's entries is itself an epoch-end trigger.
package record

import "fmt"

// Kind classifies a recorded event.
type Kind uint8

const (
	// KMutexLock is a successful mutex acquisition (ordered on the var).
	KMutexLock Kind = iota + 1
	// KMutexTry is a trylock; Ret holds 1/0. Only successful tries are
	// ordered on the var (§3.2.1).
	KMutexTry
	// KCondWake is a wake-up from a condition-variable wait, ordered on the
	// condition variable (the paper records wake-up order, not signal order).
	KCondWake
	// KBarrier is a barrier wait; only the return value is recorded, entry
	// order is not (§3.2.1).
	KBarrier
	// KCreate is a thread creation, ordered on the global creation variable;
	// Aux holds the child thread ID.
	KCreate
	// KJoin is a completed thread join; Aux holds the joinee thread ID.
	KJoin
	// KExit is a thread exit; Ret holds the exit value.
	KExit
	// KSyscall is a system call; Aux holds the syscall number, Ret the
	// recorded result, and Data any recorded payload (e.g. socket reads).
	KSyscall
	// KBlockFetch is a super-heap block fetch (§2.2.4), ordered on the
	// super-heap pseudo-variable.
	KBlockFetch
)

var kindNames = map[Kind]string{
	KMutexLock: "lock", KMutexTry: "trylock", KCondWake: "condwake",
	KBarrier: "barrier", KCreate: "create", KJoin: "join", KExit: "exit",
	KSyscall: "syscall", KBlockFetch: "blockfetch",
}

// String returns the kind's mnemonic.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Ordered reports whether events of this kind occupy a slot in a
// per-variable list.
func (k Kind) Ordered() bool {
	switch k {
	case KMutexLock, KCondWake, KCreate, KBlockFetch:
		return true
	}
	return false
}

// Event is one recorded action.
type Event struct {
	Kind Kind
	// Var identifies the synchronization variable (its VM address, or a
	// pseudo-address for the creation and super-heap variables). Zero for
	// unordered events such as syscalls.
	Var uint64
	// Aux carries kind-specific data (syscall number, child TID, ...).
	Aux int64
	// Ret is the recorded result returned verbatim during replay.
	Ret uint64
	// Pos is the event's slot in its per-variable list, -1 if unordered.
	Pos int32
	// Class carries the syscall's replay classification (a vsys.Class value)
	// so the replayer knows whether to re-issue the call (revocable) or
	// return the recorded result (recordable). Zero for non-syscall events.
	Class uint8
	// Data holds a recorded payload (socket read bytes, etc.).
	Data []byte
}

// ThreadList is one thread's per-thread event list with a record cursor and
// an independent replay cursor.
type ThreadList struct {
	events []Event
	n      int // recorded
	r      int // replay cursor
}

// NewThreadList preallocates capacity for cap events.
func NewThreadList(capacity int) *ThreadList {
	return &ThreadList{events: make([]Event, capacity)}
}

// Append records an event. full reports that this append consumed the final
// preallocated entry — the caller must close the epoch (§3.2).
func (l *ThreadList) Append(e Event) (full bool) {
	if l.n >= len(l.events) {
		// The runtime closes the epoch on full; appending past the end is a
		// logic error in the caller.
		panic("record: thread list overflow")
	}
	l.events[l.n] = e
	l.n++
	return l.n == len(l.events)
}

// Len returns the number of recorded events.
func (l *ThreadList) Len() int { return l.n }

// Cap returns the preallocated capacity.
func (l *ThreadList) Cap() int { return len(l.events) }

// Full reports whether every preallocated entry is used.
func (l *ThreadList) Full() bool { return l.n == len(l.events) }

// Peek returns the next event to replay, or nil when the list is exhausted.
func (l *ThreadList) Peek() *Event {
	if l.r >= l.n {
		return nil
	}
	return &l.events[l.r]
}

// Advance consumes the event returned by Peek.
func (l *ThreadList) Advance() {
	if l.r < l.n {
		l.r++
	}
}

// Replayed reports whether every recorded event has been replayed.
func (l *ThreadList) Replayed() bool { return l.r >= l.n }

// ResetReplay rewinds the replay cursor for a fresh re-execution (§3.4).
func (l *ThreadList) ResetReplay() { l.r = 0 }

// Clear discards all events at an epoch boundary (§3.1 housekeeping).
func (l *ThreadList) Clear() { l.n, l.r = 0, 0 }

// Events returns the recorded events (read-only view for tools/tests).
func (l *ThreadList) Events() []Event { return l.events[:l.n] }

// VarList is one synchronization variable's cross-thread order list.
type VarList struct {
	order []int32 // thread IDs in acquisition/wake-up order
	n     int
	r     int // replay cursor
}

// NewVarList preallocates capacity for cap entries.
func NewVarList(capacity int) *VarList {
	return &VarList{order: make([]int32, capacity)}
}

// Append records that tid holds the next slot and returns that slot. full
// reports exhaustion (epoch-end trigger, as for thread lists).
func (l *VarList) Append(tid int32) (pos int32, full bool) {
	if l.n >= len(l.order) {
		panic("record: var list overflow")
	}
	l.order[l.n] = tid
	l.n++
	return int32(l.n - 1), l.n == len(l.order)
}

// Len returns the number of recorded slots.
func (l *VarList) Len() int { return l.n }

// Cap returns the preallocated capacity.
func (l *VarList) Cap() int { return len(l.order) }

// Full reports whether every preallocated entry is used.
func (l *VarList) Full() bool { return l.n == len(l.order) }

// Turn returns the replay cursor: the slot whose owner may proceed next.
func (l *VarList) Turn() int32 { return int32(l.r) }

// AdvanceTurn moves to the next slot after its owner performed its event.
func (l *VarList) AdvanceTurn() { l.r++ }

// Owner returns the thread ID recorded at slot pos.
func (l *VarList) Owner(pos int32) int32 { return l.order[pos] }

// ResetReplay rewinds the replay cursor.
func (l *VarList) ResetReplay() { l.r = 0 }

// Clear discards all slots at an epoch boundary.
func (l *VarList) Clear() { l.n, l.r = 0, 0 }

// Matches reports whether recorded event e corresponds to an attempted
// action, the core of divergence checking (§3.5.2): kind, variable, and — for
// syscalls — the syscall number must agree.
func Matches(e *Event, kind Kind, varAddr uint64, aux int64) bool {
	if e == nil || e.Kind != kind {
		return false
	}
	if e.Kind.Ordered() || kind == KMutexTry {
		if e.Var != varAddr {
			return false
		}
	}
	if kind == KSyscall && e.Aux != aux {
		return false
	}
	return true
}
