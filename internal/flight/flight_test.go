package flight

import (
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/tir"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// flightSpec scales a workload down to test size.
func flightSpec(t testing.TB, name string, scale float64) workloads.Spec {
	t.Helper()
	s, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("unknown app %s", name)
	}
	s.Iters = int(float64(s.Iters) * scale)
	if s.Iters < 3 {
		s.Iters = 3
	}
	return s
}

// recordWithFlight runs spec with a flight recorder of the given retention
// attached and returns the recorder, the store, the module, and the run's
// report. The recorder is left open; callers spill, salvage, or close it.
func recordWithFlight(t *testing.T, spec workloads.Spec, opts core.Options, retain int) (*Recorder, *trace.Store, *tir.Module, *core.Report) {
	t.Helper()
	mod, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	st, err := trace.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := New(RingPath(st, spec.Name), trace.Header{
		App:        spec.Name,
		ModuleHash: tir.Fingerprint(mod),
		EventCap:   opts.EventCap,
		VarCap:     opts.VarCap,
		Seed:       opts.Seed,
		AppIters:   spec.Iters,
	}, retain)
	if err != nil {
		t.Fatal(err)
	}
	opts.FlightRecorder = rec
	rt, err := core.New(mod, opts)
	if err != nil {
		t.Fatal(err)
	}
	spec.SetupOS(rt.OS())
	rep, err := rt.Run()
	if err != nil {
		t.Fatalf("record %s: %v", spec.Name, err)
	}
	return rec, st, mod, rep
}

// TestRingSpillSuffixReplays is the flight-recorder acceptance path: a run
// long enough to rotate the ring several times spills a suffix trace whose
// leading keyframe resumes the replay mid-run, and both the whole-trace and
// the segment-parallel paths reproduce the recorded exit and the suffix's
// share of the output byte-for-byte.
func TestRingSpillSuffixReplays(t *testing.T) {
	spec := flightSpec(t, "streamcluster", 0.5)
	opts := core.Options{Seed: 9, EventCap: 24}
	rec, st, _, rep := recordWithFlight(t, spec, opts, 3)
	defer rec.Close()

	if got := rec.Epochs(); got < 3 || got > 6 {
		t.Fatalf("ring retains %d epochs, want within [3,6]", got)
	}
	stats, err := rec.Spill(st, spec.Name, &trace.Summary{Exit: rep.Exit, Output: rep.Output})
	if err != nil {
		t.Fatalf("spill: %v", err)
	}
	if !stats.Suffix {
		t.Fatalf("spill is not a suffix: %+v", stats)
	}
	if stats.Epochs < 3 || stats.Epochs > 6 {
		t.Fatalf("spill retains %d epochs, want within [3,6]", stats.Epochs)
	}

	h, err := st.Open(spec.Name)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if !h.Complete() || !h.LeadingCheckpoint() {
		t.Fatalf("spilled trace: complete=%v leadingCheckpoint=%v", h.Complete(), h.LeadingCheckpoint())
	}
	if sum := h.Summary(); sum == nil || sum.Partial || sum.Exit != rep.Exit {
		t.Fatalf("spilled summary = %+v, want exit %d and no partial flag", h.Summary(), rep.Exit)
	}

	// Whole-trace path: compareSummary enforces the recorded exit and the
	// trimmed output byte-identically.
	mod, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	job := trace.Job{Name: spec.Name, Module: mod, Handle: h,
		Opts: core.Options{Seed: opts.Seed, EventCap: opts.EventCap, DelayOnDivergence: true}}
	results, bstats := trace.ReplayBatch([]trace.Job{job}, 1)
	if !results[0].Matched || bstats.Matched != 1 {
		t.Fatalf("suffix replay did not match: %+v", results[0])
	}

	// Segment path: the suffix's interior checkpoints split it further; the
	// stitched result must agree with the same oracle.
	if h.NumCheckpoints() < 2 {
		t.Fatalf("suffix has %d checkpoints, want >= 2 for a segment split", h.NumCheckpoints())
	}
	segResults, segStats, err := trace.ReplaySegments(job, 2)
	if err != nil {
		t.Fatalf("segment replay: %v (results %+v)", err, segResults)
	}
	if segStats.Failed != 0 || segStats.Matched != segStats.Jobs {
		t.Fatalf("segment stats = %+v", segStats)
	}
}

// TestRingStaysBounded: the ring file holds at most twice the retention
// target of epochs however long the run, and its current contents always
// decode as a clean trace prefix.
func TestRingStaysBounded(t *testing.T) {
	spec := flightSpec(t, "streamcluster", 0.5)
	rec, _, _, _ := recordWithFlight(t, spec, core.Options{Seed: 9, EventCap: 24}, 2)
	defer rec.Close()

	if got := rec.Epochs(); got < 2 || got > 4 {
		t.Fatalf("ring retains %d epochs, want within [2,4]", got)
	}
	f, err := os.Open(rec.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadPrefix(f)
	if err != nil {
		t.Fatalf("ring does not decode: %v", err)
	}
	if len(tr.Epochs) != rec.Epochs() {
		t.Fatalf("ring file decodes %d epochs, recorder says %d", len(tr.Epochs), rec.Epochs())
	}
	if len(tr.Checkpoints) == 0 || tr.Checkpoints[0].Epoch() != tr.Epochs[0].Epoch {
		t.Fatalf("rotated ring does not begin at a checkpoint (first ckpt %v, first epoch %d)",
			tr.Checkpoints, tr.Epochs[0].Epoch)
	}
	if !tr.Checkpoints[0].Keyframe {
		t.Fatal("rotated ring's leading checkpoint is not a keyframe")
	}
}

// TestSalvageTornRing simulates the SIGKILL outcome: the recorder never
// closes and the ring's final frame is torn mid-write. Salvage must decode
// the clean prefix, store it as a complete (partial-summary) suffix trace,
// and the suffix must still replay its schedule.
func TestSalvageTornRing(t *testing.T) {
	spec := flightSpec(t, "streamcluster", 0.5)
	opts := core.Options{Seed: 9, EventCap: 24}
	rec, st, _, _ := recordWithFlight(t, spec, opts, 3)
	defer rec.Close()

	// A SIGKILL mid-Write leaves a torn tail; model it with a truncated copy.
	b, err := os.ReadFile(rec.Path())
	if err != nil {
		t.Fatal(err)
	}
	torn := RingPath(st, "torn")
	if err := os.WriteFile(torn, b[:len(b)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	stats, err := Salvage(torn, st, "crashed")
	if err != nil {
		t.Fatalf("salvage: %v", err)
	}
	if stats.Epochs == 0 {
		t.Fatalf("salvage kept no epochs: %+v", stats)
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatalf("salvage left the ring behind (err=%v)", err)
	}

	h, err := st.Open("crashed")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if !h.Complete() {
		t.Fatal("salvaged trace is not complete")
	}
	if sum := h.Summary(); sum == nil || !sum.Partial {
		t.Fatalf("salvaged summary = %+v, want partial", h.Summary())
	}
	if !h.LeadingCheckpoint() {
		t.Fatal("salvaged rotated ring lost its leading checkpoint")
	}

	mod, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	job := trace.Job{Name: "crashed", Module: mod, Handle: h,
		Opts: core.Options{Seed: opts.Seed, EventCap: opts.EventCap, DelayOnDivergence: true}}
	results, _ := trace.ReplayBatch([]trace.Job{job}, 1)
	if !results[0].Matched {
		t.Fatalf("salvaged suffix did not replay: %+v", results[0])
	}
}

// TestCloseRemovesRing: a clean shutdown leaves nothing behind.
func TestCloseRemovesRing(t *testing.T) {
	spec := flightSpec(t, "streamcluster", 0.3)
	rec, _, _, _ := recordWithFlight(t, spec, core.Options{Seed: 9, EventCap: 24}, 3)
	path := rec.Path()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("ring survived Close (err=%v)", err)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
