// Package flight implements the always-on flight recorder: a bounded
// on-disk ring that shadows a recording run and can spill its recent past
// into the trace store as a valid, independently replayable trace.
//
// The ring is an ordinary trace file that never gets its summary or index
// frames: magic, header, then epoch and checkpoint frames in sink order.
// Because every frame is appended through trace.Writer, any prefix of the
// file is decodable — trace.ReadPrefix salvages a ring torn by SIGKILL.
// The ring is bounded by rotation, not by rewriting frames: once it holds
// twice the retention target of epochs, the newest keyframe checkpoint
// that still leaves the target behind it becomes the new origin, and the
// file is rewritten as header + raw bytes from that keyframe (temp file,
// then rename — a crash mid-rotation leaves either the old or the new
// ring, both valid). No frame is re-encoded: a keyframe checkpoint is
// self-contained and everything after it deltas only against retained
// frames, so the byte copy preserves decodability.
//
// A spill re-encodes: the ring is decoded, trimmed to the newest
// checkpoint that retains at least the target number of epochs, and
// written into the store through the ordinary streaming path — leading
// keyframe first, then the retained interleaving of checkpoints and
// epochs. The result is a suffix trace (Handle.LeadingCheckpoint) that
// replays from its first checkpoint instead of program start.
package flight

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/record"
	"repro/internal/trace"
)

// DefaultRetain is the epoch retention target when the caller passes
// retain <= 0.
const DefaultRetain = 8

// RingExt is the ring file suffix. Rings live beside stored traces (the
// store directory), but the extension keeps them invisible to Store.List
// and GC — a ring is not a trace until it spills.
const RingExt = ".ring"

// RingPath places the ring for a named recording inside a store's
// directory.
func RingPath(st *trace.Store, name string) string {
	return filepath.Join(st.Dir(), name+RingExt)
}

// mark remembers a keyframe checkpoint in the current ring file: where its
// frame starts, which epoch it begins, and how many epoch frames precede
// it (the frames a rotation cutting here would drop).
type mark struct {
	off          int64
	epoch        int64
	epochsBefore int
}

// ringFile is the counting io.Writer under the trace.Writer. The writer
// emits each frame as one Write with no buffering, so n is always the
// exact size of the current ring inode — rotation swaps f and rebases n
// without the trace.Writer noticing.
type ringFile struct {
	f *os.File
	n int64
}

func (rf *ringFile) Write(p []byte) (int, error) {
	n, err := rf.f.Write(p)
	rf.n += int64(n)
	return n, err
}

// Recorder is the core.FlightSink implementation. Attach it via
// core.Options.FlightRecorder; it is safe for the single-threaded sink
// call pattern core guarantees (sinks run while the world is quiescent)
// and additionally locks so Spill may be called from a signal handler
// goroutine while the run is mid-epoch.
type Recorder struct {
	mu sync.Mutex

	path   string
	retain int
	// keyEvery mirrors the writer's keyframe interval; Recorder replicates
	// the writer's "every keyEvery-th checkpoint" rule to know which frames
	// are rotation cut points.
	keyEvery int

	rf     ringFile      // guarded by mu
	w      *trace.Writer // guarded by mu
	closed bool          // guarded by mu

	headerEnd int64 // offset of the first frame after magic+header
	epochs    int   // epoch frames currently in the ring
	ckpts     int   // checkpoint frames ever written (keyframe ordinal)
	marks     []mark
}

// New creates (truncating) the ring at path and returns a recorder that
// retains roughly retain epochs (<= 0 selects DefaultRetain; the ring file
// holds between retain and 2x retain epochs between rotations). The header
// is written immediately; compression stays off in the ring — the hot
// write path pays an encode per epoch and nothing more — and a spill or a
// later `ir-trace compact` compresses the stored result instead.
func New(path string, hdr trace.Header, retain int) (*Recorder, error) {
	if retain <= 0 {
		retain = DefaultRetain
	}
	hdr.Compressed = false
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("flight: creating ring: %w", err)
	}
	r := &Recorder{path: path, retain: retain, keyEvery: (retain + 1) / 2}
	if r.keyEvery < 1 {
		r.keyEvery = 1
	}
	r.rf.f = f
	w, err := trace.NewWriter(&r.rf, hdr)
	if err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	w.SetKeyframeEvery(r.keyEvery)
	r.w = w
	r.headerEnd = r.rf.n
	return r, nil
}

// Path returns the ring file's path.
func (r *Recorder) Path() string { return r.path }

// Epochs returns how many epoch frames the ring currently holds.
func (r *Recorder) Epochs() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epochs
}

// RecordEpoch appends one epoch frame and rotates the ring if it grew past
// twice the retention target (core.FlightSink).
func (r *Recorder) RecordEpoch(ep *record.EpochLog) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("flight: recorder closed")
	}
	if err := r.w.WriteEpoch(ep); err != nil {
		return err
	}
	r.epochs++
	return r.maybeRotateLocked()
}

// RecordCheckpoint appends one checkpoint frame (core.FlightSink),
// remembering keyframes as rotation cut points.
func (r *Recorder) RecordCheckpoint(ck *core.Checkpoint) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("flight: recorder closed")
	}
	off := r.rf.n
	keyframe := r.ckpts%r.keyEvery == 0
	if err := r.w.WriteCheckpoint(ck); err != nil {
		return err
	}
	r.ckpts++
	if keyframe {
		r.marks = append(r.marks, mark{off: off, epoch: ck.Epoch, epochsBefore: r.epochs})
	}
	return nil
}

// maybeRotateLocked trims the ring once it holds 2x the retention target: the
// newest keyframe that still leaves >= retain epochs behind it becomes the
// file's first frame. Called with r.mu held.
func (r *Recorder) maybeRotateLocked() error {
	if r.epochs < 2*r.retain {
		return nil
	}
	best := -1
	for i := len(r.marks) - 1; i >= 0; i-- {
		if r.epochs-r.marks[i].epochsBefore >= r.retain {
			best = i
			break
		}
	}
	if best < 0 || r.marks[best].epochsBefore == 0 {
		return nil // no cut point that drops anything yet
	}
	defer obs.FlightRotate.ObserveSince(time.Now())
	m := r.marks[best]

	tmp, err := os.CreateTemp(filepath.Dir(r.path), filepath.Base(r.path)+".*.tmp")
	if err != nil {
		return fmt.Errorf("flight: rotating ring: %w", err)
	}
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("flight: rotating ring: %w", err)
	}
	if _, err := io.Copy(tmp, io.NewSectionReader(r.rf.f, 0, r.headerEnd)); err != nil {
		return fail(err)
	}
	if _, err := io.Copy(tmp, io.NewSectionReader(r.rf.f, m.off, r.rf.n-m.off)); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("flight: rotating ring: %w", err)
	}
	if err := os.Rename(tmp.Name(), r.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("flight: rotating ring: %w", err)
	}
	nf, err := os.OpenFile(r.path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("flight: reopening ring: %w", err)
	}
	if _, err := nf.Seek(0, io.SeekEnd); err != nil {
		nf.Close()
		return fmt.Errorf("flight: reopening ring: %w", err)
	}
	r.rf.f.Close()
	r.rf.f = nf

	// Rebase everything the cut shifted: retained frames moved back by the
	// span of the dropped ones.
	delta := m.off - r.headerEnd
	r.rf.n -= delta
	r.epochs -= m.epochsBefore
	kept := r.marks[best:]
	for i := range kept {
		kept[i].off -= delta
		kept[i].epochsBefore -= m.epochsBefore
	}
	r.marks = append(r.marks[:0], kept...)
	return nil
}

// Close discards the recorder: the ring file is removed — its contents
// were either spilled into the store already or deemed uninteresting. A
// crash that skips Close leaves the ring on disk for Salvage.
func (r *Recorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	err := r.rf.f.Close()
	if rerr := os.Remove(r.path); err == nil {
		err = rerr
	}
	return err
}

// SpillStats describes one spill.
type SpillStats struct {
	// Epochs retained; FirstEpoch..LastEpoch their 1-based range.
	Epochs     int   `json:"epochs"`
	FirstEpoch int64 `json:"first_epoch"`
	LastEpoch  int64 `json:"last_epoch"`
	// Suffix reports that the spill resumes from a leading checkpoint
	// rather than program start.
	Suffix bool `json:"suffix"`
	// Bytes is the stored trace's size.
	Bytes int64 `json:"bytes"`
}

// Spill writes the ring's retained suffix into the store under name. sum
// carries the run's outcome when the program actually ended (fault spill:
// recorded exit and *full* program output — Spill trims the output to the
// suffix's share); nil marks the spill partial (on-demand or
// signal-triggered spills of a still-running program carry no replay
// oracle). The recorder stays usable: recording may continue after an
// on-demand spill.
func (r *Recorder) Spill(st *trace.Store, name string, sum *trace.Summary) (SpillStats, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return SpillStats{}, fmt.Errorf("flight: recorder closed")
	}
	defer obs.FlightSpill.ObserveSince(time.Now())
	tr, err := trace.ReadPrefix(io.NewSectionReader(r.rf.f, 0, r.rf.n))
	if err != nil {
		return SpillStats{}, fmt.Errorf("flight: decoding ring: %w", err)
	}
	return spillTrace(st, name, tr, r.retain, sum)
}

// Salvage recovers a ring left behind by a crashed recording (the process
// was killed before Close): the longest clean prefix is decoded and
// spilled into the store under name, untrimmed — whatever survived is
// whatever there is — and always partial, because a killed program's exit
// and output are unknown. The ring file is removed on success.
func Salvage(ringPath string, st *trace.Store, name string) (SpillStats, error) {
	f, err := os.Open(ringPath)
	if err != nil {
		return SpillStats{}, err
	}
	tr, err := trace.ReadPrefix(f)
	f.Close()
	if err != nil {
		return SpillStats{}, fmt.Errorf("flight: salvaging ring: %w", err)
	}
	stats, err := spillTrace(st, name, tr, 0, nil)
	if err != nil {
		return stats, err
	}
	return stats, os.Remove(ringPath)
}

// spillTrace re-encodes tr's retained suffix into the store. retain > 0
// trims to the newest checkpoint keeping at least that many epochs; 0
// keeps everything decodable. The suffix starts at a checkpoint whenever
// one coincides with its first epoch — always the case for a rotated ring.
func spillTrace(st *trace.Store, name string, tr *trace.Trace, retain int, sum *trace.Summary) (SpillStats, error) {
	if len(tr.Epochs) == 0 {
		return SpillStats{}, fmt.Errorf("flight: ring holds no complete epoch")
	}
	h := trace.OpenTrace(tr) // folds checkpoint images on demand
	cks := tr.Checkpoints

	epochAt := func(seq int64) int { // index of first epoch with Epoch >= seq
		for i, ep := range tr.Epochs {
			if ep.Epoch >= seq {
				return i
			}
		}
		return len(tr.Epochs)
	}
	cut := -1
	if retain > 0 && len(tr.Epochs) > retain {
		for k := len(cks) - 1; k >= 0; k-- {
			if len(tr.Epochs)-epochAt(cks[k].Epoch()) >= retain {
				cut = k
				break
			}
		}
	}
	if cut < 0 && len(cks) > 0 && cks[0].Epoch() == tr.Epochs[0].Epoch {
		cut = 0 // rotated ring: the suffix must resume from its leading keyframe
	}

	first := 0
	if cut >= 0 {
		first = epochAt(cks[cut].Epoch())
	}
	epochs := tr.Epochs[first:]

	out := &trace.Summary{Partial: true}
	if sum != nil {
		s := *sum
		if cut >= 0 {
			ck0, err := h.CheckpointAt(cut)
			if err != nil {
				return SpillStats{}, err
			}
			if ck0.OutputLen > len(s.Output) {
				return SpillStats{}, fmt.Errorf("flight: checkpoint attributes %d output bytes, summary holds %d",
					ck0.OutputLen, len(s.Output))
			}
			s.Output = s.Output[ck0.OutputLen:]
		}
		out = &s
	}

	p, err := st.Create(name)
	if err != nil {
		return SpillStats{}, err
	}
	w, err := trace.NewWriter(p, tr.Header)
	if err != nil {
		p.Abort()
		return SpillStats{}, err
	}
	ci := cut
	if ci < 0 {
		ci = 0
	}
	for _, ep := range epochs {
		for ci < len(cks) && cks[ci].Epoch() == ep.Epoch {
			full, err := h.CheckpointAt(ci)
			if err != nil {
				p.Abort()
				return SpillStats{}, err
			}
			if err := w.WriteCheckpoint(full); err != nil {
				p.Abort()
				return SpillStats{}, err
			}
			ci++
		}
		if err := w.WriteEpoch(ep); err != nil {
			p.Abort()
			return SpillStats{}, err
		}
	}
	if err := w.Finish(out); err != nil {
		p.Abort()
		return SpillStats{}, err
	}
	stats := SpillStats{
		Epochs:     len(epochs),
		FirstEpoch: epochs[0].Epoch,
		LastEpoch:  epochs[len(epochs)-1].Epoch,
		Suffix:     cut >= 0,
		Bytes:      p.Bytes(),
	}
	if err := p.Commit(); err != nil {
		return SpillStats{}, err
	}
	return stats, nil
}
