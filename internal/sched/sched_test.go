package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPriorityAndFIFOOrder: with one worker held busy, later high-priority
// jobs dispatch before earlier normal ones, and equal priorities dispatch in
// submission order.
func TestPriorityAndFIFOOrder(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 16})
	defer s.Shutdown()

	gate := make(chan struct{})
	var mu sync.Mutex
	var order []string
	noteJob := func(name string) Job {
		return Job{Name: name, Priority: Normal, Run: func(context.Context) (any, error) {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return nil, nil
		}}
	}

	// Occupy the only worker so subsequent submissions stack in the queue.
	if _, err := s.Submit(Job{Name: "gate", Run: func(context.Context) (any, error) {
		<-gate
		return nil, nil
	}}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"n1", "n2", "n3"} {
		if _, err := s.Submit(noteJob(name)); err != nil {
			t.Fatal(err)
		}
	}
	hi := noteJob("hi")
	hi.Priority = High
	lo := noteJob("lo")
	lo.Priority = Low
	if _, err := s.Submit(lo); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(hi); err != nil {
		t.Fatal(err)
	}
	close(gate)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	got := strings.Join(order, ",")
	want := "hi,n1,n2,n3,lo"
	if got != want {
		t.Fatalf("dispatch order %q, want %q", got, want)
	}
}

// TestQueueDepthBackpressure: submissions beyond QueueDepth fail fast with
// ErrQueueFull and count as rejected.
func TestQueueDepthBackpressure(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 2})
	defer s.Shutdown()

	gate := make(chan struct{})
	defer close(gate)
	block := Job{Name: "block", Run: func(context.Context) (any, error) {
		<-gate
		return nil, nil
	}}
	if _, err := s.Submit(block); err != nil { // runs, occupies the worker
		t.Fatal(err)
	}
	// Wait until the worker picked it up so the queue is empty again.
	waitFor(t, func() bool { return s.Metrics().Running == 1 })

	for i := 0; i < 2; i++ { // fills the queue
		if _, err := s.Submit(block); err != nil {
			t.Fatalf("queued submit %d: %v", i, err)
		}
	}
	if _, err := s.Submit(block); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-depth submit: err=%v, want ErrQueueFull", err)
	}
	m := s.Metrics()
	if m.Rejected != 1 || m.QueueDepth != 2 || m.QueueLimit != 2 {
		t.Fatalf("metrics after rejection: %+v", m)
	}
}

// TestCancelQueuedAndRunning: a queued job cancels immediately; a running
// job's context is canceled and the job lands in Canceled.
func TestCancelQueuedAndRunning(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 8})
	defer s.Shutdown()

	started := make(chan struct{})
	runInfo, err := s.Submit(Job{Name: "running", Run: func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}})
	if err != nil {
		t.Fatal(err)
	}
	queuedInfo, err := s.Submit(Job{Name: "queued", Run: func(context.Context) (any, error) {
		return nil, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	if info, err := s.Cancel(queuedInfo.ID); err != nil || info.State != Canceled {
		t.Fatalf("cancel queued: info=%+v err=%v", info, err)
	}
	if _, err := s.Cancel(runInfo.ID); err != nil {
		t.Fatal(err)
	}
	final, err := s.Wait(context.Background(), runInfo.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != Canceled {
		t.Fatalf("running job final state %v, want Canceled", final.State)
	}
	if _, err := s.Cancel(99); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("cancel unknown: %v", err)
	}
}

// TestWatchStreamsTransitions: Watch yields queued → running → done and then
// closes.
func TestWatchStreamsTransitions(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Shutdown()

	gate := make(chan struct{})
	info, err := s.Submit(Job{Name: "w", Run: func(context.Context) (any, error) {
		<-gate
		return "payload", nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := s.Watch(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	close(gate)
	var states []State
	for in := range ch {
		states = append(states, in.State)
	}
	// The initial snapshot races the dispatch, so the stream may start at
	// Queued or Running; it must end Done and be monotonic.
	if len(states) == 0 || states[len(states)-1] != Done {
		t.Fatalf("watch states %v, want terminal Done", states)
	}
	for i := 1; i < len(states); i++ {
		if states[i] < states[i-1] {
			t.Fatalf("watch states went backwards: %v", states)
		}
	}
	final, err := s.Info(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Result != "payload" {
		t.Fatalf("result %v, want payload", final.Result)
	}
}

// TestDrainGraceful: accepted jobs finish, new submissions are refused, and
// no worker goroutines survive the drain.
func TestDrainGraceful(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(Options{Workers: 4, QueueDepth: 64})
	var ran atomic.Int64
	for i := 0; i < 32; i++ {
		if _, err := s.Submit(Job{Name: "n", Run: func(context.Context) (any, error) {
			ran.Add(1)
			return nil, nil
		}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != 32 {
		t.Fatalf("ran %d jobs, want 32", got)
	}
	if _, err := s.Submit(Job{Name: "late", Run: func(context.Context) (any, error) { return nil, nil }}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain: %v, want ErrDraining", err)
	}
	// Second drain is a no-op.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return runtime.NumGoroutine() <= before })
}

// TestDrainForced: a drain whose context expires cancels queued and running
// jobs but still waits for the workers.
func TestDrainForced(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 8})
	started := make(chan struct{})
	if _, err := s.Submit(Job{Name: "stuck", Run: func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}}); err != nil {
		t.Fatal(err)
	}
	qInfo, err := s.Submit(Job{Name: "behind", Run: func(context.Context) (any, error) { return nil, nil }})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("forced drain reported success")
	}
	in, err := s.Info(qInfo.ID)
	if err != nil {
		t.Fatal(err)
	}
	if in.State != Canceled {
		t.Fatalf("queued job after forced drain: %v, want Canceled", in.State)
	}
	m := s.Metrics()
	if m.Running != 0 || m.QueueDepth != 0 {
		t.Fatalf("metrics after forced drain: %+v", m)
	}
}

// TestJobPanicIsFailure: a panicking job fails without taking the worker
// down.
func TestJobPanicIsFailure(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Shutdown()
	info, err := s.Submit(Job{Name: "boom", Run: func(context.Context) (any, error) {
		panic("kaboom")
	}})
	if err != nil {
		t.Fatal(err)
	}
	final, err := s.Wait(context.Background(), info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != Failed || !strings.Contains(final.Err, "kaboom") {
		t.Fatalf("panicked job: %+v", final)
	}
	// The worker survived: another job still runs.
	info2, err := s.Submit(Job{Name: "after", Run: func(context.Context) (any, error) { return 7, nil }})
	if err != nil {
		t.Fatal(err)
	}
	if final2, err := s.Wait(context.Background(), info2.ID); err != nil || final2.State != Done {
		t.Fatalf("job after panic: %+v err=%v", final2, err)
	}
}

// TestRetentionBound: terminal jobs beyond Retain are evicted oldest-first.
func TestRetentionBound(t *testing.T) {
	s := New(Options{Workers: 1, Retain: 2})
	defer s.Shutdown()
	var ids []uint64
	for i := 0; i < 4; i++ {
		info, err := s.Submit(Job{Name: fmt.Sprintf("r%d", i), Run: func(context.Context) (any, error) { return nil, nil }})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Wait(context.Background(), info.ID); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
	}
	if _, err := s.Info(ids[0]); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("oldest job still retained: %v", err)
	}
	if _, err := s.Info(ids[3]); err != nil {
		t.Fatalf("newest job evicted: %v", err)
	}
}

// TestRunPool: every index runs exactly once and the pool's goroutines
// exit.
func TestRunPool(t *testing.T) {
	before := runtime.NumGoroutine()
	var hits [64]atomic.Int32
	RunPool(len(hits), 4, func(i int) { hits[i].Add(1) })
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("index %d ran %d times", i, hits[i].Load())
		}
	}
	if d := RunPool(0, 4, func(int) { t.Fatal("ran for n=0") }); d != 0 {
		t.Fatalf("empty pool elapsed %v", d)
	}
	waitFor(t, func() bool { return runtime.NumGoroutine() <= before })
}

// TestRunPoolPanicPropagates: a panic inside a pool item surfaces from
// RunPool itself (after the batch drains) instead of being reported as a
// successful batch.
func TestRunPoolPanicPropagates(t *testing.T) {
	var ran atomic.Int32
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("RunPool swallowed the item panic")
		}
		if !strings.Contains(fmt.Sprint(r), "boom-7") {
			t.Fatalf("propagated panic %v does not carry the cause", r)
		}
		if got := ran.Load(); got != 8 {
			t.Fatalf("only %d/8 items ran to completion around the panic", got)
		}
	}()
	RunPool(8, 2, func(i int) {
		defer ran.Add(1)
		if i == 7 {
			panic("boom-7")
		}
	})
	t.Fatal("unreachable: RunPool returned normally")
}

// waitFor polls cond for up to ~2s; goroutine-count assertions need a
// grace period for exiting goroutines to be reaped.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("condition not reached within deadline")
}
