package sched

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// RunPool shards n items across a transient scheduler, invoking run for each
// index, and returns the batch's wall-clock time. workers <= 0 selects
// GOMAXPROCS; the pool never exceeds n workers. It blocks until every item
// finished and every worker goroutine exited — the one-shot batch shape the
// trace layer's ReplayBatch/AnalyzeBatch/ReplaySegments fan-outs use, built
// on the same scheduler the daemon runs so both paths share dispatch,
// bounded-pool, and drain semantics.
//
// A panic in run propagates out of RunPool (after the remaining items
// finish), preserving the crash-loudly semantics of a plain worker pool:
// the batch CLIs fail visibly, and a daemon job running a batch has the
// panic converted to a job failure by its own scheduler — never reported
// as success with a zero-value result.
func RunPool(n, workers int, run func(i int)) time.Duration {
	if n <= 0 {
		return 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	s := New(Options{Workers: workers, QueueDepth: n, Retain: 1})
	start := time.Now()
	var panicMu sync.Mutex
	var firstPanic error
	for i := 0; i < n; i++ {
		if _, err := s.Submit(Job{
			Name: fmt.Sprintf("pool#%d", i),
			Kind: "pool",
			Run: func(context.Context) (any, error) { //ir:noctx pool batches are never canceled; the queue is sized to the batch and drained synchronously
				defer func() {
					if r := recover(); r != nil {
						panicMu.Lock()
						if firstPanic == nil {
							firstPanic = fmt.Errorf("sched: pool item %d panicked: %v", i, r)
						}
						panicMu.Unlock()
					}
				}()
				run(i)
				return nil, nil
			},
		}); err != nil {
			// Unreachable by construction: the queue is sized to n and the
			// scheduler is not draining. Run the item inline rather than
			// silently dropping it.
			run(i)
		}
	}
	_ = s.Drain(context.Background())
	if firstPanic != nil {
		panic(firstPanic)
	}
	return time.Since(start)
}
