// Package sched is the job scheduler every execution path shares: the
// one-shot batch fan-outs of the trace layer (trace.ReplayBatch,
// trace.AnalyzeBatch, trace.ReplaySegments, via RunPool) and the
// long-running trace service daemon (internal/server, cmd/ir-served)
// multiplex their work through the same bounded worker pool.
//
// The scheduler is deliberately generic — a job is a name, a priority, and
// a closure — so it stays import-free of the runtime packages it schedules.
// What it adds over a plain pool:
//
//   - Priorities with FIFO fairness: higher-priority jobs dispatch first;
//     within one priority, jobs dispatch in submission order, so no client
//     can starve an earlier equal-priority client.
//   - Backpressure: Submit fails fast with ErrQueueFull once QueueDepth jobs
//     are waiting, instead of queueing unboundedly. The HTTP layer maps this
//     to 429 Too Many Requests.
//   - Per-job cancellation: every job runs under its own context; Cancel
//     removes a queued job outright and cancels a running job's context (the
//     runtime layers cooperate through core.Options.Interrupt).
//   - Observability: Info snapshots per job, Watch streams every state
//     transition, Metrics aggregates queue depth and jobs by state.
//   - Graceful drain: Drain stops intake, lets accepted work finish, and
//     returns only when every worker goroutine has exited — the property the
//     daemon's shutdown path (and the -race leak tests) rely on.
//
// Job lifecycle:
//
//	Submit ──► queued ──► running ──► done      (Run returned nil)
//	              │           ├─────► failed    (Run returned an error)
//	              └───────────┴─────► canceled  (Cancel, or Run returned the
//	                                             canceled context's error)
//
// Terminal jobs are retained for inspection, bounded by Options.Retain.
package sched

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Priority orders dispatch: higher runs first; equal priorities are FIFO.
type Priority int

const (
	// Low yields to everything else — bulk re-verification sweeps.
	Low Priority = -1
	// Normal is the default.
	Normal Priority = 0
	// High jumps the queue — an operator chasing a live defect.
	High Priority = 1
)

func (p Priority) String() string {
	switch p {
	case Low:
		return "low"
	case High:
		return "high"
	default:
		return "normal"
	}
}

// MarshalJSON encodes the symbolic name ("low", "normal", "high").
func (p Priority) MarshalJSON() ([]byte, error) {
	return []byte(`"` + p.String() + `"`), nil
}

// UnmarshalJSON accepts the symbolic names; empty means Normal.
func (p *Priority) UnmarshalJSON(b []byte) error {
	v, err := ParsePriority(string(trimQuotes(b)))
	if err != nil {
		return err
	}
	*p = v
	return nil
}

func trimQuotes(b []byte) []byte {
	if len(b) >= 2 && b[0] == '"' && b[len(b)-1] == '"' {
		return b[1 : len(b)-1]
	}
	return b
}

// ParsePriority maps "low", "normal", "high" (or "") to a Priority.
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "low":
		return Low, nil
	case "", "normal":
		return Normal, nil
	case "high":
		return High, nil
	}
	return Normal, fmt.Errorf("sched: unknown priority %q (low, normal, high)", s)
}

// State is a job's position in the lifecycle.
type State int

const (
	// Queued: accepted, waiting for a worker.
	Queued State = iota
	// Running: a worker is executing the job's closure.
	Running
	// Done: the closure returned nil.
	Done
	// Failed: the closure returned a non-cancellation error.
	Failed
	// Canceled: removed from the queue, or the closure returned its
	// canceled context's error.
	Canceled
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s >= Done }

func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Canceled:
		return "canceled"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// MarshalJSON encodes the symbolic name ("queued", "running", ...).
func (s State) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON accepts the symbolic names.
func (s *State) UnmarshalJSON(b []byte) error {
	switch string(trimQuotes(b)) {
	case "queued":
		*s = Queued
	case "running":
		*s = Running
	case "done":
		*s = Done
	case "failed":
		*s = Failed
	case "canceled":
		*s = Canceled
	default:
		return fmt.Errorf("sched: unknown state %q", b)
	}
	return nil
}

var (
	// ErrQueueFull rejects a Submit once QueueDepth jobs are waiting — the
	// backpressure signal (HTTP 429).
	ErrQueueFull = errors.New("sched: queue is full")
	// ErrDraining rejects a Submit after Drain/Shutdown began (HTTP 503).
	ErrDraining = errors.New("sched: scheduler is draining")
	// ErrUnknownJob reports an ID that was never submitted or has been
	// evicted from the retention window.
	ErrUnknownJob = errors.New("sched: unknown job")
)

// Job is one unit of submitted work.
type Job struct {
	// Name labels the job in Info and metrics; it need not be unique.
	Name string
	// Kind labels the job in the queue-wait/run-time latency histograms
	// (ir_sched_queue_wait_seconds, ir_sched_run_seconds). Empty means
	// "job". Use a low-cardinality value (the API job kind, "pool", ...).
	Kind string
	// Priority orders dispatch (default Normal).
	Priority Priority
	// Run executes the job. The context is canceled by Cancel and by a
	// forced drain; long-running work must observe it (the replay layers
	// plumb it through core.Options.Interrupt). The returned value is
	// retained as Info.Result.
	Run func(ctx context.Context) (any, error)
}

// Info is a point-in-time snapshot of one job.
type Info struct {
	ID       uint64   `json:"id"`
	Name     string   `json:"name"`
	Priority Priority `json:"priority"`
	State    State    `json:"state"`
	// Err carries the failure (or cancellation cause) once terminal.
	Err string `json:"error,omitempty"`
	// Result is Run's return value once the job is Done (also kept for
	// Failed jobs that returned a partial result).
	Result   any       `json:"result,omitempty"`
	Enqueued time.Time `json:"enqueued"`
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
	// QueueMS is the time spent waiting for a worker (still growing while
	// queued); RunMS is the execution wall time so far (zero while queued).
	QueueMS float64 `json:"queue_ms"`
	RunMS   float64 `json:"run_ms"`
}

// Wall returns the job's execution time so far (zero before it starts).
func (i Info) Wall() time.Duration {
	switch {
	case i.Started.IsZero():
		return 0
	case i.Finished.IsZero():
		return time.Since(i.Started)
	}
	return i.Finished.Sub(i.Started)
}

// Options configures a Scheduler.
type Options struct {
	// Workers is the pool size; <= 0 selects GOMAXPROCS.
	Workers int
	// QueueDepth bounds the number of queued (not yet running) jobs; Submit
	// past it fails with ErrQueueFull. <= 0 selects DefaultQueueDepth.
	QueueDepth int
	// Retain bounds how many terminal jobs stay inspectable; <= 0 selects
	// DefaultRetain. Oldest terminal jobs are evicted first.
	Retain int
}

// Defaults for Options fields left zero.
const (
	DefaultQueueDepth = 256
	DefaultRetain     = 1024
)

// Metrics is an aggregate snapshot for the /metrics endpoint.
type Metrics struct {
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
	QueueLimit int `json:"queue_limit"`
	Running    int `json:"running"`
	// Cumulative counters since construction.
	Submitted uint64 `json:"submitted"`
	Rejected  uint64 `json:"rejected"`
	Done      uint64 `json:"done"`
	Failed    uint64 `json:"failed"`
	Canceled  uint64 `json:"canceled"`
}

const (
	stAccepting = iota
	stDraining
	stClosed
)

type job struct {
	Job
	id       uint64
	seq      uint64 // submission order, the FIFO tiebreak
	heapIdx  int    // position in the priority queue, -1 once dequeued
	state    State
	err      error
	result   any
	enqueued time.Time
	started  time.Time
	finished time.Time

	ctx         context.Context
	cancel      context.CancelFunc
	cancelAsked bool
	watchers    []chan Info
	doneCh      chan struct{} // closed at terminal state
}

// Scheduler dispatches submitted jobs across a fixed worker pool.
type Scheduler struct {
	opts Options

	mu       sync.Mutex
	cond     *sync.Cond      // wakes workers: queue non-empty or state change
	pq       jobPQ           // guarded by mu
	jobs     map[uint64]*job // guarded by mu
	terminal []uint64        // guarded by mu; terminal IDs, oldest first (retention ring)
	nextID   uint64
	nextSeq  uint64
	state    int
	running  int

	submitted, rejected uint64
	doneN, failedN      uint64
	canceledN           uint64

	change  chan struct{} // pulsed on every completion/dequeue (Drain waits on it)
	drained chan struct{} // closed when Drain finished
	drainMu sync.Mutex    // serializes Drain callers

	wg sync.WaitGroup
}

// New builds a scheduler and starts its workers.
func New(opts Options) *Scheduler {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = DefaultQueueDepth
	}
	if opts.Retain <= 0 {
		opts.Retain = DefaultRetain
	}
	s := &Scheduler{
		opts:    opts,
		jobs:    make(map[uint64]*job),
		change:  make(chan struct{}, 1),
		drained: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go s.worker()
	}
	return s
}

// Submit enqueues a job. It fails fast with ErrQueueFull at the queue-depth
// bound and ErrDraining once shutdown began; on success the returned Info is
// the job's initial (queued) snapshot.
func (s *Scheduler) Submit(j Job) (Info, error) {
	if j.Run == nil {
		return Info{}, errors.New("sched: job has no Run function")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != stAccepting {
		return Info{}, ErrDraining
	}
	if s.pq.Len() >= s.opts.QueueDepth {
		s.rejected++
		return Info{}, ErrQueueFull
	}
	s.nextID++
	s.nextSeq++
	ctx, cancel := context.WithCancel(context.Background())
	jb := &job{
		Job:      j,
		id:       s.nextID,
		seq:      s.nextSeq,
		state:    Queued,
		enqueued: time.Now(),
		ctx:      ctx,
		cancel:   cancel,
		doneCh:   make(chan struct{}),
	}
	heap.Push(&s.pq, jb)
	s.jobs[jb.id] = jb
	s.submitted++
	s.cond.Signal()
	return jb.snapshotLocked(), nil
}

// worker is one pool goroutine: dequeue by priority, run, finalize.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.pq.Len() == 0 && s.state == stAccepting {
			s.cond.Wait()
		}
		if s.pq.Len() == 0 {
			// Draining (or closed) with nothing left to run.
			s.mu.Unlock()
			return
		}
		jb := heap.Pop(&s.pq).(*job)
		jb.state = Running
		jb.started = time.Now()
		s.running++
		jb.notifyLocked()
		s.pulseLocked()
		s.mu.Unlock()
		obs.SchedQueueWait.With(jb.kind()).Observe(jb.started.Sub(jb.enqueued).Seconds())

		res, err := runGuarded(jb)

		s.mu.Lock()
		s.running--
		jb.finished = time.Now()
		obs.SchedRun.With(jb.kind()).Observe(jb.finished.Sub(jb.started).Seconds())
		jb.result = res
		jb.err = err
		switch {
		case err == nil:
			jb.state = Done
			s.doneN++
		case jb.cancelAsked || errors.Is(err, context.Canceled):
			jb.state = Canceled
			s.canceledN++
		default:
			jb.state = Failed
			s.failedN++
		}
		s.finalizeLocked(jb)
		s.mu.Unlock()
	}
}

// runGuarded executes a job's closure, translating a panic into an error so
// one bad job cannot take a worker (or the daemon) down.
func runGuarded(jb *job) (res any, err error) {
	defer jb.cancel()
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sched: job %d (%s) panicked: %v", jb.id, jb.Name, r)
		}
	}()
	return jb.Run(jb.ctx)
}

// finalizeLocked publishes a terminal transition: watchers, waiters,
// retention, and the drain pulse. Caller holds s.mu and has set the state.
func (s *Scheduler) finalizeLocked(jb *job) {
	// The closure is never invoked again; dropping it releases whatever it
	// captured (the daemon's jobs capture decoded traces and rebuilt
	// modules, which must not stay pinned for the whole retention window).
	jb.Run = nil
	close(jb.doneCh)
	jb.notifyLocked()
	for _, ch := range jb.watchers {
		close(ch)
	}
	jb.watchers = nil
	s.terminal = append(s.terminal, jb.id)
	for len(s.terminal) > s.opts.Retain {
		delete(s.jobs, s.terminal[0])
		s.terminal = s.terminal[1:]
	}
	s.pulseLocked()
}

// pulseLocked pokes Drain's wait loop without blocking.
func (s *Scheduler) pulseLocked() {
	select {
	case s.change <- struct{}{}:
	default:
	}
}

// Cancel cancels a job: a queued job is removed and terminal immediately; a
// running job has its context canceled and reaches Canceled when its closure
// returns. Canceling a terminal job is a no-op. The returned Info is the
// job's state after the cancel took effect at the scheduler level.
func (s *Scheduler) Cancel(id uint64) (Info, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	jb := s.jobs[id]
	if jb == nil {
		return Info{}, ErrUnknownJob
	}
	switch jb.state {
	case Queued:
		heap.Remove(&s.pq, jb.heapIdx)
		jb.cancel()
		jb.cancelAsked = true
		jb.state = Canceled
		jb.finished = time.Now()
		jb.err = context.Canceled
		s.canceledN++
		s.finalizeLocked(jb)
	case Running:
		jb.cancelAsked = true
		jb.cancel()
	}
	return jb.snapshotLocked(), nil
}

// Info returns a snapshot of one job.
func (s *Scheduler) Info(id uint64) (Info, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	jb := s.jobs[id]
	if jb == nil {
		return Info{}, ErrUnknownJob
	}
	return jb.snapshotLocked(), nil
}

// Jobs snapshots every retained job, ordered by ID.
func (s *Scheduler) Jobs() []Info {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Info, 0, len(s.jobs))
	for _, jb := range s.jobs {
		out = append(out, jb.snapshotLocked())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Wait blocks until the job is terminal (or ctx expires) and returns its
// final snapshot.
func (s *Scheduler) Wait(ctx context.Context, id uint64) (Info, error) {
	s.mu.Lock()
	jb := s.jobs[id]
	if jb == nil {
		s.mu.Unlock()
		return Info{}, ErrUnknownJob
	}
	done := jb.doneCh
	s.mu.Unlock()
	select {
	case <-done:
		// Snapshot through the held pointer, not a map re-lookup: the
		// retention window may have evicted the ID between the doneCh close
		// and this read, and a finished job must not report ErrUnknownJob.
		s.mu.Lock()
		info := jb.snapshotLocked()
		s.mu.Unlock()
		return info, nil
	case <-ctx.Done():
		return Info{}, ctx.Err()
	}
}

// Watch returns a channel that carries the job's current snapshot followed
// by one snapshot per state transition, and closes after the terminal one.
// The channel is buffered for the full lifecycle; the caller need not drain
// it promptly. Watching a terminal job yields its final snapshot and closes.
func (s *Scheduler) Watch(id uint64) (<-chan Info, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	jb := s.jobs[id]
	if jb == nil {
		return nil, ErrUnknownJob
	}
	// A job has at most 3 lifecycle snapshots (queued, running, terminal);
	// capacity 4 covers the initial snapshot plus every transition, so the
	// notifier can always send without blocking.
	ch := make(chan Info, 4)
	ch <- jb.snapshotLocked()
	if jb.state.Terminal() {
		close(ch)
		return ch, nil
	}
	jb.watchers = append(jb.watchers, ch)
	return ch, nil
}

// Metrics snapshots the aggregate counters.
func (s *Scheduler) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Metrics{
		Workers:    s.opts.Workers,
		QueueDepth: s.pq.Len(),
		QueueLimit: s.opts.QueueDepth,
		Running:    s.running,
		Submitted:  s.submitted,
		Rejected:   s.rejected,
		Done:       s.doneN,
		Failed:     s.failedN,
		Canceled:   s.canceledN,
	}
}

// Drain shuts the scheduler down gracefully: new submissions are refused,
// already-accepted jobs (queued and running) run to completion, and Drain
// returns once every worker goroutine has exited. If ctx expires first, the
// remaining queue is canceled, running jobs' contexts are canceled, and
// Drain still waits for the workers to come home — a job that ignores its
// context delays shutdown rather than leaking. Concurrent and repeated
// calls are safe; later callers wait for the first drain to finish.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	select {
	case <-s.drained:
		return nil // already fully drained
	default:
	}

	s.mu.Lock()
	if s.state == stAccepting {
		s.state = stDraining
		s.cond.Broadcast()
	}
	s.mu.Unlock()

	forced := false
	var ctxErr error
	for {
		s.mu.Lock()
		idle := s.pq.Len() == 0 && s.running == 0
		s.mu.Unlock()
		if idle {
			break
		}
		if forced {
			<-s.change
			continue
		}
		select {
		case <-s.change:
		case <-ctx.Done():
			forced = true
			ctxErr = ctx.Err()
			s.cancelPending()
		}
	}

	s.mu.Lock()
	s.state = stClosed
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	close(s.drained)
	if forced {
		return fmt.Errorf("sched: drain deadline hit, outstanding jobs canceled: %w", ctxErr)
	}
	return nil
}

// Shutdown cancels everything outstanding and waits for the workers to
// exit — Drain with an already-expired deadline.
func (s *Scheduler) Shutdown() {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = s.Drain(ctx)
}

// cancelPending cancels every queued job and every running job's context.
func (s *Scheduler) cancelPending() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.pq.Len() > 0 {
		jb := heap.Pop(&s.pq).(*job)
		jb.cancel()
		jb.cancelAsked = true
		jb.state = Canceled
		jb.finished = time.Now()
		jb.err = context.Canceled
		s.canceledN++
		s.finalizeLocked(jb)
	}
	for _, jb := range s.jobs {
		if jb.state == Running {
			jb.cancelAsked = true
			jb.cancel()
		}
	}
}

// kind returns the histogram label for the job.
func (jb *job) kind() string {
	if jb.Kind == "" {
		return "job"
	}
	return jb.Kind
}

// snapshotLocked builds an Info; caller holds s.mu.
func (jb *job) snapshotLocked() Info {
	info := Info{
		ID:       jb.id,
		Name:     jb.Name,
		Priority: jb.Priority,
		State:    jb.state,
		Result:   jb.result,
		Enqueued: jb.enqueued,
		Started:  jb.started,
		Finished: jb.finished,
	}
	switch {
	case !jb.started.IsZero():
		info.QueueMS = msSince(jb.enqueued, jb.started)
	case !jb.finished.IsZero(): // canceled while still queued
		info.QueueMS = msSince(jb.enqueued, jb.finished)
	default:
		info.QueueMS = msSince(jb.enqueued, time.Now())
	}
	info.RunMS = float64(info.Wall().Nanoseconds()) / 1e6
	if jb.err != nil {
		info.Err = jb.err.Error()
	}
	return info
}

// msSince returns the from..to interval in (fractional) milliseconds.
func msSince(from, to time.Time) float64 {
	return float64(to.Sub(from).Nanoseconds()) / 1e6
}

// notifyLocked fans the current snapshot out to watchers; caller holds s.mu.
// Watcher channels are sized for the full lifecycle, so sends cannot block.
func (jb *job) notifyLocked() {
	if len(jb.watchers) == 0 {
		return
	}
	info := jb.snapshotLocked()
	for _, ch := range jb.watchers {
		ch <- info
	}
}

// jobPQ is the priority queue: higher Priority first, then FIFO by seq.
type jobPQ []*job

func (q jobPQ) Len() int { return len(q) }
func (q jobPQ) Less(i, j int) bool {
	if q[i].Priority != q[j].Priority {
		return q[i].Priority > q[j].Priority
	}
	return q[i].seq < q[j].seq
}
func (q jobPQ) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].heapIdx = i
	q[j].heapIdx = j
}
func (q *jobPQ) Push(x any) {
	jb := x.(*job)
	jb.heapIdx = len(*q)
	*q = append(*q, jb)
}
func (q *jobPQ) Pop() any {
	old := *q
	n := len(old)
	jb := old[n-1]
	old[n-1] = nil
	jb.heapIdx = -1
	*q = old[:n-1]
	return jb
}
