// Package bench regenerates the paper's evaluation: Table 1 (memory
// difference between original execution and re-execution), Table 2
// (Crasher race-reproduction attempts), Table 3 (recording overhead of
// IR-Alloc / iReplayer / CLAP / RR normalized to the default runtime), and
// Figure 5 (detector overhead versus AddressSanitizer), plus the §5.4.1
// detection-effectiveness table.
//
// Absolute times come from this substrate, not the paper's Xeon testbed;
// the comparisons of interest are the normalized ratios and the win/loss
// shape, which EXPERIMENTS.md tracks against the published numbers.
package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/baseline/asan"
	"repro/internal/baseline/clap"
	"repro/internal/baseline/rr"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/workloads"
)

// System identifies one execution configuration of Table 3 / Figure 5.
type System int

const (
	// SysBaseline is the default runtime: no recording, libc-like allocator
	// (the normalization denominator).
	SysBaseline System = iota
	// SysIRAlloc is the deterministic allocator alone, no recording
	// ("IR-Alloc" column).
	SysIRAlloc
	// SysIReplayer is full recording ("iReplayer" column).
	SysIReplayer
	// SysCLAP is Ball–Larus path recording over the instrumented module.
	SysCLAP
	// SysRR is single-core time-sliced record-and-replay.
	SysRR
	// SysIRDetect is iReplayer with both detectors enabled
	// ("iReplayer(OF+DP)" in Figure 5).
	SysIRDetect
	// SysASan is the AddressSanitizer-like write checker.
	SysASan
)

var sysNames = map[System]string{
	SysBaseline: "baseline", SysIRAlloc: "IR-Alloc", SysIReplayer: "iReplayer",
	SysCLAP: "CLAP", SysRR: "RR", SysIRDetect: "iReplayer(OF+DP)", SysASan: "ASan",
}

func (s System) String() string { return sysNames[s] }

// RunOnce executes spec once under sys and returns the wall-clock time.
func RunOnce(spec workloads.Spec, sys System, seed int64) (time.Duration, error) {
	mod, err := spec.Build()
	if err != nil {
		return 0, err
	}
	switch sys {
	case SysRR:
		rt, err := rr.New(mod, seed)
		if err != nil {
			return 0, err
		}
		spec.SetupOS(rt.OS())
		start := time.Now()
		_, err = rt.Run()
		return time.Since(start), err

	case SysCLAP:
		inst, err := clap.Instrument(mod)
		if err != nil {
			return 0, err
		}
		rec := clap.NewRecorder(mem.DefaultConfig().MaxThreads)
		rt, err := core.New(inst, core.Options{
			DisableRecording: true,
			UseLibCAllocator: true,
			ASLRSeed:         seed,
			Seed:             seed,
			OnProbe:          rec.OnProbe,
		})
		if err != nil {
			return 0, err
		}
		spec.SetupOS(rt.OS())
		start := time.Now()
		_, err = rt.Run()
		return time.Since(start), err

	case SysASan:
		inst, err := asan.Instrument(mod)
		if err != nil {
			return 0, err
		}
		var sh *asan.Shadow
		opts := core.Options{
			DisableRecording: true,
			Seed:             seed,
			WrapAllocator: func(d *heap.Deterministic) heap.Allocator {
				return asan.NewAllocator(d, sh, 256<<10)
			},
		}
		sh = asan.NewShadow(mem.New(mem.DefaultConfig()))
		opts.OnProbe = sh.OnProbe
		rt, err := core.New(inst, opts)
		if err != nil {
			return 0, err
		}
		spec.SetupOS(rt.OS())
		start := time.Now()
		_, err = rt.Run()
		return time.Since(start), err

	case SysIRDetect:
		d := detect.New(detect.Config{Overflow: true, UseAfterFree: true})
		opts := d.Options()
		opts.Seed = seed
		rt, err := core.New(mod, opts)
		if err != nil {
			return 0, err
		}
		if err := d.Attach(rt); err != nil {
			return 0, err
		}
		spec.SetupOS(rt.OS())
		start := time.Now()
		_, err = rt.Run()
		return time.Since(start), err

	default:
		opts := core.Options{Seed: seed}
		switch sys {
		case SysBaseline:
			opts.DisableRecording = true
			opts.UseLibCAllocator = true
			opts.ASLRSeed = seed
		case SysIRAlloc:
			opts.DisableRecording = true
		case SysIReplayer:
			// full recording, deterministic allocator
		}
		rt, err := core.New(mod, opts)
		if err != nil {
			return 0, err
		}
		spec.SetupOS(rt.OS())
		start := time.Now()
		_, err = rt.Run()
		return time.Since(start), err
	}
}

// Normalized runs spec `rounds` times under sys and baseline and returns the
// median-of-rounds ratio sys/baseline — one Table 3 cell.
//
// RR receives one documented adjustment: its architecture serializes every
// thread onto one core, so on the paper's 16-core testbed it additionally
// loses the application's parallel speedup (8×–52× total). This host has a
// single CPU (the baseline cannot exploit parallelism either), so the
// measured ratio misses exactly that architectural penalty; we restore it
// with an Amdahl factor computed from the workload's parallel fraction (see
// parallelSpeedup). Systems sharing the concurrent runtime (IR-Alloc,
// iReplayer, CLAP, the detectors, ASan) need no adjustment: their numerator
// and denominator miss parallelism identically, so the ratio is honest.
func Normalized(spec workloads.Spec, sys System, rounds int) (float64, error) {
	base, err := median(spec, SysBaseline, rounds)
	if err != nil {
		return 0, err
	}
	d, err := median(spec, sys, rounds)
	if err != nil {
		return 0, err
	}
	if base <= 0 {
		return 0, fmt.Errorf("bench: degenerate baseline time")
	}
	ratio := float64(d) / float64(base)
	if sys == SysRR && runtime.NumCPU() < spec.Threads {
		ratio *= parallelSpeedup(spec)
		// On a starved host the serialized scheduler can beat the contended
		// parallel baseline outright; real RR always costs at least its
		// recording, so floor the simulated ratio at parity.
		if ratio < 1 {
			ratio = 1
		}
	}
	return ratio, nil
}

// parallelSpeedup estimates the speedup the application would enjoy on
// enough cores for its threads — the factor a serializing record-and-replay
// system forfeits. The parallel fraction is derived from the workload's
// per-iteration composition: compute, allocation, and fine-grained striped
// locking scale with cores; kernel-serialized IO and time queries do not.
func parallelSpeedup(s workloads.Spec) float64 {
	par := float64(s.CPUBranchy+s.CPUFloat) +
		float64(s.LibraryWork)/8 +
		float64(s.Locks*(s.WritesPerLock+2))*3 +
		float64(s.Allocs)*10 +
		float64(s.Atomics)*3
	ser := float64(s.FileIO+s.SocketIO)/4 + float64(s.TimeCalls)*5
	if par+ser == 0 {
		return 1
	}
	p := par / (par + ser)
	t := float64(s.Threads)
	return 1 / ((1 - p) + p/t)
}

func median(spec workloads.Spec, sys System, rounds int) (time.Duration, error) {
	if rounds < 1 {
		rounds = 1
	}
	times := make([]time.Duration, 0, rounds)
	for i := 0; i < rounds; i++ {
		d, err := RunOnce(spec, sys, int64(i)*977+13)
		if err != nil {
			return 0, fmt.Errorf("%s under %s: %w", spec.Name, sys, err)
		}
		times = append(times, d)
	}
	for i := 1; i < len(times); i++ {
		for j := i; j > 0 && times[j] < times[j-1]; j-- {
			times[j], times[j-1] = times[j-1], times[j]
		}
	}
	return times[len(times)/2], nil
}
