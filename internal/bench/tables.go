package bench

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/baseline/rr"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/interp"
	"repro/internal/workloads"
)

// Table1Row is one application's memory-difference measurements (§5.2): the
// percentage of heap bytes that differ between the original execution and a
// re-execution, for the default library ("Orig"), iReplayer ("IR"), and the
// RR baseline.
type Table1Row struct {
	App  string
	Orig float64
	IR   float64
	RR   float64
}

// Table1 measures every application. Each program carries the §5.2
// methodology's implanted buffer overflow at the end of main, which is what
// triggers the in-situ re-execution under iReplayer.
func Table1(specs []workloads.Spec, scale float64) ([]Table1Row, error) {
	var rows []Table1Row
	for _, s := range specs {
		s := scaleSpec(s, scale)
		row := Table1Row{App: s.Name}
		var err error
		if row.Orig, err = table1Orig(s); err != nil {
			return nil, fmt.Errorf("%s orig: %w", s.Name, err)
		}
		if row.IR, err = table1IR(s); err != nil {
			return nil, fmt.Errorf("%s ir: %w", s.Name, err)
		}
		if row.RR, err = table1RR(s); err != nil {
			return nil, fmt.Errorf("%s rr: %w", s.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// table1Orig runs the program twice as separate "processes" — fresh ASLR
// placement, default global-heap allocator — and diffs the final heap
// images over the used extent, the §5.2 methodology for the "Orig" row.
func table1Orig(s workloads.Spec) (float64, error) {
	img := func(aslr int64) ([]byte, error) {
		mod, err := s.Build()
		if err != nil {
			return nil, err
		}
		rt, err := core.New(workloads.ImplantOverflow(mod), core.Options{
			DisableRecording: true,
			UseLibCAllocator: true,
			ASLRSeed:         aslr,
			Seed:             7,
		})
		if err != nil {
			return nil, err
		}
		s.SetupOS(rt.OS())
		if _, err := rt.Run(); err != nil {
			return nil, err
		}
		return rt.Mem().HeapImage(), nil
	}
	a, err := img(101)
	if err != nil {
		return 0, err
	}
	b, err := img(20207)
	if err != nil {
		return 0, err
	}
	return extentDiffPercent(a, b), nil
}

// table1IR records the program (implanted overflow included), lets the
// overflow detector trigger the in-situ re-execution, and diffs the heap
// image at the original epoch end against the image after the matched
// replay.
func table1IR(s workloads.Spec) (float64, error) {
	mod, err := s.Build()
	if err != nil {
		return 0, err
	}
	d := detect.New(detect.Config{Overflow: true})
	var img1, img2 []byte
	opts := core.Options{
		Seed:              7,
		MaxReplays:        2000,
		DelayOnDivergence: true,
		OnEpochEnd: func(rt *core.Runtime, info core.EpochEndInfo) core.Decision {
			dec := d.OnEpochEnd(rt, info)
			if dec == core.Replay && img1 == nil {
				img1 = rt.Mem().HeapImage()
			}
			return dec
		},
		OnReplayMatched: func(rt *core.Runtime, attempts int) core.Decision {
			if img2 == nil {
				img2 = rt.Mem().HeapImage()
			}
			return d.OnReplayMatched(rt, attempts)
		},
	}
	rt, err := core.New(workloads.ImplantOverflow(mod), opts)
	if err != nil {
		return 0, err
	}
	if err := d.Attach(rt); err != nil {
		return 0, err
	}
	s.SetupOS(rt.OS())
	if _, err := rt.Run(); err != nil {
		return 0, err
	}
	if img1 == nil || img2 == nil {
		return 0, fmt.Errorf("re-execution did not trigger")
	}
	return extentDiffPercent(img1, img2), nil
}

// table1RR records under the RR baseline and replays under the recorded
// schedule in a fresh runtime; single-core determinism yields a zero diff.
func table1RR(s workloads.Spec) (float64, error) {
	run := func(sched []int32) ([]byte, []int32, error) {
		mod, err := s.Build()
		if err != nil {
			return nil, nil, err
		}
		rt, err := rr.New(workloads.ImplantOverflow(mod), 7)
		if err != nil {
			return nil, nil, err
		}
		s.SetupOS(rt.OS())
		if sched != nil {
			rt.SetReplay(sched)
		}
		if _, err := rt.Run(); err != nil {
			return nil, nil, err
		}
		return rt.Mem().HeapImage(), rt.Schedule(), nil
	}
	img1, sched, err := run(nil)
	if err != nil {
		return 0, err
	}
	img2, _, err := run(sched)
	if err != nil {
		return 0, err
	}
	return extentDiffPercent(img1, img2), nil
}

// extentDiffPercent reports differing bytes as a percentage of the heap's
// used extent — the span from the arena base to the last byte touched in
// either image. This matches diffing the in-use heap pages (as the paper
// does): an arena-relative percentage would undercount by dividing by
// untouched reserve space, while an occupied-bytes-only denominator would
// saturate at ~100% whenever ASLR slides the whole layout.
func extentDiffPercent(a, b []byte) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	extent := 0
	for i := n - 1; i >= 0; i-- {
		if a[i] != 0 || b[i] != 0 {
			extent = i + 1
			break
		}
	}
	if extent == 0 {
		return 0
	}
	diff := 0
	for i := 0; i < extent; i++ {
		if a[i] != b[i] {
			diff++
		}
	}
	return 100 * float64(diff) / float64(extent)
}

// Table2 reproduces the Crasher experiment (§5.2.1): run the racy program
// `runs` times; for each run whose race fires (a crash), count how many
// replay attempts the divergence search needs to reproduce the crash, and
// bucket the counts as the paper does (1, 2, 3, ≥4).
type Table2Result struct {
	Runs      int
	Crashes   int
	Buckets   [4]int // attempts 1, 2, 3, >=4
	Failures  int    // crashes never reproduced within the attempt cap
	MaxNeeded int
}

// Table2 runs the experiment.
func Table2(runs int, spec workloads.CrasherSpec) (Table2Result, error) {
	res := Table2Result{Runs: runs}
	for i := 0; i < runs; i++ {
		reproduced := false
		attempts := 0
		opts := core.Options{
			Seed:              int64(i),
			MaxReplays:        1000,
			DelayOnDivergence: true,
			OnEpochEnd: func(rt *core.Runtime, info core.EpochEndInfo) core.Decision {
				if info.Reason == core.StopFault && !reproduced {
					return core.Replay
				}
				return core.Proceed
			},
			OnReplayMatched: func(rt *core.Runtime, a int) core.Decision {
				reproduced = true
				attempts = a
				return core.Proceed
			},
		}
		rt, err := core.New(spec.Build(), opts)
		if err != nil {
			return res, err
		}
		_, runErr := rt.Run()
		if runErr == nil {
			continue // race did not fire
		}
		var trap *interp.Trap
		if !errors.As(runErr, &trap) {
			return res, fmt.Errorf("run %d: unexpected error %v", i, runErr)
		}
		res.Crashes++
		if !reproduced {
			res.Failures++
			continue
		}
		if attempts > res.MaxNeeded {
			res.MaxNeeded = attempts
		}
		switch {
		case attempts <= 1:
			res.Buckets[0]++
		case attempts == 2:
			res.Buckets[1]++
		case attempts == 3:
			res.Buckets[2]++
		default:
			res.Buckets[3]++
		}
	}
	return res, nil
}

// Table3Row is one application's normalized-runtime row.
type Table3Row struct {
	App       string
	IRAlloc   float64
	IReplayer float64
	CLAP      float64
	RR        float64
}

// Table3 measures recording overhead for every application.
func Table3(specs []workloads.Spec, rounds int, scale float64) ([]Table3Row, error) {
	var rows []Table3Row
	for _, s := range specs {
		s := scaleSpec(s, scale)
		row := Table3Row{App: s.Name}
		var err error
		if row.IRAlloc, err = Normalized(s, SysIRAlloc, rounds); err != nil {
			return nil, err
		}
		if row.IReplayer, err = Normalized(s, SysIReplayer, rounds); err != nil {
			return nil, err
		}
		if row.CLAP, err = Normalized(s, SysCLAP, rounds); err != nil {
			return nil, err
		}
		if row.RR, err = Normalized(s, SysRR, rounds); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure5Row is one application's detector-overhead comparison.
type Figure5Row struct {
	App      string
	IR       float64
	IRDetect float64
	ASan     float64
}

// Figure5 measures detector overhead for every application.
func Figure5(specs []workloads.Spec, rounds int, scale float64) ([]Figure5Row, error) {
	var rows []Figure5Row
	for _, s := range specs {
		s := scaleSpec(s, scale)
		row := Figure5Row{App: s.Name}
		var err error
		if row.IR, err = Normalized(s, SysIReplayer, rounds); err != nil {
			return nil, err
		}
		if row.IRDetect, err = Normalized(s, SysIRDetect, rounds); err != nil {
			return nil, err
		}
		if row.ASan, err = Normalized(s, SysASan, rounds); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// DetectionRow is one §5.4.1 corpus result.
type DetectionRow struct {
	Bug      string
	Kind     string
	Detected bool
	SiteOK   bool
	Blamed   string
}

// DetectionTable runs the bug corpus through the detectors.
func DetectionTable() ([]DetectionRow, error) {
	var rows []DetectionRow
	for _, b := range workloads.Corpus() {
		d := detect.New(detect.Config{Overflow: true, UseAfterFree: true})
		rt, err := core.New(b.Build(), d.Options())
		if err != nil {
			return nil, err
		}
		if err := d.Attach(rt); err != nil {
			return nil, err
		}
		if _, err := rt.Run(); err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		rep := d.Report()
		row := DetectionRow{Bug: b.Name, Kind: "overflow"}
		if b.Kind == workloads.BugUseAfterFree {
			row.Kind = "use-after-free"
		}
		row.Detected = len(rep.Violations) > 0
		if len(rep.RootCauses) > 0 && len(rep.RootCauses[0].Hits) > 0 {
			row.Blamed = rep.RootCauses[0].Hits[0].Stack[0].Func
			row.SiteOK = row.Blamed == b.Site
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// scaleSpec shrinks or grows a workload's iteration count.
func scaleSpec(s workloads.Spec, scale float64) workloads.Spec {
	if scale > 0 && scale != 1 {
		it := int(float64(s.Iters) * scale)
		if it < 3 {
			it = 3
		}
		s.Iters = it
	}
	return s
}

// --- printers ---

// PrintTable1 renders rows like the paper's Table 1.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "Table 1: %% memory difference between original execution and re-execution\n")
	fmt.Fprintf(w, "%-15s %8s %8s %8s\n", "application", "Orig", "IR", "RR")
	for _, r := range rows {
		fmt.Fprintf(w, "%-15s %8.2f %8.2f %8.2f\n", r.App, r.Orig, r.IR, r.RR)
	}
}

// PrintTable2 renders the Crasher bucket percentages like the paper's
// Table 2.
func PrintTable2(w io.Writer, r Table2Result) {
	fmt.Fprintf(w, "Table 2: reproducing Crasher's race (%d runs, %d crashed = %.1f%%)\n",
		r.Runs, r.Crashes, 100*float64(r.Crashes)/float64(max(1, r.Runs)))
	fmt.Fprintf(w, "%-14s %8s %8s %8s %8s\n", "replay times", "1", "2", "3", ">=4")
	den := float64(max(1, r.Crashes))
	fmt.Fprintf(w, "%-14s %7.3f%% %7.3f%% %7.3f%% %7.3f%%\n", "percentage",
		100*float64(r.Buckets[0])/den, 100*float64(r.Buckets[1])/den,
		100*float64(r.Buckets[2])/den, 100*float64(r.Buckets[3])/den)
	if r.Failures > 0 {
		fmt.Fprintf(w, "unreproduced: %d\n", r.Failures)
	}
}

// PrintTable3 renders normalized runtimes like the paper's Table 3,
// including the closing average row.
func PrintTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintf(w, "Table 3: performance overhead (normalized runtime)\n")
	fmt.Fprintf(w, "%-15s %9s %10s %8s %8s\n", "application", "IR-Alloc", "iReplayer", "CLAP", "RR")
	var a, b, c, d float64
	for _, r := range rows {
		fmt.Fprintf(w, "%-15s %9.3f %10.3f %8.3f %8.3f\n", r.App, r.IRAlloc, r.IReplayer, r.CLAP, r.RR)
		a += r.IRAlloc
		b += r.IReplayer
		c += r.CLAP
		d += r.RR
	}
	n := float64(len(rows))
	if n > 0 {
		fmt.Fprintf(w, "%-15s %9.3f %10.3f %8.3f %8.3f\n", "average", a/n, b/n, c/n, d/n)
	}
}

// PrintFigure5 renders the detector comparison as the series behind
// Figure 5.
func PrintFigure5(w io.Writer, rows []Figure5Row) {
	fmt.Fprintf(w, "Figure 5: detector overhead (normalized runtime)\n")
	fmt.Fprintf(w, "%-15s %10s %17s %8s\n", "application", "iReplayer", "iReplayer(OF+DP)", "ASan")
	var a, b, c float64
	for _, r := range rows {
		fmt.Fprintf(w, "%-15s %10.3f %17.3f %8.3f\n", r.App, r.IR, r.IRDetect, r.ASan)
		a += r.IR
		b += r.IRDetect
		c += r.ASan
	}
	n := float64(len(rows))
	if n > 0 {
		fmt.Fprintf(w, "%-15s %10.3f %17.3f %8.3f\n", "average", a/n, b/n, c/n)
	}
}

// PrintDetection renders the §5.4.1 effectiveness table.
func PrintDetection(w io.Writer, rows []DetectionRow) {
	fmt.Fprintf(w, "Detection effectiveness (5.4.1)\n")
	fmt.Fprintf(w, "%-20s %-15s %9s %9s %s\n", "bug", "kind", "detected", "site-ok", "blamed")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s %-15s %9v %9v %s\n", r.Bug, r.Kind, r.Detected, r.SiteOK, r.Blamed)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Summary renders a one-line digest used by tests.
func Summary(rows []Table3Row) string {
	var sb strings.Builder
	names := make([]string, 0, len(rows))
	for _, r := range rows {
		names = append(names, r.App)
	}
	sort.Strings(names)
	fmt.Fprintf(&sb, "%d apps", len(names))
	return sb.String()
}
