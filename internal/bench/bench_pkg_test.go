package bench

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/hostrace"
	"repro/internal/workloads"
)

func smallApps(names ...string) []workloads.Spec {
	var out []workloads.Spec
	for _, n := range names {
		s, ok := workloads.ByName(n)
		if !ok {
			panic("unknown app " + n)
		}
		out = append(out, s)
	}
	return out
}

func TestRunOnceAllSystems(t *testing.T) {
	s, _ := workloads.ByName("sqlite")
	s.Iters = 6
	for _, sys := range []System{SysBaseline, SysIRAlloc, SysIReplayer, SysCLAP, SysRR, SysIRDetect, SysASan} {
		if _, err := RunOnce(s, sys, 3); err != nil {
			t.Fatalf("%v: %v", sys, err)
		}
	}
}

func TestTable1ShapeOrigPositiveIRZero(t *testing.T) {
	rows, err := Table1(smallApps("swaptions", "pfscan"), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Orig <= 0 {
			t.Errorf("%s: Orig diff = %.3f%%, want > 0 (ASLR + racing must shift the heap)", r.App, r.Orig)
		}
		if r.IR != 0 {
			t.Errorf("%s: IR diff = %.3f%%, want exactly 0 (identical replay)", r.App, r.IR)
		}
		if r.RR != 0 {
			t.Errorf("%s: RR diff = %.3f%%, want exactly 0", r.App, r.RR)
		}
	}
}

func TestTable1CannealAblation(t *testing.T) {
	// canneal (ad hoc atomics) may fail identity; canneal-mutex must not.
	fixed := workloads.CannealMutex()
	fixed.Iters = 10
	diff, err := table1IR(fixed)
	if err != nil {
		t.Fatal(err)
	}
	if diff != 0 {
		t.Fatalf("canneal-mutex IR diff = %.3f%%, want 0 after replacing atomics with locks", diff)
	}
}

//ir:racy reproduces Crasher's data race on purpose to measure replay-attempt buckets
func TestTable2CrasherBuckets(t *testing.T) {
	if hostrace.Enabled {
		t.Skip("Crasher races on VM memory by design (§5.2.1)")
	}
	res, err := Table2(15, workloads.DefaultCrasher())
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes == 0 {
		t.Skip("race never fired")
	}
	if res.Failures > 0 {
		t.Fatalf("crashes not reproduced: %+v", res)
	}
	total := res.Buckets[0] + res.Buckets[1] + res.Buckets[2] + res.Buckets[3]
	if total != res.Crashes {
		t.Fatalf("buckets %v do not sum to crashes %d", res.Buckets, res.Crashes)
	}
	// First-attempt reproduction should dominate, as in the paper (99.87%).
	if res.Buckets[0] == 0 {
		t.Fatalf("no first-attempt reproductions: %+v", res)
	}
}

//ir:racy runs the racy benchmark sample; the races are the measurement subject
func TestTable3ShapeOnSample(t *testing.T) {
	if hostrace.Enabled {
		t.Skip("timing-shape assertions are meaningless under the race detector's overhead")
	}
	// Shape assertions only: tiny scaled runs on a shared host are noisy, so
	// the test checks the orderings the paper's conclusions rest on, with
	// slack, and leaves absolute numbers to cmd/ir-bench + EXPERIMENTS.md.
	// Every sample is taken unconditionally and each metric is judged on its
	// median: one scheduling burst (single-CPU hosts, background
	// compilation) cannot flip an ordering, and there is no
	// remeasure-until-it-passes bias.
	const samples = 3
	var fl, x [samples]Table3Row
	for i := 0; i < samples; i++ {
		rows, err := Table3(smallApps("fluidanimate", "x264"), 3, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		byName := map[string]Table3Row{}
		for _, r := range rows {
			byName[r.App] = r
		}
		fl[i], x[i] = byName["fluidanimate"], byName["x264"]
	}
	med := func(rs [samples]Table3Row, pick func(Table3Row) float64) float64 {
		v := []float64{pick(rs[0]), pick(rs[1]), pick(rs[2])}
		sort.Float64s(v)
		return v[1]
	}
	// Sanity: no configuration should be wildly faster than the baseline.
	for app, rs := range map[string][samples]Table3Row{"fluidanimate": fl, "x264": x} {
		if m := med(rs, func(r Table3Row) float64 { return r.IReplayer }); m < 0.5 {
			t.Errorf("%s: median iReplayer = %.3f, implausibly below baseline", app, m)
		}
		if m := med(rs, func(r Table3Row) float64 { return r.IRAlloc }); m < 0.3 {
			t.Errorf("%s: median IRAlloc = %.3f, implausibly below baseline", app, m)
		}
	}
	// RR (serialization, including the forfeited parallel speedup) must
	// cost more than iReplayer's recording on parallel applications; 10%
	// slack absorbs residual timer noise surviving the medians.
	flRR := med(fl, func(r Table3Row) float64 { return r.RR })
	flIR := med(fl, func(r Table3Row) float64 { return r.IReplayer })
	if flRR < flIR*0.9 {
		t.Errorf("median RR (%.3f) should exceed median iReplayer (%.3f) on fluidanimate", flRR, flIR)
	}
	// CLAP's path profiling must hurt the branch-density extreme clearly.
	if m := med(x, func(r Table3Row) float64 { return r.CLAP }); m < 1.2 {
		t.Errorf("x264 median CLAP = %.3f, expected substantial path-profiling cost", m)
	}
}

func TestDetectionTableAllDetected(t *testing.T) {
	rows, err := DetectionTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(workloads.Corpus()) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.Detected || !r.SiteOK {
			t.Errorf("%s: detected=%v siteOK=%v blamed=%q", r.Bug, r.Detected, r.SiteOK, r.Blamed)
		}
	}
}

func TestPrinters(t *testing.T) {
	var sb strings.Builder
	PrintTable1(&sb, []Table1Row{{App: "x", Orig: 1, IR: 0, RR: 0}})
	PrintTable2(&sb, Table2Result{Runs: 10, Crashes: 8, Buckets: [4]int{8, 0, 0, 0}})
	PrintTable3(&sb, []Table3Row{{App: "x", IRAlloc: 0.97, IReplayer: 1.03, CLAP: 2.6, RR: 17.5}})
	PrintFigure5(&sb, []Figure5Row{{App: "x", IR: 1.03, IRDetect: 1.05, ASan: 1.26}})
	PrintDetection(&sb, []DetectionRow{{Bug: "b", Kind: "overflow", Detected: true, SiteOK: true, Blamed: "f"}})
	out := sb.String()
	for _, want := range []string{"Table 1", "Table 2", "Table 3", "Figure 5", "average", "Crasher"} {
		if !strings.Contains(out, want) {
			t.Errorf("printer output missing %q", want)
		}
	}
}
