package bench

// Machine-readable performance suite: the numbers `ir-bench -json` writes
// to BENCH_<n>.json so the perf trajectory is tracked PR-over-PR. The suite
// covers the five hot paths this system lives on: recording (events/sec
// while the application runs), parallel offline replay (batch throughput by
// worker count), parallel replay-time analysis (ditto, with the race and
// leak analyzers attached), segment-parallel replay of one checkpointed
// trace (the long-trace scale lever), and the trace service daemon
// sustaining concurrent analyze jobs end to end through its HTTP API (the
// multi-client scale lever).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/record"
	"repro/internal/server"
	"repro/internal/tir"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// PerfResult is one benchmark row.
type PerfResult struct {
	// Name identifies the measurement ("record/pfscan",
	// "replay-batch/pfscan", "analyze-batch/pfscan").
	Name string `json:"name"`
	// Workers is the pool size for batch rows (0 for single-run rows).
	Workers int `json:"workers,omitempty"`
	// Ops is the number of operations timed (1 for record rows, the job
	// count for batch rows).
	Ops int `json:"ops"`
	// NsPerOp is wall-clock nanoseconds per operation.
	NsPerOp int64 `json:"ns_per_op"`
	// EventsPerSec is recorded events processed per second of wall time.
	EventsPerSec float64 `json:"events_per_sec"`
	// AllocBytesPerOp is heap bytes allocated per operation (the
	// go-test -benchmem column, measured via runtime.MemStats), reported
	// for the memory-sensitive rows so the peak-alloc trajectory is
	// tracked PR-over-PR.
	AllocBytesPerOp int64 `json:"alloc_bytes_per_op,omitempty"`
	// PeakCacheBytes is the highest store decode-cache cost observed while
	// the row ran (serve-path rows): the daemon's RSS proxy.
	PeakCacheBytes int64 `json:"peak_cache_bytes,omitempty"`
}

// measureAllocs runs fn and returns heap bytes allocated during it.
func measureAllocs(fn func() error) (int64, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	err := fn()
	runtime.ReadMemStats(&after)
	return int64(after.TotalAlloc - before.TotalAlloc), err
}

// PerfReport is the BENCH_<n>.json document.
type PerfReport struct {
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Scale      float64      `json:"scale"`
	Results    []PerfResult `json:"results"`
}

// perfApps are the workloads the suite records and replays: lock-heavy,
// allocation-heavy, and IO-heavy representatives.
var perfApps = []string{"fluidanimate", "dedup", "pfscan"}

// Perf runs the suite at the given workload scale.
func Perf(scale float64) (*PerfReport, error) {
	rep := &PerfReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      scale,
	}
	workerSweep := []int{1, 2, 4, 8}

	for _, name := range perfApps {
		spec, ok := workloads.ByName(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown perf app %q", name)
		}
		spec.Iters = int(float64(spec.Iters) * scale)
		if spec.Iters < 3 {
			spec.Iters = 3
		}
		mod, err := spec.Build()
		if err != nil {
			return nil, err
		}

		// Record once, in memory, timing the run.
		var epochs []*record.EpochLog
		opts := core.Options{Seed: 7}
		opts.TraceSink = func(ep *record.EpochLog) error {
			epochs = append(epochs, ep)
			return nil
		}
		rt, err := core.New(mod, opts)
		if err != nil {
			return nil, err
		}
		spec.SetupOS(rt.OS())
		start := time.Now()
		runRep, err := rt.Run()
		recordWall := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("bench: recording %s: %w", name, err)
		}
		tr := &trace.Trace{
			Header: trace.Header{App: spec.Name, ModuleHash: tir.Fingerprint(mod),
				Seed: opts.Seed, AppIters: spec.Iters},
			Epochs:  epochs,
			Summary: &trace.Summary{Exit: runRep.Exit, Output: runRep.Output},
		}
		events := tr.EventCount()
		rep.Results = append(rep.Results, PerfResult{
			Name:         "record/" + name,
			Ops:          1,
			NsPerOp:      recordWall.Nanoseconds(),
			EventsPerSec: perSec(events, recordWall),
		})

		job := trace.Job{
			Name: name, Module: mod, Handle: trace.OpenTrace(tr),
			Opts:  core.Options{DelayOnDivergence: true},
			Setup: func(rt *core.Runtime) error { spec.SetupOS(rt.OS()); return nil },
		}
		nJobs := rep.GOMAXPROCS * 2
		if nJobs < 4 {
			nJobs = 4
		}
		for _, w := range workerSweep {
			if w > rep.GOMAXPROCS {
				break
			}
			results, stats := trace.ReplayBatch(trace.Fanout(job, nJobs), w)
			if stats.Failed > 0 {
				return nil, fmt.Errorf("bench: replay batch %s w=%d: %v", name, w, firstErr(results))
			}
			rep.Results = append(rep.Results, PerfResult{
				Name:         "replay-batch/" + name,
				Workers:      w,
				Ops:          stats.Jobs,
				NsPerOp:      stats.Elapsed.Nanoseconds() / int64(stats.Jobs),
				EventsPerSec: perSec(stats.Events, stats.Elapsed),
			})

			ajobs := make([]trace.AnalyzeJob, nJobs)
			for i := range ajobs {
				ajobs[i] = trace.AnalyzeJob{
					Job: trace.Job{
						Name: fmt.Sprintf("%s#%d", name, i), Module: mod, Handle: job.Handle,
						Opts:  core.Options{DelayOnDivergence: true},
						Setup: job.Setup,
					},
					NewAnalyzers: func() []analysis.Analyzer {
						return []analysis.Analyzer{analysis.NewRaceDetector(), analysis.NewLeakDetector()}
					},
				}
			}
			aresults, astats := trace.AnalyzeBatch(ajobs, w)
			if astats.Failed > 0 {
				return nil, fmt.Errorf("bench: analyze batch %s w=%d: %v", name, w, firstAErr(aresults))
			}
			rep.Results = append(rep.Results, PerfResult{
				Name:         "analyze-batch/" + name,
				Workers:      w,
				Ops:          astats.Jobs,
				NsPerOp:      astats.Elapsed.Nanoseconds() / int64(astats.Jobs),
				EventsPerSec: perSec(astats.Events, astats.Elapsed),
			})
		}
	}

	if err := perfSegments(rep, scale, workerSweep); err != nil {
		return nil, err
	}
	if err := perfRing(rep, scale); err != nil {
		return nil, err
	}
	if err := perfServe(rep, scale); err != nil {
		return nil, err
	}
	return rep, nil
}

// perfSegments measures segment-parallel replay of one long checkpointed
// recording against whole-program replay of the same trace. The workload is
// a latency-bound service loop (think time dominates, as in the modeled
// servers), so the wall-clock compression segment replay buys is visible
// regardless of host core count.
func perfSegments(rep *PerfReport, scale float64, workerSweep []int) error {
	spec := workloads.RelayService()
	spec.Iters = int(float64(spec.Iters) * scale)
	if spec.Iters < 32 {
		spec.Iters = 32
	}
	memCfg := mem.Config{GlobalSize: 1 << 20, HeapSize: 2 << 20, StackSlot: 64 << 10, MaxThreads: 8}
	mod, err := spec.Build()
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, trace.Header{
		App: spec.Name, ModuleHash: tir.Fingerprint(mod), Seed: 7, AppIters: spec.Iters, EventCap: 64,
	})
	if err != nil {
		return err
	}
	opts := core.Options{Seed: 7, EventCap: 64, Mem: memCfg, CheckpointEvery: 1}
	opts.TraceSink = w.Sink()
	opts.CheckpointSink = w.CheckpointSink()
	rt, err := core.New(mod, opts)
	if err != nil {
		return err
	}
	spec.SetupOS(rt.OS())
	runRep, err := rt.Run()
	if err != nil {
		return fmt.Errorf("bench: recording %s: %w", spec.Name, err)
	}
	if err := w.Finish(&trace.Summary{Exit: runRep.Exit, Output: runRep.Output}); err != nil {
		return err
	}
	// Persist the recording into a real store so every segment row below
	// pays the storage path (footer open, indexed frame reads), exactly as
	// the daemon does.
	dir, err := os.MkdirTemp("", "ir-seg-bench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	if err := os.WriteFile(filepath.Join(dir, spec.Name+trace.Ext), buf.Bytes(), 0o644); err != nil {
		return err
	}
	st, err := trace.OpenStore(dir)
	if err != nil {
		return err
	}
	h, err := st.Open(spec.Name)
	if err != nil {
		return err
	}
	defer h.Close()

	job := trace.Job{
		Name: spec.Name, Module: mod, Handle: h,
		Opts:  core.Options{Seed: 7, EventCap: 64, Mem: memCfg, DelayOnDivergence: true},
		Setup: func(rt *core.Runtime) error { spec.SetupOS(rt.OS()); return nil },
	}
	results, stats := trace.ReplayBatch([]trace.Job{job}, 1)
	if stats.Failed > 0 {
		return fmt.Errorf("bench: whole-program replay of %s: %v", spec.Name, firstErr(results))
	}
	rep.Results = append(rep.Results, PerfResult{
		Name:         "replay-whole/" + spec.Name,
		Ops:          1,
		NsPerOp:      stats.Elapsed.Nanoseconds(),
		EventsPerSec: perSec(stats.Events, stats.Elapsed),
	})
	for _, w := range workerSweep {
		sres, sstats, err := trace.ReplaySegments(job, w)
		if err != nil {
			return fmt.Errorf("bench: segment replay of %s w=%d: %w (results %+v)", spec.Name, w, err, sres)
		}
		rep.Results = append(rep.Results, PerfResult{
			Name:         "segment-replay/" + spec.Name,
			Workers:      w,
			Ops:          sstats.Jobs,
			NsPerOp:      sstats.Elapsed.Nanoseconds(),
			EventsPerSec: perSec(sstats.Events, sstats.Elapsed),
		})
	}

	// Replay-time analysis, whole-trace vs segment-parallel: the
	// analyze-segment rows pay per-segment tape capture plus the sequential
	// state fold, so their gain over the analyze-whole baseline is the
	// headline number for checkpointed analyzer state (acceptance: >= 2x
	// events/sec at 4 workers). The analysis recording deepens the service
	// loop's think time — the long-mostly-idle-trace shape segment-parallel
	// analysis exists for — so each segment's recorded waits dominate its
	// fixed fold/runtime-construction cost even on a single-core host.
	slowSpec := spec
	slowSpec.ThinkTime *= 4
	slowMod, err := slowSpec.Build()
	if err != nil {
		return err
	}
	slowOpts := core.Options{Seed: 7, EventCap: 64, Mem: memCfg, CheckpointEvery: 1}
	var slowBuf bytes.Buffer
	sw, err := trace.NewWriter(&slowBuf, trace.Header{
		App: slowSpec.Name, ModuleHash: tir.Fingerprint(slowMod), Seed: 7,
		AppIters: slowSpec.Iters, EventCap: 64,
	})
	if err != nil {
		return err
	}
	// Dense keyframes keep each segment's checkpoint fold O(1) instead of
	// replaying a delta chain back to the last keyframe.
	sw.SetKeyframeEvery(2)
	slowOpts.TraceSink = sw.Sink()
	slowOpts.CheckpointSink = sw.CheckpointSink()
	srt, err := core.New(slowMod, slowOpts)
	if err != nil {
		return err
	}
	slowSpec.SetupOS(srt.OS())
	slowRep, err := srt.Run()
	if err != nil {
		return fmt.Errorf("bench: slow recording %s: %w", slowSpec.Name, err)
	}
	if err := sw.Finish(&trace.Summary{Exit: slowRep.Exit, Output: slowRep.Output}); err != nil {
		return err
	}
	slowName := slowSpec.Name + "-slow"
	if err := os.WriteFile(filepath.Join(dir, slowName+trace.Ext), slowBuf.Bytes(), 0o644); err != nil {
		return err
	}
	sh, err := st.Open(slowName)
	if err != nil {
		return err
	}
	defer sh.Close()
	factory := func() []analysis.Analyzer {
		return []analysis.Analyzer{analysis.NewRaceDetector(), analysis.NewLeakDetector()}
	}
	ajob := trace.AnalyzeJob{
		Job: trace.Job{
			Name: slowName, Module: slowMod, Handle: sh,
			Opts:  core.Options{Seed: 7, EventCap: 64, Mem: memCfg, DelayOnDivergence: true},
			Setup: func(rt *core.Runtime) error { slowSpec.SetupOS(rt.OS()); return nil },
		},
		NewAnalyzers: factory,
	}
	ares, astats := trace.AnalyzeBatch([]trace.AnalyzeJob{ajob}, 1)
	if astats.Failed > 0 {
		return fmt.Errorf("bench: whole-trace analysis of %s: %v", spec.Name, firstAErr(ares))
	}
	rep.Results = append(rep.Results, PerfResult{
		Name:         "analyze-whole/" + spec.Name,
		Ops:          1,
		NsPerOp:      astats.Elapsed.Nanoseconds(),
		EventsPerSec: perSec(astats.Events, astats.Elapsed),
	})
	for _, w := range workerSweep {
		seg, sstats, err := trace.AnalyzeSegments(ajob, w)
		if err != nil {
			return fmt.Errorf("bench: segment analysis of %s w=%d: %w", spec.Name, w, err)
		}
		if !seg.Matched {
			return fmt.Errorf("bench: segment analysis of %s w=%d did not match: %v", spec.Name, w, seg.Err)
		}
		rep.Results = append(rep.Results, PerfResult{
			Name:         "analyze-segment/" + spec.Name,
			Workers:      w,
			Ops:          sstats.Jobs,
			NsPerOp:      sstats.Elapsed.Nanoseconds(),
			EventsPerSec: perSec(sstats.Events, sstats.Elapsed),
		})
	}

	// Telemetry tax: the same whole-trace and segment replays re-run with
	// collection explicitly on (histograms observed, a live span recorder
	// attached, as under the daemon) vs off. The acceptance budget is the
	// "on" rows staying within ~5% events/sec of the "off" rows.
	for _, mode := range []struct {
		tag string
		on  bool
	}{{"telemetry-off", false}, {"telemetry-on", true}} {
		prev := obs.SetEnabled(mode.on)
		tjob := job
		if mode.on {
			rec := obs.NewRecorder(4096)
			tjob.Span = rec.Start("bench/" + spec.Name)
		}
		wres, wstats := trace.ReplayBatch([]trace.Job{tjob}, 1)
		if wstats.Failed > 0 {
			obs.SetEnabled(prev)
			return fmt.Errorf("bench: %s whole replay of %s: %v", mode.tag, spec.Name, firstErr(wres))
		}
		rep.Results = append(rep.Results, PerfResult{
			Name:         "replay-whole-" + mode.tag + "/" + spec.Name,
			Ops:          1,
			NsPerOp:      wstats.Elapsed.Nanoseconds(),
			EventsPerSec: perSec(wstats.Events, wstats.Elapsed),
		})
		sres, sstats, err := trace.ReplaySegments(tjob, 0)
		obs.SetEnabled(prev)
		if err != nil {
			return fmt.Errorf("bench: %s segment replay of %s: %w (results %+v)", mode.tag, spec.Name, err, sres)
		}
		rep.Results = append(rep.Results, PerfResult{
			Name:         "segment-replay-" + mode.tag + "/" + spec.Name,
			Ops:          sstats.Jobs,
			NsPerOp:      sstats.Elapsed.Nanoseconds(),
			EventsPerSec: perSec(sstats.Events, sstats.Elapsed),
		})
	}

	// Cold start: a fresh store (empty frame cache), open the trace, replay
	// one mid-trace segment. With the v3 index and checkpoint keyframes the
	// cost is one footer read plus the segment's own frames — O(segment),
	// not O(recording) — and the alloc column tracks exactly that.
	coldStore, err := trace.OpenStore(dir)
	if err != nil {
		return err
	}
	start := time.Now()
	var coldEvents int64
	allocBytes, err := measureAllocs(func() error {
		ch, err := coldStore.Open(spec.Name)
		if err != nil {
			return err
		}
		defer ch.Close()
		coldJob := job
		coldJob.Handle = ch
		res, cstats, err := trace.ReplayMidSegment(coldJob)
		if err != nil {
			return fmt.Errorf("bench: segment cold start of %s: %w (result %+v)", spec.Name, err, res)
		}
		coldEvents = cstats.Events
		return nil
	})
	if err != nil {
		return err
	}
	coldWall := time.Since(start)
	rep.Results = append(rep.Results, PerfResult{
		Name:            "segment-coldstart/" + spec.Name,
		Ops:             1,
		NsPerOp:         coldWall.Nanoseconds(),
		EventsPerSec:    perSec(coldEvents, coldWall),
		AllocBytesPerOp: allocBytes,
	})
	return nil
}

// perfRing measures the flight-recorder tax: the same workload recorded
// twice at an identical checkpoint cadence — once through a direct
// file-backed Writer sink (the ordinary store path, whole trace kept) and
// once through the bounded on-disk ring (`ir-run -flight`). Both rows
// count recorded events against the wall clock of the run itself; the
// ring's end-of-run spill is excluded because in production it only
// happens on fault. The always-on budget is the ring row staying within
// ~10% of the direct row's events/sec.
func perfRing(rep *PerfReport, scale float64) error {
	spec, ok := workloads.ByName("streamcluster")
	if !ok {
		return fmt.Errorf("bench: unknown perf app streamcluster")
	}
	spec.Iters = int(float64(spec.Iters) * scale)
	if spec.Iters < 8 {
		spec.Iters = 8
	}
	mod, err := spec.Build()
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "ir-ring-bench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	hdr := trace.Header{
		App: spec.Name, ModuleHash: tir.Fingerprint(mod),
		Seed: 7, EventCap: 24, AppIters: spec.Iters,
	}

	// Direct arm: every epoch and checkpoint streams to a growing file.
	f, err := os.Create(filepath.Join(dir, "direct"+trace.Ext))
	if err != nil {
		return err
	}
	w, err := trace.NewWriter(f, hdr)
	if err != nil {
		return err
	}
	var directEvents int64
	sink := w.Sink()
	opts := core.Options{Seed: 7, EventCap: 24, CheckpointEvery: 1}
	opts.TraceSink = func(ep *record.EpochLog) error {
		directEvents += int64(ep.EventCount())
		return sink(ep)
	}
	opts.CheckpointSink = w.CheckpointSink()
	rt, err := core.New(mod, opts)
	if err != nil {
		return err
	}
	spec.SetupOS(rt.OS())
	start := time.Now()
	runRep, err := rt.Run()
	directWall := time.Since(start)
	if err != nil {
		return fmt.Errorf("bench: direct-sink recording %s: %w", spec.Name, err)
	}
	if err := w.Finish(&trace.Summary{Exit: runRep.Exit, Output: runRep.Output}); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	rep.Results = append(rep.Results, PerfResult{
		Name:         "ring-overhead/direct",
		Ops:          1,
		NsPerOp:      directWall.Nanoseconds(),
		EventsPerSec: perSec(directEvents, directWall),
	})

	// Ring arm: the same streams feed the bounded ring, which also pays
	// rotation (trim to the newest keyframe) as the run outgrows it.
	st, err := trace.OpenStore(dir)
	if err != nil {
		return err
	}
	rec, err := flight.New(flight.RingPath(st, "ring"), hdr, 4)
	if err != nil {
		return err
	}
	defer rec.Close()
	var ringEvents int64
	ropts := core.Options{Seed: 7, EventCap: 24, CheckpointEvery: 1, FlightRecorder: rec}
	ropts.TraceSink = func(ep *record.EpochLog) error {
		ringEvents += int64(ep.EventCount())
		return nil
	}
	rrt, err := core.New(mod, ropts)
	if err != nil {
		return err
	}
	spec.SetupOS(rrt.OS())
	start = time.Now()
	if _, err := rrt.Run(); err != nil {
		return fmt.Errorf("bench: ring-sink recording %s: %w", spec.Name, err)
	}
	ringWall := time.Since(start)
	rep.Results = append(rep.Results, PerfResult{
		Name:         "ring-overhead/ring",
		Ops:          1,
		NsPerOp:      ringWall.Nanoseconds(),
		EventsPerSec: perSec(ringEvents, ringWall),
	})
	return nil
}

// perfServe measures the trace service end to end: a daemon over a seeded
// corpus store, driven through its HTTP API by concurrent clients, with 16
// analyze jobs multiplexed across 8 workers — the acceptance shape for
// "sustains >= 8 concurrent analyze jobs with bounded queue depth". The
// events/sec reported is recorded events re-executed under analysis per
// second of wall time, submission to last terminal state.
func perfServe(rep *PerfReport, scale float64) error {
	const serveWorkers = 8
	const serveJobs = 16

	dir, err := os.MkdirTemp("", "ir-served-bench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	st, err := trace.OpenStore(dir)
	if err != nil {
		return err
	}
	// The corpus: the ground-truth analysis programs (scale-independent).
	names := workloads.AnalysisNames()
	for _, name := range names {
		if _, err := server.RecordTrace(st, server.RecordRequest{App: name}, nil); err != nil {
			return fmt.Errorf("bench: recording %s: %w", name, err)
		}
	}

	srv, err := server.New(server.Config{Store: st, Workers: serveWorkers, QueueDepth: serveJobs})
	if err != nil {
		return err
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Scheduler().Shutdown()

	submit := func(name string) (uint64, error) {
		body := fmt.Sprintf(`{"kind":"analyze","trace":%q}`, name)
		resp, err := ts.Client().Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			return 0, fmt.Errorf("bench: serve submit %s: status %d", name, resp.StatusCode)
		}
		var info struct {
			ID uint64 `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			return 0, err
		}
		return info.ID, nil
	}
	wait := func(id uint64) (int64, error) {
		resp, err := ts.Client().Get(fmt.Sprintf("%s/api/v1/jobs/%d/stream", ts.URL, id))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		dec := json.NewDecoder(resp.Body)
		var last struct {
			State  string `json:"state"`
			Err    string `json:"error"`
			Result struct {
				Events int64 `json:"events"`
			} `json:"result"`
		}
		for {
			var cur struct {
				State  string `json:"state"`
				Err    string `json:"error"`
				Result struct {
					Events int64 `json:"events"`
				} `json:"result"`
			}
			if err := dec.Decode(&cur); err != nil {
				break
			}
			last = cur
		}
		if last.State != "done" {
			return 0, fmt.Errorf("bench: serve job %d: %s (%s)", id, last.State, last.Err)
		}
		return last.Result.Events, nil
	}

	start := time.Now()
	ids := make([]uint64, 0, serveJobs)
	for i := 0; i < serveJobs; i++ {
		id, err := submit(names[i%len(names)])
		if err != nil {
			return err
		}
		ids = append(ids, id)
	}
	var events int64
	for _, id := range ids {
		ev, err := wait(id)
		if err != nil {
			return err
		}
		events += ev
	}
	elapsed := time.Since(start)
	rep.Results = append(rep.Results, PerfResult{
		Name:         "serve-analyze/corpus",
		Workers:      serveWorkers,
		Ops:          serveJobs,
		NsPerOp:      elapsed.Nanoseconds() / serveJobs,
		EventsPerSec: perSec(events, elapsed),
	})

	// Serve-path memory: 16 analyze jobs against 4 distinct larger traces,
	// sampling the store's frame-cache cost while they run. With
	// handle-based resolution the cache holds decoded frames of the
	// segments in flight, so the peak — the daemon's RSS proxy — tracks
	// concurrency, not corpus size.
	bigApps := []string{"fluidanimate", "dedup", "pfscan", "streamcluster"}
	for _, app := range bigApps {
		if _, err := server.RecordTrace(st, server.RecordRequest{
			App: app, Name: "big-" + app, Scale: 0.3 * scale, Seed: 7,
		}, nil); err != nil {
			return fmt.Errorf("bench: recording %s: %w", app, err)
		}
	}
	peak := int64(0)
	stop := make(chan struct{})
	sampled := make(chan struct{})
	go func() {
		defer close(sampled)
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if b := st.Stats().CachedBytes; b > peak {
					peak = b
				}
			}
		}
	}()
	start = time.Now()
	ids = ids[:0]
	for i := 0; i < serveJobs; i++ {
		id, err := submit("big-" + bigApps[i%len(bigApps)])
		if err != nil {
			close(stop)
			<-sampled
			return err
		}
		ids = append(ids, id)
	}
	events = 0
	for _, id := range ids {
		ev, err := wait(id)
		if err != nil {
			close(stop)
			<-sampled
			return err
		}
		events += ev
	}
	elapsed = time.Since(start)
	close(stop)
	<-sampled
	if b := st.Stats().CachedBytes; b > peak {
		peak = b
	}
	rep.Results = append(rep.Results, PerfResult{
		Name:           "serve-cache/4x16",
		Workers:        serveWorkers,
		Ops:            serveJobs,
		NsPerOp:        elapsed.Nanoseconds() / serveJobs,
		EventsPerSec:   perSec(events, elapsed),
		PeakCacheBytes: peak,
	})
	return nil
}

func perSec(n int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}

func firstErr(rs []trace.Result) error {
	for _, r := range rs {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}

func firstAErr(rs []trace.AnalyzeResult) error {
	for _, r := range rs {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}
