package gen

// Seed-batch driving: the bridge between "check one program" (diff.go)
// and the three consumers — the native go-test fuzz target, the CI smoke
// batch, and the ir-fuzz CLI. A seed fully determines the program, so a
// failure report is just the seed plus the minimized spec; anyone can
// reproduce it with `ir-fuzz -seed N` or promote the spec into
// testdata/corpus.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/sched"
)

// Failure describes one failed seed.
type Failure struct {
	Seed int64
	Mode Mode
	// Err is the first violated equivalence.
	Err error
	// Prog is the generation as drawn from the seed.
	Prog *Prog
	// Min is the shrunken witness (equal to Prog when no mutation
	// preserved the failure; nil when shrinking was disabled).
	Min *Prog
}

// String renders the failure for humans: seed, cause, and the minimized
// spec ready for corpus check-in.
func (f *Failure) String() string {
	min := f.Min
	if min == nil {
		min = f.Prog
	}
	return fmt.Sprintf("seed %d (%s): %v\nminimized spec (%d ops):\n%s",
		f.Seed, modeName(f.Mode), f.Err, min.Ops(), min.Marshal())
}

func modeName(m Mode) string {
	if m == ModeRacy {
		return "racy"
	}
	return "race-free"
}

// CheckSeed generates the seed's program, runs the differential pipeline,
// and on failure shrinks the witness (unless noShrink). Returns nil when
// the seed passes.
func CheckSeed(seed int64, mode Mode, cfg Config, noShrink bool) *Failure {
	p := Generate(seed, mode)
	err := cfg.Check(p)
	if err == nil {
		return nil
	}
	f := &Failure{Seed: seed, Mode: mode, Err: err, Prog: p}
	if !noShrink {
		f.Min = Shrink(p, func(q *Prog) bool { return cfg.Check(q) != nil })
	}
	return f
}

// Batch parameterizes a seed sweep.
type Batch struct {
	Config
	// Start is the first seed; Seeds the count.
	Start int64
	Seeds int
	// Workers bounds parallel seeds (<= 0 selects GOMAXPROCS).
	Workers int
	// RacyEvery makes every Nth seed (counting from Start) generate in
	// ModeRacy; 0 keeps the whole batch race-free — the mode CI uses, and
	// the only host-race-safe one (racy generations are genuine Go-level
	// races on VM memory; see internal/hostrace).
	RacyEvery int
	// NoShrink skips minimization of failures.
	NoShrink bool
	// Progress, when set, is called after every seed with the running
	// totals. Calls are serialized.
	Progress func(done, failed int)
}

// Run sweeps the batch and returns every failure, ordered by seed.
func (b Batch) Run() []Failure {
	failures := make([]*Failure, b.Seeds)
	var done, failed atomic.Int64
	var progressMu sync.Mutex
	sched.RunPool(b.Seeds, b.Workers, func(i int) {
		seed := b.Start + int64(i)
		mode := ModeRaceFree
		if b.RacyEvery > 0 && i%b.RacyEvery == b.RacyEvery-1 {
			mode = ModeRacy
		}
		f := CheckSeed(seed, mode, b.Config, b.NoShrink)
		failures[i] = f
		d := done.Add(1)
		n := failed.Load()
		if f != nil {
			n = failed.Add(1)
		}
		if b.Progress != nil {
			progressMu.Lock()
			b.Progress(int(d), int(n))
			progressMu.Unlock()
		}
	})
	var out []Failure
	for _, f := range failures {
		if f != nil {
			out = append(out, *f)
		}
	}
	return out
}
