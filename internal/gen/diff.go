package gen

// The differential harness: one generated program in, every replay-path
// identity the repo promises checked against it. Check records the
// program once, then asserts
//
//	(a) whole-trace replay identity — exit code, output, and final heap
//	    image byte-match the recording,
//	(b) segment-vs-whole equivalence — the checkpointed recording replays
//	    segment-parallel with every interior segment byte-matching the
//	    next checkpoint (enforced inside ReplaySegments) and the stitched
//	    output reproducing the whole,
//	(c) analyzer ground truth — race-free generations produce zero
//	    findings; racy generations produce data-race findings naming
//	    exactly the planted pair, and the findings are identical across
//	    repeated analysis runs and across the segment-parallel analysis
//	    path (per-segment tapes folded through checkpointed analyzer
//	    state),
//	(d) representation identity — the same equivalences hold after
//	    per-frame compression, after Store.Compact re-encoding, and for
//	    the flight-ring spill of the very same run.
//
// Tamper injects a fault into the recorded artifact before checking, so
// tests can prove the oracle has teeth: a harness that passes a tampered
// trace is a broken harness.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/record"
	"repro/internal/tir"
	"repro/internal/trace"
)

// Config parameterizes one differential check.
type Config struct {
	// EventCap is the recording's per-thread event list size; the small
	// default (24) forces every generation across multiple epochs.
	EventCap int
	// CheckpointEvery is the recording's checkpoint cadence in epochs
	// (default 2), which is what gives segment replay its cut points.
	CheckpointEvery int
	// Workers bounds segment-replay parallelism (default 2).
	Workers int
	// MaxReplays bounds divergence retries per replay (default 8): a
	// tampered trace must fail fast, not spin through the offline
	// replayer's 256-attempt default.
	MaxReplays int
	// Dir, when set, is the scratch directory for the store-based checks;
	// empty uses a private temp directory per call.
	Dir string
	// Tamper corrupts the recorded trace before checking (oracle
	// self-test); TamperNone checks the genuine artifact.
	Tamper Tamper
}

func (c *Config) fill() {
	if c.EventCap == 0 {
		c.EventCap = 24
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 2
	}
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.MaxReplays == 0 {
		c.MaxReplays = 8
	}
}

// Tamper selects a deliberate corruption of the recorded trace.
type Tamper int

const (
	// TamperNone leaves the recording intact.
	TamperNone Tamper = iota
	// TamperOutput corrupts the summary's recorded output — the replay
	// output oracle must notice.
	TamperOutput
	// TamperOrder flips a recorded lock-acquisition order — replay must
	// either diverge or produce different observed values.
	TamperOrder
	// TamperDropEpoch deletes the final epoch — the replay cannot reach
	// the recorded end state.
	TamperDropEpoch
)

// Check runs the full differential pipeline over p and returns the first
// violated equivalence (nil when every check passes).
func (cfg Config) Check(p *Prog) error {
	cfg.fill()
	if err := p.Validate(); err != nil {
		return err
	}
	mod, err := p.Build()
	if err != nil {
		return err
	}

	dir := cfg.Dir
	if dir == "" {
		var terr error
		dir, terr = os.MkdirTemp("", "ir-fuzz")
		if terr != nil {
			return terr
		}
		defer os.RemoveAll(dir)
	}

	hdr := trace.Header{
		App:        "gen",
		ModuleHash: tir.Fingerprint(mod),
		EventCap:   cfg.EventCap,
		Seed:       p.Seed,
	}

	// --- record once, with the trace writer and a flight ring attached ---
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, hdr)
	if err != nil {
		return err
	}
	fr, err := flight.New(filepath.Join(dir, "ring.ir"), hdr, 2)
	if err != nil {
		return err
	}
	defer fr.Close()
	rt, err := core.New(mod, core.Options{
		Seed:            p.Seed,
		EventCap:        cfg.EventCap,
		TraceSink:       w.Sink(),
		CheckpointEvery: cfg.CheckpointEvery,
		CheckpointSink:  w.CheckpointSink(),
		FlightRecorder:  fr,
	})
	if err != nil {
		return err
	}
	p.SetupOS(rt.OS())
	rep, err := rt.Run()
	if err != nil {
		return fmt.Errorf("record: %w", err)
	}
	recHeap := rt.Mem().HeapImage()
	sum := &trace.Summary{Exit: rep.Exit, Output: rep.Output}
	if err := w.Finish(sum); err != nil {
		return err
	}
	raw := buf.Bytes()
	if cfg.Tamper != TamperNone {
		if raw, err = tamper(raw, cfg.Tamper); err != nil {
			return err
		}
	}

	ropts := core.Options{
		Seed:              p.Seed,
		EventCap:          cfg.EventCap,
		MaxReplays:        cfg.MaxReplays,
		DelayOnDivergence: true,
	}
	setup := func(rt *core.Runtime) error { p.SetupOS(rt.OS()); return nil }

	h, err := trace.OpenBytes(raw)
	if err != nil {
		return fmt.Errorf("decode: %w", err)
	}

	// --- (a) whole-trace replay identity, including the heap image ---
	if err := cfg.replayIdentical(p, mod, h, ropts, recHeap); err != nil {
		return fmt.Errorf("whole-replay: %w", err)
	}

	// --- (b) segment-vs-whole equivalence ---
	// Racy programs are excluded: a segment's end state is byte-compared
	// against the next recording-time checkpoint, and the planted racy
	// cell may legitimately hold a different lost-update value when the
	// unlocked accesses re-interleave. Race-free programs have no such
	// byte, so any mismatch is a stitching bug.
	if !p.Racy() {
		if err := cfg.segmentsStitch(p, mod, h, ropts); err != nil {
			return fmt.Errorf("segment-replay: %w", err)
		}
	}

	// --- (c) analyzer ground truth and determinism ---
	epochs, err := h.AllEpochs()
	if err != nil {
		return err
	}
	findings, err := cfg.analyze(mod, epochs, ropts, setup)
	if err != nil {
		return fmt.Errorf("analyze: %w", err)
	}
	again, err := cfg.analyze(mod, epochs, ropts, setup)
	if err != nil {
		return fmt.Errorf("analyze (rerun): %w", err)
	}
	// Race-free findings (the empty set) must be bitwise stable across
	// runs. Racy programs get the semantic check on every run instead:
	// the *verdict* — the planted pair, and nothing else — is what the
	// detector guarantees, while the observation order of the unlocked
	// accesses (and hence finding order and read/write attribution) may
	// legitimately vary between replays.
	if !p.Racy() && !reflect.DeepEqual(findings, again) {
		return fmt.Errorf("analyze: findings differ between runs: %v vs %v", findings, again)
	}
	if err := p.checkFindings(findings); err != nil {
		return err
	}
	if err := p.checkFindings(again); err != nil {
		return fmt.Errorf("rerun: %w", err)
	}
	// The same recording analyzed segment-parallel — per-segment tapes
	// folded through checkpointed analyzer state — must agree with the
	// whole-trace analysis: bitwise for race-free programs, by semantic
	// verdict for racy ones (whose observation order varies per replay on
	// both paths).
	segRes, _, err := trace.AnalyzeSegments(trace.AnalyzeJob{
		Job: trace.Job{Name: "gen", Module: mod, Handle: h, Opts: ropts, Setup: setup},
		NewAnalyzers: func() []analysis.Analyzer {
			return []analysis.Analyzer{analysis.NewRaceDetector(), analysis.NewLeakDetector()}
		},
	}, cfg.Workers)
	if err != nil {
		return fmt.Errorf("segment-analyze: %w", err)
	}
	if !segRes.Matched {
		return fmt.Errorf("segment-analyze: %w", segRes.Err)
	}
	if !p.Racy() && !reflect.DeepEqual(findings, segRes.Findings) {
		return fmt.Errorf("segment-analyze: findings differ from whole-trace: %v vs %v",
			findings, segRes.Findings)
	}
	if err := p.checkFindings(segRes.Findings); err != nil {
		return fmt.Errorf("segment-analyze: %w", err)
	}

	// --- (d) identity across compression, compaction, and flight spill ---
	tr, err := trace.Decode(raw)
	if err != nil {
		return err
	}
	ztr := *tr
	ztr.Header.Compressed = true
	zraw, err := trace.Encode(&ztr)
	if err != nil {
		return fmt.Errorf("compress: %w", err)
	}
	zh, err := trace.OpenBytes(zraw)
	if err != nil {
		return fmt.Errorf("compress: decode: %w", err)
	}
	if err := cfg.replayIdentical(p, mod, zh, ropts, recHeap); err != nil {
		return fmt.Errorf("compressed-replay: %w", err)
	}
	if !p.Racy() {
		if err := cfg.segmentsStitch(p, mod, zh, ropts); err != nil {
			return fmt.Errorf("compressed-segment-replay: %w", err)
		}
	}

	st, err := trace.OpenStore(dir)
	if err != nil {
		return err
	}
	if _, err := st.Save("gen", tr); err != nil {
		return err
	}
	if _, err := st.Compact("gen", 4); err != nil {
		return fmt.Errorf("compact: %w", err)
	}
	ch, err := st.Open("gen")
	if err != nil {
		return err
	}
	if err := cfg.replayIdentical(p, mod, ch, ropts, recHeap); err != nil {
		return fmt.Errorf("compacted-replay: %w", err)
	}
	cepochs, err := ch.AllEpochs()
	if err != nil {
		return err
	}
	cfindings, err := cfg.analyze(mod, cepochs, ropts, setup)
	if err != nil {
		return fmt.Errorf("compacted-analyze: %w", err)
	}
	if !p.Racy() && !reflect.DeepEqual(findings, cfindings) {
		return fmt.Errorf("compact: findings changed: %v vs %v", findings, cfindings)
	}
	if err := p.checkFindings(cfindings); err != nil {
		return fmt.Errorf("compact: %w", err)
	}

	// The ring recorded the same run; its retained-suffix spill must
	// replay and match the (possibly trimmed) summary oracle.
	if _, err := fr.Spill(st, "gen-flt", sum); err != nil {
		return fmt.Errorf("flight-spill: %w", err)
	}
	fh, err := st.Open("gen-flt")
	if err != nil {
		return err
	}
	results, _ := trace.ReplayBatch([]trace.Job{{
		Name: "gen-flt", Module: mod, Handle: fh, Opts: ropts, Setup: setup,
	}}, 1)
	if !results[0].Matched || results[0].Err != nil {
		return fmt.Errorf("flight-replay: matched=%v err=%v", results[0].Matched, results[0].Err)
	}
	return nil
}

// replayIdentical replays the whole trace behind h and checks the full
// identity claim: matched schedule, recorded exit and output, and — when
// the handle reaches back to program start — a byte-identical final heap.
func (cfg Config) replayIdentical(p *Prog, mod *tir.Module, h *trace.Handle, ropts core.Options, recHeap []byte) error {
	epochs, err := h.AllEpochs()
	if err != nil {
		return err
	}
	rt, err := core.PrepareReplay(mod, epochs, ropts)
	if err != nil {
		return err
	}
	p.SetupOS(rt.OS())
	rep, err := rt.RunReplay()
	if err != nil {
		return err
	}
	sum := h.Summary()
	if sum != nil && !sum.Partial {
		if rep.Exit != sum.Exit {
			return fmt.Errorf("replayed exit %d, recorded %d", rep.Exit, sum.Exit)
		}
		if rep.Output != sum.Output {
			return fmt.Errorf("replayed output %q, recorded %q", rep.Output, sum.Output)
		}
	}
	heap := rt.Mem().HeapImage()
	if !bytes.Equal(heap, recHeap) {
		return fmt.Errorf("final heap image differs from recording (%d bytes)", len(heap))
	}
	return nil
}

// segmentsStitch replays the checkpointed recording segment-parallel.
// ReplaySegments itself enforces the interior byte-match against each next
// checkpoint and the stitched-output/exit oracle; here the batch must also
// come back fully matched with every recorded event consumed.
func (cfg Config) segmentsStitch(p *Prog, mod *tir.Module, h *trace.Handle, ropts core.Options) error {
	job := trace.Job{
		Name: "gen", Module: mod, Handle: h, Opts: ropts,
		Setup: func(rt *core.Runtime) error { p.SetupOS(rt.OS()); return nil },
	}
	results, stats, err := trace.ReplaySegments(job, cfg.Workers)
	if err != nil {
		return err
	}
	if stats.Failed != 0 || stats.Matched != stats.Jobs {
		for _, r := range results {
			if r.Err != nil {
				return fmt.Errorf("segment %s: %w", r.Name, r.Err)
			}
		}
		return fmt.Errorf("stats %+v with no per-segment error", stats)
	}
	if stats.Events != h.EventCount() {
		return fmt.Errorf("segments replayed %d events, recording holds %d", stats.Events, h.EventCount())
	}
	return nil
}

// analyze replays the epochs under the race and leak detectors.
func (cfg Config) analyze(mod *tir.Module, epochs []*record.EpochLog, ropts core.Options,
	setup func(*core.Runtime) error) ([]analysis.Finding, error) {
	_, findings, err := analysis.Run(mod, epochs, ropts, setup,
		analysis.NewRaceDetector(), analysis.NewLeakDetector())
	return findings, err
}

// checkFindings asserts the analyzer ground truth the generator
// guarantees: race-free programs yield nothing at all; racy programs yield
// only data-race findings whose sites sit in the two planted worker
// frames, at least one finding naming both.
func (p *Prog) checkFindings(findings []analysis.Finding) error {
	if !p.Racy() {
		if len(findings) != 0 {
			return fmt.Errorf("race-free program produced findings (false positives): %v", findings)
		}
		return nil
	}
	want := map[string]bool{WorkerFunc(p.Race.T1): true, WorkerFunc(p.Race.T2): true}
	pairSeen := false
	for _, f := range findings {
		if f.Kind != "data-race" {
			return fmt.Errorf("racy program produced unexpected %s finding: %+v", f.Kind, f)
		}
		funcs := map[string]bool{}
		for _, s := range f.Sites {
			fn := s.Func()
			if !want[fn] {
				return fmt.Errorf("race finding blames %s, planted pair is %s/%s",
					fn, WorkerFunc(p.Race.T1), WorkerFunc(p.Race.T2))
			}
			funcs[fn] = true
		}
		if len(funcs) == 2 {
			pairSeen = true
		}
	}
	if !pairSeen {
		return fmt.Errorf("planted race %s/%s not detected (findings: %v)",
			WorkerFunc(p.Race.T1), WorkerFunc(p.Race.T2), findings)
	}
	return nil
}

// tamper decodes raw, applies the requested corruption, and re-encodes.
func tamper(raw []byte, mode Tamper) ([]byte, error) {
	tr, err := trace.Decode(raw)
	if err != nil {
		return nil, err
	}
	switch mode {
	case TamperOutput:
		if tr.Summary == nil {
			return nil, fmt.Errorf("gen: tamper: trace has no summary")
		}
		tr.Summary.Output = "tampered\n" + tr.Summary.Output
	case TamperOrder:
		if !tamperOrder(tr) {
			return nil, fmt.Errorf("gen: tamper: no contended lock order to flip")
		}
	case TamperDropEpoch:
		if len(tr.Epochs) < 2 {
			return nil, fmt.Errorf("gen: tamper: trace too short to drop an epoch")
		}
		tr.Epochs = tr.Epochs[:len(tr.Epochs)-1]
		tr.Checkpoints = nil // indexes into dropped territory would dangle
	default:
		return nil, fmt.Errorf("gen: unknown tamper mode %d", mode)
	}
	return trace.Encode(tr)
}

// tamperOrder flips one recorded mutex acquisition between two threads:
// it finds a mutex two different threads locked at adjacent slots within
// one epoch and swaps both the events' positions and the variable's order
// entries, a coherent recording of a schedule that never happened. Replay
// then executes the critical sections in the flipped order, so the
// per-thread observed values — and with them the published heap bytes —
// cannot all match the original recording. Returns false when no epoch
// holds a contended adjacent pair.
func tamperOrder(tr *trace.Trace) bool {
	for _, ep := range tr.Epochs {
		type slot struct {
			ti, ei int // thread, event indexes into ep.Threads
		}
		byVar := map[uint64]map[int32]slot{} // var -> pos -> location
		for ti := range ep.Threads {
			tl := &ep.Threads[ti]
			for ei := range tl.Events {
				ev := &tl.Events[ei]
				if ev.Kind != record.KMutexLock || ev.Pos < 0 {
					continue
				}
				if byVar[ev.Var] == nil {
					byVar[ev.Var] = map[int32]slot{}
				}
				byVar[ev.Var][ev.Pos] = slot{ti, ei}
			}
		}
		for addr, slots := range byVar {
			for pos, a := range slots {
				b, ok := slots[pos+1]
				if !ok || a.ti == b.ti {
					continue
				}
				ea := &ep.Threads[a.ti].Events[a.ei]
				eb := &ep.Threads[b.ti].Events[b.ei]
				ea.Pos, eb.Pos = eb.Pos, ea.Pos
				for vi := range ep.Vars {
					if ep.Vars[vi].Addr != addr {
						continue
					}
					ord := ep.Vars[vi].Order
					if int(pos)+1 < len(ord) {
						ord[pos], ord[pos+1] = ord[pos+1], ord[pos]
					}
				}
				return true
			}
		}
	}
	return false
}
