package gen

import (
	"strings"
	"testing"

	"repro/internal/hostrace"
)

// TestDifferentialRaceFree sweeps a small race-free seed batch through
// the full pipeline — whole replay, segment stitching, analyzers,
// compression, compaction, flight spill — and expects silence. This is
// the in-tree slice of what CI's fuzz-smoke job runs at larger scale.
func TestDifferentialRaceFree(t *testing.T) {
	if testing.Short() {
		t.Skip("full differential pipeline")
	}
	b := Batch{Seeds: 6, Workers: 2, NoShrink: true}
	if failures := b.Run(); len(failures) != 0 {
		for _, f := range failures {
			t.Errorf("%s", f.String())
		}
	}
}

// TestDifferentialRacy: a planted-race generation must replay identically
// (the race is on dead data), and the analyzers must name exactly the
// planted pair.
//
//ir:racy generated programs race on VM memory by design
func TestDifferentialRacy(t *testing.T) {
	if hostrace.Enabled {
		t.Skip("racy generations are genuine host-level races")
	}
	if testing.Short() {
		t.Skip("full differential pipeline")
	}
	var cfg Config
	for seed := int64(0); seed < 3; seed++ {
		p := Generate(seed, ModeRacy)
		if err := cfg.Check(p); err != nil {
			t.Errorf("seed %d: %v\n%s", seed, err, p)
		}
	}
}

// TestTamperTeeth: the oracle must catch a deliberately corrupted
// recording within the first handful of seeds — a harness that passes
// tampered traces would wave through real regressions too. This is the
// acceptance check for "an intentionally-injected stitch bug is caught
// within 50 seeds".
func TestTamperTeeth(t *testing.T) {
	if testing.Short() {
		t.Skip("runs diverging replays")
	}
	modes := map[string]Tamper{
		"output":     TamperOutput,
		"order":      TamperOrder,
		"drop-epoch": TamperDropEpoch,
	}
	for name, mode := range modes {
		mode := mode
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := Config{Tamper: mode, MaxReplays: 2}
			for seed := int64(0); seed < 50; seed++ {
				p := Generate(seed, ModeRaceFree)
				err := cfg.Check(p)
				if err == nil {
					t.Fatalf("seed %d: tampered trace passed every check", seed)
				}
				if strings.Contains(err.Error(), "tamper:") {
					// This seed's recording had nothing to corrupt (e.g. no
					// contended lock order); try the next one.
					continue
				}
				t.Logf("caught at seed %d: %v", seed, err)
				return
			}
			t.Fatalf("no seed in [0,50) produced a corruptible recording")
		})
	}
}

// TestFailureReport: a failing seed's report carries the seed and a
// parseable minimized spec — everything needed to reproduce and check in
// a regression.
func TestFailureReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the differential pipeline")
	}
	f := CheckSeed(0, ModeRaceFree, Config{Tamper: TamperOutput, MaxReplays: 2}, false)
	if f == nil {
		t.Fatal("tampered check reported success")
	}
	s := f.String()
	if !strings.Contains(s, "seed 0") || !strings.Contains(s, specMagic) {
		t.Errorf("report lacks seed or spec:\n%s", s)
	}
	min := f.Min
	if min == nil {
		t.Fatal("no minimized witness")
	}
	if _, err := Parse(min.Marshal()); err != nil {
		t.Errorf("minimized spec does not parse back: %v", err)
	}
	if min.Ops() > 20 {
		t.Errorf("minimized witness still has %d ops:\n%s", min.Ops(), min)
	}
}
