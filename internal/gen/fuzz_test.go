package gen

import "testing"

// FuzzReplayIdentity is the native fuzz entry: each fuzzed seed draws a
// race-free generation and runs it through the whole differential
// pipeline. Under plain `go test` only the seed corpus below runs; local
// deep exploration is
//
//	go test -fuzz FuzzReplayIdentity -run xxx ./internal/gen
//
// (racy generations are exercised by the deterministic tests instead —
// they are genuine host-level races, and the fuzzer may run under -race).
// A reported failing seed reproduces with `ir-fuzz -seed N` and shrinks
// to a spec for testdata/corpus; see docs/TESTING.md.
func FuzzReplayIdentity(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(7))
	f.Add(int64(42))
	var cfg Config
	f.Fuzz(func(t *testing.T, seed int64) {
		p := Generate(seed, ModeRaceFree)
		if err := cfg.Check(p); err != nil {
			t.Fatalf("seed %d: %v\nspec:\n%s", seed, err, p.Marshal())
		}
	})
}
