package gen

// Greedy program minimization. When a generated program fails the
// differential harness, the raw generation is rarely the smallest witness:
// Shrink repeatedly tries structure-removing mutations — drop a thread,
// delete an op, cut a round, disable the barrier or handoff, merge cells,
// halve op parameters — keeping each candidate only if the failure
// predicate still holds, until no mutation helps. The result is what a
// human debugs and what gets checked into testdata/corpus as a regression
// spec.

// shrinkBudget bounds predicate evaluations: the predicate typically runs
// the full differential pipeline, so minimization cost stays visible and
// finite even on pathological inputs.
const shrinkBudget = 400

// clone deep-copies a program.
func (p *Prog) clone() *Prog {
	q := *p
	q.Body = make([][]Op, len(p.Body))
	for i, body := range p.Body {
		q.Body[i] = append([]Op(nil), body...)
	}
	if p.Race != nil {
		r := *p.Race
		q.Race = &r
	}
	return &q
}

// Shrink greedily minimizes p under the failure predicate: it returns the
// smallest variant found for which failing still returns true. The
// original program is never mutated; if no mutation preserves the failure,
// the returned program equals p.
func Shrink(p *Prog, failing func(*Prog) bool) *Prog {
	cur := p.clone()
	budget := shrinkBudget
	try := func(q *Prog) bool {
		if budget <= 0 || q.Validate() != nil {
			return false
		}
		budget--
		if failing(q) {
			cur = q
			return true
		}
		return false
	}
	for improved := true; improved; {
		improved = false
		for _, mutate := range []func(*Prog) []*Prog{
			dropThreads, dropRace, dropOps, cutStructure, halveParams,
		} {
			for _, q := range mutate(cur) {
				if try(q) {
					improved = true
					break // candidate set is stale; regenerate from the smaller program
				}
			}
		}
	}
	return cur
}

// dropThreads proposes removing each whole thread.
func dropThreads(p *Prog) []*Prog {
	if p.Threads <= 1 {
		return nil
	}
	var out []*Prog
	for t := 0; t < p.Threads; t++ {
		if p.Race != nil && (t == p.Race.T1 || t == p.Race.T2) {
			continue // the planted pair only shrinks via dropRace
		}
		q := p.clone()
		q.Body = append(q.Body[:t:t], q.Body[t+1:]...)
		q.Threads--
		if q.Race != nil {
			if q.Race.T1 > t {
				q.Race.T1--
			}
			if q.Race.T2 > t {
				q.Race.T2--
			}
		}
		out = append(out, q)
	}
	return out
}

// dropRace proposes removing the planted race entirely (pair declaration
// plus both OpRace ops): if the failure persists without it, the race was
// irrelevant to the bug.
func dropRace(p *Prog) []*Prog {
	if p.Race == nil {
		return nil
	}
	q := p.clone()
	q.Race = nil
	for t, body := range q.Body {
		kept := body[:0]
		for _, op := range body {
			if op.Kind != OpRace {
				kept = append(kept, op)
			}
		}
		q.Body[t] = kept
	}
	return []*Prog{q}
}

// dropOps proposes deleting each single op (OpRace excluded; see
// dropRace).
func dropOps(p *Prog) []*Prog {
	var out []*Prog
	for t, body := range p.Body {
		for i, op := range body {
			if op.Kind == OpRace {
				continue
			}
			_ = op
			q := p.clone()
			q.Body[t] = append(q.Body[t][:i:i], q.Body[t][i+1:]...)
			out = append(out, q)
		}
	}
	return out
}

// cutStructure proposes coarse reductions: fewer rounds, no barrier, no
// handoff, fewer cells (cell references fold modulo the new count).
func cutStructure(p *Prog) []*Prog {
	var out []*Prog
	if p.Rounds > 1 {
		q := p.clone()
		q.Rounds--
		out = append(out, q)
	}
	if p.BarrierEvery > 0 {
		q := p.clone()
		q.BarrierEvery = 0
		out = append(out, q)
	}
	if p.Handoff {
		q := p.clone()
		q.Handoff = false
		out = append(out, q)
	}
	if p.Cells > 1 {
		q := p.clone()
		q.Cells--
		for t, body := range q.Body {
			for i := range body {
				if body[i].Kind == OpInc {
					body[i].Cell %= q.Cells
				}
			}
			q.Body[t] = body
		}
		out = append(out, q)
	}
	return out
}

// halveParams proposes halving each op's numeric parameter, clamped to
// the per-kind minimum.
func halveParams(p *Prog) []*Prog {
	var out []*Prog
	for t, body := range p.Body {
		for i, op := range body {
			var min int
			switch op.Kind {
			case OpWork, OpRead:
				min = 1
			case OpAlloc:
				min = 8
			default:
				continue
			}
			half := op.N / 2
			if half < min {
				half = min
			}
			if half == op.N {
				continue
			}
			q := p.clone()
			q.Body[t][i].N = half
			out = append(out, q)
		}
	}
	return out
}
