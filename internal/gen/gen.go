// Package gen generates random workload programs and differentially
// checks the whole replay stack against them.
//
// The paper's core claim is that replay is *identical* — exit code,
// output, and heap image reproduce byte-for-byte — yet the hand-written
// corpus in internal/workloads exercises only a dozen fixed shapes. This
// package makes scenario diversity self-sustaining: a seeded, fully
// deterministic generator emits small multithreaded programs over the
// same TIR surface the workloads use (mutex-disciplined shared counters,
// condvar handoffs, barrier phases, malloc/free churn, virtual file IO,
// recorded time queries), and a differential harness (diff.go) records
// each one and asserts the equivalences the rest of the repo promises:
// whole-trace replay identity, segment-vs-whole stitching, analyzer
// zero-false-positives, and identity across compaction, compression, and
// flight-ring spills.
//
// Generation has two modes. ModeRaceFree programs are race-free by
// construction — every shared access happens under the cell's mutex, and
// all other state is thread-private — so any data-race finding is a false
// positive. ModeRacy programs additionally plant one unlocked
// read-modify-write pair on a dedicated global cell, executed by exactly
// two threads recorded in Prog.Race; the race is on *data only* (the racy
// value never flows into control flow, output, or the exit code), so the
// recording still replays identically while the analyzer must report the
// planted pair and nothing else.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/tir"
	"repro/internal/vsys"
)

// Mode selects the generator's race discipline.
type Mode int

const (
	// ModeRaceFree generates lock-disciplined programs: zero race findings
	// expected.
	ModeRaceFree Mode = iota
	// ModeRacy plants one unlocked racing pair on a dedicated cell and
	// records it in Prog.Race.
	ModeRacy
)

// OpKind enumerates the per-round operations a generated thread performs.
type OpKind int

const (
	// OpInc locks shared cell Cell's mutex, increments the cell, folds the
	// new value into the thread accumulator, and unlocks. Lock-ordered, so
	// race-free; the recorded acquisition order makes the accumulated value
	// replay-deterministic.
	OpInc OpKind = iota
	// OpWork is N iterations of branchy integer work (odd/even split) on
	// the private accumulator — epoch filler that stresses nothing shared.
	OpWork
	// OpAlloc mallocs N bytes, writes and reads back the round index, and
	// frees — allocation churn with no leak.
	OpAlloc
	// OpRead reads N bytes from the program's input file into the thread's
	// private scratch slot and adds the byte count to the accumulator
	// (revocable syscall traffic).
	OpRead
	// OpTime queries gettimeofday and xors the (recorded) value into the
	// accumulator.
	OpTime
	// OpYield is a scheduling hint — an interception point with no state.
	OpYield
	// OpRace performs an unlocked load/add/store on the dedicated racy
	// cell. Only ModeRacy emits it, on exactly the two Prog.Race threads.
	// The value never flows anywhere observable.
	OpRace

	numOpKinds
)

// Op is one generated operation.
type Op struct {
	Kind OpKind
	// Cell indexes the shared cell (and its mutex) for OpInc.
	Cell int
	// N parameterizes OpWork (iterations), OpAlloc (bytes), OpRead (bytes).
	N int
}

// RacePair names the two threads that execute the planted OpRace.
type RacePair struct {
	T1, T2 int
}

// Prog is a generated program: per-thread op sequences executed Rounds
// times, under optional barrier phasing and a producer/consumer condvar
// handoff. It lowers to TIR via Build and prints/parses via Marshal and
// Parse (spec.go).
type Prog struct {
	// Seed reproduces the generation (0 for hand-written specs).
	Seed int64
	// Threads is the worker count; each worker gets its own function
	// (gw0, gw1, …) so analyzer findings identify threads by frame.
	Threads int
	// Cells is the shared-counter count; the generated program protects
	// cell i with its own dedicated lock (the lock<i> globals).
	Cells int
	// Rounds is the per-thread outer loop count.
	Rounds int
	// BarrierEvery makes every thread wait at a shared barrier each N
	// rounds (0 disables).
	BarrierEvery int
	// Handoff adds a producer/consumer condvar token handoff each round
	// between threads 0 and 1 (requires Threads >= 2).
	Handoff bool
	// Body holds each thread's op sequence, executed once per round.
	Body [][]Op
	// Race, when non-nil, marks the program ModeRacy and names the two
	// threads carrying the planted OpRace pair.
	Race *RacePair
}

// WorkerFunc returns the TIR function name of thread i's worker.
func WorkerFunc(i int) string { return fmt.Sprintf("gw%d", i) }

// InputFile is the virtual file OpRead consumes (see SetupOS).
const InputFile = "gen.dat"

// scratchSlot is each thread's private scratch region; OpRead.N is capped
// well below it.
const scratchSlot = 2048

// Generate derives a program from seed. The same (seed, mode) pair always
// yields the same program: generation draws only from its own PRNG.
func Generate(seed int64, mode Mode) *Prog {
	r := rand.New(rand.NewSource(seed))
	p := &Prog{
		Seed:    seed,
		Threads: 2 + r.Intn(3),
		Cells:   1 + r.Intn(3),
		Rounds:  2 + r.Intn(4),
	}
	if r.Intn(3) == 0 {
		p.BarrierEvery = 1 + r.Intn(2)
	}
	p.Handoff = r.Intn(4) == 0
	p.Body = make([][]Op, p.Threads)
	for t := 0; t < p.Threads; t++ {
		n := 1 + r.Intn(5)
		ops := make([]Op, 0, n+1)
		hasInc := false
		for i := 0; i < n; i++ {
			op := randomOp(r, p.Cells)
			hasInc = hasInc || op.Kind == OpInc
			ops = append(ops, op)
		}
		if !hasInc {
			// Every thread takes at least one lock per round so recorded
			// synchronization traffic (and therefore epoch turnover under a
			// small event cap) is guaranteed.
			ops = append([]Op{{Kind: OpInc, Cell: r.Intn(p.Cells)}}, ops...)
		}
		p.Body[t] = ops
	}
	if mode == ModeRacy {
		t1 := r.Intn(p.Threads)
		t2 := r.Intn(p.Threads - 1)
		if t2 >= t1 {
			t2++
		}
		p.Race = &RacePair{T1: t1, T2: t2}
		p.Body[t1] = append(p.Body[t1], Op{Kind: OpRace})
		p.Body[t2] = append(p.Body[t2], Op{Kind: OpRace})
	}
	return p
}

// randomOp draws one weighted race-free op.
func randomOp(r *rand.Rand, cells int) Op {
	switch w := r.Intn(100); {
	case w < 40:
		return Op{Kind: OpInc, Cell: r.Intn(cells)}
	case w < 60:
		return Op{Kind: OpWork, N: 8 + r.Intn(120)}
	case w < 75:
		return Op{Kind: OpAlloc, N: 16 + 16*r.Intn(12)}
	case w < 85:
		return Op{Kind: OpRead, N: 16 + 16*r.Intn(8)}
	case w < 95:
		return Op{Kind: OpTime}
	default:
		return Op{Kind: OpYield}
	}
}

// Ops returns the total op count across all thread bodies — the size a
// shrinker minimizes.
func (p *Prog) Ops() int {
	n := 0
	for _, body := range p.Body {
		n += len(body)
	}
	return n
}

// Racy reports whether the program carries a planted race.
func (p *Prog) Racy() bool { return p.Race != nil }

// Reads reports whether any thread performs file IO (SetupOS must install
// the input file).
func (p *Prog) Reads() bool {
	for _, body := range p.Body {
		for _, op := range body {
			if op.Kind == OpRead {
				return true
			}
		}
	}
	return false
}

// Validate checks structural invariants: the lowering and the shrinker
// both refuse malformed programs.
func (p *Prog) Validate() error {
	if p.Threads < 1 {
		return fmt.Errorf("gen: need at least one thread, have %d", p.Threads)
	}
	if p.Cells < 1 {
		return fmt.Errorf("gen: need at least one cell, have %d", p.Cells)
	}
	if p.Rounds < 1 {
		return fmt.Errorf("gen: need at least one round, have %d", p.Rounds)
	}
	if len(p.Body) != p.Threads {
		return fmt.Errorf("gen: %d thread bodies for %d threads", len(p.Body), p.Threads)
	}
	if p.Handoff && p.Threads < 2 {
		return fmt.Errorf("gen: condvar handoff needs two threads")
	}
	if p.BarrierEvery < 0 {
		return fmt.Errorf("gen: negative barrier interval")
	}
	raceThreads := map[int]bool{}
	for t, body := range p.Body {
		for i, op := range body {
			switch op.Kind {
			case OpInc:
				if op.Cell < 0 || op.Cell >= p.Cells {
					return fmt.Errorf("gen: thread %d op %d: cell %d out of range [0,%d)", t, i, op.Cell, p.Cells)
				}
			case OpWork:
				if op.N < 1 || op.N > 4096 {
					return fmt.Errorf("gen: thread %d op %d: work count %d out of range", t, i, op.N)
				}
			case OpAlloc:
				if op.N < 8 || op.N > 4096 {
					return fmt.Errorf("gen: thread %d op %d: alloc size %d out of range", t, i, op.N)
				}
			case OpRead:
				if op.N < 1 || op.N > scratchSlot {
					return fmt.Errorf("gen: thread %d op %d: read size %d out of range", t, i, op.N)
				}
			case OpTime, OpYield:
			case OpRace:
				raceThreads[t] = true
			default:
				return fmt.Errorf("gen: thread %d op %d: unknown kind %d", t, i, op.Kind)
			}
		}
	}
	if p.Race == nil {
		if len(raceThreads) != 0 {
			return fmt.Errorf("gen: race ops present but no race pair declared")
		}
		return nil
	}
	if p.Race.T1 == p.Race.T2 || p.Race.T1 < 0 || p.Race.T2 < 0 ||
		p.Race.T1 >= p.Threads || p.Race.T2 >= p.Threads {
		return fmt.Errorf("gen: invalid race pair %d/%d for %d threads", p.Race.T1, p.Race.T2, p.Threads)
	}
	if len(raceThreads) != 2 || !raceThreads[p.Race.T1] || !raceThreads[p.Race.T2] {
		return fmt.Errorf("gen: race ops must appear on exactly the declared pair %d/%d", p.Race.T1, p.Race.T2)
	}
	return nil
}

// genGlobals carries the lowered module's shared state indices.
type genGlobals struct {
	locks   []int // one mutex per cell
	shared  int   // 8*Cells counter array
	racy    int   // dedicated unlocked cell (ModeRacy)
	barrier int
	condM   int
	cond    int
	tokens  int
	results int // 8*Threads published-pointer slots
	scratch int // scratchSlot*Threads private buffers
	path    int
	pathLen int
}

// Build lowers the program to a TIR module. Each thread gets its own
// worker function (WorkerFunc(i)) so race findings name the planted pair
// precisely; main creates and joins every worker, then prints the summed
// accumulators — deterministic output for the replay oracle.
func (p *Prog) Build() (*tir.Module, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	mb := tir.NewModuleBuilder()
	g := genGlobals{locks: make([]int, p.Cells)}
	for i := range g.locks {
		g.locks[i] = mb.Global(fmt.Sprintf("lock%d", i), 8)
	}
	g.shared = mb.Global("shared", 8*int64(p.Cells))
	g.racy = mb.Global("racycell", 8)
	g.barrier = mb.Global("barrier", 8)
	g.condM = mb.Global("condm", 8)
	g.cond = mb.Global("cond", 8)
	g.tokens = mb.Global("tokens", 8)
	g.results = mb.Global("results", 8*int64(p.Threads))
	g.scratch = mb.Global("scratch", scratchSlot*int64(p.Threads))
	g.path = mb.GlobalInit("path", 16, []byte(InputFile))
	g.pathLen = len(InputFile)

	workers := make([]int, p.Threads)
	for t := 0; t < p.Threads; t++ {
		workers[t] = p.buildWorker(mb, g, t)
	}

	m := mb.Func("main", 0)
	if p.BarrierEvery > 0 {
		ba, n := m.NewReg(), m.NewReg()
		m.GlobalAddr(ba, g.barrier)
		m.ConstI(n, int64(p.Threads))
		m.Intrin(-1, tir.IntrinBarrierInit, ba, n)
	}
	fnr, argr := m.NewReg(), m.NewReg()
	tids := make([]tir.Reg, p.Threads)
	for t := 0; t < p.Threads; t++ {
		tids[t] = m.NewReg()
		m.ConstI(fnr, int64(workers[t]))
		m.ConstI(argr, int64(t))
		m.Intrin(tids[t], tir.IntrinThreadCreate, fnr, argr)
	}
	sum := m.NewReg()
	m.ConstI(sum, 0)
	for t := 0; t < p.Threads; t++ {
		r := m.NewReg()
		m.Intrin(r, tir.IntrinThreadJoin, tids[t])
		m.Bin(tir.Add, sum, sum, r)
	}
	// Main-only output: the joins order it after every worker, so the
	// printed lines are replay-deterministic even though vthreads are real
	// goroutines.
	m.Intrin(-1, tir.IntrinPrint, sum)
	m.Ret(sum)
	m.Seal()
	mb.SetEntry("main")
	return mb.Build()
}

// buildWorker lowers thread t's body.
func (p *Prog) buildWorker(mb *tir.ModuleBuilder, g genGlobals, t int) int {
	fb := mb.Func(WorkerFunc(t), 1)

	acc, one := fb.NewReg(), fb.NewReg()
	fb.ConstI(acc, 0)
	fb.ConstI(one, 1)

	// This thread's private scratch slot, at a build-time-constant offset.
	scr := fb.NewReg()
	fb.GlobalAddr(scr, g.scratch)
	fb.AddI(scr, scr, int64(t)*scratchSlot)

	needsFD := false
	for _, op := range p.Body[t] {
		if op.Kind == OpRead {
			needsFD = true
		}
	}
	fd := fb.NewReg()
	if needsFD {
		pa, pl := fb.NewReg(), fb.NewReg()
		fb.GlobalAddr(pa, g.path)
		fb.ConstI(pl, int64(g.pathLen))
		fb.Syscall(fd, vsys.SysOpen, pa, pl)
	}

	round, lim, cond := fb.NewReg(), fb.NewReg(), fb.NewReg()
	fb.ConstI(round, 0)
	fb.ConstI(lim, int64(p.Rounds))
	loop, done := fb.NewLabel(), fb.NewLabel()
	fb.Bind(loop)
	fb.Bin(tir.LtS, cond, round, lim)
	fb.Brz(cond, done)

	for _, op := range p.Body[t] {
		p.emitOp(fb, g, t, op, acc, one, round, scr, fd)
	}

	if p.Handoff && t <= 1 {
		p.emitHandoff(fb, g, t, one)
	}

	if p.BarrierEvery > 0 {
		be, rem := fb.NewReg(), fb.NewReg()
		fb.ConstI(be, int64(p.BarrierEvery))
		fb.Bin(tir.Rem, rem, round, be)
		skip := fb.NewLabel()
		fb.Br(rem, skip)
		ba := fb.NewReg()
		fb.GlobalAddr(ba, g.barrier)
		fb.Intrin(-1, tir.IntrinBarrierWait, ba)
		fb.Bind(skip)
	}

	fb.AddI(round, round, 1)
	fb.Jmp(loop)
	fb.Bind(done)

	// Publish the accumulator into a live heap object and park its pointer
	// in this thread's results slot: the final heap image carries every
	// thread's computed value (making the byte-identity diff meaningful)
	// and the pointer stays reachable, so the leak analyzer stays silent.
	pub, psz, ra := fb.NewReg(), fb.NewReg(), fb.NewReg()
	fb.ConstI(psz, 32)
	fb.Intrin(pub, tir.IntrinMalloc, psz)
	fb.Store64(acc, pub, 0)
	fb.Store64(round, pub, 8)
	fb.GlobalAddr(ra, g.results)
	fb.Store64(pub, ra, int64(t)*8)
	fb.Ret(acc)
	fb.Seal()
	return fb.Index()
}

// emitOp lowers one op inside the round loop.
func (p *Prog) emitOp(fb *tir.FuncBuilder, g genGlobals, t int, op Op, acc, one, round, scr, fd tir.Reg) {
	switch op.Kind {
	case OpInc:
		ma, sa, v := fb.NewReg(), fb.NewReg(), fb.NewReg()
		fb.GlobalAddr(ma, g.locks[op.Cell])
		fb.Intrin(-1, tir.IntrinMutexLock, ma)
		fb.GlobalAddr(sa, g.shared)
		fb.Load64(v, sa, int64(op.Cell)*8)
		fb.Bin(tir.Add, v, v, one)
		fb.Store64(v, sa, int64(op.Cell)*8)
		// The observed counter value depends only on the recorded lock
		// acquisition order, so folding it into the accumulator is
		// replay-deterministic.
		fb.Bin(tir.Add, acc, acc, v)
		fb.Intrin(-1, tir.IntrinMutexUnlock, ma)
	case OpWork:
		j, jl, jc, bit := fb.NewReg(), fb.NewReg(), fb.NewReg(), fb.NewReg()
		fb.ConstI(j, 0)
		fb.ConstI(jl, int64(op.N))
		jLoop, jDone, jOdd, jNext := fb.NewLabel(), fb.NewLabel(), fb.NewLabel(), fb.NewLabel()
		fb.Bind(jLoop)
		fb.Bin(tir.LtS, jc, j, jl)
		fb.Brz(jc, jDone)
		fb.Bin(tir.And, bit, j, one)
		fb.Br(bit, jOdd)
		fb.Bin(tir.Add, acc, acc, j)
		fb.Jmp(jNext)
		fb.Bind(jOdd)
		fb.Bin(tir.Xor, acc, acc, j)
		fb.Bind(jNext)
		fb.AddI(j, j, 1)
		fb.Jmp(jLoop)
		fb.Bind(jDone)
	case OpAlloc:
		sz, ptr, v := fb.NewReg(), fb.NewReg(), fb.NewReg()
		fb.ConstI(sz, int64(op.N))
		fb.Intrin(ptr, tir.IntrinMalloc, sz)
		fb.Store64(round, ptr, 0)
		fb.Load64(v, ptr, 0)
		fb.Bin(tir.Add, acc, acc, v)
		fb.Intrin(-1, tir.IntrinFree, ptr)
	case OpRead:
		n, want := fb.NewReg(), fb.NewReg()
		fb.ConstI(want, int64(op.N))
		fb.Syscall(n, vsys.SysRead, fd, scr, want)
		fb.Bin(tir.Add, acc, acc, n)
	case OpTime:
		tv := fb.NewReg()
		fb.Syscall(tv, vsys.SysGettimeofday)
		fb.Bin(tir.Xor, acc, acc, tv)
	case OpYield:
		fb.Intrin(-1, tir.IntrinYield)
	case OpRace:
		// Unlocked read-modify-write on the dedicated cell. The value is
		// deliberately dead: lost updates change no output, exit code, or
		// heap byte, so recordings of racy programs still replay
		// identically while the analyzer must see the pair.
		ra, v := fb.NewReg(), fb.NewReg()
		fb.GlobalAddr(ra, g.racy)
		fb.Load64(v, ra, 0)
		fb.Bin(tir.Add, v, v, one)
		fb.Store64(v, ra, 0)
	}
}

// emitHandoff lowers the per-round producer/consumer token exchange for
// threads 0 (producer) and 1 (consumer). It precedes the barrier phase in
// the round body, so a produced token is always available before either
// side can park at the barrier — no cross-primitive deadlock.
func (p *Prog) emitHandoff(fb *tir.FuncBuilder, g genGlobals, t int, one tir.Reg) {
	ma, ca, ta, v := fb.NewReg(), fb.NewReg(), fb.NewReg(), fb.NewReg()
	fb.GlobalAddr(ma, g.condM)
	fb.GlobalAddr(ca, g.cond)
	fb.GlobalAddr(ta, g.tokens)
	if t == 0 {
		fb.Intrin(-1, tir.IntrinMutexLock, ma)
		fb.Load64(v, ta, 0)
		fb.Bin(tir.Add, v, v, one)
		fb.Store64(v, ta, 0)
		fb.Intrin(-1, tir.IntrinCondSignal, ca)
		fb.Intrin(-1, tir.IntrinMutexUnlock, ma)
		return
	}
	fb.Intrin(-1, tir.IntrinMutexLock, ma)
	waitLoop, got := fb.NewLabel(), fb.NewLabel()
	fb.Bind(waitLoop)
	fb.Load64(v, ta, 0)
	fb.Br(v, got)
	fb.Intrin(-1, tir.IntrinCondWait, ca, ma)
	fb.Jmp(waitLoop)
	fb.Bind(got)
	fb.Bin(tir.Sub, v, v, one)
	fb.Store64(v, ta, 0)
	fb.Intrin(-1, tir.IntrinMutexUnlock, ma)
}

// SetupOS installs the input file OpRead consumes, sized so no read hits
// EOF. The byte pattern is a pure function of position, so recording and
// replay environments agree.
func (p *Prog) SetupOS(os *vsys.OS) {
	if !p.Reads() {
		return
	}
	max := 0
	for _, body := range p.Body {
		n := 0
		for _, op := range body {
			if op.Kind == OpRead {
				n += op.N
			}
		}
		if n > max {
			max = n
		}
	}
	data := make([]byte, max*p.Rounds+1024)
	for i := range data {
		data[i] = byte(i*37 + 11)
	}
	os.AddFile(InputFile, data)
}
