package gen

// Textual program specs. A minimized failing generation is only useful if
// it can be checked in and re-run: Marshal prints a Prog as a small
// line-oriented spec and Parse reads one back, so regression cases live as
// .genspec files in testdata/corpus and the corpus test replays them
// through the same differential checks the fuzzer applies (see
// docs/TESTING.md for the promotion workflow).

import (
	"fmt"
	"strconv"
	"strings"
)

// specMagic heads every spec file; the version gates future format
// changes.
const specMagic = "genspec v1"

// Marshal renders p as a parseable spec:
//
//	genspec v1
//	seed 42
//	threads 2
//	cells 1
//	rounds 3
//	barrier 2
//	handoff
//	race 0 1
//	thread 0: inc0 work25 race
//	thread 1: alloc48 read32 time yield race
//
// barrier, handoff, and race lines are omitted when disabled.
func (p *Prog) Marshal() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", specMagic)
	fmt.Fprintf(&b, "seed %d\n", p.Seed)
	fmt.Fprintf(&b, "threads %d\n", p.Threads)
	fmt.Fprintf(&b, "cells %d\n", p.Cells)
	fmt.Fprintf(&b, "rounds %d\n", p.Rounds)
	if p.BarrierEvery > 0 {
		fmt.Fprintf(&b, "barrier %d\n", p.BarrierEvery)
	}
	if p.Handoff {
		fmt.Fprintf(&b, "handoff\n")
	}
	if p.Race != nil {
		fmt.Fprintf(&b, "race %d %d\n", p.Race.T1, p.Race.T2)
	}
	for t, body := range p.Body {
		fmt.Fprintf(&b, "thread %d:", t)
		for _, op := range body {
			b.WriteByte(' ')
			b.WriteString(opString(op))
		}
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// String is the spec text (diagnostics print it on failure).
func (p *Prog) String() string { return string(p.Marshal()) }

func opString(op Op) string {
	switch op.Kind {
	case OpInc:
		return fmt.Sprintf("inc%d", op.Cell)
	case OpWork:
		return fmt.Sprintf("work%d", op.N)
	case OpAlloc:
		return fmt.Sprintf("alloc%d", op.N)
	case OpRead:
		return fmt.Sprintf("read%d", op.N)
	case OpTime:
		return "time"
	case OpYield:
		return "yield"
	case OpRace:
		return "race"
	}
	return fmt.Sprintf("op?%d", op.Kind)
}

func parseOp(tok string) (Op, error) {
	num := func(prefix string) (int, error) {
		n, err := strconv.Atoi(tok[len(prefix):])
		if err != nil {
			return 0, fmt.Errorf("gen: bad op %q: %v", tok, err)
		}
		return n, nil
	}
	switch {
	case tok == "time":
		return Op{Kind: OpTime}, nil
	case tok == "yield":
		return Op{Kind: OpYield}, nil
	case tok == "race":
		return Op{Kind: OpRace}, nil
	case strings.HasPrefix(tok, "inc"):
		c, err := num("inc")
		return Op{Kind: OpInc, Cell: c}, err
	case strings.HasPrefix(tok, "work"):
		n, err := num("work")
		return Op{Kind: OpWork, N: n}, err
	case strings.HasPrefix(tok, "alloc"):
		n, err := num("alloc")
		return Op{Kind: OpAlloc, N: n}, err
	case strings.HasPrefix(tok, "read"):
		n, err := num("read")
		return Op{Kind: OpRead, N: n}, err
	}
	return Op{}, fmt.Errorf("gen: unknown op %q", tok)
}

// Parse reads a spec produced by Marshal (comments with # and blank lines
// allowed) and validates the result.
func Parse(data []byte) (*Prog, error) {
	lines := strings.Split(string(data), "\n")
	p := &Prog{}
	intField := func(rest string, name string) (int, error) {
		v, err := strconv.Atoi(strings.TrimSpace(rest))
		if err != nil {
			return 0, fmt.Errorf("gen: bad %s line: %v", name, err)
		}
		return v, nil
	}
	sawMagic := false
	for ln, raw := range lines {
		line := strings.TrimSpace(raw)
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		if !sawMagic {
			if line != specMagic {
				return nil, fmt.Errorf("gen: line %d: expected %q header, got %q", ln+1, specMagic, line)
			}
			sawMagic = true
			continue
		}
		key, rest, _ := strings.Cut(line, " ")
		var err error
		switch key {
		case "seed":
			var s int64
			s, err = strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
			p.Seed = s
		case "threads":
			p.Threads, err = intField(rest, key)
		case "cells":
			p.Cells, err = intField(rest, key)
		case "rounds":
			p.Rounds, err = intField(rest, key)
		case "barrier":
			p.BarrierEvery, err = intField(rest, key)
		case "handoff":
			p.Handoff = true
		case "race":
			f := strings.Fields(rest)
			if len(f) != 2 {
				return nil, fmt.Errorf("gen: line %d: race wants two thread indices", ln+1)
			}
			var t1, t2 int
			if t1, err = strconv.Atoi(f[0]); err == nil {
				t2, err = strconv.Atoi(f[1])
			}
			p.Race = &RacePair{T1: t1, T2: t2}
		case "thread":
			idxStr, ops, ok := strings.Cut(rest, ":")
			if !ok {
				return nil, fmt.Errorf("gen: line %d: thread line missing ':'", ln+1)
			}
			var idx int
			if idx, err = strconv.Atoi(strings.TrimSpace(idxStr)); err != nil {
				break
			}
			if idx != len(p.Body) {
				return nil, fmt.Errorf("gen: line %d: thread %d out of order (want %d)", ln+1, idx, len(p.Body))
			}
			var body []Op
			for _, tok := range strings.Fields(ops) {
				op, perr := parseOp(tok)
				if perr != nil {
					return nil, fmt.Errorf("gen: line %d: %v", ln+1, perr)
				}
				body = append(body, op)
			}
			p.Body = append(p.Body, body)
		default:
			return nil, fmt.Errorf("gen: line %d: unknown directive %q", ln+1, key)
		}
		if err != nil {
			return nil, fmt.Errorf("gen: line %d: %v", ln+1, err)
		}
	}
	if !sawMagic {
		return nil, fmt.Errorf("gen: empty spec")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
