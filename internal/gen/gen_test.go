package gen

import (
	"reflect"
	"testing"

	"repro/internal/core"
)

// TestGenerateDeterministic: the same seed and mode always yield the same
// program — the property every "reproduce with ir-fuzz -seed N" workflow
// rests on.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		for _, mode := range []Mode{ModeRaceFree, ModeRacy} {
			a, b := Generate(seed, mode), Generate(seed, mode)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("seed %d mode %d: generations differ:\n%s\nvs\n%s", seed, mode, a, b)
			}
			if err := a.Validate(); err != nil {
				t.Fatalf("seed %d mode %d: invalid generation: %v", seed, mode, err)
			}
			if (mode == ModeRacy) != a.Racy() {
				t.Fatalf("seed %d: mode %d produced Racy()=%v", seed, mode, a.Racy())
			}
		}
	}
}

// TestSpecRoundTrip: Marshal and Parse are inverses over generated
// programs, so a failure spec checked into the corpus reconstructs the
// exact program.
func TestSpecRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		for _, mode := range []Mode{ModeRaceFree, ModeRacy} {
			p := Generate(seed, mode)
			q, err := Parse(p.Marshal())
			if err != nil {
				t.Fatalf("seed %d: parse back: %v\n%s", seed, err, p)
			}
			if !reflect.DeepEqual(p, q) {
				t.Fatalf("seed %d: round trip changed program:\n%s\nvs\n%s", seed, p, q)
			}
		}
	}
}

// TestParseRejects: malformed specs fail with a diagnostic instead of
// producing a silently different program.
func TestParseRejects(t *testing.T) {
	bad := map[string]string{
		"empty":         "",
		"no magic":      "seed 1\nthreads 1\ncells 1\nrounds 1\nthread 0: inc0\n",
		"unknown op":    "genspec v1\nthreads 1\ncells 1\nrounds 1\nthread 0: frob\n",
		"cell range":    "genspec v1\nthreads 1\ncells 1\nrounds 1\nthread 0: inc3\n",
		"thread order":  "genspec v1\nthreads 2\ncells 1\nrounds 1\nthread 1: inc0\nthread 0: inc0\n",
		"race arity":    "genspec v1\nthreads 2\ncells 1\nrounds 1\nrace 0\nthread 0: inc0\nthread 1: inc0\n",
		"race no ops":   "genspec v1\nthreads 2\ncells 1\nrounds 1\nrace 0 1\nthread 0: inc0\nthread 1: inc0\n",
		"handoff alone": "genspec v1\nthreads 1\ncells 1\nrounds 1\nhandoff\nthread 0: inc0\n",
	}
	for name, spec := range bad {
		if _, err := Parse([]byte(spec)); err == nil {
			t.Errorf("%s: spec accepted:\n%s", name, spec)
		}
	}
}

// TestGeneratedProgramsRun: race-free generations build and execute to a
// clean exit under a plain recording runtime.
func TestGeneratedProgramsRun(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		p := Generate(seed, ModeRaceFree)
		mod, err := p.Build()
		if err != nil {
			t.Fatalf("seed %d: build: %v\n%s", seed, err, p)
		}
		rt, err := core.New(mod, core.Options{Seed: seed, EventCap: 24})
		if err != nil {
			t.Fatal(err)
		}
		p.SetupOS(rt.OS())
		rep, err := rt.Run()
		if err != nil {
			t.Fatalf("seed %d: run: %v\n%s", seed, err, p)
		}
		if rep.Output == "" {
			t.Fatalf("seed %d: program produced no output (oracle would be toothless)", seed)
		}
	}
}

// TestShrinkMinimizes: the greedy shrinker reduces a bulky program to the
// smallest witness of a structural predicate.
func TestShrinkMinimizes(t *testing.T) {
	p := Generate(7, ModeRaceFree)
	p.Body[0] = append(p.Body[0], Op{Kind: OpAlloc, N: 256})
	hasAlloc := func(q *Prog) bool {
		for _, body := range q.Body {
			for _, op := range body {
				if op.Kind == OpAlloc {
					return true
				}
			}
		}
		return false
	}
	min := Shrink(p, hasAlloc)
	if !hasAlloc(min) {
		t.Fatalf("shrinker lost the failure:\n%s", min)
	}
	if err := min.Validate(); err != nil {
		t.Fatalf("shrinker produced invalid program: %v\n%s", err, min)
	}
	if min.Threads != 1 || min.Rounds != 1 || min.Ops() != 1 {
		t.Errorf("not fully minimized: threads=%d rounds=%d ops=%d\n%s",
			min.Threads, min.Rounds, min.Ops(), min)
	}
	if min.Body[0][0].N != 8 {
		t.Errorf("alloc size not halved to minimum: %d", min.Body[0][0].N)
	}
}

// TestShrinkKeepsRacePair: shrinking a racy program never orphans the
// planted pair — it either survives intact or is dropped whole.
func TestShrinkKeepsRacePair(t *testing.T) {
	p := Generate(3, ModeRacy)
	min := Shrink(p, func(q *Prog) bool { return q.Racy() })
	if !min.Racy() {
		t.Fatalf("predicate requires the race, shrinker dropped it:\n%s", min)
	}
	if err := min.Validate(); err != nil {
		t.Fatalf("invalid: %v\n%s", err, min)
	}
	if min.Ops() != 2 {
		t.Errorf("racy witness not minimal: %d ops\n%s", min.Ops(), min)
	}
}
