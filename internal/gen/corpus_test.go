package gen

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/hostrace"
)

// TestCorpusSpecs replays every checked-in regression spec through the
// full differential pipeline. Minimized fuzz failures are promoted here
// (see docs/TESTING.md): once the bug they witnessed is fixed, the spec
// pins the behavior forever.
//
//ir:racy corpus includes racy specs, skipped individually under -race
func TestCorpusSpecs(t *testing.T) {
	if testing.Short() {
		t.Skip("full differential pipeline")
	}
	specs, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.genspec"))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) == 0 {
		t.Fatal("no corpus specs found")
	}
	for _, path := range specs {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			p, err := Parse(data)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if p.Racy() && hostrace.Enabled {
				t.Skip("racy spec under host race detector")
			}
			var cfg Config
			if err := cfg.Check(p); err != nil {
				t.Errorf("%v\nspec:\n%s", err, p)
			}
		})
	}
}
