package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/interp"
	"repro/internal/record"
)

// Thread states. Any state other than tsRunning counts as quiescent for the
// stop-the-world protocol (§3.3): a non-running thread cannot change program
// state, and once every thread is non-running nobody can wake anybody.
const (
	tsEmbryo  int32 = iota // goroutine exists, body not started (replay: awaits its create event)
	tsRunning              // executing TIR
	tsBlocked              // waiting on a synchronization condition or replay turn
	tsStopped              // parked for an epoch stop or replay completion
	tsExited               // body finished; kept alive to preserve ID and stack (§3.2.1)
	tsUnwound              // rolled back; waiting at the trampoline for a restart message
	tsDead                 // reclaimed
)

// errShutdown unwinds threads when the program terminates.
var errShutdown = errors.New("core: runtime shutdown")

// errThreadExit is the internal signal for the thread_exit intrinsic.
var errThreadExit = errors.New("core: thread exit")

// startKind selects what a trampoline iteration should do.
type startKind int

const (
	smStart      startKind = iota // run the body from its entry function
	smResume                      // restore a checkpointed context and re-run (rollback)
	smParkExited                  // re-park as exited (rollback of a thread that had exited before the checkpoint)
	smShutdown                    // terminate the goroutine
)

type startMsg struct {
	kind  startKind
	ctx   *interp.Context
	block blockInfo
}

// blockKind describes a thread's position inside a blocking primitive, the
// state that must survive rollback for threads that were already waiting at
// epoch begin (§3.1: waiting threads are checkpointed in their waiting
// state).
type blockKind int

const (
	bkNone blockKind = iota
	bkCondWait
	bkBarrier
)

type blockInfo struct {
	kind  blockKind
	vaddr uint64 // condition variable or barrier address
	maddr uint64 // mutex released by a cond wait
}

// Thread is one vthread: a goroutine driving a checkpointable virtual CPU.
type Thread struct {
	id int32
	rt *Runtime

	cpu  *interp.CPU
	list *record.ThreadList

	entryFn  int
	entryArg uint64
	hasArg   bool

	// bornEpoch is the epoch in which the thread was created; threads born
	// after the current checkpoint revert to embryos on rollback and are
	// re-released by their parent's replayed create event (§3.5.1).
	bornEpoch int64

	state atomic.Int32

	startCh chan startMsg
	doneCh  chan struct{}

	// exitVal is the body's return / thread_exit value.
	exitVal uint64
	// joined marks a completed join; the joinee is reclaimed at the next
	// epoch boundary (§3.1 housekeeping).
	joined   bool
	exitWake bcast

	// block mirrors the thread's current position inside a blocking
	// primitive; captured at checkpoint, restored on rollback.
	block blockInfo
	// resumeBlock is consumed by the next blocking intrinsic after a
	// rollback: it tells cond/barrier waits to skip their entry phase
	// because the restored shared state already accounts for this waiter.
	resumeBlock blockInfo

	// irrevocablePass lets the thread that closed an epoch on an irrevocable
	// syscall execute that syscall once the next epoch has begun.
	irrevocablePass bool

	// pendingExit holds the value passed to thread_exit.
	pendingExit uint64

	// delayRng drives the per-thread random delays inserted at diverging
	// points during replay retries (§3.5.2).
	delayRng *rand.Rand

	// faulted is set when this thread trapped; its frames are preserved for
	// the debugger (§4.3).
	faulted error
}

func (t *Thread) setState(s int32) {
	t.state.Store(s)
	t.rt.activity.Add(1)
}

// ID returns the thread's identifier.
func (t *Thread) ID() int32 { return t.id }

// trampoline is the goroutine body: it runs the thread's TIR body and, after
// a rollback, restores a checkpointed context and runs again — the in-situ
// re-execution loop of Figure 2.
func (t *Thread) trampoline() {
	defer close(t.doneCh)
	for msg := range t.startCh {
		switch msg.kind {
		case smShutdown:
			t.setState(tsDead)
			return
		case smParkExited:
			// Rollback of a thread that had already exited before the
			// checkpoint: nothing to re-execute, return to the keep-alive
			// park with its exit value intact.
			t.faulted = nil
			t.setState(tsExited)
			t.exitWake.Broadcast()
			t.parkExited()
			continue
		case smStart:
			var args []uint64
			if t.hasArg {
				args = []uint64{t.entryArg}
			}
			t.cpu.Start(t.entryFn, args)
			t.resumeBlock = blockInfo{}
			t.block = blockInfo{}
			t.faulted = nil
		case smResume:
			t.cpu.SetContext(msg.ctx)
			t.resumeBlock = msg.block
			t.block = msg.block
			t.faulted = nil
		}
		t.setState(tsRunning)
		err := t.cpu.Run()
		switch {
		case err == nil:
			t.exitPath(t.cpu.Result())
		case errors.Is(err, errThreadExit):
			t.exitPath(t.pendingExit)
		case errors.Is(err, interp.ErrUnwind):
			// Rollback: wait for a resume (or shutdown) message.
			t.setState(tsUnwound)
		case errors.Is(err, errShutdown):
			t.setState(tsDead)
			return
		default:
			// A trap (SIGSEGV analogue): report to the runtime, which closes
			// the epoch with fault evidence; the thread parks with its
			// frames intact so tools can inspect the stack (§4.3).
			t.faulted = err
			t.rt.onTrap(t, err)
			t.setState(tsUnwound)
		}
	}
}

// exitPath implements thread termination for both recording and replay, then
// parks the thread alive until reclamation or rollback (§3.2.1: joinee
// threads wait on a condition variable, preserving IDs and stacks).
func (t *Thread) exitPath(val uint64) {
	rt := t.rt
	t.exitVal = val
	switch {
	case rt.opts.DisableRecording:
		// Plain execution: no events.
	case rt.phaseIs(phReplay):
		ev := t.list.Peek()
		switch {
		case ev == nil:
			// The thread replayed its whole log and ran on to its exit: the
			// exit belongs to the epoch *after* the one being replayed (the
			// thread was parked at an interception when that epoch closed).
			// Wait for the world to resume recording, then record the exit
			// there — it is not a divergence (§3.5).
			if err := t.parkReplayDone(); err != nil {
				t.setState(tsUnwound)
				return
			}
			t.appendEvent(record.Event{Kind: record.KExit, Ret: val, Pos: -1})
		case !record.Matches(ev, record.KExit, 0, 0):
			rt.noteDivergence(t, record.KExit, 0, ev)
		default:
			t.list.Advance()
		}
	default:
		t.appendEvent(record.Event{Kind: record.KExit, Ret: val, Pos: -1})
	}
	// Before the exited state becomes visible, so a joiner's callbacks
	// observe the exit first.
	rt.notifyThreadExit(t.id)
	t.setState(tsExited)
	t.exitWake.Broadcast()
	if t.id == 0 && !rt.phaseIs(phReplay) {
		// Main returning terminates the program: close the final epoch.
		// During replay the monitor observes quiescence instead.
		rt.requestStop(StopProgramEnd, t.id)
	}
	t.parkExited()
}

// parkExited holds an exited thread alive — preserving its ID and stack
// (§3.2.1) — until it is reclaimed, rolled back, or the program ends.
func (t *Thread) parkExited() {
	rt := t.rt
	for {
		pch := rt.phaseCh.C()
		if t.state.Load() == tsDead {
			return // reclaimed by epoch housekeeping (§3.1)
		}
		switch rt.phase() {
		case phRollback:
			t.setState(tsUnwound)
			return
		case phShutdown:
			return
		}
		<-pch
	}
}

// phase helpers -------------------------------------------------------------

// intercept is executed before every synchronization operation and system
// call (§3.3: the synchronized stop method — threads check for a stop
// request before any interceptable operation). It parks the thread during
// stops and unwinds it during rollbacks. During replay retries it inserts
// the paper's random delays at gated points to perturb racy timing without
// changing the recorded order (§3.5.2).
func (t *Thread) intercept() error {
	rt := t.rt
	if rt.opts.Interrupt != nil && rt.pollInterrupt() != nil {
		// A caller canceled the run. Offline the world is ours alone: unwind
		// this thread outright; RunReplay notices at quiescence and shuts
		// down. In situ, drive the world to an epoch boundary instead —
		// handleEpochEnd terminates there — so the stop protocol stays the
		// one the paper defines.
		if rt.offline {
			return errShutdown
		}
		rt.requestStop(StopTool, t.id)
	}
	if rt.phase() == phReplay && rt.replayAttempt() > 1 && rt.opts.DelayOnDivergence {
		if t.delayRng.Intn(4) == 0 {
			time.Sleep(time.Duration(t.delayRng.Intn(50)+1) * time.Microsecond) //ir:wallclock divergence delay injection is host-time by design
		}
	}
	for {
		pch := rt.phaseCh.C()
		switch rt.phase() {
		case phRecord, phReplay:
			return nil
		case phStopping, phReplayStopping:
			t.setState(tsStopped)
			<-pch
			t.setState(tsRunning)
		case phRollback:
			return interp.ErrUnwind
		case phShutdown:
			return errShutdown
		}
	}
}

// parkBoundary parks a thread that reached its segment-end instruction
// boundary during an offline segment replay (interp.CPU.OnBoundary): the
// rest of its execution belongs to the next segment. It blocks until the
// runtime decides — rollback on a divergence retry, shutdown after the
// segment is verified — and returns the corresponding unwind error.
func (t *Thread) parkBoundary() error {
	rt := t.rt
	for {
		pch := rt.phaseCh.C()
		switch rt.phase() {
		case phRollback:
			return interp.ErrUnwind
		case phShutdown:
			return errShutdown
		}
		t.setState(tsStopped)
		<-pch
		t.setState(tsRunning)
	}
}

// parkReplayDone parks a thread whose per-thread list is exhausted during
// replay: its next operation belongs to the epoch after the one being
// replayed, so it waits for the world to switch back to recording (§3.5).
func (t *Thread) parkReplayDone() error {
	rt := t.rt
	for {
		pch := rt.phaseCh.C()
		switch rt.phase() {
		case phRecord:
			return nil // matched replay; continue recording with this op
		case phRollback:
			return interp.ErrUnwind
		case phShutdown:
			return errShutdown
		case phReplay, phReplayStopping, phStopping:
			t.setState(tsStopped)
			<-pch
			t.setState(tsRunning)
		}
	}
}

// eventMargin is how many free per-thread entries must remain after an
// append; one interception records at most two events (a cond wake plus the
// mutex reacquisition), so requesting the stop with this margin guarantees
// the preallocated lists never overflow before quiescence (§3.2).
const eventMargin = 8

// appendEvent records an event in the per-thread list, requesting an epoch
// end while a safety margin still remains.
func (t *Thread) appendEvent(e record.Event) {
	t.list.Append(e)
	if t.list.Cap()-t.list.Len() <= eventMargin {
		t.rt.requestStop(StopLogFull, t.id)
	}
}

// nextReplayEvent fetches the thread's next recorded event during replay,
// parking the thread if its list is already exhausted (the operation belongs
// to the next epoch). A nil return with nil error means the world has moved
// back to recording and the caller should re-execute the operation in
// recording mode.
func (t *Thread) nextReplayEvent() (*record.Event, error) {
	for {
		if err := t.intercept(); err != nil {
			return nil, err
		}
		if !t.rt.phaseIs(phReplay) {
			return nil, nil
		}
		if !t.list.Replayed() {
			return t.list.Peek(), nil
		}
		if err := t.parkReplayDone(); err != nil {
			return nil, err
		}
		// parkReplayDone returns nil only once recording resumed; loop to
		// re-observe the phase.
	}
}

func (t *Thread) String() string {
	return fmt.Sprintf("thread %d", t.id)
}
