package core

import (
	"testing"
	"time"

	"repro/internal/mem"
)

// TestToolRequestedEpochEnd: an external caller closes the epoch mid-run
// (the §2.1 user-defined criterion) and the tool replays it; execution then
// completes correctly.
func TestToolRequestedEpochEnd(t *testing.T) {
	var sawTool bool
	var img1, img2 []byte
	opts := Options{
		MaxReplays:        200,
		DelayOnDivergence: true,
		OnEpochEnd: func(rt *Runtime, info EpochEndInfo) Decision {
			if info.Reason == StopTool && img1 == nil {
				sawTool = true
				img1 = rt.Mem().HeapImage()
				return Replay
			}
			return Proceed
		},
		OnReplayMatched: func(rt *Runtime, attempts int) Decision {
			if img2 == nil {
				img2 = rt.Mem().HeapImage()
			}
			return Proceed
		},
	}
	rt, err := New(buildCounter(3, 3000), opts)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Poke until one request lands mid-execution.
		for !rt.RequestEpochEnd() {
			time.Sleep(200 * time.Microsecond)
		}
	}()
	rep, err := rt.Run()
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exit != 9000 {
		t.Fatalf("counter = %d, want 9000", rep.Exit)
	}
	if !sawTool {
		t.Skip("request landed only at program end on this run")
	}
	if img1 == nil || img2 == nil {
		t.Fatal("tool-triggered replay did not complete")
	}
	if d := mem.DiffBytes(img1, img2); d != 0 {
		t.Fatalf("tool-triggered replay not identical: %d bytes", d)
	}
}
