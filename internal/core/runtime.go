package core

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/record"
	"repro/internal/tir"
	"repro/internal/vsys"
)

// Options configures a Runtime.
type Options struct {
	// Mem sizes the virtual address space; zero value uses mem.DefaultConfig.
	Mem mem.Config
	// EventCap is the preallocated per-thread event list size; exhausting it
	// closes the epoch (§3.2). Default 4096.
	EventCap int
	// VarCap is the preallocated per-variable list size. Default 8192.
	VarCap int
	// Seed drives external nondeterminism in the virtual OS (clock identity,
	// socket streams). Production callers pass host entropy.
	Seed int64
	// UseLibCAllocator selects the baseline global-lock allocator with
	// ASLR-style placement noise instead of the deterministic heap —
	// the "Orig"/default-library configuration of the evaluation.
	UseLibCAllocator bool
	// ASLRSeed randomizes the baseline allocator's arena base.
	ASLRSeed int64
	// MaxReplays bounds the divergence search; 0 means unlimited (§3.5.2).
	MaxReplays int
	// DelayOnDivergence inserts random delays at gated points during replay
	// retries, the paper's mechanism for reproducing condvar races (§5.2.1).
	DelayOnDivergence bool
	// DisableRecording turns the runtime into a plain executor: no events
	// are recorded and no epochs are managed beyond program end. Used for
	// baseline timing (the denominator of Table 3).
	DisableRecording bool
	// OnEpochEnd is consulted at every epoch boundary; tools return Replay
	// to trigger in-situ re-execution (Figure 2's "check errors").
	OnEpochEnd func(rt *Runtime, info EpochEndInfo) Decision
	// OnReplayMatched is consulted after a re-execution reproduced the
	// recorded schedule; tools may request another Replay (§4.1: more than
	// four watchpoints) or Abort.
	OnReplayMatched func(rt *Runtime, attempts int) Decision
	// TraceSink, when set, receives every epoch's finalized event log at the
	// epoch boundary, after any tool-driven replays have resolved and before
	// the lists are cleared for the next epoch — the hand-off point between
	// in-situ recording and the persistent trace layer (internal/trace). The
	// log is a deep copy; the sink may retain it. A sink error terminates the
	// run and surfaces from Run. Ignored with DisableRecording.
	TraceSink func(*record.EpochLog) error
	// CheckpointEvery, with CheckpointSink set, persists the epoch-boundary
	// checkpoint the runtime already takes every N completed epochs: the
	// sink receives the state at the beginning of epochs N+1, 2N+1, … Zero
	// disables checkpoint persistence.
	CheckpointEvery int
	// CheckpointSink receives the exported checkpoint (memory snapshot,
	// allocator metadata, thread contexts, shadow synchronization state,
	// filesystem state) at the configured interval, while the world is
	// quiescent, after the preceding epoch's TraceSink flush. The checkpoint
	// is immutable; the sink may retain it. A sink error terminates the run.
	// Ignored with DisableRecording; ignored by the replay constructors.
	CheckpointSink func(*Checkpoint) error
	// FlightRecorder, when set, receives the recording stream alongside the
	// sinks above: every finalized epoch log at the epoch boundary and the
	// checkpoint at the CheckpointEvery cadence (the flight recorder needs
	// checkpoints to trim its ring, so an unset CheckpointEvery defaults to
	// 1 when a recorder is attached — every epoch begins with one). The
	// bounded in-memory/on-disk ring behind it lives in internal/flight;
	// core only feeds it. An error terminates the run like a sink error.
	// Ignored with DisableRecording; ignored by the replay constructors.
	FlightRecorder FlightSink
	// Interrupt, when set, lets a caller cancel a run in flight: it is
	// polled at gated points (thread interception sites and quiescent
	// boundaries) and the first non-nil error it returns becomes the run's
	// terminating cause. A recording stops at the next epoch boundary
	// without flushing the final epoch (the trace is left incomplete, which
	// the store reports); an offline replay unwinds as soon as its threads
	// reach gated points and RunReplay returns the cause. Pass a context's
	// Err method to bind a run to that context — the trace service daemon
	// binds every job this way. The function must be safe for concurrent
	// calls from multiple threads. A deadlocked program whose threads never
	// reach another gated point cannot observe the interrupt.
	Interrupt func() error
	// OnProbe receives instrumentation probes (Probe instructions inserted
	// by IR passes); used by the CLAP and ASan baseline runtimes. Must be
	// safe for concurrent calls from different thread IDs.
	OnProbe func(tid int32, id int64, v uint64)
	// Observers attach passive tools to the execution (see observer.go):
	// synchronization, thread-lifecycle, allocation, syscall, memory-access,
	// epoch-boundary, and reset callbacks. The replay-time analysis
	// subsystem (internal/analysis) and the §4 detectors (internal/detect)
	// plug in here. Observers survive PrepareReplay, unlike the recording
	// hooks above.
	Observers []Observer
	// WrapAllocator, when set, wraps the deterministic allocator before use
	// (the ASan baseline interposes shadow bookkeeping this way). Ignored
	// with UseLibCAllocator.
	WrapAllocator func(*heap.Deterministic) heap.Allocator
	// Span, when set, is the parent the runtime records its epoch timeline
	// under: one child span per epoch boundary (start of the epoch to the
	// end of its boundary processing) with a quiescence child, one child
	// per rollback attempt, and reason/rollback attributes. Nil disables
	// span recording; latency histograms observe regardless.
	Span *obs.Span
}

// FlightSink is the surface a flight recorder presents to the runtime: the
// same epoch and checkpoint streams TraceSink/CheckpointSink carry, behind
// one attachable value (Options.FlightRecorder). The logs and checkpoints
// are the same immutable copies the plain sinks receive; the recorder may
// retain them.
type FlightSink interface {
	RecordEpoch(*record.EpochLog) error
	RecordCheckpoint(*Checkpoint) error
}

func (o *Options) fill() {
	if o.Mem.MaxThreads == 0 {
		o.Mem = mem.DefaultConfig()
	}
	if o.EventCap == 0 {
		o.EventCap = 4096
	}
	if o.VarCap == 0 {
		o.VarCap = 8192
	}
	if o.FlightRecorder != nil && o.CheckpointEvery <= 0 {
		// A flight ring trims at checkpoints; without a cadence it could
		// never discard anything.
		o.CheckpointEvery = 1
	}
}

// Stats aggregates runtime counters; Table 2 reads LastReplayAttempts,
// Table 3 derives overhead from wall-clock around Run.
type Stats struct {
	Epochs             int64
	Replays            int64
	MatchedReplays     int64
	Divergences        int64
	LastReplayAttempts int
	EventsRecorded     int64
	// QuiescenceNS is the cumulative time the coordinator spent waiting for
	// the world to quiesce at epoch boundaries (including replay retries).
	QuiescenceNS int64
}

// Runtime executes one TIR program under iReplayer semantics.
type Runtime struct {
	mod   *tir.Module
	mem   *mem.Memory
	os    *vsys.OS
	alloc heap.Allocator
	det   *heap.Deterministic // non-nil unless UseLibCAllocator
	opts  Options

	mu       sync.Mutex
	threads  []*Thread
	nextTID  int32
	createMu sync.Mutex

	shadows map[uint64]*syncVar
	// shadowL is the shadow table, copy-on-write: writers (newSyncVarLocked,
	// under rt.mu) publish a fresh slice through the atomic pointer, so the
	// lock-free fast path of varFor reads an immutable snapshot. Shadow
	// creation is rare (first use of each variable); the copy is cheap.
	shadowL atomic.Pointer[[]*syncVar]

	createVar *syncVar
	superVar  *syncVar

	ph       atomic.Int32
	phaseCh  bcast
	activity atomic.Int64

	stopMu     sync.Mutex
	stopReason StopReason
	stopTID    int32

	divMu    sync.Mutex
	diverged bool
	divInfo  string
	attempt  int

	// intr latches the first non-nil error Options.Interrupt returned; the
	// flag is the lock-free fast path for the per-interception poll.
	intr      atomic.Bool
	intrMu    sync.Mutex
	intrCause error

	epochSeq int64
	ckpt     *checkpoint
	// epochStart anchors the current epoch's wall time; qStart/qEnd are the
	// most recent quiescence wait. All three are monitor-goroutine state
	// (initialized before the monitor starts).
	epochStart   time.Time
	qStart, qEnd time.Time

	// offline marks a runtime built by PrepareReplay: it re-executes a stored
	// trace from program start instead of recording, with program output
	// re-emitted (there is no original execution to duplicate) and recorded
	// opens materialized through the virtual OS.
	offline bool
	// segStart/segEnd bound a segment replay built by PrepareReplayAt:
	// segStart is the restored checkpoint RunReplay resumes from (nil when
	// replaying from program start), segEnd the next checkpoint the end
	// state must byte-match (nil for the trace's final segment).
	segStart *Checkpoint
	segEnd   *Checkpoint

	deferredMu sync.Mutex
	deferred   []deferredOp

	errMu   sync.Mutex
	progErr error

	watchMu   sync.Mutex
	watchHits []interp.WatchHit

	outMu  sync.Mutex
	outBuf strings.Builder

	monitorCh  chan struct{}
	shutdownCh chan struct{}
	done       chan struct{}

	// obs is the attached observer set (observer.go); populated from
	// Options.Observers at construction and via AttachObserver before the
	// program starts, immutable while threads run.
	obs observerSet

	stats Stats
}

// New builds a runtime for mod.
func New(mod *tir.Module, opts Options) (*Runtime, error) {
	if err := tir.Validate(mod); err != nil {
		return nil, err
	}
	opts.fill()
	rt := &Runtime{
		mod:        mod,
		mem:        mem.New(opts.Mem),
		os:         vsys.New(4321, opts.Seed),
		opts:       opts,
		shadows:    make(map[uint64]*syncVar),
		monitorCh:  make(chan struct{}, 1),
		shutdownCh: make(chan struct{}),
		done:       make(chan struct{}),
	}
	// iReplayer raises the descriptor limit during initialization so that
	// deferred closes cannot exhaust it (§2.2.3).
	rt.os.RaiseFDLimit(4096)
	for _, o := range opts.Observers {
		rt.obs.add(o)
	}
	if opts.UseLibCAllocator {
		rt.alloc = heap.NewLibC(rt.mem, opts.ASLRSeed)
	} else {
		det := heap.NewDeterministic(rt.mem)
		det.SetFetchGate(rt.blockFetchGate)
		rt.det = det
		rt.alloc = det
		if opts.WrapAllocator != nil {
			rt.alloc = opts.WrapAllocator(det)
		}
	}
	rt.mu.Lock()
	rt.createVar = rt.newSyncVarLocked(createVarAddr)
	rt.superVar = rt.newSyncVarLocked(superVarAddr)
	rt.mu.Unlock()
	rt.initGlobals()
	return rt, nil
}

// initGlobals lays out and initializes module globals at GlobalBase.
func (rt *Runtime) initGlobals() {
	for i, g := range rt.mod.Globals {
		if len(g.Init) > 0 {
			rt.mem.WriteBytes(interp.GlobalAddr(rt.mod, i), g.Init)
		}
	}
}

// shadowList returns the current shadow-table snapshot (lock-free fast
// path; entries are immutable once published under rt.mu).
func (rt *Runtime) shadowList() []*syncVar {
	if p := rt.shadowL.Load(); p != nil {
		return *p
	}
	return nil
}

func (rt *Runtime) thread(id int32) *Thread {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if id < 0 || int(id) >= len(rt.threads) {
		return nil
	}
	return rt.threads[id]
}

// newThread allocates a vthread: deterministic ID, dedicated stack slot,
// private heap (§2.2.4). Caller holds createMu for deterministic ordering.
func (rt *Runtime) newThread(fn int, arg uint64, hasArg bool) (*Thread, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	id := rt.nextTID
	if int(id) >= rt.opts.Mem.MaxThreads {
		return nil, fmt.Errorf("core: thread limit %d reached", rt.opts.Mem.MaxThreads)
	}
	rt.nextTID++
	t := &Thread{
		id:        id,
		rt:        rt,
		list:      record.NewThreadList(rt.opts.EventCap),
		entryFn:   fn,
		entryArg:  arg,
		hasArg:    hasArg,
		bornEpoch: rt.epochSeq,
		startCh:   make(chan startMsg, 1),
		doneCh:    make(chan struct{}),
		delayRng:  rand.New(rand.NewSource(int64(id)*2654435761 + 97)),
	}
	stackBase, stackSize := rt.mem.StackRange(int(id))
	t.cpu = interp.New(rt.mod, rt.mem, &threadHooks{t: t}, stackBase, stackSize)
	t.cpu.OnWatch = func(h interp.WatchHit) {
		rt.watchMu.Lock()
		rt.watchHits = append(rt.watchHits, h)
		rt.watchMu.Unlock()
	}
	if rt.det != nil {
		rt.det.AssignHeap(id)
	}
	if len(rt.obs.access) > 0 {
		rt.armAccessHook(t)
	}
	rt.threads = append(rt.threads, t)
	return t, nil
}

// blockFetchGate wraps super-heap block fetches in the recorded super-heap
// lock so that block assignment replays identically (§2.2.4): per-object
// allocations take no lock at all, only the (rare) acquisition of each block
// is serialized and recorded. Outside a thread context it runs f directly.
func (rt *Runtime) blockFetchGate(tid int32, f func()) {
	t := rt.thread(tid)
	if t == nil || rt.opts.DisableRecording {
		f()
		return
	}
	s := rt.superVar
	if rt.phaseIs(phReplay) {
		ev, err := t.nextReplayEvent()
		if err != nil {
			panic(fetchUnwind{err})
		}
		if ev != nil {
			if !record.Matches(ev, record.KBlockFetch, s.addr, 0) {
				panic(fetchUnwind{t.diverge(record.KBlockFetch, s.addr, ev)})
			}
			if err := t.waitTurn(s, ev.Pos); err != nil {
				panic(fetchUnwind{err})
			}
			if err := t.acquire(s); err != nil {
				panic(fetchUnwind{err})
			}
			f()
			t.releaseInternal(s)
			t.list.Advance()
			s.advanceTurn()
			return
		}
	}
	if err := t.acquire(s); err != nil {
		panic(fetchUnwind{err})
	}
	pos := rt.appendVar(s, t.id)
	f()
	t.releaseInternal(s)
	t.appendEvent(record.Event{Kind: record.KBlockFetch, Var: s.addr, Pos: pos})
}

// fetchUnwind tunnels an unwind error out of the allocator callback.
type fetchUnwind struct{ err error }

// Run executes the program to completion (including any tool-driven replays)
// and returns the final report.
func (rt *Runtime) Run() (*Report, error) {
	main, err := rt.newThread(rt.mod.Entry, 0, false)
	if err != nil {
		return nil, err
	}
	// The program start is the first epoch's beginning (§3): checkpoint the
	// entry state before releasing the main thread.
	main.cpu.Start(rt.mod.Entry, nil)
	rt.epochSeq = 1
	rt.stats.Epochs = 1
	rt.epochStart = time.Now() //ir:wallclock epoch timeline telemetry
	rt.takeCheckpoint()
	rt.setPhase(phRecord)
	go rt.monitor()
	go main.trampoline()
	main.startCh <- startMsg{kind: smStart}
	<-rt.done

	rt.errMu.Lock()
	err = rt.progErr
	rt.errMu.Unlock()
	rep := &Report{
		Exit:   main.exitVal,
		Stats:  rt.stats,
		Output: rt.Output(),
	}
	return rep, err
}

// Report summarizes a completed run.
type Report struct {
	Exit   uint64
	Stats  Stats
	Output string
}

// --- public accessors for tools, benches, and the debugger ---

// Mem exposes the address space (detectors diff heap images, arm
// watchpoints).
func (rt *Runtime) Mem() *mem.Memory { return rt.mem }

// OS exposes the virtual OS (workload setup adds files).
func (rt *Runtime) OS() *vsys.OS { return rt.os }

// DetAllocator returns the deterministic allocator, or nil in baseline mode.
func (rt *Runtime) DetAllocator() *heap.Deterministic { return rt.det }

// Module returns the program under execution.
func (rt *Runtime) Module() *tir.Module { return rt.mod }

// Stats returns a copy of the runtime counters.
func (rt *Runtime) StatsSnapshot() Stats { return rt.stats }

// WatchHits drains the watchpoint hits collected during re-executions.
func (rt *Runtime) WatchHits() []interp.WatchHit {
	rt.watchMu.Lock()
	defer rt.watchMu.Unlock()
	out := rt.watchHits
	rt.watchHits = nil
	return out
}

// RequestEpochEnd asks the runtime to close the current epoch at the next
// quiescent point — the "user-defined criteria" trigger of §2.1. Tools call
// it from outside the runtime (e.g. a watchdog or an operator console); the
// OnEpochEnd hook then sees StopTool and may answer Replay. Returns false if
// an epoch boundary is already in progress.
func (rt *Runtime) RequestEpochEnd() bool {
	return rt.requestStop(StopTool, -1)
}

// pollInterrupt consults Options.Interrupt, latching and returning the
// first non-nil cause. Once latched it no longer calls the hook, so a
// context's Err is polled at most once per gated point and every caller
// sees the same cause.
func (rt *Runtime) pollInterrupt() error {
	if rt.opts.Interrupt == nil {
		return nil
	}
	if !rt.intr.Load() {
		err := rt.opts.Interrupt()
		if err == nil {
			return nil
		}
		rt.intrMu.Lock()
		if !rt.intr.Load() {
			rt.intrCause = err
			rt.intr.Store(true)
		}
		rt.intrMu.Unlock()
	}
	rt.intrMu.Lock()
	defer rt.intrMu.Unlock()
	return rt.intrCause
}

// DivergenceInfo describes the most recent divergence (diagnostics).
func (rt *Runtime) DivergenceInfo() string {
	rt.divMu.Lock()
	defer rt.divMu.Unlock()
	return rt.divInfo
}

// Output returns everything the program printed during recording.
func (rt *Runtime) Output() string {
	rt.outMu.Lock()
	defer rt.outMu.Unlock()
	return rt.outBuf.String()
}

// ThreadStacks symbolizes every live thread's stack (debugger "info
// threads" / backtraces, §4.3). Call only while the world is stopped.
func (rt *Runtime) ThreadStacks() map[int32][]interp.StackEntry {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make(map[int32][]interp.StackEntry)
	for _, t := range rt.threads {
		if t == nil || t.state.Load() == tsDead || t.state.Load() == tsEmbryo {
			continue
		}
		out[t.id] = t.cpu.CallStack()
	}
	return out
}

// FaultedThread returns the thread that trapped and its error, if any.
func (rt *Runtime) FaultedThread() (int32, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, t := range rt.threads {
		if t != nil && t.faulted != nil {
			return t.id, t.faulted
		}
	}
	return -1, nil
}

// preciseSleep sleeps us microseconds. Sub-millisecond waits spin on the
// wall clock: Go timer granularity under load is about a millisecond, which
// would erase the fine-grained timing relationships racy programs such as
// Crasher depend on — in the original *and*, critically, in re-executions,
// where a coarsened sleep would systematically bias the divergence search
// away from the recorded interleaving.
func preciseSleep(us uint64) {
	d := time.Duration(us) * time.Microsecond
	if d >= time.Millisecond {
		time.Sleep(d) //ir:wallclock recorded delay re-injection reproduces host timing by design
		return
	}
	deadline := time.Now().Add(d)     //ir:wallclock recorded delay re-injection reproduces host timing by design
	for time.Now().Before(deadline) { //ir:nopoll bounded spin to the sub-millisecond deadline above
		// Yield while spinning: on a single-P host a non-yielding spin
		// starves every other goroutine, which would *invert* the timing
		// relationship the sleep is meant to establish.
		runtime.Gosched()
	}
}

// threadHooks adapts one Thread to interp.Hooks.
type threadHooks struct{ t *Thread }

func (h *threadHooks) Syscall(num int64, args []uint64) (uint64, error) {
	var ret uint64
	var err error
	if h.t.rt.opts.DisableRecording {
		ret, err = h.t.performSyscall(num, args, nil)
	} else {
		ret, err = h.t.syscall(num, args)
	}
	if err == nil {
		h.t.rt.notifySyscall(h.t.id, num, ret)
	}
	return ret, err
}

func (h *threadHooks) Probe(id int64, v uint64) {
	if fn := h.t.rt.opts.OnProbe; fn != nil {
		fn(h.t.id, id, v)
	}
}

func (h *threadHooks) Poll() error {
	if h.t.rt.opts.DisableRecording {
		if h.t.rt.phase() == phShutdown {
			return errShutdown
		}
		return nil
	}
	return h.t.intercept()
}

func (h *threadHooks) Intrinsic(id int64, args []uint64) (ret uint64, err error) {
	t := h.t
	rt := t.rt
	arg := func(i int) uint64 {
		if i < len(args) {
			return args[i]
		}
		return 0
	}
	if rt.opts.DisableRecording {
		return h.plainIntrinsic(id, args)
	}
	// Allocator callbacks unwind via panic; translate back to errors.
	defer func() {
		if r := recover(); r != nil {
			if fu, ok := r.(fetchUnwind); ok {
				ret, err = 0, fu.err
				return
			}
			panic(r)
		}
	}()
	switch id {
	case tir.IntrinMutexLock:
		return 0, t.mutexLock(arg(0))
	case tir.IntrinMutexUnlock:
		return 0, t.mutexUnlock(arg(0))
	case tir.IntrinMutexTryLock:
		return t.mutexTryLock(arg(0))
	case tir.IntrinCondWait:
		return 0, t.condWait(arg(0), arg(1))
	case tir.IntrinCondSignal:
		return 0, t.condSignal(arg(0), false)
	case tir.IntrinCondBroadcast:
		return 0, t.condSignal(arg(0), true)
	case tir.IntrinBarrierInit:
		return 0, t.barrierInit(arg(0), arg(1))
	case tir.IntrinBarrierWait:
		return t.barrierWait(arg(0))
	case tir.IntrinThreadCreate:
		return t.threadCreate(int64(arg(0)), arg(1))
	case tir.IntrinThreadJoin:
		return t.threadJoin(arg(0))
	case tir.IntrinThreadExit:
		t.pendingExit = arg(0)
		return 0, errThreadExit
	case tir.IntrinMalloc:
		if err := t.intercept(); err != nil {
			return 0, err
		}
		a := rt.alloc.Malloc(t.id, int64(arg(0)))
		if a == 0 {
			return 0, fmt.Errorf("core: out of memory (malloc %d)", arg(0))
		}
		rt.notifyAlloc(t, a, int64(arg(0)))
		return a, nil
	case tir.IntrinCalloc:
		if err := t.intercept(); err != nil {
			return 0, err
		}
		a := rt.alloc.Calloc(t.id, int64(arg(0)), int64(arg(1)))
		if a == 0 {
			return 0, fmt.Errorf("core: out of memory (calloc %d*%d)", arg(0), arg(1))
		}
		rt.notifyAlloc(t, a, int64(arg(0))*int64(arg(1)))
		return a, nil
	case tir.IntrinFree:
		if err := t.intercept(); err != nil {
			return 0, err
		}
		if err := rt.alloc.Free(t.id, arg(0)); err != nil {
			if rt.phaseIs(phReplay) {
				return 0, t.diverge(0, 0, nil)
			}
			return 0, err
		}
		rt.notifyFree(t, arg(0))
		return 0, nil
	case tir.IntrinSelfTID:
		return uint64(t.id), nil
	case tir.IntrinYield:
		if err := t.intercept(); err != nil {
			return 0, err
		}
		time.Sleep(time.Microsecond) //ir:wallclock guest yield maps to one host-time microsecond by design
		return 0, nil
	case tir.IntrinUsleep:
		if err := t.intercept(); err != nil {
			return 0, err
		}
		preciseSleep(arg(0))
		return 0, nil
	case tir.IntrinPrint:
		// In-situ replay suppresses output (the original execution already
		// printed it) — including the stopping/rollback phases, where a
		// thread between intercept points could otherwise duplicate a line
		// into the preserved original output. Offline replay re-emits
		// everything: there is no original stream, and matching the recorded
		// output is part of the identity check (diverged offline attempts
		// reset the buffer on rollback).
		ph := rt.phase()
		replaying := ph == phReplay || ph == phReplayStopping || ph == phRollback
		if !replaying || rt.offline {
			rt.outMu.Lock()
			fmt.Fprintf(&rt.outBuf, "%d\n", int64(arg(0)))
			rt.outMu.Unlock()
		}
		return 0, nil
	case tir.IntrinAbort:
		return 0, errors.New("core: abort() called")
	}
	return 0, fmt.Errorf("core: unknown intrinsic %d", id)
}

// plainIntrinsic executes intrinsics without recording for baseline timing
// runs: synchronization uses raw primitives, allocation goes straight to the
// allocator.
func (h *threadHooks) plainIntrinsic(id int64, args []uint64) (uint64, error) {
	t := h.t
	rt := t.rt
	arg := func(i int) uint64 {
		if i < len(args) {
			return args[i]
		}
		return 0
	}
	switch id {
	case tir.IntrinMutexLock:
		s, err := rt.varFor(arg(0))
		if err != nil {
			return 0, err
		}
		return 0, t.acquire(s)
	case tir.IntrinMutexUnlock:
		s, err := rt.varFor(arg(0))
		if err != nil {
			return 0, err
		}
		return 0, t.releaseInternal(s)
	case tir.IntrinMutexTryLock:
		s, err := rt.varFor(arg(0))
		if err != nil {
			return 0, err
		}
		s.mu.Lock()
		var ret uint64
		if !s.locked {
			s.locked, s.holder, ret = true, t.id, 1
			rt.notifySync(t.id, SyncAcquire, s.addr)
		}
		s.mu.Unlock()
		return ret, nil
	case tir.IntrinCondWait:
		c, err := rt.varFor(arg(0))
		if err != nil {
			return 0, err
		}
		m, err := rt.varFor(arg(1))
		if err != nil {
			return 0, err
		}
		if err := t.releaseInternal(m); err != nil {
			return 0, err
		}
		c.mu.Lock()
		c.waiters++
		c.mu.Unlock()
		if err := t.condConsume(c, -1); err != nil {
			return 0, err
		}
		return 0, t.acquire(m)
	case tir.IntrinCondSignal:
		return 0, t.condSignal(arg(0), false)
	case tir.IntrinCondBroadcast:
		return 0, t.condSignal(arg(0), true)
	case tir.IntrinBarrierInit:
		return 0, t.barrierInit(arg(0), arg(1))
	case tir.IntrinBarrierWait:
		s, err := rt.varFor(arg(0))
		if err != nil {
			return 0, err
		}
		s.mu.Lock()
		if s.parties == 0 {
			s.mu.Unlock()
			return 0, fmt.Errorf("core: wait on uninitialized barrier")
		}
		myGen := s.gen
		s.arrived++
		rt.notifySync(t.id, SyncBarrierArrive, s.addr)
		released := s.arrived == s.parties
		var serial uint64
		if released {
			s.arrived = 0
			s.gen++
			serial = 1
			// As in the recorded path: release + serial departure in the
			// arrival's critical section.
			rt.notifySync(t.id, SyncBarrierRelease, s.addr)
			rt.notifySync(t.id, SyncBarrierDepart, s.addr)
		}
		s.mu.Unlock()
		if released {
			s.changed.Broadcast()
			return serial, nil
		}
		// barrierSleep notifies the departure under s.mu.
		if err := t.barrierSleep(s, myGen); err != nil {
			return 0, err
		}
		return 0, nil
	case tir.IntrinThreadCreate:
		rt.createMu.Lock()
		child, err := rt.newThread(int(arg(0)), arg(1), true)
		rt.createMu.Unlock()
		if err != nil {
			return 0, err
		}
		rt.notifyThreadCreate(t.id, child.id)
		go child.trampoline()
		child.startCh <- startMsg{kind: smStart}
		return uint64(child.id), nil
	case tir.IntrinThreadJoin:
		child := rt.thread(int32(arg(0)))
		if child == nil {
			return 0, fmt.Errorf("core: join of invalid thread %d", arg(0))
		}
		if err := t.waitExit(child); err != nil {
			return 0, err
		}
		child.joined = true
		rt.notifyThreadJoin(t.id, child.id)
		return child.exitVal, nil
	case tir.IntrinThreadExit:
		t.pendingExit = arg(0)
		return 0, errThreadExit
	case tir.IntrinMalloc:
		a := rt.alloc.Malloc(t.id, int64(arg(0)))
		if a == 0 {
			return 0, fmt.Errorf("core: out of memory")
		}
		rt.notifyAlloc(t, a, int64(arg(0)))
		return a, nil
	case tir.IntrinCalloc:
		a := rt.alloc.Calloc(t.id, int64(arg(0)), int64(arg(1)))
		if a == 0 {
			return 0, fmt.Errorf("core: out of memory")
		}
		rt.notifyAlloc(t, a, int64(arg(0))*int64(arg(1)))
		return a, nil
	case tir.IntrinFree:
		if err := rt.alloc.Free(t.id, arg(0)); err != nil {
			return 0, err
		}
		rt.notifyFree(t, arg(0))
		return 0, nil
	case tir.IntrinSelfTID:
		return uint64(t.id), nil
	case tir.IntrinYield:
		time.Sleep(time.Microsecond) //ir:wallclock guest yield maps to one host-time microsecond by design
		return 0, nil
	case tir.IntrinUsleep:
		preciseSleep(arg(0))
		return 0, nil
	case tir.IntrinPrint:
		rt.outMu.Lock()
		fmt.Fprintf(&rt.outBuf, "%d\n", int64(arg(0)))
		rt.outMu.Unlock()
		return 0, nil
	case tir.IntrinAbort:
		return 0, errors.New("core: abort() called")
	}
	return 0, fmt.Errorf("core: unknown intrinsic %d", id)
}
