// Package core assembles the iReplayer runtime: the vthread layer
// (goroutine-backed threads with recorded synchronization), the epoch
// coordinator (checkpoint / stop-the-world / rollback), and the replay
// controller (per-variable turn gating with divergence search).
//
// It wires together the substrates — interp (checkpointable CPUs), mem
// (snapshottable address space), heap (deterministic allocator), vsys
// (classified virtual syscalls), and record (per-thread/per-variable event
// lists) — into the system described in §2 and §3 of the paper.
package core

import "sync"

// bcast is a broadcastable edge signal: waiters grab the current channel via
// C and block on it; Broadcast closes that channel, waking every waiter, and
// installs a fresh one. It is the building block for interruptible blocking:
// every blocking loop in the runtime selects on both its condition's bcast
// and the runtime's phase bcast, so stop-the-world and rollback can always
// reach a blocked thread (§3.3's challenge 2 — waking threads blocked on
// synchronization).
type bcast struct {
	mu sync.Mutex
	ch chan struct{}
}

// C returns the channel that the next Broadcast will close.
func (b *bcast) C() <-chan struct{} {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.ch == nil {
		b.ch = make(chan struct{})
	}
	return b.ch
}

// Broadcast wakes every goroutine blocked on a channel returned by C.
func (b *bcast) Broadcast() {
	b.mu.Lock()
	if b.ch != nil {
		close(b.ch)
		b.ch = nil
	}
	b.mu.Unlock()
}
