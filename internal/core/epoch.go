package core

import (
	"fmt"
	"time"

	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/record"
)

// Runtime phases. Transitions:
//
//	phRecord -> phStopping            (epoch-end trigger, §3.3)
//	phStopping -> phRecord            (proceed: housekeeping + checkpoint)
//	phStopping -> phRollback          (replay decision)
//	phRollback -> phReplay            (state restored, threads resumed, §3.4)
//	phReplay -> phReplayStopping      (divergence or replay complete)
//	phReplayStopping -> phRollback    (divergence: search again, §3.5.2)
//	phReplayStopping -> phRecord      (matched: proceed to next epoch)
//	any -> phShutdown                 (program end)
const (
	phRecord int32 = iota
	phStopping
	phReplay
	phReplayStopping
	phRollback
	phShutdown
)

// StopReason explains why an epoch ended.
type StopReason int

const (
	// StopNone: no stop in progress.
	StopNone StopReason = iota
	// StopLogFull: a preallocated event list was exhausted (§3.2).
	StopLogFull
	// StopIrrevocable: a thread reached an irrevocable system call (§2.2.3).
	StopIrrevocable
	// StopProgramEnd: main returned; the final epoch is closing.
	StopProgramEnd
	// StopFault: a thread trapped (SIGSEGV analogue); tools may replay with
	// watchpoints or hand control to the debugger (§4.3).
	StopFault
	// StopTool: a tool or the user explicitly requested an epoch end.
	StopTool
)

func (r StopReason) String() string {
	switch r {
	case StopNone:
		return "none"
	case StopLogFull:
		return "log-full"
	case StopIrrevocable:
		return "irrevocable-syscall"
	case StopProgramEnd:
		return "program-end"
	case StopFault:
		return "fault"
	case StopTool:
		return "tool-request"
	}
	return fmt.Sprintf("reason(%d)", int(r))
}

// Decision is a tool's verdict at an epoch boundary.
type Decision int

const (
	// Proceed continues to the next epoch (or terminates, at program end).
	Proceed Decision = iota
	// Replay rolls back and re-executes the last epoch (Figure 2).
	Replay
	// Abort terminates the program immediately.
	Abort
)

// EpochEndInfo is passed to the OnEpochEnd hook.
type EpochEndInfo struct {
	Epoch  int64
	Reason StopReason
	// TID is the thread that triggered the stop.
	TID int32
	// Fault is the trap error when Reason is StopFault.
	Fault error
}

// checkpoint is everything needed to roll the world back to an epoch
// beginning (§3.1): the memory snapshot, allocator metadata, file positions,
// per-thread CPU contexts and blocking situations, and shadow
// synchronization state.
type checkpoint struct {
	epoch     int64
	snap      *mem.Snapshot
	allocSnap heap.AllocSnapshot
	positions map[int64]int64
	threads   map[int32]threadCkpt
	varState  map[int32]varCkpt
}

type threadCkpt struct {
	ctx    *interp.Context
	exited bool
	joined bool
	block  blockInfo
}

func (rt *Runtime) phase() int32         { return rt.ph.Load() }
func (rt *Runtime) phaseIs(p int32) bool { return rt.ph.Load() == p }

func (rt *Runtime) setPhase(p int32) {
	rt.ph.Store(p)
	rt.phaseCh.Broadcast()
}

// requestStop asks the world to stop for an epoch end; only the first
// request per epoch wins (that thread is the paper's coordinator trigger).
func (rt *Runtime) requestStop(reason StopReason, tid int32) bool {
	rt.stopMu.Lock()
	if rt.ph.Load() != phRecord {
		rt.stopMu.Unlock()
		return false
	}
	rt.stopReason = reason
	rt.stopTID = tid
	rt.ph.Store(phStopping)
	rt.stopMu.Unlock()
	rt.phaseCh.Broadcast()
	select {
	case rt.monitorCh <- struct{}{}:
	default:
	}
	return true
}

// requestReplayStop interrupts a replay (divergence detected).
func (rt *Runtime) requestReplayStop() bool {
	rt.stopMu.Lock()
	defer rt.stopMu.Unlock()
	if rt.ph.Load() != phReplay {
		return false
	}
	rt.ph.Store(phReplayStopping)
	rt.phaseCh.Broadcast()
	return true
}

// noteDivergence records that a replaying thread attempted an action that
// does not match its recorded next event (§3.5.2) and interrupts the replay.
func (rt *Runtime) noteDivergence(t *Thread, kind record.Kind, varAddr uint64, got *record.Event) {
	rt.divMu.Lock()
	if !rt.diverged {
		rt.diverged = true
		rt.divInfo = fmt.Sprintf("thread %d attempted %v on %#x, recorded %v",
			t.id, kind, varAddr, got)
	}
	rt.stats.Divergences++
	rt.divMu.Unlock()
	rt.requestReplayStop()
}

// onTrap handles a trap (memory fault, abort, assertion) from a thread.
func (rt *Runtime) onTrap(t *Thread, err error) {
	switch rt.phase() {
	case phReplay, phReplayStopping:
		if rt.stopReason == StopFault && t.list.Replayed() {
			// The original epoch ended with this thread's fault; trapping
			// again after replaying every event is the *matching* outcome.
			return
		}
		rt.noteDivergence(t, 0, 0, nil)
	default:
		rt.errMu.Lock()
		if rt.progErr == nil {
			rt.progErr = err
		}
		rt.errMu.Unlock()
		rt.requestStop(StopFault, t.id)
	}
}

// replayAttempt returns the current re-execution attempt (0 = recording).
func (rt *Runtime) replayAttempt() int {
	rt.divMu.Lock()
	defer rt.divMu.Unlock()
	return rt.attempt
}

// monitor is the coordinator: it owns quiescence detection, checkpointing,
// rollback, and the proceed/replay decision at each epoch boundary. The
// paper assigns this role to the triggering application thread (§3.3); a
// dedicated goroutine is behaviourally equivalent and keeps application
// threads free of coordinator state.
func (rt *Runtime) monitor() {
	defer close(rt.done)
	for { //ir:nopoll woken by monitorCh/shutdownCh; shutdown is the cancellation path
		select {
		case <-rt.monitorCh:
		case <-rt.shutdownCh:
			rt.shutdown()
			return
		}
		qs := time.Now() //ir:wallclock quiescence latency telemetry
		rt.awaitQuiescence()
		rt.observeQuiescence(qs)
		if done := rt.handleEpochEnd(); done {
			rt.shutdown()
			return
		}
	}
}

// observeQuiescence accounts one completed quiescence wait that began at
// start: cumulative stats, the latency histogram, and the interval the next
// epoch span records as its quiescence child. Monitor-goroutine only.
func (rt *Runtime) observeQuiescence(start time.Time) {
	rt.qStart, rt.qEnd = start, time.Now() //ir:wallclock quiescence latency telemetry
	d := rt.qEnd.Sub(rt.qStart)
	rt.stats.QuiescenceNS += d.Nanoseconds()
	obs.CoreQuiescence.Observe(d.Seconds())
}

// awaitQuiescence blocks until no thread is running and the world has been
// stable across consecutive observations — the "all threads have reached a
// quiescent state" condition of §2.1/§3.3. Threads blocked on
// synchronization count as stopped: with every other thread parked, nothing
// can wake them.
func (rt *Runtime) awaitQuiescence() {
	// Stability must hold across several spaced observations, not one: on an
	// oversubscribed host a runnable thread can sit unscheduled (still
	// tsBlocked) past a single 50µs window, and declaring a stall then would
	// send a healthy replay into a spurious rollback.
	const confirmations = 4
	stable := 0
	a1 := rt.activity.Load()
	for { //ir:nopoll interrupt parks guest threads at gated points; quiescence then completes and ends this wait
		if !rt.noneRunning() {
			stable = 0
			time.Sleep(100 * time.Microsecond) //ir:wallclock stability-window spacing between host-time observations
			a1 = rt.activity.Load()
			continue
		}
		time.Sleep(50 * time.Microsecond) //ir:wallclock stability-window spacing between host-time observations
		if a2 := rt.activity.Load(); a2 != a1 || !rt.noneRunning() {
			stable = 0
			a1 = rt.activity.Load()
			continue
		}
		if stable++; stable >= confirmations {
			return
		}
	}
}

func (rt *Runtime) noneRunning() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, t := range rt.threads {
		if t == nil {
			continue
		}
		if s := t.state.Load(); s == tsRunning {
			return false
		}
	}
	return true
}

// handleEpochEnd runs after quiescence: consult tools, then proceed, replay
// (possibly many times, §3.5.2), or terminate. Returns true when the
// program is over.
func (rt *Runtime) handleEpochEnd() bool {
	// A caller-interrupted run terminates at this boundary: the final
	// epoch's log is deliberately not flushed (a canceled recording is an
	// incomplete trace, and the store reports it as such).
	if err := rt.pollInterrupt(); err != nil {
		rt.errMu.Lock()
		if rt.progErr == nil {
			rt.progErr = fmt.Errorf("core: run interrupted: %w", err)
		}
		rt.errMu.Unlock()
		return true
	}
	// stopReason/stopTID are written by requestStop under stopMu from
	// arbitrary goroutines (tools call RequestEpochEnd); take the lock for
	// the read — the captured reason is persisted into trace files and must
	// be the one whose stop this boundary is handling.
	rt.stopMu.Lock()
	reason := rt.stopReason
	stopTID := rt.stopTID
	rt.stopMu.Unlock()
	info := EpochEndInfo{Epoch: rt.epochSeq, Reason: reason, TID: stopTID, Fault: rt.progErr}

	// The epoch's timeline span covers the whole epoch — begin-of-epoch
	// through the end of this boundary's processing (quiescence, tool
	// decisions, any rollbacks) — so a recording timeline shows where the
	// wall time of each epoch went.
	bnd := rt.opts.Span.ChildAt(fmt.Sprintf("epoch %d", rt.epochSeq), rt.epochStart)
	bnd.Record("quiescence", rt.qStart, rt.qEnd)
	rollbacks := 0
	defer func() {
		obs.CoreEpoch.Observe(time.Since(rt.epochStart).Seconds()) //ir:wallclock epoch latency telemetry
		bnd.SetAttr("reason", reason.String())
		if rollbacks > 0 {
			bnd.SetAttr("rollbacks", fmt.Sprintf("%d", rollbacks))
		}
		bnd.End()
		rt.epochStart = time.Now() //ir:wallclock epoch timeline telemetry
	}()

	decision := rt.epochDecision(
		func() Decision {
			if rt.opts.OnEpochEnd == nil {
				return Proceed
			}
			return rt.opts.OnEpochEnd(rt, info)
		},
		func(o EpochObserver) Decision { return o.OnEpochEnd(rt, info) },
	)

	rt.divMu.Lock()
	rt.attempt = 0
	rt.divMu.Unlock()

	for decision == Replay {
		rt.divMu.Lock()
		rt.attempt++
		attempt := rt.attempt
		rt.diverged = false
		rt.divMu.Unlock()
		if rt.opts.MaxReplays > 0 && attempt > rt.opts.MaxReplays {
			decision = Abort
			rt.errMu.Lock()
			if rt.progErr == nil {
				rt.progErr = fmt.Errorf("core: no matching schedule within %d replays", rt.opts.MaxReplays)
			}
			rt.errMu.Unlock()
			break
		}
		rt.stats.Replays++
		rollbacks = attempt
		obs.CoreRollbacks.Inc()
		rbStart := time.Now() //ir:wallclock rollback timeline telemetry
		rt.rollbackAndReplay()
		qs := time.Now() //ir:wallclock quiescence latency telemetry
		rt.awaitQuiescence()
		rt.observeQuiescence(qs)
		bnd.Record(fmt.Sprintf("rollback %d", attempt), rbStart, time.Now()) //ir:wallclock rollback timeline telemetry

		if rt.replayMatched() {
			rt.stats.MatchedReplays++
			rt.stats.LastReplayAttempts = attempt
			decision = rt.epochDecision(
				func() Decision {
					if rt.opts.OnReplayMatched == nil {
						return Proceed
					}
					return rt.opts.OnReplayMatched(rt, attempt)
				},
				func(o EpochObserver) Decision { return o.OnReplayMatched(rt, attempt) },
			)
		}
		// A divergent replay loops with decision still Replay.
	}

	switch decision {
	case Abort:
		return true
	default: // Proceed
		if err := rt.flushTraceSink(reason); err != nil {
			rt.errMu.Lock()
			if rt.progErr == nil {
				rt.progErr = fmt.Errorf("core: trace sink: %w", err)
			}
			rt.errMu.Unlock()
			return true
		}
		if reason == StopProgramEnd || reason == StopFault {
			return true
		}
		if rt.mainExited() {
			// Main's own exit event can fill the event list, making the
			// StopLogFull request win the stop race and drop main's
			// StopProgramEnd (requestStop accepts one trigger per epoch).
			// Main's exit is in the epoch just flushed and every thread is
			// parked — beginning a new epoch would wait forever.
			return true
		}
		if err := rt.beginEpoch(); err != nil {
			rt.errMu.Lock()
			if rt.progErr == nil {
				rt.progErr = err
			}
			rt.errMu.Unlock()
			return true
		}
		return false
	}
}

// mainExited reports whether thread 0 has run to completion. Called at an
// epoch boundary (world quiescent), where main's state is stable.
func (rt *Runtime) mainExited() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	t := rt.threads[0]
	return t != nil && t.state.Load() == tsExited
}

// flushTraceSink hands the closing epoch's finalized log to the configured
// trace sink. It runs while the world is quiescent, after any tool-driven
// replays matched (a matched replay leaves the lists holding exactly the
// recorded events) and before beginEpoch's housekeeping clears them.
func (rt *Runtime) flushTraceSink(reason StopReason) error {
	if rt.opts.DisableRecording || (rt.opts.TraceSink == nil && rt.opts.FlightRecorder == nil) {
		return nil
	}
	// One capture feeds both consumers; the log is immutable once built.
	ep := rt.captureEpochLog(reason)
	if rt.opts.TraceSink != nil {
		if err := rt.opts.TraceSink(ep); err != nil {
			return err
		}
	}
	if rt.opts.FlightRecorder != nil {
		if err := rt.opts.FlightRecorder.RecordEpoch(ep); err != nil {
			return fmt.Errorf("core: flight recorder: %w", err)
		}
	}
	return nil
}

// captureEpochLog deep-copies the epoch's per-thread and per-variable lists
// into an encode-stable record.EpochLog. Reclaimed (dead) threads cannot
// carry events from this epoch and are skipped; every other thread is
// included even with an empty list, because the offline replayer needs each
// thread's entry function to pre-create it.
func (rt *Runtime) captureEpochLog(reason StopReason) *record.EpochLog {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	ep := &record.EpochLog{Epoch: rt.epochSeq, Reason: int32(reason)}
	for _, t := range rt.threads {
		if t == nil || t.state.Load() == tsDead {
			continue
		}
		ep.Threads = append(ep.Threads, record.ThreadLog{
			TID:     t.id,
			EntryFn: int32(t.entryFn),
			Events:  append([]record.Event(nil), t.list.Events()...),
		})
	}
	for _, s := range rt.shadowList() {
		s.mu.Lock()
		if s.order.Len() > 0 {
			ep.Vars = append(ep.Vars, record.VarLog{
				Addr:  s.addr,
				Order: append([]int32(nil), s.order.Order()...),
			})
		}
		s.mu.Unlock()
	}
	return ep
}

// replayStalled probes — without flagging divergence — whether the quiescent
// world still holds unreplayed events while no thread observed a mismatch:
// the state that is either a genuinely stuck schedule or, on an
// oversubscribed host, a runnable thread the scheduler has not run yet.
// Offline replay re-confirms a stall across a grace period before letting
// replayMatched turn it into a divergence.
func (rt *Runtime) replayStalled() bool {
	rt.divMu.Lock()
	diverged := rt.diverged
	rt.divMu.Unlock()
	if diverged {
		return false
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, t := range rt.threads {
		if t == nil || t.state.Load() == tsDead {
			continue
		}
		if !t.list.Replayed() {
			return true
		}
	}
	return false
}

// replayMatched reports whether the finished re-execution reproduced the
// recorded schedule: no divergence was flagged and every thread consumed its
// entire per-thread list (§3.5.2).
func (rt *Runtime) replayMatched() bool {
	rt.divMu.Lock()
	diverged := rt.diverged
	rt.divMu.Unlock()
	if diverged {
		return false
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, t := range rt.threads {
		if t == nil || t.state.Load() == tsDead {
			continue
		}
		if !t.list.Replayed() {
			rt.divMu.Lock()
			rt.diverged = true
			rt.divInfo = fmt.Sprintf("thread %d stalled with %d unreplayed events",
				t.id, t.list.Len())
			rt.stats.Divergences++
			rt.divMu.Unlock()
			return false
		}
	}
	return true
}

// beginEpoch performs §3.1: housekeeping (deferred syscalls, reclamation of
// joined threads, log reset), then checkpoints memory, file positions,
// allocator metadata, shadow synchronization state, and every thread's
// context — persisting the checkpoint through the configured sink at the
// configured interval. The world resumes recording afterwards.
func (rt *Runtime) beginEpoch() error {
	rt.drainDeferred()
	rt.reclaimJoined()
	rt.clearLogs()
	rt.epochSeq++
	rt.stats.Epochs++
	rt.takeCheckpoint()
	if rt.checkpointDue() {
		// Export while still quiescent: the VFS capture and the shared
		// snapshot must not race resumed threads. One capture feeds both the
		// checkpoint sink and the flight recorder.
		ck := rt.captureCheckpoint()
		if rt.opts.CheckpointSink != nil {
			if err := rt.opts.CheckpointSink(ck); err != nil {
				return fmt.Errorf("core: checkpoint sink: %w", err)
			}
		}
		if rt.opts.FlightRecorder != nil {
			if err := rt.opts.FlightRecorder.RecordCheckpoint(ck); err != nil {
				return fmt.Errorf("core: flight recorder: %w", err)
			}
		}
	}
	rt.stopMu.Lock()
	rt.stopReason = StopNone
	rt.stopMu.Unlock()
	rt.setPhase(phRecord)
	return nil
}

// takeCheckpoint captures the rollback state for the opening epoch.
func (rt *Runtime) takeCheckpoint() {
	ck := &checkpoint{
		epoch:     rt.epochSeq,
		snap:      rt.mem.Snapshot(),
		allocSnap: rt.alloc.Snapshot(),
		positions: rt.os.Positions(),
		threads:   make(map[int32]threadCkpt),
		varState:  make(map[int32]varCkpt),
	}
	rt.mu.Lock()
	threads := append([]*Thread(nil), rt.threads...)
	shadows := rt.shadowList()
	rt.mu.Unlock()
	for _, t := range threads {
		if t == nil || t.state.Load() == tsDead {
			continue
		}
		tc := threadCkpt{exited: t.state.Load() == tsExited, joined: t.joined, block: t.block}
		if !tc.exited {
			tc.ctx = t.cpu.GetContext()
		}
		ck.threads[t.id] = tc
	}
	for _, s := range shadows {
		ck.varState[s.id] = s.checkpoint()
	}
	rt.ckpt = ck
}

// rollbackAndReplay implements §3.4: unwind every thread to its trampoline,
// restore memory, allocator, file positions, shadow state and list cursors,
// then resume each thread from its checkpointed context for re-execution.
func (rt *Runtime) rollbackAndReplay() {
	// 1. Unwind: every thread leaves its hook and parks at its trampoline.
	rt.setPhase(phRollback)
	rt.awaitAllUnwound()

	// 2. Restore shared state while every thread is parked.
	if rt.offline {
		// An offline retry restarts the whole program; discard the diverged
		// attempt's re-emitted output so a matched attempt's output is whole.
		rt.outMu.Lock()
		rt.outBuf.Reset()
		rt.outMu.Unlock()
	}
	rt.clearDeferred()
	rt.mem.Restore(rt.ckpt.snap)
	rt.alloc.Restore(rt.ckpt.allocSnap)
	rt.os.RestorePositions(rt.ckpt.positions)
	rt.mu.Lock()
	threads := append([]*Thread(nil), rt.threads...)
	shadows := rt.shadowList()
	rt.mu.Unlock()
	for _, s := range shadows {
		if st, ok := rt.ckpt.varState[s.id]; ok {
			s.restore(st)
		} else {
			// Variable first used during the dead epoch: reset wholesale.
			s.restore(varCkpt{holder: -1})
		}
	}
	for _, t := range threads {
		if t == nil {
			continue
		}
		t.list.ResetReplay()
		t.faulted = nil
	}

	// The abandoned attempt's observations are about to be re-executed;
	// stateful observers discard them while every thread is still parked.
	rt.notifyReset()

	// 3. Resume. Threads present in the checkpoint are restored to their
	// contexts (or re-parked as exited); threads born during the dead epoch
	// become embryos again and wait for their replayed create event.
	rt.setPhase(phReplay)
	for _, t := range threads {
		if t == nil || t.state.Load() == tsDead {
			continue
		}
		tc, inCkpt := rt.ckpt.threads[t.id]
		switch {
		case !inCkpt:
			// Born during the dead epoch. Its creator marked it running
			// before handing it its start message (threadCreate), so
			// awaitAllUnwound above could not pass until the message was
			// consumed and the thread unwound — the start channel is
			// empty and the thread is parked at its trampoline.
			t.setState(tsEmbryo)
		case tc.exited:
			t.joined = tc.joined
			// Mark the thread running before handing it its message: a thread
			// with an unprocessed resume is not quiescent, and quiescence
			// detection observing the hand-off window would otherwise declare
			// a stalled replay and start a second rollback whose send then
			// deadlocks against the undrained one-slot start channel.
			t.setState(tsRunning)
			t.startCh <- startMsg{kind: smParkExited}
		default:
			t.joined = tc.joined
			t.setState(tsRunning)
			t.startCh <- startMsg{kind: smResume, ctx: tc.ctx, block: tc.block}
		}
	}
}

// awaitAllUnwound blocks until every live thread is parked at its trampoline
// (or is an embryo / dead).
func (rt *Runtime) awaitAllUnwound() {
	for { //ir:nopoll rollback and interrupt both park every thread at its trampoline, which satisfies this wait
		ready := true
		rt.mu.Lock()
		for _, t := range rt.threads {
			if t == nil {
				continue
			}
			switch t.state.Load() {
			case tsUnwound, tsEmbryo, tsDead:
			default:
				ready = false
			}
			if !ready {
				break
			}
		}
		rt.mu.Unlock()
		if ready {
			return
		}
		time.Sleep(50 * time.Microsecond) //ir:wallclock spacing between unwind observations
	}
}

// reclaimJoined releases joined, exited threads at the epoch boundary (§3.1:
// "joined threads will be reclaimed").
func (rt *Runtime) reclaimJoined() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, t := range rt.threads {
		if t == nil {
			continue
		}
		if t.state.Load() == tsExited && t.joined {
			t.setState(tsDead)
			close(t.startCh)
		}
	}
}

// clearLogs discards the previous epoch's events (§3.1 housekeeping).
func (rt *Runtime) clearLogs() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, t := range rt.threads {
		if t != nil {
			t.list.Clear()
		}
	}
	for _, s := range rt.shadowList() {
		s.mu.Lock()
		s.order.Clear()
		s.mu.Unlock()
	}
}

// shutdown terminates every thread goroutine and finalizes the runtime.
func (rt *Runtime) shutdown() {
	rt.setPhase(phShutdown)
	rt.mu.Lock()
	threads := append([]*Thread(nil), rt.threads...)
	rt.mu.Unlock()
	for _, t := range threads {
		if t == nil {
			continue
		}
		if t.state.Load() != tsDead {
			func() {
				defer func() { recover() }() // startCh may already be closed
				close(t.startCh)
			}()
		}
	}
	for _, t := range threads {
		if t != nil {
			<-t.doneCh
		}
	}
}
