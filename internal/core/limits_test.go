package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/tir"
	"repro/internal/vsys"
)

// TestMaxReplaysAborts: a replay that can never match (the tool keeps
// demanding replays of a schedule we corrupt by re-seeding external
// nondeterminism) must stop at the configured bound with a diagnostic,
// instead of searching forever.
func TestMaxReplaysAborts(t *testing.T) {
	// Program whose control flow depends on recorded external entropy: on
	// replay the recorded value is returned, so this program alone always
	// matches — we instead force mismatch by demanding a replay and
	// simultaneously corrupting the log's expectations via a tool that
	// rejects every match.
	mb := tir.NewModuleBuilder()
	m := mb.Func("main", 0)
	r := m.NewReg()
	m.Syscall(r, vsys.SysRand)
	m.Ret(r)
	m.Seal()
	mb.SetEntry("main")

	opts := Options{
		MaxReplays: 3,
		OnEpochEnd: func(rt *Runtime, info EpochEndInfo) Decision {
			return Replay
		},
		OnReplayMatched: func(rt *Runtime, attempts int) Decision {
			return Replay // never satisfied: exhausts the bound
		},
	}
	rt, err := New(mb.MustBuild(), opts)
	if err != nil {
		t.Fatal(err)
	}
	_, runErr := rt.Run()
	if runErr == nil || !strings.Contains(runErr.Error(), "no matching schedule within 3 replays") {
		t.Fatalf("err = %v, want replay-bound diagnostic", runErr)
	}
}

// TestThreadLimitSurfacesAsError: exceeding the stack-slot bound must be a
// clean program error, not a runtime panic.
func TestThreadLimitSurfacesAsError(t *testing.T) {
	mb := tir.NewModuleBuilder()
	w := mb.Func("worker", 1)
	d := w.NewReg()
	w.ConstI(d, 1000)
	w.Intrin(-1, tir.IntrinUsleep, d)
	w.Ret(-1)
	w.Seal()
	m := mb.Func("main", 0)
	fnr, argr, tid := m.NewReg(), m.NewReg(), m.NewReg()
	m.ConstI(fnr, int64(w.Index()))
	m.ConstI(argr, 0)
	for i := 0; i < 80; i++ { // exceeds MaxThreads (64)
		m.Intrin(tid, tir.IntrinThreadCreate, fnr, argr)
	}
	m.Ret(tid)
	m.Seal()
	mb.SetEntry("main")
	rt, err := New(mb.MustBuild(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, runErr := rt.Run()
	if runErr == nil || !strings.Contains(runErr.Error(), "thread limit") {
		t.Fatalf("err = %v, want thread-limit error", runErr)
	}
}

// TestAbortIntrinsic models abort(3): an abnormal exit that surfaces as a
// fault with evidence (§4.3's entry point for the debugger).
func TestAbortIntrinsic(t *testing.T) {
	mb := tir.NewModuleBuilder()
	m := mb.Func("main", 0)
	m.Intrin(-1, tir.IntrinAbort)
	m.Ret(-1)
	m.Seal()
	mb.SetEntry("main")
	var reason StopReason
	opts := Options{
		OnEpochEnd: func(rt *Runtime, info EpochEndInfo) Decision {
			reason = info.Reason
			return Proceed
		},
	}
	rt, err := New(mb.MustBuild(), opts)
	if err != nil {
		t.Fatal(err)
	}
	_, runErr := rt.Run()
	if runErr == nil || !strings.Contains(runErr.Error(), "abort") {
		t.Fatalf("err = %v", runErr)
	}
	if reason != StopFault {
		t.Fatalf("reason = %v, want fault", reason)
	}
}

// TestMainExitAtEventCap: when main's own exit event is the append that
// crosses into the event-list safety margin, the resulting StopLogFull
// request wins the stop race and exitPath's StopProgramEnd is dropped
// (requestStop accepts one trigger per epoch). The boundary must still
// recognize the exited main and terminate — a regression here leaves Run
// blocked forever with every thread parked. Found by ir-fuzz seed 61.
func TestMainExitAtEventCap(t *testing.T) {
	mb := tir.NewModuleBuilder()
	m := mb.Func("main", 0)
	r := m.NewReg()
	for i := 0; i < 3; i++ {
		m.Syscall(r, vsys.SysRand)
	}
	m.Ret(r)
	m.Seal()
	mb.SetEntry("main")

	// Cap 12, margin 8: appends 1-3 (syscalls) leave >8 slots free; the
	// 4th append — the exit event itself — crosses the threshold.
	rt, err := New(mb.MustBuild(), Options{EventCap: 12})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, runErr := rt.Run()
		done <- runErr
	}()
	select {
	case runErr := <-done:
		if runErr != nil {
			t.Fatal(runErr)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not terminate: program end lost to the log-full stop race")
	}
}
