package core

// Offline replay: re-executing a stored trace in a fresh process.
//
// In-situ replay (§3.4) rolls the live world back to the last epoch
// checkpoint and re-executes against the in-memory lists. Offline replay has
// no live world and no serialized CPU contexts — what a trace persists is
// exactly the paper's per-thread and per-variable lists (§3.2), plus enough
// thread metadata to rebuild the cast. That is sufficient because the lists
// of *all* epochs, concatenated with per-variable positions rebased
// (record.FlattenEpochs), fully determine a re-execution from program start:
//
//   - program order fixes each thread's sequence, the concatenated variable
//     lists fix every cross-thread interleaving, recordable syscall results
//     are returned from the log, and revocable IO is re-issued against the
//     re-created virtual OS state;
//   - epoch boundaries need no re-enactment: the irrevocable-syscall dance
//     and log-exhaustion stops exist to bound in-situ rollback, and a
//     whole-program replay has nothing to bound;
//   - divergence checking and the randomized re-execution search (§3.5.2)
//     are inherited unchanged — the program-start checkpoint taken before
//     releasing the main thread is a perfectly ordinary rollback target, so
//     a diverged attempt restarts the program exactly like an in-situ retry
//     restarts an epoch.
//
// PrepareReplay builds the primed runtime (callers may still populate the
// virtual OS with the workload's input files), RunReplay drives it, and
// ReplayFromTrace is the one-call convenience wrapper.

import (
	"errors"
	"fmt"

	"time"

	"repro/internal/record"
	"repro/internal/tir"
)

// PrepareReplay builds a runtime primed to re-execute the recorded epochs of
// a trace from program start. The returned runtime has not started: callers
// that need virtual-OS state (input files installed by workload setup) must
// recreate it via rt.OS() before calling RunReplay. Options are interpreted
// as for New, except that recording-side hooks (TraceSink, OnEpochEnd,
// OnReplayMatched) are ignored; Mem, EventCap, VarCap and the allocator
// selection must match the recording run for addresses to reproduce.
// Options.Observers ARE honored — attaching analyzers to the replay path is
// how the replay-time analysis subsystem (internal/analysis) works — with
// the caveat that epoch observers never fire offline (there are no epoch
// boundaries to re-enact).
func PrepareReplay(mod *tir.Module, epochs []*record.EpochLog, opts Options) (*Runtime, error) {
	return prepareReplay(mod, epochs, opts, nil)
}

// PrepareReplayFlat is PrepareReplay for an already flattened trace: callers
// that stream epoch frames through bounded windows (record.Flattener) hand
// over the flattened per-thread/per-variable lists instead of pinning every
// decoded epoch for the runtime's construction. Semantics are identical to
// PrepareReplay over the same epoch range.
func PrepareReplayFlat(mod *tir.Module, fl *record.Flat, opts Options) (*Runtime, error) {
	return prepareReplayFlat(mod, fl, opts, nil)
}

// prepareReplay is PrepareReplay with an optional shadow-table seed: preVars,
// when non-nil, is a checkpoint's creation-ordered shadow table, pre-created
// so the replay assigns exactly the recording's shadow IDs. The IDs matter
// because they are cached inside VM memory (the index word of each
// synchronization variable): a segment whose end image is byte-compared
// against a checkpoint must write the same index values the recording wrote.
// Pre-creating from the per-variable order lists alone is not enough —
// variables first touched by barrier_init or cond_signal never enter an
// order list, yet consume a shadow ID at creation.
func prepareReplay(mod *tir.Module, epochs []*record.EpochLog, opts Options, preVars []VarState) (*Runtime, error) {
	if len(epochs) == 0 {
		return nil, errors.New("core: replay of an empty trace")
	}
	threads, vars, err := record.FlattenEpochs(epochs)
	if err != nil {
		return nil, err
	}
	fl := &record.Flat{
		Threads: threads,
		Vars:    vars,
		Epochs:  int64(len(epochs)),
		Reason:  epochs[len(epochs)-1].Reason,
	}
	return prepareReplayFlat(mod, fl, opts, preVars)
}

func prepareReplayFlat(mod *tir.Module, fl *record.Flat, opts Options, preVars []VarState) (*Runtime, error) {
	if fl == nil || fl.Epochs == 0 {
		return nil, errors.New("core: replay of an empty trace")
	}
	threads, vars := fl.Threads, fl.Vars
	if len(threads) == 0 || len(threads[0].Events) == 0 {
		return nil, errors.New("core: trace has no main-thread events")
	}
	for i, tl := range threads {
		// Whole-trace replay needs dense TIDs (the per-thread list load below
		// indexes the runtime's thread table by slot). FlattenEpochs enforces
		// this on the epoch-slice path; the streamed path is checked here.
		if tl.TID != int32(i) {
			return nil, fmt.Errorf("core: non-dense thread IDs in flattened trace (slot %d holds tid %d)",
				i, tl.TID)
		}
		if tl.TID != 0 && (tl.EntryFn < 0 || int(tl.EntryFn) >= len(mod.Funcs)) {
			return nil, fmt.Errorf("core: trace thread %d has invalid entry function %d",
				tl.TID, tl.EntryFn)
		}
	}
	opts.TraceSink = nil
	opts.OnEpochEnd = nil
	opts.OnReplayMatched = nil
	opts.CheckpointSink = nil
	opts.FlightRecorder = nil
	opts.DisableRecording = false
	rt, err := New(mod, opts)
	if err != nil {
		return nil, err
	}
	rt.offline = true

	// The final epoch's stop reason matters for one check: a trace that ended
	// in a fault must see the same fault again — onTrap treats a trap after a
	// fully consumed list as the matching outcome only under StopFault.
	rt.stopReason = StopReason(fl.Reason)

	// Main thread and the program-start checkpoint, exactly as Run does. Its
	// trampoline starts parked on the start channel; RunReplay releases it.
	main, err := rt.newThread(rt.mod.Entry, 0, false)
	if err != nil {
		return nil, err
	}
	main.cpu.Start(rt.mod.Entry, nil)
	rt.epochSeq = 1
	rt.stats.Epochs = fl.Epochs
	rt.epochStart = time.Now() //ir:wallclock epoch timeline telemetry
	rt.takeCheckpoint()
	go main.trampoline()
	// Once any trampoline is live, error paths must reap it.
	fail := func(err error) (*Runtime, error) {
		rt.shutdown()
		return nil, err
	}

	// Pre-create every other recorded thread in embryo state, after the
	// checkpoint so that a divergence rollback reverts it to an embryo again
	// (the !inCkpt arm of rollbackAndReplay). Its replayed creation event
	// releases it, as for threads born during an in-situ dead epoch (§3.5.1).
	for _, tl := range threads[1:] {
		t, err := rt.newThread(int(tl.EntryFn), 0, true)
		if err != nil {
			return fail(err)
		}
		go t.trampoline()
		if t.id != tl.TID {
			return fail(fmt.Errorf("core: trace thread %d materialized as %d", tl.TID, t.id))
		}
	}

	// Load the concatenated lists. Shadow variables are pre-created so their
	// recorded orders are in place before first use; varFor finds them by
	// address and rewrites the in-memory index word on demand. A checkpoint
	// shadow table, when provided, seeds creation order (and thereby IDs)
	// exactly as the recording assigned them.
	if err := rt.seedShadows(preVars); err != nil {
		return fail(err)
	}
	rt.mu.Lock()
	for i := range threads {
		rt.threads[i].list = record.LoadThreadList(threads[i].Events)
	}
	rt.mu.Unlock()
	for _, vl := range vars {
		s := rt.replayVarFor(vl.Addr)
		s.mu.Lock()
		s.order = record.LoadVarList(vl.Order)
		s.mu.Unlock()
	}
	return rt, nil
}

// seedShadows pre-creates the shadow table from a checkpoint's
// creation-ordered Vars list, verifying the IDs come out aligned (entries 0
// and 1 are the runtime pseudo-variables every runtime pre-allocates).
func (rt *Runtime) seedShadows(vars []VarState) error {
	if len(vars) == 0 {
		return nil
	}
	if len(vars) < 2 || vars[0].Addr != createVarAddr || vars[1].Addr != superVarAddr {
		return errors.New("core: checkpoint shadow table lacks the runtime pseudo-variables")
	}
	for i := range vars {
		sv := rt.replayVarFor(vars[i].Addr)
		if int(sv.id) != i {
			return fmt.Errorf("core: checkpoint shadow %#x materialized as id %d, want %d",
				vars[i].Addr, sv.id, i)
		}
	}
	return nil
}

// Shutdown reaps a runtime's thread goroutines. Run and RunReplay shut down
// automatically on completion; callers that abandon a PrepareReplay runtime
// before RunReplay (e.g. a failed OS setup) must call it themselves.
func (rt *Runtime) Shutdown() { rt.shutdown() }

// replayVarFor resolves (or pre-creates) the shadow for addr without touching
// VM memory — memory is still at its program-start state and varFor caches
// the index word lazily on first use during the replay itself.
func (rt *Runtime) replayVarFor(addr uint64) *syncVar {
	switch addr {
	case createVarAddr:
		return rt.createVar
	case superVarAddr:
		return rt.superVar
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if s, ok := rt.shadows[addr]; ok {
		return s
	}
	return rt.newSyncVarLocked(addr)
}

// RunReplay re-executes the loaded trace to completion through the ordinary
// divergence-checking replay path, retrying from program start (with the
// §3.5.2 randomized delays, if enabled) until the recorded schedule is
// reproduced or Options.MaxReplays attempts are exhausted. On a match it
// returns the replayed report; a trace that recorded a fault reproduces the
// fault, which is returned as the error alongside the report.
func (rt *Runtime) RunReplay() (*Report, error) {
	if !rt.offline {
		return nil, errors.New("core: RunReplay on a runtime not built by PrepareReplay")
	}
	main := rt.thread(0)
	if main == nil {
		return nil, errors.New("core: replay runtime has no main thread")
	}
	// In-situ replay inherits the paper's unlimited default search; offline a
	// runaway search has no user watching it, so an unset bound gets a large
	// finite default and surfaces as an error instead of spinning forever.
	maxReplays := rt.opts.MaxReplays
	if maxReplays == 0 {
		maxReplays = 256
	}
	rt.divMu.Lock()
	rt.attempt = 1
	rt.divMu.Unlock()
	rt.stats.Replays++
	if rt.segStart != nil {
		// Mid-trace segment: seed the world from the restored checkpoint and
		// resume every thread at its checkpointed context — the same path a
		// divergence retry takes, pointed at the segment start.
		rt.rollbackAndReplay()
	} else {
		rt.setPhase(phReplay)
		// Mark main running before releasing it so quiescence detection
		// cannot observe an all-parked world in the hand-off window.
		main.setState(tsRunning)
		main.startCh <- startMsg{kind: smStart}
	}

	attempt := 1
	for {
		rt.awaitQuiescence()
		// A caller-interrupted replay stops here: interception sites have
		// already unwound the running threads (intercept returns errShutdown
		// once the interrupt latches), so quiescence arrives promptly.
		if err := rt.pollInterrupt(); err != nil {
			rt.shutdown()
			return nil, fmt.Errorf("core: replay interrupted: %w", err)
		}
		if rt.replayStalled() {
			// Quiescent with unreplayed events but no thread-flagged
			// divergence: on an oversubscribed host this is usually a
			// runnable thread the scheduler has not run yet, not a wrong
			// schedule. A false positive here is expensive offline — the
			// retry re-executes the whole segment under delay injection — so
			// give the scheduler a grace period before declaring divergence.
			for wait := 0; wait < 200 && rt.replayStalled(); wait++ {
				if rt.pollInterrupt() != nil {
					break // the check below reports the cause
				}
				time.Sleep(500 * time.Microsecond) //ir:wallclock divergence grace-period spacing
				rt.awaitQuiescence()
			}
			if err := rt.pollInterrupt(); err != nil {
				rt.shutdown()
				return nil, fmt.Errorf("core: replay interrupted: %w", err)
			}
		}
		if rt.replayMatched() {
			rt.stats.MatchedReplays++
			rt.stats.LastReplayAttempts = attempt
			break
		}
		if attempt >= maxReplays {
			info := rt.DivergenceInfo()
			rt.shutdown()
			return nil, fmt.Errorf("core: offline replay diverged %d times without matching: %s",
				attempt, info)
		}
		attempt++
		rt.stats.Replays++
		rt.divMu.Lock()
		rt.attempt = attempt
		rt.diverged = false
		rt.divMu.Unlock()
		rt.rollbackAndReplay()
	}

	// Stitching check for segment replays: the matched schedule must also
	// land on the next checkpoint's exact memory image and output budget.
	if err := rt.verifySegmentEnd(); err != nil {
		rt.shutdown()
		return nil, err
	}

	rep := &Report{
		Exit:   main.exitVal,
		Stats:  rt.stats,
		Output: rt.Output(),
	}
	_, ferr := rt.FaultedThread()
	rt.shutdown()
	return rep, ferr
}

// ReplayFromTrace loads a recorded epoch sequence and re-executes it from
// program start: PrepareReplay + optional OS setup + RunReplay. setup, when
// non-nil, runs before execution and recreates environment the recording run
// had (typically the workload's input files).
func ReplayFromTrace(mod *tir.Module, epochs []*record.EpochLog, opts Options, setup func(*Runtime) error) (*Report, error) {
	rt, err := PrepareReplay(mod, epochs, opts)
	if err != nil {
		return nil, err
	}
	if setup != nil {
		if err := setup(rt); err != nil {
			rt.shutdown()
			return nil, err
		}
	}
	return rt.RunReplay()
}
