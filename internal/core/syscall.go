package core

import (
	"fmt"

	"repro/internal/record"
	"repro/internal/vsys"
)

// deferredOp is a deferrable system call postponed to the next epoch
// boundary (§2.2.3: close and munmap irrevocably change state but can be
// safely delayed until re-execution is no longer possible).
type deferredOp struct {
	num  int64
	args [2]uint64
}

// syscall is the single entry point for the Syscall instruction: it
// classifies the call (§2.2.3) and routes it through the recording or replay
// path.
func (t *Thread) syscall(num int64, args []uint64) (uint64, error) {
	if err := t.intercept(); err != nil {
		return 0, err
	}
	rt := t.rt
	class := rt.os.Classify(num, args)

	// Irrevocable calls close the epoch first; the thread then re-executes
	// the syscall at the beginning of the next epoch, carrying a one-shot
	// pass so it does not close that epoch too (§2.2.3).
	if class == vsys.Irrevocable && !rt.phaseIs(phReplay) {
		if t.irrevocablePass {
			t.irrevocablePass = false
		} else {
			t.irrevocablePass = true
			rt.requestStop(StopIrrevocable, t.id)
			if err := t.intercept(); err != nil { // parks until the epoch closes
				t.irrevocablePass = false
				return 0, err
			}
			// New epoch begun; fall through and perform the call.
			t.irrevocablePass = false
		}
	}

	if rt.phaseIs(phReplay) {
		return t.syscallReplay(num, args, class)
	}

	switch class {
	case vsys.Repeatable:
		return t.performSyscall(num, args, nil)
	case vsys.Recordable:
		var data []byte
		ret, err := t.performSyscall(num, args, &data)
		if err != nil {
			return 0, err
		}
		t.appendEvent(record.Event{Kind: record.KSyscall, Aux: num, Ret: ret,
			Pos: -1, Class: uint8(class), Data: data})
		return ret, nil
	case vsys.Revocable, vsys.Irrevocable:
		// Revocable calls are performed and re-issued during replay after
		// position recovery; irrevocable calls reach here only at the start
		// of a fresh epoch and behave like revocable ones for its replay
		// (their effect is reproduced by re-execution, e.g. lseek).
		ret, err := t.performSyscall(num, args, nil)
		if err != nil {
			return 0, err
		}
		cl := vsys.Revocable
		if num == vsys.SysFork || num == vsys.SysExecve {
			// Forking twice would be wrong; replay returns the recorded pid.
			cl = vsys.Recordable
		}
		t.appendEvent(record.Event{Kind: record.KSyscall, Aux: num, Ret: ret,
			Pos: -1, Class: uint8(cl)})
		return ret, nil
	case vsys.Deferrable:
		// Not performed now: queued for the next epoch boundary.
		rt.deferOp(num, args)
		t.appendEvent(record.Event{Kind: record.KSyscall, Aux: num, Ret: 0,
			Pos: -1, Class: uint8(class)})
		return 0, nil
	}
	return 0, fmt.Errorf("core: unclassified syscall %s", vsys.SyscallName(num))
}

// syscallReplay replays a system call according to its recorded class
// (§3.5.1): recordable results are returned without invocation, revocable
// calls are re-issued, deferrable calls are re-queued.
func (t *Thread) syscallReplay(num int64, args []uint64, class vsys.Class) (uint64, error) {
	rt := t.rt
	ev, err := t.nextReplayEvent()
	if err != nil {
		return 0, err
	}
	if ev == nil {
		// Back in recording mode (replay of this thread's list finished and
		// the world proceeded): re-enter the recording path.
		return t.syscall(num, args)
	}
	if class == vsys.Repeatable {
		// Repeatable calls are not events; perform directly (§2.2.3).
		return t.performSyscall(num, args, nil)
	}
	if !record.Matches(ev, record.KSyscall, 0, num) {
		return 0, t.diverge(record.KSyscall, 0, ev)
	}
	defer t.list.Advance()
	switch vsys.Class(ev.Class) {
	case vsys.Recordable:
		// Return the recorded result; deliver any recorded payload (socket
		// reads) into the caller's buffer.
		if num == vsys.SysRead && len(ev.Data) > 0 && len(args) >= 2 {
			if err := rt.mem.WriteBytes(args[1], ev.Data); err != nil {
				return 0, t.trapf("replayed read into bad buffer %#x", args[1])
			}
		}
		if num == vsys.SysOpen {
			if rt.offline {
				// Offline replay runs in a fresh process: nothing is open.
				// Materialize the descriptor at the recorded number (which
				// sidesteps any cross-thread ordering of concurrent opens)
				// with the position a fresh open would have.
				if len(args) < 2 {
					return 0, t.trapf("replayed open with missing path args")
				}
				path, perr := rt.readString(args[0], int(args[1]))
				if perr != nil {
					return 0, t.trapf("replayed open with bad path pointer: %v", perr)
				}
				if oerr := rt.os.OpenAt(path, int64(ev.Ret)); oerr != nil {
					return 0, t.trapf("replayed open: %v", oerr)
				}
			} else {
				// The file is still open in-situ from the original execution;
				// the replayed open returns the recorded descriptor, reset to
				// the position a fresh open would have. Descriptors already
				// open at epoch begin are covered by the checkpointed position
				// table instead (§3.4).
				rt.os.Lseek(int64(ev.Ret), 0, vsys.SeekSet)
			}
		}
		return ev.Ret, nil
	case vsys.Revocable:
		ret, err := t.performSyscall(num, args, nil)
		if err != nil {
			return 0, err
		}
		if ret != ev.Ret {
			return 0, t.diverge(record.KSyscall, 0, ev)
		}
		return ret, nil
	case vsys.Deferrable:
		rt.deferOp(num, args)
		return ev.Ret, nil
	}
	return 0, t.diverge(record.KSyscall, 0, ev)
}

func (t *Thread) trapf(format string, args ...interface{}) error {
	return fmt.Errorf("core: "+format, args...)
}

// performSyscall actually invokes the virtual OS (or the deterministic
// mapper for mmap). recData, when non-nil, receives payloads that must be
// recorded (socket reads).
func (t *Thread) performSyscall(num int64, args []uint64, recData *[]byte) (uint64, error) {
	rt := t.rt
	o := rt.os
	arg := func(i int) uint64 {
		if i < len(args) {
			return args[i]
		}
		return 0
	}
	switch num {
	case vsys.SysGetpid:
		return uint64(o.Pid()), nil
	case vsys.SysGettimeofday:
		return uint64(o.Gettimeofday()), nil
	case vsys.SysRand:
		return o.Rand(), nil
	case vsys.SysOpen:
		path, err := rt.readString(arg(0), int(arg(1)))
		if err != nil {
			return 0, err
		}
		fd, err := o.Open(path)
		if err != nil {
			return 0, t.trapf("open %q: %v", path, err)
		}
		return uint64(fd), nil
	case vsys.SysClose:
		if err := o.Close(int64(arg(0))); err != nil {
			return 0, t.trapf("close: %v", err)
		}
		return 0, nil
	case vsys.SysRead:
		b, err := o.Read(int64(arg(0)), int(arg(2)))
		if err != nil {
			return 0, t.trapf("read: %v", err)
		}
		if len(b) > 0 {
			if err := rt.mem.WriteBytes(arg(1), b); err != nil {
				return 0, t.trapf("read into bad buffer %#x", arg(1))
			}
		}
		if recData != nil {
			*recData = b
		}
		return uint64(len(b)), nil
	case vsys.SysWrite:
		b, err := rt.mem.ReadBytes(arg(1), int(arg(2)))
		if err != nil {
			return 0, t.trapf("write from bad buffer %#x", arg(1))
		}
		n, err := o.Write(int64(arg(0)), b)
		if err != nil {
			return 0, t.trapf("write: %v", err)
		}
		return uint64(n), nil
	case vsys.SysLseek:
		p, err := o.Lseek(int64(arg(0)), int64(arg(1)), int64(arg(2)))
		if err != nil {
			return 0, t.trapf("lseek: %v", err)
		}
		return uint64(p), nil
	case vsys.SysSocket:
		fd, err := o.Socket()
		if err != nil {
			return 0, t.trapf("socket: %v", err)
		}
		return uint64(fd), nil
	case vsys.SysMmap:
		// Deterministic mapping through the allocator (§2.2.4): replaying
		// the allocation sequence reproduces the address, so nothing needs
		// recording.
		addr := rt.alloc.Malloc(t.id, int64(arg(0)))
		if addr == 0 {
			return 0, t.trapf("mmap: arena exhausted")
		}
		rt.notifyAlloc(t, addr, int64(arg(0)))
		return addr, nil
	case vsys.SysMunmap:
		if err := rt.alloc.Free(t.id, arg(0)); err != nil {
			return 0, t.trapf("munmap: %v", err)
		}
		rt.notifyFree(t, arg(0))
		return 0, nil
	case vsys.SysFork:
		return uint64(o.Fork()), nil
	case vsys.SysExecve:
		return 0, t.trapf("execve reached the virtual OS (not supported beyond epoch semantics)")
	case vsys.SysFcntl:
		switch int64(arg(1)) {
		case vsys.FGetOwn:
			return uint64(o.Pid()), nil
		case vsys.FDupFD:
			fd, err := o.DupFD(int64(arg(0)))
			if err != nil {
				return 0, t.trapf("fcntl dupfd: %v", err)
			}
			return uint64(fd), nil
		}
		return 0, t.trapf("fcntl: unknown command %d", arg(1))
	}
	return 0, t.trapf("unknown syscall %d", num)
}

// deferOp queues a deferrable syscall for the next epoch boundary. The queue
// is cleared on rollback (it is rebuilt by the replay) and drained during
// epoch-begin housekeeping (§3.1).
func (rt *Runtime) deferOp(num int64, args []uint64) {
	op := deferredOp{num: num}
	for i := 0; i < len(op.args) && i < len(args); i++ {
		op.args[i] = args[i]
	}
	rt.deferredMu.Lock()
	rt.deferred = append(rt.deferred, op)
	rt.deferredMu.Unlock()
}

// drainDeferred issues every postponed operation (epoch-begin housekeeping).
func (rt *Runtime) drainDeferred() {
	rt.deferredMu.Lock()
	ops := rt.deferred
	rt.deferred = nil
	rt.deferredMu.Unlock()
	for _, op := range ops {
		switch op.num {
		case vsys.SysClose:
			// A close queued twice (recorded, then re-queued by its replay)
			// must only execute once; ignore the second failure.
			_ = rt.os.Close(int64(op.args[0]))
		case vsys.SysMunmap:
			_ = rt.alloc.Free(0, op.args[0])
		}
	}
}

// clearDeferred discards queued operations during rollback: the aborted
// execution's deferrals are re-created by the replay.
func (rt *Runtime) clearDeferred() {
	rt.deferredMu.Lock()
	rt.deferred = nil
	rt.deferredMu.Unlock()
}

// readString copies a NUL-free string of length n from VM memory.
func (rt *Runtime) readString(addr uint64, n int) (string, error) {
	if n < 0 || n > 4096 {
		return "", fmt.Errorf("core: unreasonable string length %d", n)
	}
	b, err := rt.mem.ReadBytes(addr, n)
	if err != nil {
		return "", fmt.Errorf("core: string at unmapped address %#x", addr)
	}
	return string(b), nil
}
