package core

import (
	"sync"
	"testing"

	"repro/internal/interp"
	"repro/internal/record"
)

// seqObserver records every callback as a compact event for ordering
// assertions. It implements all observer capabilities.
type seqObserver struct {
	mu     sync.Mutex
	syncs  []obsSync
	life   []obsLife
	allocs int
	frees  int
	calls  int
	resets int
	access int
}

type obsSync struct {
	tid  int32
	op   SyncOp
	addr uint64
}

type obsLife struct {
	kind string // "create", "exit", "join"
	a, b int32
}

func (o *seqObserver) OnSync(tid int32, op SyncOp, addr uint64) {
	o.mu.Lock()
	o.syncs = append(o.syncs, obsSync{tid, op, addr})
	o.mu.Unlock()
}
func (o *seqObserver) OnThreadCreate(parent, child int32) {
	o.mu.Lock()
	o.life = append(o.life, obsLife{"create", parent, child})
	o.mu.Unlock()
}
func (o *seqObserver) OnThreadExit(tid int32) {
	o.mu.Lock()
	o.life = append(o.life, obsLife{"exit", tid, -1})
	o.mu.Unlock()
}
func (o *seqObserver) OnThreadJoin(joiner, joinee int32) {
	o.mu.Lock()
	o.life = append(o.life, obsLife{"join", joiner, joinee})
	o.mu.Unlock()
}
func (o *seqObserver) OnAlloc(tid int32, addr uint64, size int64, stack []interp.StackEntry) {
	o.mu.Lock()
	o.allocs++
	o.mu.Unlock()
}
func (o *seqObserver) OnFree(tid int32, addr uint64, stack []interp.StackEntry) {
	o.mu.Lock()
	o.frees++
	o.mu.Unlock()
}
func (o *seqObserver) OnSyscall(tid int32, num int64, ret uint64) {
	o.mu.Lock()
	o.calls++
	o.mu.Unlock()
}
func (o *seqObserver) OnAccess(tid int32, addr uint64, size int, write, atomic bool,
	stack func() []interp.StackEntry) {
	o.mu.Lock()
	o.access++
	o.mu.Unlock()
}
func (o *seqObserver) OnReset() {
	o.mu.Lock()
	o.resets++
	o.mu.Unlock()
}

// checkSyncStream asserts per-variable sanity: acquisitions and releases of
// each mutex alternate, starting with an acquisition, each release by the
// thread holding the lock.
func checkSyncStream(t *testing.T, syncs []obsSync) {
	t.Helper()
	type lockState struct {
		held   bool
		holder int32
	}
	locks := map[uint64]*lockState{}
	for i, e := range syncs {
		if e.addr == createVarAddr || e.addr == superVarAddr {
			t.Fatalf("sync event %d leaked a runtime pseudo-variable: %+v", i, e)
		}
		switch e.op {
		case SyncAcquire:
			st := locks[e.addr]
			if st == nil {
				st = &lockState{}
				locks[e.addr] = st
			}
			if st.held {
				t.Fatalf("event %d: %#x acquired while held by %d: %+v", i, e.addr, st.holder, e)
			}
			st.held, st.holder = true, e.tid
		case SyncRelease:
			st := locks[e.addr]
			if st == nil || !st.held || st.holder != e.tid {
				t.Fatalf("event %d: release of %#x without matching acquire: %+v", i, e.addr, e)
			}
			st.held = false
		}
	}
}

// checkLifeStream asserts creation precedes exit precedes join per thread.
func checkLifeStream(t *testing.T, life []obsLife) {
	t.Helper()
	created := map[int32]bool{0: true}
	exited := map[int32]bool{}
	for i, e := range life {
		switch e.kind {
		case "create":
			if created[e.b] {
				t.Fatalf("event %d: thread %d created twice", i, e.b)
			}
			created[e.b] = true
		case "exit":
			if !created[e.a] {
				t.Fatalf("event %d: thread %d exited before creation", i, e.a)
			}
			exited[e.a] = true
		case "join":
			if !exited[e.b] {
				t.Fatalf("event %d: thread %d joined before its exit was observed", i, e.b)
			}
		}
	}
}

// TestObserverStreamRecording: the observer surface during an in-situ
// recording delivers a coherent stream.
func TestObserverStreamRecording(t *testing.T) {
	mod := buildCounter(3, 20)
	obs := &seqObserver{}
	rt, err := New(mod, Options{Seed: 3, Observers: []Observer{obs}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if len(obs.syncs) == 0 || obs.access == 0 {
		t.Fatalf("observer saw nothing: %d syncs, %d accesses", len(obs.syncs), obs.access)
	}
	checkSyncStream(t, obs.syncs)
	checkLifeStream(t, obs.life)
}

// TestObserverStreamOfflineReplay: the same program's stored trace,
// replayed offline with an observer attached via AttachObserver (the
// retrofit path — PrepareReplay pre-creates every thread), delivers the
// same per-variable sync counts as the recording observer saw.
func TestObserverStreamOfflineReplay(t *testing.T) {
	mod := buildCounter(3, 20)
	var epochs []*record.EpochLog
	recObs := &seqObserver{}
	rt, err := New(mod, Options{
		Seed:      3,
		Observers: []Observer{recObs},
		TraceSink: func(ep *record.EpochLog) error { epochs = append(epochs, ep); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}

	obs := &seqObserver{}
	rrt, err := PrepareReplay(mod, epochs, Options{DelayOnDivergence: true})
	if err != nil {
		t.Fatal(err)
	}
	rrt.AttachObserver(obs)
	if _, err := rrt.RunReplay(); err != nil {
		t.Fatal(err)
	}
	checkSyncStream(t, obs.syncs)
	checkLifeStream(t, obs.life)

	count := func(events []obsSync, op SyncOp) map[uint64]int {
		out := map[uint64]int{}
		for _, e := range events {
			if e.op == op {
				out[e.addr]++
			}
		}
		return out
	}
	// Identical replay must deliver identical per-variable acquisition
	// counts (obs.resets counts abandoned attempts; a diverged attempt's
	// partial stream is discarded, so compare only if no retry happened —
	// with retries the final attempt still ends matched, but our counters
	// accumulate, hence the guard).
	if obs.resets == 0 {
		rec := count(recObs.syncs, SyncAcquire)
		rep := count(obs.syncs, SyncAcquire)
		if len(rec) != len(rep) {
			t.Fatalf("replay touched %d mutexes, recording %d", len(rep), len(rec))
		}
		for addr, n := range rec {
			if rep[addr] != n {
				t.Errorf("mutex %#x: %d replayed acquisitions, %d recorded", addr, rep[addr], n)
			}
		}
		if obs.access != recObs.access {
			t.Errorf("replay delivered %d accesses, recording %d", obs.access, recObs.access)
		}
		if obs.allocs != recObs.allocs || obs.frees != recObs.frees {
			t.Errorf("replay delivered %d/%d alloc/free, recording %d/%d",
				obs.allocs, obs.frees, recObs.allocs, recObs.frees)
		}
	}
}
