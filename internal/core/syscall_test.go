package core

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/tir"
	"repro/internal/vsys"
)

// emitString writes a constant string into a global and returns (addrReg,
// lenReg) registers holding its address and length.
func emitString(mb *tir.ModuleBuilder, fb *tir.FuncBuilder, name, s string) (tir.Reg, tir.Reg) {
	gi := mb.GlobalInit(name, int64(len(s)+8), []byte(s))
	a, n := fb.NewReg(), fb.NewReg()
	fb.GlobalAddr(a, gi)
	fb.ConstI(n, int64(len(s)))
	return a, n
}

// buildFileProgram opens a file, reads it in chunks into the heap, writes a
// transformed copy, and returns a checksum of the bytes read.
func buildFileProgram() *tir.Module {
	mb := tir.NewModuleBuilder()
	gBuf := mb.Global("buf", 256)

	m := mb.Func("main", 0)
	pa, pl := emitString(mb, m, "path", "input.dat")
	fd, n, buf, sum, i, cond, v := m.NewReg(), m.NewReg(), m.NewReg(), m.NewReg(), m.NewReg(), m.NewReg(), m.NewReg()
	sz := m.NewReg()
	m.Syscall(fd, vsys.SysOpen, pa, pl)
	m.GlobalAddr(buf, gBuf)
	m.ConstI(sum, 0)
	m.ConstI(sz, 64)
	loop, done := m.NewLabel(), m.NewLabel()
	m.Bind(loop)
	m.Syscall(n, vsys.SysRead, fd, buf, sz)
	m.Brz(n, done)
	// checksum the chunk
	m.ConstI(i, 0)
	inner, innerDone := m.NewLabel(), m.NewLabel()
	m.Bind(inner)
	m.Bin(tir.LtS, cond, i, n)
	m.Brz(cond, innerDone)
	addr := m.NewReg()
	m.Bin(tir.Add, addr, buf, i)
	m.Load8(v, addr, 0)
	m.Bin(tir.Add, sum, sum, v)
	m.AddI(i, i, 1)
	m.Jmp(inner)
	m.Bind(innerDone)
	m.Jmp(loop)
	m.Bind(done)
	m.Syscall(-1, vsys.SysClose, fd)
	m.Ret(sum)
	m.Seal()
	mb.SetEntry("main")
	return mb.MustBuild()
}

func runWithFile(t *testing.T, opts Options) (*Runtime, *Report) {
	t.Helper()
	rt, err := New(buildFileProgram(), opts)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 200)
	for i := range data {
		data[i] = byte(i * 7)
	}
	rt.OS().AddFile("input.dat", data)
	rep, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rt, rep
}

func TestFileReadChecksum(t *testing.T) {
	want := uint64(0)
	for i := 0; i < 200; i++ {
		want += uint64(byte(i * 7))
	}
	_, rep := runWithFile(t, Options{})
	if rep.Exit != want {
		t.Fatalf("checksum = %d, want %d", rep.Exit, want)
	}
}

func TestRevocableFileReplayIsIdentical(t *testing.T) {
	var img1, img2 []byte
	opts := Options{
		OnEpochEnd: func(rt *Runtime, info EpochEndInfo) Decision {
			if info.Reason == StopProgramEnd && img1 == nil {
				img1 = rt.Mem().HeapImage()
				return Replay
			}
			return Proceed
		},
		OnReplayMatched: func(rt *Runtime, attempts int) Decision {
			img2 = rt.Mem().HeapImage()
			return Proceed
		},
	}
	_, rep := runWithFile(t, opts)
	if img1 == nil || img2 == nil {
		t.Fatal("replay did not run")
	}
	if d := mem.DiffBytes(img1, img2); d != 0 {
		t.Fatalf("file reads not reproduced: %d heap bytes differ", d)
	}
	_ = rep
}

// TestDeferredCloseKeepsDescriptorUnavailable: a close inside an epoch is
// deferred, so a subsequent open in the same epoch must NOT reuse the
// descriptor (the §2.2.3 identity hazard); after the epoch boundary the
// deferred close executes.
func TestDeferredCloseKeepsDescriptorUnavailable(t *testing.T) {
	mb := tir.NewModuleBuilder()
	m := mb.Func("main", 0)
	pa, pl := emitString(mb, m, "p1", "a.dat")
	pb, p2 := emitString(mb, m, "p2", "b.dat")
	fd1, fd2, eq := m.NewReg(), m.NewReg(), m.NewReg()
	m.Syscall(fd1, vsys.SysOpen, pa, pl)
	m.Syscall(-1, vsys.SysClose, fd1)
	m.Syscall(fd2, vsys.SysOpen, pb, p2)
	m.Bin(tir.Eq, eq, fd1, fd2)
	m.Ret(eq) // 1 would mean the descriptor was reused: a bug
	m.Seal()
	mb.SetEntry("main")
	rt, err := New(mb.MustBuild(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exit != 0 {
		t.Fatal("deferred close must prevent descriptor reuse within the epoch")
	}
	// The deferred close ran at program end handling? It runs at the next
	// epoch begin; at program end the epoch never reopens, matching the
	// paper (the process exits anyway).
}

// TestIrrevocableLseekClosesEpoch: a repositioning lseek must close the
// epoch, execute at the start of the next one, and still produce correct
// reads — including across a replay of that next epoch.
func TestIrrevocableLseekClosesEpoch(t *testing.T) {
	mb := tir.NewModuleBuilder()
	m := mb.Func("main", 0)
	pa, pl := emitString(mb, m, "p", "f.dat")
	gBuf := mb.Global("buf", 16)
	fd, buf, n, v, whence, off := m.NewReg(), m.NewReg(), m.NewReg(), m.NewReg(), m.NewReg(), m.NewReg()
	m.Syscall(fd, vsys.SysOpen, pa, pl)
	m.GlobalAddr(buf, gBuf)
	one := m.NewReg()
	m.ConstI(one, 1)
	// read first byte, lseek to 5, read again
	m.Syscall(n, vsys.SysRead, fd, buf, one)
	m.Load8(v, buf, 0)
	m.ConstI(off, 5)
	m.ConstI(whence, 0) // SEEK_SET
	m.Syscall(-1, vsys.SysLseek, fd, off, whence)
	m.Syscall(n, vsys.SysRead, fd, buf, one)
	w := m.NewReg()
	m.Load8(w, buf, 0)
	sh := m.NewReg()
	m.ConstI(sh, 8)
	m.Bin(tir.Shl, w, w, sh)
	m.Bin(tir.Or, v, v, w)
	m.Ret(v)
	m.Seal()
	mb.SetEntry("main")

	replayed := false
	opts := Options{
		OnEpochEnd: func(rt *Runtime, info EpochEndInfo) Decision {
			if info.Reason == StopProgramEnd && !replayed {
				replayed = true
				return Replay
			}
			return Proceed
		},
	}
	rt, err := New(mb.MustBuild(), opts)
	if err != nil {
		t.Fatal(err)
	}
	rt.OS().AddFile("f.dat", []byte{10, 11, 12, 13, 14, 15, 16})
	rep, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(10) | uint64(15)<<8
	if rep.Exit != want {
		t.Fatalf("reads = %#x, want %#x", rep.Exit, want)
	}
	if rep.Stats.Epochs < 2 {
		t.Fatalf("lseek must close the epoch: epochs = %d", rep.Stats.Epochs)
	}
	if rep.Stats.MatchedReplays < 1 {
		t.Fatalf("final epoch replay did not match: %+v", rep.Stats)
	}
}

// TestForkIsIrrevocableAndRecorded: fork closes the epoch; a replay of the
// following epoch returns the recorded pid without re-forking.
func TestForkIsIrrevocableAndRecorded(t *testing.T) {
	mb := tir.NewModuleBuilder()
	m := mb.Func("main", 0)
	pid1, pid2, eq := m.NewReg(), m.NewReg(), m.NewReg()
	m.Syscall(pid1, vsys.SysFork)
	m.Mov(pid2, pid1)
	m.Bin(tir.Eq, eq, pid1, pid2)
	m.Ret(eq)
	m.Seal()
	mb.SetEntry("main")
	replayed := false
	opts := Options{
		OnEpochEnd: func(rt *Runtime, info EpochEndInfo) Decision {
			if info.Reason == StopProgramEnd && !replayed {
				replayed = true
				return Replay
			}
			return Proceed
		},
	}
	rt, err := New(mb.MustBuild(), opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exit != 1 {
		t.Fatalf("exit = %d", rep.Exit)
	}
	if rep.Stats.Epochs < 2 {
		t.Fatalf("fork must close the epoch: epochs = %d", rep.Stats.Epochs)
	}
}

// TestSocketReadsAreRecorded: socket data is external nondeterminism; the
// replayed heap image must match even though the stream cannot be re-read.
func TestSocketReadsAreRecorded(t *testing.T) {
	mb := tir.NewModuleBuilder()
	gBuf := mb.Global("buf", 128)
	m := mb.Func("main", 0)
	fd, buf, n, sz := m.NewReg(), m.NewReg(), m.NewReg(), m.NewReg()
	m.Syscall(fd, vsys.SysSocket)
	m.GlobalAddr(buf, gBuf)
	m.ConstI(sz, 64)
	m.Syscall(n, vsys.SysRead, fd, buf, sz)
	m.Ret(n)
	m.Seal()
	mb.SetEntry("main")
	var img1, img2 []byte
	opts := Options{
		OnEpochEnd: func(rt *Runtime, info EpochEndInfo) Decision {
			if info.Reason == StopProgramEnd && img1 == nil {
				img1 = rt.Mem().HeapImage()
				return Replay
			}
			return Proceed
		},
		OnReplayMatched: func(rt *Runtime, attempts int) Decision {
			img2 = rt.Mem().HeapImage()
			return Proceed
		},
	}
	rt, err := New(mb.MustBuild(), opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exit != 64 {
		t.Fatalf("read = %d bytes", rep.Exit)
	}
	if d := mem.DiffBytes(img1, img2); d != 0 {
		t.Fatalf("socket payload not replayed from the log: %d bytes differ", d)
	}
}

// TestGetpidRepeatable: getpid needs no recording in-situ — same process,
// same pid, also during replay.
func TestGetpidRepeatable(t *testing.T) {
	mb := tir.NewModuleBuilder()
	m := mb.Func("main", 0)
	p1 := m.NewReg()
	m.Syscall(p1, vsys.SysGetpid)
	m.Ret(p1)
	m.Seal()
	mb.SetEntry("main")
	replayed := false
	var exits []uint64
	opts := Options{
		OnEpochEnd: func(rt *Runtime, info EpochEndInfo) Decision {
			if !replayed {
				replayed = true
				return Replay
			}
			return Proceed
		},
	}
	rt, err := New(mb.MustBuild(), opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	exits = append(exits, rep.Exit)
	if rep.Exit == 0 {
		t.Fatalf("pid = %d", rep.Exit)
	}
	_ = exits
}

// TestFaultEndsEpochWithEvidence: a null dereference surfaces as StopFault
// with the trap attached, and the program terminates with the error.
func TestFaultEndsEpochWithEvidence(t *testing.T) {
	mb := tir.NewModuleBuilder()
	m := mb.Func("main", 0)
	z, v := m.NewReg(), m.NewReg()
	m.ConstI(z, 0)
	m.Load64(v, z, 0) // null dereference
	m.Ret(v)
	m.Seal()
	mb.SetEntry("main")
	var sawFault bool
	opts := Options{
		OnEpochEnd: func(rt *Runtime, info EpochEndInfo) Decision {
			if info.Reason == StopFault && info.Fault != nil {
				sawFault = true
			}
			return Proceed
		},
	}
	rt, err := New(mb.MustBuild(), opts)
	if err != nil {
		t.Fatal(err)
	}
	_, err = rt.Run()
	if err == nil {
		t.Fatal("fault must surface as a program error")
	}
	if !sawFault {
		t.Fatal("OnEpochEnd must observe StopFault with evidence")
	}
}

// TestFaultReproducesUnderReplay: replaying a faulting epoch reaches the
// same fault (the §4.3 debugging workflow).
func TestFaultReproducesUnderReplay(t *testing.T) {
	mb := tir.NewModuleBuilder()
	gM := mb.Global("m", 8)
	m := mb.Func("main", 0)
	ma, z, v := m.NewReg(), m.NewReg(), m.NewReg()
	m.GlobalAddr(ma, gM)
	m.Intrin(-1, tir.IntrinMutexLock, ma)
	m.Intrin(-1, tir.IntrinMutexUnlock, ma)
	m.ConstI(z, 0)
	m.Load64(v, z, 0)
	m.Ret(v)
	m.Seal()
	mb.SetEntry("main")
	matched := 0
	opts := Options{
		OnEpochEnd: func(rt *Runtime, info EpochEndInfo) Decision {
			if info.Reason == StopFault && matched == 0 {
				return Replay
			}
			return Proceed
		},
		OnReplayMatched: func(rt *Runtime, attempts int) Decision {
			matched++
			return Proceed
		},
	}
	rt, err := New(mb.MustBuild(), opts)
	if err != nil {
		t.Fatal(err)
	}
	_, err = rt.Run()
	if err == nil {
		t.Fatal("program error expected")
	}
	if matched != 1 {
		t.Fatalf("fault replay matched %d times, want 1", matched)
	}
	tid, ferr := rt.FaultedThread()
	if tid != 0 || ferr == nil {
		t.Fatalf("faulted thread = %d, %v", tid, ferr)
	}
}
