package core

import (
	"fmt"
	"sync"

	"repro/internal/hostrace"
	"repro/internal/interp"
	"repro/internal/record"
)

// Pseudo-variable addresses for runtime-internal recorded locks: thread
// creation (§3.2.1: creations are serialized by a global mutex and their
// order recorded) and super-heap block fetches (§2.2.4). They live outside
// every memory segment so they can never collide with application
// synchronization objects.
const (
	createVarAddr uint64 = 1
	superVarAddr  uint64 = 2
)

// syncVar is the shadow synchronization object (§3.2). The application's
// synchronization variable is just bytes in VM memory; on first use the
// runtime allocates this shadow from its own (Go) heap — isolated from
// application memory — and stores the shadow's index in the first word of
// the variable, the paper's level of indirection that avoids a global hash
// table on the hot path.
type syncVar struct {
	id   int32
	addr uint64

	mu      sync.Mutex
	changed bcast // mutex release / cond fuel / barrier generation
	turnCh  bcast // replay turn advance

	// order is the per-variable list of Figure 4.
	order *record.VarList

	// Mutex state.
	locked bool
	holder int32

	// Condition-variable state: fuel is the number of undelivered wakeups
	// (signal adds one, broadcast tops up to the waiter count); the order in
	// which waiters consume fuel is the recorded wake-up order.
	waiters int
	fuel    int

	// Barrier state (reimplemented over mutex+cond machinery so waiters can
	// be observed and interrupted, §3.2.1).
	parties int64
	arrived int64
	gen     int64
}

// varCkpt is the portion of shadow state captured at epoch begin and
// restored on rollback: everything a waiting thread's re-entry depends on.
type varCkpt struct {
	locked  bool
	holder  int32
	waiters int
	fuel    int
	parties int64
	arrived int64
	gen     int64
}

func (s *syncVar) checkpoint() varCkpt {
	s.mu.Lock()
	defer s.mu.Unlock()
	return varCkpt{locked: s.locked, holder: s.holder, waiters: s.waiters,
		fuel: s.fuel, parties: s.parties, arrived: s.arrived, gen: s.gen}
}

func (s *syncVar) restore(c varCkpt) {
	s.mu.Lock()
	s.locked, s.holder, s.waiters = c.locked, c.holder, c.waiters
	s.fuel, s.parties, s.arrived, s.gen = c.fuel, c.parties, c.arrived, c.gen
	s.order.ResetReplay()
	s.mu.Unlock()
	s.changed.Broadcast()
	s.turnCh.Broadcast()
}

func (s *syncVar) advanceTurn() {
	s.mu.Lock()
	s.order.AdvanceTurn()
	s.mu.Unlock()
	s.turnCh.Broadcast()
}

// loadVarWord / storeVarWord access the shadow-index cache word inside the
// variable. The plain fast path may race with a concurrent first-use
// rewrite by another thread — harmless by design, varFor validates whatever
// it reads — but under the host race detector the access is routed through
// the serialized atomic path so the runtime's own accesses stay clean.
func (rt *Runtime) loadVarWord(addr uint64) (uint64, error) {
	if hostrace.Enabled {
		return rt.mem.AtomicLoad64(addr)
	}
	return rt.mem.Load64(addr)
}

func (rt *Runtime) storeVarWord(addr uint64, v uint64) {
	if hostrace.Enabled {
		rt.mem.AtomicStore64(addr, v)
		return
	}
	rt.mem.Store64(addr, v)
}

// varFor resolves the shadow object for the synchronization variable at
// addr, creating it on first use. The shadow index is cached in the first
// word of the variable itself; the address-keyed map guarantees that a
// re-execution resolves to the same shadow after rollback restored the
// pre-first-use memory (§3.4: the hash table assisting re-execution).
func (rt *Runtime) varFor(addr uint64) (*syncVar, error) {
	if addr == createVarAddr {
		return rt.createVar, nil
	}
	if addr == superVarAddr {
		return rt.superVar, nil
	}
	if w, err := rt.loadVarWord(addr); err == nil {
		if idx := int64(w) - 1; idx >= 0 && idx < int64(len(rt.shadowList())) {
			s := rt.shadowList()[idx]
			if s.addr == addr {
				return s, nil
			}
		}
	} else {
		return nil, fmt.Errorf("core: synchronization variable at unmapped address %#x", addr)
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if s, ok := rt.shadows[addr]; ok {
		// Known variable whose in-memory index word was rolled back; rewrite
		// the cache word.
		rt.storeVarWord(addr, uint64(s.id)+1)
		return s, nil
	}
	s := rt.newSyncVarLocked(addr)
	rt.storeVarWord(addr, uint64(s.id)+1)
	return s, nil
}

// newSyncVarLocked allocates a shadow; rt.mu must be held. The table is
// republished copy-on-write so concurrent lock-free readers never observe a
// partially updated slice.
func (rt *Runtime) newSyncVarLocked(addr uint64) *syncVar {
	cur := rt.shadowList()
	s := &syncVar{
		id:    int32(len(cur)),
		addr:  addr,
		order: record.NewVarList(rt.opts.VarCap),
	}
	next := make([]*syncVar, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = s
	rt.shadowL.Store(&next)
	if addr != createVarAddr && addr != superVarAddr {
		rt.shadows[addr] = s
	}
	return s
}

// appendVar appends tid to s's per-variable list, requesting an epoch end
// while enough margin remains for every thread to finish its in-flight
// interception (at most two ordered events each).
func (rt *Runtime) appendVar(s *syncVar, tid int32) int32 {
	s.mu.Lock()
	pos, _ := s.order.Append(tid)
	low := s.order.Cap()-s.order.Len() <= 2*rt.opts.Mem.MaxThreads+4
	s.mu.Unlock()
	if low {
		rt.requestStop(StopLogFull, tid)
	}
	return pos
}

// diverge records a replay divergence and unwinds the calling thread: the
// attempted action does not match the recorded event, which can only be
// caused by an unresolved race (§3.5.2); the monitor will immediately start
// another re-execution.
func (t *Thread) diverge(kind record.Kind, varAddr uint64, got *record.Event) error {
	t.rt.noteDivergence(t, kind, varAddr, got)
	// Park through the replay stop, then unwind at rollback.
	if err := t.intercept(); err != nil {
		return err
	}
	return interp.ErrUnwind
}

// waitTurn blocks until pos is the head of s's per-variable replay cursor —
// the §3.5.1 rule: a thread proceeds only when its next per-thread event is
// also the first unconsumed event of the variable's list.
func (t *Thread) waitTurn(s *syncVar, pos int32) error {
	rt := t.rt
	for {
		pch := rt.phaseCh.C()
		switch rt.phase() {
		case phRollback:
			return interp.ErrUnwind
		case phShutdown:
			return errShutdown
		case phReplayStopping, phStopping:
			t.setState(tsStopped)
			<-pch
			t.setState(tsRunning)
			continue
		}
		s.mu.Lock()
		if s.order.Turn() == pos {
			s.mu.Unlock()
			return nil
		}
		ch := s.turnCh.C()
		s.mu.Unlock()
		t.setState(tsBlocked)
		select {
		case <-ch:
		case <-pch:
		}
		t.setState(tsRunning)
	}
}

// acquire takes the underlying mutex, interruptibly (§3.3: threads blocked
// on lock acquisition must still be stoppable; because our waits select on
// the phase channel, the paper's temporary-release trick is unnecessary —
// blocked waiters already count as quiescent and wake on any phase change).
func (t *Thread) acquire(s *syncVar) error {
	rt := t.rt
	for {
		pch := rt.phaseCh.C()
		switch rt.phase() {
		case phRollback:
			return interp.ErrUnwind
		case phShutdown:
			return errShutdown
		}
		s.mu.Lock()
		if !s.locked {
			s.locked = true
			s.holder = t.id
			// Notify under s.mu: acquisition callbacks for one variable are
			// thereby delivered in true acquisition order.
			rt.notifySync(t.id, SyncAcquire, s.addr)
			s.mu.Unlock()
			return nil
		}
		ch := s.changed.C()
		s.mu.Unlock()
		t.setState(tsBlocked)
		select {
		case <-ch:
		case <-pch:
		}
		t.setState(tsRunning)
	}
}

// releaseInternal releases the underlying mutex without recording (mutex
// releases are fixed by program order and need no events).
func (t *Thread) releaseInternal(s *syncVar) error {
	s.mu.Lock()
	if !s.locked || s.holder != t.id {
		s.mu.Unlock()
		return fmt.Errorf("core: thread %d unlocking mutex %#x it does not hold", t.id, s.addr)
	}
	s.locked = false
	s.holder = -1
	// Under s.mu, so the release is observed before any subsequent
	// acquisition of the same variable.
	t.rt.notifySync(t.id, SyncRelease, s.addr)
	s.mu.Unlock()
	s.changed.Broadcast()
	return nil
}

// mutexLock implements the mutex_lock intrinsic (§3.2.1).
func (t *Thread) mutexLock(addr uint64) error {
	if err := t.intercept(); err != nil {
		return err
	}
	s, err := t.rt.varFor(addr)
	if err != nil {
		return err
	}
	return t.lockRecorded(s)
}

// lockRecorded is the shared recorded-acquisition path used by mutex_lock
// and by the reacquisition half of cond_wait.
func (t *Thread) lockRecorded(s *syncVar) error {
	rt := t.rt
	if rt.phaseIs(phReplay) {
		ev, err := t.nextReplayEvent()
		if err != nil {
			return err
		}
		if ev != nil {
			if !record.Matches(ev, record.KMutexLock, s.addr, 0) {
				return t.diverge(record.KMutexLock, s.addr, ev)
			}
			if err := t.waitTurn(s, ev.Pos); err != nil {
				return err
			}
			if err := t.acquire(s); err != nil {
				return err
			}
			t.list.Advance()
			s.advanceTurn()
			return nil
		}
		// nextReplayEvent switched the world back to recording: fall
		// through and record this acquisition in the new epoch.
	}
	if err := t.acquire(s); err != nil {
		return err
	}
	pos := rt.appendVar(s, t.id)
	t.appendEvent(record.Event{Kind: record.KMutexLock, Var: s.addr, Pos: pos})
	return nil
}

// mutexUnlock implements the mutex_unlock intrinsic.
func (t *Thread) mutexUnlock(addr uint64) error {
	if err := t.intercept(); err != nil {
		return err
	}
	s, err := t.rt.varFor(addr)
	if err != nil {
		return err
	}
	if err := t.releaseInternal(s); err != nil && t.rt.phaseIs(phReplay) {
		// An impossible unlock during replay is divergent control flow, not
		// a program bug (§3.5.2).
		return t.diverge(record.KMutexLock, s.addr, nil)
	} else if err != nil {
		return err
	}
	return nil
}

// mutexTryLock implements mutex_trylock: the result is always recorded in
// the per-thread list, but only successful acquisitions enter the
// per-variable list (§3.2.1).
func (t *Thread) mutexTryLock(addr uint64) (uint64, error) {
	if err := t.intercept(); err != nil {
		return 0, err
	}
	rt := t.rt
	s, err := rt.varFor(addr)
	if err != nil {
		return 0, err
	}
	if rt.phaseIs(phReplay) {
		ev, err := t.nextReplayEvent()
		if err != nil {
			return 0, err
		}
		if ev != nil {
			if !record.Matches(ev, record.KMutexTry, s.addr, 0) {
				return 0, t.diverge(record.KMutexTry, s.addr, ev)
			}
			if ev.Ret == 0 {
				// Recorded failure: return it without touching the lock.
				t.list.Advance()
				return 0, nil
			}
			if err := t.waitTurn(s, ev.Pos); err != nil {
				return 0, err
			}
			if err := t.acquire(s); err != nil {
				return 0, err
			}
			t.list.Advance()
			s.advanceTurn()
			return 1, nil
		}
	}
	s.mu.Lock()
	var ret uint64
	pos := int32(-1)
	low := false
	if !s.locked {
		s.locked = true
		s.holder = t.id
		ret = 1
		pos, _ = s.order.Append(t.id)
		low = s.order.Cap()-s.order.Len() <= 2*rt.opts.Mem.MaxThreads+4
		rt.notifySync(t.id, SyncAcquire, s.addr)
	}
	s.mu.Unlock()
	t.appendEvent(record.Event{Kind: record.KMutexTry, Var: s.addr, Ret: ret, Pos: pos})
	if low {
		rt.requestStop(StopLogFull, t.id)
	}
	return ret, nil
}

// condWait implements cond_wait(cond, mutex): a recorded-release of the
// mutex, a wait for wake-up fuel, a recorded wake-up event on the condition
// variable, and a recorded reacquisition of the mutex (§3.2.1).
func (t *Thread) condWait(caddr, maddr uint64) error {
	if err := t.intercept(); err != nil {
		return err
	}
	rt := t.rt
	c, err := rt.varFor(caddr)
	if err != nil {
		return err
	}
	m, err := rt.varFor(maddr)
	if err != nil {
		return err
	}
	// A thread that was already waiting at epoch begin re-enters here after
	// rollback with resumeBlock set: the restored shared state (waiter count,
	// released mutex) already accounts for it, so it skips the entry phase
	// (§3.1: waiting threads are checkpointed in their waiting state).
	skipEntry := t.resumeBlock.kind == bkCondWait && t.resumeBlock.vaddr == caddr
	if skipEntry {
		t.resumeBlock = blockInfo{}
	}

	if rt.phaseIs(phReplay) {
		ev, err := t.nextReplayEvent()
		if err != nil {
			return err
		}
		if ev != nil {
			if !record.Matches(ev, record.KCondWake, c.addr, 0) {
				return t.diverge(record.KCondWake, c.addr, ev)
			}
			if !skipEntry {
				if err := t.releaseInternal(m); err != nil {
					return t.diverge(record.KCondWake, c.addr, nil)
				}
				c.mu.Lock()
				c.waiters++
				c.mu.Unlock()
			}
			t.block = blockInfo{kind: bkCondWait, vaddr: caddr, maddr: maddr}
			if err := t.condConsume(c, ev.Pos); err != nil {
				return err
			}
			t.list.Advance()
			c.advanceTurn()
			t.block = blockInfo{}
			return t.lockRecorded(m)
		}
		// World switched to recording while our list was exhausted: execute
		// a fresh wait below. skipEntry still applies if set.
	}

	if !skipEntry {
		if err := t.releaseInternal(m); err != nil {
			return err
		}
		c.mu.Lock()
		c.waiters++
		c.mu.Unlock()
	}
	t.block = blockInfo{kind: bkCondWait, vaddr: caddr, maddr: maddr}
	if err := t.condConsume(c, -1); err != nil {
		return err
	}
	pos := rt.appendVar(c, t.id)
	t.appendEvent(record.Event{Kind: record.KCondWake, Var: c.addr, Pos: pos})
	t.block = blockInfo{}
	return t.lockRecorded(m)
}

// condConsume waits for one unit of wake-up fuel; during replay (pos >= 0)
// it additionally waits for the recorded wake-up turn, so threads leave the
// condition variable in exactly the recorded order.
func (t *Thread) condConsume(c *syncVar, pos int32) error {
	rt := t.rt
	for {
		pch := rt.phaseCh.C()
		switch rt.phase() {
		case phRollback:
			return interp.ErrUnwind
		case phShutdown:
			return errShutdown
		}
		c.mu.Lock()
		turnOK := pos < 0 || c.order.Turn() == pos
		if turnOK && c.fuel > 0 {
			c.fuel--
			c.waiters--
			rt.notifySync(t.id, SyncWake, c.addr)
			c.mu.Unlock()
			return nil
		}
		ch := c.changed.C()
		tch := c.turnCh.C()
		c.mu.Unlock()
		t.setState(tsBlocked)
		select {
		case <-ch:
		case <-tch:
		case <-pch:
		}
		t.setState(tsRunning)
	}
}

// condSignal implements cond_signal. Signal order itself is not recorded —
// only the wake-up order of waiters is (§3.2.1); with improperly paired
// locking this can yield a non-identical replay, which the divergence search
// plus random delays then resolves (the bodytrack case, §5.2.1).
func (t *Thread) condSignal(addr uint64, broadcast bool) error {
	if err := t.intercept(); err != nil {
		return err
	}
	c, err := t.rt.varFor(addr)
	if err != nil {
		return err
	}
	c.mu.Lock()
	if broadcast {
		c.fuel = c.waiters
	} else if c.fuel < c.waiters {
		c.fuel++
	}
	// A signal publishes the signaller's prior work to whichever waiter
	// consumes the fuel; notify under c.mu so it precedes that wake.
	t.rt.notifySync(t.id, SyncSignal, c.addr)
	c.mu.Unlock()
	c.changed.Broadcast()
	return nil
}

// barrierInit implements barrier_init (§3.2.1: barriers are re-implemented
// over mutex+cond machinery so waiters can be woken for epoch operations).
func (t *Thread) barrierInit(addr uint64, parties uint64) error {
	if err := t.intercept(); err != nil {
		return err
	}
	if parties == 0 {
		return fmt.Errorf("core: barrier_init with zero parties")
	}
	s, err := t.rt.varFor(addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.parties = int64(parties)
	s.arrived = 0
	s.gen = 0
	s.mu.Unlock()
	return nil
}

// barrierWait implements barrier_wait. Entry order is not recorded (a
// waiting thread cannot change state); only the return value is, because
// applications rely on the serial-thread flag (§3.2.1).
func (t *Thread) barrierWait(addr uint64) (uint64, error) {
	if err := t.intercept(); err != nil {
		return 0, err
	}
	rt := t.rt
	s, err := rt.varFor(addr)
	if err != nil {
		return 0, err
	}
	skipEntry := t.resumeBlock.kind == bkBarrier && t.resumeBlock.vaddr == addr
	if skipEntry {
		t.resumeBlock = blockInfo{}
	}

	var recorded *record.Event
	if rt.phaseIs(phReplay) {
		ev, err := t.nextReplayEvent()
		if err != nil {
			return 0, err
		}
		if ev != nil {
			if !record.Matches(ev, record.KBarrier, s.addr, 0) {
				return 0, t.diverge(record.KBarrier, s.addr, ev)
			}
			recorded = ev
		}
	}

	s.mu.Lock()
	if s.parties == 0 {
		s.mu.Unlock()
		return 0, fmt.Errorf("core: wait on uninitialized barrier %#x", addr)
	}
	myGen := s.gen
	released := false
	serial := uint64(0)
	if !skipEntry {
		s.arrived++
	}
	// Arrival publishes the thread's pre-barrier work; under s.mu, so every
	// arrival of a generation is observed before its release.
	rt.notifySync(t.id, SyncBarrierArrive, s.addr)
	if s.arrived == s.parties {
		s.arrived = 0
		s.gen++
		serial = 1
		released = true
		// Release and the serial thread's departure stay in the same
		// critical section as its arrival: observers see arrivals* →
		// release → departures, with no later-generation arrival in
		// between.
		rt.notifySync(t.id, SyncBarrierRelease, s.addr)
		rt.notifySync(t.id, SyncBarrierDepart, s.addr)
	}
	s.mu.Unlock()
	if released {
		s.changed.Broadcast()
	} else {
		t.block = blockInfo{kind: bkBarrier, vaddr: addr}
		if err := t.barrierSleep(s, myGen); err != nil {
			return 0, err
		}
		t.block = blockInfo{}
	}

	if recorded != nil {
		t.list.Advance()
		return recorded.Ret, nil
	}
	t.appendEvent(record.Event{Kind: record.KBarrier, Var: s.addr, Ret: serial, Pos: -1})
	return serial, nil
}

func (t *Thread) barrierSleep(s *syncVar, myGen int64) error {
	rt := t.rt
	for {
		pch := rt.phaseCh.C()
		switch rt.phase() {
		case phRollback:
			return interp.ErrUnwind
		case phShutdown:
			return errShutdown
		}
		s.mu.Lock()
		if s.gen != myGen {
			// Departure is observed under s.mu: sync callbacks for one
			// variable are serialized in their true order.
			rt.notifySync(t.id, SyncBarrierDepart, s.addr)
			s.mu.Unlock()
			return nil
		}
		ch := s.changed.C()
		s.mu.Unlock()
		t.setState(tsBlocked)
		select {
		case <-ch:
		case <-pch:
		}
		t.setState(tsRunning)
	}
}

// threadCreate implements thread_create. Creations are serialized under a
// global lock and ordered on the creation pseudo-variable, which makes
// thread IDs, stack slots, and heap assignment deterministic (§2.2.4,
// §3.5.1). During replay the recorded event releases the kept-alive child
// instead of spawning a new goroutine.
func (t *Thread) threadCreate(fn int64, arg uint64) (uint64, error) {
	if err := t.intercept(); err != nil {
		return 0, err
	}
	rt := t.rt
	cv := rt.createVar
	if fn < 0 || fn >= int64(len(rt.mod.Funcs)) {
		return 0, fmt.Errorf("core: thread_create of invalid function %d", fn)
	}
	if rt.phaseIs(phReplay) {
		ev, err := t.nextReplayEvent()
		if err != nil {
			return 0, err
		}
		if ev != nil {
			if !record.Matches(ev, record.KCreate, cv.addr, 0) {
				return 0, t.diverge(record.KCreate, cv.addr, ev)
			}
			if err := t.waitTurn(cv, ev.Pos); err != nil {
				return 0, err
			}
			child := rt.thread(int32(ev.Aux))
			if child == nil || child.entryFn != int(fn) {
				return 0, t.diverge(record.KCreate, cv.addr, ev)
			}
			// The child goroutine is alive in embryo state; release it to
			// run its body from the start (§3.5.1: actual creation skipped,
			// same ID and stack guaranteed). Mark it running before the
			// hand-off: a child with an unprocessed start message must not
			// look quiescent, or a stop/rollback racing the release could
			// restore state while the child starts executing against it.
			child.entryArg = arg
			// Before the hand-off, so the creation is observed before any of
			// the child's own callbacks.
			rt.notifyThreadCreate(t.id, child.id)
			child.setState(tsRunning)
			child.startCh <- startMsg{kind: smStart}
			t.list.Advance()
			cv.advanceTurn()
			return uint64(child.id), nil
		}
	}
	rt.createMu.Lock()
	child, err := rt.newThread(int(fn), arg, true)
	if err != nil {
		rt.createMu.Unlock()
		return 0, err
	}
	pos := rt.appendVar(cv, t.id)
	rt.createMu.Unlock()
	t.appendEvent(record.Event{Kind: record.KCreate, Var: cv.addr, Aux: int64(child.id), Pos: pos})
	rt.notifyThreadCreate(t.id, child.id)
	go child.trampoline()
	// Running-before-release, as in the replay arm: quiescence must not be
	// observable between the hand-off and the child's first instruction.
	child.setState(tsRunning)
	child.startCh <- startMsg{kind: smStart}
	return uint64(child.id), nil
}

// threadJoin implements thread_join: the joiner waits for the joinee's exit
// and the join completion is recorded for divergence checking. The joinee
// remains alive until the next epoch boundary (§3.2.1).
func (t *Thread) threadJoin(tid uint64) (uint64, error) {
	if err := t.intercept(); err != nil {
		return 0, err
	}
	rt := t.rt
	child := rt.thread(int32(tid))
	if child == nil || child == t {
		return 0, fmt.Errorf("core: join of invalid thread %d", tid)
	}
	if rt.phaseIs(phReplay) {
		ev, err := t.nextReplayEvent()
		if err != nil {
			return 0, err
		}
		if ev != nil {
			if !record.Matches(ev, record.KJoin, 0, 0) || ev.Aux != int64(tid) {
				return 0, t.diverge(record.KJoin, 0, ev)
			}
			if err := t.waitExit(child); err != nil {
				return 0, err
			}
			child.joined = true
			t.list.Advance()
			rt.notifyThreadJoin(t.id, child.id)
			return child.exitVal, nil
		}
	}
	if child.joined {
		return 0, fmt.Errorf("core: double join of thread %d", tid)
	}
	if err := t.waitExit(child); err != nil {
		return 0, err
	}
	child.joined = true
	t.appendEvent(record.Event{Kind: record.KJoin, Aux: int64(tid), Ret: child.exitVal, Pos: -1})
	rt.notifyThreadJoin(t.id, child.id)
	return child.exitVal, nil
}

func (t *Thread) waitExit(child *Thread) error {
	rt := t.rt
	for {
		pch := rt.phaseCh.C()
		switch rt.phase() {
		case phRollback:
			return interp.ErrUnwind
		case phShutdown:
			return errShutdown
		}
		ech := child.exitWake.C()
		if child.state.Load() == tsExited {
			return nil
		}
		t.setState(tsBlocked)
		select {
		case <-ech:
		case <-pch:
		}
		t.setState(tsRunning)
	}
}
