package core

// Persistable epoch checkpoints and mid-trace replay resume.
//
// The runtime already takes a full checkpoint at every epoch boundary
// (takeCheckpoint, §3.1): the memory snapshot, allocator metadata, file
// positions, every thread's CPU context and blocking situation, and shadow
// synchronization state. In-situ those checkpoints exist only to bound
// rollback to one epoch (§3.4); offline replay (replay.go) discarded them
// and re-executed from program start, which made replay latency — and the
// cost of a single divergence retry — proportional to the whole trace.
//
// This file exports the checkpoint so the trace layer can persist it
// (Options.CheckpointEvery / Options.CheckpointSink, trace format v2), and
// implements the inverse: PrepareReplayAt rebuilds a runtime *mid-trace*
// from a persisted checkpoint, so one long trace becomes independently
// replayable segments whose divergence retries roll back to the segment
// start — the paper's in-situ replay bound, recovered offline. A segment's
// end is pinned by the next checkpoint's per-thread instruction counts
// (interp.CPU.SetBoundary): each thread stops exactly where the recording's
// boundary caught it, which is what makes the segment's final memory image
// byte-comparable against the next checkpoint (the stitching check).

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/mem"
	"repro/internal/record"
	"repro/internal/tir"
	"repro/internal/vsys"
)

// BlockState mirrors a thread's position inside a blocking primitive
// (blockInfo) in exported, encode-stable form.
type BlockState struct {
	// Kind: 0 none, 1 condition-variable wait, 2 barrier.
	Kind  int32
	VAddr uint64
	MAddr uint64
}

// ThreadState is one thread's checkpointed execution state.
type ThreadState struct {
	TID     int32
	EntryFn int32
	Exited  bool
	Joined  bool
	ExitVal uint64
	Block   BlockState
	// Ctx is the thread's CPU context, nil when Exited. Treat as immutable:
	// checkpoints are shared across concurrent segment replays.
	Ctx *interp.Context
}

// VarState is one shadow synchronization variable's checkpointed state, in
// shadow-creation order so a resuming runtime reproduces the recording's
// shadow IDs (the index words cached inside VM memory embed them).
type VarState struct {
	Addr    uint64
	Locked  bool
	Holder  int32
	Waiters int
	Fuel    int
	Parties int64
	Arrived int64
	Gen     int64
}

// Checkpoint is a fully exported epoch-boundary checkpoint: everything a
// fresh process needs to resume replaying the trace at Epoch. Instances
// handed to Options.CheckpointSink — and those a trace reader reconstructs —
// are immutable; concurrent segment replays share them.
type Checkpoint struct {
	// Epoch is the 1-based epoch this checkpoint begins: a replay seeded from
	// it re-executes epochs Epoch..j.
	Epoch int64
	// NextTID is the runtime's thread-ID watermark; IDs below it without a
	// ThreadState were reclaimed before the boundary.
	NextTID int32
	// OutputLen is the cumulative program output length at the boundary,
	// letting segment stitching attribute output to segments.
	OutputLen int
	// Snap is the writable address space image.
	Snap *mem.Snapshot
	// Alloc is the allocator metadata snapshot.
	Alloc heap.AllocSnapshot
	// FS is the virtual filesystem state (file contents + open descriptors).
	FS *vsys.State
	// Threads holds every non-reclaimed thread, ascending TID.
	Threads []ThreadState
	// Vars holds every shadow variable in creation order; entries 0 and 1 are
	// the thread-creation and super-heap pseudo-variables.
	Vars []VarState
}

// captureCheckpoint exports the in-situ checkpoint the runtime just took
// (rt.ckpt) together with the VFS state. Called from beginEpoch while the
// world is quiescent.
func (rt *Runtime) captureCheckpoint() *Checkpoint {
	ck := rt.ckpt
	out := &Checkpoint{
		Epoch:     ck.epoch,
		OutputLen: len(rt.Output()),
		Snap:      ck.snap,
		Alloc:     ck.allocSnap,
		FS:        rt.os.CheckpointState(),
	}
	rt.mu.Lock()
	out.NextTID = rt.nextTID
	threads := append([]*Thread(nil), rt.threads...)
	shadows := rt.shadowList()
	rt.mu.Unlock()
	for _, t := range threads {
		if t == nil || t.state.Load() == tsDead {
			continue
		}
		tc := ck.threads[t.id]
		out.Threads = append(out.Threads, ThreadState{
			TID:     t.id,
			EntryFn: int32(t.entryFn),
			Exited:  tc.exited,
			Joined:  tc.joined,
			ExitVal: t.exitVal,
			Block:   BlockState{Kind: int32(tc.block.kind), VAddr: tc.block.vaddr, MAddr: tc.block.maddr},
			Ctx:     tc.ctx,
		})
	}
	for _, s := range shadows {
		vc := ck.varState[s.id]
		out.Vars = append(out.Vars, VarState{
			Addr: s.addr, Locked: vc.locked, Holder: vc.holder, Waiters: vc.waiters,
			Fuel: vc.fuel, Parties: vc.parties, Arrived: vc.arrived, Gen: vc.gen,
		})
	}
	return out
}

// checkpointDue reports whether the epoch that just began should be
// persisted: every CheckpointEvery completed epochs.
func (rt *Runtime) checkpointDue() bool {
	if rt.opts.CheckpointSink == nil && rt.opts.FlightRecorder == nil {
		return false
	}
	if rt.opts.CheckpointEvery <= 0 || rt.opts.DisableRecording {
		return false
	}
	return (rt.epochSeq-1)%int64(rt.opts.CheckpointEvery) == 0
}

// PrepareReplayAt builds a runtime primed to re-execute epochs start.Epoch..j
// of a trace from the persisted checkpoint start, instead of from program
// start. A nil start falls back to PrepareReplay (the trace's first segment).
// end, when non-nil, is the next checkpoint: every thread is armed to stop at
// its recorded instruction position, and RunReplay verifies the segment's end
// memory image byte-matches end before reporting success. Divergence retries
// roll back to start, not to program start — the paper's one-epoch replay
// bound, recovered offline.
//
// Options are interpreted as for PrepareReplay; Mem geometry, the allocator
// selection, EventCap/VarCap and Seed must match the recording run.
func PrepareReplayAt(mod *tir.Module, start *Checkpoint, epochs []*record.EpochLog, end *Checkpoint, opts Options) (*Runtime, error) {
	if start == nil {
		var preVars []VarState
		if end != nil {
			// Seed the shadow table from the segment's end checkpoint so the
			// replay assigns the recording's shadow IDs — the end memory image
			// embeds them in the variables' index words.
			preVars = end.Vars
		}
		rt, err := prepareReplay(mod, epochs, opts, preVars)
		if err != nil {
			return nil, err
		}
		if err := rt.armSegmentEnd(end); err != nil {
			rt.shutdown()
			return nil, err
		}
		return rt, nil
	}
	if len(epochs) == 0 {
		return nil, errors.New("core: segment replay of an empty epoch range")
	}
	if epochs[0].Epoch != start.Epoch {
		return nil, fmt.Errorf("core: segment epochs begin at %d, checkpoint at %d",
			epochs[0].Epoch, start.Epoch)
	}
	if end != nil && end.Epoch != epochs[len(epochs)-1].Epoch+1 {
		return nil, fmt.Errorf("core: segment ends at epoch %d but next checkpoint begins %d",
			epochs[len(epochs)-1].Epoch, end.Epoch)
	}

	opts.TraceSink = nil
	opts.OnEpochEnd = nil
	opts.OnReplayMatched = nil
	opts.CheckpointSink = nil
	opts.FlightRecorder = nil
	opts.DisableRecording = false
	rt, err := New(mod, opts)
	if err != nil {
		return nil, err
	}
	rt.offline = true
	rt.stopReason = StopReason(epochs[len(epochs)-1].Reason)
	rt.epochSeq = start.Epoch
	rt.stats.Epochs = int64(len(epochs))
	rt.epochStart = time.Now() //ir:wallclock epoch timeline telemetry

	// Geometry and allocator selection must match the checkpoint or restores
	// would silently corrupt state.
	cfg := rt.mem.Config()
	g, h, s := start.Snap.Lens()
	if int64(g) != cfg.GlobalSize || int64(h) != cfg.HeapSize || int64(s) != cfg.StackSlot*int64(cfg.MaxThreads) {
		return nil, fmt.Errorf("core: checkpoint memory geometry %d/%d/%d does not match options %d/%d/%d",
			g, h, s, cfg.GlobalSize, cfg.HeapSize, cfg.StackSlot*int64(cfg.MaxThreads))
	}
	if heap.SnapshotKindDeterministic(start.Alloc) == rt.opts.UseLibCAllocator {
		return nil, errors.New("core: checkpoint allocator snapshot does not match the configured allocator")
	}

	threads, vars, err := record.FlattenEpochsAt(epochs)
	if err != nil {
		return nil, err
	}

	// The restored in-situ checkpoint: rollbackAndReplay both seeds the
	// segment initially and re-seeds it on divergence retries.
	ck := &checkpoint{
		epoch:     start.Epoch,
		snap:      start.Snap,
		allocSnap: start.Alloc,
		positions: make(map[int64]int64, len(start.FS.FDs)),
		threads:   make(map[int32]threadCkpt, len(start.Threads)),
		varState:  make(map[int32]varCkpt, len(start.Vars)),
	}
	for _, f := range start.FS.FDs {
		ck.positions[f.FD] = f.Pos
	}

	// Rebuild the cast: every TID below the watermark is either a
	// checkpointed thread (live or parked-exited) or a reclaimed slot that
	// only holds its ID.
	byTID := make(map[int32]*ThreadState, len(start.Threads))
	for i := range start.Threads {
		ts := &start.Threads[i]
		if ts.TID < 0 || ts.TID >= start.NextTID {
			return nil, fmt.Errorf("core: checkpoint thread %d outside TID watermark %d", ts.TID, start.NextTID)
		}
		if !ts.Exited && ts.Ctx == nil {
			return nil, fmt.Errorf("core: checkpoint thread %d is live but has no context", ts.TID)
		}
		byTID[ts.TID] = ts
	}
	if byTID[0] == nil {
		return nil, errors.New("core: checkpoint lacks the main thread")
	}
	fail := func(err error) (*Runtime, error) {
		rt.shutdown()
		return nil, err
	}
	live := false
	for id := int32(0); id < start.NextTID; id++ {
		ts := byTID[id]
		if ts == nil {
			// Reclaimed before the boundary: a dead placeholder keeps the TID
			// sequence (and stack-slot assignment) aligned.
			t, err := rt.newThread(0, 0, false)
			if err != nil {
				return fail(err)
			}
			t.state.Store(tsDead)
			close(t.startCh)
			close(t.doneCh)
			continue
		}
		if ts.EntryFn < 0 || int(ts.EntryFn) >= len(mod.Funcs) {
			return fail(fmt.Errorf("core: checkpoint thread %d has invalid entry function %d", id, ts.EntryFn))
		}
		t, err := rt.newThread(int(ts.EntryFn), 0, id != 0)
		if err != nil {
			return fail(err)
		}
		if t.id != id {
			return fail(fmt.Errorf("core: checkpoint thread %d materialized as %d", id, t.id))
		}
		t.exitVal = ts.ExitVal
		t.bornEpoch = 0 // born before the segment
		ck.threads[id] = threadCkpt{
			ctx:    ts.Ctx,
			exited: ts.Exited,
			joined: ts.Joined,
			block:  blockInfo{kind: blockKind(ts.Block.Kind), vaddr: ts.Block.VAddr, maddr: ts.Block.MAddr},
		}
		if !ts.Exited {
			live = true
		}
		go t.trampoline()
	}
	if !live {
		return fail(errors.New("core: checkpoint has no live thread to resume"))
	}
	// Threads born during the segment start as embryos; their replayed
	// creation events release them (§3.5.1).
	for _, tl := range threads {
		if tl.TID < start.NextTID {
			ts := byTID[tl.TID]
			if ts == nil {
				return fail(fmt.Errorf("core: segment epochs log thread %d, reclaimed before the checkpoint", tl.TID))
			}
			if ts.EntryFn != tl.EntryFn {
				return fail(fmt.Errorf("core: thread %d entry function mismatch between checkpoint and epochs (%d vs %d)",
					tl.TID, ts.EntryFn, tl.EntryFn))
			}
			continue
		}
		if tl.EntryFn < 0 || int(tl.EntryFn) >= len(mod.Funcs) {
			return fail(fmt.Errorf("core: trace thread %d has invalid entry function %d", tl.TID, tl.EntryFn))
		}
		t, err := rt.newThread(int(tl.EntryFn), 0, true)
		if err != nil {
			return fail(err)
		}
		if t.id != tl.TID {
			return fail(fmt.Errorf("core: trace thread %d materialized as %d", tl.TID, t.id))
		}
		go t.trampoline()
	}

	// Shadow variables, in checkpoint creation order so IDs reproduce the
	// recording's (the index words inside the restored memory embed them).
	// When the segment has an end checkpoint, its table — a superset of the
	// start's, since shadow creation is append-only — additionally fixes the
	// IDs of variables first used *during* the segment, including those
	// (barriers, bare signals) that never enter a per-variable order list.
	seed := start.Vars
	if end != nil {
		if len(end.Vars) < len(start.Vars) {
			return fail(errors.New("core: end checkpoint shadow table shorter than the start's"))
		}
		for i := range start.Vars {
			if end.Vars[i].Addr != start.Vars[i].Addr {
				return fail(fmt.Errorf("core: shadow table mismatch between checkpoints at id %d (%#x vs %#x)",
					i, start.Vars[i].Addr, end.Vars[i].Addr))
			}
		}
		seed = end.Vars
	}
	if err := rt.seedShadows(seed); err != nil {
		return fail(err)
	}
	for i := range start.Vars {
		vs := &start.Vars[i]
		ck.varState[int32(i)] = varCkpt{
			locked: vs.Locked, holder: vs.Holder, waiters: vs.Waiters, fuel: vs.Fuel,
			parties: vs.Parties, arrived: vs.Arrived, gen: vs.Gen,
		}
	}
	for _, vl := range vars {
		sv := rt.replayVarFor(vl.Addr)
		sv.mu.Lock()
		sv.order = record.LoadVarList(vl.Order)
		sv.mu.Unlock()
	}

	// Load the per-thread lists (threads without events this segment keep
	// their empty, trivially-replayed lists).
	rt.mu.Lock()
	for _, tl := range threads {
		rt.threads[tl.TID].list = record.LoadThreadList(tl.Events)
	}
	rt.mu.Unlock()

	// The virtual filesystem resumes at the boundary's contents and open
	// descriptors; divergence retries restore positions only, as in-situ
	// rollback does (replayed writes reproduce contents).
	if err := rt.os.RestoreState(start.FS); err != nil {
		return fail(err)
	}

	rt.ckpt = ck
	rt.segStart = start
	if err := rt.armSegmentEnd(end); err != nil {
		return fail(err)
	}
	return rt, nil
}

// armSegmentEnd pins every thread that is still live at the segment's end
// checkpoint to stop at its recorded instruction position.
func (rt *Runtime) armSegmentEnd(end *Checkpoint) error {
	if end == nil {
		return nil
	}
	for i := range end.Threads {
		ts := &end.Threads[i]
		if ts.Exited || ts.Ctx == nil {
			continue
		}
		t := rt.thread(ts.TID)
		if t == nil {
			return fmt.Errorf("core: end checkpoint thread %d does not exist in the segment", ts.TID)
		}
		t.cpu.SetBoundary(ts.Ctx.Instrs)
		t.cpu.OnBoundary = t.parkBoundary
	}
	rt.segEnd = end
	return nil
}

// verifySegmentEnd is the stitching check, run after a matched segment
// replay while the world is still quiescent: the end memory image must
// byte-match the next checkpoint, and the segment must have produced exactly
// the output the recording attributed to it.
func (rt *Runtime) verifySegmentEnd() error {
	end := rt.segEnd
	if end == nil {
		return nil
	}
	snap := rt.mem.Snapshot()
	if !snap.Equal(end.Snap) {
		return fmt.Errorf("core: segment end state diverges from checkpoint at epoch %d (%d bytes differ)",
			end.Epoch, snap.DiffCount(end.Snap))
	}
	startLen := 0
	if rt.segStart != nil {
		startLen = rt.segStart.OutputLen
	}
	if got, want := len(rt.Output()), end.OutputLen-startLen; got != want {
		return fmt.Errorf("core: segment produced %d output bytes, recording attributed %d", got, want)
	}
	return nil
}
