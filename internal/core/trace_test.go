package core

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/record"
	"repro/internal/tir"
	"repro/internal/workloads"
)

// recordWithSink runs spec under full recording with a collecting trace sink
// and returns the epoch logs, the report, and the final heap image.
func recordWithSink(t *testing.T, spec workloads.Spec, opts Options) ([]*record.EpochLog, *Report, []byte) {
	t.Helper()
	mod, err := spec.Build()
	if err != nil {
		t.Fatalf("build %s: %v", spec.Name, err)
	}
	var epochs []*record.EpochLog
	opts.TraceSink = func(ep *record.EpochLog) error {
		epochs = append(epochs, ep)
		return nil
	}
	rt, err := New(mod, opts)
	if err != nil {
		t.Fatalf("new %s: %v", spec.Name, err)
	}
	spec.SetupOS(rt.OS())
	rep, err := rt.Run()
	if err != nil {
		t.Fatalf("record %s: %v", spec.Name, err)
	}
	return epochs, rep, rt.Mem().HeapImage()
}

// replayRecorded re-executes the captured epochs offline and returns the
// replayed report and final heap image.
func replayRecorded(t *testing.T, spec workloads.Spec, epochs []*record.EpochLog, opts Options) (*Report, []byte) {
	t.Helper()
	mod, err := spec.Build()
	if err != nil {
		t.Fatalf("rebuild %s: %v", spec.Name, err)
	}
	rt, err := PrepareReplay(mod, epochs, opts)
	if err != nil {
		t.Fatalf("prepare replay %s: %v", spec.Name, err)
	}
	spec.SetupOS(rt.OS())
	rep, err := rt.RunReplay()
	if err != nil {
		t.Fatalf("offline replay %s: %v", spec.Name, err)
	}
	return rep, rt.Mem().HeapImage()
}

func scaled(t *testing.T, name string, scale float64) workloads.Spec {
	t.Helper()
	s, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("unknown app %s", name)
	}
	s.Iters = int(float64(s.Iters) * scale)
	if s.Iters < 3 {
		s.Iters = 3
	}
	return s
}

// TestOfflineReplayIdentity is the round-trip identity property over real
// workload profiles: record with a trace sink, re-execute the captured
// epochs offline, and require the exit value, program output, and final heap
// image to be byte-identical. bodytrack is the racy case (§5.2.1): its
// condition-variable timing can diverge, so the offline replayer gets the
// same randomized-delay search the in-situ replayer uses.
func TestOfflineReplayIdentity(t *testing.T) {
	cases := []struct {
		app   string
		scale float64
		opts  Options
	}{
		// Barriers plus allocation churn.
		{app: "streamcluster", scale: 0.2},
		// File IO (revocable reads re-issued offline through OpenAt).
		{app: "pfscan", scale: 0.2},
		// Socket IO (recordable payloads delivered from the log).
		{app: "memcached", scale: 0.2},
		// The racy condition-variable profile.
		{app: "bodytrack", scale: 0.2,
			opts: Options{MaxReplays: 200, DelayOnDivergence: true}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.app, func(t *testing.T) {
			t.Parallel()
			spec := scaled(t, tc.app, tc.scale)
			opts := tc.opts
			opts.Seed = 7
			epochs, rep1, img1 := recordWithSink(t, spec, opts)
			if len(epochs) == 0 {
				t.Fatal("trace sink saw no epochs")
			}
			rep2, img2 := replayRecorded(t, spec, epochs, opts)
			if rep2.Exit != rep1.Exit {
				t.Fatalf("exit diverged: recorded %d, replayed %d", rep1.Exit, rep2.Exit)
			}
			if rep2.Output != rep1.Output {
				t.Fatalf("output diverged:\nrecorded %q\nreplayed %q", rep1.Output, rep2.Output)
			}
			if d := mem.DiffBytes(img1, img2); d != 0 {
				t.Fatalf("final heap image differs in %d bytes", d)
			}
		})
	}
}

// TestOfflineReplayMultiEpoch forces several epochs via a small event list
// and checks that the flattened multi-epoch replay still reproduces the run:
// per-variable positions must rebase correctly across epoch boundaries.
func TestOfflineReplayMultiEpoch(t *testing.T) {
	spec := scaled(t, "pfscan", 0.3)
	opts := Options{EventCap: 48, Seed: 11}
	epochs, rep1, img1 := recordWithSink(t, spec, opts)
	if len(epochs) < 2 {
		t.Fatalf("expected a multi-epoch trace, got %d epoch(s)", len(epochs))
	}
	rep2, img2 := replayRecorded(t, spec, epochs, opts)
	if rep2.Exit != rep1.Exit {
		t.Fatalf("exit diverged: recorded %d, replayed %d", rep1.Exit, rep2.Exit)
	}
	if d := mem.DiffBytes(img1, img2); d != 0 {
		t.Fatalf("final heap image differs in %d bytes", d)
	}
}

// TestTraceSinkErrorAbortsRun: a failing sink must terminate the program and
// surface from Run.
func TestTraceSinkErrorAbortsRun(t *testing.T) {
	mod := buildCounter(2, 5)
	rt, err := New(mod, Options{TraceSink: func(*record.EpochLog) error {
		return errSinkBoom
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err == nil {
		t.Fatal("expected sink error to surface from Run")
	}
}

var errSinkBoom = &sinkErr{}

type sinkErr struct{}

func (*sinkErr) Error() string { return "sink boom" }

// TestOfflineReplayReproducesFault: a trace whose final epoch closed on a
// fault must reproduce the same trap offline.
func TestOfflineReplayReproducesFault(t *testing.T) {
	// A program whose only thread dereferences an unmapped address after a
	// few recorded lock events.
	build := func() *tir.Module {
		mb := tir.NewModuleBuilder()
		gMutex := mb.Global("mutex", 8)
		m := mb.Func("main", 0)
		ma, v, bad := m.NewReg(), m.NewReg(), m.NewReg()
		m.GlobalAddr(ma, gMutex)
		for i := 0; i < 3; i++ {
			m.Intrin(-1, tir.IntrinMutexLock, ma)
			m.Intrin(-1, tir.IntrinMutexUnlock, ma)
		}
		m.ConstI(bad, 0x40)
		m.Load64(v, bad, 0)
		m.Ret(v)
		m.Seal()
		mb.SetEntry("main")
		mod, err := mb.Build()
		if err != nil {
			t.Fatal(err)
		}
		return mod
	}
	mod := build()

	var epochs []*record.EpochLog
	rt, err := New(mod, Options{TraceSink: func(ep *record.EpochLog) error {
		epochs = append(epochs, ep)
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err == nil {
		t.Fatal("expected the recording run to fault")
	}
	if len(epochs) == 0 {
		t.Fatal("fault epoch was not flushed to the sink")
	}
	if StopReason(epochs[len(epochs)-1].Reason) != StopFault {
		t.Fatalf("final epoch reason = %v, want fault",
			StopReason(epochs[len(epochs)-1].Reason))
	}

	_, err = ReplayFromTrace(build(), epochs, Options{MaxReplays: 10}, nil)
	if err == nil {
		t.Fatal("offline replay did not reproduce the fault")
	}
}
