package core

// The replay-observer surface: tools attach passive observers to a runtime
// and receive the execution's synchronization operations, thread lifecycle
// events, system calls, allocations, and (when requested) every data memory
// access — the hook surface the replay-time analysis subsystem
// (internal/analysis) and the §4 evidence-based detectors (internal/detect)
// share.
//
// Observers are passive: they may read runtime state but must not mutate VM
// memory, allocator state, or scheduling. Because an identical replay fixes
// the synchronization/syscall order and each thread's program order, the
// stream of callbacks an observer sees over a matched replay is itself
// deterministic — which is what makes replay-time analyses repeatable.
//
// Callbacks arrive on the vthread goroutine performing the operation, so
// observers shared across threads must synchronize internally. Callbacks for
// one synchronization variable are delivered in that variable's true
// acquisition order (they fire under the variable's shadow lock), and a
// thread's callbacks follow its program order; no global order across
// unrelated variables is implied.
//
// Rollback (an in-situ replay decision, or an offline divergence retry)
// re-executes observed operations. ResetObserver.OnReset is dispatched after
// state restoration and before threads resume, so stateful observers can
// discard observations from the abandoned attempt; for an offline replay the
// rollback target is program start, so a full reset is always correct.

import (
	"repro/internal/interp"
)

// Observer is the marker for anything attachable via Options.Observers or
// AttachObserver; the runtime discovers capabilities by interface assertion
// against the Sync/Thread/Alloc/Access/Syscall/Epoch/Reset observer
// interfaces below.
type Observer interface{}

// SyncOp classifies an observed synchronization operation.
type SyncOp uint8

const (
	// SyncAcquire: a mutex (or the mutex half of a cond wait) was acquired.
	SyncAcquire SyncOp = iota + 1
	// SyncRelease: a mutex was released.
	SyncRelease
	// SyncSignal: a condition variable was signalled or broadcast.
	SyncSignal
	// SyncWake: a condition-variable waiter consumed a wakeup.
	SyncWake
	// SyncBarrierArrive: a thread arrived at a barrier.
	SyncBarrierArrive
	// SyncBarrierRelease: the final arrival completed a barrier generation;
	// fired exactly once per generation, by the serial thread, in the same
	// critical section as its arrival — so every arrival of the generation
	// is observed before the release, and the release before any departure.
	SyncBarrierRelease
	// SyncBarrierDepart: a thread left a completed barrier.
	SyncBarrierDepart
)

var syncOpNames = [...]string{"", "acquire", "release", "signal", "wake",
	"barrier-arrive", "barrier-release", "barrier-depart"}

func (op SyncOp) String() string {
	if int(op) < len(syncOpNames) {
		return syncOpNames[op]
	}
	return "syncop(?)"
}

// SyncObserver receives synchronization operations on application
// synchronization variables. Runtime-internal pseudo-variables (thread
// creation serialization, super-heap block fetches) are filtered out: their
// ordering is an implementation artifact, not program synchronization, and
// treating them as happens-before edges would mask real races. Thread
// creation ordering is delivered through ThreadObserver instead.
type SyncObserver interface {
	OnSync(tid int32, op SyncOp, addr uint64)
}

// ThreadObserver receives thread lifecycle events. OnThreadCreate fires
// before the child executes its first instruction; OnThreadExit fires before
// any joiner can observe the exit; OnThreadJoin fires after the join
// completed — so the natural happens-before edges (parent→child,
// child-exit→joiner) hold between the callbacks themselves.
type ThreadObserver interface {
	OnThreadCreate(parent, child int32)
	OnThreadExit(tid int32)
	OnThreadJoin(joiner, joinee int32)
}

// AllocObserver receives heap allocation and free events with the acting
// thread's call stack (the allocation/free site).
type AllocObserver interface {
	OnAlloc(tid int32, addr uint64, size int64, stack []interp.StackEntry)
	OnFree(tid int32, addr uint64, stack []interp.StackEntry)
}

// AccessObserver receives every data memory access (loads, stores, memory
// intrinsics) performed by any vthread. stack symbolizes the accessing
// instruction lazily; call it only when the access is retained. Attaching an
// AccessObserver arms the per-CPU access hook, which costs one branch per
// memory operation on every thread.
type AccessObserver interface {
	OnAccess(tid int32, addr uint64, size int, write, atomic bool,
		stack func() []interp.StackEntry)
}

// SyscallObserver receives completed system calls (both recorded and
// replayed) with their result.
type SyscallObserver interface {
	OnSyscall(tid int32, num int64, ret uint64)
}

// EpochObserver participates in epoch-boundary decisions — the §4 tool
// surface. Both methods run while the world is quiescent. When several
// epoch observers (and the legacy Options hooks) disagree, the most severe
// decision wins (Abort > Replay > Proceed). Epoch observers are consulted
// only by the in-situ runtime; offline whole-program replay has no epoch
// boundaries to re-enact.
type EpochObserver interface {
	OnEpochEnd(rt *Runtime, info EpochEndInfo) Decision
	OnReplayMatched(rt *Runtime, attempts int) Decision
}

// ResetObserver is notified when a rollback discards execution: everything
// observed since the last checkpoint (for offline replay: since program
// start) is about to be re-executed.
type ResetObserver interface {
	OnReset()
}

// observerSet caches observers by capability so dispatch sites pay a single
// empty-slice check when no observer of that kind is attached.
type observerSet struct {
	sync    []SyncObserver
	thread  []ThreadObserver
	alloc   []AllocObserver
	access  []AccessObserver
	syscall []SyscallObserver
	epoch   []EpochObserver
	reset   []ResetObserver
}

func (s *observerSet) add(o Observer) {
	if x, ok := o.(SyncObserver); ok {
		s.sync = append(s.sync, x)
	}
	if x, ok := o.(ThreadObserver); ok {
		s.thread = append(s.thread, x)
	}
	if x, ok := o.(AllocObserver); ok {
		s.alloc = append(s.alloc, x)
	}
	if x, ok := o.(AccessObserver); ok {
		s.access = append(s.access, x)
	}
	if x, ok := o.(SyscallObserver); ok {
		s.syscall = append(s.syscall, x)
	}
	if x, ok := o.(EpochObserver); ok {
		s.epoch = append(s.epoch, x)
	}
	if x, ok := o.(ResetObserver); ok {
		s.reset = append(s.reset, x)
	}
}

// AttachObserver registers an observer after construction; it must be called
// before Run or RunReplay. Threads that already exist (PrepareReplay
// pre-creates the whole cast) are retrofitted with the access hook when o
// observes accesses.
func (rt *Runtime) AttachObserver(o Observer) {
	rt.obs.add(o)
	if len(rt.obs.access) > 0 {
		rt.mu.Lock()
		for _, t := range rt.threads {
			if t != nil {
				rt.armAccessHook(t)
			}
		}
		rt.mu.Unlock()
	}
}

// armAccessHook points t's CPU at the attached access observers.
func (rt *Runtime) armAccessHook(t *Thread) {
	cpu := t.cpu
	tid := t.id
	cpu.OnAccess = func(addr uint64, size int, write, atomic bool) {
		for _, o := range rt.obs.access {
			o.OnAccess(tid, addr, size, write, atomic, cpu.CallStack)
		}
	}
}

// --- dispatch helpers (each begins with a no-observer fast path) ---

func (rt *Runtime) notifySync(tid int32, op SyncOp, addr uint64) {
	if len(rt.obs.sync) == 0 || addr == createVarAddr || addr == superVarAddr {
		return
	}
	for _, o := range rt.obs.sync {
		o.OnSync(tid, op, addr)
	}
}

func (rt *Runtime) notifyThreadCreate(parent, child int32) {
	for _, o := range rt.obs.thread {
		o.OnThreadCreate(parent, child)
	}
}

func (rt *Runtime) notifyThreadExit(tid int32) {
	for _, o := range rt.obs.thread {
		o.OnThreadExit(tid)
	}
}

func (rt *Runtime) notifyThreadJoin(joiner, joinee int32) {
	for _, o := range rt.obs.thread {
		o.OnThreadJoin(joiner, joinee)
	}
}

func (rt *Runtime) notifyAlloc(t *Thread, addr uint64, size int64) {
	if len(rt.obs.alloc) == 0 {
		return
	}
	st := t.cpu.CallStack()
	for _, o := range rt.obs.alloc {
		o.OnAlloc(t.id, addr, size, st)
	}
}

func (rt *Runtime) notifyFree(t *Thread, addr uint64) {
	if len(rt.obs.alloc) == 0 {
		return
	}
	st := t.cpu.CallStack()
	for _, o := range rt.obs.alloc {
		o.OnFree(t.id, addr, st)
	}
}

func (rt *Runtime) notifySyscall(tid int32, num int64, ret uint64) {
	for _, o := range rt.obs.syscall {
		o.OnSyscall(tid, num, ret)
	}
}

func (rt *Runtime) notifyReset() {
	for _, o := range rt.obs.reset {
		o.OnReset()
	}
}

// ThreadRoots describes one live thread's conservative GC roots: the live
// stack range and every frame's register file. Reachability-based analyses
// (the leak detector's heap scan) combine them with the globals segment.
// Call only while the world is quiescent (an epoch boundary or after the
// program completed); exited and unborn threads contribute no roots.
type ThreadRoots struct {
	TID int32
	// StackLow/StackHigh bound the live portion of the thread's stack slot
	// ([SP, slot end)).
	StackLow, StackHigh uint64
	// Regs are every activation record's register values, innermost last.
	Regs []uint64
}

// LiveThreadRoots captures the conservative roots of every thread that still
// has execution state.
func (rt *Runtime) LiveThreadRoots() []ThreadRoots {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var out []ThreadRoots
	for _, t := range rt.threads {
		if t == nil {
			continue
		}
		switch t.state.Load() {
		case tsDead, tsExited, tsEmbryo:
			continue
		}
		ctx := t.cpu.GetContext()
		base, size := rt.mem.StackRange(int(t.id))
		r := ThreadRoots{TID: t.id, StackLow: ctx.SP, StackHigh: base + uint64(size)}
		if r.StackLow < base {
			r.StackLow = base
		}
		for _, fr := range ctx.Frames {
			r.Regs = append(r.Regs, fr.Regs...)
		}
		out = append(out, r)
	}
	return out
}

// epochDecision combines the legacy Options hook with every epoch observer,
// keeping the most severe verdict.
func (rt *Runtime) epochDecision(legacy func() Decision, each func(EpochObserver) Decision) Decision {
	decision := Proceed
	if legacy != nil {
		decision = legacy()
	}
	for _, o := range rt.obs.epoch {
		if d := each(o); d > decision {
			decision = d
		}
	}
	return decision
}
