package core

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/tir"
	"repro/internal/vsys"
)

// buildCounter returns a program where nThreads workers each perform iters
// recorded lock/increment/unlock rounds on a shared counter, and main
// returns the final counter value.
func buildCounter(nThreads, iters int) *tir.Module {
	mb := tir.NewModuleBuilder()
	gMutex := mb.Global("mutex", 8)
	gCounter := mb.Global("counter", 8)

	w := mb.Func("worker", 1)
	{
		i, lim, cond, maddr, caddr, v, one := w.NewReg(), w.NewReg(), w.NewReg(), w.NewReg(), w.NewReg(), w.NewReg(), w.NewReg()
		w.ConstI(i, 0)
		w.ConstI(lim, int64(iters))
		w.ConstI(one, 1)
		w.GlobalAddr(maddr, gMutex)
		w.GlobalAddr(caddr, gCounter)
		loop, done := w.NewLabel(), w.NewLabel()
		w.Bind(loop)
		w.Bin(tir.LtS, cond, i, lim)
		w.Brz(cond, done)
		w.Intrin(-1, tir.IntrinMutexLock, maddr)
		w.Load64(v, caddr, 0)
		w.Bin(tir.Add, v, v, one)
		w.Store64(v, caddr, 0)
		w.Intrin(-1, tir.IntrinMutexUnlock, maddr)
		w.Bin(tir.Add, i, i, one)
		w.Jmp(loop)
		w.Bind(done)
		w.Ret(-1)
		w.Seal()
	}

	m := mb.Func("main", 0)
	{
		tid := make([]tir.Reg, nThreads)
		fnr, argr := m.NewReg(), m.NewReg()
		m.ConstI(fnr, int64(w.Index()))
		for i := 0; i < nThreads; i++ {
			tid[i] = m.NewReg()
			m.ConstI(argr, int64(i))
			m.Intrin(tid[i], tir.IntrinThreadCreate, fnr, argr)
		}
		for i := 0; i < nThreads; i++ {
			m.Intrin(-1, tir.IntrinThreadJoin, tid[i])
		}
		caddr, v := m.NewReg(), m.NewReg()
		m.GlobalAddr(caddr, gCounter)
		m.Load64(v, caddr, 0)
		m.Ret(v)
		m.Seal()
	}
	mb.SetEntry("main")
	return mb.MustBuild()
}

func TestSingleThreadProgram(t *testing.T) {
	mb := tir.NewModuleBuilder()
	fb := mb.Func("main", 0)
	a := fb.NewReg()
	fb.ConstI(a, 21)
	fb.AddI(a, a, 21)
	fb.Ret(a)
	fb.Seal()
	mb.SetEntry("main")
	rt, err := New(mb.MustBuild(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exit != 42 {
		t.Fatalf("exit = %d", rep.Exit)
	}
}

func TestMultithreadedCounter(t *testing.T) {
	rt, err := New(buildCounter(4, 500), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exit != 2000 {
		t.Fatalf("counter = %d, want 2000", rep.Exit)
	}
}

func TestPlainModeMatchesRecorded(t *testing.T) {
	for _, plain := range []bool{false, true} {
		rt, err := New(buildCounter(3, 200), Options{DisableRecording: plain})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := rt.Run()
		if err != nil {
			t.Fatalf("plain=%v: %v", plain, err)
		}
		if rep.Exit != 600 {
			t.Fatalf("plain=%v: counter = %d", plain, rep.Exit)
		}
	}
}

// TestIdenticalReplay is the core §5.2 validation: trigger a replay of the
// final epoch and require the heap image after replay to be byte-identical
// to the image after the original execution.
func TestIdenticalReplay(t *testing.T) {
	var imgOrig, imgReplay []byte
	opts := Options{
		OnEpochEnd: func(rt *Runtime, info EpochEndInfo) Decision {
			if info.Reason == StopProgramEnd && imgOrig == nil {
				imgOrig = rt.Mem().HeapImage()
				return Replay
			}
			return Proceed
		},
		OnReplayMatched: func(rt *Runtime, attempts int) Decision {
			imgReplay = rt.Mem().HeapImage()
			return Proceed
		},
	}
	rt, err := New(buildCounter(4, 300), opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exit != 1200 {
		t.Fatalf("counter = %d", rep.Exit)
	}
	if imgOrig == nil || imgReplay == nil {
		t.Fatal("replay did not run")
	}
	if d := mem.DiffBytes(imgOrig, imgReplay); d != 0 {
		t.Fatalf("heap images differ in %d bytes (%.3f%%)", d, mem.DiffPercent(imgOrig, imgReplay))
	}
	if rep.Stats.MatchedReplays < 1 {
		t.Fatalf("stats = %+v", rep.Stats)
	}
}

// buildAllocProgram makes workers allocate/free with recorded syscalls so
// replay exercises the allocator and the recordable syscall path.
func buildAllocProgram(nThreads, iters int) *tir.Module {
	mb := tir.NewModuleBuilder()
	gOut := mb.Global("out", 8*64)

	w := mb.Func("worker", 1)
	{
		i, lim, cond, one := w.NewReg(), w.NewReg(), w.NewReg(), w.NewReg()
		sz, p, tod, outa, idx := w.NewReg(), w.NewReg(), w.NewReg(), w.NewReg(), w.NewReg()
		w.ConstI(i, 0)
		w.ConstI(lim, int64(iters))
		w.ConstI(one, 1)
		loop, done := w.NewLabel(), w.NewLabel()
		w.Bind(loop)
		w.Bin(tir.LtS, cond, i, lim)
		w.Brz(cond, done)
		// malloc a size depending on i, store gettimeofday into it, free it.
		seven := w.NewReg()
		w.ConstI(seven, 7)
		w.Bin(tir.And, sz, i, seven)
		w.Emit(tir.Instr{Op: tir.MulI, A: sz, B: sz, Imm: 24})
		w.AddI(sz, sz, 16)
		w.Intrin(p, tir.IntrinMalloc, sz)
		w.Syscall(tod, vsys.SysGettimeofday)
		w.Store64(tod, p, 0)
		// also store the time into the per-thread out slot so the heap image
		// reflects recorded syscall results
		w.GlobalAddr(outa, 0)
		w.Emit(tir.Instr{Op: tir.MulI, A: idx, B: w.Param(0), Imm: 8})
		w.Bin(tir.Add, outa, outa, idx)
		w.Store64(tod, outa, 0)
		w.Intrin(-1, tir.IntrinFree, p)
		w.Bin(tir.Add, i, i, one)
		w.Jmp(loop)
		w.Bind(done)
		w.Ret(-1)
		w.Seal()
	}
	_ = gOut

	m := mb.Func("main", 0)
	{
		tids := make([]tir.Reg, nThreads)
		fnr, argr := m.NewReg(), m.NewReg()
		m.ConstI(fnr, int64(w.Index()))
		for i := 0; i < nThreads; i++ {
			tids[i] = m.NewReg()
			m.ConstI(argr, int64(i))
			m.Intrin(tids[i], tir.IntrinThreadCreate, fnr, argr)
		}
		for i := 0; i < nThreads; i++ {
			m.Intrin(-1, tir.IntrinThreadJoin, tids[i])
		}
		z := m.NewReg()
		m.ConstI(z, 0)
		m.Ret(z)
		m.Seal()
	}
	mb.SetEntry("main")
	return mb.MustBuild()
}

func TestReplayReproducesSyscallsAndAllocations(t *testing.T) {
	var imgOrig, imgReplay []byte
	opts := Options{
		OnEpochEnd: func(rt *Runtime, info EpochEndInfo) Decision {
			if info.Reason == StopProgramEnd && imgOrig == nil {
				imgOrig = rt.Mem().HeapImage()
				return Replay
			}
			return Proceed
		},
		OnReplayMatched: func(rt *Runtime, attempts int) Decision {
			imgReplay = rt.Mem().HeapImage()
			return Proceed
		},
	}
	rt, err := New(buildAllocProgram(3, 100), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if imgOrig == nil || imgReplay == nil {
		t.Fatal("replay did not run")
	}
	if d := mem.DiffBytes(imgOrig, imgReplay); d != 0 {
		t.Fatalf("heap images differ in %d bytes: recordable syscalls or allocations not replayed identically", d)
	}
}

// TestEpochsCloseOnLogExhaustion checks the §3.2 log-size epoch criterion.
func TestEpochsCloseOnLogExhaustion(t *testing.T) {
	rt, err := New(buildCounter(2, 400), Options{EventCap: 64, VarCap: 512})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exit != 800 {
		t.Fatalf("counter = %d", rep.Exit)
	}
	if rep.Stats.Epochs < 3 {
		t.Fatalf("epochs = %d, want several from log exhaustion", rep.Stats.Epochs)
	}
}

// TestReplayOfMiddleEpoch forces an epoch boundary via log exhaustion and
// replays a non-final epoch.
func TestReplayOfMiddleEpoch(t *testing.T) {
	replaysDone := 0
	opts := Options{
		EventCap: 128,
		VarCap:   1024,
		OnEpochEnd: func(rt *Runtime, info EpochEndInfo) Decision {
			if info.Reason == StopLogFull && replaysDone == 0 {
				replaysDone++
				return Replay
			}
			return Proceed
		},
	}
	rt, err := New(buildCounter(3, 300), opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exit != 900 {
		t.Fatalf("counter = %d after mid-execution replay", rep.Exit)
	}
	if rep.Stats.MatchedReplays < 1 {
		t.Fatalf("no matched replay: %+v", rep.Stats)
	}
}
