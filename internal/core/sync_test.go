package core

import (
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/tir"
)

// buildProducerConsumer: one producer signals a condition variable after
// setting a flag; consumers wait for it and increment a counter. Main joins
// everyone and returns the counter.
func buildProducerConsumer(nConsumers, rounds int) *tir.Module {
	mb := tir.NewModuleBuilder()
	gM := mb.Global("m", 8)
	gC := mb.Global("c", 8)
	gFlag := mb.Global("flag", 8)
	gCount := mb.Global("count", 8)

	cons := mb.Func("consumer", 1)
	{
		i, lim, cond := cons.NewReg(), cons.NewReg(), cons.NewReg()
		ma, ca, fa, cnta, v, one := cons.NewReg(), cons.NewReg(), cons.NewReg(), cons.NewReg(), cons.NewReg(), cons.NewReg()
		cons.GlobalAddr(ma, gM)
		cons.GlobalAddr(ca, gC)
		cons.GlobalAddr(fa, gFlag)
		cons.GlobalAddr(cnta, gCount)
		cons.ConstI(i, 0)
		cons.ConstI(lim, int64(rounds))
		cons.ConstI(one, 1)
		loop, done := cons.NewLabel(), cons.NewLabel()
		waitLoop := cons.NewLabel()
		cons.Bind(loop)
		cons.Bin(tir.LtS, cond, i, lim)
		cons.Brz(cond, done)
		cons.Intrin(-1, tir.IntrinMutexLock, ma)
		cons.Bind(waitLoop)
		cons.Load64(v, fa, 0)
		gotIt := cons.NewLabel()
		cons.Br(v, gotIt)
		cons.Intrin(-1, tir.IntrinCondWait, ca, ma)
		cons.Jmp(waitLoop)
		cons.Bind(gotIt)
		// consume one token
		cons.Bin(tir.Sub, v, v, one)
		cons.Store64(v, fa, 0)
		cons.Load64(v, cnta, 0)
		cons.Bin(tir.Add, v, v, one)
		cons.Store64(v, cnta, 0)
		cons.Intrin(-1, tir.IntrinMutexUnlock, ma)
		cons.Bin(tir.Add, i, i, one)
		cons.Jmp(loop)
		cons.Bind(done)
		cons.Ret(-1)
		cons.Seal()
	}

	prod := mb.Func("producer", 1)
	{
		total := nConsumers * rounds
		i, lim, cond := prod.NewReg(), prod.NewReg(), prod.NewReg()
		ma, ca, fa, v, one := prod.NewReg(), prod.NewReg(), prod.NewReg(), prod.NewReg(), prod.NewReg()
		prod.GlobalAddr(ma, gM)
		prod.GlobalAddr(ca, gC)
		prod.GlobalAddr(fa, gFlag)
		prod.ConstI(i, 0)
		prod.ConstI(lim, int64(total))
		prod.ConstI(one, 1)
		loop, done := prod.NewLabel(), prod.NewLabel()
		prod.Bind(loop)
		prod.Bin(tir.LtS, cond, i, lim)
		prod.Brz(cond, done)
		prod.Intrin(-1, tir.IntrinMutexLock, ma)
		prod.Load64(v, fa, 0)
		prod.Bin(tir.Add, v, v, one)
		prod.Store64(v, fa, 0)
		prod.Intrin(-1, tir.IntrinCondSignal, ca)
		prod.Intrin(-1, tir.IntrinMutexUnlock, ma)
		prod.Bin(tir.Add, i, i, one)
		prod.Jmp(loop)
		prod.Bind(done)
		// Wake any remaining waiters so nobody is stranded.
		prod.Intrin(-1, tir.IntrinMutexLock, ma)
		prod.Intrin(-1, tir.IntrinCondBroadcast, ca)
		prod.Intrin(-1, tir.IntrinMutexUnlock, ma)
		prod.Ret(-1)
		prod.Seal()
	}

	m := mb.Func("main", 0)
	{
		fnr, argr := m.NewReg(), m.NewReg()
		tids := make([]tir.Reg, 0, nConsumers+1)
		m.ConstI(fnr, int64(cons.Index()))
		for i := 0; i < nConsumers; i++ {
			r := m.NewReg()
			m.ConstI(argr, int64(i))
			m.Intrin(r, tir.IntrinThreadCreate, fnr, argr)
			tids = append(tids, r)
		}
		m.ConstI(fnr, int64(prod.Index()))
		r := m.NewReg()
		m.ConstI(argr, 0)
		m.Intrin(r, tir.IntrinThreadCreate, fnr, argr)
		tids = append(tids, r)
		for _, tr := range tids {
			m.Intrin(-1, tir.IntrinThreadJoin, tr)
		}
		cnta, v := m.NewReg(), m.NewReg()
		m.GlobalAddr(cnta, gCount)
		m.Load64(v, cnta, 0)
		m.Ret(v)
		m.Seal()
	}
	mb.SetEntry("main")
	return mb.MustBuild()
}

func TestCondVarProducerConsumer(t *testing.T) {
	rt, err := New(buildProducerConsumer(3, 50), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exit != 150 {
		t.Fatalf("consumed = %d, want 150", rep.Exit)
	}
}

func TestCondVarIdenticalReplay(t *testing.T) {
	var img1, img2 []byte
	opts := Options{
		MaxReplays:        500,
		DelayOnDivergence: true,
		OnEpochEnd: func(rt *Runtime, info EpochEndInfo) Decision {
			if info.Reason == StopProgramEnd && img1 == nil {
				img1 = rt.Mem().HeapImage()
				return Replay
			}
			return Proceed
		},
		OnReplayMatched: func(rt *Runtime, attempts int) Decision {
			img2 = rt.Mem().HeapImage()
			return Proceed
		},
	}
	rt, err := New(buildProducerConsumer(2, 30), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if img1 == nil || img2 == nil {
		t.Fatal("replay did not complete")
	}
	if d := mem.DiffBytes(img1, img2); d != 0 {
		t.Fatalf("condvar replay not identical: %d bytes differ", d)
	}
}

// buildBarrierProgram: workers meet at a barrier repeatedly; exactly one
// serial thread per round increments the counter.
func buildBarrierProgram(nThreads, rounds int) *tir.Module {
	mb := tir.NewModuleBuilder()
	gBar := mb.Global("bar", 8)
	gCount := mb.Global("count", 8)
	gM := mb.Global("m", 8)

	w := mb.Func("worker", 1)
	{
		i, lim, cond, ba, cnta, ma, v, one, ser := w.NewReg(), w.NewReg(), w.NewReg(), w.NewReg(), w.NewReg(), w.NewReg(), w.NewReg(), w.NewReg(), w.NewReg()
		w.GlobalAddr(ba, gBar)
		w.GlobalAddr(cnta, gCount)
		w.GlobalAddr(ma, gM)
		w.ConstI(i, 0)
		w.ConstI(lim, int64(rounds))
		w.ConstI(one, 1)
		loop, done := w.NewLabel(), w.NewLabel()
		skip := w.NewLabel()
		w.Bind(loop)
		w.Bin(tir.LtS, cond, i, lim)
		w.Brz(cond, done)
		w.Intrin(ser, tir.IntrinBarrierWait, ba)
		w.Brz(ser, skip)
		w.Intrin(-1, tir.IntrinMutexLock, ma)
		w.Load64(v, cnta, 0)
		w.Bin(tir.Add, v, v, one)
		w.Store64(v, cnta, 0)
		w.Intrin(-1, tir.IntrinMutexUnlock, ma)
		w.Bind(skip)
		w.Bin(tir.Add, i, i, one)
		w.Jmp(loop)
		w.Bind(done)
		w.Ret(-1)
		w.Seal()
	}

	m := mb.Func("main", 0)
	{
		ba, n := m.NewReg(), m.NewReg()
		m.GlobalAddr(ba, gBar)
		m.ConstI(n, int64(nThreads))
		m.Intrin(-1, tir.IntrinBarrierInit, ba, n)
		fnr, argr := m.NewReg(), m.NewReg()
		m.ConstI(fnr, int64(w.Index()))
		tids := make([]tir.Reg, nThreads)
		for i := 0; i < nThreads; i++ {
			tids[i] = m.NewReg()
			m.ConstI(argr, int64(i))
			m.Intrin(tids[i], tir.IntrinThreadCreate, fnr, argr)
		}
		for i := 0; i < nThreads; i++ {
			m.Intrin(-1, tir.IntrinThreadJoin, tids[i])
		}
		cnta, v := m.NewReg(), m.NewReg()
		m.GlobalAddr(cnta, gCount)
		m.Load64(v, cnta, 0)
		m.Ret(v)
		m.Seal()
	}
	mb.SetEntry("main")
	return mb.MustBuild()
}

func TestBarrierSerialThreadPerRound(t *testing.T) {
	rt, err := New(buildBarrierProgram(4, 25), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exit != 25 {
		t.Fatalf("serial increments = %d, want 25", rep.Exit)
	}
}

func TestBarrierIdenticalReplay(t *testing.T) {
	var img1, img2 []byte
	opts := Options{
		MaxReplays:        500,
		DelayOnDivergence: true,
		OnEpochEnd: func(rt *Runtime, info EpochEndInfo) Decision {
			if info.Reason == StopProgramEnd && img1 == nil {
				img1 = rt.Mem().HeapImage()
				return Replay
			}
			return Proceed
		},
		OnReplayMatched: func(rt *Runtime, attempts int) Decision {
			img2 = rt.Mem().HeapImage()
			return Proceed
		},
	}
	rt, err := New(buildBarrierProgram(3, 20), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if d := mem.DiffBytes(img1, img2); d != 0 {
		t.Fatalf("barrier replay not identical: %d bytes differ", d)
	}
}

// buildTryLockProgram: workers trylock a shared mutex; on failure they
// increment a private tally. The recorded try results must replay exactly.
func buildTryLockProgram(nThreads, iters int) *tir.Module {
	mb := tir.NewModuleBuilder()
	gM := mb.Global("m", 8)
	gOk := mb.Global("ok", 8)
	gM2 := mb.Global("m2", 8)

	w := mb.Func("worker", 1)
	{
		i, lim, cond, ma, m2a, oka, got, v, one := w.NewReg(), w.NewReg(), w.NewReg(), w.NewReg(), w.NewReg(), w.NewReg(), w.NewReg(), w.NewReg(), w.NewReg()
		w.GlobalAddr(ma, gM)
		w.GlobalAddr(m2a, gM2)
		w.GlobalAddr(oka, gOk)
		w.ConstI(i, 0)
		w.ConstI(lim, int64(iters))
		w.ConstI(one, 1)
		loop, done, miss := w.NewLabel(), w.NewLabel(), w.NewLabel()
		w.Bind(loop)
		w.Bin(tir.LtS, cond, i, lim)
		w.Brz(cond, done)
		w.Intrin(got, tir.IntrinMutexTryLock, ma)
		w.Brz(got, miss)
		// Got the lock: tally under a second mutex, then release.
		w.Intrin(-1, tir.IntrinMutexLock, m2a)
		w.Load64(v, oka, 0)
		w.Bin(tir.Add, v, v, one)
		w.Store64(v, oka, 0)
		w.Intrin(-1, tir.IntrinMutexUnlock, m2a)
		w.Intrin(-1, tir.IntrinMutexUnlock, ma)
		w.Bind(miss)
		w.Bin(tir.Add, i, i, one)
		w.Jmp(loop)
		w.Bind(done)
		w.Ret(-1)
		w.Seal()
	}

	m := mb.Func("main", 0)
	{
		fnr, argr := m.NewReg(), m.NewReg()
		m.ConstI(fnr, int64(w.Index()))
		tids := make([]tir.Reg, nThreads)
		for i := 0; i < nThreads; i++ {
			tids[i] = m.NewReg()
			m.ConstI(argr, int64(i))
			m.Intrin(tids[i], tir.IntrinThreadCreate, fnr, argr)
		}
		for i := 0; i < nThreads; i++ {
			m.Intrin(-1, tir.IntrinThreadJoin, tids[i])
		}
		oka, v := m.NewReg(), m.NewReg()
		m.GlobalAddr(oka, gOk)
		m.Load64(v, oka, 0)
		m.Ret(v)
		m.Seal()
	}
	mb.SetEntry("main")
	return mb.MustBuild()
}

func TestTryLockRecordsResults(t *testing.T) {
	rt, err := New(buildTryLockProgram(4, 200), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exit == 0 || rep.Exit > 800 {
		t.Fatalf("successful tries = %d, want in (0, 800]", rep.Exit)
	}
}

func TestTryLockIdenticalReplay(t *testing.T) {
	var img1, img2 []byte
	var exitOrig uint64
	opts := Options{
		MaxReplays:        1000,
		DelayOnDivergence: true,
		OnEpochEnd: func(rt *Runtime, info EpochEndInfo) Decision {
			if info.Reason == StopProgramEnd && img1 == nil {
				img1 = rt.Mem().HeapImage()
				return Replay
			}
			return Proceed
		},
		OnReplayMatched: func(rt *Runtime, attempts int) Decision {
			img2 = rt.Mem().HeapImage()
			return Proceed
		},
	}
	rt, err := New(buildTryLockProgram(3, 100), opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	exitOrig = rep.Exit
	if img1 == nil || img2 == nil {
		t.Fatal("replay did not complete")
	}
	if d := mem.DiffBytes(img1, img2); d != 0 {
		t.Fatalf("trylock replay not identical: %d bytes differ (exit %d, attempts %d, div %q)",
			d, exitOrig, rep.Stats.LastReplayAttempts, rt.DivergenceInfo())
	}
}

func TestPrintOutputNotDuplicatedByReplay(t *testing.T) {
	mb := tir.NewModuleBuilder()
	fb := mb.Func("main", 0)
	r := fb.NewReg()
	fb.ConstI(r, 7)
	fb.Intrin(-1, tir.IntrinPrint, r)
	fb.Ret(r)
	fb.Seal()
	mb.SetEntry("main")
	replayed := false
	opts := Options{
		OnEpochEnd: func(rt *Runtime, info EpochEndInfo) Decision {
			if !replayed {
				replayed = true
				return Replay
			}
			return Proceed
		},
	}
	rt, err := New(mb.MustBuild(), opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(rep.Output, "7"); got != 1 {
		t.Fatalf("output printed %d times, want once:\n%s", got, rep.Output)
	}
}
