package heap

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/mem"
)

// LibC is the baseline allocator: one global heap behind one global lock,
// with ASLR-style placement noise. It models the default Linux allocator in
// the evaluation:
//
//   - Table 1 "Orig" row: two executions of the same program produce
//     different heap images, because the arena base is randomized per
//     process (ASLR, §2.2.4) and racing threads interleave differently on
//     the shared free lists;
//   - Table 3 normalization base: every malloc/free pays a global lock
//     acquisition, which is the contention IR-Alloc removes.
type LibC struct {
	mu   sync.Mutex
	mem  *mem.Memory
	base uint64
	size int64

	next int64
	free [NumClasses][]uint64
	live map[uint64]Object

	// lockDelay spins to model lock-acquisition plus madvise cost per
	// operation (the overhead the paper's custom heap avoids).
	lockDelay int
}

// NewLibC builds a baseline allocator; aslrSeed randomizes the arena base.
// Pass a host-entropy seed to model per-process ASLR, or a constant for a
// deterministic baseline.
func NewLibC(m *mem.Memory, aslrSeed int64) *LibC {
	base, size := m.HeapRange()
	rng := rand.New(rand.NewSource(aslrSeed))
	// Randomize the start offset within the first quarter of the arena,
	// 16-byte aligned: the ASLR displacement that shifts every address.
	off := rng.Int63n(size/4) &^ 15
	return &LibC{
		mem:       m,
		base:      base + uint64(off),
		size:      size - off,
		live:      make(map[uint64]Object),
		lockDelay: 24,
	}
}

// Malloc implements Allocator with a global lock.
func (l *LibC) Malloc(tid int32, size int64) uint64 {
	if size <= 0 {
		size = 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.spin()
	c := classFor(size)
	var slotAddr uint64
	var slot int64
	if c >= 0 {
		slot = slotSize(c)
		if n := len(l.free[c]); n > 0 {
			slotAddr = l.free[c][n-1]
			l.free[c] = l.free[c][:n-1]
		}
	} else {
		slot = HeaderSize + size + CanarySize
		slot = (slot + 15) &^ 15
	}
	if slotAddr == 0 {
		if l.next+slot > l.size {
			return 0
		}
		slotAddr = l.base + uint64(l.next)
		l.next += slot
	}
	obj := Object{Addr: slotAddr + HeaderSize, Size: size, Class: c, Slot: slot, Tid: tid}
	l.live[obj.Addr] = obj
	return obj.Addr
}

// Calloc implements Allocator.
func (l *LibC) Calloc(tid int32, n, size int64) uint64 {
	total := n * size
	addr := l.Malloc(tid, total)
	if addr != 0 {
		l.mem.Memset(addr, 0, int(total))
	}
	return addr
}

// Free implements Allocator: freed objects go to the *shared* free lists, so
// reuse order depends on cross-thread timing — a deliberate source of layout
// nondeterminism.
func (l *LibC) Free(tid int32, addr uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.spin()
	obj, ok := l.live[addr]
	if !ok {
		return fmt.Errorf("heap: free of untracked address %#x", addr)
	}
	delete(l.live, addr)
	if obj.Class >= 0 {
		l.free[obj.Class] = append(l.free[obj.Class], addr-HeaderSize)
	}
	return nil
}

// Lookup implements Allocator.
func (l *LibC) Lookup(addr uint64) (Object, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	o, ok := l.live[addr]
	return o, ok
}

func (l *LibC) spin() {
	s := 0
	for i := 0; i < l.lockDelay; i++ {
		s += i
	}
	_ = s
}

type libcSnapshot struct {
	next int64
	free [NumClasses][]uint64
	live map[uint64]Object
}

// Snapshot implements Allocator.
func (l *LibC) Snapshot() AllocSnapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := &libcSnapshot{next: l.next, live: make(map[uint64]Object, len(l.live))}
	for c := range l.free {
		s.free[c] = append([]uint64(nil), l.free[c]...)
	}
	for a, o := range l.live {
		s.live[a] = o
	}
	return s
}

// Restore implements Allocator.
func (l *LibC) Restore(snap AllocSnapshot) {
	s := snap.(*libcSnapshot)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.next = s.next
	for c := range l.free {
		l.free[c] = append([]uint64(nil), s.free[c]...)
	}
	l.live = make(map[uint64]Object, len(s.live))
	for a, o := range s.live {
		l.live[a] = o
	}
}
