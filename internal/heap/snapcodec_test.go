package heap

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/mem"
)

// TestAllocSnapshotCodecRoundTrip exercises the deterministic allocator:
// allocate across threads and classes, free some (with quarantine), encode
// the snapshot, decode it, and require the decoded snapshot to restore an
// identical allocator state.
func TestAllocSnapshotCodecRoundTrip(t *testing.T) {
	m := mem.New(mem.Config{GlobalSize: 4096, HeapSize: 1 << 20, StackSlot: 4096, MaxThreads: 4})
	d := NewDeterministic(m)
	d.EnableQuarantine(1 << 12)
	var addrs []uint64
	for tid := int32(0); tid < 3; tid++ {
		d.AssignHeap(tid)
		for i := 0; i < 10; i++ {
			a := d.Malloc(tid, int64(8+i*97))
			if a == 0 {
				t.Fatal("oom")
			}
			addrs = append(addrs, a)
		}
	}
	for i := 0; i < len(addrs); i += 3 {
		if err := d.Free(int32(i%3), addrs[i]); err != nil {
			t.Fatal(err)
		}
	}

	snap := d.Snapshot()
	b, err := AppendSnapshot(nil, snap)
	if err != nil {
		t.Fatal(err)
	}
	if !SnapshotIsDeterministic(b) || !SnapshotKindDeterministic(snap) {
		t.Fatal("snapshot kind misidentified")
	}
	dec, err := DecodeSnapshot(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, dec) {
		t.Fatalf("decode(encode(snap)) != snap")
	}
	// Canonical: re-encoding the decoded snapshot is byte-identical.
	b2, err := AppendSnapshot(nil, dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatal("snapshot encoding not canonical")
	}

	// A fresh allocator restored from the decoded snapshot continues
	// exactly like the original.
	d2 := NewDeterministic(mem.New(mem.Config{GlobalSize: 4096, HeapSize: 1 << 20, StackSlot: 4096, MaxThreads: 4}))
	d2.EnableQuarantine(1 << 12)
	d2.Restore(dec)
	a1 := d.Malloc(1, 64)
	a2 := d2.Malloc(1, 64)
	if a1 != a2 {
		t.Fatalf("restored allocator diverges: %#x vs %#x", a1, a2)
	}

	// Truncations fail loudly.
	for _, cut := range []int{1, len(b) / 2, len(b) - 1} {
		if _, err := DecodeSnapshot(b[:cut]); err == nil {
			t.Fatalf("truncated snapshot (%d bytes) accepted", cut)
		}
	}
}

// TestLibCSnapshotCodecRoundTrip covers the baseline allocator's snapshot.
func TestLibCSnapshotCodecRoundTrip(t *testing.T) {
	m := mem.New(mem.Config{GlobalSize: 4096, HeapSize: 1 << 20, StackSlot: 4096, MaxThreads: 4})
	l := NewLibC(m, 7)
	a := l.Malloc(0, 100)
	l.Malloc(1, 5000)
	l.Free(0, a)
	snap := l.Snapshot()
	b, err := AppendSnapshot(nil, snap)
	if err != nil {
		t.Fatal(err)
	}
	if SnapshotIsDeterministic(b) || SnapshotKindDeterministic(snap) {
		t.Fatal("libc snapshot misidentified as deterministic")
	}
	dec, err := DecodeSnapshot(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, dec) {
		t.Fatal("libc snapshot round trip mismatch")
	}
}
