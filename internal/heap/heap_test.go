package heap

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func newDet(t testing.TB) (*Deterministic, *mem.Memory) {
	t.Helper()
	m := mem.New(mem.DefaultConfig())
	return NewDeterministic(m), m
}

func TestMallocReturnsDistinctAlignedAddresses(t *testing.T) {
	d, _ := newDet(t)
	d.AssignHeap(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		a := d.Malloc(0, 24)
		if a == 0 {
			t.Fatal("exhausted unexpectedly")
		}
		if a%8 != 0 {
			t.Fatalf("unaligned address %#x", a)
		}
		if seen[a] {
			t.Fatalf("address %#x returned twice", a)
		}
		seen[a] = true
	}
}

func TestFreeListReuseIsLIFO(t *testing.T) {
	d, _ := newDet(t)
	d.AssignHeap(0)
	a := d.Malloc(0, 32)
	b := d.Malloc(0, 32)
	d.Free(0, a)
	d.Free(0, b)
	// LIFO: b freed last is reused first (insert at head, §2.2.4).
	if got := d.Malloc(0, 32); got != b {
		t.Fatalf("reuse = %#x, want %#x", got, b)
	}
	if got := d.Malloc(0, 32); got != a {
		t.Fatalf("second reuse = %#x, want %#x", got, a)
	}
}

func TestCrossThreadFreeGoesToFreeingThread(t *testing.T) {
	d, _ := newDet(t)
	d.AssignHeap(0)
	d.AssignHeap(1)
	a := d.Malloc(0, 64) // allocated by thread 0
	d.Free(1, a)         // freed by thread 1
	// Thread 1's next allocation of the class reuses it; thread 0's does not.
	b := d.Malloc(1, 64)
	if b != a {
		t.Fatalf("freeing thread must own the object: got %#x, want %#x", b, a)
	}
}

func TestThreadsGetSeparateBlocks(t *testing.T) {
	d, _ := newDet(t)
	d.AssignHeap(0)
	d.AssignHeap(1)
	a := d.Malloc(0, 16)
	b := d.Malloc(1, 16)
	// Different per-thread heaps fetch different super-heap blocks.
	if a/BlockSize == b/BlockSize {
		t.Fatalf("threads share a block: %#x %#x", a, b)
	}
}

func TestDeterministicLayoutAcrossRuns(t *testing.T) {
	// Same allocation program order → identical addresses, with no recording
	// of allocations. This is the §2.2.4 property.
	run := func() []uint64 {
		m := mem.New(mem.DefaultConfig())
		d := NewDeterministic(m)
		d.AssignHeap(0)
		d.AssignHeap(1)
		var addrs []uint64
		for i := 0; i < 50; i++ {
			addrs = append(addrs, d.Malloc(0, int64(16+i)))
			addrs = append(addrs, d.Malloc(1, int64(8*i+1)))
			if i%3 == 2 {
				d.Free(0, addrs[len(addrs)-2])
			}
		}
		return addrs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("layout diverged at %d: %#x vs %#x", i, a[i], b[i])
		}
	}
}

func TestLargeObject(t *testing.T) {
	d, _ := newDet(t)
	d.AssignHeap(0)
	a := d.Malloc(0, 100_000)
	if a == 0 {
		t.Fatal("large alloc failed")
	}
	obj, ok := d.Lookup(a)
	if !ok || obj.Class != -1 || obj.Size != 100_000 {
		t.Fatalf("large object metadata: %+v", obj)
	}
	if err := d.Free(0, a); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleFreeRejected(t *testing.T) {
	d, _ := newDet(t)
	d.AssignHeap(0)
	a := d.Malloc(0, 16)
	if err := d.Free(0, a); err != nil {
		t.Fatal(err)
	}
	if err := d.Free(0, a); err == nil {
		t.Fatal("double free must be reported")
	}
}

func TestCallocZeroes(t *testing.T) {
	d, m := newDet(t)
	d.AssignHeap(0)
	a := d.Malloc(0, 32)
	m.Memset(a, 0xFF, 32)
	d.Free(0, a)
	b := d.Calloc(0, 4, 8) // reuses the dirty slot
	if b != a {
		t.Fatalf("expected reuse for this test, got %#x vs %#x", b, a)
	}
	data, _ := m.ReadBytes(b, 32)
	for i, v := range data {
		if v != 0 {
			t.Fatalf("calloc byte %d = %#x", i, v)
		}
	}
}

func TestCanaryDetectsOverflow(t *testing.T) {
	d, m := newDet(t)
	d.EnableCanaries()
	d.AssignHeap(0)
	a := d.Malloc(0, 20)
	b := d.Malloc(0, 20)
	_ = b
	if vs := d.ScanCanaries(); len(vs) != 0 {
		t.Fatalf("clean heap reported %v", vs)
	}
	// Overflow 3 bytes past the end of a.
	m.Memset(a+20, 0x11, 3)
	vs := d.ScanCanaries()
	if len(vs) != 1 {
		t.Fatalf("violations = %v", vs)
	}
	v := vs[0]
	if v.UseFree || v.Object.Addr != a || len(v.Addrs) != 3 || v.Addrs[0] != a+20 {
		t.Fatalf("violation = %+v", v)
	}
}

func TestCanaryAddrsCappedAtWatchpointLimit(t *testing.T) {
	d, m := newDet(t)
	d.EnableCanaries()
	d.AssignHeap(0)
	a := d.Malloc(0, 16) // class 16: slack is only the trailing canary word
	m.Memset(a+16, 0x22, 8)
	vs := d.ScanCanaries()
	if len(vs) != 1 || len(vs[0].Addrs) != mem.MaxWatchpoints {
		t.Fatalf("violations = %+v", vs)
	}
}

func TestQuarantineDetectsUseAfterFree(t *testing.T) {
	d, m := newDet(t)
	d.EnableQuarantine(1 << 20)
	d.AssignHeap(0)
	a := d.Malloc(0, 64)
	d.Free(0, a)
	// Write-after-free.
	m.Store64(a+8, 0xBAD)
	vs := d.ScanCanaries()
	if len(vs) != 1 || !vs[0].UseFree {
		t.Fatalf("violations = %+v", vs)
	}
	if vs[0].Addrs[0] != a+8 {
		t.Fatalf("corruption addr = %#x, want %#x", vs[0].Addrs[0], a+8)
	}
}

func TestQuarantineDelaysReuse(t *testing.T) {
	d, _ := newDet(t)
	d.EnableQuarantine(1 << 20)
	d.AssignHeap(0)
	a := d.Malloc(0, 64)
	d.Free(0, a)
	b := d.Malloc(0, 64)
	if b == a {
		t.Fatal("quarantined object must not be reused immediately")
	}
}

func TestQuarantineBudgetReleasesOldest(t *testing.T) {
	var violations []Violation
	d, m := newDet(t)
	d.EnableQuarantine(300) // tiny budget
	d.SetViolationHandler(func(v Violation) { violations = append(violations, v) })
	d.AssignHeap(0)
	a := d.Malloc(0, 64)
	d.Free(0, a)
	m.Store8(a, 0x77) // corrupt while quarantined
	// Push enough frees to evict a.
	for i := 0; i < 10; i++ {
		x := d.Malloc(0, 64)
		d.Free(0, x)
	}
	if len(violations) == 0 {
		t.Fatal("eviction must check canaries and report the corruption")
	}
	if !violations[0].UseFree || violations[0].Object.Addr != a {
		t.Fatalf("violation = %+v", violations[0])
	}
}

func TestSnapshotRestoreRewindsAllocator(t *testing.T) {
	d, _ := newDet(t)
	d.AssignHeap(0)
	a1 := d.Malloc(0, 40)
	snap := d.Snapshot()
	a2 := d.Malloc(0, 40)
	d.Free(0, a1)
	d.Restore(snap)
	// After restore, replaying the same ops yields the same addresses.
	b2 := d.Malloc(0, 40)
	if b2 != a2 {
		t.Fatalf("replayed alloc = %#x, want %#x", b2, a2)
	}
	if err := d.Free(0, a1); err != nil {
		t.Fatalf("a1 must be live again after restore: %v", err)
	}
}

func TestLibCASLRMakesLayoutsDiffer(t *testing.T) {
	m1 := mem.New(mem.DefaultConfig())
	m2 := mem.New(mem.DefaultConfig())
	l1 := NewLibC(m1, 1)
	l2 := NewLibC(m2, 2)
	a1 := l1.Malloc(0, 64)
	a2 := l2.Malloc(0, 64)
	if a1 == a2 {
		t.Fatal("different ASLR seeds must shift the arena")
	}
	// Same seed → same layout (the RR baseline relies on this).
	m3 := mem.New(mem.DefaultConfig())
	l3 := NewLibC(m3, 1)
	if l3.Malloc(0, 64) != a1 {
		t.Fatal("same seed must reproduce the layout")
	}
}

func TestLibCSharedFreeList(t *testing.T) {
	m := mem.New(mem.DefaultConfig())
	l := NewLibC(m, 7)
	a := l.Malloc(0, 32)
	l.Free(0, a)
	// Another thread's allocation may take it — shared lists.
	if b := l.Malloc(1, 32); b != a {
		t.Fatalf("shared free list expected reuse: %#x vs %#x", b, a)
	}
}

func TestLibCSnapshotRestore(t *testing.T) {
	m := mem.New(mem.DefaultConfig())
	l := NewLibC(m, 3)
	a := l.Malloc(0, 16)
	snap := l.Snapshot()
	l.Free(0, a)
	l.Restore(snap)
	if err := l.Free(0, a); err != nil {
		t.Fatalf("object must be live after restore: %v", err)
	}
}

func TestClassFor(t *testing.T) {
	cases := map[int64]int{1: 0, 16: 0, 17: 1, 32: 1, 4096: 8, 4097: -1}
	for size, want := range cases {
		if got := classFor(size); got != want {
			t.Errorf("classFor(%d) = %d, want %d", size, got, want)
		}
	}
}

// Property: for arbitrary allocation sizes, the usable payload never
// overlaps another live object's slot.
func TestQuickNoOverlap(t *testing.T) {
	f := func(sizes []uint16) bool {
		m := mem.New(mem.DefaultConfig())
		d := NewDeterministic(m)
		d.AssignHeap(0)
		type span struct{ lo, hi uint64 }
		var spans []span
		for i, s := range sizes {
			if i >= 64 {
				break
			}
			size := int64(s%2000) + 1
			a := d.Malloc(0, size)
			if a == 0 {
				return true // arena exhausted is acceptable
			}
			for _, sp := range spans {
				if a < sp.hi && sp.lo < a+uint64(size) {
					return false
				}
			}
			spans = append(spans, span{a, a + uint64(size)})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: snapshot/restore followed by the identical allocation sequence
// reproduces identical addresses (the rollback invariant the replayer needs).
func TestQuickSnapshotReplayDeterminism(t *testing.T) {
	f := func(sizes []uint8) bool {
		if len(sizes) > 32 {
			sizes = sizes[:32]
		}
		m := mem.New(mem.DefaultConfig())
		d := NewDeterministic(m)
		d.AssignHeap(0)
		snap := d.Snapshot()
		var first []uint64
		for _, s := range sizes {
			first = append(first, d.Malloc(0, int64(s)+1))
		}
		d.Restore(snap)
		for i, s := range sizes {
			if d.Malloc(0, int64(s)+1) != first[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
