package heap

// Allocator snapshot serialization for persisted checkpoint frames (trace
// format v2): the metadata an offline replay needs to resume allocating
// mid-trace with identical layout. Both allocators are covered; a tag byte
// distinguishes them so a replay configured with the wrong allocator fails
// loudly instead of corrupting layout.
//
// The encoding is canonical (maps are emitted in sorted order), so equal
// snapshots produce identical bytes.

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Snapshot tags.
const (
	snapDet  byte = 1
	snapLibC byte = 2
)

// SnapshotIsDeterministic reports whether an encoded allocator snapshot was
// taken from the deterministic allocator (vs the libc baseline).
func SnapshotIsDeterministic(b []byte) bool {
	return len(b) > 0 && b[0] == snapDet
}

// SnapshotKindDeterministic reports whether a decoded allocator snapshot
// belongs to the deterministic allocator — a restore target must be built
// with the matching allocator.
func SnapshotKindDeterministic(s AllocSnapshot) bool {
	_, ok := s.(*detSnapshot)
	return ok
}

// AppendSnapshot serializes an allocator snapshot produced by
// (Allocator).Snapshot.
func AppendSnapshot(b []byte, snap AllocSnapshot) ([]byte, error) {
	switch s := snap.(type) {
	case *detSnapshot:
		return appendDetSnapshot(b, s), nil
	case *libcSnapshot:
		return appendLibCSnapshot(b, s), nil
	}
	return nil, fmt.Errorf("heap: unencodable allocator snapshot %T", snap)
}

// DecodeSnapshot inverts AppendSnapshot. The result can be passed to the
// matching allocator's Restore.
func DecodeSnapshot(b []byte) (AllocSnapshot, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("heap: empty allocator snapshot")
	}
	d := &snapDecoder{b: b[1:]}
	switch b[0] {
	case snapDet:
		return decodeDetSnapshot(d)
	case snapLibC:
		return decodeLibCSnapshot(d)
	}
	return nil, fmt.Errorf("heap: unknown allocator snapshot tag %d", b[0])
}

type snapDecoder struct{ b []byte }

func (d *snapDecoder) u() (uint64, error) {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		return 0, fmt.Errorf("heap: truncated allocator snapshot")
	}
	d.b = d.b[n:]
	return v, nil
}

// count bounds an element count by the bytes remaining (each element costs
// at least one byte), so a corrupt count cannot drive an allocation.
func (d *snapDecoder) count() (int, error) {
	v, err := d.u()
	if err != nil {
		return 0, err
	}
	if v > uint64(len(d.b)) {
		return 0, fmt.Errorf("heap: implausible element count %d in allocator snapshot", v)
	}
	return int(v), nil
}

func appendObject(b []byte, o Object) []byte {
	b = binary.AppendUvarint(b, o.Addr)
	b = binary.AppendUvarint(b, uint64(o.Size))
	b = binary.AppendUvarint(b, uint64(uint32(int32(o.Class))))
	b = binary.AppendUvarint(b, uint64(o.Slot))
	b = binary.AppendUvarint(b, uint64(uint32(o.Tid)))
	return b
}

func (d *snapDecoder) object() (Object, error) {
	var o Object
	var err error
	var v uint64
	if o.Addr, err = d.u(); err != nil {
		return o, err
	}
	if v, err = d.u(); err != nil {
		return o, err
	}
	o.Size = int64(v)
	if v, err = d.u(); err != nil {
		return o, err
	}
	o.Class = int(int32(uint32(v)))
	if v, err = d.u(); err != nil {
		return o, err
	}
	o.Slot = int64(v)
	if v, err = d.u(); err != nil {
		return o, err
	}
	o.Tid = int32(uint32(v))
	return o, nil
}

func appendLive(b []byte, live map[uint64]Object) []byte {
	addrs := make([]uint64, 0, len(live))
	for a := range live {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	b = binary.AppendUvarint(b, uint64(len(addrs)))
	for _, a := range addrs {
		b = appendObject(b, live[a])
	}
	return b
}

func (d *snapDecoder) liveMap() (map[uint64]Object, error) {
	n, err := d.count()
	if err != nil {
		return nil, err
	}
	live := make(map[uint64]Object, n)
	for i := 0; i < n; i++ {
		o, err := d.object()
		if err != nil {
			return nil, err
		}
		live[o.Addr] = o
	}
	return live, nil
}

func appendFreeLists(b []byte, free *[NumClasses][]uint64) []byte {
	for c := range free {
		b = binary.AppendUvarint(b, uint64(len(free[c])))
		for _, a := range free[c] {
			b = binary.AppendUvarint(b, a)
		}
	}
	return b
}

func (d *snapDecoder) freeLists(free *[NumClasses][]uint64) error {
	for c := range free {
		n, err := d.count()
		if err != nil {
			return err
		}
		if n > 0 {
			free[c] = make([]uint64, n)
			for i := range free[c] {
				if free[c][i], err = d.u(); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func appendDetSnapshot(b []byte, s *detSnapshot) []byte {
	b = append(b, snapDet)
	b = binary.AppendUvarint(b, uint64(s.superNext))
	b = binary.AppendUvarint(b, uint64(len(s.heaps)))
	for _, th := range s.heaps {
		if th == nil {
			b = append(b, 0)
			continue
		}
		b = append(b, 1)
		for c := range th.bump {
			b = binary.AppendUvarint(b, th.bump[c].addr)
			b = binary.AppendUvarint(b, uint64(th.bump[c].left))
		}
		b = appendFreeLists(b, &th.free)
		b = binary.AppendUvarint(b, uint64(th.nAlloc))
		b = binary.AppendUvarint(b, uint64(th.nFree))
	}
	b = appendLive(b, s.live)
	// Quarantine lists, sorted by owning thread.
	tids := make([]int32, 0, len(s.quarantined))
	for t := range s.quarantined {
		tids = append(tids, t)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	b = binary.AppendUvarint(b, uint64(len(tids)))
	for _, t := range tids {
		q := s.quarantined[t]
		b = binary.AppendUvarint(b, uint64(uint32(t)))
		b = binary.AppendUvarint(b, uint64(q.total))
		b = binary.AppendUvarint(b, uint64(len(q.objs)))
		for _, o := range q.objs {
			b = appendObject(b, o)
		}
	}
	return b
}

func decodeDetSnapshot(d *snapDecoder) (*detSnapshot, error) {
	s := &detSnapshot{quarantined: make(map[int32]*quarList)}
	v, err := d.u()
	if err != nil {
		return nil, err
	}
	s.superNext = int64(v)
	nh, err := d.count()
	if err != nil {
		return nil, err
	}
	s.heaps = make([]*threadHeap, nh)
	for i := 0; i < nh; i++ {
		if len(d.b) == 0 {
			return nil, fmt.Errorf("heap: truncated allocator snapshot")
		}
		present := d.b[0]
		d.b = d.b[1:]
		if present == 0 {
			continue
		}
		th := &threadHeap{}
		for c := range th.bump {
			if th.bump[c].addr, err = d.u(); err != nil {
				return nil, err
			}
			if v, err = d.u(); err != nil {
				return nil, err
			}
			th.bump[c].left = int64(v)
		}
		if err := d.freeLists(&th.free); err != nil {
			return nil, err
		}
		if v, err = d.u(); err != nil {
			return nil, err
		}
		th.nAlloc = int64(v)
		if v, err = d.u(); err != nil {
			return nil, err
		}
		th.nFree = int64(v)
		s.heaps[i] = th
	}
	if s.live, err = d.liveMap(); err != nil {
		return nil, err
	}
	nq, err := d.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < nq; i++ {
		tv, err := d.u()
		if err != nil {
			return nil, err
		}
		q := &quarList{}
		if v, err = d.u(); err != nil {
			return nil, err
		}
		q.total = int64(v)
		no, err := d.count()
		if err != nil {
			return nil, err
		}
		for j := 0; j < no; j++ {
			o, err := d.object()
			if err != nil {
				return nil, err
			}
			q.objs = append(q.objs, o)
		}
		s.quarantined[int32(uint32(tv))] = q
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("heap: %d trailing bytes in allocator snapshot", len(d.b))
	}
	return s, nil
}

func appendLibCSnapshot(b []byte, s *libcSnapshot) []byte {
	b = append(b, snapLibC)
	b = binary.AppendUvarint(b, uint64(s.next))
	b = appendFreeLists(b, &s.free)
	b = appendLive(b, s.live)
	return b
}

func decodeLibCSnapshot(d *snapDecoder) (*libcSnapshot, error) {
	s := &libcSnapshot{}
	v, err := d.u()
	if err != nil {
		return nil, err
	}
	s.next = int64(v)
	if err := d.freeLists(&s.free); err != nil {
		return nil, err
	}
	if s.live, err = d.liveMap(); err != nil {
		return nil, err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("heap: %d trailing bytes in allocator snapshot", len(d.b))
	}
	return s, nil
}
