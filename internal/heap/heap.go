// Package heap implements iReplayer's deterministic memory allocator
// (§2.2.4) and a libc-like baseline allocator.
//
// The deterministic allocator ("IR-Alloc" in Table 3) makes heap layout a
// pure function of per-thread program order plus the recorded order of
// super-heap block fetches:
//
//   - every thread owns a private heap and two live threads never share one;
//   - per-thread heaps obtain fixed-size blocks from a super heap under a
//     single global lock whose acquisition order is recorded and replayed;
//   - objects are managed in power-of-two size classes with free lists and a
//     bump pointer;
//   - a freed object always returns to the *freeing* thread's free list, so
//     cross-thread frees only influence that thread's subsequent program
//     order.
//
// Consequently no allocation addresses ever need to be recorded — identical
// lock replay yields an identical heap layout. Individual mallocs take no
// lock at all, which is why the paper measures IR-Alloc slightly *faster*
// than the default allocator.
//
// The allocator also hosts the detection substrate of §4: trailing canaries
// in the slack of every object (heap overflow) and per-thread quarantine
// lists with canary-filled payloads (use-after-free).
package heap

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/mem"
)

// NumClasses is the number of power-of-two size classes; class i holds
// objects of MinClassSize << i bytes.
const (
	MinClassSize = 16
	NumClasses   = 9 // 16 .. 4096
	// BlockSize is the super-heap block unit handed to per-thread heaps
	// (scaled down from the paper's 4 MB to suit the virtual arena).
	BlockSize = 64 << 10
	// HeaderSize precedes each object payload; CanarySize follows the
	// payload slack so that every object has at least one guarded byte run.
	HeaderSize = 8
	CanarySize = 8
	// CanaryByte is the known value whose corruption is incontrovertible
	// evidence of an overflow (§4.1, after StackGuard).
	CanaryByte = 0xCA
	// QuarantineFill is how many leading payload bytes of a freed object are
	// canary-filled while quarantined (§4.2, 128 bytes as in the paper).
	QuarantineFill = 128
)

// ClassSize returns the payload capacity of class c.
func ClassSize(c int) int64 { return MinClassSize << c }

// classFor maps a request to its size class, or -1 for large objects.
func classFor(size int64) int {
	for c := 0; c < NumClasses; c++ {
		if size <= ClassSize(c) {
			return c
		}
	}
	return -1
}

// slotSize is the arena footprint of one object of class c.
func slotSize(c int) int64 { return HeaderSize + ClassSize(c) + CanarySize }

// Object describes one live or quarantined allocation.
type Object struct {
	Addr  uint64 // payload address
	Size  int64  // requested size
	Class int    // -1 for large objects
	Slot  int64  // total slot footprint
	Tid   int32  // allocating thread
}

// CanaryRange returns the guarded byte range of the object: the slack
// between the requested size and the end of the slot (including the trailing
// canary word).
func (o Object) CanaryRange() (addr uint64, n int64) {
	payloadCap := o.Slot - HeaderSize - CanarySize
	return o.Addr + uint64(o.Size), payloadCap - o.Size + CanarySize
}

// Violation reports corrupted canaries discovered by a scan.
type Violation struct {
	Object  Object
	Addrs   []uint64 // corrupted byte addresses (capped at mem.MaxWatchpoints)
	UseFree bool     // true: use-after-free; false: buffer overflow
}

func (v Violation) String() string {
	kind := "buffer overflow"
	if v.UseFree {
		kind = "use-after-free"
	}
	addrs := make([]string, len(v.Addrs))
	for i, a := range v.Addrs {
		addrs[i] = fmt.Sprintf("%#x", a)
	}
	return fmt.Sprintf("%s: object %#x (size %d), corrupted at [%s]",
		kind, v.Object.Addr, v.Object.Size, strings.Join(addrs, " "))
}

// Allocator is implemented by both the deterministic heap and the baseline.
type Allocator interface {
	// Malloc allocates size bytes for thread tid; returns 0 on exhaustion.
	Malloc(tid int32, size int64) uint64
	// Calloc allocates zeroed memory.
	Calloc(tid int32, n, size int64) uint64
	// Free releases the object at addr on behalf of tid.
	Free(tid int32, addr uint64) error
	// Lookup returns metadata for a live object.
	Lookup(addr uint64) (Object, bool)
	// Snapshot captures allocator metadata at an epoch boundary.
	Snapshot() AllocSnapshot
	// Restore rewinds allocator metadata to a snapshot (rollback).
	Restore(AllocSnapshot)
}

// AllocSnapshot is an opaque allocator checkpoint.
type AllocSnapshot interface{}

// Deterministic is the iReplayer allocator.
type Deterministic struct {
	mem  *mem.Memory
	base uint64
	size int64

	// fetchGate wraps every super-heap block fetch; the runtime injects a
	// function that acquires the recorded super-heap pseudo-lock so that
	// fetch order is replayed identically (§2.2.4). The default runs f
	// directly.
	fetchGate func(tid int32, f func())
	// fetchMu serializes the super-heap bump pointer itself; the recorded
	// gate additionally fixes the order across executions.
	fetchMu sync.Mutex

	superNext int64 // bump offset of the next unfetched block

	// heaps is indexed by thread ID; each entry is touched only by its
	// owning thread (the per-thread-heap property), so no lock is needed on
	// the allocation fast path.
	heaps []*threadHeap

	// metaMu guards the cross-thread bookkeeping (live objects, quarantine);
	// this metadata never influences layout, so the lock does not reintroduce
	// allocation-order nondeterminism.
	metaMu sync.Mutex
	live   map[uint64]Object

	// Detection substrate.
	canaries       bool
	quarantine     bool
	quarantineByte int64 // per-thread quarantine budget in bytes
	onViolation    func(Violation)
	quarantined    map[int32]*quarList
}

type threadHeap struct {
	// For each class: current block bump state and free list.
	bump   [NumClasses]bumpState
	free   [NumClasses][]uint64 // LIFO of slot addresses (header addresses)
	nAlloc int64
	nFree  int64
}

type bumpState struct {
	addr uint64 // next slot address within the current block
	left int64  // bytes remaining in the current block
}

type quarList struct {
	objs  []Object
	total int64
}

// NewDeterministic builds the iReplayer allocator over the heap arena of m.
func NewDeterministic(m *mem.Memory) *Deterministic {
	base, size := m.HeapRange()
	return &Deterministic{
		mem:         m,
		base:        base,
		size:        size,
		fetchGate:   func(_ int32, f func()) { f() },
		heaps:       make([]*threadHeap, m.Config().MaxThreads),
		live:        make(map[uint64]Object),
		quarantined: make(map[int32]*quarList),
	}
}

// SetFetchGate injects the recorded-lock wrapper for super-heap fetches.
func (d *Deterministic) SetFetchGate(gate func(tid int32, f func())) { d.fetchGate = gate }

// EnableCanaries turns on overflow canaries (§4.1).
func (d *Deterministic) EnableCanaries() { d.canaries = true }

// EnableQuarantine turns on use-after-free quarantine with the given
// per-thread byte budget (§4.2).
func (d *Deterministic) EnableQuarantine(budget int64) {
	d.quarantine = true
	d.quarantineByte = budget
}

// SetViolationHandler receives violations found when quarantined objects are
// checked on release.
func (d *Deterministic) SetViolationHandler(fn func(Violation)) { d.onViolation = fn }

// AssignHeap creates tid's private heap. The runtime calls it under the
// recorded thread-creation lock, making heap assignment deterministic; a
// fresh heap is never shared with any other live thread.
func (d *Deterministic) AssignHeap(tid int32) {
	if int(tid) >= len(d.heaps) {
		return
	}
	if d.heaps[tid] == nil {
		d.heaps[tid] = &threadHeap{}
	}
}

// fetchBlock obtains n contiguous bytes from the super heap under the fetch
// gate. Returns 0 when the arena is exhausted.
func (d *Deterministic) fetchBlock(tid int32, n int64) uint64 {
	var addr uint64
	d.fetchGate(tid, func() {
		d.fetchMu.Lock()
		if d.superNext+n <= d.size {
			addr = d.base + uint64(d.superNext)
			d.superNext += n
		}
		d.fetchMu.Unlock()
	})
	return addr
}

// Malloc implements Allocator.
func (d *Deterministic) Malloc(tid int32, size int64) uint64 {
	if size <= 0 {
		size = 1
	}
	if int(tid) >= len(d.heaps) {
		return 0
	}
	th := d.heaps[tid]
	if th == nil {
		d.AssignHeap(tid)
		th = d.heaps[tid]
	}
	c := classFor(size)
	var slotAddr uint64
	var slot int64
	if c >= 0 {
		slot = slotSize(c)
		if n := len(th.free[c]); n > 0 {
			// Reuse from this thread's free list, LIFO (§2.2.4: head of list).
			slotAddr = th.free[c][n-1]
			th.free[c] = th.free[c][:n-1]
		} else {
			bs := &th.bump[c]
			if bs.left < slot {
				blk := d.fetchBlock(tid, BlockSize)
				if blk == 0 {
					return 0
				}
				bs.addr, bs.left = blk, BlockSize
			}
			slotAddr = bs.addr
			bs.addr += uint64(slot)
			bs.left -= slot
		}
	} else {
		// Large object: whole blocks straight from the super heap; the fetch
		// gate orders it deterministically.
		slot = HeaderSize + size + CanarySize
		slot = (slot + BlockSize - 1) &^ (BlockSize - 1)
		slotAddr = d.fetchBlock(tid, slot)
		if slotAddr == 0 {
			return 0
		}
	}
	obj := Object{Addr: slotAddr + HeaderSize, Size: size, Class: c, Slot: slot, Tid: tid}
	d.metaMu.Lock()
	d.live[obj.Addr] = obj
	d.metaMu.Unlock()
	th.nAlloc++
	if d.canaries {
		a, n := obj.CanaryRange()
		d.mem.Memset(a, CanaryByte, int(n))
	}
	return obj.Addr
}

// Calloc implements Allocator.
func (d *Deterministic) Calloc(tid int32, n, size int64) uint64 {
	total := n * size
	addr := d.Malloc(tid, total)
	if addr != 0 {
		d.mem.Memset(addr, 0, int(total))
	}
	return addr
}

// Free implements Allocator. With quarantine enabled, the object is canary-
// filled and parked on the freeing thread's quarantine list; otherwise it is
// pushed to the freeing thread's free list immediately (§2.2.4: frees are
// owned by the current thread regardless of the allocating thread).
func (d *Deterministic) Free(tid int32, addr uint64) error {
	if int(tid) >= len(d.heaps) {
		return fmt.Errorf("heap: free from invalid thread %d", tid)
	}
	d.metaMu.Lock()
	obj, ok := d.live[addr]
	if !ok {
		d.metaMu.Unlock()
		return fmt.Errorf("heap: free of untracked address %#x (double free or wild free)", addr)
	}
	delete(d.live, addr)
	d.metaMu.Unlock()
	th := d.heaps[tid]
	if th == nil {
		d.AssignHeap(tid)
		th = d.heaps[tid]
	}
	th.nFree++
	if d.quarantine {
		fill := obj.Size
		if fill > QuarantineFill {
			fill = QuarantineFill
		}
		d.mem.Memset(obj.Addr, CanaryByte, int(fill))
		d.metaMu.Lock()
		q := d.quarantined[tid]
		if q == nil {
			q = &quarList{}
			d.quarantined[tid] = q
		}
		q.objs = append(q.objs, obj)
		q.total += obj.Slot
		var evicted []Object
		for q.total > d.quarantineByte && len(q.objs) > 0 {
			victim := q.objs[0]
			q.objs = q.objs[1:]
			q.total -= victim.Slot
			evicted = append(evicted, victim)
		}
		d.metaMu.Unlock()
		for _, victim := range evicted {
			if v, bad := d.checkQuarantined(victim); bad && d.onViolation != nil {
				d.onViolation(v)
			}
			d.release(tid, victim)
		}
		return nil
	}
	d.release(tid, obj)
	return nil
}

func (d *Deterministic) release(tid int32, obj Object) {
	if obj.Class >= 0 {
		th := d.heaps[tid]
		th.free[obj.Class] = append(th.free[obj.Class], obj.Addr-HeaderSize)
	}
	// Large objects are not reused in this scaled-down allocator; the arena
	// is sized for the workloads.
}

// Lookup implements Allocator.
func (d *Deterministic) Lookup(addr uint64) (Object, bool) {
	d.metaMu.Lock()
	defer d.metaMu.Unlock()
	o, ok := d.live[addr]
	return o, ok
}

// LiveObjects returns every live allocation sorted by payload address — the
// allocator-state half of a leak diff: a live object that no reachability
// scan of the address space can find is leaked.
func (d *Deterministic) LiveObjects() []Object {
	d.metaMu.Lock()
	out := make([]Object, 0, len(d.live))
	for _, o := range d.live {
		out = append(out, o)
	}
	d.metaMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Stats returns (allocs, frees) per thread for diagnostics.
func (d *Deterministic) Stats(tid int32) (allocs, frees int64) {
	if th := d.heaps[tid]; th != nil {
		return th.nAlloc, th.nFree
	}
	return 0, 0
}

// checkQuarantined verifies the canary fill of a quarantined object.
func (d *Deterministic) checkQuarantined(obj Object) (Violation, bool) {
	fill := obj.Size
	if fill > QuarantineFill {
		fill = QuarantineFill
	}
	b, err := d.mem.ReadBytes(obj.Addr, int(fill))
	if err != nil {
		return Violation{}, false
	}
	var bad []uint64
	for i, v := range b {
		if v != CanaryByte {
			bad = append(bad, obj.Addr+uint64(i))
			if len(bad) >= mem.MaxWatchpoints {
				break
			}
		}
	}
	if len(bad) == 0 {
		return Violation{}, false
	}
	return Violation{Object: obj, Addrs: bad, UseFree: true}, true
}

// ScanCanaries checks every live object's slack canaries (epoch-end overflow
// detection, §4.1) and every quarantined object's payload fill (§4.2).
func (d *Deterministic) ScanCanaries() []Violation {
	var out []Violation
	if d.canaries {
		// Deterministic iteration order for reporting.
		d.metaMu.Lock()
		objs := make(map[uint64]Object, len(d.live))
		addrs := make([]uint64, 0, len(d.live))
		for a, o := range d.live {
			addrs = append(addrs, a)
			objs[a] = o
		}
		d.metaMu.Unlock()
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		for _, a := range addrs {
			obj := objs[a]
			ca, cn := obj.CanaryRange()
			b, err := d.mem.ReadBytes(ca, int(cn))
			if err != nil {
				continue
			}
			var bad []uint64
			for i, v := range b {
				if v != CanaryByte {
					bad = append(bad, ca+uint64(i))
					if len(bad) >= mem.MaxWatchpoints {
						break
					}
				}
			}
			if len(bad) > 0 {
				out = append(out, Violation{Object: obj, Addrs: bad})
			}
		}
	}
	if d.quarantine {
		d.metaMu.Lock()
		var all []Object
		tids := make([]int32, 0, len(d.quarantined))
		for t := range d.quarantined {
			tids = append(tids, t)
		}
		sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
		for _, t := range tids {
			all = append(all, d.quarantined[t].objs...)
		}
		d.metaMu.Unlock()
		for _, obj := range all {
			if v, bad := d.checkQuarantined(obj); bad {
				out = append(out, v)
			}
		}
	}
	return out
}

// detSnapshot is Deterministic's checkpoint. Allocator metadata lives on the
// Go side (not in VM memory), so rollback must rewind it explicitly; the
// paper gets this for free because its allocator state is inside the copied
// writable memory.
type detSnapshot struct {
	superNext   int64
	heaps       []*threadHeap
	live        map[uint64]Object
	quarantined map[int32]*quarList
}

// Snapshot implements Allocator. Callers snapshot only at epoch boundaries
// when every thread is quiescent.
func (d *Deterministic) Snapshot() AllocSnapshot {
	d.metaMu.Lock()
	defer d.metaMu.Unlock()
	s := &detSnapshot{
		superNext:   d.superNext,
		heaps:       make([]*threadHeap, len(d.heaps)),
		live:        make(map[uint64]Object, len(d.live)),
		quarantined: make(map[int32]*quarList, len(d.quarantined)),
	}
	for t, th := range d.heaps {
		if th == nil {
			continue
		}
		cp := &threadHeap{bump: th.bump, nAlloc: th.nAlloc, nFree: th.nFree}
		for c := range th.free {
			cp.free[c] = append([]uint64(nil), th.free[c]...)
		}
		s.heaps[t] = cp
	}
	for a, o := range d.live {
		s.live[a] = o
	}
	for t, q := range d.quarantined {
		s.quarantined[t] = &quarList{objs: append([]Object(nil), q.objs...), total: q.total}
	}
	return s
}

// Restore implements Allocator.
func (d *Deterministic) Restore(snap AllocSnapshot) {
	s := snap.(*detSnapshot)
	d.metaMu.Lock()
	defer d.metaMu.Unlock()
	d.superNext = s.superNext
	for t := range d.heaps {
		d.heaps[t] = nil
	}
	for t, th := range s.heaps {
		if th == nil {
			continue
		}
		cp := &threadHeap{bump: th.bump, nAlloc: th.nAlloc, nFree: th.nFree}
		for c := range th.free {
			cp.free[c] = append([]uint64(nil), th.free[c]...)
		}
		d.heaps[t] = cp
	}
	d.live = make(map[uint64]Object, len(s.live))
	for a, o := range s.live {
		d.live[a] = o
	}
	d.quarantined = make(map[int32]*quarList, len(s.quarantined))
	for t, q := range s.quarantined {
		d.quarantined[t] = &quarList{objs: append([]Object(nil), q.objs...), total: q.total}
	}
}
