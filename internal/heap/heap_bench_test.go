package heap

import (
	"testing"

	"repro/internal/mem"
)

// The §5.3 allocator story in microcosm: the deterministic per-thread heap
// takes no lock per allocation, while the libc-like baseline pays a global
// lock each time — which is why "IR-Alloc" comes out slightly *faster* than
// the default allocator in Table 3.
func BenchmarkDeterministicMallocFree(b *testing.B) {
	m := mem.New(mem.DefaultConfig())
	d := NewDeterministic(m)
	d.AssignHeap(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := d.Malloc(0, 64)
		if a == 0 {
			b.Fatal("oom")
		}
		d.Free(0, a)
	}
}

func BenchmarkLibCMallocFree(b *testing.B) {
	m := mem.New(mem.DefaultConfig())
	l := NewLibC(m, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := l.Malloc(0, 64)
		if a == 0 {
			b.Fatal("oom")
		}
		l.Free(0, a)
	}
}

// Canary maintenance cost: what §4.1's always-on overflow detection adds to
// each allocation.
func BenchmarkDeterministicMallocWithCanaries(b *testing.B) {
	m := mem.New(mem.DefaultConfig())
	d := NewDeterministic(m)
	d.EnableCanaries()
	d.AssignHeap(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := d.Malloc(0, 64)
		d.Free(0, a)
	}
}

func BenchmarkSnapshotRestore(b *testing.B) {
	m := mem.New(mem.DefaultConfig())
	d := NewDeterministic(m)
	d.AssignHeap(0)
	for i := 0; i < 1000; i++ {
		d.Malloc(0, 64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := d.Snapshot()
		d.Restore(s)
	}
}
