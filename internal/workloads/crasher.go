package workloads

import (
	"repro/internal/tir"
)

// CrasherSpec tunes the §5.2.1 Crasher program: a synthetic race in which
// one thread nulls a shared pointer while another dereferences it. The
// original [Machado, Lucia & Rodrigues, PLDI 2015] places sleeps to make the
// crash likely (82.6% of 100,000 runs in the paper); the delays below play
// the same role.
type CrasherSpec struct {
	// NullerDelayUS is the corruptor's sleep before nulling the pointer.
	NullerDelayUS int
	// ReaderDelayUS is the victim's sleep before dereferencing.
	ReaderDelayUS int
}

// DefaultCrasher biases the race toward crashing, like the original: the
// nuller usually reaches the shared pointer well before the reader, but
// goroutine start-up jitter leaves a real losing tail.
func DefaultCrasher() CrasherSpec {
	return CrasherSpec{NullerDelayUS: 30, ReaderDelayUS: 250}
}

// Build synthesizes Crasher. Thread "nuller" stores NULL into the shared
// pointer cell without synchronization; thread "reader" loads the pointer
// and dereferences it. When the nuller wins the race the reader faults —
// the SIGSEGV that iReplayer's replay must reproduce (Table 2).
func (c CrasherSpec) Build() *tir.Module {
	mb := tir.NewModuleBuilder()
	gPtr := mb.Global("shared_ptr", 8)

	nuller := mb.Func("nuller", 1)
	{
		pa, z, d := nuller.NewReg(), nuller.NewReg(), nuller.NewReg()
		nuller.ConstI(d, int64(c.NullerDelayUS))
		nuller.Intrin(-1, tir.IntrinUsleep, d)
		nuller.GlobalAddr(pa, gPtr)
		nuller.ConstI(z, 0)
		nuller.Store64(z, pa, 0) // unsynchronized write: the race
		nuller.Ret(-1)
		nuller.Seal()
	}

	reader := mb.Func("reader", 1)
	{
		pa, p, v, d := reader.NewReg(), reader.NewReg(), reader.NewReg(), reader.NewReg()
		reader.ConstI(d, int64(c.ReaderDelayUS))
		reader.Intrin(-1, tir.IntrinUsleep, d)
		reader.GlobalAddr(pa, gPtr)
		reader.Load64(p, pa, 0) // unsynchronized read: the race
		reader.Load64(v, p, 0)  // faults when p was nulled
		reader.Ret(v)
		reader.Seal()
	}

	m := mb.Func("main", 0)
	{
		sz, p, pa := m.NewReg(), m.NewReg(), m.NewReg()
		m.ConstI(sz, 64)
		m.Intrin(p, tir.IntrinMalloc, sz)
		v := m.NewReg()
		m.ConstI(v, 0x1234)
		m.Store64(v, p, 0)
		m.GlobalAddr(pa, gPtr)
		m.Store64(p, pa, 0)
		fnr, argr, t1, t2 := m.NewReg(), m.NewReg(), m.NewReg(), m.NewReg()
		m.ConstI(argr, 0)
		m.ConstI(fnr, int64(nuller.Index()))
		m.Intrin(t1, tir.IntrinThreadCreate, fnr, argr)
		m.ConstI(fnr, int64(reader.Index()))
		m.Intrin(t2, tir.IntrinThreadCreate, fnr, argr)
		m.Intrin(-1, tir.IntrinThreadJoin, t1)
		r := m.NewReg()
		m.Intrin(r, tir.IntrinThreadJoin, t2)
		m.Ret(r)
		m.Seal()
	}
	mb.SetEntry("main")
	return mb.MustBuild()
}
