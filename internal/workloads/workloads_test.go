package workloads

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/hostrace"
	"repro/internal/interp"
	"repro/internal/mem"
	"repro/internal/tir"
)

func TestAllAppsBuildAndValidate(t *testing.T) {
	for _, s := range Apps() {
		mod, err := s.Build()
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if err := tir.Validate(mod); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
	}
	if len(Apps()) != 15 {
		t.Fatalf("apps = %d, want the paper's 15", len(Apps()))
	}
}

func TestByNameStrict(t *testing.T) {
	// Every listed name — ablation variants included — must resolve.
	for _, name := range Names() {
		if _, err := ByNameStrict(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	// A miss lists every known name, so front ends all print the same
	// actionable hint (irdb's exit-2 convention).
	_, err := ByNameStrict("nosuchapp")
	if err == nil {
		t.Fatal("expected error for unknown app")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error omits known app %s: %v", name, err)
		}
	}
}

func runApp(t *testing.T, s Spec, opts core.Options) (*core.Runtime, *core.Report) {
	t.Helper()
	mod, err := s.Build()
	if err != nil {
		t.Fatalf("%s: %v", s.Name, err)
	}
	rt, err := core.New(mod, opts)
	if err != nil {
		t.Fatalf("%s: %v", s.Name, err)
	}
	s.SetupOS(rt.OS())
	rep, err := rt.Run()
	if err != nil {
		t.Fatalf("%s: %v", s.Name, err)
	}
	return rt, rep
}

func TestAppsRunUnderRecording(t *testing.T) {
	for _, s := range Apps() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			sm := s
			sm.Iters = sm.Iters / 4
			if sm.Iters < 4 {
				sm.Iters = 4
			}
			_, rep := runApp(t, sm, core.Options{})
			if rep.Stats.Epochs < 1 {
				t.Fatalf("stats = %+v", rep.Stats)
			}
		})
	}
}

func TestAppIdenticalReplayExceptCanneal(t *testing.T) {
	// §5.2: every application replays identically except canneal, whose ad
	// hoc atomic synchronization is invisible to the recorder. The mutex
	// ablation fixes it.
	cases := []string{"fluidanimate", "dedup", "canneal-mutex"}
	for _, name := range cases {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			s, ok := ByName(name)
			if !ok {
				t.Fatalf("unknown app %s", name)
			}
			s.Iters = 12
			var img1, img2 []byte
			opts := core.Options{
				MaxReplays:        400,
				DelayOnDivergence: true,
				OnEpochEnd: func(rt *core.Runtime, info core.EpochEndInfo) core.Decision {
					if info.Reason == core.StopProgramEnd && img1 == nil {
						img1 = rt.Mem().HeapImage()
						return core.Replay
					}
					return core.Proceed
				},
				OnReplayMatched: func(rt *core.Runtime, attempts int) core.Decision {
					img2 = rt.Mem().HeapImage()
					return core.Proceed
				},
			}
			_, _ = runApp(t, s, opts)
			if img1 == nil || img2 == nil {
				t.Fatal("replay did not complete")
			}
			if d := mem.DiffBytes(img1, img2); d != 0 {
				t.Fatalf("%s: %d bytes differ after matched replay", name, d)
			}
		})
	}
}

//ir:racy Crasher's data race and its occasional crash are the property under test
func TestCrasherCrashesSometimes(t *testing.T) {
	if hostrace.Enabled {
		t.Skip("Crasher races on VM memory by design (§5.2.1)")
	}
	crashes := 0
	runs := 20
	for i := 0; i < runs; i++ {
		rt, err := core.New(DefaultCrasher().Build(), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Run(); err != nil {
			var trap *interp.Trap
			if !errors.As(err, &trap) {
				t.Fatalf("unexpected error type: %v", err)
			}
			crashes++
		}
	}
	if crashes == 0 {
		t.Fatal("the race never fired; delays need retuning")
	}
	t.Logf("crasher crashed %d/%d runs", crashes, runs)
}

//ir:racy reproduces Crasher's race via the replay divergence search
func TestCrasherRaceReproducedByReplaySearch(t *testing.T) {
	if hostrace.Enabled {
		t.Skip("Crasher races on VM memory by design (§5.2.1)")
	}
	// Table 2's protocol: when the crash occurs, replay until the schedule
	// matches (the fault reproduces); count attempts.
	reproduced := false
	var attemptsUsed int
	opts := core.Options{
		MaxReplays:        2000,
		DelayOnDivergence: true,
		OnEpochEnd: func(rt *core.Runtime, info core.EpochEndInfo) core.Decision {
			if info.Reason == core.StopFault && !reproduced {
				return core.Replay
			}
			return core.Proceed
		},
		OnReplayMatched: func(rt *core.Runtime, attempts int) core.Decision {
			reproduced = true
			attemptsUsed = attempts
			return core.Proceed
		},
	}
	// Find a crashing run first.
	for i := 0; i < 50 && !reproduced; i++ {
		rt, err := core.New(DefaultCrasher().Build(), opts)
		if err != nil {
			t.Fatal(err)
		}
		_, runErr := rt.Run()
		if runErr != nil && !reproduced {
			t.Fatalf("crash occurred but was not reproduced: %v", runErr)
		}
	}
	if !reproduced {
		t.Skip("race never fired in 50 runs")
	}
	t.Logf("race reproduced after %d replay attempt(s)", attemptsUsed)
}

func TestBugCorpusAllDetectedWithCorrectSite(t *testing.T) {
	for _, b := range Corpus() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			d := detect.New(detect.Config{Overflow: true, UseAfterFree: true})
			rt, err := core.New(b.Build(), d.Options())
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Attach(rt); err != nil {
				t.Fatal(err)
			}
			if _, err := rt.Run(); err != nil {
				t.Fatal(err)
			}
			rep := d.Report()
			if len(rep.Violations) == 0 {
				t.Fatalf("%s: bug not detected", b.Name)
			}
			wantUAF := b.Kind == BugUseAfterFree
			if rep.Violations[0].UseFree != wantUAF {
				t.Fatalf("%s: kind = UAF:%v, want UAF:%v", b.Name, rep.Violations[0].UseFree, wantUAF)
			}
			if len(rep.RootCauses) == 0 || len(rep.RootCauses[0].Hits) == 0 {
				t.Fatalf("%s: no root cause", b.Name)
			}
			if got := rep.RootCauses[0].Hits[0].Stack[0].Func; got != b.Site {
				t.Fatalf("%s: blamed %q, want %q", b.Name, got, b.Site)
			}
		})
	}
}

func TestImplantOverflowTriggersDetector(t *testing.T) {
	s, _ := ByName("swaptions")
	s.Iters = 5
	mod, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	buggy := ImplantOverflow(mod)
	if err := tir.Validate(buggy); err != nil {
		t.Fatalf("implanted module invalid: %v", err)
	}
	d := detect.New(detect.Config{Overflow: true})
	rt, err := core.New(buggy, d.Options())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Attach(rt); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	rep := d.Report()
	if len(rep.Violations) == 0 {
		t.Fatal("implanted overflow not detected")
	}
}
