// Package workloads synthesizes the evaluation's applications as TIR
// programs: the nine PARSEC 2.1 benchmarks and six real applications of
// §5.1, the Crasher race program of §5.2.1, and the §5.4.1 bug corpus.
//
// Each application is a parameterization of a common generator whose knobs
// mirror the behaviour that drives the paper's numbers: lock rate
// (fluidanimate's 54M acquisitions/second), branch density (x264's 9.1×
// CLAP overhead), allocation churn (dedup), socket and file IO (aget,
// memcached), barriers (streamcluster), condition variables (bodytrack),
// trylocks, and "library" work that instrumentation passes cannot see
// (pbzip2's libbz2 compression, modeled with memcpy intrinsics). Absolute
// magnitudes are scaled to laptop-size runs; the *ratios* between runtime
// configurations are what the benchmark harness reproduces.
package workloads

import (
	"fmt"

	"repro/internal/tir"
	"repro/internal/vsys"
)

// Spec parameterizes one synthesized application.
type Spec struct {
	Name    string
	Threads int
	// Iters is the per-thread outer loop count.
	Iters int
	// CPUBranchy is the per-iteration count of branchy integer work
	// (odd/even branches) — expensive under CLAP path profiling.
	CPUBranchy int
	// CPUFloat is the per-iteration count of floating-point work (straight
	// line) — expensive everywhere but cheap to instrument.
	CPUFloat int
	// LibraryWork is per-iteration bytes of memcpy "library" work invisible
	// to instrumentation passes (the pbzip2 profile).
	LibraryWork int
	// Locks is the number of recorded lock/unlock pairs per iteration.
	Locks int
	// LockStride spreads lock traffic over this many distinct mutexes.
	LockStride int
	// WritesPerLock is the number of shared heap stores inside each
	// critical section — what ASan's write instrumentation pays for.
	WritesPerLock int
	// TryLocks per iteration (recorded results).
	TryLocks int
	// Allocs is malloc/free pairs per iteration.
	Allocs int
	// AllocSize is the allocation request size.
	AllocSize int64
	// FileIO is bytes of file read per iteration (revocable syscalls).
	FileIO int
	// SocketIO is bytes of socket read per iteration (recordable syscalls).
	SocketIO int
	// TimeCalls is gettimeofday queries per iteration (recordable).
	TimeCalls int
	// ThinkTime is microseconds of per-iteration usleep — the request
	// latency / backend-wait profile of the modeled servers (aget, apache,
	// memcached block on network and disk far longer than they compute).
	// Replay re-executes the sleep, so a think-time recording's replay wall
	// is latency-bound, which is exactly what segment-parallel replay
	// overlaps. Zero (the default, and every standard app profile) leaves
	// timing untouched.
	ThinkTime int
	// BarrierEvery makes every thread wait at a shared barrier each N
	// iterations (0 disables).
	BarrierEvery int
	// CondVar adds a producer/consumer handoff every iteration for thread 0
	// (producer) and thread 1 (consumer) when at least 2 threads exist.
	CondVar bool
	// Atomics is per-iteration ad hoc synchronization (atomic CAS pointer
	// swaps) — the canneal profile that breaks identical replay (§5.2).
	Atomics int
	// WorkingSet is the bytes of live, heap-resident data the application
	// maintains (split across threads). Real applications keep their data in
	// the heap, which is what makes Table 1's heap-image diff meaningful:
	// under the default allocator, ASLR and allocation racing move this data
	// between runs.
	WorkingSet int64
}

// Build synthesizes the TIR module for s.
func (s Spec) Build() (*tir.Module, error) {
	if s.Threads < 1 {
		return nil, fmt.Errorf("workloads: %s needs at least one thread", s.Name)
	}
	mb := tir.NewModuleBuilder()

	nMutex := s.LockStride
	if nMutex < 1 {
		nMutex = 1
	}
	gMutexes := make([]int, nMutex)
	for i := range gMutexes {
		gMutexes[i] = mb.Global(fmt.Sprintf("mutex%d", i), 8)
	}
	gShared := mb.Global("shared", 8*int64(nMutex))
	gBarrier := mb.Global("barrier", 8)
	gCondM := mb.Global("condm", 8)
	gCond := mb.Global("cond", 8)
	gTokens := mb.Global("tokens", 8)
	gAtomic := mb.Global("atomiccell", 16)
	// One scratch slot per thread (IO buffers, library-work copies): real
	// applications use private buffers for these, and a shared slot would
	// manufacture data races the modeled programs do not have.
	gScratch := mb.Global("scratch", scratchSlot*int64(s.Threads))
	gPath := mb.GlobalInit("path", 32, []byte(s.Name+".dat"))
	pathLen := len(s.Name) + 4

	worker := s.buildWorker(mb, workerGlobals{
		mutexes: gMutexes, shared: gShared, barrier: gBarrier,
		condM: gCondM, cond: gCond, tokens: gTokens,
		atomic: gAtomic, scratch: gScratch, path: gPath, pathLen: pathLen,
	})

	m := mb.Func("main", 0)
	if s.BarrierEvery > 0 {
		ba, n := m.NewReg(), m.NewReg()
		m.GlobalAddr(ba, gBarrier)
		m.ConstI(n, int64(s.Threads))
		m.Intrin(-1, tir.IntrinBarrierInit, ba, n)
	}
	fnr, argr := m.NewReg(), m.NewReg()
	m.ConstI(fnr, int64(worker))
	tids := make([]tir.Reg, s.Threads)
	for i := 0; i < s.Threads; i++ {
		tids[i] = m.NewReg()
		m.ConstI(argr, int64(i))
		m.Intrin(tids[i], tir.IntrinThreadCreate, fnr, argr)
	}
	sum := m.NewReg()
	m.ConstI(sum, 0)
	for i := 0; i < s.Threads; i++ {
		r := m.NewReg()
		m.Intrin(r, tir.IntrinThreadJoin, tids[i])
		m.Bin(tir.Add, sum, sum, r)
	}
	m.Ret(sum)
	m.Seal()
	mb.SetEntry("main")
	return mb.Build()
}

type workerGlobals struct {
	mutexes []int
	shared  int
	barrier int
	condM   int
	cond    int
	tokens  int
	atomic  int
	scratch int
	path    int
	pathLen int
}

// scratchSlot is each thread's private scratch region: big enough for the
// largest library-work copy (source at offset 0, destination at half-slot)
// and any IO read the specs issue.
const scratchSlot = 8192

// buildWorker emits the per-thread loop body.
func (s Spec) buildWorker(mb *tir.ModuleBuilder, g workerGlobals) int {
	fb := mb.Func("worker", 1)
	self := fb.Param(0)

	acc := fb.NewReg()
	fb.ConstI(acc, 0)
	one := fb.NewReg()
	fb.ConstI(one, 1)

	// This thread's scratch slot: scratch + self*scratchSlot.
	scr := fb.NewReg()
	{
		sh, off := fb.NewReg(), fb.NewReg()
		fb.GlobalAddr(scr, g.scratch)
		fb.ConstI(sh, 13) // log2(scratchSlot)
		fb.Bin(tir.Shl, off, self, sh)
		fb.Bin(tir.Add, scr, scr, off)
	}

	// Live heap-resident working set: allocated once per thread, written
	// every iteration, never freed (see Spec.WorkingSet).
	ws := fb.NewReg()
	wsSize := s.WorkingSet / int64(s.Threads)
	if wsSize > 0 {
		szr, fill := fb.NewReg(), fb.NewReg()
		fb.ConstI(szr, wsSize)
		fb.Intrin(ws, tir.IntrinMalloc, szr)
		// Initialize the data structure; real applications populate their
		// heaps, which is what the Table 1 image diff observes.
		fb.ConstI(fill, 0x42)
		fb.Intrin(-1, tir.IntrinMemset, ws, fill, szr)
	}

	// Per-thread file descriptor for file IO.
	fd := fb.NewReg()
	if s.FileIO > 0 {
		pa, pl := fb.NewReg(), fb.NewReg()
		fb.GlobalAddr(pa, g.path)
		fb.ConstI(pl, int64(g.pathLen))
		fb.Syscall(fd, vsys.SysOpen, pa, pl)
	}
	sock := fb.NewReg()
	if s.SocketIO > 0 {
		fb.Syscall(sock, vsys.SysSocket)
	}

	i, lim, cond := fb.NewReg(), fb.NewReg(), fb.NewReg()
	fb.ConstI(i, 0)
	fb.ConstI(lim, int64(s.Iters))
	loop, done := fb.NewLabel(), fb.NewLabel()
	fb.Bind(loop)
	fb.Bin(tir.LtS, cond, i, lim)
	fb.Brz(cond, done)

	// --- branchy integer CPU work (drives CLAP cost) ---
	if s.CPUBranchy > 0 {
		j, jl, jc, t := fb.NewReg(), fb.NewReg(), fb.NewReg(), fb.NewReg()
		fb.ConstI(j, 0)
		fb.ConstI(jl, int64(s.CPUBranchy))
		jLoop, jDone, jOdd, jNext := fb.NewLabel(), fb.NewLabel(), fb.NewLabel(), fb.NewLabel()
		fb.Bind(jLoop)
		fb.Bin(tir.LtS, jc, j, jl)
		fb.Brz(jc, jDone)
		fb.Bin(tir.And, t, j, one)
		fb.Br(t, jOdd)
		fb.Bin(tir.Add, acc, acc, j)
		fb.Jmp(jNext)
		fb.Bind(jOdd)
		fb.Bin(tir.Xor, acc, acc, j)
		fb.Bind(jNext)
		fb.AddI(j, j, 1)
		fb.Jmp(jLoop)
		fb.Bind(jDone)
	}

	// --- floating point work (blackscholes/swaptions profile) ---
	if s.CPUFloat > 0 {
		f, finc, k, kl, kc := fb.NewReg(), fb.NewReg(), fb.NewReg(), fb.NewReg(), fb.NewReg()
		fb.ConstI(f, 4607182418800017408) // bits of 1.0
		fb.ConstI(finc, 4607632778762754458)
		fb.ConstI(k, 0)
		fb.ConstI(kl, int64(s.CPUFloat))
		kLoop, kDone := fb.NewLabel(), fb.NewLabel()
		fb.Bind(kLoop)
		fb.Bin(tir.LtS, kc, k, kl)
		fb.Brz(kc, kDone)
		fb.Bin(tir.FMul, f, f, finc)
		fb.Emit(tir.Instr{Op: tir.FSqrt, A: f, B: f})
		fb.Bin(tir.FAdd, f, f, finc)
		fb.AddI(k, k, 1)
		fb.Jmp(kLoop)
		fb.Bind(kDone)
		fi := fb.NewReg()
		fb.Emit(tir.Instr{Op: tir.FtoI, A: fi, B: f})
		fb.Bin(tir.Add, acc, acc, fi)
	}

	// --- uninstrumented library work (pbzip2 profile) ---
	if s.LibraryWork > 0 {
		dst, n := fb.NewReg(), fb.NewReg()
		fb.AddI(dst, scr, scratchSlot/2)
		fb.ConstI(n, int64(s.LibraryWork))
		fb.Intrin(-1, tir.IntrinMemcpy, dst, scr, n)
		fb.Intrin(-1, tir.IntrinMemcpy, scr, dst, n)
	}

	// --- recorded lock traffic ---
	if s.Locks > 0 {
		ma, sa, v := fb.NewReg(), fb.NewReg(), fb.NewReg()
		idx, off := fb.NewReg(), fb.NewReg()
		for l := 0; l < s.Locks; l++ {
			// mutex index = (self + l) % stride, resolved at run time so
			// threads spread across the lock set.
			fb.AddI(idx, self, int64(l))
			str := fb.NewReg()
			fb.ConstI(str, int64(len(g.mutexes)))
			fb.Bin(tir.Rem, idx, idx, str)
			base := fb.NewReg()
			fb.GlobalAddr(base, g.mutexes[0])
			sh := fb.NewReg()
			fb.ConstI(sh, 3)
			fb.Bin(tir.Shl, off, idx, sh)
			// Mutex globals are laid out consecutively 8-byte aligned, so
			// mutex i lives at mutex0 + 8i.
			fb.Bin(tir.Add, ma, base, off)
			fb.Intrin(-1, tir.IntrinMutexLock, ma)
			fb.GlobalAddr(sa, g.shared)
			fb.Bin(tir.Add, sa, sa, off)
			for wr := 0; wr < s.WritesPerLock; wr++ {
				fb.Load64(v, sa, 0)
				fb.Bin(tir.Add, v, v, one)
				fb.Store64(v, sa, 0)
			}
			fb.Intrin(-1, tir.IntrinMutexUnlock, ma)
		}
	}

	// --- trylocks ---
	if s.TryLocks > 0 {
		ma, got := fb.NewReg(), fb.NewReg()
		fb.GlobalAddr(ma, g.mutexes[0])
		for l := 0; l < s.TryLocks; l++ {
			fb.Intrin(got, tir.IntrinMutexTryLock, ma)
			skip := fb.NewLabel()
			fb.Brz(got, skip)
			fb.Bin(tir.Add, acc, acc, one)
			fb.Intrin(-1, tir.IntrinMutexUnlock, ma)
			fb.Bind(skip)
		}
	}

	// --- allocation churn ---
	if s.Allocs > 0 {
		sz, p := fb.NewReg(), fb.NewReg()
		for a := 0; a < s.Allocs; a++ {
			fb.ConstI(sz, s.AllocSize+int64(a%4)*16)
			fb.Intrin(p, tir.IntrinMalloc, sz)
			fb.Store64(i, p, 0)
			fb.Intrin(-1, tir.IntrinFree, p)
		}
	}

	// --- file IO (revocable) ---
	if s.FileIO > 0 {
		buf, n, want := fb.NewReg(), fb.NewReg(), fb.NewReg()
		fb.Mov(buf, scr)
		fb.ConstI(want, int64(s.FileIO))
		fb.Syscall(n, vsys.SysRead, fd, buf, want)
		reopen := fb.NewLabel()
		fb.Brz(n, reopen)
		fb.Bin(tir.Add, acc, acc, n)
		cont := fb.NewLabel()
		fb.Jmp(cont)
		fb.Bind(reopen)
		// EOF: rewind via position query + reread pattern is irrevocable;
		// simply stop reading (file sized to cover the run).
		fb.Bind(cont)
	}

	// --- socket IO (recordable) ---
	if s.SocketIO > 0 {
		buf, n, want := fb.NewReg(), fb.NewReg(), fb.NewReg()
		fb.Mov(buf, scr)
		fb.ConstI(want, int64(s.SocketIO))
		fb.Syscall(n, vsys.SysRead, sock, buf, want)
		fb.Bin(tir.Add, acc, acc, n)
		fb.Syscall(-1, vsys.SysWrite, sock, buf, want)
	}

	// --- time queries (recordable) ---
	if s.TimeCalls > 0 {
		tv := fb.NewReg()
		for q := 0; q < s.TimeCalls; q++ {
			fb.Syscall(tv, vsys.SysGettimeofday)
			fb.Bin(tir.Xor, acc, acc, tv)
		}
	}

	// --- request latency / backend wait (server profile) ---
	if s.ThinkTime > 0 {
		us := fb.NewReg()
		fb.ConstI(us, int64(s.ThinkTime))
		fb.Intrin(-1, tir.IntrinUsleep, us)
	}

	// --- ad hoc synchronization (canneal profile) ---
	if s.Atomics > 0 {
		ca, old, nw, ok := fb.NewReg(), fb.NewReg(), fb.NewReg(), fb.NewReg()
		fb.GlobalAddr(ca, g.atomic)
		for a := 0; a < s.Atomics; a++ {
			fb.Intrin(old, tir.IntrinAtomicLoad, ca)
			fb.Bin(tir.Add, nw, old, one)
			fb.Intrin(ok, tir.IntrinAtomicCAS, ca, old, nw)
			fb.Bin(tir.Add, acc, acc, ok)
		}
	}

	// --- condition-variable handoff (bodytrack profile) ---
	if s.CondVar && s.Threads >= 2 {
		ma, ca, ta, v := fb.NewReg(), fb.NewReg(), fb.NewReg(), fb.NewReg()
		fb.GlobalAddr(ma, g.condM)
		fb.GlobalAddr(ca, g.cond)
		fb.GlobalAddr(ta, g.tokens)
		isProd, isCons := fb.NewReg(), fb.NewReg()
		zero := fb.NewReg()
		fb.ConstI(zero, 0)
		fb.Bin(tir.Eq, isProd, self, zero)
		fb.ConstI(v, 1)
		fb.Bin(tir.Eq, isCons, self, v)
		notProd := fb.NewLabel()
		afterCV := fb.NewLabel()
		fb.Brz(isProd, notProd)
		// producer: token++ and signal
		fb.Intrin(-1, tir.IntrinMutexLock, ma)
		fb.Load64(v, ta, 0)
		fb.Bin(tir.Add, v, v, one)
		fb.Store64(v, ta, 0)
		fb.Intrin(-1, tir.IntrinCondSignal, ca)
		fb.Intrin(-1, tir.IntrinMutexUnlock, ma)
		fb.Jmp(afterCV)
		fb.Bind(notProd)
		fb.Brz(isCons, afterCV)
		// consumer: wait for a token
		fb.Intrin(-1, tir.IntrinMutexLock, ma)
		waitLoop, gotTok := fb.NewLabel(), fb.NewLabel()
		fb.Bind(waitLoop)
		fb.Load64(v, ta, 0)
		fb.Br(v, gotTok)
		fb.Intrin(-1, tir.IntrinCondWait, ca, ma)
		fb.Jmp(waitLoop)
		fb.Bind(gotTok)
		fb.Bin(tir.Sub, v, v, one)
		fb.Store64(v, ta, 0)
		fb.Intrin(-1, tir.IntrinMutexUnlock, ma)
		fb.Bind(afterCV)
	}

	// --- working-set writes: scatter this iteration's result through the
	// live heap buffer ---
	if wsSize >= 64 {
		slot, off := fb.NewReg(), fb.NewReg()
		stride := fb.NewReg()
		fb.ConstI(stride, (wsSize-8)/8)
		fb.Bin(tir.Rem, off, i, stride)
		three := fb.NewReg()
		fb.ConstI(three, 3)
		fb.Bin(tir.Shl, off, off, three)
		fb.Bin(tir.Add, slot, ws, off)
		fb.Store64(acc, slot, 0)
	}

	// --- barrier phase (streamcluster profile) ---
	if s.BarrierEvery > 0 {
		be, rem := fb.NewReg(), fb.NewReg()
		fb.ConstI(be, int64(s.BarrierEvery))
		fb.Bin(tir.Rem, rem, i, be)
		skipBar := fb.NewLabel()
		fb.Br(rem, skipBar)
		ba := fb.NewReg()
		fb.GlobalAddr(ba, g.barrier)
		fb.Intrin(-1, tir.IntrinBarrierWait, ba)
		fb.Bind(skipBar)
	}

	fb.Bin(tir.Add, i, i, one)
	fb.Jmp(loop)
	fb.Bind(done)
	// Publish the thread's accumulator into a live heap object so the final
	// heap image reflects every thread's computed result: this is what makes
	// Table 1's diff meaningful (racy outcomes — canneal's ad hoc
	// synchronization — surface as differing heap bytes).
	pub, psz := fb.NewReg(), fb.NewReg()
	fb.ConstI(psz, 32)
	fb.Intrin(pub, tir.IntrinMalloc, psz)
	fb.Store64(acc, pub, 0)
	fb.Store64(i, pub, 8)
	fb.Ret(acc)
	fb.Seal()
	return fb.Index()
}

// SetupOS installs the input files the workload reads.
func (s Spec) SetupOS(os *vsys.OS) {
	if s.FileIO > 0 {
		// Size the file so reads never hit EOF across all iterations.
		n := s.FileIO*s.Iters + 4096
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i*31 + 7)
		}
		os.AddFile(s.Name+".dat", data)
	}
}
