package workloads

import "repro/internal/tir"

// BugKind classifies a corpus entry.
type BugKind int

const (
	// BugOverflow is a heap buffer overflow.
	BugOverflow BugKind = iota
	// BugUseAfterFree is a write through a dangling pointer.
	BugUseAfterFree
)

// Bug is one entry of the §5.4.1 detection-effectiveness corpus: known heap
// overflows and use-after-frees collected from Bugbench, Bugzilla, and prior
// tools (bc, bzip2, gzip, libHX, polymorph, memcached, libtiff). Each entry
// models the published bug's shape — buffer size, overrun length, and the
// faulting function's identity — so the detector's root-cause report can be
// checked against the known site.
type Bug struct {
	Name string
	Kind BugKind
	// Site is the function the detector must blame.
	Site string
	// BufSize / Overrun describe the object and the overflow extent.
	BufSize int64
	Overrun int64
}

// Corpus returns the evaluated bug set.
func Corpus() []Bug {
	return []Bug{
		// bc-1.06: more_arrays() under-allocates the array vector and the
		// interpreter writes one slot past it (Bugbench).
		{Name: "bc-1.06", Kind: BugOverflow, Site: "more_arrays", BufSize: 32, Overrun: 8},
		// bzip2recover: block file-name buffer overflow (Red Hat #226979).
		{Name: "bzip2recover", Kind: BugOverflow, Site: "writeBlockFileName", BufSize: 40, Overrun: 6},
		// gzip-1.2.4: strcpy of a long path into a fixed 1024-byte name
		// buffer (scaled).
		{Name: "gzip-1.2.4", Kind: BugOverflow, Site: "get_suffix_copy", BufSize: 64, Overrun: 12},
		// libHX: HXdeque_genocide writes past the reallocated vector.
		{Name: "libHX", Kind: BugOverflow, Site: "deque_genocide", BufSize: 48, Overrun: 8},
		// polymorph: command-line filename into a fixed buffer.
		{Name: "polymorph", Kind: BugOverflow, Site: "convert_filename", BufSize: 24, Overrun: 10},
		// memcached SASL authentication overflow (TALOS-2016-0221).
		{Name: "memcached-sasl", Kind: BugOverflow, Site: "sasl_auth_copy", BufSize: 80, Overrun: 16},
		// libtiff gif2tiff: readgifimage() heap overflow (MapTools #2451).
		{Name: "libtiff-gif2tiff", Kind: BugOverflow, Site: "readgifimage", BufSize: 56, Overrun: 9},
		// Use-after-free companions exercising the quarantine detector.
		{Name: "uaf-cache-evict", Kind: BugUseAfterFree, Site: "touch_evicted_entry", BufSize: 64},
		{Name: "uaf-double-consumer", Kind: BugUseAfterFree, Site: "consume_stale_buffer", BufSize: 128},
	}
}

// Build synthesizes the buggy program: main allocates the victim object and
// calls the bug-site function, which corrupts it exactly as the entry
// describes.
func (b Bug) Build() *tir.Module {
	mb := tir.NewModuleBuilder()

	site := mb.Func(b.Site, 1)
	switch b.Kind {
	case BugOverflow:
		p := site.Param(0)
		v, i, lim, cond, a := site.NewReg(), site.NewReg(), site.NewReg(), site.NewReg(), site.NewReg()
		site.ConstI(v, 0x41)
		site.ConstI(i, 0)
		site.ConstI(lim, b.BufSize+b.Overrun)
		loop, done := site.NewLabel(), site.NewLabel()
		site.Bind(loop)
		site.Bin(tir.LtS, cond, i, lim)
		site.Brz(cond, done)
		site.Bin(tir.Add, a, p, i)
		site.Store8(v, a, 0)
		site.AddI(i, i, 1)
		site.Jmp(loop)
		site.Bind(done)
		site.Ret(-1)
	case BugUseAfterFree:
		v := site.NewReg()
		site.ConstI(v, 0xDEAD)
		site.Store64(v, site.Param(0), 0)
		site.Ret(-1)
	}
	site.Seal()

	m := mb.Func("main", 0)
	sz, p := m.NewReg(), m.NewReg()
	m.ConstI(sz, b.BufSize)
	m.Intrin(p, tir.IntrinMalloc, sz)
	if b.Kind == BugUseAfterFree {
		m.Intrin(-1, tir.IntrinFree, p)
	}
	m.Call(-1, site.Index(), p)
	m.Ret(-1)
	m.Seal()
	mb.SetEntry("main")
	return mb.MustBuild()
}

// ImplantOverflow returns a copy of mod whose main gains a one-byte heap
// overflow immediately before returning — the §5.2 validation methodology
// ("we manually implanted a buffer overflow error in the end of main routine
// for every program") that triggers the Table 1 re-execution.
func ImplantOverflow(mod *tir.Module) *tir.Module {
	out := &tir.Module{
		Funcs:   make([]*tir.Function, len(mod.Funcs)),
		Globals: append([]tir.Global(nil), mod.Globals...),
		Entry:   mod.Entry,
	}
	for i, f := range mod.Funcs {
		cp := *f
		cp.Code = append([]tir.Instr(nil), f.Code...)
		out.Funcs[i] = &cp
	}
	f := out.Funcs[out.Entry]
	// Rewrite every Ret of main into a jump to an epilogue that mallocs,
	// overflows by one byte, and then returns.
	epilogue := len(f.Code)
	szReg := int32(f.NumRegs)
	pReg := szReg + 1
	vReg := szReg + 2
	f.NumRegs += 3
	// Our generated mains return through a single Ret whose value register
	// stays live; redirect it to the epilogue and return from there.
	var lastRetA int32 = -1
	for pc := range f.Code {
		if f.Code[pc].Op == tir.Ret {
			lastRetA = f.Code[pc].A
			f.Code[pc] = tir.Instr{Op: tir.Jmp, Imm: int64(epilogue)}
		}
	}
	f.Code = append(f.Code,
		tir.Instr{Op: tir.ConstI, A: szReg, Imm: 24},
		tir.Instr{Op: tir.Intrin, A: pReg, B: szReg, C: 1, Imm: tir.IntrinMalloc},
		tir.Instr{Op: tir.ConstI, A: vReg, Imm: 0x7F},
		tir.Instr{Op: tir.Store8, A: vReg, B: pReg, Imm: 24}, // one past the end
		tir.Instr{Op: tir.Ret, A: lastRetA},
	)
	return out
}
