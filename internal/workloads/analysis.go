package workloads

// The ground-truth corpus for the replay-time analysis subsystem
// (internal/analysis): small programs whose racing pairs and leak sites are
// known by construction, so the analyzers can be held to "every known
// defect blamed, zero findings on the clean controls".
//
// The racy programs race only on *data*: their control flow and
// synchronization sequences are deterministic, so a recorded trace replays
// on the first attempt and the analyzers see the whole execution. (A race
// that altered the synchronization order would surface as replay divergence
// instead — the §5.2 signal the analysis subsystem exists to sharpen.)

import (
	"repro/internal/tir"
)

// AnalysisCase is one ground-truth corpus entry.
type AnalysisCase struct {
	Name string
	// RacePairs lists the racing function pairs (innermost frames of both
	// sides) the race analyzer must blame; empty means the program is
	// race-free and the analyzer must stay silent.
	RacePairs [][2]string
	// Leaks is the expected number of leaked objects; LeakSites the
	// allocation-site functions the leak analyzer must blame.
	Leaks     int
	LeakSites []string
	// Build synthesizes the program.
	Build func() *tir.Module
}

// AnalysisCorpus returns the ground-truth corpus: three racy programs with
// known pairs, three race-free controls, two leaky programs with known
// sites, and one leak-free control.
func AnalysisCorpus() []AnalysisCase {
	return []AnalysisCase{
		{
			// Two threads increment a shared global without a lock: the
			// classic lost-update write/write race (plus the read halves).
			Name:      "race-counter",
			RacePairs: [][2]string{{"racy_inc_a", "racy_inc_b"}},
			Build:     buildRaceCounter,
		},
		{
			// Two threads write the same cell of a heap object published
			// through a global before thread creation: the create edge
			// orders the publication, nothing orders the writes.
			Name:      "race-heap",
			RacePairs: [][2]string{{"heap_writer_a", "heap_writer_b"}},
			Build:     buildRaceHeap,
		},
		{
			// One writer, one reader, no synchronization at all.
			Name:      "race-rw",
			RacePairs: [][2]string{{"rw_writer", "rw_reader"}},
			Build:     buildRaceRW,
		},
		{
			// The same increments as race-counter, under a mutex: the
			// release→acquire edges order every access.
			Name:  "norace-locked",
			Build: buildNoraceLocked,
		},
		{
			// Parent and child write the same cell, ordered end to end by
			// the create and join edges.
			Name:  "norace-create-join",
			Build: buildNoraceCreateJoin,
		},
		{
			// Ad hoc synchronization: concurrent atomic increments. Atomics
			// are synchronization, not race candidates.
			Name:  "norace-atomic",
			Build: buildNoraceAtomic,
		},
		{
			// Four allocations whose pointers are dropped on the floor, next
			// to a published allocation and a freed one.
			Name:      "leak-dropped",
			Leaks:     4,
			LeakSites: []string{"leak_loop"},
			Build:     buildLeakDropped,
		},
		{
			// A cache slot overwritten without freeing the old entry: the
			// first allocation becomes unreachable.
			Name:      "leak-overwrite",
			Leaks:     1,
			LeakSites: []string{"make_cache_entry"},
			Build:     buildLeakOverwrite,
		},
		{
			// Everything freed or still published: the leak analyzer must
			// stay silent.
			Name:  "noleak-freed",
			Build: buildNoleakFreed,
		},
	}
}

// AnalysisByName returns the named corpus entry.
func AnalysisByName(name string) (AnalysisCase, bool) {
	for _, c := range AnalysisCorpus() {
		if c.Name == name {
			return c, true
		}
	}
	return AnalysisCase{}, false
}

// AnalysisNames lists the corpus entries in declaration order.
func AnalysisNames() []string {
	cs := AnalysisCorpus()
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.Name
	}
	return out
}

// emitTwoThreadMain emits a main that spawns fnA and fnB (one arg each,
// ignored), joins both, and returns 0 — deterministic output regardless of
// how the workers raced.
func emitTwoThreadMain(mb *tir.ModuleBuilder, fnA, fnB int) {
	m := mb.Func("main", 0)
	fnr, argr := m.NewReg(), m.NewReg()
	m.ConstI(fnr, int64(fnA))
	m.ConstI(argr, 0)
	t1 := m.NewReg()
	m.Intrin(t1, tir.IntrinThreadCreate, fnr, argr)
	m.ConstI(fnr, int64(fnB))
	t2 := m.NewReg()
	m.Intrin(t2, tir.IntrinThreadCreate, fnr, argr)
	r := m.NewReg()
	m.Intrin(r, tir.IntrinThreadJoin, t1)
	m.Intrin(r, tir.IntrinThreadJoin, t2)
	m.Ret(-1)
	m.Seal()
	mb.SetEntry("main")
}

// emitCellLoop emits a worker that runs `iters` load/add/store rounds on the
// global cell gi.
func emitCellLoop(mb *tir.ModuleBuilder, name string, gi, iters int) int {
	fb := mb.Func(name, 1)
	a, v, i, lim, cond := fb.NewReg(), fb.NewReg(), fb.NewReg(), fb.NewReg(), fb.NewReg()
	fb.GlobalAddr(a, gi)
	fb.ConstI(i, 0)
	fb.ConstI(lim, int64(iters))
	loop, done := fb.NewLabel(), fb.NewLabel()
	fb.Bind(loop)
	fb.Bin(tir.LtS, cond, i, lim)
	fb.Brz(cond, done)
	fb.Load64(v, a, 0)
	fb.AddI(v, v, 1)
	fb.Store64(v, a, 0)
	fb.AddI(i, i, 1)
	fb.Jmp(loop)
	fb.Bind(done)
	fb.Ret(-1)
	fb.Seal()
	return fb.Index()
}

func buildRaceCounter() *tir.Module {
	mb := tir.NewModuleBuilder()
	gC := mb.Global("counter", 8)
	a := emitCellLoop(mb, "racy_inc_a", gC, 40)
	b := emitCellLoop(mb, "racy_inc_b", gC, 40)
	emitTwoThreadMain(mb, a, b)
	return mb.MustBuild()
}

func buildRaceHeap() *tir.Module {
	mb := tir.NewModuleBuilder()
	gSlot := mb.Global("slot", 8)

	writer := func(name string) int {
		fb := mb.Func(name, 1)
		sa, p, v, i, lim, cond := fb.NewReg(), fb.NewReg(), fb.NewReg(), fb.NewReg(), fb.NewReg(), fb.NewReg()
		fb.GlobalAddr(sa, gSlot)
		fb.Load64(p, sa, 0) // ordered before us by the create edge
		fb.ConstI(i, 0)
		fb.ConstI(lim, 24)
		loop, done := fb.NewLabel(), fb.NewLabel()
		fb.Bind(loop)
		fb.Bin(tir.LtS, cond, i, lim)
		fb.Brz(cond, done)
		fb.Bin(tir.Add, v, i, i)
		fb.Store64(v, p, 8) // the racing cell
		fb.AddI(i, i, 1)
		fb.Jmp(loop)
		fb.Bind(done)
		fb.Ret(-1)
		fb.Seal()
		return fb.Index()
	}
	a := writer("heap_writer_a")
	b := writer("heap_writer_b")

	m := mb.Func("main", 0)
	sz, p, sa := m.NewReg(), m.NewReg(), m.NewReg()
	m.ConstI(sz, 64)
	m.Intrin(p, tir.IntrinMalloc, sz)
	m.GlobalAddr(sa, gSlot)
	m.Store64(p, sa, 0) // publish before creating the writers
	fnr, argr := m.NewReg(), m.NewReg()
	m.ConstI(fnr, int64(a))
	m.ConstI(argr, 0)
	t1 := m.NewReg()
	m.Intrin(t1, tir.IntrinThreadCreate, fnr, argr)
	m.ConstI(fnr, int64(b))
	t2 := m.NewReg()
	m.Intrin(t2, tir.IntrinThreadCreate, fnr, argr)
	r := m.NewReg()
	m.Intrin(r, tir.IntrinThreadJoin, t1)
	m.Intrin(r, tir.IntrinThreadJoin, t2)
	m.Intrin(-1, tir.IntrinFree, p)
	m.Ret(-1)
	m.Seal()
	mb.SetEntry("main")
	return mb.MustBuild()
}

func buildRaceRW() *tir.Module {
	mb := tir.NewModuleBuilder()
	gC := mb.Global("cell", 8)

	w := mb.Func("rw_writer", 1)
	{
		a, i, lim, cond := w.NewReg(), w.NewReg(), w.NewReg(), w.NewReg()
		w.GlobalAddr(a, gC)
		w.ConstI(i, 0)
		w.ConstI(lim, 30)
		loop, done := w.NewLabel(), w.NewLabel()
		w.Bind(loop)
		w.Bin(tir.LtS, cond, i, lim)
		w.Brz(cond, done)
		w.Store64(i, a, 0)
		w.AddI(i, i, 1)
		w.Jmp(loop)
		w.Bind(done)
		w.Ret(-1)
		w.Seal()
	}
	r := mb.Func("rw_reader", 1)
	{
		a, v, acc, i, lim, cond := r.NewReg(), r.NewReg(), r.NewReg(), r.NewReg(), r.NewReg(), r.NewReg()
		r.GlobalAddr(a, gC)
		r.ConstI(acc, 0)
		r.ConstI(i, 0)
		r.ConstI(lim, 30)
		loop, done := r.NewLabel(), r.NewLabel()
		r.Bind(loop)
		r.Bin(tir.LtS, cond, i, lim)
		r.Brz(cond, done)
		r.Load64(v, a, 0)
		r.Bin(tir.Add, acc, acc, v)
		r.AddI(i, i, 1)
		r.Jmp(loop)
		r.Bind(done)
		r.Ret(-1) // the racy sum must not influence observable output
		r.Seal()
	}
	emitTwoThreadMain(mb, w.Index(), r.Index())
	return mb.MustBuild()
}

func buildNoraceLocked() *tir.Module {
	mb := tir.NewModuleBuilder()
	gM := mb.Global("mutex", 8)
	gC := mb.Global("counter", 8)

	worker := func(name string) int {
		fb := mb.Func(name, 1)
		ma, ca, v, i, lim, cond := fb.NewReg(), fb.NewReg(), fb.NewReg(), fb.NewReg(), fb.NewReg(), fb.NewReg()
		fb.GlobalAddr(ma, gM)
		fb.GlobalAddr(ca, gC)
		fb.ConstI(i, 0)
		fb.ConstI(lim, 40)
		loop, done := fb.NewLabel(), fb.NewLabel()
		fb.Bind(loop)
		fb.Bin(tir.LtS, cond, i, lim)
		fb.Brz(cond, done)
		fb.Intrin(-1, tir.IntrinMutexLock, ma)
		fb.Load64(v, ca, 0)
		fb.AddI(v, v, 1)
		fb.Store64(v, ca, 0)
		fb.Intrin(-1, tir.IntrinMutexUnlock, ma)
		fb.AddI(i, i, 1)
		fb.Jmp(loop)
		fb.Bind(done)
		fb.Ret(-1)
		fb.Seal()
		return fb.Index()
	}
	a := worker("locked_inc_a")
	b := worker("locked_inc_b")
	emitTwoThreadMain(mb, a, b)
	return mb.MustBuild()
}

func buildNoraceCreateJoin() *tir.Module {
	mb := tir.NewModuleBuilder()
	gC := mb.Global("cell", 8)

	child := mb.Func("child_writer", 1)
	{
		a, v := child.NewReg(), child.NewReg()
		child.GlobalAddr(a, gC)
		child.Load64(v, a, 0)
		child.AddI(v, v, 7)
		child.Store64(v, a, 0)
		child.Ret(-1)
		child.Seal()
	}

	m := mb.Func("main", 0)
	a, v := m.NewReg(), m.NewReg()
	m.GlobalAddr(a, gC)
	m.ConstI(v, 1)
	m.Store64(v, a, 0) // before the create edge
	fnr, argr := m.NewReg(), m.NewReg()
	m.ConstI(fnr, int64(child.Index()))
	m.ConstI(argr, 0)
	t1 := m.NewReg()
	m.Intrin(t1, tir.IntrinThreadCreate, fnr, argr)
	r := m.NewReg()
	m.Intrin(r, tir.IntrinThreadJoin, t1)
	m.Load64(v, a, 0) // after the join edge
	m.AddI(v, v, 1)
	m.Store64(v, a, 0)
	m.Ret(-1)
	m.Seal()
	mb.SetEntry("main")
	return mb.MustBuild()
}

func buildNoraceAtomic() *tir.Module {
	mb := tir.NewModuleBuilder()
	gA := mb.Global("acell", 8)

	worker := func(name string) int {
		fb := mb.Func(name, 1)
		a, one, v, i, lim, cond := fb.NewReg(), fb.NewReg(), fb.NewReg(), fb.NewReg(), fb.NewReg(), fb.NewReg()
		fb.GlobalAddr(a, gA)
		fb.ConstI(one, 1)
		fb.ConstI(i, 0)
		fb.ConstI(lim, 30)
		loop, done := fb.NewLabel(), fb.NewLabel()
		fb.Bind(loop)
		fb.Bin(tir.LtS, cond, i, lim)
		fb.Brz(cond, done)
		fb.Intrin(v, tir.IntrinAtomicAdd, a, one)
		fb.AddI(i, i, 1)
		fb.Jmp(loop)
		fb.Bind(done)
		fb.Ret(-1)
		fb.Seal()
		return fb.Index()
	}
	a := worker("atomic_inc_a")
	b := worker("atomic_inc_b")
	emitTwoThreadMain(mb, a, b)
	return mb.MustBuild()
}

func buildLeakDropped() *tir.Module {
	mb := tir.NewModuleBuilder()
	gKeep := mb.Global("keepslot", 8)

	leak := mb.Func("leak_loop", 0)
	{
		sz, p, i, lim, cond := leak.NewReg(), leak.NewReg(), leak.NewReg(), leak.NewReg(), leak.NewReg()
		leak.ConstI(i, 0)
		leak.ConstI(lim, 4)
		loop, done := leak.NewLabel(), leak.NewLabel()
		leak.Bind(loop)
		leak.Bin(tir.LtS, cond, i, lim)
		leak.Brz(cond, done)
		leak.ConstI(sz, 48)
		leak.Intrin(p, tir.IntrinMalloc, sz)
		leak.Store64(i, p, 0) // touch it, then drop the only pointer
		leak.AddI(i, i, 1)
		leak.Jmp(loop)
		leak.Bind(done)
		leak.Ret(-1)
		leak.Seal()
	}
	keep := mb.Func("keep_alive", 0)
	{
		sz, p, a := keep.NewReg(), keep.NewReg(), keep.NewReg()
		keep.ConstI(sz, 64)
		keep.Intrin(p, tir.IntrinMalloc, sz)
		keep.GlobalAddr(a, gKeep)
		keep.Store64(p, a, 0) // published: reachable, not a leak
		keep.Ret(-1)
		keep.Seal()
	}
	freed := mb.Func("freed_pair", 0)
	{
		sz, p := freed.NewReg(), freed.NewReg()
		freed.ConstI(sz, 32)
		freed.Intrin(p, tir.IntrinMalloc, sz)
		freed.Intrin(-1, tir.IntrinFree, p)
		freed.Ret(-1)
		freed.Seal()
	}

	m := mb.Func("main", 0)
	m.Call(-1, keep.Index())
	m.Call(-1, freed.Index())
	m.Call(-1, leak.Index())
	m.Ret(-1)
	m.Seal()
	mb.SetEntry("main")
	return mb.MustBuild()
}

func buildLeakOverwrite() *tir.Module {
	mb := tir.NewModuleBuilder()
	gSlot := mb.Global("cacheslot", 8)

	mk := mb.Func("make_cache_entry", 0)
	{
		sz, p, v := mk.NewReg(), mk.NewReg(), mk.NewReg()
		mk.ConstI(sz, 40)
		mk.Intrin(p, tir.IntrinMalloc, sz)
		mk.ConstI(v, 0x11)
		mk.Store64(v, p, 0)
		mk.Ret(p)
		mk.Seal()
	}

	m := mb.Func("main", 0)
	a, p1, p2 := m.NewReg(), m.NewReg(), m.NewReg()
	m.GlobalAddr(a, gSlot)
	m.Call(p1, mk.Index())
	m.Store64(p1, a, 0)
	m.Call(p2, mk.Index())
	m.Store64(p2, a, 0) // overwrites the only pointer to p1's entry
	m.Ret(-1)
	m.Seal()
	mb.SetEntry("main")
	return mb.MustBuild()
}

func buildNoleakFreed() *tir.Module {
	mb := tir.NewModuleBuilder()
	gSlot := mb.Global("slot", 8)

	m := mb.Func("main", 0)
	a, sz, p1, p2 := m.NewReg(), m.NewReg(), m.NewReg(), m.NewReg()
	m.GlobalAddr(a, gSlot)
	m.ConstI(sz, 64)
	m.Intrin(p1, tir.IntrinMalloc, sz)
	m.Store64(p1, a, 0) // published for the whole run
	m.ConstI(sz, 128)
	m.Intrin(p2, tir.IntrinMalloc, sz)
	m.Store64(sz, p2, 0)
	m.Intrin(-1, tir.IntrinFree, p2)
	m.Ret(-1)
	m.Seal()
	mb.SetEntry("main")
	return mb.MustBuild()
}
