package workloads

import (
	"fmt"
	"strings"
)

// The fifteen evaluated applications of §5.1 (PARSEC 2.1 with native-input
// character, plus the six real applications), scaled to laptop-size runs.
// Comments note the behavioural signature each models and the evaluation
// number it drives.

// Apps returns the Table 1/3 application list in the paper's column order.
func Apps() []Spec {
	return []Spec{
		{
			// blackscholes: data-parallel option pricing; almost pure
			// floating-point compute, one barrier per round, negligible
			// locking. IR ≈ 1.02, CLAP ≈ 1.11, RR ≈ 8× (paper).
			Name: "blackscholes", Threads: 4, Iters: 60, WorkingSet: 32 << 10,
			CPUFloat: 2500, BarrierEvery: 10, Locks: 1, LockStride: 1, WritesPerLock: 1,
		},
		{
			// bodytrack: thread-pool vision pipeline; condition variables
			// drive a known replay divergence (§5.2.1). CLAP fails on it.
			Name: "bodytrack", Threads: 4, Iters: 80, WorkingSet: 100 << 10,
			CPUBranchy: 900, CondVar: true, Locks: 4, LockStride: 2, WritesPerLock: 2,
			Allocs: 2, AllocSize: 96,
		},
		{
			// canneal: simulated annealing with ATOMIC pointer swaps — ad
			// hoc synchronization that iReplayer cannot replay identically
			// until atomics are replaced with mutexes (§5.2); see
			// CannealMutex below for the ablation.
			Name: "canneal", Threads: 4, Iters: 80, WorkingSet: 512 << 10,
			CPUBranchy: 700, Atomics: 40, Allocs: 3, AllocSize: 64,
			Locks: 1, LockStride: 1, WritesPerLock: 1,
		},
		{
			// dedup: dedup/compression pipeline; allocation-heavy (the
			// paper's allocator avoids its madvise storms: IR-Alloc 0.66).
			Name: "dedup", Threads: 4, Iters: 70, WorkingSet: 300 << 10,
			CPUBranchy: 300, Allocs: 24, AllocSize: 256, Locks: 4, LockStride: 4,
			WritesPerLock: 2, LibraryWork: 512,
		},
		{
			// ferret: similarity search; deep branchy compute per query
			// (CLAP 3.5×) with pipeline locks.
			Name: "ferret", Threads: 4, Iters: 70, WorkingSet: 56 << 10,
			CPUBranchy: 2200, Locks: 6, LockStride: 3, WritesPerLock: 2,
			Allocs: 2, AllocSize: 128,
		},
		{
			// fluidanimate: the lock-rate extreme — tens of millions of
			// fine-grained acquisitions guarding tiny critical sections;
			// recording each one is iReplayer's worst case (1.49×).
			Name: "fluidanimate", Threads: 4, Iters: 60, WorkingSet: 80 << 10,
			CPUBranchy: 60, Locks: 60, LockStride: 16, WritesPerLock: 1,
		},
		{
			// streamcluster: barrier-synchronized clustering rounds with
			// allocation churn (IR overhead dominated by the allocator).
			Name: "streamcluster", Threads: 4, Iters: 90, WorkingSet: 4 << 10,
			CPUBranchy: 800, BarrierEvery: 3, Allocs: 6, AllocSize: 512,
			Locks: 2, LockStride: 2, WritesPerLock: 1,
		},
		{
			// swaptions: Monte-Carlo pricing; pure branchy+float compute,
			// essentially no synchronization (CLAP 2.96× from paths alone).
			Name: "swaptions", Threads: 4, Iters: 60, WorkingSet: 90 << 10,
			CPUBranchy: 1800, CPUFloat: 900,
		},
		{
			// x264: video encoder; the branch-density extreme (CLAP 9.1×)
			// with moderate locking between encoder threads.
			Name: "x264", Threads: 4, Iters: 60, WorkingSet: 280 << 10,
			CPUBranchy: 4200, Locks: 3, LockStride: 2, WritesPerLock: 2,
			Allocs: 1, AllocSize: 1024,
		},
		{
			// aget: parallel HTTP downloader; socket-recv bound, trivial
			// compute — every system hovers near 1× except the data copies.
			Name: "aget", Threads: 4, Iters: 120, WorkingSet: 80 << 10,
			SocketIO: 1024, CPUBranchy: 40, Locks: 1, LockStride: 1, WritesPerLock: 1,
		},
		{
			// apache: worker-model HTTP server answering `ab`; socket IO
			// plus accept-queue locking and time queries for logging.
			Name: "apache", Threads: 4, Iters: 100, WorkingSet: 140 << 10,
			SocketIO: 512, Locks: 4, LockStride: 2, WritesPerLock: 2,
			TimeCalls: 2, CPUBranchy: 150, Allocs: 2, AllocSize: 192,
		},
		{
			// memcached: get/set over sockets with slab-style allocation and
			// per-shard locks.
			Name: "memcached", Threads: 4, Iters: 110, WorkingSet: 48 << 10,
			SocketIO: 256, Locks: 3, LockStride: 4, WritesPerLock: 2,
			Allocs: 3, AllocSize: 128, TimeCalls: 1,
		},
		{
			// pbzip2: parallel compression; the real work happens inside
			// libbz2 — uninstrumented library code — so CLAP/ASan see almost
			// nothing (modeled with memcpy library work), plus file IO.
			Name: "pbzip2", Threads: 4, Iters: 70, WorkingSet: 48 << 10,
			LibraryWork: 3072, FileIO: 512, Locks: 2, LockStride: 2, WritesPerLock: 1,
			Allocs: 2, AllocSize: 2048,
		},
		{
			// pfscan: parallel grep over a large file; file reads plus light
			// scanning.
			Name: "pfscan", Threads: 4, Iters: 100, WorkingSet: 56 << 10,
			FileIO: 1024, CPUBranchy: 250, Locks: 1, LockStride: 1, WritesPerLock: 1,
		},
		{
			// sqlite: threadtest3-style workload; lock-protected B-tree
			// updates with branchy compute and journal IO.
			Name: "sqlite", Threads: 4, Iters: 80, WorkingSet: 120 << 10,
			CPUBranchy: 1100, Locks: 8, LockStride: 2, WritesPerLock: 3,
			FileIO: 128, Allocs: 4, AllocSize: 160, TryLocks: 2,
		},
	}
}

// ablations are the named spec variants that exist alongside the Table 1/3
// applications; ByName and Names both derive from this table, so a new
// variant shows up in every command-line usage listing automatically.
var ablations = []struct {
	name  string
	build func() Spec
}{
	{"canneal-mutex", CannealMutex},
	{"relay-service", RelayService},
}

// Names lists every spec name ByName resolves, in Apps order with the
// ablation variants appended — the single source for command-line usage
// listings.
func Names() []string {
	apps := Apps()
	out := make([]string, 0, len(apps)+len(ablations))
	for _, s := range apps {
		out = append(out, s.Name)
	}
	for _, a := range ablations {
		out = append(out, a.name)
	}
	return out
}

// Known reports whether name resolves to any recordable program: an
// application spec (ByName, including ablation variants) or an
// analysis-corpus entry (AnalysisByName).
func Known(name string) bool {
	if _, ok := ByName(name); ok {
		return true
	}
	_, ok := AnalysisByName(name)
	return ok
}

// ByNameStrict resolves name like ByName but a miss returns a usage-style
// error listing every known spec name — the same hint irdb prints on its
// exit-2 path — so every front end surfaces the same actionable diagnostic.
func ByNameStrict(name string) (Spec, error) {
	if s, ok := ByName(name); ok {
		return s, nil
	}
	return Spec{}, fmt.Errorf("unknown app %q; known apps: %s",
		name, strings.Join(Names(), ", "))
}

// ByName returns the named application spec.
func ByName(name string) (Spec, bool) {
	for _, a := range ablations {
		if a.name == name {
			return a.build(), true
		}
	}
	return appByName(name)
}

// appByName searches only the base application list (no variants).
func appByName(name string) (Spec, bool) {
	for _, s := range Apps() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// RelayService is the latency-profile variant behind the segment-replay and
// trace-service benchmarks: a think-time-dominated request loop (1ms of
// usleep per iteration, as in the modeled servers) whose recorded waits
// replay in real time. That makes the wall-clock compression of segment-
// and job-level parallelism visible regardless of host core count — and
// makes its replays run long enough that mid-job cancellation is testable.
func RelayService() Spec {
	return Spec{
		Name: "relay-service", Threads: 4, Iters: 240,
		Locks: 1, LockStride: 4, WritesPerLock: 1,
		TimeCalls: 1, ThinkTime: 1000, WorkingSet: 16 << 10,
	}
}

// CannealMutex is the §5.2 ablation: canneal with every atomic operation
// replaced by mutex-protected updates, after which identical replay holds.
func CannealMutex() Spec {
	s, _ := appByName("canneal")
	s.Name = "canneal-mutex"
	s.Atomics = 0
	s.Locks += 4 // the swaps now take a lock each
	return s
}
