package trace

// Seekable frame compression (format v4) and the store lifecycle: a
// compressed re-encoding must be semantically identical to its raw
// original through every read path (decode, lazy handle slices, keyframe
// folds, whole-trace and segment replay), corrupted compressed frames must
// surface as errors — never panics or unbounded allocations — and Compact
// must preserve replay output and analyzer findings byte for byte while
// shrinking the file. GC enforces age and size retention without ever
// touching a pinned trace.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
)

// reencodeCompressed re-encodes raw trace bytes with per-frame compression.
func reencodeCompressed(t *testing.T, raw []byte) []byte {
	t.Helper()
	tr, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	tr.Header.Compressed = true
	comp, err := Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	return comp
}

// replayStoredTrace replays the named stored trace whole and
// segment-parallel; both must match the recorded oracle.
func replayStoredTrace(t *testing.T, st *Store, name string, specName string, opts core.Options) {
	t.Helper()
	spec := scaledSpec(t, specName, 0.5)
	mod, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	h, err := st.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	job := Job{
		Name: name, Module: mod, Handle: h,
		Opts:  core.Options{Seed: opts.Seed, EventCap: opts.EventCap, DelayOnDivergence: true},
		Setup: func(rt *core.Runtime) error { spec.SetupOS(rt.OS()); return nil },
	}
	results, stats := ReplayBatch([]Job{job}, 1)
	if !results[0].Matched || stats.Matched != 1 {
		t.Fatalf("whole-trace replay of %s did not match: %+v", name, results[0])
	}
	segResults, segStats, err := ReplaySegments(job, 2)
	if err != nil {
		t.Fatalf("segment replay of %s: %v (results %+v)", name, err, segResults)
	}
	if segStats.Failed != 0 || segStats.Matched != segStats.Jobs {
		t.Fatalf("segment replay of %s: %+v", name, segStats)
	}
}

// TestCompressedTraceEquivalent: the compressed re-encoding of a
// checkpointed recording is smaller, actually carries compressed frames,
// and is indistinguishable from the raw original through decode, handle
// slices, checkpoint folds, and both replay paths.
func TestCompressedTraceEquivalent(t *testing.T) {
	spec := scaledSpec(t, "streamcluster", 0.5)
	opts := core.Options{Seed: 9, EventCap: 24}
	raw := recordCheckpointedBytes(t, spec, opts, 2, 2)
	comp := reencodeCompressed(t, raw)
	if len(comp) >= len(raw) {
		t.Fatalf("compression did not shrink the trace: %d -> %d bytes", len(raw), len(comp))
	}
	var nComp int
	for _, s := range frameSpans(t, comp) {
		if s.kind&frameCompressed == 0 {
			continue
		}
		nComp++
		if k := s.kind &^ frameCompressed; k != frameEpoch && k != frameCkpt {
			t.Fatalf("frame kind %d carries the compression bit; only epoch and checkpoint bodies may", k)
		}
	}
	if nComp == 0 {
		t.Fatal("compressed encoding stored no compressed frames")
	}

	want, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(comp)
	if err != nil {
		t.Fatalf("compressed trace failed to decode: %v", err)
	}
	if !reflect.DeepEqual(got.Epochs, want.Epochs) {
		t.Fatal("compressed decode: epochs differ from the raw original")
	}
	if !reflect.DeepEqual(got.Summary, want.Summary) {
		t.Fatalf("compressed decode: summary %+v, want %+v", got.Summary, want.Summary)
	}
	wantStates, err := want.CheckpointStates()
	if err != nil {
		t.Fatal(err)
	}

	// The random-access path: single frames fetch and decompress through the
	// index, and keyframe folds land on the same memory images.
	st := storeWith(t, "cold", comp)
	h, err := st.Open("cold")
	if err != nil {
		t.Fatal(err)
	}
	if !h.Indexed() || !h.Complete() || !h.Header().Compressed {
		t.Fatalf("compressed handle: indexed=%v complete=%v compressed=%v",
			h.Indexed(), h.Complete(), h.Header().Compressed)
	}
	lo, hi := h.EpochRange()
	eps, err := h.Epochs(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(eps, want.Epochs) {
		t.Fatal("handle slice of compressed trace differs from the raw original")
	}
	for _, k := range []int{0, h.NumCheckpoints() - 1} {
		ck, err := h.CheckpointAt(k)
		if err != nil {
			t.Fatalf("CheckpointAt(%d): %v", k, err)
		}
		if ck.Epoch != wantStates[k].Epoch || !ck.Snap.Equal(wantStates[k].Snap) {
			t.Fatalf("compressed checkpoint fold %d differs from the raw original", k)
		}
	}
	h.Close()

	replayStoredTrace(t, st, "cold", "streamcluster", opts)
}

// TestCompressedFrameCorruption: a flipped byte in a compressed frame's
// stored body is caught by the CRC on both the scan and the indexed fetch
// path, and a stored body whose CRC was fixed up still fails strictly at
// the inflate layer — an implausible declared raw size is refused before
// any allocation. Errors, never panics.
func TestCompressedFrameCorruption(t *testing.T) {
	spec := scaledSpec(t, "streamcluster", 0.5)
	raw := recordCheckpointedBytes(t, spec, core.Options{Seed: 9, EventCap: 24}, 2, 2)
	comp := reencodeCompressed(t, raw)

	var ep frameSpan
	for _, s := range frameSpans(t, comp) {
		if s.kind&frameCompressed != 0 {
			ep = s
			break
		}
	}
	if ep.end == 0 {
		t.Fatal("no compressed frame in the corpus")
	}
	n, w := binary.Uvarint(comp[ep.start+1:])
	pstart, pend := ep.start+1+w, ep.end-4
	if int(n) != pend-pstart || pend-pstart < 8 {
		t.Fatalf("malformed corpus span: payload %d bytes", pend-pstart)
	}

	// Flipped stored byte: CRC mismatch on every read path.
	flipped := append([]byte(nil), comp...)
	flipped[pstart+(pend-pstart)/2] ^= 0xff
	if _, err := Decode(flipped); err == nil {
		t.Fatal("flipped compressed body decoded without error")
	}
	st := storeWith(t, "bad", flipped)
	h, err := st.Open("bad")
	if err == nil {
		// The footer is intact, so the damage surfaces on fetch — as an
		// error, not a panic.
		var fetchErr error
		lo, hi := h.EpochRange()
		if _, err := h.Epochs(lo, hi); err != nil {
			fetchErr = err
		}
		for k := 0; k < h.NumCheckpoints(); k++ {
			if _, err := h.CheckpointAt(k); err != nil {
				fetchErr = err
			}
		}
		h.Close()
		if fetchErr == nil {
			t.Fatal("indexed fetch served a flipped compressed frame")
		}
	}

	// CRC fixed up over a lying payload: the declared raw size is
	// implausible, and inflate refuses it before allocating.
	lying := append([]byte(nil), comp...)
	copy(lying[pstart:], []byte{0xff, 0xff, 0xff, 0xff, 0x0f}) // rawLen uvarint ≈ 4 GiB
	binary.LittleEndian.PutUint32(lying[pend:], crc32ieee(lying[pstart:pend]))
	_, err = Decode(lying)
	if err == nil {
		t.Fatal("implausible compressed raw size accepted")
	}
	if !strings.Contains(err.Error(), "implausible") {
		t.Fatalf("implausible raw size surfaced as %v, want the size-bound error", err)
	}
}

// TestCompactEquivalence is the compaction acceptance criterion at the
// trace layer: the rewritten file is smaller and compressed, and replay —
// whole-trace and segment-parallel — still matches the recorded oracle
// byte for byte, over byte-identical epochs and checkpoint images.
func TestCompactEquivalence(t *testing.T) {
	spec := scaledSpec(t, "streamcluster", 0.5)
	opts := core.Options{Seed: 9, EventCap: 24}
	raw := recordCheckpointedBytes(t, spec, opts, 2, 2)
	st := storeWith(t, "sc", raw)
	want, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	wantStates, err := want.CheckpointStates()
	if err != nil {
		t.Fatal(err)
	}

	cs, err := st.Compact("sc", 3)
	if err != nil {
		t.Fatalf("compact: %v", err)
	}
	if cs.OldBytes != int64(len(raw)) || cs.NewBytes >= cs.OldBytes {
		t.Fatalf("compact did not shrink: %+v (recorded %d bytes)", cs, len(raw))
	}
	if cs.Epochs != len(want.Epochs) || cs.Checkpoints != len(wantStates) {
		t.Fatalf("compact stats %+v, want %d epochs / %d checkpoints", cs, len(want.Epochs), len(wantStates))
	}

	h, err := st.Open("sc")
	if err != nil {
		t.Fatal(err)
	}
	if !h.Indexed() || !h.Complete() || !h.Header().Compressed {
		t.Fatalf("compacted handle: indexed=%v complete=%v compressed=%v",
			h.Indexed(), h.Complete(), h.Header().Compressed)
	}
	if !reflect.DeepEqual(h.Summary(), want.Summary) {
		t.Fatalf("compacted summary %+v, want %+v", h.Summary(), want.Summary)
	}
	lo, hi := h.EpochRange()
	eps, err := h.Epochs(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(eps, want.Epochs) {
		t.Fatal("compacted epochs differ from the original recording")
	}
	for k := 0; k < h.NumCheckpoints(); k++ {
		ck, err := h.CheckpointAt(k)
		if err != nil {
			t.Fatalf("CheckpointAt(%d): %v", k, err)
		}
		if ck.Epoch != wantStates[k].Epoch || !ck.Snap.Equal(wantStates[k].Snap) {
			t.Fatalf("compacted checkpoint %d differs from the original fold", k)
		}
	}
	h.Close()

	replayStoredTrace(t, st, "sc", "streamcluster", opts)
}

// TestCompactPreservesFindings: the analyzer verdict on a ground-truth
// corpus trace is byte-identical across compaction.
func TestCompactPreservesFindings(t *testing.T) {
	mod, tr := recordCorpusTrace(t, "leak-dropped")
	b, err := Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	st := storeWith(t, "leak", b)

	analyze := func() []byte {
		h, err := st.Open("leak")
		if err != nil {
			t.Fatal(err)
		}
		defer h.Close()
		results, _ := AnalyzeBatch([]AnalyzeJob{{
			Job: Job{Name: "leak", Module: mod, Handle: h, Opts: core.Options{DelayOnDivergence: true}},
			NewAnalyzers: func() []analysis.Analyzer {
				return []analysis.Analyzer{analysis.NewRaceDetector(), analysis.NewLeakDetector()}
			},
		}}, 1)
		if !results[0].Matched {
			t.Fatalf("analysis did not match: %v", results[0].Err)
		}
		out, err := json.Marshal(results[0].Findings)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	ref := analyze()
	if !strings.Contains(string(ref), "memory-leak") {
		t.Fatalf("corpus trace produced no leak finding: %s", ref)
	}
	if _, err := st.Compact("leak", 0); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if got := analyze(); !bytes.Equal(got, ref) {
		t.Fatalf("findings changed across compaction:\nafter:  %s\nbefore: %s", got, ref)
	}
}

// TestGCRetentionAndPins: age retention first, then the byte cap, oldest
// first, with pinned traces exempt from both — and a pin outliving any
// number of passes until explicitly removed.
func TestGCRetentionAndPins(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b := corpusTrace(t)
	size := int64(len(b))
	old := time.Now().Add(-3 * time.Hour)
	for i, name := range []string{"a-old-pinned", "b-old", "c-mid", "d-new"} {
		if err := os.WriteFile(st.Path(name), b, 0o644); err != nil {
			t.Fatal(err)
		}
		// Distinct, deterministic ages: a and b well past the window, c and
		// d inside it, each a minute apart so oldest-first is unambiguous.
		if err := os.Chtimes(st.Path(name), time.Time{}, old.Add(time.Duration(i)*90*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Pin("a-old-pinned"); err != nil {
		t.Fatal(err)
	}
	if ds, err := st.DiskStats(); err != nil || ds.Traces != 4 || ds.TotalBytes != 4*size {
		t.Fatalf("disk stats: %+v (%v)", ds, err)
	}

	// Age pass: a and b are past the hour window, but a is pinned.
	stats, err := st.GC(GCPolicy{MaxAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Scanned != 4 || stats.Pinned != 1 || stats.Removed != 1 || stats.ReclaimedBytes != size {
		t.Fatalf("age pass: %+v", stats)
	}
	if _, err := os.Stat(st.Path("b-old")); !os.IsNotExist(err) {
		t.Fatalf("b-old survived the age pass (err=%v)", err)
	}

	// Size pass capped at two traces' bytes: three remain, so the oldest
	// unpinned one (c) goes; pinned a stays although it is older still.
	stats, err = st.GC(GCPolicy{MaxBytes: 2 * size})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Removed != 1 || stats.RemainingBytes != 2*size {
		t.Fatalf("size pass: %+v", stats)
	}
	for name, want := range map[string]bool{"a-old-pinned": true, "c-mid": false, "d-new": true} {
		_, err := os.Stat(st.Path(name))
		if got := err == nil; got != want {
			t.Fatalf("after size pass, %s present=%v, want %v", name, got, want)
		}
	}

	// The Keep predicate shields like a pin, for one pass only.
	stats, err = st.GC(GCPolicy{MaxBytes: 1, Keep: func(name string) bool { return name == "d-new" }})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Held != 1 || stats.Removed != 0 || stats.Pinned != 1 {
		t.Fatalf("keep pass: %+v", stats)
	}

	// Unpinning finally exposes a to the policy.
	if err := st.Unpin("a-old-pinned"); err != nil {
		t.Fatal(err)
	}
	stats, err = st.GC(GCPolicy{MaxBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Removed != 2 || stats.RemainingBytes != 0 {
		t.Fatalf("final pass: %+v", stats)
	}

	// Remove of a reclaimed trace reports not-exist (the daemon's 404).
	if err := st.Remove("d-new"); err == nil || !os.IsNotExist(err) && !strings.Contains(err.Error(), "no trace") {
		t.Fatalf("remove of missing trace: %v", err)
	}
}
