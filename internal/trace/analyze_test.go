package trace

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/hostrace"
	"repro/internal/record"
	"repro/internal/tir"
	"repro/internal/workloads"
)

// recordCorpusTrace records a ground-truth analysis-corpus program into a
// decoded trace.
func recordCorpusTrace(t testing.TB, name string) (*tir.Module, *Trace) {
	t.Helper()
	c, ok := workloads.AnalysisByName(name)
	if !ok {
		t.Fatalf("unknown analysis case %s", name)
	}
	mod := c.Build()
	tr := &Trace{Header: Header{App: c.Name, ModuleHash: tir.Fingerprint(mod), Seed: 9}}
	rt, err := core.New(mod, core.Options{
		Seed: 9,
		TraceSink: func(ep *record.EpochLog) error {
			tr.Epochs = append(tr.Epochs, ep)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run()
	if err != nil {
		t.Fatalf("record %s: %v", name, err)
	}
	tr.Summary = &Summary{Exit: rep.Exit, Output: rep.Output}
	return mod, tr
}

// TestAnalyzeBatch fans race and leak analyses across a mixed store of
// corpus traces and checks the findings land on the right traces.
//
//ir:racy analyzes traces recorded from the racy corpus
func TestAnalyzeBatch(t *testing.T) {
	if hostrace.Enabled {
		t.Skip("batch includes deliberately racy corpus programs")
	}
	names := []string{"race-counter", "leak-dropped", "norace-locked"}
	jobs := make([]AnalyzeJob, 0, len(names))
	for _, n := range names {
		mod, tr := recordCorpusTrace(t, n)
		jobs = append(jobs, AnalyzeJob{
			Job: Job{Name: n, Module: mod, Handle: OpenTrace(tr), Opts: core.Options{DelayOnDivergence: true}},
			NewAnalyzers: func() []analysis.Analyzer {
				return []analysis.Analyzer{analysis.NewRaceDetector(), analysis.NewLeakDetector()}
			},
		})
	}
	results, stats := AnalyzeBatch(jobs, 2)
	if stats.Failed != 0 {
		t.Fatalf("batch failed: %+v", stats)
	}
	if stats.Matched != len(names) || stats.Events == 0 {
		t.Fatalf("bad stats: %+v", stats)
	}
	byName := map[string][]analysis.Finding{}
	for _, r := range results {
		if !r.Matched {
			t.Fatalf("%s did not match: %v", r.Name, r.Err)
		}
		byName[r.Name] = r.Findings
	}
	if len(byName["norace-locked"]) != 0 {
		t.Errorf("clean trace produced findings: %v", byName["norace-locked"])
	}
	wantKind := func(name, kind string) {
		t.Helper()
		for _, f := range byName[name] {
			if f.Kind == kind {
				return
			}
		}
		t.Errorf("%s: no %s finding in %v", name, kind, byName[name])
	}
	wantKind("race-counter", "data-race")
	wantKind("leak-dropped", "memory-leak")
	for _, f := range byName["leak-dropped"] {
		if f.Kind == "data-race" {
			t.Errorf("leak-dropped flagged for a race: %v", f)
		}
	}
}

// TestAnalyzeBatchValidation: malformed jobs fail cleanly, without running.
func TestAnalyzeBatchValidation(t *testing.T) {
	mod, tr := recordCorpusTrace(t, "noleak-freed")
	jobs := []AnalyzeJob{
		{Job: Job{Name: "no-factory", Module: mod, Handle: OpenTrace(tr)}},
		{Job: Job{Name: "no-module", Handle: OpenTrace(tr)},
			NewAnalyzers: func() []analysis.Analyzer { return nil }},
	}
	results, stats := AnalyzeBatch(jobs, 1)
	if stats.Failed != 2 {
		t.Fatalf("want 2 failures, got %+v", stats)
	}
	if results[0].Err == nil || !strings.Contains(results[0].Err.Error(), "analyzer factory") {
		t.Errorf("missing-factory error: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Errorf("missing-module job did not fail")
	}
}
