package trace

// Store lifecycle: retention GC, pinning, deletion, and compaction. The
// always-on deployment story needs the store bounded in both directions —
// a flight recorder keeps writing spills into it, so something must
// reclaim space — while traces that reproduced a finding must survive any
// policy. Pins live in a plain text file in the store directory (one
// trace name per line) so an operator can pin from a shell as easily as
// the daemon pins on a finding; GC never touches pinned or in-progress
// files. Compact rewrites one trace compressed and re-keyframed through
// the same temp+rename staging as Save, so a crash mid-compact never
// leaves a torn file and readers of the old bytes are undisturbed.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// pinsFile is the pin list's name inside the store directory: one trace
// name per line, blank lines and #-comments ignored.
const pinsFile = ".pins"

// pinMu serializes pin-file read-modify-write cycles across stores in the
// same process (the daemon and a CLI invocation are separate processes;
// the atomic rename keeps them from corrupting the file, last write wins).
var pinMu sync.Mutex

func (s *Store) pinsPath() string { return filepath.Join(s.dir, pinsFile) }

// readPins parses the pin file; a missing file is an empty set.
func (s *Store) readPins() (map[string]bool, error) {
	b, err := os.ReadFile(s.pinsPath())
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]bool{}, nil
		}
		return nil, fmt.Errorf("trace: reading pins: %w", err)
	}
	pins := map[string]bool{}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		pins[line] = true
	}
	return pins, nil
}

// writePins rewrites the pin file atomically (temp+rename), sorted for a
// stable diff-able file.
func (s *Store) writePins(pins map[string]bool) error {
	names := make([]string, 0, len(pins))
	for n := range pins {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		b.WriteString(n)
		b.WriteByte('\n')
	}
	tmp, err := os.CreateTemp(s.dir, pinsFile+".*.tmp")
	if err != nil {
		return fmt.Errorf("trace: writing pins: %w", err)
	}
	if _, err := tmp.WriteString(b.String()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("trace: writing pins: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("trace: writing pins: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.pinsPath()); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("trace: writing pins: %w", err)
	}
	return nil
}

// Pins returns the pinned trace names.
func (s *Store) Pins() (map[string]bool, error) {
	pinMu.Lock()
	defer pinMu.Unlock()
	return s.readPins()
}

// Pin shields the named trace from GC until Unpin. Pinning a name with no
// stored trace is allowed (the recording may still be in progress).
func (s *Store) Pin(name string) error {
	if err := validateName(name); err != nil {
		return err
	}
	pinMu.Lock()
	defer pinMu.Unlock()
	pins, err := s.readPins()
	if err != nil {
		return err
	}
	if pins[name] {
		return nil
	}
	pins[name] = true
	return s.writePins(pins)
}

// Unpin removes a pin; unpinning an unpinned name is a no-op.
func (s *Store) Unpin(name string) error {
	if err := validateName(name); err != nil {
		return err
	}
	pinMu.Lock()
	defer pinMu.Unlock()
	pins, err := s.readPins()
	if err != nil {
		return err
	}
	if !pins[name] {
		return nil
	}
	delete(pins, name)
	return s.writePins(pins)
}

// Remove deletes the named trace and drops its cached frames and pin. A
// missing trace is an error (so callers can 404); in-progress ".partial"
// files are untouched — they are not stored traces yet.
func (s *Store) Remove(name string) error {
	if err := validateName(name); err != nil {
		return err
	}
	if err := os.Remove(s.Path(name)); err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("trace: no trace %q in %s: %w", name, s.dir, err)
		}
		return fmt.Errorf("trace: removing %s: %w", name, err)
	}
	s.invalidate(name)
	return s.Unpin(name)
}

// DiskStats is the store's on-disk footprint: trace files only (pin file,
// partials, and foreign files are not counted as traces).
type DiskStats struct {
	Traces     int
	TotalBytes int64
}

// DiskStats sizes the store from directory metadata alone — no trace file
// is opened, so the daemon can report it on every metrics scrape.
func (s *Store) DiskStats() (DiskStats, error) {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return DiskStats{}, err
	}
	var ds DiskStats
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), Ext) {
			continue
		}
		fi, err := de.Info()
		if err != nil {
			continue
		}
		ds.Traces++
		ds.TotalBytes += fi.Size()
	}
	return ds, nil
}

// GCPolicy bounds the store. Zero fields are unlimited; a zero policy
// makes GC a no-op that still reports the scan.
type GCPolicy struct {
	// MaxBytes caps the summed size of stored traces; the oldest unpinned
	// traces (by modification time) are removed until the rest fit.
	MaxBytes int64
	// MaxAge removes unpinned traces not modified within the window.
	MaxAge time.Duration
	// Keep, when non-nil, shields additional names from removal for this
	// pass — the daemon passes the traces its running jobs hold. Unlike a
	// pin it protects nothing across passes.
	Keep func(name string) bool
}

// GCStats reports one GC pass.
type GCStats struct {
	// Scanned counts the trace files considered; Pinned how many a pin
	// shielded from removal.
	Scanned int `json:"scanned"`
	Pinned  int `json:"pinned"`
	// Held counts traces the policy's Keep predicate shielded this pass.
	Held int `json:"held,omitempty"`
	// Removed/ReclaimedBytes describe what the pass deleted.
	Removed        int   `json:"removed"`
	ReclaimedBytes int64 `json:"reclaimed_bytes"`
	// RemainingBytes is the stored total after the pass.
	RemainingBytes int64 `json:"remaining_bytes"`
}

// GC enforces a retention policy over the store's trace files. Pinned
// traces are never removed, whatever the policy says; in-progress
// recordings (".partial") and non-trace files are never candidates. Age
// is enforced first, then the byte cap, removing oldest-first. Decisions
// come from directory metadata only — no trace is opened — so a GC pass
// over a large store costs one ReadDir.
func (s *Store) GC(pol GCPolicy) (GCStats, error) {
	defer obs.StoreGC.ObserveSince(time.Now())
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return GCStats{}, err
	}
	pins, err := s.Pins()
	if err != nil {
		return GCStats{}, err
	}
	type cand struct {
		name  string
		size  int64
		mtime time.Time
	}
	var cands []cand
	var stats GCStats
	var total int64
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), Ext) {
			continue
		}
		name := strings.TrimSuffix(de.Name(), Ext)
		fi, err := de.Info()
		if err != nil {
			continue // vanished mid-scan
		}
		stats.Scanned++
		total += fi.Size()
		if pins[name] {
			stats.Pinned++
			continue
		}
		if pol.Keep != nil && pol.Keep(name) {
			stats.Held++
			continue
		}
		cands = append(cands, cand{name: name, size: fi.Size(), mtime: fi.ModTime()})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].mtime.Before(cands[j].mtime) })

	remove := func(c cand) {
		if err := os.Remove(s.Path(c.name)); err != nil {
			return // lost a race with a concurrent remove; not reclaimed by us
		}
		s.invalidate(c.name)
		stats.Removed++
		stats.ReclaimedBytes += c.size
		total -= c.size
	}
	kept := cands[:0]
	if pol.MaxAge > 0 {
		cutoff := time.Now().Add(-pol.MaxAge)
		for _, c := range cands {
			if c.mtime.Before(cutoff) {
				remove(c)
			} else {
				kept = append(kept, c)
			}
		}
		cands = kept
	}
	if pol.MaxBytes > 0 {
		for _, c := range cands {
			if total <= pol.MaxBytes {
				break
			}
			remove(c)
		}
	}
	stats.RemainingBytes = total
	return stats, nil
}

// CompactStats reports one compaction.
type CompactStats struct {
	OldBytes, NewBytes int64
	Epochs             int
	Checkpoints        int
}

// Compact rewrites the named trace with per-frame compression and a fresh
// keyframe interval (keyframeEvery <= 0 selects the writer default). The
// rewrite is semantics-preserving: epochs and the folded checkpoint images
// are byte-identical to the original's, so replay output and analyzer
// findings are unchanged — only the encoding (deflated bodies, re-chained
// checkpoint deltas) differs. The new bytes land in a temp file and are
// renamed into place; cached frames of the old content are invalidated.
// An incomplete trace (no summary frame) compacts to a complete trace
// with a partial summary — indexed, but still carrying no replay oracle.
func (s *Store) Compact(name string, keyframeEvery int) (CompactStats, error) {
	var stats CompactStats
	h, err := s.Open(name)
	if err != nil {
		return stats, err
	}
	fi, err := os.Stat(s.Path(name))
	if err != nil {
		h.Close()
		return stats, err
	}
	stats.OldBytes = fi.Size()
	tr, err := h.Trace()
	h.Close()
	if err != nil {
		return stats, err
	}
	cks, err := tr.CheckpointStates()
	if err != nil {
		return stats, err
	}
	hdr := tr.Header
	hdr.Compressed = true

	tmp, err := os.CreateTemp(s.dir, name+".*.tmp")
	if err != nil {
		return stats, fmt.Errorf("trace: compacting %s: %w", name, err)
	}
	fail := func(err error) (CompactStats, error) {
		tmp.Close()
		os.Remove(tmp.Name())
		return stats, err
	}
	w, err := NewWriter(tmp, hdr)
	if err != nil {
		return fail(err)
	}
	w.SetKeyframeEvery(keyframeEvery)
	ci := 0
	for _, ep := range tr.Epochs {
		for ci < len(cks) && cks[ci].Epoch == ep.Epoch {
			if err := w.WriteCheckpoint(cks[ci]); err != nil {
				return fail(err)
			}
			ci++
		}
		if err := w.WriteEpoch(ep); err != nil {
			return fail(err)
		}
	}
	if ci != len(cks) {
		return fail(fmt.Errorf("trace: compacting %s: checkpoint at epoch %d has no matching epoch frame",
			name, cks[ci].Epoch))
	}
	sum := tr.Summary
	if sum == nil {
		sum = &Summary{Partial: true}
	}
	if err := w.Finish(sum); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return stats, fmt.Errorf("trace: compacting %s: %w", name, err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return stats, fmt.Errorf("trace: compacting %s: %w", name, err)
	}
	nfi, err := os.Stat(tmp.Name())
	if err != nil {
		os.Remove(tmp.Name())
		return stats, fmt.Errorf("trace: compacting %s: %w", name, err)
	}
	if err := os.Rename(tmp.Name(), s.Path(name)); err != nil {
		os.Remove(tmp.Name())
		return stats, fmt.Errorf("trace: compacting %s: %w", name, err)
	}
	s.invalidate(name)
	stats.NewBytes = nfi.Size()
	stats.Epochs = len(tr.Epochs)
	stats.Checkpoints = len(cks)
	return stats, nil
}
