package trace

// Low-level codec: varints, zigzag deltas, and the per-frame payload
// layouts. Every multi-byte integer is an unsigned LEB128 varint; signed
// quantities and deltas are zigzag-mapped first. Delta bases reset at the
// start of every thread list and every variable list, so frames decode
// independently.

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/record"
	"repro/internal/vsys"
)

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func putUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func putVarint(b []byte, v int64) []byte {
	return binary.AppendUvarint(b, zigzag(v))
}

func putString(b []byte, s string) []byte {
	b = putUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// decoder walks one frame payload.
type decoder struct {
	b   []byte
	off int
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("trace: truncated varint at offset %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *decoder) varint() (int64, error) {
	u, err := d.uvarint()
	return unzigzag(u), err
}

func (d *decoder) bytes(n uint64) ([]byte, error) {
	if n > uint64(len(d.b)-d.off) {
		return nil, fmt.Errorf("trace: truncated byte run (%d wanted, %d left)", n, len(d.b)-d.off)
	}
	out := d.b[d.off : d.off+int(n)]
	d.off += int(n)
	return out, nil
}

func (d *decoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	b, err := d.bytes(n)
	return string(b), err
}

func (d *decoder) done() bool { return d.off >= len(d.b) }

// count validates an element count against the bytes remaining: every
// encoded element occupies at least one byte, so a larger count marks a
// corrupt frame and must not drive an allocation.
func (d *decoder) count() (int, error) {
	n, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if n > uint64(len(d.b)-d.off) {
		return 0, fmt.Errorf("trace: implausible element count %d with %d bytes left", n, len(d.b)-d.off)
	}
	return int(n), nil
}

// --- header frame ---

// Header flag bits (format v4; a flags varint closes the header payload).
const hdrCompressed = 1 << 0

func appendHeader(b []byte, h Header, ver int) []byte {
	b = putUvarint(b, uint64(ver))
	b = putString(b, h.App)
	b = putUvarint(b, h.ModuleHash)
	b = putUvarint(b, uint64(h.EventCap))
	b = putUvarint(b, uint64(h.VarCap))
	b = putVarint(b, h.Seed)
	b = putUvarint(b, uint64(h.AppIters))
	if ver >= 4 {
		var flags uint64
		if h.Compressed {
			flags |= hdrCompressed
		}
		b = putUvarint(b, flags)
	}
	return b
}

func decodeHeader(payload []byte) (Header, error) {
	d := &decoder{b: payload}
	var h Header
	ver, err := d.uvarint()
	if err != nil {
		return h, err
	}
	if ver < MinVersion || ver > Version {
		return h, fmt.Errorf("trace: unsupported header version %d (supported %d..%d)", ver, MinVersion, Version)
	}
	h.Version = int(ver)
	if h.App, err = d.str(); err != nil {
		return h, err
	}
	if h.ModuleHash, err = d.uvarint(); err != nil {
		return h, err
	}
	ec, err := d.uvarint()
	if err != nil {
		return h, err
	}
	vc, err := d.uvarint()
	if err != nil {
		return h, err
	}
	h.EventCap, h.VarCap = int(ec), int(vc)
	if h.Seed, err = d.varint(); err != nil {
		return h, err
	}
	iters, err := d.uvarint()
	if err != nil {
		return h, err
	}
	h.AppIters = int(iters)
	if ver >= 4 {
		flags, err := d.uvarint()
		if err != nil {
			return h, err
		}
		h.Compressed = flags&hdrCompressed != 0
	}
	return h, nil
}

// --- epoch frame ---

func appendEpoch(b []byte, ep *record.EpochLog) []byte {
	b = putUvarint(b, uint64(ep.Epoch))
	b = putUvarint(b, uint64(uint32(ep.Reason)))
	// Total event count, up front: lets inventory scans (Store.List) report
	// per-trace statistics without decoding the thread lists.
	b = putUvarint(b, uint64(ep.EventCount()))
	b = putUvarint(b, uint64(len(ep.Threads)))
	for i := range ep.Threads {
		tl := &ep.Threads[i]
		b = putUvarint(b, uint64(uint32(tl.TID)))
		b = putUvarint(b, uint64(uint32(tl.EntryFn)))
		b = putUvarint(b, uint64(len(tl.Events)))
		var prevVar, prevAux, prevRet, prevPos int64
		for j := range tl.Events {
			ev := &tl.Events[j]
			b = putUvarint(b, uint64(ev.Kind))
			b = putVarint(b, int64(ev.Var)-prevVar)
			b = putVarint(b, ev.Aux-prevAux)
			b = putVarint(b, int64(ev.Ret)-prevRet)
			b = putVarint(b, int64(ev.Pos)-prevPos)
			b = putUvarint(b, uint64(ev.Class))
			b = putUvarint(b, uint64(len(ev.Data)))
			b = append(b, ev.Data...)
			prevVar, prevAux = int64(ev.Var), ev.Aux
			prevRet, prevPos = int64(ev.Ret), int64(ev.Pos)
		}
	}
	b = putUvarint(b, uint64(len(ep.Vars)))
	var prevAddr int64
	for i := range ep.Vars {
		vl := &ep.Vars[i]
		b = putVarint(b, int64(vl.Addr)-prevAddr)
		prevAddr = int64(vl.Addr)
		b = putUvarint(b, uint64(len(vl.Order)))
		var prevTid int64
		for _, tid := range vl.Order {
			b = putVarint(b, int64(tid)-prevTid)
			prevTid = int64(tid)
		}
	}
	return b
}

func decodeEpoch(payload []byte) (*record.EpochLog, error) {
	decodeProbe.epochs.Add(1)
	d := &decoder{b: payload}
	ep := &record.EpochLog{}
	seq, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	ep.Epoch = int64(seq)
	reason, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	ep.Reason = int32(reason)
	wantEvents, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	nThreads, err := d.count()
	if err != nil {
		return nil, err
	}
	ep.Threads = make([]record.ThreadLog, nThreads)
	for i := 0; i < nThreads; i++ {
		tl := &ep.Threads[i]
		tid, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		entry, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		tl.TID, tl.EntryFn = int32(tid), int32(entry)
		nEvents, err := d.count()
		if err != nil {
			return nil, err
		}
		tl.Events = make([]record.Event, nEvents)
		var prevVar, prevAux, prevRet, prevPos int64
		for j := 0; j < nEvents; j++ {
			ev := &tl.Events[j]
			kind, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			ev.Kind = record.Kind(kind)
			dv, err := d.varint()
			if err != nil {
				return nil, err
			}
			da, err := d.varint()
			if err != nil {
				return nil, err
			}
			dr, err := d.varint()
			if err != nil {
				return nil, err
			}
			dp, err := d.varint()
			if err != nil {
				return nil, err
			}
			class, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			nData, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			data, err := d.bytes(nData)
			if err != nil {
				return nil, err
			}
			prevVar += dv
			prevAux += da
			prevRet += dr
			prevPos += dp
			ev.Var = uint64(prevVar)
			ev.Aux = prevAux
			ev.Ret = uint64(prevRet)
			ev.Pos = int32(prevPos)
			ev.Class = uint8(class)
			if len(data) > 0 {
				ev.Data = append([]byte(nil), data...)
			}
		}
	}
	nVars, err := d.count()
	if err != nil {
		return nil, err
	}
	ep.Vars = make([]record.VarLog, nVars)
	var prevAddr int64
	for i := 0; i < nVars; i++ {
		vl := &ep.Vars[i]
		dAddr, err := d.varint()
		if err != nil {
			return nil, err
		}
		prevAddr += dAddr
		vl.Addr = uint64(prevAddr)
		nOrder, err := d.count()
		if err != nil {
			return nil, err
		}
		vl.Order = make([]int32, nOrder)
		var prevTid int64
		for j := 0; j < nOrder; j++ {
			dt, err := d.varint()
			if err != nil {
				return nil, err
			}
			prevTid += dt
			vl.Order[j] = int32(prevTid)
		}
	}
	if !d.done() {
		return nil, fmt.Errorf("trace: %d trailing bytes in epoch frame", len(d.b)-d.off)
	}
	if got := ep.EventCount(); uint64(got) != wantEvents {
		return nil, fmt.Errorf("trace: epoch frame declares %d events, holds %d", wantEvents, got)
	}
	return ep, nil
}

// peekEpochMeta reads only the epoch frame's leading fields (sequence,
// reason, event count) — the inventory scan's fast path.
func peekEpochMeta(payload []byte) (epoch int64, events int64, err error) {
	d := &decoder{b: payload}
	seq, err := d.uvarint()
	if err != nil {
		return 0, 0, err
	}
	if _, err := d.uvarint(); err != nil { // reason
		return 0, 0, err
	}
	n, err := d.uvarint()
	if err != nil {
		return 0, 0, err
	}
	return int64(seq), int64(n), nil
}

// --- checkpoint frame (format v2; flags since v3) ---

// Thread flag bits in a checkpoint frame.
const (
	ckThreadExited = 1 << 0
	ckThreadJoined = 1 << 1
	ckThreadHasCtx = 1 << 2
)

// Checkpoint frame flag bits (format v3; the flags varint leads the
// payload). v2 payloads have no flags field, so the decoders take the
// header version.
const ckKeyframe = 1 << 0

// decodeProbe counts frame-payload decodes — the test probe behind the
// "reaching checkpoint k decodes at most K deltas" and "workers decode
// only their own slice" guarantees. Cheap enough to leave on.
var decodeProbe struct {
	epochs atomic.Int64
	ckpts  atomic.Int64
}

// appendCheckpoint serializes a checkpoint whose memory image has already
// been delta-encoded (memDelta) by the caller. ver selects the payload
// layout: v3 leads with a flags varint (keyframe bit), v2 has none.
func appendCheckpoint(b []byte, ck *core.Checkpoint, memDelta []byte, keyframe bool, ver int) ([]byte, error) {
	if ver >= 3 {
		var flags uint64
		if keyframe {
			flags |= ckKeyframe
		}
		b = putUvarint(b, flags)
	}
	b = putUvarint(b, uint64(ck.Epoch))
	b = putUvarint(b, uint64(uint32(ck.NextTID)))
	b = putUvarint(b, uint64(ck.OutputLen))
	alloc, err := heap.AppendSnapshot(nil, ck.Alloc)
	if err != nil {
		return nil, err
	}
	b = putUvarint(b, uint64(len(alloc)))
	b = append(b, alloc...)
	b = putUvarint(b, uint64(len(memDelta)))
	b = append(b, memDelta...)
	fs := ck.FS
	if fs == nil {
		fs = &vsys.State{}
	}
	b = putUvarint(b, uint64(len(fs.Files)))
	for _, f := range fs.Files {
		b = putString(b, f.Name)
		b = putUvarint(b, uint64(len(f.Data)))
		b = append(b, f.Data...)
	}
	b = putUvarint(b, uint64(len(fs.FDs)))
	for _, fd := range fs.FDs {
		b = putUvarint(b, uint64(fd.FD))
		b = putString(b, fd.Path)
		b = putUvarint(b, uint64(fd.Pos))
	}
	b = putUvarint(b, uint64(len(ck.Threads)))
	for i := range ck.Threads {
		ts := &ck.Threads[i]
		b = putUvarint(b, uint64(uint32(ts.TID)))
		b = putUvarint(b, uint64(uint32(ts.EntryFn)))
		var flags uint64
		if ts.Exited {
			flags |= ckThreadExited
		}
		if ts.Joined {
			flags |= ckThreadJoined
		}
		if ts.Ctx != nil {
			flags |= ckThreadHasCtx
		}
		b = putUvarint(b, flags)
		b = putUvarint(b, ts.ExitVal)
		b = putUvarint(b, uint64(uint32(ts.Block.Kind)))
		b = putUvarint(b, ts.Block.VAddr)
		b = putUvarint(b, ts.Block.MAddr)
		if ts.Ctx != nil {
			ctx := interp.AppendContext(nil, ts.Ctx)
			b = putUvarint(b, uint64(len(ctx)))
			b = append(b, ctx...)
		}
	}
	b = putUvarint(b, uint64(len(ck.Vars)))
	for i := range ck.Vars {
		vs := &ck.Vars[i]
		b = putUvarint(b, vs.Addr)
		var locked uint64
		if vs.Locked {
			locked = 1
		}
		b = putUvarint(b, locked)
		b = putVarint(b, int64(vs.Holder))
		b = putUvarint(b, uint64(vs.Waiters))
		b = putUvarint(b, uint64(vs.Fuel))
		b = putUvarint(b, uint64(vs.Parties))
		b = putUvarint(b, uint64(vs.Arrived))
		b = putUvarint(b, uint64(vs.Gen))
	}
	return b, nil
}

// decodeCheckpoint decodes one checkpoint frame. first marks the trace's
// first checkpoint frame: legacy (pre-v3) delta chains have no flags
// field, and their first frame is implicitly the chain's keyframe (its
// delta was encoded against the empty image).
func decodeCheckpoint(payload []byte, ver int, first bool) (*Checkpoint, error) {
	decodeProbe.ckpts.Add(1)
	d := &decoder{b: payload}
	st := &core.Checkpoint{FS: &vsys.State{}}
	keyframe := ver < 3 && first
	if ver >= 3 {
		flags, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		keyframe = flags&ckKeyframe != 0
	}
	epoch, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	st.Epoch = int64(epoch)
	ntid, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	st.NextTID = int32(uint32(ntid))
	outLen, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	st.OutputLen = int(outLen)
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	allocB, err := d.bytes(n)
	if err != nil {
		return nil, err
	}
	if st.Alloc, err = heap.DecodeSnapshot(allocB); err != nil {
		return nil, err
	}
	if n, err = d.uvarint(); err != nil {
		return nil, err
	}
	memDelta, err := d.bytes(n)
	if err != nil {
		return nil, err
	}
	nFiles, err := d.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < nFiles; i++ {
		name, err := d.str()
		if err != nil {
			return nil, err
		}
		if n, err = d.uvarint(); err != nil {
			return nil, err
		}
		data, err := d.bytes(n)
		if err != nil {
			return nil, err
		}
		st.FS.Files = append(st.FS.Files, vsys.File{Name: name, Data: append([]byte(nil), data...)})
	}
	nFDs, err := d.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < nFDs; i++ {
		var fd vsys.FDState
		v, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		fd.FD = int64(v)
		if fd.Path, err = d.str(); err != nil {
			return nil, err
		}
		if v, err = d.uvarint(); err != nil {
			return nil, err
		}
		fd.Pos = int64(v)
		st.FS.FDs = append(st.FS.FDs, fd)
	}
	nThreads, err := d.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < nThreads; i++ {
		var ts core.ThreadState
		v, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		ts.TID = int32(uint32(v))
		if v, err = d.uvarint(); err != nil {
			return nil, err
		}
		ts.EntryFn = int32(uint32(v))
		flags, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		ts.Exited = flags&ckThreadExited != 0
		ts.Joined = flags&ckThreadJoined != 0
		if ts.ExitVal, err = d.uvarint(); err != nil {
			return nil, err
		}
		if v, err = d.uvarint(); err != nil {
			return nil, err
		}
		ts.Block.Kind = int32(uint32(v))
		if ts.Block.VAddr, err = d.uvarint(); err != nil {
			return nil, err
		}
		if ts.Block.MAddr, err = d.uvarint(); err != nil {
			return nil, err
		}
		if flags&ckThreadHasCtx != 0 {
			if v, err = d.uvarint(); err != nil {
				return nil, err
			}
			ctxB, err := d.bytes(v)
			if err != nil {
				return nil, err
			}
			ctx, rest, err := interp.DecodeContext(ctxB)
			if err != nil {
				return nil, err
			}
			if len(rest) != 0 {
				return nil, fmt.Errorf("trace: %d trailing bytes in thread %d context", len(rest), ts.TID)
			}
			ts.Ctx = ctx
		}
		st.Threads = append(st.Threads, ts)
	}
	nVars, err := d.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < nVars; i++ {
		var vs core.VarState
		if vs.Addr, err = d.uvarint(); err != nil {
			return nil, err
		}
		locked, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		vs.Locked = locked != 0
		h, err := d.varint()
		if err != nil {
			return nil, err
		}
		vs.Holder = int32(h)
		v, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		vs.Waiters = int(v)
		if v, err = d.uvarint(); err != nil {
			return nil, err
		}
		vs.Fuel = int(v)
		if v, err = d.uvarint(); err != nil {
			return nil, err
		}
		vs.Parties = int64(v)
		if v, err = d.uvarint(); err != nil {
			return nil, err
		}
		vs.Arrived = int64(v)
		if v, err = d.uvarint(); err != nil {
			return nil, err
		}
		vs.Gen = int64(v)
		st.Vars = append(st.Vars, vs)
	}
	if !d.done() {
		return nil, fmt.Errorf("trace: %d trailing bytes in checkpoint frame", len(d.b)-d.off)
	}
	return &Checkpoint{State: st, Keyframe: keyframe, memDelta: append([]byte(nil), memDelta...)}, nil
}

// peekCheckpointMeta reads only the leading flags (v3) and epoch fields —
// the inventory scan's fast path. first is interpreted as in
// decodeCheckpoint (legacy chains: the first frame is the keyframe).
func peekCheckpointMeta(payload []byte, ver int, first bool) (epoch int64, keyframe bool, err error) {
	d := &decoder{b: payload}
	keyframe = ver < 3 && first
	if ver >= 3 {
		flags, err := d.uvarint()
		if err != nil {
			return 0, false, err
		}
		keyframe = flags&ckKeyframe != 0
	}
	v, err := d.uvarint()
	return int64(v), keyframe, err
}

// --- summary frame ---

// Summary flag bits (format v4; a flags varint closes the summary
// payload — absent in v1–v3 summaries, so the decoder reads it only when
// payload bytes remain).
const sumPartial = 1 << 0

func appendSummary(b []byte, s *Summary, ver int) []byte {
	if s == nil {
		s = &Summary{}
	}
	b = putUvarint(b, s.Exit)
	b = putString(b, s.Output)
	if ver >= 4 {
		var flags uint64
		if s.Partial {
			flags |= sumPartial
		}
		b = putUvarint(b, flags)
	}
	return b
}

func decodeSummary(payload []byte) (*Summary, error) {
	d := &decoder{b: payload}
	s := &Summary{}
	var err error
	if s.Exit, err = d.uvarint(); err != nil {
		return nil, err
	}
	if s.Output, err = d.str(); err != nil {
		return nil, err
	}
	if !d.done() {
		flags, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		s.Partial = flags&sumPartial != 0
	}
	return s, nil
}
