package trace

// The format-v3 trace index: a footer frame mapping every epoch and
// checkpoint frame to its byte offset, payload length, and CRC, plus the
// summary frame's location — so opening a trace for inventory (ls, job
// validation) or random access (Handle.Epochs, Handle.CheckpointAt) costs
// one footer read instead of a whole-file scan.
//
// Layout. The index is an ordinary CRC-framed frame (kind 5) written after
// the summary end marker, followed by a fixed 12-byte trailer:
//
//	trailer := indexOff:8 (LE, offset of the index frame's kind byte) "IRX3"
//
// index payload :=
//	epochCount:uv  { offDelta:uv plen:uv crc:uv seqDelta:uv events:uv }*
//	ckptCount:uv   { offDelta:uv plen:uv crc:uv epoch:uv flags:uv }*
//	sumOff:uv sumPlen:uv sumCRC:uv
//
// Offsets are delta-encoded in file order (strictly increasing); epoch
// sequence numbers likewise. Flags carry the checkpoint frame's keyframe
// bit so folding policy is known without decoding checkpoint payloads.
//
// Failure policy (the back-compat contract the corrupt-trace corpus pins):
// a missing or unparseable index region — no trailer magic, torn index
// frame, flipped index CRC — degrades to the sequential scan path, exactly
// as a v1/v2 trace opens; an index that parses but lies — offsets past the
// file's data region, non-monotonic offsets, or an offset that lands on a
// frame of a different kind when fetched — is hard corruption.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// indexTrailer is the fixed-size locator after the index frame.
const (
	indexTrailerLen   = 12
	indexTrailerMagic = "IRX3"
)

// frameRef locates one frame: the file offset of its kind byte, its
// payload length, and its payload CRC.
type frameRef struct {
	off  int64
	plen int
	crc  uint32
}

// size returns the frame's total on-disk size (kind + length varint +
// payload + CRC).
func (r frameRef) size() int64 {
	return 1 + int64(uvarintLen(uint64(r.plen))) + int64(r.plen) + 4
}

// epochRef is an epoch frame plus the metadata inventory scans need.
type epochRef struct {
	frameRef
	seq    int64 // 1-based epoch sequence number
	events int64
}

// ckptRef is a checkpoint frame plus its epoch and keyframe bit.
type ckptRef struct {
	frameRef
	epoch    int64
	keyframe bool
}

// fileIndex is the random-access map of one trace file, built from the
// footer (v3) or a one-time sequential scan (v1/v2, or v3 with a damaged
// index region).
type fileIndex struct {
	epochs []epochRef
	ckpts  []ckptRef
	sum    frameRef
	// complete reports whether the file ends with its summary frame.
	complete bool
	// footer reports whether the index was served by the footer frame
	// (false: built by scanning).
	footer bool
}

// events sums the indexed per-epoch event counts.
func (ix *fileIndex) events() int64 {
	var n int64
	for i := range ix.epochs {
		n += ix.epochs[i].events
	}
	return n
}

// keyframes counts checkpoints carrying the keyframe bit.
func (ix *fileIndex) keyframes() int {
	n := 0
	for i := range ix.ckpts {
		if ix.ckpts[i].keyframe {
			n++
		}
	}
	return n
}

// dropTrailingCkpts removes checkpoints past the last epoch frame — a
// recorder killed after flushing a checkpoint but before its epoch leaves
// one, and it pins nothing (mirrors ReadTrace).
func (ix *fileIndex) dropTrailingCkpts() {
	lastSeq := int64(0)
	if n := len(ix.epochs); n > 0 {
		lastSeq = ix.epochs[n-1].seq
	}
	for len(ix.ckpts) > 0 && ix.ckpts[len(ix.ckpts)-1].epoch > lastSeq {
		ix.ckpts = ix.ckpts[:len(ix.ckpts)-1]
	}
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// appendIndex serializes the index frame payload.
func appendIndex(b []byte, ix *fileIndex) []byte {
	b = putUvarint(b, uint64(len(ix.epochs)))
	var prevOff, prevSeq int64
	for i := range ix.epochs {
		e := &ix.epochs[i]
		b = putUvarint(b, uint64(e.off-prevOff))
		b = putUvarint(b, uint64(e.plen))
		b = putUvarint(b, uint64(e.crc))
		b = putUvarint(b, uint64(e.seq-prevSeq))
		b = putUvarint(b, uint64(e.events))
		prevOff, prevSeq = e.off, e.seq
	}
	b = putUvarint(b, uint64(len(ix.ckpts)))
	prevOff = 0
	for i := range ix.ckpts {
		c := &ix.ckpts[i]
		b = putUvarint(b, uint64(c.off-prevOff))
		b = putUvarint(b, uint64(c.plen))
		b = putUvarint(b, uint64(c.crc))
		b = putUvarint(b, uint64(c.epoch))
		var flags uint64
		if c.keyframe {
			flags |= ckKeyframe
		}
		b = putUvarint(b, flags)
		prevOff = c.off
	}
	b = putUvarint(b, uint64(ix.sum.off))
	b = putUvarint(b, uint64(ix.sum.plen))
	b = putUvarint(b, uint64(ix.sum.crc))
	return b
}

// maxIndexedFrame caps the payload length an index entry may claim — the
// same generic bound the streaming reader applies — so a lying index can
// never drive an allocation (or a signed overflow) before validation.
const maxIndexedFrame = 1 << 30

// decodeIndex parses an index frame payload. It validates shape and
// bounds every claimed length; validateIndex checks the offsets against
// the file.
func decodeIndex(payload []byte) (*fileIndex, error) {
	d := &decoder{b: payload}
	ix := &fileIndex{complete: true, footer: true}
	ref := func(what string, i int, dOff, plen, crc uint64, prevOff int64) (frameRef, error) {
		if plen > maxIndexedFrame {
			return frameRef{}, fmt.Errorf("trace: index %s %d claims implausible payload length %d", what, i, plen)
		}
		if crc > 1<<32-1 {
			return frameRef{}, fmt.Errorf("trace: index %s %d CRC overflows 32 bits", what, i)
		}
		off := prevOff + int64(dOff)
		if off < 0 || dOff > 1<<62 {
			return frameRef{}, fmt.Errorf("trace: index %s %d offset overflows", what, i)
		}
		return frameRef{off: off, plen: int(plen), crc: uint32(crc)}, nil
	}
	nEpochs, err := d.count()
	if err != nil {
		return nil, err
	}
	ix.epochs = make([]epochRef, nEpochs)
	var prevOff, prevSeq int64
	for i := 0; i < nEpochs; i++ {
		e := &ix.epochs[i]
		dOff, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		plen, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		crc, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		dSeq, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		events, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if e.frameRef, err = ref("epoch", i, dOff, plen, crc, prevOff); err != nil {
			return nil, err
		}
		e.seq = prevSeq + int64(dSeq)
		e.events = int64(events)
		prevOff, prevSeq = e.off, e.seq
	}
	nCkpts, err := d.count()
	if err != nil {
		return nil, err
	}
	ix.ckpts = make([]ckptRef, nCkpts)
	prevOff = 0
	for i := 0; i < nCkpts; i++ {
		c := &ix.ckpts[i]
		dOff, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		plen, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		crc, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		epoch, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		flags, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if c.frameRef, err = ref("checkpoint", i, dOff, plen, crc, prevOff); err != nil {
			return nil, err
		}
		c.epoch = int64(epoch)
		c.keyframe = flags&ckKeyframe != 0
		prevOff = c.off
	}
	sumOff, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	sumPlen, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	sumCRC, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if ix.sum, err = ref("summary", 0, sumOff, sumPlen, sumCRC, 0); err != nil {
		return nil, err
	}
	if !d.done() {
		return nil, fmt.Errorf("trace: %d trailing bytes in index frame", len(d.b)-d.off)
	}
	return ix, nil
}

// validateIndex checks a footer-served index against the file: every
// indexed frame must lie wholly inside the data region (after the magic,
// before the index frame), with strictly increasing offsets per list and
// strictly increasing epoch sequence numbers. An index that fails here
// parsed fine but lies about the file — hard corruption, never a degrade.
func validateIndex(ix *fileIndex, indexOff int64) error {
	inBounds := func(r frameRef, what string, i int) error {
		if r.off < int64(len(Magic)) || r.off+r.size() > indexOff {
			return fmt.Errorf("trace: index %s %d spans [%d,%d) outside the data region [%d,%d)",
				what, i, r.off, r.off+r.size(), len(Magic), indexOff)
		}
		return nil
	}
	var prevOff, prevSeq int64
	for i := range ix.epochs {
		e := &ix.epochs[i]
		if err := inBounds(e.frameRef, "epoch", i); err != nil {
			return err
		}
		if i > 0 && (e.off <= prevOff || e.seq <= prevSeq) {
			return fmt.Errorf("trace: index epoch %d not monotonic (off %d after %d, seq %d after %d)",
				i, e.off, prevOff, e.seq, prevSeq)
		}
		prevOff, prevSeq = e.off, e.seq
	}
	prevOff = 0
	for i := range ix.ckpts {
		c := &ix.ckpts[i]
		if err := inBounds(c.frameRef, "checkpoint", i); err != nil {
			return err
		}
		if i > 0 && c.off <= prevOff {
			return fmt.Errorf("trace: index checkpoint %d not monotonic (off %d after %d)", i, c.off, prevOff)
		}
		prevOff = c.off
	}
	if err := inBounds(ix.sum, "summary", 0); err != nil {
		return err
	}
	return nil
}

// loadFooterIndex reads and validates the footer index of the sized stream
// src. Returns (nil, nil) when no parseable index region is present — the
// degrade-to-scan signal — and a non-nil error only for an index that
// parsed and lies (hard corruption).
func loadFooterIndex(src io.ReaderAt, size int64) (*fileIndex, error) {
	if size < int64(len(Magic))+indexTrailerLen+6 {
		return nil, nil
	}
	var trailer [indexTrailerLen]byte
	if _, err := src.ReadAt(trailer[:], size-indexTrailerLen); err != nil {
		return nil, nil
	}
	if string(trailer[8:]) != indexTrailerMagic {
		return nil, nil
	}
	indexOff := int64(binary.LittleEndian.Uint64(trailer[:8]))
	frameEnd := size - indexTrailerLen
	if indexOff < int64(len(Magic)) || indexOff >= frameEnd {
		return nil, nil // trailer present but points nowhere parseable
	}
	const maxIndexFrame = 1 << 28
	if frameEnd-indexOff > maxIndexFrame {
		return nil, nil
	}
	buf := make([]byte, frameEnd-indexOff)
	if _, err := src.ReadAt(buf, indexOff); err != nil {
		return nil, nil
	}
	if buf[0] != frameIndex {
		return nil, nil
	}
	plen, w := binary.Uvarint(buf[1:])
	if w <= 0 || int64(1+w)+int64(plen)+4 != int64(len(buf)) {
		return nil, nil
	}
	payload := buf[1+w : 1+w+int(plen)]
	crc := binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, nil
	}
	ix, err := decodeIndex(payload)
	if err != nil {
		return nil, nil // unparseable payload: degrade like a torn index
	}
	if err := validateIndex(ix, indexOff); err != nil {
		return nil, err
	}
	ix.dropTrailingCkpts()
	return ix, nil
}

// scanIndex builds a fileIndex by walking every frame of the stream,
// CRC-checking each — the v1/v2 open path, and the v3 salvage path when
// the index region is damaged. Statistics come from frame-leading fields
// (peekEpochMeta/peekCheckpointMeta); payloads are never fully decoded.
func scanIndex(r io.Reader) (Header, *fileIndex, error) {
	tr, err := NewReader(r)
	if err != nil {
		return Header{}, nil, err
	}
	ix := &fileIndex{}
	for {
		off := tr.consumed
		kind, payload, err := tr.readFrame()
		if errors.Is(err, io.EOF) {
			ix.dropTrailingCkpts()
			return tr.hdr, ix, nil
		}
		if err != nil {
			return Header{}, nil, err
		}
		// The ref describes the stored (possibly compressed) payload — that
		// is what readFrameAt will fetch and checksum — while the statistics
		// peeks below need the raw bytes.
		ref := frameRef{off: off, plen: len(payload), crc: crc32.ChecksumIEEE(payload)}
		if kind, payload, err = inflatePayload(kind, payload); err != nil {
			return Header{}, nil, err
		}
		switch kind {
		case frameEpoch:
			seq, events, err := peekEpochMeta(payload)
			if err != nil {
				return Header{}, nil, err
			}
			ix.epochs = append(ix.epochs, epochRef{frameRef: ref, seq: seq, events: events})
		case frameCkpt:
			epoch, keyframe, err := peekCheckpointMeta(payload, tr.hdr.Version, len(ix.ckpts) == 0)
			if err != nil {
				return Header{}, nil, err
			}
			ix.ckpts = append(ix.ckpts, ckptRef{frameRef: ref, epoch: epoch, keyframe: keyframe})
		case frameSum:
			ix.sum = ref
			ix.complete = true
			if err := tr.consumeTail(); err != nil {
				return Header{}, nil, err
			}
			ix.dropTrailingCkpts()
			return tr.hdr, ix, nil
		default:
			return Header{}, nil, fmt.Errorf("trace: unexpected frame kind %d", kind)
		}
	}
}

// readFrameAt fetches one indexed frame by pread and verifies it against
// the index: the kind byte (ignoring the compression bit), the stored
// payload length, and the CRC (checked both against the stored frame
// checksum and the index's copy). A mismatch means the index and the file
// disagree — hard corruption. Compressed frames are inflated only after
// every check passes; the caller always receives the raw payload.
func readFrameAt(src io.ReaderAt, ref frameRef, want byte) ([]byte, error) {
	buf := make([]byte, ref.size())
	if _, err := src.ReadAt(buf, ref.off); err != nil {
		return nil, fmt.Errorf("trace: reading indexed frame at %d: %w", ref.off, err)
	}
	if buf[0]&^frameCompressed != want {
		return nil, fmt.Errorf("trace: index points at frame kind %d at offset %d, want kind %d",
			buf[0], ref.off, want)
	}
	plen, w := binary.Uvarint(buf[1:])
	if w <= 0 || int(plen) != ref.plen {
		return nil, fmt.Errorf("trace: indexed frame at %d declares %d payload bytes, index says %d",
			ref.off, plen, ref.plen)
	}
	payload := buf[1+w : 1+w+int(plen)]
	want32 := binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if got := crc32.ChecksumIEEE(payload); got != want32 || got != ref.crc {
		return nil, fmt.Errorf("trace: indexed frame at %d fails its checksum (%#x stored, %#x indexed, %#x computed)",
			ref.off, want32, ref.crc, got)
	}
	_, raw, err := inflatePayload(buf[0], payload)
	if err != nil {
		return nil, fmt.Errorf("trace: indexed frame at %d: %w", ref.off, err)
	}
	return raw, nil
}

// openFileIndex opens path's index: the footer when intact, the scan
// otherwise. Hard index corruption (validateIndex) propagates.
func openFileIndex(f *os.File, size int64) (Header, *fileIndex, error) {
	ix, err := loadFooterIndex(f, size)
	if err != nil {
		return Header{}, nil, err
	}
	if ix != nil {
		// One more small read: the header frame at the file's start.
		hdr, err := readHeaderFrame(f)
		if err != nil {
			return Header{}, nil, err
		}
		return hdr, ix, nil
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return Header{}, nil, err
	}
	return scanIndex(f)
}

// locateHeaderFrame validates the magic and the header frame's framing
// and returns the payload's offset and length (no CRC verification) — the
// shared parse behind readHeaderFrame and the store's content fingerprint.
func locateHeaderFrame(src io.ReaderAt) (payloadOff int64, plen int, err error) {
	// magic + kind + a full-width length varint.
	var head [19]byte
	if _, err := src.ReadAt(head[:], 0); err != nil {
		return 0, 0, fmt.Errorf("trace: reading header frame: %w", err)
	}
	if string(head[:len(Magic)]) != Magic {
		return 0, 0, fmt.Errorf("trace: bad magic %q", head[:len(Magic)])
	}
	if head[len(Magic)] != frameHeader {
		return 0, 0, fmt.Errorf("trace: first frame has kind %d, want header", head[len(Magic)])
	}
	n, w := binary.Uvarint(head[len(Magic)+1:])
	if w <= 0 || n > 1<<20 {
		return 0, 0, fmt.Errorf("trace: malformed header frame length")
	}
	return int64(len(Magic) + 1 + w), int(n), nil
}

// readHeaderFrame reads and decodes only the header frame (magic + first
// frame) of a trace stream.
func readHeaderFrame(src io.ReaderAt) (Header, error) {
	off, plen, err := locateHeaderFrame(src)
	if err != nil {
		return Header{}, err
	}
	buf := make([]byte, plen+4)
	if _, err := src.ReadAt(buf, off); err != nil {
		return Header{}, fmt.Errorf("trace: reading header frame: %w", err)
	}
	payload := buf[:plen]
	crc := binary.LittleEndian.Uint32(buf[plen:])
	if crc32.ChecksumIEEE(payload) != crc {
		return Header{}, errors.New("trace: header frame checksum mismatch")
	}
	return decodeHeader(payload)
}
