package trace

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// TestEpochRangeBoundaries pins Handle.Epochs at its edges — single-epoch
// ranges at the first, middle, and last epoch, the full range — and the
// distinct diagnostics for inverted and uncovered requests. Segment replay
// planning leans on exactly these cases when it carves checkpoint windows.
func TestEpochRangeBoundaries(t *testing.T) {
	spec := scaledSpec(t, "streamcluster", 0.5)
	tr := recordCheckpointed(t, spec, core.Options{Seed: 9, EventCap: 24}, 2)
	h := OpenTrace(tr)

	lo, hi := h.EpochRange()
	if lo != 1 {
		t.Fatalf("EpochRange lo = %d, want 1 (epochs are 1-based)", lo)
	}
	if hi < lo+2 {
		t.Fatalf("trace too short for boundary cases: [%d,%d]", lo, hi)
	}

	// lo==hi: exactly one epoch decodes, and it is the requested one.
	for _, seq := range []int64{lo, (lo + hi) / 2, hi} {
		eps, err := h.Epochs(seq, seq)
		if err != nil {
			t.Fatalf("Epochs(%d,%d): %v", seq, seq, err)
		}
		if len(eps) != 1 || eps[0].Epoch != seq {
			t.Fatalf("Epochs(%d,%d) returned %d epochs, first seq %d",
				seq, seq, len(eps), eps[0].Epoch)
		}
	}

	// The full range decodes every epoch, in sequence order, and agrees
	// with AllEpochs.
	eps, err := h.Epochs(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(eps)) != hi-lo+1 {
		t.Fatalf("Epochs(%d,%d) = %d epochs, want %d", lo, hi, len(eps), hi-lo+1)
	}
	for i, ep := range eps {
		if ep.Epoch != lo+int64(i) {
			t.Fatalf("epoch %d out of order: seq %d", i, ep.Epoch)
		}
	}
	all, err := h.AllEpochs()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(eps) {
		t.Fatalf("AllEpochs = %d epochs, Epochs(%d,%d) = %d", len(all), lo, hi, len(eps))
	}

	// Requests past either end fail with the coverage diagnostic; an
	// inverted range is rejected before any index lookup.
	for _, r := range [][2]int64{{lo, hi + 1}, {hi + 1, hi + 1}, {lo - 1, hi}, {0, 0}} {
		if _, err := h.Epochs(r[0], r[1]); err == nil || !strings.Contains(err.Error(), "not covered") {
			t.Errorf("Epochs(%d,%d) err = %v, want coverage error", r[0], r[1], err)
		}
	}
	if _, err := h.Epochs(hi, lo); err == nil || !strings.Contains(err.Error(), "empty epoch range") {
		t.Errorf("Epochs(%d,%d) err = %v, want empty-range error", hi, lo, err)
	}
}
