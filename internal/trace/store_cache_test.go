package trace

// Tests for the bounded frame-granular decode cache: budget enforcement,
// LRU eviction order, the always-cache-the-working-frame guarantee, and
// the hit/miss counters the daemon's /metrics endpoint reports. The unit
// of caching is one decoded epoch or checkpoint frame, costed at its
// decoded size — never the file size.

import (
	"testing"

	"repro/internal/record"
)

// cacheTestTrace builds a small but non-trivial encodable one-epoch trace.
func cacheTestTrace(seed int64) *Trace {
	ep := &record.EpochLog{
		Epoch:  1,
		Reason: 3, // StopProgramEnd
		Threads: []record.ThreadLog{{
			TID: 0, EntryFn: 0,
			Events: []record.Event{
				{Kind: record.KMutexLock, Var: 0x1000, Pos: 0},
				{Kind: record.KMutexLock, Var: 0x1000, Pos: 1},
				{Kind: record.KExit, Ret: uint64(seed), Pos: -1},
			},
		}},
		Vars: []record.VarLog{{Addr: 0x1000, Order: []int32{0, 0}}},
	}
	return &Trace{
		Header:  Header{App: "cache-test", ModuleHash: uint64(seed) + 1, Seed: seed},
		Epochs:  []*record.EpochLog{ep},
		Summary: &Summary{Exit: uint64(seed)},
	}
}

func seedCacheStore(t *testing.T, n int) *Store {
	t.Helper()
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := st.Save(names[i], cacheTestTrace(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

var names = []string{"a", "b", "c", "d"}

// frameCost returns what one cached epoch of the fixture costs.
func frameCost(t *testing.T) int64 {
	t.Helper()
	return epochCost(cacheTestTrace(0).Epochs[0])
}

func TestStoreCacheHitsAndMisses(t *testing.T) {
	st := seedCacheStore(t, 2)
	if _, err := st.Load("a"); err != nil {
		t.Fatal(err)
	}
	tr1, err := st.Load("a")
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := st.Load("a")
	if err != nil {
		t.Fatal(err)
	}
	if tr1.Epochs[0] != tr2.Epochs[0] {
		t.Fatal("repeated Load did not serve the cached epoch decode")
	}
	stats := st.Stats()
	// One epoch frame per load: 1 miss on the first, a hit on each rerun.
	if stats.Hits != 2 || stats.Misses != 1 || stats.CachedFrames != 1 {
		t.Fatalf("stats after 3 loads of one trace: %+v", stats)
	}
	if r := stats.HitRate(); r < 0.66 || r > 0.67 {
		t.Fatalf("hit rate %v, want 2/3", r)
	}
	if stats.CachedBytes != frameCost(t) {
		t.Fatalf("cache cost %d, want the decoded epoch's cost %d", stats.CachedBytes, frameCost(t))
	}

	// Save invalidates without counting as an eviction.
	if _, err := st.Save("a", cacheTestTrace(10)); err != nil {
		t.Fatal(err)
	}
	if stats := st.Stats(); stats.CachedFrames != 0 || stats.Evictions != 0 {
		t.Fatalf("stats after invalidating save: %+v", stats)
	}
	tr3, err := st.Load("a")
	if err != nil {
		t.Fatal(err)
	}
	if tr3.Epochs[0] == tr1.Epochs[0] {
		t.Fatal("Load after Save served the stale decode")
	}
}

func TestStoreCacheLRUEviction(t *testing.T) {
	st := seedCacheStore(t, 4)
	cost := frameCost(t)

	// Budget for exactly two cached epoch frames.
	st.SetCacheLimit(2 * cost)
	for _, n := range []string{"a", "b"} {
		if _, err := st.Load(n); err != nil {
			t.Fatal(err)
		}
	}
	// Touch "a" so "b" is the LRU victim when "c" arrives.
	if _, err := st.Load("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load("c"); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.CachedFrames != 2 || stats.Evictions != 1 {
		t.Fatalf("stats after first eviction: %+v", stats)
	}
	if stats.CachedBytes > stats.LimitBytes {
		t.Fatalf("cache over budget: %+v", stats)
	}
	// "a" must still be cached (a hit), "b" must re-decode (a miss).
	base := stats
	if _, err := st.Load("a"); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats(); got.Hits != base.Hits+1 {
		t.Fatalf("touched entry was evicted: %+v", got)
	}
	if _, err := st.Load("b"); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats(); got.Misses != base.Misses+1 {
		t.Fatalf("LRU victim still cached: %+v", got)
	}
}

func TestStoreCacheKeepsWorkingFrame(t *testing.T) {
	st := seedCacheStore(t, 1)
	// A budget smaller than one frame still caches the frame being decoded —
	// the fan-out case must never decode per replay.
	st.SetCacheLimit(1)
	if _, err := st.Load("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load("a"); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.CachedFrames != 1 || stats.Hits != 1 {
		t.Fatalf("undersized budget evicted the working frame: %+v", stats)
	}
}

func TestStoreCacheDisabled(t *testing.T) {
	st := seedCacheStore(t, 1)
	st.SetCacheLimit(0)
	for i := 0; i < 2; i++ {
		if _, err := st.Load("a"); err != nil {
			t.Fatal(err)
		}
	}
	stats := st.Stats()
	if stats.CachedFrames != 0 || stats.Hits != 0 || stats.Misses != 2 {
		t.Fatalf("disabled cache stats: %+v", stats)
	}

	// Shrinking the limit evicts the overflow from an enabled cache too.
	st.SetCacheLimit(DefaultCacheBytes)
	if _, err := st.Load("a"); err != nil {
		t.Fatal(err)
	}
	st.SetCacheLimit(1) // below the frame cost: evicts the entry
	if got := st.Stats(); got.CachedFrames != 0 {
		t.Fatalf("SetCacheLimit did not shrink the cache: %+v", got)
	}
}
