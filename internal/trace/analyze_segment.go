package trace

// Segment-parallel analysis of one checkpointed trace: the ReplaySegments
// fan-out applied to the daemon's dominant job type. Replay execution is
// embarrassingly parallel — each segment resumes from its start checkpoint
// exactly as in ReplaySegments — but analyzer state is prefix state: a race
// detector's vector clocks or a leak detector's site table only mean
// anything with everything since program start already folded in. The split
// that keeps both properties:
//
//   - Each segment replays concurrently with only an analysis.Tape attached
//     (cheap event capture, no analyzer math), paying the O(segment)
//     checkpoint-restore + decode + execute cost that made replay fan-out
//     worthwhile. Stacks are symbolized here, in parallel.
//   - A sequential fold consumes the tapes in segment order, re-delivering
//     each into one analyzer chain. The fold is pipelined against the
//     replays: segment i's tape folds as soon as segments 0..i have
//     finished, while later segments are still executing.
//
// At every interior boundary the fold round-trips the chain through the
// StateCheckpointer codecs — encode the accumulated state, decode it into a
// fresh factory-built set — which is the propagated state chain of the
// multi-node design exercised in-process, so the codecs are proven on every
// segmented analyze rather than rotting until a fleet exists.
//
// Findings come out equal to the whole-trace path because every segment
// boundary is an epoch boundary — a globally quiescent point — so the
// concatenated tapes form a legal observation order of the whole execution
// (see the analysis.Tape doc comment), and the race report is canonicalized
// so observation order inside a racing pair does not show through. The
// leak detector's program-end scan runs against the final segment's
// completed runtime, whose memory image the stitching checks have already
// tied to the recording.

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/obs"
)

// SegmentAttribution is one segment's share of a segmented analyze: where
// the wall time went, visible in AnalyzeResult and mirrored into the job
// timing breakdown so slow-segment skew shows up without a timeline
// download.
type SegmentAttribution struct {
	// Seg is the segment index (0 = from program start).
	Seg int `json:"seg"`
	// FirstEpoch/LastEpoch bound the segment's epoch range, inclusive.
	FirstEpoch int64 `json:"first_epoch"`
	LastEpoch  int64 `json:"last_epoch"`
	// Events counts the recorded events the segment re-executed.
	Events int64 `json:"events"`
	// Wall is the segment replay's wall time; Fold, Decode, and Exec are its
	// stages (checkpoint folds, epoch-slice fetch, execution + tape capture).
	Wall   time.Duration `json:"wall"`
	Fold   time.Duration `json:"fold"`
	Decode time.Duration `json:"decode"`
	Exec   time.Duration `json:"exec"`
	// Merge is the sequential fold's share: tape re-delivery into the
	// analyzer chain plus, on interior boundaries, the analyzer state
	// round-trip.
	Merge time.Duration `json:"merge"`
}

// AnalyzeSegments analyzes one checkpointed trace segment-parallel and
// returns a whole-trace result: findings equal to AnalyzeBatch's (the race
// report is canonical, so equality is byte-level after the detector's own
// deterministic sort), with per-segment attribution rows alongside. The
// trace is split at its checkpoint frames exactly like ReplaySegments;
// workers <= 0 selects GOMAXPROCS. A trace without checkpoints degenerates
// to a single segment — one whole-trace replay plus one tape fold.
func AnalyzeSegments(j AnalyzeJob, workers int) (res AnalyzeResult, stats BatchStats, retErr error) {
	start := time.Now()
	res = AnalyzeResult{Name: j.Name}
	defer func() { res.Wall = time.Since(start) }()
	fail := func(err error) (AnalyzeResult, BatchStats, error) {
		res.Err = err
		return res, stats, err
	}
	if err := j.validate(); err != nil {
		return fail(err)
	}
	if j.NewAnalyzers == nil {
		return fail(fmt.Errorf("trace: analyze job %q has no analyzer factory", j.Name))
	}
	plans, err := planSegments(j.Handle.idx)
	if err != nil {
		return fail(err)
	}

	segs := make([]SegmentResult, len(plans))
	tapes := make([]*analysis.Tape, len(plans))
	rts := make([]*core.Runtime, len(plans))
	done := make([]chan struct{}, len(plans))
	for i := range done {
		done[i] = make(chan struct{})
	}

	// Replay fan-out on the shared pool; the fold below consumes segments in
	// order as they complete, so analyzer math for segment i overlaps the
	// execution of segments i+1..m.
	var elapsed time.Duration
	poolDone := make(chan struct{})
	go func() {
		defer close(poolDone)
		elapsed = runPool(len(plans), workers, func(i int) {
			defer close(done[i])
			segs[i], tapes[i], rts[i] = runAnalyzeSegment(&j, i, &plans[i])
		})
	}()

	chain := j.NewAnalyzers()
	foldSp := j.Span.Child("analyzer fold")
	foldSp.SetTID(len(plans) + 1)
	var firstErr error
	res.Segments = make([]SegmentAttribution, 0, len(plans))
	for i := range plans {
		<-done[i]
		s := &segs[i]
		at := SegmentAttribution{
			Seg: i, FirstEpoch: s.FirstEpoch, LastEpoch: s.LastEpoch,
			Events: plans[i].events,
			Wall:   s.Wall, Fold: s.Fold, Decode: s.Decode, Exec: s.Exec,
		}
		if !s.Matched {
			if firstErr == nil {
				firstErr = fmt.Errorf("segment %s: %w", s.Name, s.Err)
			}
		} else if firstErr == nil {
			mergeStart := time.Now()
			tapes[i].Replay(chain)
			if i < len(plans)-1 {
				foldStart := time.Now()
				if chain, err = foldAnalyzerState(chain, j.NewAnalyzers); err != nil {
					firstErr = fmt.Errorf("segment %s: %w", s.Name, err)
				}
				obs.AnalysisStateFold.Observe(time.Since(foldStart).Seconds())
			}
			at.Merge = time.Since(mergeStart)
			obs.AnalysisMerge.Observe(at.Merge.Seconds())
			foldSp.Record(fmt.Sprintf("merge %d", i), mergeStart, mergeStart.Add(at.Merge))
		}
		tapes[i] = nil // folded (or abandoned); release the event buffer
		res.Segments = append(res.Segments, at)
	}
	foldSp.End()
	<-poolDone

	stats = BatchStats{Jobs: len(plans), Elapsed: elapsed}
	outputs := make([]string, len(plans))
	for i := range segs {
		s := &segs[i]
		stats.Work += s.Wall
		if !s.Matched {
			stats.Failed++
			continue
		}
		stats.Matched++
		stats.Events += plans[i].events
		if s.Report != nil {
			stats.Attempts += int64(s.Report.Stats.LastReplayAttempts)
			outputs[i] = s.Report.Output
		}
	}
	// Whole-run output stitch, as in ReplaySegments: per-segment volumes were
	// checked against checkpoint attribution inside the replays; this catches
	// content-level mismatches across the run.
	if firstErr == nil && j.Handle.Summary() != nil && !j.Handle.Summary().Partial {
		if got := strings.Join(outputs, ""); got != j.Handle.Summary().Output {
			firstErr = fmt.Errorf("trace: stitched output (%d bytes) differs from recording (%d bytes)",
				len(got), len(j.Handle.Summary().Output))
			stats.Failed++
		}
	}
	if firstErr != nil {
		// Findings derived from a divergent or unstitchable fan-out are not
		// evidence about the recorded run.
		res.Err = firstErr
		return res, stats, firstErr
	}

	final := &segs[len(segs)-1]
	res.Report = final.Report
	res.Matched = true
	// Finish passes (the leak detector's program-end scan) run against the
	// final segment's completed runtime; a reproduced fault from the final
	// segment rides along exactly as in the whole-trace path.
	res.Findings, res.Err = analysis.Collect(rts[len(rts)-1], chain, final.Err)
	return res, stats, nil
}

// runAnalyzeSegment replays one segment with a fresh tape attached and
// returns the tape for the sequential fold; the final segment's runtime is
// kept for the analyzers' Finish passes. Stage accounting and stitching
// match runSegment.
func runAnalyzeSegment(j *AnalyzeJob, i int, plan *segPlan) (res SegmentResult, tape *analysis.Tape, rt *core.Runtime) {
	res = SegmentResult{
		Name:       fmt.Sprintf("%s@%d-%d", j.Name, plan.first, plan.last),
		Seg:        i,
		FirstEpoch: plan.first,
		LastEpoch:  plan.last,
	}
	tape = analysis.NewTape()
	start := time.Now()
	sp := j.Span.ChildAt(fmt.Sprintf("segment %d", i), start)
	sp.SetTID(i + 1)
	sp.SetAttr("epochs", fmt.Sprintf("%d-%d", plan.first, plan.last))
	defer func() {
		res.Wall = time.Since(start)
		obs.AnalysisSegment.Observe(res.Wall.Seconds())
		sp.SetAttr("matched", fmt.Sprintf("%t", res.Matched))
		sp.End()
	}()
	stage := func(name string, from time.Time, d *time.Duration) {
		*d = time.Since(from)
		sp.Record(name, from, from.Add(*d))
	}

	var startCk, endCk *core.Checkpoint
	var err error
	foldStart := time.Now()
	if plan.startCk >= 0 {
		if startCk, err = j.Handle.CheckpointAt(plan.startCk); err != nil {
			res.Err = err
			return res, tape, nil
		}
	}
	if plan.endCk >= 0 {
		if endCk, err = j.Handle.CheckpointAt(plan.endCk); err != nil {
			res.Err = err
			return res, tape, nil
		}
	}
	stage("fold", foldStart, &res.Fold)
	decodeStart := time.Now()
	epochs, err := j.Handle.Epochs(plan.first, plan.last)
	if err != nil {
		res.Err = err
		return res, tape, nil
	}
	stage("decode", decodeStart, &res.Decode)

	execStart := time.Now()
	opts := j.Opts
	opts.Observers = append(append([]core.Observer(nil), j.Opts.Observers...), tape)
	rt, err = core.PrepareReplayAt(j.Module, startCk, epochs, endCk, opts)
	if err != nil {
		res.Err = err
		return res, tape, nil
	}
	if startCk == nil && j.Setup != nil {
		// Only the first segment recreates recording-time OS state; later
		// segments restore it from their checkpoint.
		if err := j.Setup(rt); err != nil {
			rt.Shutdown()
			res.Err = err
			return res, tape, nil
		}
	}
	rep, err := rt.RunReplay()
	stage("execute", execStart, &res.Exec)
	res.Report = rep
	if rep == nil {
		res.Err = err
		return res, tape, nil
	}
	res.Matched = true
	res.Err = err // a reproduced fault arrives here, alongside the report
	stitchStart := time.Now()
	if endCk == nil {
		// Final segment: the recorded exit value is the oracle (output is
		// stitched across all segments by the caller). A partial summary —
		// the recording stopped before program end — carries no oracle.
		if sum := j.Handle.Summary(); sum != nil && !sum.Partial && rep.Exit != sum.Exit {
			res.Matched = false
			res.Err = fmt.Errorf("trace: final segment replayed exit %d, recorded %d", rep.Exit, sum.Exit)
		}
	} else {
		// Interior segment: the fold never needs this runtime (Finish passes
		// run on the final segment's), so drop the reference now.
		rt = nil
	}
	stage("stitch", stitchStart, &res.Stitch)
	return res, tape, rt
}

// foldAnalyzerState round-trips the analyzer chain's accumulated state
// through the StateCheckpointer codecs into a fresh factory-built set — the
// interior-boundary handoff of a propagated state chain. A chain with any
// analyzer lacking the interface is carried across by instance instead
// (composable fallback; the fold is sequential either way).
func foldAnalyzerState(chain []analysis.Analyzer, factory func() []analysis.Analyzer) ([]analysis.Analyzer, error) {
	ckpts := make([]analysis.StateCheckpointer, len(chain))
	for i, a := range chain {
		c, ok := a.(analysis.StateCheckpointer)
		if !ok {
			return chain, nil
		}
		ckpts[i] = c
	}
	var buf []byte
	for _, c := range ckpts {
		buf = c.AppendState(buf)
	}
	fresh := factory()
	if len(fresh) != len(chain) {
		return nil, fmt.Errorf("trace: analyzer factory returned %d analyzers, state chain carries %d",
			len(fresh), len(chain))
	}
	rest := buf
	for i, a := range fresh {
		if a.Name() != chain[i].Name() {
			return nil, fmt.Errorf("trace: analyzer factory order changed (%q where state chain has %q)",
				a.Name(), chain[i].Name())
		}
		c, ok := a.(analysis.StateCheckpointer)
		if !ok {
			return nil, fmt.Errorf("trace: fresh %q analyzer lost its state codec", a.Name())
		}
		var err error
		if rest, err = c.DecodeState(rest); err != nil {
			return nil, fmt.Errorf("trace: analyzer state chain: %w", err)
		}
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("trace: %d trailing bytes in analyzer state chain", len(rest))
	}
	return fresh, nil
}
