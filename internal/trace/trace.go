// Package trace persists iReplayer recordings: the per-thread and
// per-variable event lists of §3.2, which in the paper live only in the
// recording process, serialized to a compact versioned binary format so an
// execution can be recorded once and replayed identically many times,
// offline and in parallel.
//
// The on-disk layout is a magic string followed by self-delimiting,
// CRC-checked frames:
//
//	file    := magic frame* [index-frame trailer]
//	magic   := "IRTRACE1" (8 bytes)
//	frame   := kind:1 len:uvarint payload:len crc32(payload):4 (LE, IEEE)
//	kinds   := 1 header | 2 epoch | 3 summary (end marker) | 4 checkpoint
//	           | 5 index (footer, format v3)
//	trailer := indexOff:8 (LE) "IRX3"
//
// The header frame carries the format version, an application label, the
// recorded module's fingerprint (tir.Fingerprint), and the recording
// options that must match at replay time. Each epoch frame is one
// record.EpochLog: per-thread event lists varint-encoded with per-field
// delta compression (variable addresses, positions, and auxiliary values
// change slowly within a thread's list), then per-variable order lists as
// thread-ID deltas. The summary frame stores the recorded exit value and
// program output, giving offline verification something to compare against;
// a trace without one (recorder killed mid-run) still loads, up to its last
// intact frame. Frames after the summary are a corruption error.
//
// Format v2 adds the optional checkpoint frame (core.Checkpoint serialized):
// the epoch-boundary state the runtime already captures — memory snapshot,
// allocator metadata, vCPU contexts, shadow synchronization state, VFS
// state — persisted at a configurable epoch interval. A checkpoint frame
// precedes the epoch it begins, and its memory image is delta/zero-run
// encoded against the previous checkpoint's (Trace.CheckpointStates folds
// the chain back). Checkpoints split a long trace into independently
// replayable segments (segment.go); v1 traces, which have none, still load.
//
// Format v3 adds random access: the writer closes the file with an index
// footer frame (byte offsets, payload lengths, and CRCs of every epoch and
// checkpoint frame, plus per-frame statistics) located by a fixed trailer,
// so inventory scans and single-trace inspection cost one footer read, and
// a Handle can decode exactly the epoch range or checkpoint a consumer
// asks for (handle.go). Checkpoint frames gain a flags field whose
// keyframe bit marks full-image frames (written every K checkpoints,
// Writer.SetKeyframeEvery), bounding the fold to reach checkpoint k at K
// deltas. A damaged index region degrades the file to the v2 scan path; an
// index that parses but lies about the file is hard corruption.
//
// Format v4 adds seekable per-frame compression and suffix recordings.
// A compressed epoch or checkpoint frame carries the frameCompressed bit
// in its kind byte and stores a raw-length varint plus a deflate stream;
// CRCs and index entries cover the stored bytes, so random access through
// the footer is unchanged and decompression runs only after the checksum
// passes (compress.go). The header gains a flags field whose compressed
// bit declares a trace written with compression (Header.Compressed — the
// store's hot/cold signal), and the summary gains a flags field whose
// partial bit (Summary.Partial) marks a recording that stopped before
// program end — a flight-recorder spill — whose exit and output are not
// replay oracles. A trace may begin with a keyframe checkpoint at its
// first epoch frame: such a suffix trace replays from the checkpoint
// instead of program start (segment.go, batch.go).
//
// Writer streams epochs as the runtime flushes them (Writer.Sink plugs
// directly into core.Options.TraceSink, Writer.CheckpointSink into
// core.Options.CheckpointSink); Reader validates and decodes. Store manages
// a directory of traces indexed by module fingerprint with a byte-bounded
// frame-granular decode cache, and batch.go fans stored traces across a
// worker pool for parallel offline replay.
package trace

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/record"
)

// Magic identifies a trace file; the trailing digit is the format
// generation and changes only on incompatible layout changes (the header
// version covers compatible revisions).
const Magic = "IRTRACE1"

// Version is the current header version. Version 2 added checkpoint
// frames; version 3 added the index footer frame, the checkpoint flags
// field (keyframe bit), and the keyframe interval; version 4 added
// per-frame compression, header flags, and summary flags. v1–v3 traces
// load unchanged through their original paths.
const Version = 4

// MinVersion is the oldest header version the reader accepts.
const MinVersion = 1

// Frame kinds.
const (
	frameHeader byte = 1
	frameEpoch  byte = 2
	frameSum    byte = 3
	frameCkpt   byte = 4
	frameIndex  byte = 5
)

// Header describes a recording. EventCap, VarCap, and Seed are the
// recording options an offline replay must reuse for addresses and epoch
// structure to reproduce.
type Header struct {
	// Version is the format version the stream declared. It is set on
	// decode and ignored on encode — writers always write the current
	// Version.
	Version int
	// App is a free-form application label (workload name for the bundled
	// apps).
	App string
	// ModuleHash is tir.Fingerprint of the recorded module; zero means
	// unknown (the replayer then skips the identity check).
	ModuleHash uint64
	// EventCap and VarCap are the recording run's preallocated list sizes.
	EventCap int
	VarCap   int
	// Seed is the recording run's external-nondeterminism seed.
	Seed int64
	// AppIters is the per-thread iteration count the workload was built
	// with (0 = unknown): the one module-shaping parameter the bundled
	// recorder exposes, stored so replay can rebuild the exact module
	// instead of searching for a fingerprint match.
	AppIters int
	// Compressed declares a trace written with per-frame compression
	// (format v4): epoch and checkpoint bodies that shrink are stored
	// deflated. Set it before NewWriter to enable compression; on decode
	// it is the store's cheap hot/cold classification — no frame needs to
	// be touched to know a trace has been compacted.
	Compressed bool
}

// Summary is the recorded run's observable outcome, stored in the end
// frame for offline verification.
type Summary struct {
	Exit   uint64
	Output string
	// Partial (format v4) marks a recording that ended before the program
	// did — a flight-recorder spill on demand or signal, or a salvaged
	// crash ring. Exit and Output are then not oracles: replay consumes
	// the recorded events and verifies schedule reproduction, but skips
	// the exit/output comparison (Output may still carry the suffix output
	// when the spiller knew it).
	Partial bool
}

// Checkpoint is one decoded checkpoint frame. State carries everything but
// the memory image, which stays in delta form (memDelta) until
// Trace.CheckpointStates folds the chain — decoding a long trace must not
// materialize one full address-space image per checkpoint.
type Checkpoint struct {
	// State is the checkpoint with State.Snap == nil. Immutable: segment
	// replays running in parallel share it.
	State *core.Checkpoint
	// Keyframe marks a frame whose memory delta was encoded against the
	// empty image (a full snapshot): the fold base readers restart from.
	// The writer emits one every K checkpoints (Writer.SetKeyframeEvery);
	// in v2 traces only the chain's first checkpoint is one.
	Keyframe bool
	// memDelta is the raw delta/zero-run encoding of the memory image
	// against the previous checkpoint's (the empty image for keyframes).
	memDelta []byte
}

// Epoch returns the 1-based epoch the checkpoint begins.
func (c *Checkpoint) Epoch() int64 { return c.State.Epoch }

// Trace is a fully decoded trace.
type Trace struct {
	Header  Header
	Epochs  []*record.EpochLog
	Summary *Summary
	// Checkpoints are the trace's checkpoint frames in file order (empty for
	// v1 traces or recordings without checkpointing).
	Checkpoints []*Checkpoint
}

// CheckpointStates folds the delta chain and returns every checkpoint with
// its full memory image materialized. Keyframes restart the fold from the
// empty image. The returned checkpoints (and their snapshots) are fresh
// per call except for the shared immutable State fields; callers must not
// mutate them.
func (t *Trace) CheckpointStates() ([]*core.Checkpoint, error) {
	var prev *mem.Snapshot
	out := make([]*core.Checkpoint, len(t.Checkpoints))
	for i, ck := range t.Checkpoints {
		base := prev
		if ck.Keyframe {
			base = nil
		}
		snap, err := mem.ApplySnapshotDelta(base, ck.memDelta)
		if err != nil {
			return nil, fmt.Errorf("trace: checkpoint %d (epoch %d): %w", i, ck.Epoch(), err)
		}
		st := *ck.State
		st.Snap = snap
		out[i] = &st
		prev = snap
	}
	return out, nil
}

// foldCheckpoints folds the delta chain from the nearest keyframe at or
// before k and returns checkpoint k with its memory image materialized —
// the bounded-work path behind Handle.CheckpointAt: at most the keyframe
// interval's worth of deltas are applied.
func foldCheckpoints(cks []*Checkpoint, k int) (*core.Checkpoint, error) {
	if k < 0 || k >= len(cks) {
		return nil, fmt.Errorf("trace: checkpoint %d out of range [0,%d)", k, len(cks))
	}
	j := k
	for j > 0 && !cks[j].Keyframe {
		j--
	}
	var prev *mem.Snapshot
	for i := j; i <= k; i++ {
		base := prev
		if cks[i].Keyframe {
			base = nil
		}
		snap, err := mem.ApplySnapshotDelta(base, cks[i].memDelta)
		if err != nil {
			return nil, fmt.Errorf("trace: checkpoint %d (epoch %d): %w", i, cks[i].Epoch(), err)
		}
		prev = snap
	}
	st := *cks[k].State
	st.Snap = prev
	return &st, nil
}

// EventCount sums events across all epochs.
func (t *Trace) EventCount() int64 {
	var n int64
	for _, ep := range t.Epochs {
		n += int64(ep.EventCount())
	}
	return n
}

// Encode serializes a whole trace, interleaving each checkpoint frame
// before the epoch it begins. The encoding is canonical: equal traces
// produce identical bytes, and Encode∘Decode∘Encode is the identity on
// bytes (decoded checkpoints re-emit their stored delta verbatim).
func Encode(tr *Trace) ([]byte, error) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, tr.Header)
	if err != nil {
		return nil, err
	}
	ci := 0
	for _, ep := range tr.Epochs {
		for ci < len(tr.Checkpoints) && tr.Checkpoints[ci].Epoch() == ep.Epoch {
			ck := tr.Checkpoints[ci]
			if ck.memDelta != nil {
				err = w.writeRawCheckpoint(ck)
			} else {
				err = w.WriteCheckpoint(ck.State)
			}
			if err != nil {
				return nil, err
			}
			ci++
		}
		if err := w.WriteEpoch(ep); err != nil {
			return nil, err
		}
	}
	if ci != len(tr.Checkpoints) {
		return nil, fmt.Errorf("trace: checkpoint at epoch %d has no matching epoch frame",
			tr.Checkpoints[ci].Epoch())
	}
	if err := w.Finish(tr.Summary); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode deserializes a whole trace produced by Encode or a Writer.
func Decode(b []byte) (*Trace, error) {
	return ReadTrace(bytes.NewReader(b))
}

func validateName(name string) error {
	if name == "" {
		return fmt.Errorf("trace: empty trace name")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.', r == '#':
		default:
			return fmt.Errorf("trace: invalid character %q in trace name %q", r, name)
		}
	}
	return nil
}
