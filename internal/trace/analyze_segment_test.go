package trace

import (
	"bytes"
	"reflect"
	"sort"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/hostrace"
	"repro/internal/tir"
	"repro/internal/workloads"
)

// recordCheckpointedCorpus records one ground-truth corpus program with an
// aggressively small epoch cap and a checkpoint at every boundary, so even
// the few-event corpus programs split into multiple analysis segments.
func recordCheckpointedCorpus(t testing.TB, c workloads.AnalysisCase) (*tir.Module, *Trace, core.Options) {
	t.Helper()
	mod := c.Build()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{App: c.Name, ModuleHash: tir.Fingerprint(mod), EventCap: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.New(mod, core.Options{
		Seed: 9, EventCap: 4,
		TraceSink:       w.Sink(),
		CheckpointEvery: 1,
		CheckpointSink:  w.CheckpointSink(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run()
	if err != nil {
		t.Fatalf("record %s: %v", c.Name, err)
	}
	if err := w.Finish(&Summary{Exit: rep.Exit, Output: rep.Output}); err != nil {
		t.Fatal(err)
	}
	tr, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return mod, tr, core.Options{Seed: 9, EventCap: 4, DelayOnDivergence: true}
}

func corpusFactory() []analysis.Analyzer {
	return []analysis.Analyzer{
		analysis.NewRaceDetector(), analysis.NewLeakDetector(), analysis.NewProfile(),
	}
}

// uniqueCanonical dedupes the replay-invariant canonical form: two
// independent replays of a *racy* program may observe a racing pair in both
// orientations or just one, so only the set — not the multiplicity — is
// evidence (same stance as canonicalFindings).
func uniqueCanonical(fs []analysis.Finding) []string {
	seen := map[string]bool{}
	for _, s := range canonicalFindings(fs) {
		seen[s] = true
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// checkGroundTruth holds findings to the corpus entry's known defects.
func checkGroundTruth(t *testing.T, c workloads.AnalysisCase, fs []analysis.Finding) {
	t.Helper()
	for _, pair := range c.RacePairs {
		found := false
		for _, f := range fs {
			if f.Kind != "data-race" || len(f.Sites) != 2 {
				continue
			}
			a, b := f.Sites[0].Func(), f.Sites[1].Func()
			if (a == pair[0] && b == pair[1]) || (a == pair[1] && b == pair[0]) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: racing pair %v not blamed in %v", c.Name, pair, fs)
		}
	}
	leaks := 0
	for _, f := range fs {
		if f.Kind != "memory-leak" {
			continue
		}
		leaks++
		ok := false
		for _, site := range c.LeakSites {
			if f.Sites[0].Func() == site {
				ok = true
			}
		}
		if !ok {
			t.Errorf("%s: leak blamed on %s, want one of %v", c.Name, f.Sites[0].Func(), c.LeakSites)
		}
	}
	if leaks != c.Leaks {
		t.Errorf("%s: %d leak findings, want %d", c.Name, leaks, c.Leaks)
	}
	if len(c.RacePairs) == 0 {
		for _, f := range fs {
			if f.Kind == "data-race" {
				t.Errorf("%s: race-free program blamed: %v", c.Name, f)
			}
		}
	}
}

// TestAnalyzeSegmentsCorpusIdentity is the tentpole acceptance test: every
// ground-truth corpus program, recorded with a checkpoint at every epoch
// boundary, produces the same findings through AnalyzeSegments as through
// the whole-trace AnalyzeBatch path — byte-identical for the deterministic
// programs (race-free and leak corpus), canonical-set-identical for the
// racy ones, whose detector arrival order is scheduling-dependent on both
// paths. Ground truth is checked on both paths as well.
//
//ir:racy analyzes traces recorded from the racy corpus
func TestAnalyzeSegmentsCorpusIdentity(t *testing.T) {
	if hostrace.Enabled {
		t.Skip("corpus includes deliberately racy programs")
	}
	for _, c := range workloads.AnalysisCorpus() {
		t.Run(c.Name, func(t *testing.T) {
			mod, tr, opts := recordCheckpointedCorpus(t, c)
			if len(tr.Checkpoints) < 1 {
				t.Fatalf("recording produced no checkpoints (%d epochs)", len(tr.Epochs))
			}
			job := AnalyzeJob{
				Job:          Job{Name: c.Name, Module: mod, Handle: OpenTrace(tr), Opts: opts},
				NewAnalyzers: corpusFactory,
			}
			whole, wstats := AnalyzeBatch([]AnalyzeJob{job}, 1)
			if wstats.Failed != 0 {
				t.Fatalf("whole-trace analysis failed: %v", whole[0].Err)
			}
			seg, sstats, err := AnalyzeSegments(job, 4)
			if err != nil {
				t.Fatalf("segment analysis: %v", err)
			}
			if !seg.Matched || sstats.Jobs != len(tr.Checkpoints)+1 || sstats.Matched != sstats.Jobs {
				t.Fatalf("segment stats = %+v (matched %t)", sstats, seg.Matched)
			}
			if len(seg.Segments) != sstats.Jobs {
				t.Fatalf("%d attribution rows for %d segments", len(seg.Segments), sstats.Jobs)
			}
			next := int64(1)
			for _, at := range seg.Segments {
				if at.FirstEpoch != next {
					t.Fatalf("segment %d begins at epoch %d, want %d", at.Seg, at.FirstEpoch, next)
				}
				next = at.LastEpoch + 1
			}
			if len(c.RacePairs) == 0 {
				// Deterministic program: the callback stream is identical on
				// both paths, so the reports must match to the byte.
				if !reflect.DeepEqual(whole[0].Findings, seg.Findings) {
					t.Fatalf("findings differ between paths:\nwhole:   %+v\nsegment: %+v",
						whole[0].Findings, seg.Findings)
				}
			} else if w, s := uniqueCanonical(whole[0].Findings), uniqueCanonical(seg.Findings); !reflect.DeepEqual(w, s) {
				t.Fatalf("canonical findings differ between paths:\nwhole:   %v\nsegment: %v", w, s)
			}
			checkGroundTruth(t, c, whole[0].Findings)
			checkGroundTruth(t, c, seg.Findings)
		})
	}
}

// TestAnalyzeSegmentsRollbackRetry runs segmented analysis over a real
// workload recording whose replay exercises the divergence-retry path
// (DelayOnDivergence), so abandoned attempts must vanish from the tapes:
// findings still come out byte-identical to the whole-trace path, and the
// attribution rows account for every segment.
func TestAnalyzeSegmentsRollbackRetry(t *testing.T) {
	spec := scaledSpec(t, "streamcluster", 0.5)
	opts := core.Options{Seed: 9, EventCap: 24}
	tr := recordCheckpointed(t, spec, opts, 2)
	if len(tr.Checkpoints) < 2 {
		t.Fatalf("want >= 2 checkpoints, got %d", len(tr.Checkpoints))
	}
	mod, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	job := AnalyzeJob{
		Job: Job{
			Name: spec.Name, Module: mod, Handle: OpenTrace(tr),
			Opts:  core.Options{Seed: opts.Seed, EventCap: opts.EventCap, DelayOnDivergence: true},
			Setup: func(rt *core.Runtime) error { spec.SetupOS(rt.OS()); return nil },
		},
		NewAnalyzers: corpusFactory,
	}
	whole, wstats := AnalyzeBatch([]AnalyzeJob{job}, 1)
	if wstats.Failed != 0 {
		t.Fatalf("whole-trace analysis failed: %v", whole[0].Err)
	}
	seg, sstats, err := AnalyzeSegments(job, 4)
	if err != nil {
		t.Fatalf("segment analysis: %v", err)
	}
	if sstats.Matched != sstats.Jobs || sstats.Events != tr.EventCount() {
		t.Fatalf("stats = %+v (recorded %d events)", sstats, tr.EventCount())
	}
	if !reflect.DeepEqual(whole[0].Findings, seg.Findings) {
		t.Fatalf("findings differ between paths:\nwhole:   %+v\nsegment: %+v",
			whole[0].Findings, seg.Findings)
	}
	var walled int
	for _, at := range seg.Segments {
		if at.Wall > 0 {
			walled++
		}
	}
	if walled == 0 {
		t.Fatal("no attribution row carries wall time")
	}
}

// TestAnalyzeStreamingCacheBounded is the streaming refactor's acceptance
// test: a whole-trace analyze job through a store handle must live within a
// cache budget sized well below the decoded recording — the windowed epoch
// stream releases frames instead of pinning the trace — while producing the
// same findings as the in-memory path.
func TestAnalyzeStreamingCacheBounded(t *testing.T) {
	spec := scaledSpec(t, "streamcluster", 0.5)
	opts := core.Options{Seed: 9, EventCap: 24}
	b := recordCheckpointedBytes(t, spec, opts, 2, 2)
	st := storeWith(t, "stream", b)

	tr, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	ropts := core.Options{Seed: opts.Seed, EventCap: opts.EventCap, DelayOnDivergence: true}
	setup := func(rt *core.Runtime) error { spec.SetupOS(rt.OS()); return nil }
	factory := func() []analysis.Analyzer {
		return []analysis.Analyzer{analysis.NewLeakDetector(), analysis.NewProfile()}
	}
	viaMem, mstats := AnalyzeBatch([]AnalyzeJob{{
		Job:          Job{Name: "mem", Module: mod, Handle: OpenTrace(tr), Opts: ropts, Setup: setup},
		NewAnalyzers: factory,
	}}, 1)
	if mstats.Failed != 0 {
		t.Fatalf("in-memory analysis failed: %v", viaMem[0].Err)
	}

	// Budget: half the decoded recording — streaming must live within it.
	var fullCost int64
	for _, ep := range tr.Epochs {
		fullCost += epochCost(ep)
	}
	for _, ck := range tr.Checkpoints {
		fullCost += ckptCost(ck)
	}
	limit := fullCost / 2
	st.SetCacheLimit(limit)

	h, err := st.Open("stream")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	viaStore, sstats := AnalyzeBatch([]AnalyzeJob{{
		Job:          Job{Name: "stream", Module: mod, Handle: h, Opts: ropts, Setup: setup},
		NewAnalyzers: factory,
	}}, 1)
	if sstats.Failed != 0 {
		t.Fatalf("store-handle analysis failed: %v", viaStore[0].Err)
	}
	if !reflect.DeepEqual(viaMem[0].Findings, viaStore[0].Findings) {
		t.Fatalf("findings differ between paths:\nmem:   %+v\nstore: %+v",
			viaMem[0].Findings, viaStore[0].Findings)
	}
	cstats := st.Stats()
	if cstats.CachedBytes > limit {
		t.Fatalf("cache cost %d exceeds the %d budget (full decode costs %d)",
			cstats.CachedBytes, limit, fullCost)
	}
	if cstats.Misses == 0 {
		t.Fatal("streaming analyze never touched the store cache")
	}
}
