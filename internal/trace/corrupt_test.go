package trace

// Corrupt-trace corpus: every way a stored trace can rot — truncated
// mid-frame, flipped CRC, trailing garbage, implausible frame length — with
// the required behavior of Load (error), List (degraded entry that hides
// nothing), and scanFile (error) asserted for each.

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/record"
)

// corpusTrace builds a small, fully valid two-epoch trace.
func corpusTrace(t *testing.T) []byte {
	t.Helper()
	tr := &Trace{
		Header: Header{App: "corpus", ModuleHash: 7, EventCap: 16, VarCap: 16},
		Epochs: []*record.EpochLog{
			{
				Epoch: 1,
				Threads: []record.ThreadLog{{TID: 0, Events: []record.Event{
					{Kind: record.KMutexLock, Var: 0x1000, Pos: 0},
				}}},
				Vars: []record.VarLog{{Addr: 0x1000, Order: []int32{0}}},
			},
			{
				Epoch: 2,
				Threads: []record.ThreadLog{{TID: 0, Events: []record.Event{
					{Kind: record.KExit, Pos: -1},
				}}},
			},
		},
		Summary: &Summary{Exit: 3, Output: "1\n"},
	}
	b, err := Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// corruptions returns the corpus: name -> mutated bytes.
func corruptions(t *testing.T, valid []byte) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}

	// Truncated mid-frame: cut inside the last frame's payload.
	out["truncated-mid-frame"] = append([]byte(nil), valid[:len(valid)-3]...)

	// Flipped CRC: invert one bit of the final frame's checksum.
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0x01
	out["flipped-crc"] = flipped

	// Trailing garbage after the summary frame.
	out["trailing-garbage"] = append(append([]byte(nil), valid...), 0xde, 0xad, 0xbe, 0xef)

	// A trailing *valid* frame after the summary: decodes frame-wise but is
	// corruption, because Reader.Next never reads past the end marker.
	var epPayload []byte
	epPayload = appendEpoch(nil, &record.EpochLog{Epoch: 3, Threads: []record.ThreadLog{{TID: 0}}})
	trailing := append([]byte(nil), valid...)
	trailing = append(trailing, frameEpoch)
	trailing = binary.AppendUvarint(trailing, uint64(len(epPayload)))
	trailing = append(trailing, epPayload...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32ieee(epPayload))
	out["trailing-frame"] = append(trailing, crc[:]...)

	// Truncated right after a frame's length varint: zero payload bytes
	// present where the length promises some. A bare io.EOF here must not
	// pass for a clean frame-boundary truncation.
	afterLen := append([]byte(nil), valid...)
	afterLen = append(afterLen, frameEpoch)
	afterLen = binary.AppendUvarint(afterLen, 5)
	out["truncated-after-length"] = afterLen

	// Implausible frame length: a huge length varint right after the header
	// frame. Must be rejected by the size bound before any allocation.
	hdrEnd := headerFrameEnd(t, valid)
	huge := append([]byte(nil), valid[:hdrEnd]...)
	huge = append(huge, frameEpoch)
	huge = binary.AppendUvarint(huge, 1<<40)
	huge = append(huge, 0x01, 0x02)
	out["implausible-length"] = huge

	return out
}

func crc32ieee(b []byte) uint32 {
	// mirrors the writer's framing checksum
	return crc32.ChecksumIEEE(b)
}

// headerFrameEnd returns the offset just past the header frame.
func headerFrameEnd(t *testing.T, b []byte) int {
	t.Helper()
	off := len(Magic) + 1 // magic + kind
	n, w := binary.Uvarint(b[off:])
	if w <= 0 {
		t.Fatal("malformed corpus bytes")
	}
	return off + w + int(n) + 4
}

// TestV1TraceLoads: a format-v1 file (what every pre-checkpoint writer
// produced — same framing, header version 1, no checkpoint frames) still
// decodes, replays whole-program via ReplaySegments' single-segment
// fallback, and scans.
func TestV1TraceLoads(t *testing.T) {
	valid := corpusTrace(t)
	// Patch the header payload's leading version varint from 2 to 1 and
	// recompute the frame CRC — byte-for-byte what a v1 writer emitted.
	v1 := append([]byte(nil), valid...)
	off := len(Magic) + 1
	n, w := binary.Uvarint(v1[off:])
	payload := v1[off+w : off+w+int(n)]
	if payload[0] != Version {
		t.Fatalf("header does not lead with the version varint: %d", payload[0])
	}
	payload[0] = 1
	binary.LittleEndian.PutUint32(v1[off+w+int(n):], crc32ieee(payload))

	tr, err := Decode(v1)
	if err != nil {
		t.Fatalf("v1 trace failed to load: %v", err)
	}
	if len(tr.Epochs) != 2 || tr.Summary == nil || len(tr.Checkpoints) != 0 {
		t.Fatalf("v1 decode = %d epochs, summary %v, %d checkpoints",
			len(tr.Epochs), tr.Summary, len(tr.Checkpoints))
	}
	if _, _, _, _, _, err := func() (Header, int, int64, int, bool, error) {
		dir := t.TempDir()
		path := filepath.Join(dir, "v1.irt")
		if err := os.WriteFile(path, v1, 0o644); err != nil {
			t.Fatal(err)
		}
		return scanFile(path)
	}(); err != nil {
		t.Fatalf("v1 trace failed to scan: %v", err)
	}

	// An unknown future version is refused.
	payload[0] = Version + 1
	binary.LittleEndian.PutUint32(v1[off+w+int(n):], crc32ieee(payload))
	if _, err := Decode(v1); err == nil {
		t.Fatal("future header version accepted")
	}
}

func TestCorruptTraceCorpus(t *testing.T) {
	valid := corpusTrace(t)
	if _, err := Decode(valid); err != nil {
		t.Fatalf("pristine corpus trace failed to decode: %v", err)
	}

	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// One healthy neighbour that corruption must never hide.
	if err := os.WriteFile(st.Path("healthy"), valid, 0o644); err != nil {
		t.Fatal(err)
	}

	for name, mut := range corruptions(t, valid) {
		t.Run(name, func(t *testing.T) {
			// Decode rejects the bytes.
			if _, err := Decode(mut); err == nil {
				t.Fatal("corrupt trace decoded without error")
			}
			// Load rejects the file.
			if err := os.WriteFile(st.Path(name), mut, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := st.Load(name); err == nil {
				t.Fatal("Load served a corrupt trace")
			}
			// scanFile errors.
			if _, _, _, _, _, err := scanFile(st.Path(name)); err == nil {
				t.Fatal("scanFile accepted a corrupt trace")
			}
			// List degrades the entry and keeps the healthy neighbour whole.
			entries, err := st.List()
			if err != nil {
				t.Fatalf("List aborted on a corrupt file: %v", err)
			}
			var sawBad, sawHealthy bool
			for _, e := range entries {
				switch e.Name {
				case name:
					sawBad = true
					if e.Err == nil || e.Header.App != "" {
						t.Fatalf("corrupt entry not degraded: %+v", e)
					}
				case "healthy":
					sawHealthy = true
					if e.Err != nil || e.Header.App != "corpus" || !e.Complete || e.Epochs != 2 {
						t.Fatalf("healthy entry damaged by neighbour: %+v", e)
					}
				}
			}
			if !sawBad || !sawHealthy {
				t.Fatalf("List hid entries: %+v", entries)
			}
			os.Remove(st.Path(name))
		})
	}
}

// TestImplausibleLengthDoesNotAllocate: the corrupted length must be caught
// by the remaining-size bound (file) and the generic cap (unsized reader)
// without a gigabyte allocation. The allocation bound is observable through
// the error text naming the remaining bytes.
func TestImplausibleLengthDoesNotAllocate(t *testing.T) {
	valid := corpusTrace(t)
	hdrEnd := headerFrameEnd(t, valid)
	mut := append([]byte(nil), valid[:hdrEnd]...)
	mut = append(mut, frameEpoch)
	mut = binary.AppendUvarint(mut, 512<<20) // 512 MiB claim, under the generic cap
	mut = append(mut, 0x00)

	path := filepath.Join(t.TempDir(), "big.irt")
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("half-gigabyte frame in a 100-byte file accepted")
	}

	// From a bytes.Reader the size is known too.
	if _, err := Decode(mut); err == nil {
		t.Fatal("half-gigabyte frame in a 100-byte buffer accepted")
	}
}

// sliceReader is an io.Reader over bytes without bytes.Reader's Size method:
// the reader cannot bound frame lengths by a known stream size (network or
// pipe ingestion) and must still tell torn frames from clean prefixes.
type sliceReader struct{ b []byte }

func (s *sliceReader) Read(p []byte) (int, error) {
	if len(s.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, s.b)
	s.b = s.b[n:]
	return n, nil
}

// TestTornFrameFromUnsizedStream: a stream that dies right after a frame's
// length varint is torn, not a clean prefix — even when the reader cannot
// know the stream size up front. (io.ReadFull returns a bare io.EOF when no
// payload bytes are available at all; that must not read as a clean end.)
func TestTornFrameFromUnsizedStream(t *testing.T) {
	valid := corpusTrace(t)
	hdrEnd := headerFrameEnd(t, valid)
	mut := append([]byte(nil), valid[:hdrEnd]...)
	mut = append(mut, frameEpoch)
	mut = binary.AppendUvarint(mut, 5) // promises 5 payload bytes, delivers none

	r, err := NewReader(&sliceReader{b: mut})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("torn frame from unsized stream read as clean end: %v", err)
	}

	// The same bytes cut at the frame boundary are a clean prefix.
	r2, err := NewReader(&sliceReader{b: valid[:hdrEnd]})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("clean prefix misread: %v", err)
	}
}

// TestStoreLoadDetectsSameSizeRewrite: a rewrite that preserves file size
// (and possibly lands within mtime granularity) must not be served from the
// decode cache.
func TestStoreLoadDetectsSameSizeRewrite(t *testing.T) {
	st, err := OpenStore(filepath.Join(t.TempDir(), "traces"))
	if err != nil {
		t.Fatal(err)
	}
	mk := func(exit uint64) *Trace {
		return &Trace{
			Header: Header{App: "rw", ModuleHash: 7},
			Epochs: []*record.EpochLog{{
				Epoch: 1,
				Threads: []record.ThreadLog{{TID: 0, Events: []record.Event{
					{Kind: record.KExit, Ret: exit, Pos: -1},
				}}},
			}},
			Summary: &Summary{Exit: exit},
		}
	}
	b1, err := Encode(mk(1))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Encode(mk(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(b1) != len(b2) {
		t.Fatalf("rewrite does not preserve size (%d vs %d); fix the fixture", len(b1), len(b2))
	}

	if err := os.WriteFile(st.Path("rw"), b1, 0o644); err != nil {
		t.Fatal(err)
	}
	fi1, err := os.Stat(st.Path("rw"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.Load("rw")
	if err != nil {
		t.Fatal(err)
	}
	if got.Summary.Exit != 1 {
		t.Fatalf("first load exit = %d", got.Summary.Exit)
	}

	// Same-size rewrite; force the stat to look unchanged by restoring the
	// original mtime (the pathological window the content check closes).
	if err := os.WriteFile(st.Path("rw"), b2, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(st.Path("rw"), fi1.ModTime(), fi1.ModTime()); err != nil {
		t.Fatal(err)
	}
	got2, err := st.Load("rw")
	if err != nil {
		t.Fatal(err)
	}
	if got2.Summary.Exit != 2 {
		t.Fatalf("stale cache served after same-size rewrite (exit = %d, want 2)", got2.Summary.Exit)
	}
}

// TestSegmentJobValidation: malformed segment schedules are refused before
// any replay work.
func TestSegmentJobValidation(t *testing.T) {
	valid := corpusTrace(t)
	tr, err := Decode(valid)
	if err != nil {
		t.Fatal(err)
	}
	// No module.
	if _, _, err := ReplaySegments(Job{Name: "x", Trace: tr}, 1); err == nil {
		t.Fatal("job without module accepted")
	}
	_ = core.Options{} // keep the core import honest if assertions change
}

// blockingTail returns its bytes, then fails loudly if read again — the
// shape of a live pipe whose writer holds the descriptor open: a reader
// that probes past the summary frame would surface errProbe (a regression
// that, on a real pipe, is a hang).
type blockingTail struct {
	b      []byte
	probed bool
}

var errProbe = errors.New("probe past end marker")

func (s *blockingTail) Read(p []byte) (int, error) {
	if len(s.b) == 0 {
		s.probed = true
		return 0, errProbe
	}
	n := copy(p, s.b)
	s.b = s.b[n:]
	return n, nil
}

// TestStreamingSummaryDoesNotProbe: on an unbounded stream, Next returns
// io.EOF at the summary frame without reading past it.
func TestStreamingSummaryDoesNotProbe(t *testing.T) {
	valid := corpusTrace(t)
	src := &blockingTail{b: valid}
	r, err := NewReader(src)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		n++
	}
	if src.probed {
		t.Fatal("reader probed past the summary frame on a streaming input")
	}
	if n != 2 || r.Summary() == nil {
		t.Fatalf("streamed %d epochs, summary %v", n, r.Summary())
	}
}
