package trace

// Corrupt-trace corpus: every way a stored trace can rot — truncated
// mid-frame, flipped CRC, trailing garbage, implausible frame length, and
// (format v3) damaged or lying index regions — with the required behavior
// of Load (error), List (degraded entry that hides nothing), scanning
// (error), and the index failure policy (unparseable index degrades to the
// scan path; an index that lies is hard corruption) asserted for each.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/record"
)

// corpusTrace builds a small, fully valid two-epoch trace (format v3:
// summary, index frame, trailer).
func corpusTrace(t *testing.T) []byte {
	t.Helper()
	tr := &Trace{
		Header: Header{Version: Version, App: "corpus", ModuleHash: 7, EventCap: 16, VarCap: 16},
		Epochs: []*record.EpochLog{
			{
				Epoch: 1,
				Threads: []record.ThreadLog{{TID: 0, Events: []record.Event{
					{Kind: record.KMutexLock, Var: 0x1000, Pos: 0},
				}}},
				Vars: []record.VarLog{{Addr: 0x1000, Order: []int32{0}}},
			},
			{
				Epoch: 2,
				Threads: []record.ThreadLog{{TID: 0, Events: []record.Event{
					{Kind: record.KExit, Pos: -1},
				}}},
			},
		},
		Summary: &Summary{Exit: 3, Output: "1\n"},
	}
	b, err := Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// legacyTraceBytes re-encodes the corpus trace with an older header
// version: v1/v2 framing, no index region — byte-for-byte what the old
// writers emitted.
func legacyTraceBytes(t *testing.T, ver int) []byte {
	t.Helper()
	tr, err := Decode(corpusTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := newWriterVersion(&buf, tr.Header, ver)
	if err != nil {
		t.Fatal(err)
	}
	for _, ep := range tr.Epochs {
		if err := w.WriteEpoch(ep); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(tr.Summary); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// frameSpan is one frame's location in an encoded trace.
type frameSpan struct {
	kind       byte
	start, end int
}

// frameSpans walks the frames of a well-formed encoded trace. For v3
// encodings the fixed trailer is excluded from the walk.
func frameSpans(t *testing.T, b []byte) []frameSpan {
	t.Helper()
	end := len(b)
	if end >= indexTrailerLen && string(b[end-4:]) == indexTrailerMagic {
		end -= indexTrailerLen
	}
	var out []frameSpan
	off := len(Magic)
	for off < end {
		kind := b[off]
		n, w := binary.Uvarint(b[off+1:])
		if w <= 0 {
			t.Fatalf("malformed corpus bytes at offset %d", off)
		}
		next := off + 1 + w + int(n) + 4
		out = append(out, frameSpan{kind: kind, start: off, end: next})
		off = next
	}
	return out
}

// firstSpan returns the first frame of the given kind.
func firstSpan(t *testing.T, spans []frameSpan, kind byte) frameSpan {
	t.Helper()
	for _, s := range spans {
		if s.kind == kind {
			return s
		}
	}
	t.Fatalf("no frame of kind %d", kind)
	return frameSpan{}
}

// corruptions returns the corpus: name -> mutated bytes. Every mutation
// damages the trace's data region, so Load, Decode, and the scan must all
// reject it.
func corruptions(t *testing.T, valid []byte) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	spans := frameSpans(t, valid)
	ep := firstSpan(t, spans, frameEpoch)

	// Truncated mid-frame: cut inside the first epoch frame's payload.
	out["truncated-mid-frame"] = append([]byte(nil), valid[:ep.start+5]...)

	// Flipped CRC: invert one bit of the first epoch frame's checksum.
	flipped := append([]byte(nil), valid...)
	flipped[ep.end-1] ^= 0x01
	out["flipped-crc"] = flipped

	// Flipped payload byte inside the epoch frame: the index (which stores
	// the original CRC) and the frame now disagree; both the scan path and
	// the indexed fetch path must reject it.
	body := append([]byte(nil), valid...)
	body[ep.start+3] ^= 0xff
	out["flipped-payload"] = body

	// Trailing garbage after the complete (index + trailer) file.
	out["trailing-garbage"] = append(append([]byte(nil), valid...), 0xde, 0xad, 0xbe, 0xef)

	// A trailing *valid* frame after the end of the file: decodes
	// frame-wise but is corruption, because nothing may follow the index
	// region.
	var epPayload []byte
	epPayload = appendEpoch(nil, &record.EpochLog{Epoch: 3, Threads: []record.ThreadLog{{TID: 0}}})
	trailing := append([]byte(nil), valid...)
	trailing = append(trailing, frameEpoch)
	trailing = binary.AppendUvarint(trailing, uint64(len(epPayload)))
	trailing = append(trailing, epPayload...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32ieee(epPayload))
	out["trailing-frame"] = append(trailing, crc[:]...)

	// Truncated right after a frame's length varint: zero payload bytes
	// present where the length promises some. A bare io.EOF here must not
	// pass for a clean frame-boundary truncation.
	afterLen := append([]byte(nil), valid...)
	afterLen = append(afterLen, frameEpoch)
	afterLen = binary.AppendUvarint(afterLen, 5)
	out["truncated-after-length"] = afterLen

	// Implausible frame length: a huge length varint right after the header
	// frame. Must be rejected by the size bound before any allocation.
	hdrEnd := headerFrameEnd(t, valid)
	huge := append([]byte(nil), valid[:hdrEnd]...)
	huge = append(huge, frameEpoch)
	huge = binary.AppendUvarint(huge, 1<<40)
	huge = append(huge, 0x01, 0x02)
	out["implausible-length"] = huge

	return out
}

func crc32ieee(b []byte) uint32 {
	// mirrors the writer's framing checksum
	return crc32.ChecksumIEEE(b)
}

// headerFrameEnd returns the offset just past the header frame.
func headerFrameEnd(t *testing.T, b []byte) int {
	t.Helper()
	off := len(Magic) + 1 // magic + kind
	n, w := binary.Uvarint(b[off:])
	if w <= 0 {
		t.Fatal("malformed corpus bytes")
	}
	return off + w + int(n) + 4
}

// TestLegacyTracesLoad: v1 and v2 files (what the pre-index writers
// produced — same framing, older header versions, no index region) still
// decode, scan, store-open, and list; an unknown future version is
// refused.
func TestLegacyTracesLoad(t *testing.T) {
	for _, ver := range []int{1, 2} {
		b := legacyTraceBytes(t, ver)

		tr, err := Decode(b)
		if err != nil {
			t.Fatalf("v%d trace failed to load: %v", ver, err)
		}
		if len(tr.Epochs) != 2 || tr.Summary == nil || len(tr.Checkpoints) != 0 {
			t.Fatalf("v%d decode = %d epochs, summary %v, %d checkpoints",
				ver, len(tr.Epochs), tr.Summary, len(tr.Checkpoints))
		}
		if tr.Header.Version != ver {
			t.Fatalf("decoded header version %d, want %d", tr.Header.Version, ver)
		}

		st, err := OpenStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(st.Path("legacy"), b, 0o644); err != nil {
			t.Fatal(err)
		}
		h, err := st.Open("legacy")
		if err != nil {
			t.Fatalf("v%d trace failed to open: %v", ver, err)
		}
		if h.Indexed() {
			t.Fatalf("v%d trace claims an index footer", ver)
		}
		if h.NumEpochs() != 2 || !h.Complete() || h.EventCount() != tr.EventCount() {
			t.Fatalf("v%d handle stats: %d epochs, complete=%v, %d events",
				ver, h.NumEpochs(), h.Complete(), h.EventCount())
		}
		got, err := h.Epochs(1, 2)
		if err != nil || len(got) != 2 {
			t.Fatalf("v%d lazy epochs: %v", ver, err)
		}
		h.Close()
		e, err := st.Entry("legacy")
		if err != nil || e.Err != nil || !e.Complete || e.Epochs != 2 || e.Indexed {
			t.Fatalf("v%d entry: %+v (%v)", ver, e, err)
		}
	}

	// An unknown future version is refused.
	b := corpusTrace(t)
	off := len(Magic) + 1
	n, w := binary.Uvarint(b[off:])
	payload := b[off+w : off+w+int(n)]
	if payload[0] != Version {
		t.Fatalf("header does not lead with the version varint: %d", payload[0])
	}
	payload[0] = Version + 1
	binary.LittleEndian.PutUint32(b[off+w+int(n):], crc32ieee(payload))
	if _, err := Decode(b); err == nil {
		t.Fatal("future header version accepted")
	}
}

func TestCorruptTraceCorpus(t *testing.T) {
	valid := corpusTrace(t)
	if _, err := Decode(valid); err != nil {
		t.Fatalf("pristine corpus trace failed to decode: %v", err)
	}

	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// One healthy neighbour that corruption must never hide.
	if err := os.WriteFile(st.Path("healthy"), valid, 0o644); err != nil {
		t.Fatal(err)
	}

	for name, mut := range corruptions(t, valid) {
		t.Run(name, func(t *testing.T) {
			// Decode rejects the bytes.
			if _, err := Decode(mut); err == nil {
				t.Fatal("corrupt trace decoded without error")
			}
			// Load rejects the file.
			if err := os.WriteFile(st.Path(name), mut, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := st.Load(name); err == nil {
				t.Fatal("Load served a corrupt trace")
			}
			// The sequential scan errors.
			if _, _, err := scanIndex(bytes.NewReader(mut)); err == nil {
				t.Fatal("scanIndex accepted a corrupt trace")
			}
			// List degrades the entry and keeps the healthy neighbour whole.
			entries, err := st.List()
			if err != nil {
				t.Fatalf("List aborted on a corrupt file: %v", err)
			}
			var sawBad, sawHealthy bool
			for _, e := range entries {
				switch e.Name {
				case name:
					sawBad = true
					if name == "flipped-payload" || name == "flipped-crc" {
						// The footer still parses (it fingerprints payloads,
						// and the summary/trailer are intact), so the
						// inventory entry stays clean; the damaged frame is
						// discovered on fetch — Load above already failed.
						break
					}
					if e.Err == nil || e.Header.App != "" {
						t.Fatalf("corrupt entry not degraded: %+v", e)
					}
				case "healthy":
					sawHealthy = true
					if e.Err != nil || e.Header.App != "corpus" || !e.Complete || e.Epochs != 2 {
						t.Fatalf("healthy entry damaged by neighbour: %+v", e)
					}
				}
			}
			if !sawBad || !sawHealthy {
				t.Fatalf("List hid entries: %+v", entries)
			}
			os.Remove(st.Path(name))
		})
	}
}

// TestV3IndexDamageDegradesToScan: a damaged index region — torn index
// frame, flipped index CRC, truncated trailer — must not cost the trace:
// it loads through the scan path with a clean Entry, exactly as a v2 file
// would, just without random access.
func TestV3IndexDamageDegradesToScan(t *testing.T) {
	valid := corpusTrace(t)
	spans := frameSpans(t, valid)
	ix := firstSpan(t, spans, frameIndex)

	cases := map[string][]byte{}
	// Torn index frame: cut mid-payload (the trailer goes with it).
	cases["torn-index"] = append([]byte(nil), valid[:ix.start+5]...)
	// Flipped index CRC byte: frame present but fails its checksum.
	fl := append([]byte(nil), valid...)
	fl[ix.end-1] ^= 0x01
	cases["flipped-index-crc"] = fl
	// Truncated trailer: index frame intact, locator gone.
	cases["truncated-trailer"] = append([]byte(nil), valid[:len(valid)-5]...)

	for name, mut := range cases {
		t.Run(name, func(t *testing.T) {
			tr, err := Decode(mut)
			if err != nil {
				t.Fatalf("damaged index region failed to salvage: %v", err)
			}
			if len(tr.Epochs) != 2 || tr.Summary == nil {
				t.Fatalf("salvaged decode = %d epochs, summary %v", len(tr.Epochs), tr.Summary)
			}
			st, err := OpenStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(st.Path("x"), mut, 0o644); err != nil {
				t.Fatal(err)
			}
			e, err := st.Entry("x")
			if err != nil || e.Err != nil {
				t.Fatalf("entry degraded by index damage: %+v (%v)", e, err)
			}
			if e.Indexed || !e.Complete || e.Epochs != 2 {
				t.Fatalf("entry = %+v, want scan-served complete trace", e)
			}
			got, err := st.Load("x")
			if err != nil || len(got.Epochs) != 2 {
				t.Fatalf("Load after index damage: %v", err)
			}
		})
	}
}

// TestV3IndexLiesAreCorruption: an index that parses but lies about the
// file — offsets outside the data region, or offsets landing on frames of
// a different kind — is hard corruption, never a silent degrade.
func TestV3IndexLiesAreCorruption(t *testing.T) {
	valid := corpusTrace(t)

	// withMutatedIndex re-frames the corpus trace with a mutated index.
	withMutatedIndex := func(mutate func(*fileIndex)) []byte {
		spans := frameSpans(t, valid)
		ixSpan := firstSpan(t, spans, frameIndex)
		n, w := binary.Uvarint(valid[ixSpan.start+1:])
		payload := valid[ixSpan.start+1+w : ixSpan.start+1+w+int(n)]
		ix, err := decodeIndex(payload)
		if err != nil {
			t.Fatal(err)
		}
		mutate(ix)
		out := append([]byte(nil), valid[:ixSpan.start]...)
		newPayload := appendIndex(nil, ix)
		out = append(out, frameIndex)
		out = binary.AppendUvarint(out, uint64(len(newPayload)))
		out = append(out, newPayload...)
		var crc [4]byte
		binary.LittleEndian.PutUint32(crc[:], crc32ieee(newPayload))
		out = append(out, crc[:]...)
		var trailer [indexTrailerLen]byte
		binary.LittleEndian.PutUint64(trailer[:8], uint64(ixSpan.start))
		copy(trailer[8:], indexTrailerMagic)
		return append(out, trailer[:]...)
	}

	t.Run("offset-past-eof", func(t *testing.T) {
		mut := withMutatedIndex(func(ix *fileIndex) {
			ix.epochs[1].off = int64(len(valid)) + 100
		})
		st, err := OpenStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(st.Path("liar"), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		e, err := st.Entry("liar")
		if err != nil {
			t.Fatal(err)
		}
		if e.Err == nil {
			t.Fatalf("out-of-bounds index accepted: %+v", e)
		}
		if _, err := st.Load("liar"); err == nil {
			t.Fatal("Load served a trace whose index points past EOF")
		}
	})

	t.Run("implausible-plen", func(t *testing.T) {
		// A payload length near 2^63 must neither allocate nor overflow the
		// bounds arithmetic into a panic. decodeIndex rejects it, which
		// classifies the index as unparseable — the salvage path, like a
		// torn index frame.
		mut := withMutatedIndex(func(ix *fileIndex) {
			ix.epochs[0].plen = 1 << 62
		})
		st, err := OpenStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(st.Path("huge"), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := st.Load("huge") // must not panic
		if err != nil || len(got.Epochs) != 2 {
			t.Fatalf("Load after implausible index length: %v", err)
		}
		if e, err := st.Entry("huge"); err != nil || e.Err != nil || e.Indexed {
			t.Fatalf("entry = %+v (%v), want clean scan-served entry", e, err)
		}
	})

	t.Run("kind-mismatch", func(t *testing.T) {
		spans := frameSpans(t, valid)
		sum := firstSpan(t, spans, frameSum)
		mut := withMutatedIndex(func(ix *fileIndex) {
			// Point the last epoch at the summary frame (in bounds, right
			// CRC for that frame, wrong kind).
			ix.epochs[1].off = int64(sum.start)
			ix.epochs[1].plen = sum.end - sum.start - 6 // minus kind, len byte, crc
			ix.epochs[1].crc = crc32ieee(valid[sum.start+2 : sum.end-4])
		})
		st, err := OpenStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(st.Path("liar"), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = st.Load("liar")
		if err == nil {
			t.Fatal("Load served a trace whose index mislabels frame kinds")
		}
		if !strings.Contains(err.Error(), "kind") {
			t.Fatalf("kind mismatch not surfaced as such: %v", err)
		}
	})
}

// TestImplausibleLengthDoesNotAllocate: the corrupted length must be caught
// by the remaining-size bound (file) and the generic cap (unsized reader)
// without a gigabyte allocation. The allocation bound is observable through
// the error text naming the remaining bytes.
func TestImplausibleLengthDoesNotAllocate(t *testing.T) {
	valid := corpusTrace(t)
	hdrEnd := headerFrameEnd(t, valid)
	mut := append([]byte(nil), valid[:hdrEnd]...)
	mut = append(mut, frameEpoch)
	mut = binary.AppendUvarint(mut, 512<<20) // 512 MiB claim, under the generic cap
	mut = append(mut, 0x00)

	path := filepath.Join(t.TempDir(), "big.irt")
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("half-gigabyte frame in a 100-byte file accepted")
	}

	// From a bytes.Reader the size is known too.
	if _, err := Decode(mut); err == nil {
		t.Fatal("half-gigabyte frame in a 100-byte buffer accepted")
	}
}

// sliceReader is an io.Reader over bytes without bytes.Reader's Size method:
// the reader cannot bound frame lengths by a known stream size (network or
// pipe ingestion) and must still tell torn frames from clean prefixes.
type sliceReader struct{ b []byte }

func (s *sliceReader) Read(p []byte) (int, error) {
	if len(s.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, s.b)
	s.b = s.b[n:]
	return n, nil
}

// TestTornFrameFromUnsizedStream: a stream that dies right after a frame's
// length varint is torn, not a clean prefix — even when the reader cannot
// know the stream size up front. (io.ReadFull returns a bare io.EOF when no
// payload bytes are available at all; that must not read as a clean end.)
func TestTornFrameFromUnsizedStream(t *testing.T) {
	valid := corpusTrace(t)
	hdrEnd := headerFrameEnd(t, valid)
	mut := append([]byte(nil), valid[:hdrEnd]...)
	mut = append(mut, frameEpoch)
	mut = binary.AppendUvarint(mut, 5) // promises 5 payload bytes, delivers none

	r, err := NewReader(&sliceReader{b: mut})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("torn frame from unsized stream read as clean end: %v", err)
	}

	// The same bytes cut at the frame boundary are a clean prefix.
	r2, err := NewReader(&sliceReader{b: valid[:hdrEnd]})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("clean prefix misread: %v", err)
	}
}

// TestStoreLoadDetectsSameSizeRewrite: a rewrite that preserves file size
// (and possibly lands within mtime granularity) must not be served from the
// decode cache — the content mark must differ even though, on an indexed
// file, the final bytes (the trailer) are content-independent.
func TestStoreLoadDetectsSameSizeRewrite(t *testing.T) {
	st, err := OpenStore(filepath.Join(t.TempDir(), "traces"))
	if err != nil {
		t.Fatal(err)
	}
	mk := func(exit uint64) *Trace {
		return &Trace{
			Header: Header{App: "rw", ModuleHash: 7},
			Epochs: []*record.EpochLog{{
				Epoch: 1,
				Threads: []record.ThreadLog{{TID: 0, Events: []record.Event{
					{Kind: record.KExit, Ret: exit, Pos: -1},
				}}},
			}},
			Summary: &Summary{Exit: exit},
		}
	}
	b1, err := Encode(mk(1))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Encode(mk(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(b1) != len(b2) {
		t.Fatalf("rewrite does not preserve size (%d vs %d); fix the fixture", len(b1), len(b2))
	}

	if err := os.WriteFile(st.Path("rw"), b1, 0o644); err != nil {
		t.Fatal(err)
	}
	fi1, err := os.Stat(st.Path("rw"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.Load("rw")
	if err != nil {
		t.Fatal(err)
	}
	if got.Summary.Exit != 1 || got.Epochs[0].Threads[0].Events[0].Ret != 1 {
		t.Fatalf("first load exit = %d", got.Summary.Exit)
	}

	// Same-size rewrite; force the stat to look unchanged by restoring the
	// original mtime (the pathological window the content check closes).
	if err := os.WriteFile(st.Path("rw"), b2, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(st.Path("rw"), fi1.ModTime(), fi1.ModTime()); err != nil {
		t.Fatal(err)
	}
	got2, err := st.Load("rw")
	if err != nil {
		t.Fatal(err)
	}
	if got2.Summary.Exit != 2 {
		t.Fatalf("stale summary served after same-size rewrite (exit = %d, want 2)", got2.Summary.Exit)
	}
	if got2.Epochs[0].Threads[0].Events[0].Ret != 2 {
		t.Fatal("stale cached epoch frame served after same-size rewrite")
	}
}

// TestSegmentJobValidation: malformed segment schedules are refused before
// any replay work.
func TestSegmentJobValidation(t *testing.T) {
	valid := corpusTrace(t)
	tr, err := Decode(valid)
	if err != nil {
		t.Fatal(err)
	}
	// No module.
	if _, _, err := ReplaySegments(Job{Name: "x", Handle: OpenTrace(tr)}, 1); err == nil {
		t.Fatal("job without module accepted")
	}
}

// blockingTail returns its bytes, then fails loudly if read again — the
// shape of a live pipe whose writer holds the descriptor open: a reader
// that probes past the summary frame would surface errProbe (a regression
// that, on a real pipe, is a hang).
type blockingTail struct {
	b      []byte
	probed bool
}

var errProbe = errors.New("probe past end marker")

func (s *blockingTail) Read(p []byte) (int, error) {
	if len(s.b) == 0 {
		s.probed = true
		return 0, errProbe
	}
	n := copy(p, s.b)
	s.b = s.b[n:]
	return n, nil
}

// TestStreamingSummaryDoesNotProbe: on an unbounded stream, Next returns
// io.EOF at the summary frame without reading past it.
func TestStreamingSummaryDoesNotProbe(t *testing.T) {
	valid := corpusTrace(t)
	src := &blockingTail{b: valid}
	r, err := NewReader(src)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		n++
	}
	if src.probed {
		t.Fatal("reader probed past the summary frame on a streaming input")
	}
	if n != 2 || r.Summary() == nil {
		t.Fatalf("streamed %d epochs, summary %v", n, r.Summary())
	}
}
