package trace

// Segment-parallel replay of one checkpointed trace. A trace with m
// checkpoint frames splits into m+1 independently replayable segments:
//
//	segment 0: program start      .. checkpoint 1   (PrepareReplay + Setup)
//	segment i: checkpoint i       .. checkpoint i+1 (PrepareReplayAt)
//	segment m: checkpoint m       .. program end
//
// Segments replay concurrently on the shared worker pool, each with the
// paper's one-segment divergence-retry bound (a retry rolls back to the
// segment's start checkpoint, not to program start). Planning needs only
// the trace's index — no decode — and each worker then decodes exactly its
// own epoch slice and folds only the checkpoints bounding it (at most a
// keyframe interval of deltas per fold), so a fan-out's memory and
// cold-start cost are proportional to the segments in flight, not to the
// recording. Verification is by stitching: every interior segment's end
// memory image must byte-match the next checkpoint and its output volume
// the checkpoint's attribution; the final segment checks the recorded
// exit/output oracle, with the re-emitted outputs of all segments
// concatenated in order.

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
)

// SegmentResult is one segment's replay outcome.
type SegmentResult struct {
	// Name is "<job>@<first>-<last>" (1-based epoch range).
	Name string
	// Seg is the segment index (0 = from program start).
	Seg int
	// FirstEpoch/LastEpoch bound the replayed epoch range, inclusive.
	FirstEpoch, LastEpoch int64
	// Report is the segment's replay report; Output holds only the output
	// attributed to this segment.
	Report *core.Report
	// Matched reports schedule reproduction plus the segment's stitching
	// check (interior) or oracle check (final).
	Matched bool
	Err     error
	Wall    time.Duration
	// Stage durations, summing to roughly Wall: Fold is the checkpoint
	// folds bounding the segment, Decode the epoch-slice fetch, Exec the
	// replay execution, Stitch the final-segment oracle check (interior
	// segments byte-match their end checkpoint inside Exec).
	Fold, Decode, Exec, Stitch time.Duration
}

// segPlan is one scheduled slice of the trace: an epoch range plus the
// checkpoint ordinals bounding it (-1 = none).
type segPlan struct {
	first, last int64 // epoch range, inclusive
	events      int64
	startCk     int // checkpoint the segment resumes from; -1 for segment 0
	endCk       int // checkpoint the segment must reach; -1 for the final one
}

// planSegments partitions a trace's epoch range at its checkpoints, from
// the index alone.
func planSegments(ix *fileIndex) ([]segPlan, error) {
	plans := make([]segPlan, 0, len(ix.ckpts)+1)
	cur := segPlan{startCk: -1, endCk: -1}
	ci := 0
	for i := range ix.epochs {
		seq := ix.epochs[i].seq
		for ci < len(ix.ckpts) && ix.ckpts[ci].epoch == seq {
			if cur.first == 0 {
				if len(plans) == 0 && ci == 0 && cur.startCk == -1 {
					// Suffix trace: a checkpoint at the very first epoch frame
					// is the recording's resume point (a flight-recorder
					// spill), not an empty segment — it bounds segment 0 the
					// way an interior checkpoint bounds the segment after it.
					cur.startCk = 0
					ci++
					continue
				}
				return nil, fmt.Errorf("trace: empty segment before checkpoint at epoch %d", seq)
			}
			cur.endCk = ci
			plans = append(plans, cur)
			cur = segPlan{startCk: ci, endCk: -1}
			ci++
		}
		if cur.first == 0 {
			cur.first = seq
		} else if seq != cur.last+1 {
			return nil, fmt.Errorf("trace: non-contiguous epochs %d..%d", cur.last, seq)
		}
		cur.last = seq
		cur.events += ix.epochs[i].events
	}
	if ci != len(ix.ckpts) {
		return nil, fmt.Errorf("trace: checkpoint at epoch %d beyond the last epoch frame", ix.ckpts[ci].epoch)
	}
	if cur.first == 0 {
		return nil, fmt.Errorf("trace: trace has no epochs")
	}
	plans = append(plans, cur)
	return plans, nil
}

// ReplaySegments replays one checkpointed trace segment-parallel: the
// trace is split at its checkpoint frames (planned from the index, no
// decode), the segments fan out across the worker pool (workers <= 0
// selects GOMAXPROCS) with each worker decoding only its own slice, and
// the results are stitched. A trace without checkpoint frames yields a
// single whole-program segment — identical to an ordinary replay. Results
// are in segment order; the error reports the first stitching failure, if
// any.
func ReplaySegments(j Job, workers int) ([]SegmentResult, BatchStats, error) {
	if err := j.validate(); err != nil {
		return nil, BatchStats{}, err
	}
	plans, err := planSegments(j.Handle.idx)
	if err != nil {
		return nil, BatchStats{}, err
	}

	results := make([]SegmentResult, len(plans))
	elapsed := runPool(len(plans), workers, func(i int) {
		results[i] = runSegment(&j, i, &plans[i])
	})

	stats := BatchStats{Jobs: len(plans), Elapsed: elapsed}
	var firstErr error
	outputs := make([]string, len(plans))
	for i := range results {
		r := &results[i]
		stats.Work += r.Wall
		if !r.Matched {
			stats.Failed++
			if firstErr == nil {
				firstErr = fmt.Errorf("segment %s: %w", r.Name, r.Err)
			}
			continue
		}
		stats.Matched++
		stats.Events += plans[i].events
		if r.Report != nil {
			stats.Attempts += int64(r.Report.Stats.LastReplayAttempts)
			outputs[i] = r.Report.Output
		}
	}
	// Final stitch: the segments' re-emitted outputs, concatenated in order,
	// must reproduce the recorded program output exactly. (Each segment's
	// volume was already checked against its end checkpoint's attribution;
	// this catches content-level mismatches across the whole run.)
	if firstErr == nil && j.Handle.Summary() != nil && !j.Handle.Summary().Partial {
		if got := strings.Join(outputs, ""); got != j.Handle.Summary().Output {
			firstErr = fmt.Errorf("trace: stitched output (%d bytes) differs from recording (%d bytes)",
				len(got), len(j.Handle.Summary().Output))
			stats.Failed++
		}
	}
	return results, stats, firstErr
}

// ReplayMidSegment replays only the middle segment of a checkpointed
// trace — the cold-start shape: an open store, one segment's checkpoints
// folded and epochs decoded, and nothing else touched. It is the probe
// behind BenchmarkSegmentColdStart and the "segment-coldstart" perf row;
// interior segments verify by byte-matching their end checkpoint exactly
// as in ReplaySegments.
func ReplayMidSegment(j Job) (SegmentResult, BatchStats, error) {
	if err := j.validate(); err != nil {
		return SegmentResult{}, BatchStats{}, err
	}
	plans, err := planSegments(j.Handle.idx)
	if err != nil {
		return SegmentResult{}, BatchStats{}, err
	}
	i := len(plans) / 2
	start := time.Now()
	res := runSegment(&j, i, &plans[i])
	stats := BatchStats{Jobs: 1, Elapsed: time.Since(start), Work: res.Wall}
	if !res.Matched {
		stats.Failed++
		return res, stats, fmt.Errorf("segment %s: %w", res.Name, res.Err)
	}
	stats.Matched++
	stats.Events = plans[i].events
	if res.Report != nil {
		stats.Attempts = int64(res.Report.Stats.LastReplayAttempts)
	}
	return res, stats, nil
}

// runSegment replays one segment through the divergence-checking replay
// path, fetching its own epoch slice and checkpoint folds from the handle.
func runSegment(j *Job, i int, plan *segPlan) (res SegmentResult) {
	res = SegmentResult{
		Name:       fmt.Sprintf("%s@%d-%d", j.Name, plan.first, plan.last),
		Seg:        i,
		FirstEpoch: plan.first,
		LastEpoch:  plan.last,
	}
	start := time.Now()
	// One span per segment on its own timeline track, with the four stage
	// children recorded as the stages complete. All of it no-ops when the
	// job carries no span.
	sp := j.Span.ChildAt(fmt.Sprintf("segment %d", i), start)
	sp.SetTID(i + 1)
	sp.SetAttr("epochs", fmt.Sprintf("%d-%d", plan.first, plan.last))
	defer func() {
		res.Wall = time.Since(start)
		sp.SetAttr("matched", fmt.Sprintf("%t", res.Matched))
		sp.End()
	}()
	stage := func(name string, from time.Time, d *time.Duration) {
		*d = time.Since(from)
		sp.Record(name, from, from.Add(*d))
	}

	var startCk, endCk *core.Checkpoint
	var err error
	foldStart := time.Now()
	if plan.startCk >= 0 {
		if startCk, err = j.Handle.CheckpointAt(plan.startCk); err != nil {
			res.Err = err
			return res
		}
	}
	if plan.endCk >= 0 {
		if endCk, err = j.Handle.CheckpointAt(plan.endCk); err != nil {
			res.Err = err
			return res
		}
	}
	stage("fold", foldStart, &res.Fold)
	decodeStart := time.Now()
	epochs, err := j.Handle.Epochs(plan.first, plan.last)
	if err != nil {
		res.Err = err
		return res
	}
	stage("decode", decodeStart, &res.Decode)

	execStart := time.Now()
	rt, err := core.PrepareReplayAt(j.Module, startCk, epochs, endCk, j.Opts)
	if err != nil {
		res.Err = err
		return res
	}
	if startCk == nil && j.Setup != nil {
		// Only the first segment recreates recording-time OS state; later
		// segments restore it from their checkpoint.
		if err := j.Setup(rt); err != nil {
			rt.Shutdown()
			res.Err = err
			return res
		}
	}
	rep, err := rt.RunReplay()
	stage("execute", execStart, &res.Exec)
	res.Report = rep
	if rep == nil {
		res.Err = err
		return res
	}
	res.Matched = true
	res.Err = err // a reproduced fault arrives here, alongside the report
	stitchStart := time.Now()
	if endCk == nil {
		// Final segment: the recorded exit value is the oracle (output is
		// stitched across all segments by the caller). A partial summary —
		// the recording stopped before program end — carries no oracle.
		if sum := j.Handle.Summary(); sum != nil && !sum.Partial && rep.Exit != sum.Exit {
			res.Matched = false
			res.Err = fmt.Errorf("trace: final segment replayed exit %d, recorded %d", rep.Exit, sum.Exit)
		}
	}
	stage("stitch", stitchStart, &res.Stitch)
	return res
}
