package trace

// Segment-parallel replay of one checkpointed trace. A format-v2 trace with
// m checkpoint frames splits into m+1 independently replayable segments:
//
//	segment 0: program start      .. checkpoint 1   (PrepareReplay + Setup)
//	segment i: checkpoint i       .. checkpoint i+1 (PrepareReplayAt)
//	segment m: checkpoint m       .. program end
//
// Segments replay concurrently on the shared worker pool, each with the
// paper's one-segment divergence-retry bound (a retry rolls back to the
// segment's start checkpoint, not to program start). Verification is by
// stitching: every interior segment's end memory image must byte-match the
// next checkpoint and its output volume the checkpoint's attribution; the
// final segment checks the recorded exit/output oracle, with the re-emitted
// outputs of all segments concatenated in order.

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/record"
)

// SegmentResult is one segment's replay outcome.
type SegmentResult struct {
	// Name is "<job>@<first>-<last>" (1-based epoch range).
	Name string
	// Seg is the segment index (0 = from program start).
	Seg int
	// FirstEpoch/LastEpoch bound the replayed epoch range, inclusive.
	FirstEpoch, LastEpoch int64
	// Report is the segment's replay report; Output holds only the output
	// attributed to this segment.
	Report *core.Report
	// Matched reports schedule reproduction plus the segment's stitching
	// check (interior) or oracle check (final).
	Matched bool
	Err     error
	Wall    time.Duration
}

// segment is one scheduled slice of the trace.
type segment struct {
	first, last int64 // epoch range, inclusive
	epochs      []*record.EpochLog
	start       *core.Checkpoint // nil for segment 0
	end         *core.Checkpoint // nil for the final segment
}

// splitSegments partitions a trace's epochs at its checkpoints.
func splitSegments(tr *Trace) ([]segment, error) {
	states, err := tr.CheckpointStates()
	if err != nil {
		return nil, err
	}
	segs := make([]segment, 0, len(states)+1)
	cur := segment{}
	ci := 0
	for _, ep := range tr.Epochs {
		for ci < len(states) && states[ci].Epoch == ep.Epoch {
			if len(cur.epochs) == 0 {
				return nil, fmt.Errorf("trace: empty segment before checkpoint at epoch %d", ep.Epoch)
			}
			cur.end = states[ci]
			segs = append(segs, cur)
			cur = segment{start: states[ci]}
			ci++
		}
		if len(cur.epochs) == 0 {
			cur.first = ep.Epoch
		} else if ep.Epoch != cur.last+1 {
			return nil, fmt.Errorf("trace: non-contiguous epochs %d..%d", cur.last, ep.Epoch)
		}
		cur.last = ep.Epoch
		cur.epochs = append(cur.epochs, ep)
	}
	if ci != len(states) {
		return nil, fmt.Errorf("trace: checkpoint at epoch %d beyond the last epoch frame", states[ci].Epoch)
	}
	if len(cur.epochs) == 0 {
		return nil, fmt.Errorf("trace: trace has no epochs")
	}
	segs = append(segs, cur)
	return segs, nil
}

// ReplaySegments replays one checkpointed trace segment-parallel: the trace
// is split at its checkpoint frames, the segments fan out across the worker
// pool (workers <= 0 selects GOMAXPROCS), and the results are stitched. A
// trace without checkpoint frames yields a single whole-program segment —
// identical to an ordinary replay. Results are in segment order; the error
// reports the first stitching failure, if any.
func ReplaySegments(j Job, workers int) ([]SegmentResult, BatchStats, error) {
	if err := j.validate(); err != nil {
		return nil, BatchStats{}, err
	}
	segs, err := splitSegments(j.Trace)
	if err != nil {
		return nil, BatchStats{}, err
	}

	results := make([]SegmentResult, len(segs))
	elapsed := runPool(len(segs), workers, func(i int) {
		results[i] = runSegment(&j, i, &segs[i])
	})

	stats := BatchStats{Jobs: len(segs), Elapsed: elapsed}
	var firstErr error
	outputs := make([]string, len(segs))
	for i := range results {
		r := &results[i]
		stats.Work += r.Wall
		if !r.Matched {
			stats.Failed++
			if firstErr == nil {
				firstErr = fmt.Errorf("segment %s: %w", r.Name, r.Err)
			}
			continue
		}
		stats.Matched++
		for _, ep := range segs[i].epochs {
			stats.Events += int64(ep.EventCount())
		}
		if r.Report != nil {
			stats.Attempts += int64(r.Report.Stats.LastReplayAttempts)
			outputs[i] = r.Report.Output
		}
	}
	// Final stitch: the segments' re-emitted outputs, concatenated in order,
	// must reproduce the recorded program output exactly. (Each segment's
	// volume was already checked against its end checkpoint's attribution;
	// this catches content-level mismatches across the whole run.)
	if firstErr == nil && j.Trace.Summary != nil {
		if got := strings.Join(outputs, ""); got != j.Trace.Summary.Output {
			firstErr = fmt.Errorf("trace: stitched output (%d bytes) differs from recording (%d bytes)",
				len(got), len(j.Trace.Summary.Output))
			stats.Failed++
		}
	}
	return results, stats, firstErr
}

// runSegment replays one segment through the divergence-checking replay path.
func runSegment(j *Job, i int, sg *segment) (res SegmentResult) {
	res = SegmentResult{
		Name:       fmt.Sprintf("%s@%d-%d", j.Name, sg.first, sg.last),
		Seg:        i,
		FirstEpoch: sg.first,
		LastEpoch:  sg.last,
	}
	start := time.Now()
	defer func() { res.Wall = time.Since(start) }()

	rt, err := core.PrepareReplayAt(j.Module, sg.start, sg.epochs, sg.end, j.Opts)
	if err != nil {
		res.Err = err
		return res
	}
	if sg.start == nil && j.Setup != nil {
		// Only the first segment recreates recording-time OS state; later
		// segments restore it from their checkpoint.
		if err := j.Setup(rt); err != nil {
			rt.Shutdown()
			res.Err = err
			return res
		}
	}
	rep, err := rt.RunReplay()
	res.Report = rep
	if rep == nil {
		res.Err = err
		return res
	}
	res.Matched = true
	res.Err = err // a reproduced fault arrives here, alongside the report
	if sg.end == nil {
		// Final segment: the recorded exit value is the oracle (output is
		// stitched across all segments by the caller).
		if sum := j.Trace.Summary; sum != nil && rep.Exit != sum.Exit {
			res.Matched = false
			res.Err = fmt.Errorf("trace: final segment replayed exit %d, recorded %d", rep.Exit, sum.Exit)
		}
	}
	return res
}
