package trace

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/record"
)

// Reader decodes a trace stream frame by frame, validating the magic, the
// header version, and every frame's CRC. A stream that ends cleanly after
// any whole frame is valid — a recorder killed mid-run leaves a usable
// prefix — but a torn or corrupted frame, or any frame after the summary
// end marker, is an error.
type Reader struct {
	br   *bufio.Reader
	hdr  Header
	sum  *Summary
	cks  []*Checkpoint
	done bool
	// size is the total stream length when known (-1 otherwise); consumed
	// tracks logical bytes read, so a corrupt length varint cannot drive an
	// allocation larger than what the stream could still hold.
	size     int64
	consumed int64
}

// NewReader validates the magic and decodes the header frame. When r's total
// size is discoverable (an *os.File or a *bytes.Reader), frame lengths are
// bounded by the bytes actually remaining instead of only the generic cap.
func NewReader(r io.Reader) (*Reader, error) {
	tr := &Reader{br: bufio.NewReader(r), size: -1}
	switch s := r.(type) {
	case *os.File:
		if fi, err := s.Stat(); err == nil && fi.Mode().IsRegular() {
			tr.size = fi.Size()
		}
	case *bytes.Reader:
		tr.size = s.Size()
	}
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(tr.br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	tr.consumed += int64(len(Magic))
	if string(magic) != Magic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	kind, payload, err := tr.readFrame()
	if err != nil {
		return nil, fmt.Errorf("trace: reading header frame: %w", err)
	}
	if kind != frameHeader {
		return nil, fmt.Errorf("trace: first frame has kind %d, want header", kind)
	}
	if tr.hdr, err = decodeHeader(payload); err != nil {
		return nil, err
	}
	return tr, nil
}

// Header returns the decoded header.
func (r *Reader) Header() Header { return r.hdr }

// readByte reads one byte, tracking consumption.
func (r *Reader) readByte() (byte, error) {
	b, err := r.br.ReadByte()
	if err == nil {
		r.consumed++
	}
	return b, err
}

// readUvarint is binary.ReadUvarint with consumption tracking. It never
// returns a bare io.EOF: it only runs after a frame's kind byte, so running
// out of bytes mid-varint is a torn frame, not a clean stream end — callers
// match io.EOF through wrapped errors and must not mistake one for the
// other.
func (r *Reader) readUvarint() (uint64, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		b, err := r.readByte()
		if err != nil {
			if errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF
			}
			return 0, err
		}
		if b < 0x80 {
			if shift == 63 && b > 1 {
				break
			}
			return v | uint64(b)<<shift, nil
		}
		v |= uint64(b&0x7f) << shift
	}
	return 0, errors.New("varint overflows a 64-bit integer")
}

// readFrame reads one frame and verifies its CRC. io.EOF is returned only
// at a clean frame boundary.
func (r *Reader) readFrame() (byte, []byte, error) {
	kind, err := r.readByte()
	if err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, err
	}
	payload, err := r.readFrameBody()
	return kind, payload, err
}

// readFrameBody reads a frame's length, payload, and checksum — the kind
// byte has already been consumed.
func (r *Reader) readFrameBody() ([]byte, error) {
	n, err := r.readUvarint()
	if err != nil {
		return nil, fmt.Errorf("trace: torn frame length: %w", err)
	}
	// Bound the allocation before trusting the length: never beyond what the
	// stream can still hold (when its size is known), and never beyond the
	// generic cap. A flipped bit in the length varint must not allocate
	// gigabytes before the CRC check ever runs.
	if r.size >= 0 {
		if remaining := r.size - r.consumed; int64(n)+4 > remaining {
			return nil, fmt.Errorf("trace: implausible frame length %d with %d bytes left", n, remaining)
		}
	}
	if n > maxFramePayload {
		return nil, fmt.Errorf("trace: implausible frame length %d", n)
	}
	// Inside a frame a bare io.EOF is still a torn frame; do not let it
	// masquerade as a clean stream end through error wrapping.
	noEOF := func(err error) error {
		if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			return io.ErrUnexpectedEOF
		}
		return err
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r.br, payload); err != nil {
		return nil, fmt.Errorf("trace: torn frame payload: %w", noEOF(err))
	}
	var crcb [4]byte
	if _, err := io.ReadFull(r.br, crcb[:]); err != nil {
		return nil, fmt.Errorf("trace: torn frame checksum: %w", noEOF(err))
	}
	r.consumed += int64(n) + 4
	want := uint32(crcb[0]) | uint32(crcb[1])<<8 | uint32(crcb[2])<<16 | uint32(crcb[3])<<24
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("trace: frame checksum mismatch (%#x != %#x)", got, want)
	}
	return payload, nil
}

// consumeTail polices the bytes after the summary end marker. v1/v2
// streams must end exactly there — trailing data marks a corrupt or
// tampered file. v3 streams normally carry the index frame and its
// 12-byte trailer: a torn or CRC-damaged index region is ignored (the
// trace salvages to its scanned pre-summary content, the same degrade
// path a v2 file takes), while trailing content that is not an index
// region — or content after a valid one — is corruption. The check
// applies to finite inputs only (files, byte slices); probing an
// unbounded stream (pipe, socket) would block Next on a live writer that
// holds the descriptor open after Finish.
func (r *Reader) consumeTail() error {
	if r.size < 0 {
		return nil
	}
	rem := r.size - r.consumed
	if rem == 0 {
		return nil
	}
	if r.hdr.Version < 3 {
		return fmt.Errorf("trace: %d trailing bytes after summary frame", rem)
	}
	kind, err := r.readByte()
	if err != nil {
		return nil // unreadable tail: salvage the scanned prefix
	}
	if kind != frameIndex {
		return fmt.Errorf("trace: data after summary frame (kind %d)", kind)
	}
	if _, err := r.readFrameBody(); err != nil {
		return nil // torn or CRC-damaged index frame: salvage
	}
	rem = r.size - r.consumed
	if rem > indexTrailerLen {
		return fmt.Errorf("trace: %d trailing bytes after index frame", rem-indexTrailerLen)
	}
	if rem > 0 {
		// A short or damaged trailer still salvages; the footer open path
		// simply will not find the index.
		var tb [indexTrailerLen]byte
		if _, err := io.ReadFull(r.br, tb[:rem]); err == nil {
			r.consumed += rem
		}
	}
	return nil
}

// Next returns the next epoch, or io.EOF after the last one (whether the
// stream ended with a summary frame or a clean truncation). Checkpoint
// frames are collected transparently (Checkpoints). Use Summary afterwards
// to retrieve the end marker, if present.
func (r *Reader) Next() (*record.EpochLog, error) {
	if r.done {
		return nil, io.EOF
	}
	for {
		kind, payload, err := r.readFrame()
		if err != nil {
			if errors.Is(err, io.EOF) {
				r.done = true
				return nil, io.EOF
			}
			return nil, err
		}
		// Decompression strictly after the CRC check readFrame performed.
		if kind, payload, err = inflatePayload(kind, payload); err != nil {
			return nil, err
		}
		switch kind {
		case frameEpoch:
			return decodeEpoch(payload)
		case frameCkpt:
			ck, err := decodeCheckpoint(payload, r.hdr.Version, len(r.cks) == 0)
			if err != nil {
				return nil, err
			}
			r.cks = append(r.cks, ck)
		case frameSum:
			if r.sum, err = decodeSummary(payload); err != nil {
				return nil, err
			}
			if err := r.consumeTail(); err != nil {
				return nil, err
			}
			r.done = true
			return nil, io.EOF
		default:
			return nil, fmt.Errorf("trace: unexpected frame kind %d", kind)
		}
	}
}

// Summary returns the end marker, or nil when the stream had none (or Next
// has not yet consumed it).
func (r *Reader) Summary() *Summary { return r.sum }

// Checkpoints returns the checkpoint frames read so far (all of them once
// Next has returned io.EOF).
func (r *Reader) Checkpoints() []*Checkpoint { return r.cks }

// ReadTrace fully decodes a trace stream.
func ReadTrace(r io.Reader) (*Trace, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	out := &Trace{Header: tr.Header()}
	for {
		ep, err := tr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		out.Epochs = append(out.Epochs, ep)
	}
	out.Summary = tr.Summary()
	// A checkpoint frame precedes the epoch it begins; a recorder killed
	// after flushing the checkpoint but before its epoch leaves a trailing
	// checkpoint that pins nothing. Drop it — the prefix stays usable, for
	// segment replay and re-encoding alike.
	cks := tr.Checkpoints()
	for len(cks) > 0 &&
		(len(out.Epochs) == 0 || cks[len(cks)-1].Epoch() > out.Epochs[len(out.Epochs)-1].Epoch) {
		cks = cks[:len(cks)-1]
	}
	out.Checkpoints = cks
	return out, nil
}

// ReadFile decodes the trace stored at path.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}

// ReadPrefix decodes the longest clean prefix of a trace stream: whole,
// CRC-valid frames up to the first torn or corrupt one, which is treated
// as the stream's end rather than an error. This is the crash-salvage
// loader — a recorder killed by SIGKILL can leave a final partially
// written frame, and the epochs before it are still a valid recording.
// Only the magic and header must be intact. Trailing checkpoints that pin
// no epoch are dropped exactly as in ReadTrace.
func ReadPrefix(r io.Reader) (*Trace, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	out := &Trace{Header: tr.Header()}
	for {
		ep, err := tr.Next()
		if err != nil {
			break // io.EOF, a torn tail, or a corrupt frame: keep the prefix
		}
		out.Epochs = append(out.Epochs, ep)
	}
	out.Summary = tr.Summary()
	cks := tr.Checkpoints()
	for len(cks) > 0 &&
		(len(out.Epochs) == 0 || cks[len(cks)-1].Epoch() > out.Epochs[len(out.Epochs)-1].Epoch) {
		cks = cks[:len(cks)-1]
	}
	out.Checkpoints = cks
	return out, nil
}
