package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/record"
)

// Reader decodes a trace stream frame by frame, validating the magic, the
// header version, and every frame's CRC. A stream that ends cleanly after
// any whole frame is valid — a recorder killed mid-run leaves a usable
// prefix — but a torn or corrupted frame is an error.
type Reader struct {
	br   *bufio.Reader
	hdr  Header
	sum  *Summary
	done bool
}

// NewReader validates the magic and decodes the header frame.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	tr := &Reader{br: br}
	kind, payload, err := tr.readFrame()
	if err != nil {
		return nil, fmt.Errorf("trace: reading header frame: %w", err)
	}
	if kind != frameHeader {
		return nil, fmt.Errorf("trace: first frame has kind %d, want header", kind)
	}
	if tr.hdr, err = decodeHeader(payload); err != nil {
		return nil, err
	}
	return tr, nil
}

// Header returns the decoded header.
func (r *Reader) Header() Header { return r.hdr }

// readFrame reads one frame and verifies its CRC. io.EOF is returned only
// at a clean frame boundary.
func (r *Reader) readFrame() (byte, []byte, error) {
	kind, err := r.br.ReadByte()
	if err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, err
	}
	n, err := binary.ReadUvarint(r.br)
	if err != nil {
		return 0, nil, fmt.Errorf("trace: torn frame length: %w", err)
	}
	const maxFrame = 1 << 30
	if n > maxFrame {
		return 0, nil, fmt.Errorf("trace: implausible frame length %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r.br, payload); err != nil {
		return 0, nil, fmt.Errorf("trace: torn frame payload: %w", err)
	}
	var crcb [4]byte
	if _, err := io.ReadFull(r.br, crcb[:]); err != nil {
		return 0, nil, fmt.Errorf("trace: torn frame checksum: %w", err)
	}
	want := binary.LittleEndian.Uint32(crcb[:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return 0, nil, fmt.Errorf("trace: frame checksum mismatch (%#x != %#x)", got, want)
	}
	return kind, payload, nil
}

// Next returns the next epoch, or io.EOF after the last one (whether the
// stream ended with a summary frame or a clean truncation). Use Summary
// afterwards to retrieve the end marker, if present.
func (r *Reader) Next() (*record.EpochLog, error) {
	if r.done {
		return nil, io.EOF
	}
	kind, payload, err := r.readFrame()
	if err != nil {
		if errors.Is(err, io.EOF) {
			r.done = true
			return nil, io.EOF
		}
		return nil, err
	}
	switch kind {
	case frameEpoch:
		return decodeEpoch(payload)
	case frameSum:
		if r.sum, err = decodeSummary(payload); err != nil {
			return nil, err
		}
		r.done = true
		return nil, io.EOF
	default:
		return nil, fmt.Errorf("trace: unexpected frame kind %d", kind)
	}
}

// Summary returns the end marker, or nil when the stream had none (or Next
// has not yet consumed it).
func (r *Reader) Summary() *Summary { return r.sum }

// ReadTrace fully decodes a trace stream.
func ReadTrace(r io.Reader) (*Trace, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	out := &Trace{Header: tr.Header()}
	for {
		ep, err := tr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		out.Epochs = append(out.Epochs, ep)
	}
	out.Summary = tr.Summary()
	return out, nil
}

// scanFile reads a trace's inventory statistics — header, epoch and event
// counts, completeness — touching only each frame's leading fields. Every
// frame's CRC is still verified, but the thread lists are never
// materialized, so scanning a corpus costs IO, not decode.
func scanFile(path string) (hdr Header, epochs int, events int64, complete bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return hdr, 0, 0, false, err
	}
	defer f.Close()
	r, err := NewReader(f)
	if err != nil {
		return hdr, 0, 0, false, err
	}
	hdr = r.Header()
	for {
		kind, payload, err := r.readFrame()
		if errors.Is(err, io.EOF) {
			return hdr, epochs, events, complete, nil
		}
		if err != nil {
			return hdr, 0, 0, false, err
		}
		switch kind {
		case frameEpoch:
			_, n, err := peekEpochMeta(payload)
			if err != nil {
				return hdr, 0, 0, false, err
			}
			epochs++
			events += n
		case frameSum:
			complete = true
		default:
			return hdr, 0, 0, false, fmt.Errorf("trace: unexpected frame kind %d", kind)
		}
	}
}

// ReadFile decodes the trace stored at path.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}
