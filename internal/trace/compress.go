package trace

// Per-frame compression (format v4). A frame whose payload is
// deflate-compressed carries the frameCompressed bit OR-ed into its kind
// byte; the stored payload is then
//
//	compressed payload := rawLen:uvarint deflate(raw)
//
// and the frame's CRC — and its index entry's plen/crc — cover the stored
// (compressed) bytes, so the scan path, the footer index, and readFrameAt's
// triple check all work on what is actually on disk. Decompression happens
// strictly after the CRC check, at the decode sites. Only epoch and
// checkpoint frame bodies are ever compressed: the header, summary, and
// index frames stay raw so open, inventory, and salvage never need inflate
// to locate anything. A frame that would not shrink is stored raw (no flag
// bit), so pathological payloads cost nothing.

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"time"

	"repro/internal/obs"
)

// frameCompressed marks a deflate-compressed frame payload; it is OR-ed
// into the kind byte, keeping kinds 1..5 free for the frame taxonomy.
const frameCompressed byte = 0x80

// maxFramePayload is the generic bound on any frame payload, stored or
// decompressed — shared by the streaming reader and the inflate path so a
// corrupt length can never drive the allocation.
const maxFramePayload = 1 << 30

// inflatePayload strips the compression bit and, when set, inflates the
// stored payload. The declared raw length is validated before allocating
// and the deflate stream must decode to exactly that many bytes — a
// stream that is short, long, or malformed is a corruption error, never a
// panic or an oversized allocation.
func inflatePayload(kind byte, payload []byte) (byte, []byte, error) {
	if kind&frameCompressed == 0 {
		return kind, payload, nil
	}
	defer obs.TraceInflate.ObserveSince(time.Now()) //ir:wallclock inflate latency telemetry
	kind &^= frameCompressed
	d := &decoder{b: payload}
	rawLen, err := d.uvarint()
	if err != nil {
		return 0, nil, fmt.Errorf("trace: compressed frame: %w", err)
	}
	if rawLen > maxFramePayload {
		return 0, nil, fmt.Errorf("trace: compressed frame declares implausible raw size %d", rawLen)
	}
	raw := make([]byte, rawLen)
	zr := flate.NewReader(bytes.NewReader(d.b[d.off:]))
	defer zr.Close()
	if _, err := io.ReadFull(zr, raw); err != nil {
		return 0, nil, fmt.Errorf("trace: inflating frame: %w", err)
	}
	var one [1]byte
	if n, _ := zr.Read(one[:]); n != 0 {
		return 0, nil, fmt.Errorf("trace: compressed frame inflates past its declared %d bytes", rawLen)
	}
	return kind, raw, nil
}

// deflater compresses frame payloads for a Writer, reusing one flate
// writer and one staging buffer across frames.
type deflater struct {
	zw  *flate.Writer
	buf bytes.Buffer
}

// deflate returns the stored form of payload — rawLen varint plus deflate
// stream — and whether compression paid. When the stored form would not be
// smaller than the raw payload, it returns (nil, false) and the caller
// stores the frame uncompressed. The returned slice is valid until the
// next deflate call.
func (z *deflater) deflate(payload []byte) ([]byte, bool) {
	z.buf.Reset()
	z.buf.Write(putUvarint(nil, uint64(len(payload))))
	if z.zw == nil {
		// DefaultCompression: these frames are written once (compact, spill)
		// and fetched many times; favor ratio over encode speed.
		z.zw, _ = flate.NewWriter(&z.buf, flate.DefaultCompression)
	} else {
		z.zw.Reset(&z.buf)
	}
	if _, err := z.zw.Write(payload); err != nil {
		return nil, false
	}
	if err := z.zw.Close(); err != nil {
		return nil, false
	}
	if z.buf.Len() >= len(payload) {
		return nil, false
	}
	return z.buf.Bytes(), true
}
