package trace

import (
	"bytes"
	"io"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/hostrace"
	"repro/internal/record"
	"repro/internal/tir"
	"repro/internal/workloads"
)

// recordTrace runs spec under full recording with a streaming Writer and
// returns the decoded trace.
func recordTrace(t testing.TB, spec workloads.Spec, opts core.Options) *Trace {
	t.Helper()
	mod, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{
		App:        spec.Name,
		ModuleHash: tir.Fingerprint(mod),
		EventCap:   opts.EventCap,
		VarCap:     opts.VarCap,
		Seed:       opts.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts.TraceSink = w.Sink()
	rt, err := core.New(mod, opts)
	if err != nil {
		t.Fatal(err)
	}
	spec.SetupOS(rt.OS())
	rep, err := rt.Run()
	if err != nil {
		t.Fatalf("record %s: %v", spec.Name, err)
	}
	if err := w.Finish(&Summary{Exit: rep.Exit, Output: rep.Output}); err != nil {
		t.Fatal(err)
	}
	tr, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return tr
}

func scaledSpec(t testing.TB, name string, scale float64) workloads.Spec {
	t.Helper()
	s, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("unknown app %s", name)
	}
	s.Iters = int(float64(s.Iters) * scale)
	if s.Iters < 3 {
		s.Iters = 3
	}
	return s
}

// denseApp is the workload the serialization tests record: dedup, the
// densest encoder case. Under the host race detector it substitutes
// streamcluster — dedup's library-work memcpys race between vthreads by
// design, which is the program's business, not the trace layer's.
func denseApp() string {
	if hostrace.Enabled {
		return "streamcluster"
	}
	return "dedup"
}

// TestEncodeDecodeByteStable: decode∘encode must be the identity on the
// decoded value, and encode must be byte-stable across two rounds.
func TestEncodeDecodeByteStable(t *testing.T) {
	spec := scaledSpec(t, denseApp(), 0.15)
	tr := recordTrace(t, spec, core.Options{Seed: 3, EventCap: 256})
	if len(tr.Epochs) == 0 {
		t.Fatal("no epochs recorded")
	}
	b1, err := Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := Decode(b1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Header, tr2.Header) {
		t.Fatalf("header round-trip: %+v != %+v", tr.Header, tr2.Header)
	}
	if len(tr2.Epochs) != len(tr.Epochs) {
		t.Fatalf("epoch count round-trip: %d != %d", len(tr2.Epochs), len(tr.Epochs))
	}
	for i := range tr.Epochs {
		if !reflect.DeepEqual(tr.Epochs[i], tr2.Epochs[i]) {
			t.Fatalf("epoch %d round-trip mismatch", i)
		}
	}
	if !reflect.DeepEqual(tr.Summary, tr2.Summary) {
		t.Fatalf("summary round-trip: %+v != %+v", tr.Summary, tr2.Summary)
	}
	b2, err := Encode(tr2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("encoding is not byte-stable: %d vs %d bytes", len(b1), len(b2))
	}
}

// TestCorruptionDetected: flipping any payload byte must fail the CRC.
func TestCorruptionDetected(t *testing.T) {
	tr := &Trace{
		Header: Header{App: "x", ModuleHash: 42, EventCap: 16, VarCap: 16},
		Epochs: []*record.EpochLog{{
			Epoch: 1,
			Threads: []record.ThreadLog{{TID: 0, Events: []record.Event{
				{Kind: record.KMutexLock, Var: 0x1000, Pos: 0},
				{Kind: record.KExit, Pos: -1},
			}}},
			Vars: []record.VarLog{{Addr: 0x1000, Order: []int32{0}}},
		}},
		Summary: &Summary{Exit: 7, Output: "1\n"},
	}
	b, err := Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(b); err != nil {
		t.Fatalf("pristine trace failed to decode: %v", err)
	}
	// Flip a byte inside the epoch frame payload (past magic + header).
	mut := append([]byte(nil), b...)
	mut[len(Magic)+20] ^= 0xff
	if _, err := Decode(mut); err == nil {
		t.Fatal("corrupted trace decoded without error")
	}
	// Truncation mid-frame is torn, not silently accepted. (Cut inside the
	// epoch frame: the final bytes are the index region, whose damage
	// legitimately salvages.)
	if _, err := Decode(b[:headerFrameEnd(t, b)+5]); err == nil {
		t.Fatal("torn trace decoded without error")
	}
}

// TestTruncationAtFrameBoundaryIsValid: a stream cut at a clean frame
// boundary (recorder killed before Finish) still loads its whole prefix.
func TestTruncationAtFrameBoundaryIsValid(t *testing.T) {
	spec := scaledSpec(t, "pfscan", 0.2)
	tr := recordTrace(t, spec, core.Options{Seed: 5, EventCap: 48})
	if len(tr.Epochs) < 2 {
		t.Fatalf("want a multi-epoch trace, got %d", len(tr.Epochs))
	}
	// Re-encode only the header + first epoch, no summary.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, tr.Header)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteEpoch(tr.Epochs[0]); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatalf("clean prefix failed to decode: %v", err)
	}
	if len(got.Epochs) != 1 || got.Summary != nil {
		t.Fatalf("prefix decoded to %d epochs, summary=%v", len(got.Epochs), got.Summary)
	}
}

// TestReaderStreams: Next yields epochs one at a time and surfaces the
// summary afterwards.
func TestReaderStreams(t *testing.T) {
	spec := scaledSpec(t, "pfscan", 0.2)
	tr := recordTrace(t, spec, core.Options{Seed: 5, EventCap: 48})
	b, err := Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != len(tr.Epochs) {
		t.Fatalf("streamed %d epochs, want %d", n, len(tr.Epochs))
	}
	if r.Summary() == nil || r.Summary().Exit != tr.Summary.Exit {
		t.Fatalf("summary not surfaced: %+v", r.Summary())
	}
}

// TestStoreRoundTripAndIndex covers Save/Load/List/ByModule and the decode
// cache.
func TestStoreRoundTripAndIndex(t *testing.T) {
	spec := scaledSpec(t, denseApp(), 0.15)
	tr := recordTrace(t, spec, core.Options{Seed: 3})
	st, err := OpenStore(filepath.Join(t.TempDir(), "traces"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Save("dedup-1", tr); err != nil {
		t.Fatal(err)
	}
	got, err := st.Load("dedup-1")
	if err != nil {
		t.Fatal(err)
	}
	if got == tr {
		// Save must not alias the caller-owned object into the cache: the
		// caller may keep mutating it, while cached traces are immutable
		// images of the file.
		t.Fatal("Load after Save returned the caller's object")
	}
	if !reflect.DeepEqual(got.Header, tr.Header) || len(got.Epochs) != len(tr.Epochs) {
		t.Fatal("Load after Save decoded different content")
	}
	// The cache works at frame granularity: a second Load assembles a fresh
	// Trace from the same cached epoch decodes.
	if again, err := st.Load("dedup-1"); err != nil || again.Epochs[0] != got.Epochs[0] {
		t.Fatalf("second Load did not hit the frame cache: %v", err)
	}
	// A second store over the same directory decodes from disk.
	st2, err := OpenStore(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	got2, err := st2.Load("dedup-1")
	if err != nil {
		t.Fatal(err)
	}
	if got2 == tr {
		t.Fatal("fresh store returned the other store's object")
	}
	if !reflect.DeepEqual(got2.Header, tr.Header) || len(got2.Epochs) != len(tr.Epochs) {
		t.Fatal("disk round-trip mismatch")
	}
	if l3, err := st2.Load("dedup-1"); err != nil || l3.Epochs[0] != got2.Epochs[0] {
		t.Fatalf("second Load did not hit the frame cache: %v", err)
	}

	entries, err := st2.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name != "dedup-1" || !entries[0].Complete {
		t.Fatalf("List = %+v", entries)
	}
	if entries[0].Events != tr.EventCount() || entries[0].Epochs != len(tr.Epochs) {
		t.Fatalf("List stats = %+v, want %d events / %d epochs",
			entries[0], tr.EventCount(), len(tr.Epochs))
	}
	byMod, err := st2.ByModule(tr.Header.ModuleHash)
	if err != nil {
		t.Fatal(err)
	}
	if len(byMod) != 1 {
		t.Fatalf("ByModule(%#x) = %+v", tr.Header.ModuleHash, byMod)
	}
	if byOther, _ := st2.ByModule(tr.Header.ModuleHash + 1); len(byOther) != 0 {
		t.Fatalf("ByModule(wrong) = %+v", byOther)
	}
	if _, err := st2.Load("no/such"); err == nil {
		t.Fatal("invalid name accepted")
	}
}

// TestBatchReplayMatchesRecording replays a stored trace in parallel copies
// and requires every copy to match the recorded summary.
func TestBatchReplayMatchesRecording(t *testing.T) {
	spec := scaledSpec(t, "streamcluster", 0.2)
	opts := core.Options{Seed: 9}
	tr := recordTrace(t, spec, opts)
	mod, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	job := Job{
		Name: spec.Name, Module: mod, Handle: OpenTrace(tr), Opts: opts,
		Setup: func(rt *core.Runtime) error { spec.SetupOS(rt.OS()); return nil },
	}
	results, stats := ReplayBatch(Fanout(job, 6), 3)
	if stats.Jobs != 6 || stats.Matched != 6 || stats.Failed != 0 {
		t.Fatalf("stats = %+v (results %+v)", stats, results)
	}
	for _, r := range results {
		if r.Err != nil || !r.Matched {
			t.Fatalf("job %s: matched=%v err=%v", r.Name, r.Matched, r.Err)
		}
	}
	if stats.Events != 6*tr.EventCount() {
		t.Fatalf("events = %d, want %d", stats.Events, 6*tr.EventCount())
	}

	// A module the trace was not recorded from is refused up front.
	other, err := scaledSpec(t, "x264", 0.1).Build()
	if err != nil {
		t.Fatal(err)
	}
	bad := job
	bad.Module = other
	res, bstats := ReplayBatch([]Job{bad}, 1)
	if bstats.Failed != 1 || res[0].Err == nil {
		t.Fatalf("fingerprint mismatch not refused: %+v", res)
	}
}
