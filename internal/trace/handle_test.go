package trace

// Tests for the random-access trace surface: lazy slice decoding through
// Handle, the checkpoint keyframe fold bound, the segment-granular store
// cache cost, and the byte-identity of handle-based segment replay and
// analysis against the whole-trace path — the acceptance criteria of the
// indexed-format refactor, each asserted with probes (decode counters,
// Store.Stats), not just outcomes.

import (
	"bytes"
	"fmt"
	"os"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/tir"
	"repro/internal/workloads"
)

// recordCheckpointedBytes records spec with checkpoint frames every
// interval epochs and keyframes every keyEvery checkpoints, returning the
// encoded trace.
func recordCheckpointedBytes(t testing.TB, spec workloads.Spec, opts core.Options, interval, keyEvery int) []byte {
	t.Helper()
	mod, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{
		App:        spec.Name,
		ModuleHash: tir.Fingerprint(mod),
		EventCap:   opts.EventCap,
		VarCap:     opts.VarCap,
		Seed:       opts.Seed,
		AppIters:   spec.Iters,
	})
	if err != nil {
		t.Fatal(err)
	}
	if keyEvery > 0 {
		w.SetKeyframeEvery(keyEvery)
	}
	opts.TraceSink = w.Sink()
	opts.CheckpointEvery = interval
	opts.CheckpointSink = w.CheckpointSink()
	rt, err := core.New(mod, opts)
	if err != nil {
		t.Fatal(err)
	}
	spec.SetupOS(rt.OS())
	rep, err := rt.Run()
	if err != nil {
		t.Fatalf("record %s: %v", spec.Name, err)
	}
	if err := w.Finish(&Summary{Exit: rep.Exit, Output: rep.Output}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// storeWith writes encoded trace bytes under name into a fresh store.
func storeWith(t testing.TB, name string, b []byte) *Store {
	t.Helper()
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st.Path(name), b, 0o644); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestHandleLazySliceDecode: opening an indexed trace decodes nothing, and
// Epochs(lo,hi) decodes exactly the requested frames — with the store
// cache costing the decoded bytes of that slice, not the file.
func TestHandleLazySliceDecode(t *testing.T) {
	spec := scaledSpec(t, "streamcluster", 0.5)
	b := recordCheckpointedBytes(t, spec, core.Options{Seed: 9, EventCap: 24}, 2, 0)
	st := storeWith(t, "lazy", b)

	before := decodeProbe.epochs.Load()
	h, err := st.Open("lazy")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if !h.Indexed() {
		t.Fatal("v3 trace did not open through the footer")
	}
	if got := decodeProbe.epochs.Load(); got != before {
		t.Fatalf("Open decoded %d epoch frames, want 0", got-before)
	}
	lo, hi := h.EpochRange()
	if hi-lo+1 < 6 {
		t.Fatalf("want >= 6 epochs, got %d", hi-lo+1)
	}

	slice, err := h.Epochs(lo+1, lo+2)
	if err != nil {
		t.Fatal(err)
	}
	if got := decodeProbe.epochs.Load() - before; got != 2 {
		t.Fatalf("Epochs(%d,%d) decoded %d frames, want 2", lo+1, lo+2, got)
	}
	wantCost := epochCost(slice[0]) + epochCost(slice[1])
	if stats := st.Stats(); stats.CachedBytes != wantCost || stats.CachedFrames != 2 {
		t.Fatalf("cache holds %d bytes / %d frames after a 2-epoch slice, want %d / 2",
			stats.CachedBytes, stats.CachedFrames, wantCost)
	}

	// A re-fetch of the slice is pure cache: no further decodes.
	mid := decodeProbe.epochs.Load()
	if _, err := h.Epochs(lo+1, lo+2); err != nil {
		t.Fatal(err)
	}
	if got := decodeProbe.epochs.Load(); got != mid {
		t.Fatalf("cached slice re-decoded %d frames", got-mid)
	}

	// Ranges the trace does not cover are refused.
	if _, err := h.Epochs(hi+1, hi+2); err == nil {
		t.Fatal("out-of-range epoch slice accepted")
	}
}

// TestCheckpointKeyframeBound: reaching checkpoint k decodes at most
// keyEvery checkpoint frames (the fold restarts at the nearest keyframe),
// and the folded state equals the full-chain fold.
func TestCheckpointKeyframeBound(t *testing.T) {
	const keyEvery = 2
	spec := scaledSpec(t, "streamcluster", 0.5)
	b := recordCheckpointedBytes(t, spec, core.Options{Seed: 9, EventCap: 24}, 2, keyEvery)

	h, err := OpenBytes(b) // uncached: every fold decode is observable
	if err != nil {
		t.Fatal(err)
	}
	n := h.NumCheckpoints()
	if n < 3 {
		t.Fatalf("want >= 3 checkpoints, got %d", n)
	}
	if want := (n + keyEvery - 1) / keyEvery; h.Keyframes() != want {
		t.Fatalf("%d keyframes for %d checkpoints at interval %d, want %d",
			h.Keyframes(), n, keyEvery, want)
	}

	// Reference: the whole-trace fold.
	tr, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	states, err := tr.CheckpointStates()
	if err != nil {
		t.Fatal(err)
	}

	for _, k := range []int{n - 1, n / 2} {
		before := decodeProbe.ckpts.Load()
		got, err := h.CheckpointAt(k)
		if err != nil {
			t.Fatal(err)
		}
		decoded := decodeProbe.ckpts.Load() - before
		if decoded > keyEvery {
			t.Fatalf("CheckpointAt(%d) decoded %d checkpoint frames, keyframe interval is %d",
				k, decoded, keyEvery)
		}
		if k+1 > keyEvery && decoded >= int64(k+1) {
			t.Fatalf("CheckpointAt(%d) folded the whole chain (%d decodes)", k, decoded)
		}
		want := states[k]
		if got.Epoch != want.Epoch || got.OutputLen != want.OutputLen || got.NextTID != want.NextTID {
			t.Fatalf("checkpoint %d metadata mismatch: %+v vs %+v", k, got, want)
		}
		if !got.Snap.Equal(want.Snap) {
			t.Fatalf("checkpoint %d: keyframe fold differs from full-chain fold (%d bytes differ)",
				k, got.Snap.DiffCount(want.Snap))
		}
	}
}

// TestSegmentFanoutCacheBoundedAndByteIdentical is the refactor's
// acceptance test: segment-parallel replay through a store handle produces
// output byte-identical to the whole-trace path while the store's cache
// cost stays inside a budget sized well below the decoded recording.
func TestSegmentFanoutCacheBoundedAndByteIdentical(t *testing.T) {
	spec := scaledSpec(t, "streamcluster", 0.5)
	opts := core.Options{Seed: 9, EventCap: 24}
	b := recordCheckpointedBytes(t, spec, opts, 2, 2)
	st := storeWith(t, "fan", b)

	// The whole-trace reference replay, from an in-memory decode.
	tr, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Checkpoints) < 2 {
		t.Fatalf("want >= 2 checkpoints, got %d", len(tr.Checkpoints))
	}
	mod, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	ropts := core.Options{Seed: opts.Seed, EventCap: opts.EventCap, DelayOnDivergence: true}
	setup := func(rt *core.Runtime) error { spec.SetupOS(rt.OS()); return nil }
	whole, wstats := ReplayBatch([]Job{{
		Name: "whole", Module: mod, Handle: OpenTrace(tr), Opts: ropts, Setup: setup,
	}}, 1)
	if wstats.Failed != 0 {
		t.Fatalf("whole-trace replay failed: %v", whole[0].Err)
	}

	// Budget: half the decoded recording — the fan-out must live within it.
	var fullCost int64
	for _, ep := range tr.Epochs {
		fullCost += epochCost(ep)
	}
	for _, ck := range tr.Checkpoints {
		fullCost += ckptCost(ck)
	}
	limit := fullCost / 2
	st.SetCacheLimit(limit)

	h, err := st.Open("fan")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	results, stats, err := ReplaySegments(Job{
		Name: "fan", Module: mod, Handle: h, Opts: ropts, Setup: setup,
	}, 4)
	if err != nil {
		t.Fatalf("segment replay: %v (results %+v)", err, results)
	}
	if stats.Matched != stats.Jobs || stats.Jobs != len(tr.Checkpoints)+1 {
		t.Fatalf("stats = %+v", stats)
	}

	// Byte identity: the stitched segment outputs equal the whole-trace
	// replay's output equal the recording's.
	var stitched string
	for _, r := range results {
		stitched += r.Report.Output
	}
	if stitched != whole[0].Report.Output || stitched != tr.Summary.Output {
		t.Fatalf("segment output (%d bytes) != whole-trace output (%d bytes)",
			len(stitched), len(whole[0].Report.Output))
	}
	if whole[0].Report.Exit != results[len(results)-1].Report.Exit {
		t.Fatal("segment exit differs from whole-trace exit")
	}

	// Cache cost: bounded by the budget (which is itself far below the
	// decoded recording) the whole way through — Stats reads after the run
	// and the invariant that inserts evict over-budget entries make the
	// peak observable.
	cstats := st.Stats()
	if cstats.CachedBytes > limit {
		t.Fatalf("cache cost %d exceeds the %d budget (full decode costs %d)",
			cstats.CachedBytes, limit, fullCost)
	}
	if cstats.Misses == 0 {
		t.Fatal("segment fan-out never touched the store cache")
	}
}

// canonicalFindings reduces a finding list to the properties that are
// invariant across replays of the same trace: analyzer, kind, address,
// size, and the set of implicated functions. The two paths under test
// replay independently, and a divergence retry can observe a racing pair
// in either orientation — which swaps site roles and even the exact PCs
// (whose increment wrote last) — so site-exact comparison would be flaky
// without being evidence about the handle path.
func canonicalFindings(fs []analysis.Finding) []string {
	out := make([]string, 0, len(fs))
	for _, f := range fs {
		funcs := make([]string, len(f.Sites))
		for i, s := range f.Sites {
			funcs[i] = s.Func()
		}
		sort.Strings(funcs)
		out = append(out, fmt.Sprintf("%s|%s|%#x|%d|%s",
			f.Analyzer, f.Kind, f.Addr, f.Size, strings.Join(funcs, ",")))
	}
	sort.Strings(out)
	return out
}

// TestAnalyzeFindingsIdenticalViaHandle: batch analysis through a store
// handle yields the same findings as the whole-trace in-memory path —
// compared on replay-invariant properties (see canonicalFindings).
func TestAnalyzeFindingsIdenticalViaHandle(t *testing.T) {
	mod, tr := recordCorpusTrace(t, "race-counter")
	b, err := Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	st := storeWith(t, "rc", b)

	factory := func() []analysis.Analyzer {
		return []analysis.Analyzer{analysis.NewRaceDetector(), analysis.NewLeakDetector()}
	}
	viaMem, mstats := AnalyzeBatch([]AnalyzeJob{{
		Job:          Job{Name: "rc", Module: mod, Handle: OpenTrace(tr), Opts: core.Options{DelayOnDivergence: true}},
		NewAnalyzers: factory,
	}}, 1)
	if mstats.Failed != 0 {
		t.Fatalf("in-memory analysis failed: %v", viaMem[0].Err)
	}

	h, err := st.Open("rc")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	viaStore, sstats := AnalyzeBatch([]AnalyzeJob{{
		Job:          Job{Name: "rc", Module: mod, Handle: h, Opts: core.Options{DelayOnDivergence: true}},
		NewAnalyzers: factory,
	}}, 1)
	if sstats.Failed != 0 {
		t.Fatalf("store-handle analysis failed: %v", viaStore[0].Err)
	}
	if len(viaStore[0].Findings) == 0 {
		t.Fatal("race-counter produced no findings through the handle")
	}
	mem, store := canonicalFindings(viaMem[0].Findings), canonicalFindings(viaStore[0].Findings)
	if !reflect.DeepEqual(mem, store) {
		t.Fatalf("findings differ between paths:\nmem:   %+v\nstore: %+v",
			viaMem[0].Findings, viaStore[0].Findings)
	}
}

// TestHandleFooterScanEquivalence: the footer-served statistics match a
// forced scan of the same file.
func TestHandleFooterScanEquivalence(t *testing.T) {
	spec := scaledSpec(t, "streamcluster", 0.5)
	b := recordCheckpointedBytes(t, spec, core.Options{Seed: 9, EventCap: 24}, 2, 2)

	hdrScan, scanIx, err := scanIndex(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	h, err := OpenBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Indexed() {
		t.Fatal("footer not used")
	}
	if !reflect.DeepEqual(h.Header(), hdrScan) {
		t.Fatalf("footer header %+v != scan header %+v", h.Header(), hdrScan)
	}
	if h.NumEpochs() != len(scanIx.epochs) || h.NumCheckpoints() != len(scanIx.ckpts) ||
		h.EventCount() != scanIx.events() || h.Keyframes() != scanIx.keyframes() ||
		h.Complete() != scanIx.complete {
		t.Fatalf("footer stats diverge from scan: %d/%d/%d/%d vs %d/%d/%d/%d",
			h.NumEpochs(), h.NumCheckpoints(), h.EventCount(), h.Keyframes(),
			len(scanIx.epochs), len(scanIx.ckpts), scanIx.events(), scanIx.keyframes())
	}
	// Frame locations agree exactly.
	for i := range scanIx.epochs {
		if h.idx.epochs[i] != scanIx.epochs[i] {
			t.Fatalf("epoch ref %d: footer %+v != scan %+v", i, h.idx.epochs[i], scanIx.epochs[i])
		}
	}
	for i := range scanIx.ckpts {
		if h.idx.ckpts[i] != scanIx.ckpts[i] {
			t.Fatalf("ckpt ref %d: footer %+v != scan %+v", i, h.idx.ckpts[i], scanIx.ckpts[i])
		}
	}
}
