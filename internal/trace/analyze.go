package trace

// Parallel batch analysis over the store: the analyze-many half of the
// record-once/analyze-many workflow. Each job re-executes its trace once
// with a fresh analyzer set attached (analyzers are stateful, so jobs never
// share them) on the same bounded worker pool ReplayBatch uses — N traces,
// or N different analyses of one trace, are as embarrassingly parallel as
// N replays.

import (
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/record"
)

// AnalyzeJob is one replay-with-analysis: a replay job plus an analyzer
// factory.
type AnalyzeJob struct {
	Job
	// NewAnalyzers builds this job's analyzer set; it is invoked once, on
	// the worker goroutine, so a shared factory must be safe for concurrent
	// calls (returning fresh analyzers each time, as analysis.FromSpec
	// composition does).
	NewAnalyzers func() []analysis.Analyzer
}

// AnalyzeResult is one job's outcome: the replay verdict plus the findings.
type AnalyzeResult struct {
	Name   string
	Report *core.Report
	// Findings aggregates every attached analyzer's report.
	Findings []analysis.Finding
	// Matched reports whether the recorded schedule (and summary, when
	// present) was reproduced; findings from an unmatched replay are not
	// produced.
	Matched bool
	// Err carries a failure to match — or, on a matched replay of a
	// fault-terminated trace, the reproduced fault.
	Err  error
	Wall time.Duration
	// Segments carries per-segment attribution when the result came from
	// AnalyzeSegments; nil for whole-trace jobs.
	Segments []SegmentAttribution
}

// AnalyzeBatch fans analysis jobs across the shared worker pool and blocks
// until every job finished. workers <= 0 selects GOMAXPROCS. Results are
// returned in job order; BatchStats aggregates them exactly as ReplayBatch
// does (Events counts recorded events re-executed under analysis).
func AnalyzeBatch(jobs []AnalyzeJob, workers int) ([]AnalyzeResult, BatchStats) {
	results := make([]AnalyzeResult, len(jobs))
	elapsed := runPool(len(jobs), workers, func(i int) {
		results[i] = runAnalyzeJob(&jobs[i])
	})

	stats := BatchStats{Jobs: len(jobs), Elapsed: elapsed}
	for i := range results {
		r := &results[i]
		stats.Work += r.Wall
		if !r.Matched {
			stats.Failed++
			continue
		}
		stats.Matched++
		stats.Events += jobs[i].Handle.EventCount()
		if r.Report != nil {
			stats.Attempts += int64(r.Report.Stats.LastReplayAttempts)
		}
	}
	return results, stats
}

func runAnalyzeJob(j *AnalyzeJob) (res AnalyzeResult) {
	res = AnalyzeResult{Name: j.Name}
	start := time.Now()
	defer func() { res.Wall = time.Since(start) }()
	if err := j.validate(); err != nil {
		res.Err = err
		return res
	}
	if j.NewAnalyzers == nil {
		res.Err = fmt.Errorf("trace: analyze job %q has no analyzer factory", j.Name)
		return res
	}
	// Stream the trace through bounded epoch windows instead of pinning
	// every decoded frame for the run's whole duration: the flattener folds
	// each window into the replay-ready lists and releases it, so a v3
	// handle's frame cache — not this worker — decides what stays resident.
	f := record.NewFlattener()
	first, last := j.Handle.EpochRange()
	const window = 16
	for lo := first; lo <= last && lo > 0; lo += window {
		hi := lo + window - 1
		if hi > last {
			hi = last
		}
		epochs, err := j.Handle.Epochs(lo, hi)
		if err != nil {
			res.Err = err
			return res
		}
		for _, ep := range epochs {
			f.Add(ep)
		}
	}
	fl, err := f.Flat()
	if err != nil {
		res.Err = err
		return res
	}
	rep, findings, err := analysis.RunFlat(j.Module, fl, j.Opts, j.Setup, j.NewAnalyzers()...)
	res.Report = rep
	res.Findings = findings
	if rep == nil {
		res.Err = err
		return res
	}
	res.Matched = true
	res.Err = err // a reproduced fault, when the trace recorded one
	if serr := j.compareSummary(rep); serr != nil {
		// The execution did not reproduce the recording; findings derived
		// from it are not evidence about the recorded run.
		res.Matched = false
		res.Err = serr
		res.Findings = nil
	}
	return res
}
