package trace

// Parallel offline replay. A recorded trace is a self-contained, read-only
// artifact, so N traces — or N re-replays of one trace, the verification
// fan-out — are embarrassingly parallel: each worker builds its own
// runtime, virtual address space, and virtual OS. The pool below shards a
// job list across GOMAXPROCS-bounded workers and aggregates the outcome,
// which is what lets a replay service answer "does this recording still
// reproduce?" for a whole corpus in one pass. Jobs carry Handles, not
// decoded traces: each worker streams the epochs it needs through the
// store's frame cache, so a queued or fanned-out job pins no decoded
// memory until it runs.

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/tir"
)

// Job is one offline replay: a trace handle plus the module it was
// recorded from.
type Job struct {
	// Name labels the job in results ("<trace>#<i>" for fan-out copies).
	Name string
	// Module is the program; its fingerprint must match the trace header's
	// ModuleHash (checked unless the hash is zero).
	Module *tir.Module
	// Handle is the recording to re-execute — opened from a store
	// (Store.Open), from bytes (OpenBytes), or wrapped around an in-memory
	// trace (OpenTrace). Workers fetch epochs through it on demand; nothing
	// it serves is mutated.
	Handle *Handle
	// Opts configures the replay runtime (MaxReplays, DelayOnDivergence,
	// and the list capacities / memory config of the recording run).
	Opts core.Options
	// Setup recreates recording-time OS state (input files); may be nil.
	Setup func(*core.Runtime) error
	// Span, when non-nil, is the parent span job execution records under:
	// whole-trace replays record decode/execute children, segment-parallel
	// replays record one child span per segment with decode/fold/execute/
	// stitch grandchildren. A nil Span disables span recording.
	Span *obs.Span
}

// Result is one job's outcome.
type Result struct {
	Name   string
	Report *core.Report
	// Err is non-nil when the replay failed to match (or the job was
	// malformed); a reproduced fault from a fault-terminated trace counts as
	// a match and is reported through Report with Err describing the fault.
	Err error
	// Matched reports whether the recorded schedule was reproduced.
	Matched bool
	Wall    time.Duration
}

// BatchStats aggregates a batch.
type BatchStats struct {
	Jobs    int
	Matched int
	Failed  int
	// Attempts is the summed replay attempts (1 per job when nothing
	// diverged; divergence retries add to it).
	Attempts int64
	// Events is the total recorded events replayed across matched jobs.
	Events int64
	// Work is summed per-job wall time; Elapsed is the batch's wall time.
	// Work/Elapsed approximates the achieved parallel speedup.
	Work    time.Duration
	Elapsed time.Duration
}

// Fanout clones a job n times ("#0" … "#n-1"), the re-replay verification
// pattern. The clones share the handle — and therefore the store's frame
// cache — so while the trace's decoded frames fit the cache budget the
// fan-out decodes each epoch once, not n times. A trace whose decoded
// size exceeds the budget re-decodes per replay instead (the budget is
// the bound the daemon relies on; raise it with Store.SetCacheLimit when
// fan-out throughput on one oversized trace matters more than memory).
func Fanout(j Job, n int) []Job {
	out := make([]Job, n)
	for i := range out {
		out[i] = j
		out[i].Name = fmt.Sprintf("%s#%d", j.Name, i)
	}
	return out
}

// runPool shards n items across a bounded worker pool, invoking run for
// each index, and returns the pool's wall-clock time. workers <= 0 selects
// GOMAXPROCS. ReplayBatch, AnalyzeBatch, and ReplaySegments share it; the
// pool itself is the scheduler package's (sched.RunPool), so the CLI batch
// paths and the trace service daemon dispatch through one implementation.
func runPool(n, workers int, run func(i int)) time.Duration {
	return sched.RunPool(n, workers, run)
}

// ReplayBatch fans jobs across a worker pool and blocks until every job
// finished. workers <= 0 selects GOMAXPROCS. Results are returned in job
// order.
func ReplayBatch(jobs []Job, workers int) ([]Result, BatchStats) {
	results := make([]Result, len(jobs))
	elapsed := runPool(len(jobs), workers, func(i int) {
		results[i] = runJob(&jobs[i])
	})

	stats := BatchStats{Jobs: len(jobs), Elapsed: elapsed}
	for i := range results {
		r := &results[i]
		stats.Work += r.Wall
		if !r.Matched {
			stats.Failed++
			continue
		}
		stats.Matched++
		stats.Events += jobs[i].Handle.EventCount()
		if r.Report != nil {
			stats.Attempts += int64(r.Report.Stats.LastReplayAttempts)
		}
	}
	return results, stats
}

// validate checks that a job is runnable: module and trace handle present,
// module fingerprint matching the recording.
func (j *Job) validate() error {
	if j.Module == nil || j.Handle == nil {
		return fmt.Errorf("trace: job %q lacks a module or trace handle", j.Name)
	}
	if h := j.Handle.Header().ModuleHash; h != 0 {
		if got := tir.Fingerprint(j.Module); got != h {
			return fmt.Errorf("trace: job %q module fingerprint %#x does not match trace %#x",
				j.Name, got, h)
		}
	}
	return nil
}

// compareSummary checks a replayed report against the recorded oracle;
// nil when the trace carries no summary frame, or a partial one (the
// recording stopped before program end, so exit and output are not
// oracles).
func (j *Job) compareSummary(rep *core.Report) error {
	sum := j.Handle.Summary()
	if sum == nil || sum.Partial {
		return nil
	}
	if rep.Exit != sum.Exit {
		return fmt.Errorf("trace: job %q replayed exit %d, recorded %d", j.Name, rep.Exit, sum.Exit)
	}
	if rep.Output != sum.Output {
		return fmt.Errorf("trace: job %q replayed output differs from recording", j.Name)
	}
	return nil
}

func runJob(j *Job) (res Result) {
	res = Result{Name: j.Name}
	start := time.Now()
	sp := j.Span.ChildAt("replay "+j.Name, start)
	defer func() {
		res.Wall = time.Since(start)
		sp.End()
	}()
	if err := j.validate(); err != nil {
		res.Err = err
		return res
	}
	decodeStart := time.Now()
	epochs, err := j.Handle.AllEpochs()
	if err != nil {
		res.Err = err
		return res
	}
	sp.Record("decode", decodeStart, time.Now())
	var rep *core.Report
	if j.Handle.LeadingCheckpoint() {
		// Suffix trace (flight-recorder spill): resume from the leading
		// checkpoint instead of program start. Setup is skipped — the
		// checkpoint restores the recording-time OS state itself.
		foldStart := time.Now()
		start, cerr := j.Handle.CheckpointAt(0)
		if cerr != nil {
			res.Err = cerr
			return res
		}
		sp.Record("fold", foldStart, time.Now())
		rt, perr := core.PrepareReplayAt(j.Module, start, epochs, nil, j.Opts)
		if perr != nil {
			res.Err = perr
			return res
		}
		execStart := time.Now()
		rep, err = rt.RunReplay()
		sp.Record("execute", execStart, time.Now())
	} else {
		execStart := time.Now()
		rep, err = core.ReplayFromTrace(j.Module, epochs, j.Opts, j.Setup)
		sp.Record("execute", execStart, time.Now())
	}
	res.Report = rep
	if rep == nil {
		// No report at all: the replay never matched (or setup failed).
		res.Err = err
		return res
	}
	res.Matched = true
	res.Err = err // a reproduced fault arrives here, alongside the report
	if serr := j.compareSummary(rep); serr != nil {
		res.Matched = false
		res.Err = serr
	}
	return res
}
