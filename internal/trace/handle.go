package trace

// Handle is the random-access view of one trace: opened cheaply (one
// footer read for v3 files, one CRC-checked scan for v1/v2), it decodes
// epoch ranges and checkpoints on demand instead of materializing the
// whole recording. Every consumer of stored traces — whole-program replay,
// segment-parallel replay, batch analysis, the service daemon — works
// through a Handle, so the memory a trace costs is proportional to the
// slices actually in flight, not to the recording's size.

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/record"
)

// Handle is an open trace. Handles are immutable after open and safe for
// concurrent use: parallel segment workers share one handle and fetch
// their own slices. File-backed handles hold an open descriptor until
// Close; bytes- and trace-backed handles need no Close (it is a no-op).
type Handle struct {
	hdr Header
	idx *fileIndex
	sum *Summary

	// src serves indexed frame preads; nil for trace-backed handles.
	src io.ReaderAt
	// f is the owned descriptor of a file-backed handle (Close target).
	f *os.File

	// loaded short-circuits every fetch for a handle wrapped around an
	// already decoded in-memory trace (OpenTrace).
	loaded *Trace

	// st/name/mark bind a store-opened handle to the store's frame cache;
	// st is nil for standalone handles.
	st   *Store
	name string
	mark contentKey
}

// OpenFile opens the trace at path as an uncached, file-backed handle.
func OpenFile(path string) (*Handle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	h, err := newFileHandle(f, fi.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	return h, nil
}

// newFileHandle indexes an open trace file and wraps it. The handle owns f.
func newFileHandle(f *os.File, size int64) (*Handle, error) {
	start := time.Now()
	hdr, idx, err := openFileIndex(f, size)
	if err != nil {
		return nil, err
	}
	h := &Handle{hdr: hdr, idx: idx, src: f, f: f}
	if err := h.loadSummary(); err != nil {
		return nil, err
	}
	obs.TraceHandleOpen.ObserveSince(start)
	return h, nil
}

// OpenBytes opens an encoded trace held in memory as a handle; decoding
// stays lazy exactly as for a file.
func OpenBytes(b []byte) (*Handle, error) {
	r := bytes.NewReader(b)
	ix, err := loadFooterIndex(r, int64(len(b)))
	if err != nil {
		return nil, err
	}
	var hdr Header
	if ix != nil {
		if hdr, err = readHeaderFrame(r); err != nil {
			return nil, err
		}
	} else {
		if hdr, ix, err = scanIndex(bytes.NewReader(b)); err != nil {
			return nil, err
		}
	}
	h := &Handle{hdr: hdr, idx: ix, src: r}
	if err := h.loadSummary(); err != nil {
		return nil, err
	}
	return h, nil
}

// OpenTrace wraps an already decoded in-memory trace in a Handle — the
// adapter for callers that recorded straight into memory. No encoding or
// copying happens; fetches return the trace's own epochs and checkpoints.
func OpenTrace(tr *Trace) *Handle {
	ix := &fileIndex{complete: tr.Summary != nil}
	ix.epochs = make([]epochRef, len(tr.Epochs))
	for i, ep := range tr.Epochs {
		ix.epochs[i] = epochRef{seq: ep.Epoch, events: int64(ep.EventCount())}
	}
	ix.ckpts = make([]ckptRef, len(tr.Checkpoints))
	for i, ck := range tr.Checkpoints {
		ix.ckpts[i] = ckptRef{epoch: ck.Epoch(), keyframe: ck.Keyframe}
	}
	return &Handle{hdr: tr.Header, idx: ix, sum: tr.Summary, loaded: tr}
}

// loadSummary eagerly decodes the (small) summary frame of a complete
// trace so Summary never needs an error path at use sites.
func (h *Handle) loadSummary() error {
	if !h.idx.complete {
		return nil
	}
	payload, err := readFrameAt(h.src, h.idx.sum, frameSum)
	if err != nil {
		return err
	}
	h.sum, err = decodeSummary(payload)
	return err
}

// Close releases a file-backed handle's descriptor. It is a no-op for
// bytes- and trace-backed handles, and idempotent.
func (h *Handle) Close() error {
	if h.f == nil {
		return nil
	}
	f := h.f
	h.f = nil
	return f.Close()
}

// Header returns the trace header.
func (h *Handle) Header() Header { return h.hdr }

// Summary returns the recorded outcome, or nil for an incomplete trace.
func (h *Handle) Summary() *Summary { return h.sum }

// Complete reports whether the trace ends with its summary frame.
func (h *Handle) Complete() bool { return h.idx.complete }

// Indexed reports whether the handle was opened from the v3 index footer
// (false: built by scanning — v1/v2 files, damaged v3 index regions, and
// in-memory sources).
func (h *Handle) Indexed() bool { return h.idx.footer }

// NumEpochs returns the trace's epoch frame count.
func (h *Handle) NumEpochs() int { return len(h.idx.epochs) }

// NumCheckpoints returns the trace's checkpoint frame count (trailing
// checkpoints that pin no epoch are dropped at open).
func (h *Handle) NumCheckpoints() int { return len(h.idx.ckpts) }

// Keyframes returns how many checkpoints are keyframes.
func (h *Handle) Keyframes() int { return h.idx.keyframes() }

// LeadingCheckpoint reports whether the trace begins with a checkpoint at
// its first epoch frame — a suffix trace (a flight-recorder spill) that
// replays from the checkpoint instead of program start.
func (h *Handle) LeadingCheckpoint() bool {
	return len(h.idx.ckpts) > 0 && len(h.idx.epochs) > 0 &&
		h.idx.ckpts[0].epoch == h.idx.epochs[0].seq
}

// EventCount sums the recorded events across all epochs, from the index —
// no decode.
func (h *Handle) EventCount() int64 { return h.idx.events() }

// EpochRange returns the first and last recorded epoch sequence numbers
// (0, 0 for an empty trace).
func (h *Handle) EpochRange() (lo, hi int64) {
	if n := len(h.idx.epochs); n > 0 {
		return h.idx.epochs[0].seq, h.idx.epochs[n-1].seq
	}
	return 0, 0
}

// CheckpointEpochs returns the 1-based epoch each checkpoint begins, in
// file order.
func (h *Handle) CheckpointEpochs() []int64 {
	out := make([]int64, len(h.idx.ckpts))
	for i := range h.idx.ckpts {
		out[i] = h.idx.ckpts[i].epoch
	}
	return out
}

// epochAt decodes (or fetches from the store cache) the i-th epoch frame.
func (h *Handle) epochAt(i int) (*record.EpochLog, error) {
	if h.loaded != nil {
		return h.loaded.Epochs[i], nil
	}
	if h.st != nil {
		if ep, ok := h.st.cachedEpoch(h.name, h.mark, i); ok {
			return ep, nil
		}
	}
	fetchStart := time.Now()
	payload, err := readFrameAt(h.src, h.idx.epochs[i].frameRef, frameEpoch)
	if err != nil {
		return nil, err
	}
	ep, err := decodeEpoch(payload)
	if err != nil {
		return nil, err
	}
	if ep.Epoch != h.idx.epochs[i].seq {
		return nil, fmt.Errorf("trace: epoch frame %d holds sequence %d, index says %d",
			i, ep.Epoch, h.idx.epochs[i].seq)
	}
	if got := int64(ep.EventCount()); got != h.idx.epochs[i].events {
		// The index feeds EventCount/Entry/stats without decoding; an index
		// that lies about events is hard corruption like any other lie.
		return nil, fmt.Errorf("trace: epoch frame %d holds %d events, index says %d",
			i, got, h.idx.epochs[i].events)
	}
	obs.TraceFrameFetch.With("epoch").ObserveSince(fetchStart)
	if h.st != nil {
		h.st.insertEpoch(h.name, h.mark, i, ep)
	}
	return ep, nil
}

// ckptAt decodes (or fetches from the store cache) the k-th checkpoint
// frame in delta form.
func (h *Handle) ckptAt(k int) (*Checkpoint, error) {
	if h.loaded != nil {
		return h.loaded.Checkpoints[k], nil
	}
	if h.st != nil {
		if ck, ok := h.st.cachedCkpt(h.name, h.mark, k); ok {
			return ck, nil
		}
	}
	fetchStart := time.Now()
	payload, err := readFrameAt(h.src, h.idx.ckpts[k].frameRef, frameCkpt)
	if err != nil {
		return nil, err
	}
	ck, err := decodeCheckpoint(payload, h.hdr.Version, k == 0)
	if err != nil {
		return nil, err
	}
	if ck.Epoch() != h.idx.ckpts[k].epoch {
		return nil, fmt.Errorf("trace: checkpoint frame %d begins epoch %d, index says %d",
			k, ck.Epoch(), h.idx.ckpts[k].epoch)
	}
	obs.TraceFrameFetch.With("checkpoint").ObserveSince(fetchStart)
	if h.st != nil {
		h.st.insertCkpt(h.name, h.mark, k, ck)
	}
	return ck, nil
}

// Epochs decodes the epochs with sequence numbers in [lo, hi] (1-based,
// inclusive) — only those frames are read and decoded.
func (h *Handle) Epochs(lo, hi int64) ([]*record.EpochLog, error) {
	if lo > hi {
		return nil, fmt.Errorf("trace: empty epoch range [%d,%d]", lo, hi)
	}
	i := sort.Search(len(h.idx.epochs), func(i int) bool { return h.idx.epochs[i].seq >= lo })
	j := sort.Search(len(h.idx.epochs), func(i int) bool { return h.idx.epochs[i].seq > hi })
	if i == j || h.idx.epochs[i].seq != lo || h.idx.epochs[j-1].seq != hi {
		return nil, fmt.Errorf("trace: epoch range [%d,%d] not covered by the trace", lo, hi)
	}
	out := make([]*record.EpochLog, 0, j-i)
	for ; i < j; i++ {
		ep, err := h.epochAt(i)
		if err != nil {
			return nil, err
		}
		out = append(out, ep)
	}
	return out, nil
}

// AllEpochs decodes every epoch of the trace, in order.
func (h *Handle) AllEpochs() ([]*record.EpochLog, error) {
	out := make([]*record.EpochLog, 0, len(h.idx.epochs))
	for i := range h.idx.epochs {
		ep, err := h.epochAt(i)
		if err != nil {
			return nil, err
		}
		out = append(out, ep)
	}
	return out, nil
}

// CheckpointAt returns the k-th checkpoint (0-based, file order) with its
// memory image materialized, folding the delta chain from the nearest
// keyframe — at most the writer's keyframe interval of frames is decoded
// and applied, not the whole chain.
func (h *Handle) CheckpointAt(k int) (*core.Checkpoint, error) {
	if k < 0 || k >= len(h.idx.ckpts) {
		return nil, fmt.Errorf("trace: checkpoint %d out of range [0,%d)", k, len(h.idx.ckpts))
	}
	defer obs.TraceCkptFold.ObserveSince(time.Now())
	j := k
	for j > 0 && !h.idx.ckpts[j].keyframe {
		j--
	}
	cks := make([]*Checkpoint, 0, k-j+1)
	for i := j; i <= k; i++ {
		ck, err := h.ckptAt(i)
		if err != nil {
			return nil, err
		}
		cks = append(cks, ck)
	}
	return foldCheckpoints(cks, len(cks)-1)
}

// Trace fully decodes the handle into a Trace — the whole-recording path
// (Store.Load) and the adapter for consumers that still want everything in
// memory. For trace-backed handles it returns the wrapped trace itself.
func (h *Handle) Trace() (*Trace, error) {
	if h.loaded != nil {
		return h.loaded, nil
	}
	epochs, err := h.AllEpochs()
	if err != nil {
		return nil, err
	}
	cks := make([]*Checkpoint, len(h.idx.ckpts))
	for k := range h.idx.ckpts {
		if cks[k], err = h.ckptAt(k); err != nil {
			return nil, err
		}
	}
	return &Trace{Header: h.hdr, Epochs: epochs, Summary: h.sum, Checkpoints: cks}, nil
}
