package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/record"
)

// DefaultKeyframeEvery is the keyframe interval a Writer uses unless
// SetKeyframeEvery changes it: every K-th checkpoint frame stores its full
// memory image (a delta against the empty image) instead of a delta
// against the previous checkpoint, so folding to checkpoint k decodes at
// most K frames instead of the whole chain.
const DefaultKeyframeEvery = 8

// Writer streams a trace: header first, then one frame per epoch as the
// runtime flushes them — interleaved with checkpoint frames when the
// recording checkpoints — then the summary end marker, the index footer
// frame, and its trailer (format v3). It buffers only one frame at a time,
// so recording overhead stays proportional to epoch size, not trace size.
type Writer struct {
	w        io.Writer
	err      error
	finished bool
	scratch  []byte

	// ver is the header version being written: Version for NewWriter,
	// lowered only by the in-package legacy constructor tests use to
	// synthesize v1/v2 corpora.
	ver int

	// off is the byte offset the next frame lands at; lastCRC and lastPlen
	// describe the last frame written (its stored payload, compressed or
	// not). Together they feed the index.
	off      int64
	lastCRC  uint32
	lastPlen int
	index    fileIndex

	// compress enables per-frame deflate of epoch and checkpoint bodies
	// (format v4, Header.Compressed); z is the reused compressor.
	compress bool
	z        deflater

	// keyEvery is the keyframe interval (SetKeyframeEvery).
	keyEvery int

	// prevSnap is the previous checkpoint's memory image, the delta base for
	// the next one. prevRaw marks that a pre-encoded delta was re-emitted
	// (Encode of a decoded trace), after which fresh snapshots cannot be
	// chained.
	prevSnap *mem.Snapshot
	prevRaw  bool
}

// NewWriter writes the magic and header frame and returns a streaming
// writer.
func NewWriter(w io.Writer, hdr Header) (*Writer, error) {
	return newWriterVersion(w, hdr, Version)
}

// newWriterVersion is NewWriter with an explicit header version — the
// back-compat corpora in the tests are written through it (v1: no
// checkpoints or index; v2: unflagged checkpoint frames, no index).
func newWriterVersion(w io.Writer, hdr Header, ver int) (*Writer, error) {
	tw := &Writer{w: w, ver: ver, keyEvery: DefaultKeyframeEvery,
		compress: hdr.Compressed && ver >= 4}
	if _, err := io.WriteString(w, Magic); err != nil {
		return nil, fmt.Errorf("trace: writing magic: %w", err)
	}
	tw.off = int64(len(Magic))
	if err := tw.frame(frameHeader, appendHeader(nil, hdr, ver)); err != nil {
		return nil, err
	}
	return tw, nil
}

// SetKeyframeEvery sets the checkpoint keyframe interval: every k-th
// checkpoint frame (starting with the first) stores a full memory image.
// k <= 0 restores the default; k == 1 makes every checkpoint a keyframe.
func (tw *Writer) SetKeyframeEvery(k int) {
	if k <= 0 {
		k = DefaultKeyframeEvery
	}
	tw.keyEvery = k
}

// frame emits one kind/len/payload/crc frame.
func (tw *Writer) frame(kind byte, payload []byte) error {
	if tw.err != nil {
		return tw.err
	}
	buf := tw.scratch[:0]
	buf = append(buf, kind)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	tw.lastCRC = crc32.ChecksumIEEE(payload)
	tw.lastPlen = len(payload)
	buf = binary.LittleEndian.AppendUint32(buf, tw.lastCRC)
	tw.scratch = buf[:0]
	if _, err := tw.w.Write(buf); err != nil {
		tw.err = fmt.Errorf("trace: writing frame: %w", err)
		return tw.err
	}
	tw.off += int64(len(buf))
	return nil
}

// dataFrame emits one epoch or checkpoint frame, deflating the payload
// when compression is on and pays (the stored form would be smaller). The
// index entry the caller appends must use lastPlen/lastCRC — they describe
// the stored bytes, which is what readFrameAt fetches and checksums.
func (tw *Writer) dataFrame(kind byte, payload []byte) error {
	if tw.compress {
		if stored, ok := tw.z.deflate(payload); ok {
			return tw.frame(kind|frameCompressed, stored)
		}
	}
	return tw.frame(kind, payload)
}

// WriteEpoch appends one epoch frame.
func (tw *Writer) WriteEpoch(ep *record.EpochLog) error {
	if tw.finished {
		return fmt.Errorf("trace: WriteEpoch after Finish")
	}
	payload := appendEpoch(nil, ep)
	off := tw.off
	if err := tw.dataFrame(frameEpoch, payload); err != nil {
		return err
	}
	tw.index.epochs = append(tw.index.epochs, epochRef{
		frameRef: frameRef{off: off, plen: tw.lastPlen, crc: tw.lastCRC},
		seq:      ep.Epoch,
		events:   int64(ep.EventCount()),
	})
	return nil
}

// Sink adapts the writer to core.Options.TraceSink.
func (tw *Writer) Sink() func(*record.EpochLog) error {
	return tw.WriteEpoch
}

// WriteCheckpoint appends one checkpoint frame, delta-encoding its memory
// image against the previously written checkpoint's — except at keyframe
// positions (every keyEvery-th checkpoint, the first included), which
// encode against the empty image so readers can fold from the nearest
// keyframe instead of the chain's start. Call it before the epoch frame of
// ck.Epoch — which is the order core's sinks produce.
func (tw *Writer) WriteCheckpoint(ck *core.Checkpoint) error {
	if tw.finished {
		return fmt.Errorf("trace: WriteCheckpoint after Finish")
	}
	if ck.Snap == nil {
		return fmt.Errorf("trace: checkpoint at epoch %d has no memory snapshot", ck.Epoch)
	}
	if tw.prevRaw {
		return fmt.Errorf("trace: cannot chain a fresh checkpoint after a re-emitted delta")
	}
	keyframe := len(tw.index.ckpts)%tw.keyEvery == 0
	if tw.ver < 3 {
		// Legacy chains have exactly one implicit keyframe: the first frame.
		keyframe = len(tw.index.ckpts) == 0
	}
	base := tw.prevSnap
	if keyframe {
		base = nil
	}
	delta, err := mem.AppendSnapshotDelta(nil, base, ck.Snap)
	if err != nil {
		return err
	}
	payload, err := appendCheckpoint(nil, ck, delta, keyframe, tw.ver)
	if err != nil {
		return err
	}
	return tw.emitCheckpoint(payload, ck.Epoch, keyframe, ck.Snap)
}

// writeRawCheckpoint re-emits a decoded checkpoint frame verbatim (its
// stored delta already chains against the previously emitted one, or is a
// keyframe).
func (tw *Writer) writeRawCheckpoint(ck *Checkpoint) error {
	if tw.finished {
		return fmt.Errorf("trace: WriteCheckpoint after Finish")
	}
	payload, err := appendCheckpoint(nil, ck.State, ck.memDelta, ck.Keyframe, tw.ver)
	if err != nil {
		return err
	}
	tw.prevRaw = true
	return tw.emitCheckpoint(payload, ck.Epoch(), ck.Keyframe, nil)
}

// emitCheckpoint writes a prepared checkpoint payload and indexes it.
func (tw *Writer) emitCheckpoint(payload []byte, epoch int64, keyframe bool, snap *mem.Snapshot) error {
	off := tw.off
	if err := tw.dataFrame(frameCkpt, payload); err != nil {
		return err
	}
	tw.index.ckpts = append(tw.index.ckpts, ckptRef{
		frameRef: frameRef{off: off, plen: tw.lastPlen, crc: tw.lastCRC},
		epoch:    epoch,
		keyframe: keyframe,
	})
	if snap != nil {
		tw.prevSnap = snap
	}
	return nil
}

// CheckpointSink adapts the writer to core.Options.CheckpointSink.
func (tw *Writer) CheckpointSink() func(*core.Checkpoint) error {
	return tw.WriteCheckpoint
}

// Epochs returns how many epoch frames have been written.
func (tw *Writer) Epochs() int { return len(tw.index.epochs) }

// Ckpts returns how many checkpoint frames have been written.
func (tw *Writer) Ckpts() int { return len(tw.index.ckpts) }

// Keyframes returns how many written checkpoint frames are keyframes.
func (tw *Writer) Keyframes() int { return tw.index.keyframes() }

// Finish writes the summary end marker (an empty summary when sum is nil),
// then — for the current format version — the index footer frame and its
// trailer, and seals the writer. It does not close the underlying
// io.Writer.
func (tw *Writer) Finish(sum *Summary) error {
	if tw.finished {
		return tw.err
	}
	sumOff := tw.off
	sumPayload := appendSummary(nil, sum, tw.ver)
	if err := tw.frame(frameSum, sumPayload); err != nil {
		return err
	}
	tw.finished = true
	if tw.ver < 3 {
		return nil
	}
	tw.index.sum = frameRef{off: sumOff, plen: len(sumPayload), crc: tw.lastCRC}
	indexOff := tw.off
	if err := tw.indexFrame(appendIndex(nil, &tw.index)); err != nil {
		return err
	}
	var trailer [indexTrailerLen]byte
	binary.LittleEndian.PutUint64(trailer[:8], uint64(indexOff))
	copy(trailer[8:], indexTrailerMagic)
	if _, err := tw.w.Write(trailer[:]); err != nil {
		tw.err = fmt.Errorf("trace: writing index trailer: %w", err)
		return tw.err
	}
	tw.off += indexTrailerLen
	return nil
}

// indexFrame emits the index frame; it runs after finished is set, so it
// bypasses the sealed check that guards data frames.
func (tw *Writer) indexFrame(payload []byte) error {
	return tw.frame(frameIndex, payload)
}
