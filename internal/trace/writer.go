package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/record"
)

// Writer streams a trace: header first, then one frame per epoch as the
// runtime flushes them, then the summary end marker. It buffers only one
// frame at a time, so recording overhead stays proportional to epoch size,
// not trace size.
type Writer struct {
	w        io.Writer
	err      error
	finished bool
	epochs   int
	scratch  []byte
}

// NewWriter writes the magic and header frame and returns a streaming
// writer.
func NewWriter(w io.Writer, hdr Header) (*Writer, error) {
	tw := &Writer{w: w}
	if _, err := io.WriteString(w, Magic); err != nil {
		return nil, fmt.Errorf("trace: writing magic: %w", err)
	}
	if err := tw.frame(frameHeader, appendHeader(nil, hdr)); err != nil {
		return nil, err
	}
	return tw, nil
}

// frame emits one kind/len/payload/crc frame.
func (tw *Writer) frame(kind byte, payload []byte) error {
	if tw.err != nil {
		return tw.err
	}
	buf := tw.scratch[:0]
	buf = append(buf, kind)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	tw.scratch = buf[:0]
	if _, err := tw.w.Write(buf); err != nil {
		tw.err = fmt.Errorf("trace: writing frame: %w", err)
		return tw.err
	}
	return nil
}

// WriteEpoch appends one epoch frame.
func (tw *Writer) WriteEpoch(ep *record.EpochLog) error {
	if tw.finished {
		return fmt.Errorf("trace: WriteEpoch after Finish")
	}
	if err := tw.frame(frameEpoch, appendEpoch(nil, ep)); err != nil {
		return err
	}
	tw.epochs++
	return nil
}

// Sink adapts the writer to core.Options.TraceSink.
func (tw *Writer) Sink() func(*record.EpochLog) error {
	return tw.WriteEpoch
}

// Epochs returns how many epoch frames have been written.
func (tw *Writer) Epochs() int { return tw.epochs }

// Finish writes the summary end marker (an empty summary when sum is nil)
// and seals the writer. It does not close the underlying io.Writer.
func (tw *Writer) Finish(sum *Summary) error {
	if tw.finished {
		return tw.err
	}
	if err := tw.frame(frameSum, appendSummary(nil, sum)); err != nil {
		return err
	}
	tw.finished = true
	return nil
}
