package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/record"
)

// Writer streams a trace: header first, then one frame per epoch as the
// runtime flushes them — interleaved with checkpoint frames when the
// recording checkpoints — then the summary end marker. It buffers only one
// frame at a time, so recording overhead stays proportional to epoch size,
// not trace size.
type Writer struct {
	w        io.Writer
	err      error
	finished bool
	epochs   int
	ckpts    int
	scratch  []byte

	// prevSnap is the previous checkpoint's memory image, the delta base for
	// the next one. prevRaw marks that a pre-encoded delta was re-emitted
	// (Encode of a decoded trace), after which fresh snapshots cannot be
	// chained.
	prevSnap *mem.Snapshot
	prevRaw  bool
}

// NewWriter writes the magic and header frame and returns a streaming
// writer.
func NewWriter(w io.Writer, hdr Header) (*Writer, error) {
	tw := &Writer{w: w}
	if _, err := io.WriteString(w, Magic); err != nil {
		return nil, fmt.Errorf("trace: writing magic: %w", err)
	}
	if err := tw.frame(frameHeader, appendHeader(nil, hdr)); err != nil {
		return nil, err
	}
	return tw, nil
}

// frame emits one kind/len/payload/crc frame.
func (tw *Writer) frame(kind byte, payload []byte) error {
	if tw.err != nil {
		return tw.err
	}
	buf := tw.scratch[:0]
	buf = append(buf, kind)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	tw.scratch = buf[:0]
	if _, err := tw.w.Write(buf); err != nil {
		tw.err = fmt.Errorf("trace: writing frame: %w", err)
		return tw.err
	}
	return nil
}

// WriteEpoch appends one epoch frame.
func (tw *Writer) WriteEpoch(ep *record.EpochLog) error {
	if tw.finished {
		return fmt.Errorf("trace: WriteEpoch after Finish")
	}
	if err := tw.frame(frameEpoch, appendEpoch(nil, ep)); err != nil {
		return err
	}
	tw.epochs++
	return nil
}

// Sink adapts the writer to core.Options.TraceSink.
func (tw *Writer) Sink() func(*record.EpochLog) error {
	return tw.WriteEpoch
}

// WriteCheckpoint appends one checkpoint frame, delta-encoding its memory
// image against the previously written checkpoint's. Call it before the
// epoch frame of ck.Epoch — which is the order core's sinks produce.
func (tw *Writer) WriteCheckpoint(ck *core.Checkpoint) error {
	if tw.finished {
		return fmt.Errorf("trace: WriteCheckpoint after Finish")
	}
	if ck.Snap == nil {
		return fmt.Errorf("trace: checkpoint at epoch %d has no memory snapshot", ck.Epoch)
	}
	if tw.prevRaw {
		return fmt.Errorf("trace: cannot chain a fresh checkpoint after a re-emitted delta")
	}
	delta, err := mem.AppendSnapshotDelta(nil, tw.prevSnap, ck.Snap)
	if err != nil {
		return err
	}
	payload, err := appendCheckpoint(nil, ck, delta)
	if err != nil {
		return err
	}
	if err := tw.frame(frameCkpt, payload); err != nil {
		return err
	}
	tw.prevSnap = ck.Snap
	tw.ckpts++
	return nil
}

// writeRawCheckpoint re-emits a decoded checkpoint frame verbatim (its
// stored delta already chains against the previously emitted one).
func (tw *Writer) writeRawCheckpoint(ck *Checkpoint) error {
	if tw.finished {
		return fmt.Errorf("trace: WriteCheckpoint after Finish")
	}
	payload, err := appendCheckpoint(nil, ck.State, ck.memDelta)
	if err != nil {
		return err
	}
	if err := tw.frame(frameCkpt, payload); err != nil {
		return err
	}
	tw.prevRaw = true
	tw.ckpts++
	return nil
}

// CheckpointSink adapts the writer to core.Options.CheckpointSink.
func (tw *Writer) CheckpointSink() func(*core.Checkpoint) error {
	return tw.WriteCheckpoint
}

// Epochs returns how many epoch frames have been written.
func (tw *Writer) Epochs() int { return tw.epochs }

// Ckpts returns how many checkpoint frames have been written.
func (tw *Writer) Ckpts() int { return tw.ckpts }

// Finish writes the summary end marker (an empty summary when sum is nil)
// and seals the writer. It does not close the underlying io.Writer.
func (tw *Writer) Finish(sum *Summary) error {
	if tw.finished {
		return tw.err
	}
	if err := tw.frame(frameSum, appendSummary(nil, sum)); err != nil {
		return err
	}
	tw.finished = true
	return nil
}
