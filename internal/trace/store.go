package trace

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Store manages a directory of trace files and a decode cache. Traces are
// addressed by name (one file per trace, "<name>.irt") and indexed by the
// module fingerprint in their headers, so callers can enumerate every
// recording of a given program. Loads are cached: a decoded trace is
// immutable (the offline replayer copies before mutating), so repeated
// replays of one trace — the batch replayer's fan-out case — decode once.
type Store struct {
	dir string

	mu    sync.Mutex
	cache map[string]*cachedTrace
}

type cachedTrace struct {
	tr    *Trace
	size  int64
	mtime time.Time
}

// Entry describes one stored trace.
type Entry struct {
	Name   string
	Path   string
	Header Header
	Epochs int
	Events int64
	// Size is the file size in bytes.
	Size int64
	// Complete reports whether the trace ends with its summary frame (false
	// for a recording that was cut off).
	Complete bool
}

// Ext is the trace file extension.
const Ext = ".irt"

// OpenStore opens (creating if needed) a trace directory.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace: opening store: %w", err)
	}
	return &Store{dir: dir, cache: make(map[string]*cachedTrace)}, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the file path a trace name maps to.
func (s *Store) Path(name string) string {
	return filepath.Join(s.dir, name+Ext)
}

// Create opens (truncating) the named trace file for a streaming Writer,
// applying the same name validation as Save so a recording cannot land
// outside the store or under a name Load would later refuse.
func (s *Store) Create(name string) (*os.File, error) {
	if err := validateName(name); err != nil {
		return nil, err
	}
	f, err := os.Create(s.Path(name))
	if err != nil {
		return nil, fmt.Errorf("trace: creating %s: %w", name, err)
	}
	s.mu.Lock()
	delete(s.cache, name) // any cached decode is stale now
	s.mu.Unlock()
	return f, nil
}

// Save encodes and writes a trace under name, replacing any previous trace
// with that name. The cache is invalidated, not primed: the caller still
// owns tr and may mutate it, while cached traces must stay immutable images
// of the file — the next Load decodes fresh.
func (s *Store) Save(name string, tr *Trace) (string, error) {
	if err := validateName(name); err != nil {
		return "", err
	}
	b, err := Encode(tr)
	if err != nil {
		return "", err
	}
	path := s.Path(name)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return "", fmt.Errorf("trace: saving %s: %w", name, err)
	}
	s.mu.Lock()
	delete(s.cache, name)
	s.mu.Unlock()
	return path, nil
}

// Load returns the named trace, from the decode cache when the file is
// unchanged since the cached decode.
func (s *Store) Load(name string) (*Trace, error) {
	if err := validateName(name); err != nil {
		return nil, err
	}
	path := s.Path(name)
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("trace: no trace %q in %s: %w", name, s.dir, err)
	}
	s.mu.Lock()
	if c, ok := s.cache[name]; ok && c.size == fi.Size() && c.mtime.Equal(fi.ModTime()) {
		s.mu.Unlock()
		return c.tr, nil
	}
	s.mu.Unlock()
	tr, err := ReadFile(path)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.cache[name] = &cachedTrace{tr: tr, size: fi.Size(), mtime: fi.ModTime()}
	s.mu.Unlock()
	return tr, nil
}

// List enumerates every trace in the store, sorted by name. Files are
// scanned frame by frame (CRC-checked, statistics from frame headers), not
// decoded: an inventory pass over a large corpus costs IO only and does not
// populate the replay cache.
func (s *Store) List() ([]Entry, error) {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var out []Entry
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), Ext) {
			continue
		}
		name := strings.TrimSuffix(de.Name(), Ext)
		hdr, epochs, events, complete, err := scanFile(s.Path(name))
		if err != nil {
			// A torn or foreign file must not hide the healthy traces; it is
			// reported as an entry with no header.
			out = append(out, Entry{Name: name, Path: s.Path(name)})
			continue
		}
		fi, err := de.Info()
		if err != nil {
			return nil, err
		}
		out = append(out, Entry{
			Name:     name,
			Path:     s.Path(name),
			Header:   hdr,
			Epochs:   epochs,
			Events:   events,
			Size:     fi.Size(),
			Complete: complete,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// ByModule returns the stored traces recorded from the module with the
// given fingerprint.
func (s *Store) ByModule(hash uint64) ([]Entry, error) {
	all, err := s.List()
	if err != nil {
		return nil, err
	}
	var out []Entry
	for _, e := range all {
		if e.Header.ModuleHash == hash && hash != 0 {
			out = append(out, e)
		}
	}
	return out, nil
}
