package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Store manages a directory of trace files and a decode cache. Traces are
// addressed by name (one file per trace, "<name>.irt") and indexed by the
// module fingerprint in their headers, so callers can enumerate every
// recording of a given program. Loads are cached: a decoded trace is
// immutable (the offline replayer copies before mutating), so repeated
// replays of one trace — the batch replayer's fan-out case — decode once.
type Store struct {
	dir string

	mu    sync.Mutex
	cache map[string]*cachedTrace
}

type cachedTrace struct {
	tr    *Trace
	size  int64
	mtime time.Time
	// headCRC/tail fingerprint the file's content cheaply: the header
	// frame's stored CRC and the file's final bytes (the last frame's CRC
	// lives there). A same-size rewrite landing within the filesystem's
	// mtime granularity still differs in one of them unless it is
	// byte-identical in both ends — in which case the cached decode is the
	// same trace for any content this store writes.
	headCRC uint32
	tail    [8]byte
}

// Entry describes one stored trace.
type Entry struct {
	Name   string
	Path   string
	Header Header
	Epochs int
	Events int64
	// Checkpoints counts the trace's checkpoint frames (format v2).
	Checkpoints int
	// Size is the file size in bytes.
	Size int64
	// Complete reports whether the trace ends with its summary frame (false
	// for a recording that was cut off).
	Complete bool
	// Err is set when the file could not be scanned (torn, corrupt, or
	// foreign); such an entry is degraded — only Name and Path are valid —
	// but it never hides the store's healthy traces.
	Err error
}

// Ext is the trace file extension.
const Ext = ".irt"

// OpenStore opens (creating if needed) a trace directory.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace: opening store: %w", err)
	}
	return &Store{dir: dir, cache: make(map[string]*cachedTrace)}, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the file path a trace name maps to.
func (s *Store) Path(name string) string {
	return filepath.Join(s.dir, name+Ext)
}

// Create opens (truncating) the named trace file for a streaming Writer,
// applying the same name validation as Save so a recording cannot land
// outside the store or under a name Load would later refuse.
func (s *Store) Create(name string) (*os.File, error) {
	if err := validateName(name); err != nil {
		return nil, err
	}
	f, err := os.Create(s.Path(name))
	if err != nil {
		return nil, fmt.Errorf("trace: creating %s: %w", name, err)
	}
	s.mu.Lock()
	delete(s.cache, name) // any cached decode is stale now
	s.mu.Unlock()
	return f, nil
}

// Save encodes and writes a trace under name, replacing any previous trace
// with that name. The cache is invalidated, not primed: the caller still
// owns tr and may mutate it, while cached traces must stay immutable images
// of the file — the next Load decodes fresh.
func (s *Store) Save(name string, tr *Trace) (string, error) {
	if err := validateName(name); err != nil {
		return "", err
	}
	b, err := Encode(tr)
	if err != nil {
		return "", err
	}
	path := s.Path(name)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return "", fmt.Errorf("trace: saving %s: %w", name, err)
	}
	s.mu.Lock()
	delete(s.cache, name)
	s.mu.Unlock()
	return path, nil
}

// contentMark reads the cheap content fingerprint of the trace file at
// path: the header frame's stored CRC and the file's final bytes. Two small
// reads — no decode, no full-file IO.
func contentMark(path string, size int64) (headCRC uint32, tail [8]byte, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, tail, err
	}
	defer f.Close()
	// Header frame: kind(1) + len(uvarint) + payload + crc(4), after magic.
	var head [19]byte // magic + kind + a full-width length varint
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return 0, tail, err
	}
	n, w := binary.Uvarint(head[len(Magic)+1:])
	if w <= 0 || head[len(Magic)] != frameHeader {
		return 0, tail, fmt.Errorf("trace: malformed header frame in %s", path)
	}
	crcOff := int64(len(Magic)) + 1 + int64(w) + int64(n)
	var crcb [4]byte
	if _, err := f.ReadAt(crcb[:], crcOff); err != nil {
		return 0, tail, err
	}
	headCRC = binary.LittleEndian.Uint32(crcb[:])
	tailOff := size - int64(len(tail))
	if tailOff < 0 {
		tailOff = 0
	}
	if _, err := f.ReadAt(tail[:size-tailOff], tailOff); err != nil {
		return 0, tail, err
	}
	return headCRC, tail, nil
}

// Load returns the named trace, from the decode cache when the file is
// unchanged since the cached decode. Size and mtime alone cannot prove
// that — a same-size rewrite can land within the filesystem's mtime
// granularity — so a cache hit also re-checks a cheap content fingerprint
// (header-frame CRC plus the file's final bytes) before being served.
func (s *Store) Load(name string) (*Trace, error) {
	if err := validateName(name); err != nil {
		return nil, err
	}
	path := s.Path(name)
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("trace: no trace %q in %s: %w", name, s.dir, err)
	}
	s.mu.Lock()
	c, ok := s.cache[name]
	s.mu.Unlock()
	if ok && c.size == fi.Size() && c.mtime.Equal(fi.ModTime()) {
		if head, tail, err := contentMark(path, fi.Size()); err == nil &&
			head == c.headCRC && tail == c.tail {
			return c.tr, nil
		}
		// Content changed under an unchanged stat (or became unreadable):
		// fall through to a fresh decode.
	}
	tr, err := ReadFile(path)
	if err != nil {
		return nil, err
	}
	head, tail, err := contentMark(path, fi.Size())
	if err != nil {
		// Decoded but no longer fingerprintable (concurrent rewrite):
		// serve the decode, skip caching it.
		return tr, nil
	}
	s.mu.Lock()
	s.cache[name] = &cachedTrace{tr: tr, size: fi.Size(), mtime: fi.ModTime(), headCRC: head, tail: tail}
	s.mu.Unlock()
	return tr, nil
}

// List enumerates every trace in the store, sorted by name. Files are
// scanned frame by frame (CRC-checked, statistics from frame headers), not
// decoded: an inventory pass over a large corpus costs IO only and does not
// populate the replay cache.
func (s *Store) List() ([]Entry, error) {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var out []Entry
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), Ext) {
			continue
		}
		name := strings.TrimSuffix(de.Name(), Ext)
		hdr, epochs, events, ckpts, complete, err := scanFile(s.Path(name))
		if err != nil {
			// A torn or foreign file must not hide the healthy traces; it is
			// reported as a degraded entry carrying the scan error.
			out = append(out, Entry{Name: name, Path: s.Path(name), Err: err})
			continue
		}
		fi, err := de.Info()
		if err != nil {
			// The file scanned but its metadata vanished (e.g. deleted
			// between ReadDir and Info): degrade this entry like a torn
			// file instead of aborting the whole listing.
			out = append(out, Entry{Name: name, Path: s.Path(name), Err: err})
			continue
		}
		out = append(out, Entry{
			Name:        name,
			Path:        s.Path(name),
			Header:      hdr,
			Epochs:      epochs,
			Events:      events,
			Checkpoints: ckpts,
			Size:        fi.Size(),
			Complete:    complete,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// ByModule returns the stored traces recorded from the module with the
// given fingerprint.
func (s *Store) ByModule(hash uint64) ([]Entry, error) {
	all, err := s.List()
	if err != nil {
		return nil, err
	}
	var out []Entry
	for _, e := range all {
		if e.Header.ModuleHash == hash && hash != 0 {
			out = append(out, e)
		}
	}
	return out, nil
}
