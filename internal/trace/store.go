package trace

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/record"
)

// Store manages a directory of trace files and a bounded decode cache.
// Traces are addressed by name (one file per trace, "<name>.irt") and
// indexed by the module fingerprint in their headers, so callers can
// enumerate every recording of a given program.
//
// Access is handle-based: Open returns a Handle whose epoch ranges and
// checkpoints decode lazily, and Load (the whole-recording convenience)
// goes through the same path. The cache works at frame granularity — its
// unit is one decoded epoch or checkpoint frame, costed at its decoded
// size — so what the store pins in memory is proportional to the segments
// consumers actually touch, never to the size of the files they came
// from. Entries are keyed by a content fingerprint as well as the trace
// name, so a rewritten file can never serve another file's frames.
//
// The cache is an LRU sized in bytes (DefaultCacheBytes unless
// SetCacheLimit changes it). Eviction happens on insert, when a fresh
// decode pushes the total over the limit; the entry being inserted is
// never the victim, so the frame being worked on always caches even when
// it alone exceeds the budget.
type Store struct {
	dir string

	mu sync.Mutex
	// cache maps frame key → element in lru; lru's front is most recent.
	cache map[frameKey]*list.Element // guarded by mu
	lru   *list.List                 // guarded by mu; of *cachedFrame
	// limit/used implement the byte budget; hits/misses/evictions feed
	// Stats (and the daemon's /metrics).
	limit     int64
	used      int64
	hits      uint64
	misses    uint64
	evictions uint64
}

// DefaultCacheBytes is the decode-cache budget OpenStore starts with:
// generous enough that a CLI batch over a laptop-sized corpus never evicts,
// small enough that a long-running daemon cannot grow without bound.
const DefaultCacheBytes = 256 << 20

// contentKey fingerprints a trace file's content cheaply: the header
// frame's stored CRC and the file's final bytes (the last frame's CRC or
// the index trailer lives there). A rewrite landing within the
// filesystem's mtime granularity still differs in one of them unless it is
// byte-identical in both ends — in which case the cached frames are the
// same trace for any content this store writes.
type contentKey struct {
	head uint32
	tail [8]byte
}

// frameKey addresses one cached decoded frame.
type frameKey struct {
	name string
	mark contentKey
	kind byte // frameEpoch or frameCkpt
	idx  int  // epoch position or checkpoint ordinal (file order)
}

type cachedFrame struct {
	key  frameKey
	val  any // *record.EpochLog or *Checkpoint
	cost int64
}

// StoreStats reports the decode cache's state and effectiveness.
type StoreStats struct {
	// CachedFrames/CachedBytes describe the current contents: decoded
	// epoch and checkpoint frames, costed at their decoded sizes.
	CachedFrames int   `json:"cached_frames"`
	CachedBytes  int64 `json:"cached_bytes"`
	// LimitBytes is the configured budget (0 = caching disabled).
	LimitBytes int64 `json:"limit_bytes"`
	// Hits/Misses/Evictions are cumulative since OpenStore, counted per
	// frame fetch. A fetch served from cache is a hit; a fresh decode is a
	// miss; an entry displaced by the byte budget is an eviction
	// (invalidations by Save/Create are not).
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// HitRate returns hits/(hits+misses), 0 before any fetch.
func (s StoreStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Entry describes one stored trace.
type Entry struct {
	Name   string
	Path   string
	Header Header
	Epochs int
	Events int64
	// Checkpoints counts the trace's checkpoint frames; Keyframes counts
	// those carrying a full memory image (format v3 flags).
	Checkpoints int
	Keyframes   int
	// Size is the file size in bytes.
	Size int64
	// Complete reports whether the trace ends with its summary frame (false
	// for a recording that was cut off).
	Complete bool
	// Indexed reports whether the statistics came from the v3 index footer
	// (one footer read) rather than a whole-file scan.
	Indexed bool
	// Err is set when the file could not be opened (torn, corrupt, or
	// foreign); such an entry is degraded — only Name and Path are valid —
	// but it never hides the store's healthy traces.
	Err error
}

// Ext is the trace file extension.
const Ext = ".irt"

// partialExt marks an in-progress recording; List ignores these, and
// PartialTrace.Commit renames them into place.
const partialExt = ".partial"

// OpenStore opens (creating if needed) a trace directory.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace: opening store: %w", err)
	}
	return &Store{
		dir:   dir,
		cache: make(map[frameKey]*list.Element),
		lru:   list.New(),
		limit: DefaultCacheBytes,
	}, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// SetCacheLimit resizes the decode cache's byte budget, evicting
// least-recently-used entries that no longer fit. A limit <= 0 disables
// caching (every fetch decodes fresh).
func (s *Store) SetCacheLimit(bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if bytes < 0 {
		bytes = 0
	}
	s.limit = bytes
	s.evictOverLocked(nil)
}

// Stats snapshots the decode cache counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		CachedFrames: s.lru.Len(),
		CachedBytes:  s.used,
		LimitBytes:   s.limit,
		Hits:         s.hits,
		Misses:       s.misses,
		Evictions:    s.evictions,
	}
}

// removeLocked drops a cache entry (invalidation or eviction).
func (s *Store) removeLocked(el *list.Element) {
	c := el.Value.(*cachedFrame)
	s.lru.Remove(el)
	delete(s.cache, c.key)
	s.used -= c.cost
}

// evictOverLocked evicts LRU entries until the budget holds, never evicting
// keep (the entry just inserted).
func (s *Store) evictOverLocked(keep *list.Element) {
	for s.used > s.limit && s.lru.Len() > 0 {
		el := s.lru.Back()
		if el == keep {
			if el = el.Prev(); el == nil {
				return
			}
		}
		s.removeLocked(el)
		s.evictions++
	}
}

// invalidate drops every cached frame of name (Save/Create rewrote it).
func (s *Store) invalidate(name string) {
	s.mu.Lock()
	var next *list.Element
	for el := s.lru.Front(); el != nil; el = next {
		next = el.Next()
		if el.Value.(*cachedFrame).key.name == name {
			s.removeLocked(el)
		}
	}
	s.mu.Unlock()
}

// lookup serves one cached frame, counting a hit or miss.
func (s *Store) lookup(key frameKey) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.cache[key]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.lru.MoveToFront(el)
	return el.Value.(*cachedFrame).val, true
}

// insert caches one freshly decoded frame, evicting over-budget entries
// (never the one being inserted).
func (s *Store) insert(key frameKey, val any, cost int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.limit <= 0 {
		return
	}
	if old, ok := s.cache[key]; ok {
		s.removeLocked(old)
	}
	el := s.lru.PushFront(&cachedFrame{key: key, val: val, cost: cost})
	s.cache[key] = el
	s.used += cost
	s.evictOverLocked(el)
}

func (s *Store) cachedEpoch(name string, mark contentKey, i int) (*record.EpochLog, bool) {
	if v, ok := s.lookup(frameKey{name: name, mark: mark, kind: frameEpoch, idx: i}); ok {
		return v.(*record.EpochLog), true
	}
	return nil, false
}

func (s *Store) insertEpoch(name string, mark contentKey, i int, ep *record.EpochLog) {
	s.insert(frameKey{name: name, mark: mark, kind: frameEpoch, idx: i}, ep, epochCost(ep))
}

func (s *Store) cachedCkpt(name string, mark contentKey, k int) (*Checkpoint, bool) {
	if v, ok := s.lookup(frameKey{name: name, mark: mark, kind: frameCkpt, idx: k}); ok {
		return v.(*Checkpoint), true
	}
	return nil, false
}

func (s *Store) insertCkpt(name string, mark contentKey, k int, ck *Checkpoint) {
	s.insert(frameKey{name: name, mark: mark, kind: frameCkpt, idx: k}, ck, ckptCost(ck))
}

// epochCost approximates one decoded epoch's resident size: struct
// headers, per-event fixed fields, and syscall payload bytes.
func epochCost(ep *record.EpochLog) int64 {
	const (
		epochFixed  = 64
		threadFixed = 48
		eventFixed  = 56
		varFixed    = 32
	)
	c := int64(epochFixed)
	for i := range ep.Threads {
		tl := &ep.Threads[i]
		c += threadFixed + int64(len(tl.Events))*eventFixed
		for j := range tl.Events {
			c += int64(len(tl.Events[j].Data))
		}
	}
	for i := range ep.Vars {
		c += varFixed + 4*int64(len(ep.Vars[i].Order))
	}
	return c
}

// ckptCost approximates one decoded delta-form checkpoint's resident
// size: the raw memory delta plus the decoded state's owned bytes.
func ckptCost(ck *Checkpoint) int64 {
	const (
		ckptFixed   = 256
		threadFixed = 128
		varFixed    = 64
	)
	c := int64(ckptFixed) + int64(len(ck.memDelta))
	st := ck.State
	c += int64(len(st.Threads)) * threadFixed
	c += int64(len(st.Vars)) * varFixed
	if st.FS != nil {
		for i := range st.FS.Files {
			c += int64(len(st.FS.Files[i].Data)) + int64(len(st.FS.Files[i].Name))
		}
		c += int64(len(st.FS.FDs)) * 48
	}
	return c
}

// Path returns the file path a trace name maps to.
func (s *Store) Path(name string) string {
	return filepath.Join(s.dir, name+Ext)
}

// PartialTrace is an in-progress recording: a writable file under a
// ".partial" name that List never reports, renamed into place only by
// Commit. A recorder that crashes mid-run leaves the partial file behind
// instead of a torn trace under a valid name.
type PartialTrace struct {
	f     *os.File
	st    *Store
	name  string
	done  bool
	bytes int64
}

// Write appends to the partial file (io.Writer for trace.NewWriter).
func (p *PartialTrace) Write(b []byte) (int, error) {
	n, err := p.f.Write(b)
	p.bytes += int64(n)
	return n, err
}

// Bytes returns how many bytes have been written so far.
func (p *PartialTrace) Bytes() int64 { return p.bytes }

// Commit closes the partial file and renames it to its final trace name,
// replacing any previous trace and invalidating its cached frames. After
// Commit (or Abort) the PartialTrace is spent.
func (p *PartialTrace) Commit() error {
	if p.done {
		return fmt.Errorf("trace: partial trace %q already closed", p.name)
	}
	p.done = true
	if err := p.f.Close(); err != nil {
		os.Remove(p.f.Name())
		return fmt.Errorf("trace: closing partial %s: %w", p.name, err)
	}
	if err := os.Rename(p.f.Name(), p.st.Path(p.name)); err != nil {
		os.Remove(p.f.Name())
		return fmt.Errorf("trace: committing %s: %w", p.name, err)
	}
	p.st.invalidate(p.name)
	return nil
}

// Abort closes and removes the partial file, leaving any previous trace of
// the same name untouched. Abort after Commit is a no-op, so callers can
// defer it as crash insurance.
func (p *PartialTrace) Abort() {
	if p.done {
		return
	}
	p.done = true
	p.f.Close()
	os.Remove(p.f.Name())
}

// Create opens the named trace for a streaming Writer, applying the same
// name validation as Save. The recording lands under a ".partial" name
// until PartialTrace.Commit renames it into place, so an in-progress (or
// abandoned) recording never lists as a torn trace and a previous complete
// recording of the same name survives until the new one commits.
func (s *Store) Create(name string) (*PartialTrace, error) {
	if err := validateName(name); err != nil {
		return nil, err
	}
	f, err := os.Create(s.Path(name) + partialExt)
	if err != nil {
		return nil, fmt.Errorf("trace: creating %s: %w", name, err)
	}
	return &PartialTrace{f: f, st: s, name: name}, nil
}

// Save encodes and writes a trace under name, replacing any previous trace
// with that name. The bytes land in a temporary file first and are renamed
// into place, so a crash mid-save can never leave a torn file under a
// valid name. The cache is invalidated, not primed: the caller still owns
// tr and may mutate it, while cached frames must stay immutable images of
// the file — the next fetch decodes fresh.
func (s *Store) Save(name string, tr *Trace) (string, error) {
	if err := validateName(name); err != nil {
		return "", err
	}
	b, err := Encode(tr)
	if err != nil {
		return "", err
	}
	path := s.Path(name)
	tmp, err := os.CreateTemp(s.dir, name+".*.tmp")
	if err != nil {
		return "", fmt.Errorf("trace: saving %s: %w", name, err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", fmt.Errorf("trace: saving %s: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("trace: saving %s: %w", name, err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("trace: saving %s: %w", name, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("trace: saving %s: %w", name, err)
	}
	s.invalidate(name)
	return path, nil
}

// contentMark reads the cheap content fingerprint of an open trace file:
// the header frame's stored CRC plus a tail sample. For indexed (v3)
// files the tail is the 8 bytes preceding the trailer — the end of the
// index frame, whose CRC covers every other frame's CRC, so any content
// change anywhere in the file changes the mark. For unindexed files the
// tail is the file's final bytes (the last frame's CRC lives there). A
// rewrite landing within the filesystem's mtime granularity still changes
// the mark unless it is byte-identical at both ends. The mark is read
// through the handle's own descriptor — never by path — so a concurrent
// rename-replace cannot key one file's frames under another file's mark.
// Three small reads — no decode, no full-file IO.
func contentMark(f io.ReaderAt, size int64) (contentKey, error) {
	var key contentKey
	payloadOff, plen, err := locateHeaderFrame(f)
	if err != nil {
		return key, err
	}
	var crcb [4]byte
	if _, err := f.ReadAt(crcb[:], payloadOff+int64(plen)); err != nil {
		return key, err
	}
	key.head = binary.LittleEndian.Uint32(crcb[:])
	tailOff := size - int64(len(key.tail))
	if size >= indexTrailerLen+int64(len(key.tail)) {
		var trailer [indexTrailerLen]byte
		if _, err := f.ReadAt(trailer[:], size-indexTrailerLen); err != nil {
			return key, err
		}
		if string(trailer[8:]) == indexTrailerMagic {
			// Indexed file: the trailer bytes are content-independent, so
			// sample the index frame's tail (its CRC) instead.
			tailOff = size - indexTrailerLen - int64(len(key.tail))
		}
	}
	if tailOff < 0 {
		tailOff = 0
	}
	span := int64(len(key.tail))
	if size-tailOff < span {
		span = size - tailOff
	}
	if _, err := f.ReadAt(key.tail[:span], tailOff); err != nil {
		return key, err
	}
	return key, nil
}

// Open returns a Handle on the named trace: one footer read for an indexed
// (v3) file, one CRC-checked scan otherwise, no epoch decode either way.
// The handle shares the store's frame cache with every other handle on the
// same content; close it when done (file-backed handles hold a
// descriptor).
func (s *Store) Open(name string) (*Handle, error) {
	if err := validateName(name); err != nil {
		return nil, err
	}
	f, err := os.Open(s.Path(name))
	if err != nil {
		return nil, fmt.Errorf("trace: no trace %q in %s: %w", name, s.dir, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	mark, err := contentMark(f, fi.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	h, err := newFileHandle(f, fi.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	h.st, h.name, h.mark = s, name, mark
	return h, nil
}

// Load returns the named trace fully decoded — Open plus a whole-trace
// fetch through the frame cache. Prefer Open for anything that does not
// need every epoch in memory at once.
func (s *Store) Load(name string) (*Trace, error) {
	h, err := s.Open(name)
	if err != nil {
		return nil, err
	}
	defer h.Close()
	return h.Trace()
}

// scanEntry builds the entry for one named trace from its index (footer or
// scan); Size is left for the caller (it owns the file metadata). A torn
// or foreign file degrades to an entry carrying the open error.
func (s *Store) scanEntry(name string) Entry {
	path := s.Path(name)
	f, err := os.Open(path)
	if err != nil {
		return Entry{Name: name, Path: path, Err: err}
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return Entry{Name: name, Path: path, Err: err}
	}
	hdr, ix, err := openFileIndex(f, fi.Size())
	if err != nil {
		return Entry{Name: name, Path: path, Err: err}
	}
	return Entry{
		Name:        name,
		Path:        path,
		Header:      hdr,
		Epochs:      len(ix.epochs),
		Events:      ix.events(),
		Checkpoints: len(ix.ckpts),
		Keyframes:   ix.keyframes(),
		Complete:    ix.complete,
		Indexed:     ix.footer,
	}
}

// Entry returns the store entry for one named trace, touching only that
// file — the daemon's single-trace inspection path, which must not cost a
// whole-store pass (and, for indexed traces, costs one footer read). A
// missing trace (or invalid name) is an error; a torn or corrupt file is a
// degraded entry carrying the open error, exactly as in List.
func (s *Store) Entry(name string) (Entry, error) {
	if err := validateName(name); err != nil {
		return Entry{}, err
	}
	fi, err := os.Stat(s.Path(name))
	if err != nil {
		return Entry{}, fmt.Errorf("trace: no trace %q in %s: %w", name, s.dir, err)
	}
	e := s.scanEntry(name)
	if e.Err == nil {
		e.Size = fi.Size()
	}
	return e, nil
}

// List enumerates every trace in the store, sorted by name. Indexed (v3)
// files cost one footer read each; older files are scanned frame by frame
// (CRC-checked, statistics from frame headers). Nothing is decoded and the
// replay cache is not populated. In-progress recordings (".partial" files)
// and foreign files are skipped; torn traces degrade to entries carrying
// their error.
func (s *Store) List() ([]Entry, error) {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var out []Entry
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), Ext) {
			continue
		}
		name := strings.TrimSuffix(de.Name(), Ext)
		e := s.scanEntry(name)
		if e.Err == nil {
			fi, err := de.Info()
			if err != nil {
				// The file scanned but its metadata vanished (e.g. deleted
				// between ReadDir and Info): degrade this entry like a torn
				// file instead of aborting the whole listing.
				e = Entry{Name: name, Path: s.Path(name), Err: err}
			} else {
				e.Size = fi.Size()
			}
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// ByModule returns the stored traces recorded from the module with the
// given fingerprint.
func (s *Store) ByModule(hash uint64) ([]Entry, error) {
	all, err := s.List()
	if err != nil {
		return nil, err
	}
	var out []Entry
	for _, e := range all {
		if e.Header.ModuleHash == hash && hash != 0 {
			out = append(out, e)
		}
	}
	return out, nil
}
