package trace

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Store manages a directory of trace files and a bounded decode cache.
// Traces are addressed by name (one file per trace, "<name>.irt") and
// indexed by the module fingerprint in their headers, so callers can
// enumerate every recording of a given program. Loads are cached: a decoded
// trace is immutable (the offline replayer copies before mutating), so
// repeated replays of one trace — the batch replayer's fan-out case and the
// daemon's repeated analyze jobs — decode once.
//
// The cache is an LRU sized in bytes (DefaultCacheBytes unless
// SetCacheLimit changes it), with each entry costed at its trace file's
// on-disk size — a stable, cheap proxy for the decoded footprint. Eviction
// happens on Load, when inserting a fresh decode pushes the total over the
// limit; the entry being inserted is never the victim, so the working trace
// always caches even when it alone exceeds the budget.
type Store struct {
	dir string

	mu sync.Mutex
	// cache maps name → element in lru; lru's front is most recent.
	cache map[string]*list.Element
	lru   *list.List // of *cachedTrace
	// limit/used implement the byte budget; hits/misses/evictions feed
	// Stats (and the daemon's /metrics).
	limit     int64
	used      int64
	hits      uint64
	misses    uint64
	evictions uint64
}

// DefaultCacheBytes is the decode-cache budget OpenStore starts with:
// generous enough that a CLI batch over a laptop-sized corpus never evicts,
// small enough that a long-running daemon cannot grow without bound.
const DefaultCacheBytes = 256 << 20

type cachedTrace struct {
	name  string
	tr    *Trace
	size  int64
	mtime time.Time
	// headCRC/tail fingerprint the file's content cheaply: the header
	// frame's stored CRC and the file's final bytes (the last frame's CRC
	// lives there). A same-size rewrite landing within the filesystem's
	// mtime granularity still differs in one of them unless it is
	// byte-identical in both ends — in which case the cached decode is the
	// same trace for any content this store writes.
	headCRC uint32
	tail    [8]byte
}

// StoreStats reports the decode cache's state and effectiveness.
type StoreStats struct {
	// CachedTraces/CachedBytes describe the current contents (bytes are
	// the summed on-disk sizes of the cached decodes).
	CachedTraces int   `json:"cached_traces"`
	CachedBytes  int64 `json:"cached_bytes"`
	// LimitBytes is the configured budget (0 = caching disabled).
	LimitBytes int64 `json:"limit_bytes"`
	// Hits/Misses/Evictions are cumulative since OpenStore. A Load served
	// from cache is a hit; a fresh decode is a miss; an entry displaced by
	// the byte budget is an eviction (invalidations by Save/Create are
	// not).
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// HitRate returns hits/(hits+misses), 0 before any Load.
func (s StoreStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Entry describes one stored trace.
type Entry struct {
	Name   string
	Path   string
	Header Header
	Epochs int
	Events int64
	// Checkpoints counts the trace's checkpoint frames (format v2).
	Checkpoints int
	// Size is the file size in bytes.
	Size int64
	// Complete reports whether the trace ends with its summary frame (false
	// for a recording that was cut off).
	Complete bool
	// Err is set when the file could not be scanned (torn, corrupt, or
	// foreign); such an entry is degraded — only Name and Path are valid —
	// but it never hides the store's healthy traces.
	Err error
}

// Ext is the trace file extension.
const Ext = ".irt"

// OpenStore opens (creating if needed) a trace directory.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace: opening store: %w", err)
	}
	return &Store{
		dir:   dir,
		cache: make(map[string]*list.Element),
		lru:   list.New(),
		limit: DefaultCacheBytes,
	}, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// SetCacheLimit resizes the decode cache's byte budget, evicting
// least-recently-used entries that no longer fit. A limit <= 0 disables
// caching (every Load decodes fresh).
func (s *Store) SetCacheLimit(bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if bytes < 0 {
		bytes = 0
	}
	s.limit = bytes
	s.evictOverLocked(nil)
}

// Stats snapshots the decode cache counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		CachedTraces: s.lru.Len(),
		CachedBytes:  s.used,
		LimitBytes:   s.limit,
		Hits:         s.hits,
		Misses:       s.misses,
		Evictions:    s.evictions,
	}
}

// removeLocked drops a cache entry (invalidation or eviction).
func (s *Store) removeLocked(el *list.Element) {
	c := el.Value.(*cachedTrace)
	s.lru.Remove(el)
	delete(s.cache, c.name)
	s.used -= c.size
}

// evictOverLocked evicts LRU entries until the budget holds, never evicting
// keep (the entry just inserted).
func (s *Store) evictOverLocked(keep *list.Element) {
	for s.used > s.limit && s.lru.Len() > 0 {
		el := s.lru.Back()
		if el == keep {
			if el = el.Prev(); el == nil {
				return
			}
		}
		s.removeLocked(el)
		s.evictions++
	}
}

// invalidate drops any cached decode of name (Save/Create rewrote it).
func (s *Store) invalidate(name string) {
	s.mu.Lock()
	if el, ok := s.cache[name]; ok {
		s.removeLocked(el)
	}
	s.mu.Unlock()
}

// Path returns the file path a trace name maps to.
func (s *Store) Path(name string) string {
	return filepath.Join(s.dir, name+Ext)
}

// Create opens (truncating) the named trace file for a streaming Writer,
// applying the same name validation as Save so a recording cannot land
// outside the store or under a name Load would later refuse.
func (s *Store) Create(name string) (*os.File, error) {
	if err := validateName(name); err != nil {
		return nil, err
	}
	f, err := os.Create(s.Path(name))
	if err != nil {
		return nil, fmt.Errorf("trace: creating %s: %w", name, err)
	}
	s.invalidate(name) // any cached decode is stale now
	return f, nil
}

// Save encodes and writes a trace under name, replacing any previous trace
// with that name. The cache is invalidated, not primed: the caller still
// owns tr and may mutate it, while cached traces must stay immutable images
// of the file — the next Load decodes fresh.
func (s *Store) Save(name string, tr *Trace) (string, error) {
	if err := validateName(name); err != nil {
		return "", err
	}
	b, err := Encode(tr)
	if err != nil {
		return "", err
	}
	path := s.Path(name)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return "", fmt.Errorf("trace: saving %s: %w", name, err)
	}
	s.invalidate(name)
	return path, nil
}

// contentMark reads the cheap content fingerprint of the trace file at
// path: the header frame's stored CRC and the file's final bytes. Two small
// reads — no decode, no full-file IO.
func contentMark(path string, size int64) (headCRC uint32, tail [8]byte, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, tail, err
	}
	defer f.Close()
	// Header frame: kind(1) + len(uvarint) + payload + crc(4), after magic.
	var head [19]byte // magic + kind + a full-width length varint
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return 0, tail, err
	}
	n, w := binary.Uvarint(head[len(Magic)+1:])
	if w <= 0 || head[len(Magic)] != frameHeader {
		return 0, tail, fmt.Errorf("trace: malformed header frame in %s", path)
	}
	crcOff := int64(len(Magic)) + 1 + int64(w) + int64(n)
	var crcb [4]byte
	if _, err := f.ReadAt(crcb[:], crcOff); err != nil {
		return 0, tail, err
	}
	headCRC = binary.LittleEndian.Uint32(crcb[:])
	tailOff := size - int64(len(tail))
	if tailOff < 0 {
		tailOff = 0
	}
	if _, err := f.ReadAt(tail[:size-tailOff], tailOff); err != nil {
		return 0, tail, err
	}
	return headCRC, tail, nil
}

// Load returns the named trace, from the decode cache when the file is
// unchanged since the cached decode. Size and mtime alone cannot prove
// that — a same-size rewrite can land within the filesystem's mtime
// granularity — so a cache hit also re-checks a cheap content fingerprint
// (header-frame CRC plus the file's final bytes) before being served. A
// fresh decode is inserted at the LRU front and may evict older entries
// past the byte budget (SetCacheLimit).
func (s *Store) Load(name string) (*Trace, error) {
	if err := validateName(name); err != nil {
		return nil, err
	}
	path := s.Path(name)
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("trace: no trace %q in %s: %w", name, s.dir, err)
	}
	s.mu.Lock()
	el, ok := s.cache[name]
	var c *cachedTrace
	if ok {
		c = el.Value.(*cachedTrace)
	}
	s.mu.Unlock()
	if ok && c.size == fi.Size() && c.mtime.Equal(fi.ModTime()) {
		if head, tail, err := contentMark(path, fi.Size()); err == nil &&
			head == c.headCRC && tail == c.tail {
			s.mu.Lock()
			s.hits++
			// The entry may have been invalidated or evicted while unlocked;
			// only touch it if it is still the one we validated.
			if cur, still := s.cache[name]; still && cur == el {
				s.lru.MoveToFront(el)
			}
			s.mu.Unlock()
			return c.tr, nil
		}
		// Content changed under an unchanged stat (or became unreadable):
		// fall through to a fresh decode.
	}
	tr, err := ReadFile(path)
	if err != nil {
		return nil, err
	}
	head, tail, err := contentMark(path, fi.Size())
	if err != nil {
		// Decoded but no longer fingerprintable (concurrent rewrite):
		// serve the decode, skip caching it.
		s.mu.Lock()
		s.misses++
		s.mu.Unlock()
		return tr, nil
	}
	s.mu.Lock()
	s.misses++
	if old, ok := s.cache[name]; ok {
		s.removeLocked(old)
	}
	if s.limit > 0 {
		nc := &cachedTrace{name: name, tr: tr, size: fi.Size(), mtime: fi.ModTime(), headCRC: head, tail: tail}
		el := s.lru.PushFront(nc)
		s.cache[name] = el
		s.used += nc.size
		s.evictOverLocked(el)
	}
	s.mu.Unlock()
	return tr, nil
}

// scanEntry builds the entry for one named trace by scanning its frames;
// Size is left for the caller (it owns the file metadata). A torn or
// foreign file degrades to an entry carrying the scan error.
func (s *Store) scanEntry(name string) Entry {
	path := s.Path(name)
	hdr, epochs, events, ckpts, complete, err := scanFile(path)
	if err != nil {
		return Entry{Name: name, Path: path, Err: err}
	}
	return Entry{
		Name:        name,
		Path:        path,
		Header:      hdr,
		Epochs:      epochs,
		Events:      events,
		Checkpoints: ckpts,
		Complete:    complete,
	}
}

// Entry returns the store entry for one named trace, scanning only that
// file — the daemon's single-trace inspection path, which must not cost a
// whole-store pass. A missing trace (or invalid name) is an error; a torn
// or corrupt file is a degraded entry carrying the scan error, exactly as
// in List.
func (s *Store) Entry(name string) (Entry, error) {
	if err := validateName(name); err != nil {
		return Entry{}, err
	}
	fi, err := os.Stat(s.Path(name))
	if err != nil {
		return Entry{}, fmt.Errorf("trace: no trace %q in %s: %w", name, s.dir, err)
	}
	e := s.scanEntry(name)
	if e.Err == nil {
		e.Size = fi.Size()
	}
	return e, nil
}

// List enumerates every trace in the store, sorted by name. Files are
// scanned frame by frame (CRC-checked, statistics from frame headers), not
// decoded: an inventory pass over a large corpus costs IO only and does not
// populate the replay cache.
func (s *Store) List() ([]Entry, error) {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var out []Entry
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), Ext) {
			continue
		}
		name := strings.TrimSuffix(de.Name(), Ext)
		e := s.scanEntry(name)
		if e.Err == nil {
			fi, err := de.Info()
			if err != nil {
				// The file scanned but its metadata vanished (e.g. deleted
				// between ReadDir and Info): degrade this entry like a torn
				// file instead of aborting the whole listing.
				e = Entry{Name: name, Path: s.Path(name), Err: err}
			} else {
				e.Size = fi.Size()
			}
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// ByModule returns the stored traces recorded from the module with the
// given fingerprint.
func (s *Store) ByModule(hash uint64) ([]Entry, error) {
	all, err := s.List()
	if err != nil {
		return nil, err
	}
	var out []Entry
	for _, e := range all {
		if e.Header.ModuleHash == hash && hash != 0 {
			out = append(out, e)
		}
	}
	return out, nil
}
