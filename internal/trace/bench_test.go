package trace

import (
	"testing"

	"repro/internal/core"
)

// BenchmarkEncodeDecode times the serialization round-trip on a realistic
// trace; bytes/event is reported so format regressions (delta or varint
// changes) show up as size, not just time.
func BenchmarkEncodeDecode(b *testing.B) {
	spec := scaledSpec(b, "dedup", 0.3)
	tr := recordTrace(b, spec, core.Options{Seed: 1})
	enc, err := Encode(tr)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(len(enc))/float64(tr.EventCount()), "bytes/event")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bs, err := Encode(tr)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Decode(bs); err != nil {
			b.Fatal(err)
		}
	}
}
