package trace

import (
	"fmt"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
)

// BenchmarkEncodeDecode times the serialization round-trip on a realistic
// trace; bytes/event is reported so format regressions (delta or varint
// changes) show up as size, not just time.
func BenchmarkEncodeDecode(b *testing.B) {
	spec := scaledSpec(b, "dedup", 0.3)
	tr := recordTrace(b, spec, core.Options{Seed: 1})
	enc, err := Encode(tr)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(len(enc))/float64(tr.EventCount()), "bytes/event")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bs, err := Encode(tr)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Decode(bs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeBatch measures parallel replay-time analysis throughput
// (race + leak analyzers attached to every replay) by worker count;
// events/sec is the recorded events re-executed under analysis per second
// of batch wall time.
func BenchmarkAnalyzeBatch(b *testing.B) {
	spec := scaledSpec(b, "fluidanimate", 0.2)
	tr := recordTrace(b, spec, core.Options{Seed: 17})
	mod, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	base := AnalyzeJob{
		Job: Job{
			Name: spec.Name, Module: mod, Trace: tr,
			Opts:  core.Options{DelayOnDivergence: true},
			Setup: func(rt *core.Runtime) error { spec.SetupOS(rt.OS()); return nil },
		},
		NewAnalyzers: func() []analysis.Analyzer {
			return []analysis.Analyzer{analysis.NewRaceDetector(), analysis.NewLeakDetector()}
		},
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				jobs := make([]AnalyzeJob, 2*workers)
				for j := range jobs {
					jobs[j] = base
					jobs[j].Name = fmt.Sprintf("%s#%d", spec.Name, j)
				}
				results, stats := AnalyzeBatch(jobs, workers)
				if stats.Failed > 0 {
					for _, r := range results {
						if r.Err != nil {
							b.Fatal(r.Err)
						}
					}
				}
				b.ReportMetric(float64(stats.Events)/stats.Elapsed.Seconds(), "events/sec")
			}
		})
	}
}
