package trace

import (
	"fmt"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/workloads"
)

// BenchmarkEncodeDecode times the serialization round-trip on a realistic
// trace; bytes/event is reported so format regressions (delta or varint
// changes) show up as size, not just time.
func BenchmarkEncodeDecode(b *testing.B) {
	spec := scaledSpec(b, "dedup", 0.3)
	tr := recordTrace(b, spec, core.Options{Seed: 1})
	enc, err := Encode(tr)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(len(enc))/float64(tr.EventCount()), "bytes/event")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bs, err := Encode(tr)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Decode(bs); err != nil {
			b.Fatal(err)
		}
	}
}

// segmentBenchSpec is the workload BenchmarkSegmentReplay records: a
// latency-bound service loop (the aget/apache/memcached shape — each
// request computes briefly, then waits on backend/network think time).
// Replay re-executes the waits, so a long recording's replay wall is
// latency-, not CPU-, bound — exactly the case where splitting the trace at
// its checkpoints and overlapping segments compresses wall-clock on any
// host, single-core CI included.
func segmentBenchSpec() workloads.Spec {
	return workloads.Spec{
		Name: "relay-service", Threads: 4, Iters: 336,
		Locks: 1, LockStride: 4, WritesPerLock: 1,
		TimeCalls: 1, ThinkTime: 1500, WorkingSet: 16 << 10,
	}
}

// segmentBenchMem keeps checkpoint images proportional to the workload
// instead of the laptop-scale default arena.
func segmentBenchMem() mem.Config {
	return mem.Config{GlobalSize: 1 << 20, HeapSize: 2 << 20, StackSlot: 64 << 10, MaxThreads: 8}
}

// BenchmarkSegmentReplay is the scale lever this layer exists for: one long
// checkpointed recording (>= 8 epochs) replayed whole-program vs split at
// its checkpoints and replayed segment-parallel. events/sec is recorded
// events replayed per second of wall time; the "speedup" metric on the
// segment runs is whole-program wall time over segment-parallel wall time
// for the same trace.
func BenchmarkSegmentReplay(b *testing.B) {
	spec := segmentBenchSpec()
	opts := core.Options{Seed: 9, EventCap: 64, Mem: segmentBenchMem()}
	tr := recordCheckpointed(b, spec, opts, 1)
	if len(tr.Epochs) < 8 {
		b.Fatalf("want >= 8 epochs, got %d", len(tr.Epochs))
	}
	job := segmentJob(b, spec, tr, core.Options{
		Seed: opts.Seed, EventCap: opts.EventCap, Mem: opts.Mem, DelayOnDivergence: true,
	})

	var wholeWall float64
	b.Run("whole-program", func(b *testing.B) {
		var total float64
		for i := 0; i < b.N; i++ {
			results, stats := ReplayBatch([]Job{job}, 1)
			if stats.Failed > 0 {
				b.Fatal(results[0].Err)
			}
			b.ReportMetric(float64(stats.Events)/stats.Elapsed.Seconds(), "events/sec")
			total += stats.Elapsed.Seconds()
		}
		wholeWall = total / float64(b.N)
	})
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("segments/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results, stats, err := ReplaySegments(job, workers)
				if err != nil {
					b.Fatalf("%v (results %+v)", err, results)
				}
				b.ReportMetric(float64(stats.Events)/stats.Elapsed.Seconds(), "events/sec")
				if wholeWall > 0 {
					b.ReportMetric(wholeWall/stats.Elapsed.Seconds(), "speedup")
				}
			}
		})
	}
}

// BenchmarkSegmentColdStart measures the cold path the daemon pays when a
// segment job lands on a trace nothing has touched: open the store (empty
// frame cache), resolve the handle (one footer read), and replay one
// mid-trace segment. With the v3 index and checkpoint keyframes this is
// O(segment) — the epochs and checkpoints outside the segment are never
// read — and -benchmem's allocation columns track exactly that footprint.
func BenchmarkSegmentColdStart(b *testing.B) {
	spec := segmentBenchSpec()
	opts := core.Options{Seed: 9, EventCap: 64, Mem: segmentBenchMem()}
	enc := recordCheckpointedBytes(b, spec, opts, 1, 4)
	st := storeWith(b, "cold", enc)
	mod, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	job := Job{
		Name: spec.Name, Module: mod,
		Opts:  core.Options{Seed: opts.Seed, EventCap: opts.EventCap, Mem: opts.Mem, DelayOnDivergence: true},
		Setup: func(rt *core.Runtime) error { spec.SetupOS(rt.OS()); return nil },
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cold, err := OpenStore(st.Dir()) // fresh store: nothing cached
		if err != nil {
			b.Fatal(err)
		}
		h, err := cold.Open("cold")
		if err != nil {
			b.Fatal(err)
		}
		job.Handle = h
		res, stats, err := ReplayMidSegment(job)
		if err != nil {
			b.Fatalf("%v (result %+v)", err, res)
		}
		h.Close()
		b.ReportMetric(float64(stats.Events)/stats.Elapsed.Seconds(), "events/sec")
	}
}

// BenchmarkAnalyzeBatch measures parallel replay-time analysis throughput
// (race + leak analyzers attached to every replay) by worker count;
// events/sec is the recorded events re-executed under analysis per second
// of batch wall time.
func BenchmarkAnalyzeBatch(b *testing.B) {
	spec := scaledSpec(b, "fluidanimate", 0.2)
	tr := recordTrace(b, spec, core.Options{Seed: 17})
	mod, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	base := AnalyzeJob{
		Job: Job{
			Name: spec.Name, Module: mod, Handle: OpenTrace(tr),
			Opts:  core.Options{DelayOnDivergence: true},
			Setup: func(rt *core.Runtime) error { spec.SetupOS(rt.OS()); return nil },
		},
		NewAnalyzers: func() []analysis.Analyzer {
			return []analysis.Analyzer{analysis.NewRaceDetector(), analysis.NewLeakDetector()}
		},
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				jobs := make([]AnalyzeJob, 2*workers)
				for j := range jobs {
					jobs[j] = base
					jobs[j].Name = fmt.Sprintf("%s#%d", spec.Name, j)
				}
				results, stats := AnalyzeBatch(jobs, workers)
				if stats.Failed > 0 {
					for _, r := range results {
						if r.Err != nil {
							b.Fatal(r.Err)
						}
					}
				}
				b.ReportMetric(float64(stats.Events)/stats.Elapsed.Seconds(), "events/sec")
			}
		})
	}
}
