package trace

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/core"
	"repro/internal/tir"
	"repro/internal/workloads"
)

// recordCheckpointed records spec with checkpoint frames every interval
// epochs and returns the decoded trace.
func recordCheckpointed(t testing.TB, spec workloads.Spec, opts core.Options, interval int) *Trace {
	t.Helper()
	mod, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{
		App:        spec.Name,
		ModuleHash: tir.Fingerprint(mod),
		EventCap:   opts.EventCap,
		VarCap:     opts.VarCap,
		Seed:       opts.Seed,
		AppIters:   spec.Iters,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts.TraceSink = w.Sink()
	opts.CheckpointEvery = interval
	opts.CheckpointSink = w.CheckpointSink()
	rt, err := core.New(mod, opts)
	if err != nil {
		t.Fatal(err)
	}
	spec.SetupOS(rt.OS())
	rep, err := rt.Run()
	if err != nil {
		t.Fatalf("record %s: %v", spec.Name, err)
	}
	if err := w.Finish(&Summary{Exit: rep.Exit, Output: rep.Output}); err != nil {
		t.Fatal(err)
	}
	tr, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return tr
}

// segmentJob builds the replay job for a recorded spec.
func segmentJob(t testing.TB, spec workloads.Spec, tr *Trace, opts core.Options) Job {
	t.Helper()
	mod, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	return Job{
		Name: spec.Name, Module: mod, Handle: OpenTrace(tr), Opts: opts,
		Setup: func(rt *core.Runtime) error { spec.SetupOS(rt.OS()); return nil },
	}
}

// TestSegmentReplayStitches is the tentpole acceptance test: a >=8-epoch
// checkpointed recording replays segment-parallel, every interior segment's
// end state byte-matches the next checkpoint, and the stitched output/exit
// reproduce the recording.
func TestSegmentReplayStitches(t *testing.T) {
	spec := scaledSpec(t, "streamcluster", 0.5)
	opts := core.Options{Seed: 9, EventCap: 24}
	tr := recordCheckpointed(t, spec, opts, 2)
	if len(tr.Epochs) < 8 {
		t.Fatalf("want >= 8 epochs, got %d", len(tr.Epochs))
	}
	if len(tr.Checkpoints) < 2 {
		t.Fatalf("want >= 2 checkpoints, got %d", len(tr.Checkpoints))
	}

	job := segmentJob(t, spec, tr, core.Options{Seed: opts.Seed, EventCap: opts.EventCap, DelayOnDivergence: true})
	results, stats, err := ReplaySegments(job, 4)
	if err != nil {
		t.Fatalf("segment replay: %v (results %+v)", err, results)
	}
	if stats.Jobs != len(tr.Checkpoints)+1 || stats.Matched != stats.Jobs || stats.Failed != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Events != tr.EventCount() {
		t.Fatalf("replayed %d events, recorded %d", stats.Events, tr.EventCount())
	}
	// Segments partition the epoch range contiguously.
	next := int64(1)
	for _, r := range results {
		if r.FirstEpoch != next {
			t.Fatalf("segment %d begins at epoch %d, want %d", r.Seg, r.FirstEpoch, next)
		}
		next = r.LastEpoch + 1
	}
	if next != int64(len(tr.Epochs))+1 {
		t.Fatalf("segments end at epoch %d, trace has %d", next-1, len(tr.Epochs))
	}
}

// TestSegmentReplayAcrossWorkloads stitches checkpointed recordings of the
// mechanically distinct workload families: pfscan (file IO — the VFS state
// in the checkpoint seeds revocable re-issue), dedup (allocation-heavy —
// allocator metadata restore), fluidanimate (barrier-synchronized — threads
// blocked across checkpoint boundaries).
func TestSegmentReplayAcrossWorkloads(t *testing.T) {
	for _, tc := range []struct {
		app   string
		scale float64
	}{
		{"pfscan", 0.3},
		{denseApp(), 0.3}, // dedup; streamcluster under the host race detector
		{"fluidanimate", 0.1},
	} {
		t.Run(tc.app, func(t *testing.T) {
			spec := scaledSpec(t, tc.app, tc.scale)
			opts := core.Options{Seed: 21, EventCap: 32}
			tr := recordCheckpointed(t, spec, opts, 2)
			if len(tr.Checkpoints) == 0 {
				t.Skipf("%s produced %d epochs, no checkpoints", tc.app, len(tr.Epochs))
			}
			job := segmentJob(t, spec, tr, core.Options{Seed: opts.Seed, EventCap: opts.EventCap, DelayOnDivergence: true})
			results, stats, err := ReplaySegments(job, 4)
			if err != nil {
				t.Fatalf("segment replay: %v", err)
			}
			if stats.Failed != 0 || stats.Matched != len(results) {
				t.Fatalf("stats = %+v", stats)
			}
		})
	}
}

// TestSegmentReplayUncheckpointed: a trace without checkpoint frames (v1
// recordings) degrades to a single whole-program segment.
func TestSegmentReplayUncheckpointed(t *testing.T) {
	spec := scaledSpec(t, "streamcluster", 0.2)
	opts := core.Options{Seed: 9}
	tr := recordTrace(t, spec, opts)
	if len(tr.Checkpoints) != 0 {
		t.Fatalf("unexpected checkpoints: %d", len(tr.Checkpoints))
	}
	job := segmentJob(t, spec, tr, core.Options{Seed: opts.Seed, DelayOnDivergence: true})
	results, stats, err := ReplaySegments(job, 2)
	if err != nil {
		t.Fatalf("single-segment replay: %v", err)
	}
	if len(results) != 1 || stats.Matched != 1 {
		t.Fatalf("results = %+v stats = %+v", results, stats)
	}
}

// TestCheckpointRoundTrip: checkpoint frames survive encode/decode with the
// delta chain intact, and re-encoding a decoded checkpointed trace is
// byte-stable.
func TestCheckpointRoundTrip(t *testing.T) {
	spec := scaledSpec(t, "streamcluster", 0.4)
	tr := recordCheckpointed(t, spec, core.Options{Seed: 3, EventCap: 48}, 2)
	if len(tr.Checkpoints) == 0 {
		t.Fatal("no checkpoints recorded")
	}
	b1, err := Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := Decode(b1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr2.Checkpoints) != len(tr.Checkpoints) {
		t.Fatalf("checkpoint count round-trip: %d != %d", len(tr2.Checkpoints), len(tr.Checkpoints))
	}
	s1, err := tr.CheckpointStates()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := tr2.CheckpointStates()
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1 {
		if s1[i].Epoch != s2[i].Epoch || s1[i].NextTID != s2[i].NextTID ||
			s1[i].OutputLen != s2[i].OutputLen {
			t.Fatalf("checkpoint %d metadata mismatch: %+v vs %+v", i, s1[i], s2[i])
		}
		if !s1[i].Snap.Equal(s2[i].Snap) {
			t.Fatalf("checkpoint %d memory image mismatch (%d bytes differ)",
				i, s1[i].Snap.DiffCount(s2[i].Snap))
		}
		if len(s1[i].Threads) != len(s2[i].Threads) || len(s1[i].Vars) != len(s2[i].Vars) {
			t.Fatalf("checkpoint %d cast mismatch", i)
		}
	}
	b2, err := Encode(tr2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("checkpointed encoding is not byte-stable: %d vs %d bytes", len(b1), len(b2))
	}
}

// TestTrailingCheckpointPrefix: a recorder killed after flushing a
// checkpoint frame but before its epoch leaves a clean prefix whose last
// frame is that checkpoint. The prefix must load (checkpoint dropped —
// it pins nothing), re-encode, and segment-replay.
func TestTrailingCheckpointPrefix(t *testing.T) {
	spec := scaledSpec(t, "streamcluster", 0.4)
	opts := core.Options{Seed: 3, EventCap: 48}
	tr := recordCheckpointed(t, spec, opts, 2)
	if len(tr.Checkpoints) == 0 {
		t.Fatal("no checkpoints recorded")
	}
	b, err := Encode(tr)
	if err != nil {
		t.Fatal(err)
	}

	// Walk the frames; cut immediately after the first checkpoint frame.
	off := len(Magic)
	cut := 0
	for off < len(b) {
		kind := b[off]
		n, w := binary.Uvarint(b[off+1:])
		end := off + 1 + w + int(n) + 4
		if kind == frameCkpt {
			cut = end
			break
		}
		off = end
	}
	if cut == 0 {
		t.Fatal("no checkpoint frame found")
	}

	got, err := Decode(b[:cut])
	if err != nil {
		t.Fatalf("checkpoint-terminated prefix failed to load: %v", err)
	}
	if len(got.Checkpoints) != 0 {
		t.Fatalf("trailing checkpoint not dropped: %d left", len(got.Checkpoints))
	}
	if len(got.Epochs) == 0 || got.Summary != nil {
		t.Fatalf("prefix decoded to %d epochs, summary=%v", len(got.Epochs), got.Summary)
	}
	if _, err := Encode(got); err != nil {
		t.Fatalf("prefix failed to re-encode: %v", err)
	}
	job := segmentJob(t, spec, got, core.Options{Seed: opts.Seed, EventCap: opts.EventCap, DelayOnDivergence: true})
	if _, stats, err := ReplaySegments(job, 2); err != nil || stats.Matched != stats.Jobs {
		t.Fatalf("prefix segment replay: %v (stats %+v)", err, stats)
	}
}
