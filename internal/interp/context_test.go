package interp

import (
	"reflect"
	"testing"
)

// TestContextCodecRoundTrip: DecodeContext∘AppendContext is the identity.
func TestContextCodecRoundTrip(t *testing.T) {
	ctx := &Context{
		SP:     0x7000_1234,
		Ret:    99,
		Instrs: 123456,
		Frames: []Frame{
			{Fn: 0, PC: 17, FP: 0x7000_2000, RetReg: -1, Regs: []uint64{1, 2, 3}},
			{Fn: 3, PC: 0, FP: 0, RetReg: 2, Regs: []uint64{0xffffffffffffffff}},
			{Fn: 1, PC: 5, RetReg: 0, Regs: nil},
		},
	}
	b := AppendContext(nil, ctx)
	got, rest, err := DecodeContext(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left over", len(rest))
	}
	// nil and empty register slices are equivalent after a round trip.
	for i := range got.Frames {
		if len(got.Frames[i].Regs) == 0 {
			got.Frames[i].Regs = nil
		}
	}
	if !reflect.DeepEqual(ctx, got) {
		t.Fatalf("round trip: %+v != %+v", got, ctx)
	}

	if _, _, err := DecodeContext(b[:len(b)-2]); err == nil {
		t.Fatal("truncated context accepted")
	}
}

// TestContextInstrsAcrossGetSet: GetContext excludes the in-flight
// instruction and SetContext restores the counter, so capture/resume cycles
// keep per-thread instruction positions stable.
func TestContextInstrsAcrossGetSet(t *testing.T) {
	c := &CPU{}
	c.instrs = 10
	c.sincePoll = 4
	ctx := c.GetContext()
	if ctx.Instrs != 9 || ctx.SincePoll != 3 {
		t.Fatalf("adjusted counters = %d/%d, want 9/3", ctx.Instrs, ctx.SincePoll)
	}
	c2 := &CPU{}
	c2.SetContext(ctx)
	if c2.instrs != 9 || c2.sincePoll != 3 {
		t.Fatalf("restored counters = %d/%d, want 9/3", c2.instrs, c2.sincePoll)
	}
	// A CPU that never fetched has nothing in flight.
	fresh := &CPU{}
	if got := fresh.GetContext(); got.Instrs != 0 || got.SincePoll != 0 {
		t.Fatalf("fresh context counters = %d/%d, want 0/0", got.Instrs, got.SincePoll)
	}
}
