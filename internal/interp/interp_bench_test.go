package interp

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/tir"
)

// Dispatch throughput of the virtual CPU: the substrate cost every measured
// configuration shares (and the reason instrumentation ratios compress
// relative to native code — see EXPERIMENTS.md).
func BenchmarkDispatchArithLoop(b *testing.B) {
	mb := tir.NewModuleBuilder()
	fb := mb.Func("main", 0)
	i, lim, cond, acc := fb.NewReg(), fb.NewReg(), fb.NewReg(), fb.NewReg()
	fb.ConstI(i, 0)
	fb.ConstI(lim, int64(1_000_000))
	fb.ConstI(acc, 0)
	loop, done := fb.NewLabel(), fb.NewLabel()
	fb.Bind(loop)
	fb.Bin(tir.LtS, cond, i, lim)
	fb.Brz(cond, done)
	fb.Bin(tir.Add, acc, acc, i)
	fb.AddI(i, i, 1)
	fb.Jmp(loop)
	fb.Bind(done)
	fb.Ret(acc)
	fb.Seal()
	mb.SetEntry("main")
	m := mb.MustBuild()
	vm := mem.New(mem.DefaultConfig())
	h := &stubHooks{}
	base, size := vm.StackRange(0)
	c := New(m, vm, h, base, size)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		c.Start(m.Entry, nil)
		if err := c.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(c.Instructions())/float64(b.N), "instrs/op")
}

// Context checkpoint cost: what every epoch boundary pays per thread (§3.1).
func BenchmarkGetSetContext(b *testing.B) {
	mb := tir.NewModuleBuilder()
	fb := mb.Func("main", 0)
	for i := 0; i < 16; i++ {
		fb.NewReg()
	}
	r := fb.NewReg()
	fb.ConstI(r, 1)
	fb.Ret(r)
	fb.Seal()
	mb.SetEntry("main")
	m := mb.MustBuild()
	vm := mem.New(mem.DefaultConfig())
	base, size := vm.StackRange(0)
	c := New(m, vm, &stubHooks{}, base, size)
	c.Start(m.Entry, nil)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		ctx := c.GetContext()
		c.SetContext(ctx)
	}
}
