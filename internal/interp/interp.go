// Package interp executes TIR on a virtual CPU whose complete execution
// state — registers, program counter, call frames, and virtual stack
// pointer — is ordinary Go data.
//
// This is the getcontext/setcontext substitute: iReplayer checkpoints native
// thread contexts at epoch begin and restores them on rollback so that every
// thread resumes mid-function (§3.1, §3.4). Context and the GetContext /
// SetContext pair provide exactly that capability for TIR threads.
package interp

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/mem"
	"repro/internal/tir"
)

// Hooks connects a CPU to the enclosing thread runtime. Every method is
// invoked on the goroutine driving the CPU, so implementations may block
// (e.g. a mutex-lock intrinsic waiting for the lock).
type Hooks interface {
	// Syscall handles a Syscall instruction and is an interception point.
	Syscall(num int64, args []uint64) (uint64, error)
	// Intrinsic handles synchronization, allocation, and thread intrinsics;
	// synchronization intrinsics are interception points.
	Intrinsic(id int64, args []uint64) (uint64, error)
	// Probe handles instrumentation probes inserted by IR passes.
	Probe(id int64, v uint64)
	// Poll is called every PollInterval instructions so that long CPU-bound
	// stretches still observe stop-the-world requests (§3.3). A non-nil
	// return unwinds the CPU immediately.
	Poll() error
}

// PollInterval is the instruction budget between Poll calls.
const PollInterval = 2048

// ErrUnwind is returned through Run when the runtime asks the thread to
// abandon the current execution (rollback). The CPU's frames are left as-is;
// the trampoline restores a checkpointed Context before re-running.
var ErrUnwind = errors.New("interp: unwind for rollback")

// Frame is one activation record.
type Frame struct {
	Fn     int
	PC     int
	Regs   []uint64
	FP     uint64 // virtual-stack frame base; 0 when the function has no frame
	RetReg int32  // caller register receiving the return value (-1 discards)
}

// Context is a deep copy of CPU execution state — the TIR analogue of
// ucontext_t.
type Context struct {
	Frames []Frame
	SP     uint64
	Ret    uint64
	// Instrs is the number of instructions the thread had *completed* when
	// the context was captured. Contexts are captured while a thread is
	// parked inside a hook — the current instruction is fetched but not
	// executed and re-executes on resume — so this excludes it. Restoring a
	// context restores the count, which keeps per-thread instruction
	// positions deterministic across rollbacks and is what segment-boundary
	// stops (SetBoundary) are measured in.
	Instrs uint64
	// SincePoll preserves the poll-countdown phase so a resumed thread polls
	// at the same instruction offsets as the original execution.
	SincePoll int
}

// StackEntry is one level of a symbolized call stack. The JSON tags are the
// contract of machine-readable analysis findings (ir-trace analyze -json).
type StackEntry struct {
	Func string `json:"func"`
	PC   int    `json:"pc"`
}

// Trap is a fatal execution error (memory fault, division by zero, stack
// overflow) carrying the faulting thread's call stack; it models the
// paper's SIGSEGV-and-friends path into the debugger (§4.3).
type Trap struct {
	Cause error
	Stack []StackEntry
}

func (t *Trap) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "trap: %v", t.Cause)
	for _, e := range t.Stack {
		fmt.Fprintf(&sb, "\n  at %s+%d", e.Func, e.PC)
	}
	return sb.String()
}

func (t *Trap) Unwrap() error { return t.Cause }

// WatchHit couples a watchpoint hit with the writing thread's call stack;
// the detectors use it to report root causes (§4.1, §4.2).
type WatchHit struct {
	Watch mem.Watchpoint
	Addr  uint64
	Size  int
	Stack []StackEntry
}

// CPU is one vthread's virtual processor.
type CPU struct {
	Mod   *tir.Module
	Mem   *mem.Memory
	Hooks Hooks
	// OnWatch, when set, receives watchpoint hits caused by this CPU's
	// stores together with the current call stack.
	OnWatch func(WatchHit)
	// OnAccess, when set before Run, receives every data memory access this
	// CPU performs — loads, stores, and the memory intrinsics (memset,
	// memcpy, atomics). The top frame's PC is synced before the callback, so
	// CallStack inside it symbolizes the accessing instruction precisely.
	// It must be installed while the CPU is parked (before Run or between
	// runs); the armed flag is sampled once per Run.
	OnAccess func(addr uint64, size int, write, atomic bool)

	frames    []Frame
	sp        uint64
	stackLow  uint64
	stackHigh uint64
	ret       uint64

	instrs      uint64
	sincePoll   int
	watchArmed  bool
	accessArmed bool

	// boundary, when armed, stops Run before any instruction that would push
	// the completed count past it; OnBoundary is invoked once at that point
	// and its return value unwinds Run (segment-end parking).
	boundary      uint64
	boundaryArmed bool
	// OnBoundary handles a boundary stop; it must block until the enclosing
	// runtime decides (rollback or shutdown) and return the unwind error.
	OnBoundary func() error
}

// New creates a CPU whose virtual stack occupies [stackBase,
// stackBase+stackSize).
func New(mod *tir.Module, m *mem.Memory, hooks Hooks, stackBase uint64, stackSize int64) *CPU {
	return &CPU{
		Mod:       mod,
		Mem:       m,
		Hooks:     hooks,
		stackLow:  stackBase,
		stackHigh: stackBase + uint64(stackSize),
		sp:        stackBase + uint64(stackSize),
	}
}

// Start initializes the CPU to begin executing function fn with args. The
// instruction counters restart at zero: a body run is a fresh deterministic
// stream, and a thread re-released after rollback (its creation replayed)
// must count from zero again for checkpointed instruction positions to be
// reproducible.
func (c *CPU) Start(fn int, args []uint64) {
	c.frames = c.frames[:0]
	c.sp = c.stackHigh
	c.ret = 0
	c.instrs = 0
	c.sincePoll = 0
	c.push(fn, args, -1)
}

// Running reports whether the CPU has frames to execute.
func (c *CPU) Running() bool { return len(c.frames) > 0 }

// Result returns the entry function's return value after Run completes.
func (c *CPU) Result() uint64 { return c.ret }

// Instructions returns the number of instructions retired.
func (c *CPU) Instructions() uint64 { return c.instrs }

func (c *CPU) push(fn int, args []uint64, retReg int32) error {
	f := c.Mod.Funcs[fn]
	fr := Frame{Fn: fn, Regs: make([]uint64, f.NumRegs), RetReg: retReg}
	copy(fr.Regs, args)
	if f.FrameSize > 0 {
		if c.sp-c.stackLow < uint64(f.FrameSize) {
			return c.trap(fmt.Errorf("stack overflow in %s", f.Name))
		}
		c.sp -= uint64(f.FrameSize)
		fr.FP = c.sp
	}
	c.frames = append(c.frames, fr)
	return nil
}

func (c *CPU) pop(value uint64) {
	top := &c.frames[len(c.frames)-1]
	f := c.Mod.Funcs[top.Fn]
	if f.FrameSize > 0 {
		c.sp += uint64(f.FrameSize)
	}
	retReg := top.RetReg
	c.frames = c.frames[:len(c.frames)-1]
	if len(c.frames) == 0 {
		c.ret = value
		return
	}
	if retReg >= 0 {
		c.frames[len(c.frames)-1].Regs[retReg] = value
	}
}

// CallStack symbolizes the current frames, innermost first.
func (c *CPU) CallStack() []StackEntry {
	out := make([]StackEntry, 0, len(c.frames))
	for i := len(c.frames) - 1; i >= 0; i-- {
		fr := c.frames[i]
		out = append(out, StackEntry{Func: c.Mod.Funcs[fr.Fn].Name, PC: fr.PC})
	}
	return out
}

// GetContext deep-copies the execution state (the getcontext analogue). It
// is called while the thread is parked inside a hook, where the current
// instruction is fetched (already counted) but unexecuted; the completed
// count therefore excludes it. A CPU that has not fetched anything yet
// (program-start checkpoint) has nothing to exclude.
func (c *CPU) GetContext() *Context {
	ctx := &Context{SP: c.sp, Ret: c.ret, Frames: make([]Frame, len(c.frames))}
	if c.instrs > 0 {
		ctx.Instrs = c.instrs - 1
		ctx.SincePoll = c.sincePoll - 1
	}
	for i, fr := range c.frames {
		regs := make([]uint64, len(fr.Regs))
		copy(regs, fr.Regs)
		fr.Regs = regs
		ctx.Frames[i] = fr
	}
	return ctx
}

// SetContext restores a previously captured context (the setcontext
// analogue); the next Run resumes mid-function at the checkpointed PCs, and
// the instruction counters resume at the checkpointed position (the re-fetch
// of the parked instruction re-counts it, matching the capture-side
// adjustment).
func (c *CPU) SetContext(ctx *Context) {
	c.sp = ctx.SP
	c.ret = ctx.Ret
	c.instrs = ctx.Instrs
	c.sincePoll = ctx.SincePoll
	c.frames = c.frames[:0]
	for _, fr := range ctx.Frames {
		regs := make([]uint64, len(fr.Regs))
		copy(regs, fr.Regs)
		fr.Regs = regs
		c.frames = append(c.frames, fr)
	}
}

func (c *CPU) trap(cause error) error {
	return &Trap{Cause: cause, Stack: c.CallStack()}
}

func (c *CPU) noteStore(addr uint64, size int) {
	if !c.watchArmed {
		return
	}
	if w, ok := c.Mem.WatchOverlap(addr, size); ok && c.OnWatch != nil {
		c.OnWatch(WatchHit{Watch: w, Addr: addr, Size: size, Stack: c.CallStack()})
	}
}

// Run executes until the entry function returns, a trap occurs, or a hook
// unwinds the thread. It may be called again after SetContext to resume.
func (c *CPU) Run() error {
	c.watchArmed = c.Mem.HasWatchpoints()
	c.accessArmed = c.OnAccess != nil
	for len(c.frames) > 0 {
		top := &c.frames[len(c.frames)-1]
		fn := c.Mod.Funcs[top.Fn]
		code := fn.Code
		regs := top.Regs
		pc := top.PC

	inner:
		for {
			if pc >= len(code) {
				top.PC = pc
				return c.trap(fmt.Errorf("fell off end of %s", fn.Name))
			}
			in := code[pc]
			c.instrs++
			c.sincePoll++
			if c.boundaryArmed && c.instrs > c.boundary {
				// Segment end: executing this instruction would cross the
				// recorded checkpoint boundary. Un-count the fetch (the parked
				// position is "boundary instructions completed") and park.
				c.instrs--
				c.sincePoll--
				top.PC = pc
				if c.OnBoundary != nil {
					return c.OnBoundary()
				}
				return ErrUnwind
			}
			if c.sincePoll >= PollInterval {
				c.sincePoll = 0
				top.PC = pc
				if err := c.Hooks.Poll(); err != nil {
					return err
				}
				c.watchArmed = c.Mem.HasWatchpoints()
			}
			switch in.Op {
			case tir.Nop:
			case tir.ConstI:
				regs[in.A] = uint64(in.Imm)
			case tir.Mov:
				regs[in.A] = regs[in.B]
			case tir.Add:
				regs[in.A] = regs[in.B] + regs[in.C]
			case tir.Sub:
				regs[in.A] = regs[in.B] - regs[in.C]
			case tir.Mul:
				regs[in.A] = regs[in.B] * regs[in.C]
			case tir.Div:
				if regs[in.C] == 0 {
					top.PC = pc
					return c.trap(errors.New("integer divide by zero"))
				}
				regs[in.A] = uint64(int64(regs[in.B]) / int64(regs[in.C]))
			case tir.Rem:
				if regs[in.C] == 0 {
					top.PC = pc
					return c.trap(errors.New("integer divide by zero"))
				}
				regs[in.A] = uint64(int64(regs[in.B]) % int64(regs[in.C]))
			case tir.And:
				regs[in.A] = regs[in.B] & regs[in.C]
			case tir.Or:
				regs[in.A] = regs[in.B] | regs[in.C]
			case tir.Xor:
				regs[in.A] = regs[in.B] ^ regs[in.C]
			case tir.Shl:
				regs[in.A] = regs[in.B] << (regs[in.C] & 63)
			case tir.Shr:
				regs[in.A] = regs[in.B] >> (regs[in.C] & 63)
			case tir.Sar:
				regs[in.A] = uint64(int64(regs[in.B]) >> (regs[in.C] & 63))
			case tir.AddI:
				regs[in.A] = regs[in.B] + uint64(in.Imm)
			case tir.MulI:
				regs[in.A] = regs[in.B] * uint64(in.Imm)
			case tir.Neg:
				regs[in.A] = -regs[in.B]
			case tir.Not:
				regs[in.A] = ^regs[in.B]
			case tir.FAdd:
				regs[in.A] = fop(regs[in.B], regs[in.C], '+')
			case tir.FSub:
				regs[in.A] = fop(regs[in.B], regs[in.C], '-')
			case tir.FMul:
				regs[in.A] = fop(regs[in.B], regs[in.C], '*')
			case tir.FDiv:
				regs[in.A] = fop(regs[in.B], regs[in.C], '/')
			case tir.FNeg:
				regs[in.A] = math.Float64bits(-math.Float64frombits(regs[in.B]))
			case tir.FSqrt:
				regs[in.A] = math.Float64bits(math.Sqrt(math.Float64frombits(regs[in.B])))
			case tir.ItoF:
				regs[in.A] = math.Float64bits(float64(int64(regs[in.B])))
			case tir.FtoI:
				regs[in.A] = uint64(int64(math.Float64frombits(regs[in.B])))
			case tir.Eq:
				regs[in.A] = b2u(regs[in.B] == regs[in.C])
			case tir.Ne:
				regs[in.A] = b2u(regs[in.B] != regs[in.C])
			case tir.LtS:
				regs[in.A] = b2u(int64(regs[in.B]) < int64(regs[in.C]))
			case tir.LeS:
				regs[in.A] = b2u(int64(regs[in.B]) <= int64(regs[in.C]))
			case tir.LtU:
				regs[in.A] = b2u(regs[in.B] < regs[in.C])
			case tir.FLt:
				regs[in.A] = b2u(math.Float64frombits(regs[in.B]) < math.Float64frombits(regs[in.C]))
			case tir.FLe:
				regs[in.A] = b2u(math.Float64frombits(regs[in.B]) <= math.Float64frombits(regs[in.C]))
			case tir.Jmp:
				pc = int(in.Imm)
				continue inner
			case tir.Br:
				if regs[in.A] != 0 {
					pc = int(in.Imm)
					continue inner
				}
			case tir.Brz:
				if regs[in.A] == 0 {
					pc = int(in.Imm)
					continue inner
				}
			case tir.Call:
				top.PC = pc + 1
				args := regs[in.B : in.B+in.C]
				if err := c.push(int(in.Imm), args, in.A); err != nil {
					return err
				}
				break inner
			case tir.Ret:
				var v uint64
				if in.A >= 0 {
					v = regs[in.A]
				}
				top.PC = pc + 1
				c.pop(v)
				break inner
			case tir.Load8:
				addr := regs[in.B] + uint64(in.Imm)
				v, err := c.Mem.Load8(addr)
				if err != nil {
					top.PC = pc
					return c.trap(err)
				}
				regs[in.A] = v
				if c.accessArmed {
					top.PC = pc
					c.OnAccess(addr, 1, false, false)
				}
			case tir.Load64:
				addr := regs[in.B] + uint64(in.Imm)
				v, err := c.Mem.Load64(addr)
				if err != nil {
					top.PC = pc
					return c.trap(err)
				}
				regs[in.A] = v
				if c.accessArmed {
					top.PC = pc
					c.OnAccess(addr, 8, false, false)
				}
			case tir.Store8:
				addr := regs[in.B] + uint64(in.Imm)
				if err := c.Mem.Store8(addr, regs[in.A]); err != nil {
					top.PC = pc
					return c.trap(err)
				}
				if c.watchArmed {
					top.PC = pc
					c.noteStore(addr, 1)
				}
				if c.accessArmed {
					top.PC = pc
					c.OnAccess(addr, 1, true, false)
				}
			case tir.Store64:
				addr := regs[in.B] + uint64(in.Imm)
				if err := c.Mem.Store64(addr, regs[in.A]); err != nil {
					top.PC = pc
					return c.trap(err)
				}
				if c.watchArmed {
					top.PC = pc
					c.noteStore(addr, 8)
				}
				if c.accessArmed {
					top.PC = pc
					c.OnAccess(addr, 8, true, false)
				}
			case tir.FrameAddr:
				regs[in.A] = top.FP + uint64(in.Imm)
			case tir.GlobalAddr:
				regs[in.A] = c.globalAddr(int(in.Imm))
			case tir.Syscall:
				// PC points AT the instruction while the hook runs: a context
				// captured while the thread is parked here re-executes the
				// syscall after rollback (stop happens before invocation,
				// §3.3).
				top.PC = pc
				v, err := c.Hooks.Syscall(in.Imm, regs[in.B:in.B+in.C])
				if err != nil {
					return err
				}
				if in.A >= 0 {
					regs[in.A] = v
				}
				top.PC = pc + 1
				c.watchArmed = c.Mem.HasWatchpoints()
				pc++
				continue inner
			case tir.Intrin:
				top.PC = pc // see Syscall: park-and-checkpoint re-executes
				v, err := c.intrinsic(in.Imm, regs[in.B:in.B+in.C])
				if err != nil {
					return err
				}
				if in.A >= 0 {
					regs[in.A] = v
				}
				top.PC = pc + 1
				c.watchArmed = c.Mem.HasWatchpoints()
				pc++
				continue inner
			case tir.Probe:
				top.PC = pc // accurate stacks for instrumentation reports
				var v uint64
				if in.A >= 0 {
					v = regs[in.A]
				}
				c.Hooks.Probe(in.Imm, v)
			default:
				top.PC = pc
				return c.trap(fmt.Errorf("invalid opcode %d", in.Op))
			}
			pc++
		}
	}
	return nil
}

// globalAddr computes a global's address by summing preceding sizes, 8-byte
// aligned. The layout matches vsys.LayoutGlobals.
func (c *CPU) globalAddr(gi int) uint64 {
	addr := mem.GlobalBase
	for i := 0; i < gi; i++ {
		addr += uint64(align8(c.Mod.Globals[i].Size))
	}
	return addr
}

func align8(n int64) int64 { return (n + 7) &^ 7 }

// GlobalAddr returns the virtual address of global gi of mod, matching the
// interpreter's layout. It is exported for the runtime's global initializer.
func GlobalAddr(mod *tir.Module, gi int) uint64 {
	addr := mem.GlobalBase
	for i := 0; i < gi; i++ {
		addr += uint64(align8(mod.Globals[i].Size))
	}
	return addr
}

// intrinsic dispatches memory-only intrinsics locally and forwards the rest
// (synchronization, threads, allocation, IO) to the runtime hooks.
func (c *CPU) intrinsic(id int64, args []uint64) (uint64, error) {
	switch id {
	case tir.IntrinMemset:
		if err := c.Mem.Memset(args[0], byte(args[1]), int(args[2])); err != nil {
			return 0, c.trap(err)
		}
		c.noteStore(args[0], int(args[2]))
		c.noteAccess(args[0], int(args[2]), true, false)
		return 0, nil
	case tir.IntrinMemcpy:
		if err := c.Mem.Memcpy(args[0], args[1], int(args[2])); err != nil {
			return 0, c.trap(err)
		}
		c.noteStore(args[0], int(args[2]))
		c.noteAccess(args[1], int(args[2]), false, false)
		c.noteAccess(args[0], int(args[2]), true, false)
		return 0, nil
	case tir.IntrinAtomicLoad:
		v, err := c.Mem.AtomicLoad64(args[0])
		if err != nil {
			return 0, c.trap(err)
		}
		c.noteAccess(args[0], 8, false, true)
		return v, nil
	case tir.IntrinAtomicStore:
		if err := c.Mem.AtomicStore64(args[0], args[1]); err != nil {
			return 0, c.trap(err)
		}
		c.noteStore(args[0], 8)
		c.noteAccess(args[0], 8, true, true)
		return 0, nil
	case tir.IntrinAtomicAdd:
		v, err := c.Mem.AtomicAdd64(args[0], args[1])
		if err != nil {
			return 0, c.trap(err)
		}
		c.noteStore(args[0], 8)
		c.noteAccess(args[0], 8, true, true)
		return v, nil
	case tir.IntrinAtomicCAS:
		v, err := c.Mem.AtomicCAS64(args[0], args[1], args[2])
		if err != nil {
			return 0, c.trap(err)
		}
		if v == 1 {
			c.noteStore(args[0], 8)
		}
		c.noteAccess(args[0], 8, v == 1, true)
		return v, nil
	case tir.IntrinAtomicXchg:
		v, err := c.Mem.AtomicXchg64(args[0], args[1])
		if err != nil {
			return 0, c.trap(err)
		}
		c.noteStore(args[0], 8)
		c.noteAccess(args[0], 8, true, true)
		return v, nil
	default:
		return c.Hooks.Intrinsic(id, args)
	}
}

// noteAccess reports a memory intrinsic's access to the observer hook; the
// Intrin dispatch already synced the top frame's PC.
func (c *CPU) noteAccess(addr uint64, size int, write, atomic bool) {
	if c.accessArmed {
		c.OnAccess(addr, size, write, atomic)
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func fop(a, b uint64, op byte) uint64 {
	x, y := math.Float64frombits(a), math.Float64frombits(b)
	var r float64
	switch op {
	case '+':
		r = x + y
	case '-':
		r = x - y
	case '*':
		r = x * y
	case '/':
		r = x / y
	}
	return math.Float64bits(r)
}
