package interp

// Context serialization and the segment-boundary stop.
//
// Persisted checkpoint frames (trace format v2) store every vCPU context so
// an offline replay can resume mid-trace. Two pieces of state beyond the
// frames matter for that:
//
//   - Instrs, the count of *completed* instructions, pins the thread's exact
//     position in its deterministic instruction stream. A context is always
//     captured while the thread is parked inside a hook, where the current
//     instruction has been fetched but not executed (it re-executes on
//     resume), so GetContext records instrs-1 and SetContext restores it;
//     the re-fetch on resume then reproduces the recording-side count.
//   - A boundary (SetBoundary) arms the CPU to stop exactly when the next
//     fetch would exceed a target completed-instruction count. Replaying a
//     trace segment stops every thread at the instruction position the next
//     recorded checkpoint captured, which is what makes the segment's end
//     memory image byte-comparable against that checkpoint.

import (
	"encoding/binary"
	"fmt"
)

// SetBoundary arms the stop-at-instruction target: Run returns the result of
// OnBoundary as soon as executing one more instruction would push the
// completed count past n. Call only while the CPU is parked.
func (c *CPU) SetBoundary(n uint64) {
	c.boundary = n
	c.boundaryArmed = true
}

// AppendContext serializes a context. The encoding is canonical and
// self-delimiting; DecodeContext inverts it.
func AppendContext(b []byte, ctx *Context) []byte {
	b = binary.AppendUvarint(b, ctx.Instrs)
	// SincePoll is signed (-1 when the thread parked at a just-reset poll);
	// zigzag-map it.
	b = binary.AppendUvarint(b, uint64((int64(ctx.SincePoll)<<1)^(int64(ctx.SincePoll)>>63)))
	b = binary.AppendUvarint(b, ctx.SP)
	b = binary.AppendUvarint(b, ctx.Ret)
	b = binary.AppendUvarint(b, uint64(len(ctx.Frames)))
	for i := range ctx.Frames {
		fr := &ctx.Frames[i]
		b = binary.AppendUvarint(b, uint64(fr.Fn))
		b = binary.AppendUvarint(b, uint64(fr.PC))
		b = binary.AppendUvarint(b, fr.FP)
		b = binary.AppendUvarint(b, uint64(uint32(fr.RetReg)))
		b = binary.AppendUvarint(b, uint64(len(fr.Regs)))
		for _, r := range fr.Regs {
			b = binary.AppendUvarint(b, r)
		}
	}
	return b
}

// DecodeContext decodes a context serialized by AppendContext, returning the
// unconsumed remainder of b.
func DecodeContext(b []byte) (*Context, []byte, error) {
	u := func() (uint64, error) {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return 0, fmt.Errorf("interp: truncated context")
		}
		b = b[n:]
		return v, nil
	}
	ctx := &Context{}
	var err error
	if ctx.Instrs, err = u(); err != nil {
		return nil, nil, err
	}
	sp, err := u()
	if err != nil {
		return nil, nil, err
	}
	ctx.SincePoll = int(int64(sp>>1) ^ -int64(sp&1))
	if ctx.SP, err = u(); err != nil {
		return nil, nil, err
	}
	if ctx.Ret, err = u(); err != nil {
		return nil, nil, err
	}
	nf, err := u()
	if err != nil {
		return nil, nil, err
	}
	// Every frame occupies at least 5 bytes; bound the allocation by what the
	// buffer can actually hold.
	if nf > uint64(len(b)/5)+1 {
		return nil, nil, fmt.Errorf("interp: implausible frame count %d in context", nf)
	}
	ctx.Frames = make([]Frame, nf)
	for i := range ctx.Frames {
		fr := &ctx.Frames[i]
		fn, err := u()
		if err != nil {
			return nil, nil, err
		}
		pc, err := u()
		if err != nil {
			return nil, nil, err
		}
		fp, err := u()
		if err != nil {
			return nil, nil, err
		}
		ret, err := u()
		if err != nil {
			return nil, nil, err
		}
		nr, err := u()
		if err != nil {
			return nil, nil, err
		}
		if nr > uint64(len(b))+1 {
			return nil, nil, fmt.Errorf("interp: implausible register count %d in context", nr)
		}
		fr.Fn, fr.PC, fr.FP, fr.RetReg = int(fn), int(pc), fp, int32(uint32(ret))
		fr.Regs = make([]uint64, nr)
		for j := range fr.Regs {
			if fr.Regs[j], err = u(); err != nil {
				return nil, nil, err
			}
		}
	}
	return ctx, b, nil
}
