package interp

import (
	"errors"
	"math"
	"testing"

	"repro/internal/mem"
	"repro/internal/tir"
)

// stubHooks implements Hooks with recording and programmable behaviour.
type stubHooks struct {
	syscalls   []int64
	intrinsics []int64
	probes     []int64
	polls      int
	pollErr    error
	sysRet     uint64
	intrinRet  uint64
	intrinErr  error
}

func (h *stubHooks) Syscall(num int64, args []uint64) (uint64, error) {
	h.syscalls = append(h.syscalls, num)
	return h.sysRet, nil
}

func (h *stubHooks) Intrinsic(id int64, args []uint64) (uint64, error) {
	h.intrinsics = append(h.intrinsics, id)
	return h.intrinRet, h.intrinErr
}

func (h *stubHooks) Probe(id int64, v uint64) { h.probes = append(h.probes, id) }

func (h *stubHooks) Poll() error {
	h.polls++
	return h.pollErr
}

func run(t *testing.T, m *tir.Module) (*CPU, *stubHooks, error) {
	t.Helper()
	vm := mem.New(mem.DefaultConfig())
	h := &stubHooks{}
	base, size := vm.StackRange(0)
	c := New(m, vm, h, base, size)
	c.Start(m.Entry, nil)
	err := c.Run()
	return c, h, err
}

func TestArithmeticLoop(t *testing.T) {
	// sum 1..100 = 5050
	mb := tir.NewModuleBuilder()
	fb := mb.Func("main", 0)
	i, sum, n, one, cond := fb.NewReg(), fb.NewReg(), fb.NewReg(), fb.NewReg(), fb.NewReg()
	fb.ConstI(i, 1)
	fb.ConstI(sum, 0)
	fb.ConstI(n, 100)
	fb.ConstI(one, 1)
	loop, done := fb.NewLabel(), fb.NewLabel()
	fb.Bind(loop)
	fb.Bin(tir.LtS, cond, n, i)
	fb.Br(cond, done)
	fb.Bin(tir.Add, sum, sum, i)
	fb.Bin(tir.Add, i, i, one)
	fb.Jmp(loop)
	fb.Bind(done)
	fb.Ret(sum)
	fb.Seal()
	mb.SetEntry("main")
	c, _, err := run(t, mb.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if c.Result() != 5050 {
		t.Fatalf("result = %d, want 5050", c.Result())
	}
}

func TestCallAndReturn(t *testing.T) {
	mb := tir.NewModuleBuilder()
	sq := mb.Func("square", 1)
	r := sq.NewReg()
	sq.Bin(tir.Mul, r, sq.Param(0), sq.Param(0))
	sq.Ret(r)
	sq.Seal()
	fb := mb.Func("main", 0)
	x := fb.NewReg()
	fb.ConstI(x, 12)
	fb.Call(x, sq.Index(), x)
	fb.Ret(x)
	fb.Seal()
	mb.SetEntry("main")
	c, _, err := run(t, mb.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if c.Result() != 144 {
		t.Fatalf("result = %d, want 144", c.Result())
	}
}

func TestRecursionUsesStackFrames(t *testing.T) {
	// fib(15) with an 8-byte frame per call to exercise the virtual stack.
	mb := tir.NewModuleBuilder()
	fibIdx := mb.Declare("fib", 1)
	fb := mb.FuncBuilderFor(fibIdx)
	fb.SetFrameSize(16)
	n := fb.Param(0)
	two, cond, a, b, addr := fb.NewReg(), fb.NewReg(), fb.NewReg(), fb.NewReg(), fb.NewReg()
	rec := fb.NewLabel()
	fb.ConstI(two, 2)
	fb.Bin(tir.LtS, cond, n, two)
	fb.Brz(cond, rec)
	fb.Ret(n)
	fb.Bind(rec)
	fb.FrameAddr(addr, 0)
	fb.Store64(n, addr, 0) // spill n
	fb.AddI(a, n, -1)
	fb.Call(a, fibIdx, a)
	fb.FrameAddr(addr, 0)
	fb.Load64(b, addr, 0) // reload n
	fb.AddI(b, b, -2)
	fb.Call(b, fibIdx, b)
	fb.Bin(tir.Add, a, a, b)
	fb.Ret(a)
	fb.Seal()
	mn := mb.Func("main", 0)
	x := mn.NewReg()
	mn.ConstI(x, 15)
	mn.Call(x, fibIdx, x)
	mn.Ret(x)
	mn.Seal()
	mb.SetEntry("main")
	c, _, err := run(t, mb.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if c.Result() != 610 {
		t.Fatalf("fib(15) = %d, want 610", c.Result())
	}
}

func TestFloatOps(t *testing.T) {
	mb := tir.NewModuleBuilder()
	fb := mb.Func("main", 0)
	a, b, r := fb.NewReg(), fb.NewReg(), fb.NewReg()
	fb.ConstI(a, int64(math.Float64bits(9.0)))
	fb.Emit(tir.Instr{Op: tir.FSqrt, A: b, B: a})
	fb.ConstI(a, int64(math.Float64bits(1.5)))
	fb.Bin(tir.FMul, r, a, b) // 1.5 * 3 = 4.5
	fb.Emit(tir.Instr{Op: tir.FtoI, A: r, B: r})
	fb.Ret(r)
	fb.Seal()
	mb.SetEntry("main")
	c, _, err := run(t, mb.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if c.Result() != 4 {
		t.Fatalf("result = %d, want 4", c.Result())
	}
}

func TestDivideByZeroTraps(t *testing.T) {
	mb := tir.NewModuleBuilder()
	fb := mb.Func("main", 0)
	a, b := fb.NewReg(), fb.NewReg()
	fb.ConstI(a, 10)
	fb.ConstI(b, 0)
	fb.Bin(tir.Div, a, a, b)
	fb.Ret(a)
	fb.Seal()
	mb.SetEntry("main")
	_, _, err := run(t, mb.MustBuild())
	var trap *Trap
	if !errors.As(err, &trap) {
		t.Fatalf("want Trap, got %v", err)
	}
	if len(trap.Stack) == 0 || trap.Stack[0].Func != "main" {
		t.Fatalf("trap stack = %v", trap.Stack)
	}
}

func TestNullDereferenceTrapsWithStack(t *testing.T) {
	mb := tir.NewModuleBuilder()
	inner := mb.Func("deref", 1)
	r := inner.NewReg()
	inner.Load64(r, inner.Param(0), 0)
	inner.Ret(r)
	inner.Seal()
	fb := mb.Func("main", 0)
	x := fb.NewReg()
	fb.ConstI(x, 0)
	fb.Call(x, inner.Index(), x)
	fb.Ret(x)
	fb.Seal()
	mb.SetEntry("main")
	_, _, err := run(t, mb.MustBuild())
	var trap *Trap
	if !errors.As(err, &trap) {
		t.Fatalf("want Trap, got %v", err)
	}
	var fault *mem.Fault
	if !errors.As(trap.Cause, &fault) {
		t.Fatalf("want mem.Fault cause, got %v", trap.Cause)
	}
	if len(trap.Stack) != 2 || trap.Stack[0].Func != "deref" || trap.Stack[1].Func != "main" {
		t.Fatalf("stack = %v", trap.Stack)
	}
}

func TestGlobalsLoadStore(t *testing.T) {
	mb := tir.NewModuleBuilder()
	mb.Global("a", 8)
	mb.Global("b", 16)
	fb := mb.Func("main", 0)
	addr, v := fb.NewReg(), fb.NewReg()
	fb.GlobalAddr(addr, 1)
	fb.ConstI(v, 77)
	fb.Store64(v, addr, 8)
	fb.Load64(v, addr, 8)
	fb.Ret(v)
	fb.Seal()
	mb.SetEntry("main")
	m := mb.MustBuild()
	c, _, err := run(t, m)
	if err != nil {
		t.Fatal(err)
	}
	if c.Result() != 77 {
		t.Fatalf("result = %d", c.Result())
	}
	if got, want := GlobalAddr(m, 1), mem.GlobalBase+8; got != want {
		t.Fatalf("GlobalAddr = %#x, want %#x", got, want)
	}
}

func TestSyscallAndIntrinsicDelegation(t *testing.T) {
	mb := tir.NewModuleBuilder()
	fb := mb.Func("main", 0)
	r := fb.NewReg()
	fb.ConstI(r, 5)
	fb.Syscall(r, 42, r)
	fb.Intrin(r, tir.IntrinMalloc, r)
	fb.Ret(r)
	fb.Seal()
	mb.SetEntry("main")
	_, h, err := run(t, mb.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if len(h.syscalls) != 1 || h.syscalls[0] != 42 {
		t.Fatalf("syscalls = %v", h.syscalls)
	}
	if len(h.intrinsics) != 1 || h.intrinsics[0] != tir.IntrinMalloc {
		t.Fatalf("intrinsics = %v", h.intrinsics)
	}
}

func TestMemoryIntrinsicsAreLocal(t *testing.T) {
	mb := tir.NewModuleBuilder()
	fb := mb.Func("main", 0)
	dst, val, n := fb.NewReg(), fb.NewReg(), fb.NewReg()
	fb.ConstI(dst, int64(mem.HeapBase))
	fb.ConstI(val, 0x5A)
	fb.ConstI(n, 16)
	fb.Intrin(-1, tir.IntrinMemset, dst, val, n)
	r := fb.NewReg()
	fb.Load8(r, dst, 15)
	fb.Ret(r)
	fb.Seal()
	mb.SetEntry("main")
	c, h, err := run(t, mb.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if c.Result() != 0x5A {
		t.Fatalf("result = %#x", c.Result())
	}
	if len(h.intrinsics) != 0 {
		t.Fatalf("memset must not reach hooks: %v", h.intrinsics)
	}
}

func TestAtomicIntrinsics(t *testing.T) {
	mb := tir.NewModuleBuilder()
	mb.Global("cell", 8)
	fb := mb.Func("main", 0)
	addr, v, r := fb.NewReg(), fb.NewReg(), fb.NewReg()
	fb.GlobalAddr(addr, 0)
	fb.ConstI(v, 10)
	fb.Intrin(-1, tir.IntrinAtomicStore, addr, v)
	fb.Intrin(r, tir.IntrinAtomicAdd, addr, v) // 20
	old := fb.NewReg()
	nw := fb.NewReg()
	fb.ConstI(old, 20)
	fb.ConstI(nw, 99)
	fb.Intrin(r, tir.IntrinAtomicCAS, addr, old, nw) // success → 1
	fb.Intrin(v, tir.IntrinAtomicLoad, addr)
	fb.Bin(tir.Add, r, r, v) // 1 + 99 = 100
	fb.Ret(r)
	fb.Seal()
	mb.SetEntry("main")
	c, _, err := run(t, mb.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if c.Result() != 100 {
		t.Fatalf("result = %d, want 100", c.Result())
	}
}

func TestProbeHook(t *testing.T) {
	mb := tir.NewModuleBuilder()
	fb := mb.Func("main", 0)
	r := fb.NewReg()
	fb.ConstI(r, 1)
	fb.Probe(7, r)
	fb.Probe(8, -1)
	fb.Ret(r)
	fb.Seal()
	mb.SetEntry("main")
	_, h, err := run(t, mb.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if len(h.probes) != 2 || h.probes[0] != 7 || h.probes[1] != 8 {
		t.Fatalf("probes = %v", h.probes)
	}
}

func TestPollFiresOnLongLoops(t *testing.T) {
	mb := tir.NewModuleBuilder()
	fb := mb.Func("main", 0)
	i, lim, cond := fb.NewReg(), fb.NewReg(), fb.NewReg()
	fb.ConstI(i, 0)
	fb.ConstI(lim, 3*PollInterval)
	loop, done := fb.NewLabel(), fb.NewLabel()
	fb.Bind(loop)
	fb.Bin(tir.LtS, cond, i, lim)
	fb.Brz(cond, done)
	fb.AddI(i, i, 1)
	fb.Jmp(loop)
	fb.Bind(done)
	fb.Ret(i)
	fb.Seal()
	mb.SetEntry("main")
	_, h, err := run(t, mb.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if h.polls < 3 {
		t.Fatalf("polls = %d, want >= 3", h.polls)
	}
}

func TestPollErrorUnwinds(t *testing.T) {
	mb := tir.NewModuleBuilder()
	fb := mb.Func("main", 0)
	i := fb.NewReg()
	fb.ConstI(i, 0)
	loop := fb.NewLabel()
	fb.Bind(loop)
	fb.AddI(i, i, 1)
	fb.Jmp(loop) // infinite; only Poll can stop it
	fb.Seal()
	mb.SetEntry("main")
	vm := mem.New(mem.DefaultConfig())
	h := &stubHooks{pollErr: ErrUnwind}
	base, size := vm.StackRange(0)
	m := mb.MustBuild()
	c := New(m, vm, h, base, size)
	c.Start(m.Entry, nil)
	if err := c.Run(); !errors.Is(err, ErrUnwind) {
		t.Fatalf("err = %v, want ErrUnwind", err)
	}
	if !c.Running() {
		t.Fatal("frames must survive an unwind for context restore")
	}
}

func TestContextRoundTripResumesMidFunction(t *testing.T) {
	// The thread parks at its first syscall; we capture a context there,
	// let it finish, then restore and re-run: the syscall must re-execute.
	mb := tir.NewModuleBuilder()
	fb := mb.Func("main", 0)
	r, acc := fb.NewReg(), fb.NewReg()
	fb.ConstI(acc, 100)
	fb.Syscall(r, 1)
	fb.Bin(tir.Add, acc, acc, r)
	fb.Ret(acc)
	fb.Seal()
	mb.SetEntry("main")
	m := mb.MustBuild()

	vm := mem.New(mem.DefaultConfig())
	var captured *Context
	h := &stubHooks{sysRet: 11}
	base, size := vm.StackRange(0)
	c := New(m, vm, h, base, size)
	c.Start(m.Entry, nil)

	// Capture a context at the first syscall via a wrapper hook.
	wrapped := &captureHooks{inner: h, cpu: nil}
	c.Hooks = wrapped
	wrapped.cpu = c
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	captured = wrapped.ctx
	if c.Result() != 111 {
		t.Fatalf("first run = %d", c.Result())
	}
	if captured == nil {
		t.Fatal("no context captured")
	}

	// Restore: PC points at the syscall, so it must re-execute.
	h.sysRet = 42
	c.SetContext(captured)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Result() != 142 {
		t.Fatalf("resumed run = %d, want 142", c.Result())
	}
	if len(h.syscalls) != 2 {
		t.Fatalf("syscall executed %d times, want 2", len(h.syscalls))
	}
}

type captureHooks struct {
	inner *stubHooks
	cpu   *CPU
	ctx   *Context
}

func (h *captureHooks) Syscall(num int64, args []uint64) (uint64, error) {
	if h.ctx == nil {
		h.ctx = h.cpu.GetContext()
	}
	return h.inner.Syscall(num, args)
}

func (h *captureHooks) Intrinsic(id int64, args []uint64) (uint64, error) {
	return h.inner.Intrinsic(id, args)
}

func (h *captureHooks) Probe(id int64, v uint64) { h.inner.Probe(id, v) }
func (h *captureHooks) Poll() error              { return h.inner.Poll() }

func TestWatchpointHitCarriesStack(t *testing.T) {
	mb := tir.NewModuleBuilder()
	writer := mb.Func("writer", 1)
	v := writer.NewReg()
	writer.ConstI(v, 1)
	writer.Store64(v, writer.Param(0), 0)
	writer.Ret(-1)
	writer.Seal()
	fb := mb.Func("main", 0)
	a := fb.NewReg()
	fb.ConstI(a, int64(mem.HeapBase+64))
	fb.Call(-1, writer.Index(), a)
	fb.Ret(-1)
	fb.Seal()
	mb.SetEntry("main")
	m := mb.MustBuild()

	vm := mem.New(mem.DefaultConfig())
	if err := vm.ArmWatchpoint(mem.HeapBase+64, 8); err != nil {
		t.Fatal(err)
	}
	var hits []WatchHit
	h := &stubHooks{}
	base, size := vm.StackRange(0)
	c := New(m, vm, h, base, size)
	c.OnWatch = func(hit WatchHit) { hits = append(hits, hit) }
	c.Start(m.Entry, nil)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("hits = %d, want 1", len(hits))
	}
	if hits[0].Stack[0].Func != "writer" {
		t.Fatalf("hit stack = %v", hits[0].Stack)
	}
}

func TestStackOverflowTraps(t *testing.T) {
	mb := tir.NewModuleBuilder()
	recIdx := mb.Declare("rec", 1)
	fb := mb.FuncBuilderFor(recIdx)
	fb.SetFrameSize(4096)
	r := fb.NewReg()
	fb.Call(r, recIdx, fb.Param(0))
	fb.Ret(r)
	fb.Seal()
	mn := mb.Func("main", 0)
	x := mn.NewReg()
	mn.ConstI(x, 0)
	mn.Call(x, recIdx, x)
	mn.Ret(x)
	mn.Seal()
	mb.SetEntry("main")
	_, _, err := run(t, mb.MustBuild())
	var trap *Trap
	if !errors.As(err, &trap) {
		t.Fatalf("want stack overflow trap, got %v", err)
	}
}
