package server

// Store-level operations the service layer and the CLI share: resolving a
// stored trace back to a runnable job (rebuilding the module from the
// recorded app name, iteration count, and fingerprint) and recording a
// named workload straight into a store. cmd/ir-trace delegates here so the
// daemon and the one-shot commands cannot drift apart.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/obs"
	"repro/internal/record"
	"repro/internal/tir"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// isInterrupt reports whether a run error is a caller cancellation (the
// wrapped cause of core.Options.Interrupt fed by a job context).
func isInterrupt(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// ResolveJob opens a stored trace and rebuilds it into a runnable replay
// job: the trace is resolved to a Handle (one footer read for indexed
// files — no epochs are decoded here; workers stream their own slices),
// the recorded application (or analysis-corpus program) is re-synthesized,
// checked against the trace's module fingerprint, and the recording's seed
// and list capacities are installed into opts. The caller owns the
// returned job's Handle and must Close it after the replay work is done.
func ResolveJob(st *trace.Store, name string, opts core.Options) (trace.Job, error) {
	h, err := st.Open(name)
	if err != nil {
		return trace.Job{}, err
	}
	job, err := resolveHandle(h, name, opts)
	if err != nil {
		h.Close()
		return trace.Job{}, err
	}
	return job, nil
}

func resolveHandle(h *trace.Handle, name string, opts core.Options) (trace.Job, error) {
	hdr := h.Header()
	spec, ok := workloads.ByName(hdr.App)
	if !ok {
		if c, okc := workloads.AnalysisByName(hdr.App); okc {
			// A ground-truth corpus recording: the module is parameterless.
			mod := c.Build()
			if hash := hdr.ModuleHash; hash != 0 && tir.Fingerprint(mod) != hash {
				return trace.Job{}, fmt.Errorf(
					"trace %s: corpus program %q no longer matches the recorded fingerprint %#x",
					name, c.Name, hash)
			}
			opts.Seed = hdr.Seed
			opts.EventCap = hdr.EventCap
			return trace.Job{Name: name, Module: mod, Handle: h, Opts: opts}, nil
		}
		return trace.Job{}, fmt.Errorf("trace %s was recorded from unknown app %q", name, hdr.App)
	}
	// The header records the iteration count the module was built with;
	// older traces without it fall back to a fingerprint search over
	// iteration scales (the only module-shaping knob the recorder exposes).
	if hdr.AppIters > 0 {
		spec.Iters = hdr.AppIters
	}
	mod, err := buildMatching(spec, hdr.ModuleHash)
	if err != nil {
		return trace.Job{}, fmt.Errorf("trace %s: %v", name, err)
	}
	opts.Seed = hdr.Seed
	opts.EventCap = hdr.EventCap
	return trace.Job{
		Name: name, Module: mod, Handle: h, Opts: opts,
		Setup: func(rt *core.Runtime) error { spec.SetupOS(rt.OS()); return nil },
	}, nil
}

// buildMatching finds the iteration count whose module matches hash: the
// spec's iteration knob is the only module-shaping parameter the recording
// paths expose.
func buildMatching(spec workloads.Spec, hash uint64) (*tir.Module, error) {
	mod, err := spec.Build()
	if err != nil {
		return nil, err
	}
	if hash == 0 || tir.Fingerprint(mod) == hash {
		return mod, nil
	}
	base := spec
	for iters := 3; iters <= base.Iters*4+16; iters++ {
		s := base
		s.Iters = iters
		m, err := s.Build()
		if err != nil {
			return nil, err
		}
		if tir.Fingerprint(m) == hash {
			return m, nil
		}
	}
	return nil, fmt.Errorf("no iteration scale of %q matches the recorded module fingerprint %#x (recorded with different parameters?)", spec.Name, hash)
}

// RecordRequest parameterizes one recording into a store — the service's
// record job body and ir-trace record's flag set.
type RecordRequest struct {
	// App names the workload: an evaluated application, an ablation
	// variant, or an analysis-corpus program.
	App string `json:"app"`
	// Name is the trace name; empty means App.
	Name string `json:"name,omitempty"`
	// Scale multiplies the workload's iteration count (0 = 1.0); corpus
	// programs are fixed-size and ignore it.
	Scale float64 `json:"scale,omitempty"`
	// Seed drives external nondeterminism (0 keeps 0 — the CLI default of
	// 42 is applied by the flag, not here).
	Seed int64 `json:"seed,omitempty"`
	// EventCap overrides the per-thread event list size (0 = default).
	EventCap int `json:"event_cap,omitempty"`
	// CheckpointEvery persists a checkpoint frame every N epochs (0 =
	// none); checkpointed traces replay segment-parallel.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// KeyframeEvery makes every N-th checkpoint frame a full-image
	// keyframe (0 = the writer default, trace.DefaultKeyframeEvery);
	// smaller intervals cost bytes and buy faster mid-trace folds.
	KeyframeEvery int `json:"keyframe_every,omitempty"`
	// Compress deflates epoch and checkpoint frame bodies as they are
	// written (format v4 seekable compression); the index stays random
	// access, each frame decompressing independently through it.
	Compress bool `json:"compress,omitempty"`
	// FlightEpochs > 0 switches the recording to flight-recorder mode:
	// instead of streaming the whole run into the store, a bounded ring
	// retains roughly the last FlightEpochs epochs, and at run end (fault
	// or clean exit) the retained suffix spills into the store as a trace
	// that replays from its leading checkpoint. Recording cost stays
	// O(epoch), disk stays O(FlightEpochs), however long the run.
	// CheckpointEvery defaults to 1 in this mode (the ring trims at
	// checkpoints); KeyframeEvery is ignored.
	FlightEpochs int `json:"flight_epochs,omitempty"`
}

// RecordResult is a completed recording's summary.
type RecordResult struct {
	Trace       string `json:"trace"`
	Path        string `json:"path"`
	Epochs      int    `json:"epochs"`
	Checkpoints int    `json:"checkpoints"`
	Keyframes   int    `json:"keyframes,omitempty"`
	Events      int64  `json:"events"`
	Bytes       int64  `json:"bytes"`
	Exit        uint64 `json:"exit"`
	// Fault carries a recorded crash — the trace is still valid (a recorded
	// fault is the prime replay candidate), so it is not an error.
	Fault  string `json:"fault,omitempty"`
	WallNS int64  `json:"wall_ns"`
	// Suffix marks a flight-recorder spill: the trace replays from its
	// leading checkpoint (FirstEpoch) instead of program start.
	Suffix     bool  `json:"suffix,omitempty"`
	FirstEpoch int64 `json:"first_epoch,omitempty"`
	// Timing is the daemon's latency breakdown (nil for CLI recordings).
	Timing *JobTiming `json:"timing,omitempty"`
}

// RecordTrace runs the named workload under the recorder, streaming epoch
// (and optional checkpoint) frames straight into the store. The recording
// lands under a ".partial" name and is renamed into place only when it
// closes at a clean frame boundary, so a crashed recorder never leaves a
// torn file under a valid name and List never reports an in-progress
// recording. interrupt, when non-nil, is polled at gated points and
// cancels the recording; the clean prefix written so far is still
// committed (the store lists it as an incomplete trace) and the cause is
// returned. A failed or canceled re-recording therefore replaces a
// previously complete trace only at commit time. Concurrent recordings of
// one name are the caller's responsibility to exclude — the daemon
// serializes them per name.
func RecordTrace(st *trace.Store, req RecordRequest, interrupt func() error) (*RecordResult, error) {
	return RecordTraceSpan(st, req, interrupt, nil)
}

// RecordTraceSpan is RecordTrace with a telemetry span: span, when
// non-nil, is handed to the runtime as core.Options.Span, so the
// recording's epoch boundaries (with quiescence waits and rollbacks)
// become children on the caller's timeline. The daemon's record jobs pass
// their root job span; the CLI passes nil.
func RecordTraceSpan(st *trace.Store, req RecordRequest, interrupt func() error, span *obs.Span) (*RecordResult, error) {
	if req.App == "" {
		return nil, fmt.Errorf("record: app is required")
	}
	var (
		mod      *tir.Module
		setupOS  func(rt *core.Runtime)
		appIters int
	)
	if spec, ok := workloads.ByName(req.App); ok {
		if req.Scale != 0 && req.Scale != 1.0 {
			spec.Iters = int(float64(spec.Iters) * req.Scale)
			if spec.Iters < 3 {
				spec.Iters = 3
			}
		}
		m, err := spec.Build()
		if err != nil {
			return nil, err
		}
		mod, appIters = m, spec.Iters
		setupOS = func(rt *core.Runtime) { spec.SetupOS(rt.OS()) }
	} else if c, ok := workloads.AnalysisByName(req.App); ok {
		// Ground-truth corpus programs take no OS setup and no scaling.
		mod = c.Build()
	} else {
		_, err := workloads.ByNameStrict(req.App)
		return nil, fmt.Errorf("record: %w (analysis corpus: %s)",
			err, strings.Join(workloads.AnalysisNames(), ", "))
	}
	name := req.Name
	if name == "" {
		name = req.App
	}
	if req.FlightEpochs > 0 {
		return recordFlight(st, req, name, mod, appIters, setupOS, interrupt, span)
	}

	// Stream epoch frames straight to the partial file as the runtime
	// flushes them; Abort below is crash insurance (no-op after Commit).
	p, err := st.Create(name)
	if err != nil {
		return nil, err
	}
	defer p.Abort()
	w, err := trace.NewWriter(p, trace.Header{
		App:        req.App,
		ModuleHash: tir.Fingerprint(mod),
		EventCap:   req.EventCap,
		VarCap:     0,
		Seed:       req.Seed,
		AppIters:   appIters,
		Compressed: req.Compress,
	})
	if err != nil {
		return nil, err
	}
	if req.KeyframeEvery > 0 {
		w.SetKeyframeEvery(req.KeyframeEvery)
	}
	var events int64
	opts := core.Options{Seed: req.Seed, EventCap: req.EventCap, Interrupt: interrupt, Span: span}
	sink := w.Sink()
	opts.TraceSink = func(ep *record.EpochLog) error {
		events += int64(ep.EventCount())
		return sink(ep)
	}
	if req.CheckpointEvery > 0 {
		opts.CheckpointEvery = req.CheckpointEvery
		opts.CheckpointSink = w.CheckpointSink()
	}
	rt, err := core.New(mod, opts)
	if err != nil {
		return nil, err
	}
	if setupOS != nil {
		setupOS(rt)
	}
	start := time.Now()
	rep, runErr := rt.Run()
	if rep == nil {
		return nil, runErr
	}
	if isInterrupt(runErr) {
		// A canceled recording stops at a clean frame boundary: commit the
		// prefix as an incomplete trace (no summary frame); the store lists
		// it as such.
		if cerr := p.Commit(); cerr != nil {
			return nil, cerr
		}
		return nil, runErr
	}
	if err := w.Finish(&trace.Summary{Exit: rep.Exit, Output: rep.Output}); err != nil {
		return nil, err
	}
	bytes := p.Bytes()
	if err := p.Commit(); err != nil {
		return nil, err
	}
	res := &RecordResult{
		Trace:       name,
		Path:        st.Path(name),
		Epochs:      w.Epochs(),
		Checkpoints: w.Ckpts(),
		Keyframes:   w.Keyframes(),
		Events:      events,
		Bytes:       bytes,
		Exit:        rep.Exit,
		WallNS:      time.Since(start).Nanoseconds(),
	}
	if runErr != nil {
		res.Fault = runErr.Error()
	}
	return res, nil
}

// recordFlight is RecordTrace's flight-recorder arm: the run streams into
// a bounded ring beside the store instead of a growing partial file, and
// the ring's retained suffix spills into the store when the run ends —
// with the real exit/output oracle when the program actually finished
// (clean or faulted), or as a partial trace when the recording was
// interrupted. Either way the stored trace replays from its leading
// checkpoint; the disk cost of an arbitrarily long run stays bounded.
func recordFlight(st *trace.Store, req RecordRequest, name string, mod *tir.Module,
	appIters int, setupOS func(*core.Runtime), interrupt func() error, span *obs.Span) (*RecordResult, error) {
	rec, err := flight.New(flight.RingPath(st, name), trace.Header{
		App:        req.App,
		ModuleHash: tir.Fingerprint(mod),
		EventCap:   req.EventCap,
		Seed:       req.Seed,
		AppIters:   appIters,
	}, req.FlightEpochs)
	if err != nil {
		return nil, err
	}
	defer rec.Close()
	var events int64
	opts := core.Options{
		Seed: req.Seed, EventCap: req.EventCap, Interrupt: interrupt,
		CheckpointEvery: req.CheckpointEvery, FlightRecorder: rec, Span: span,
	}
	opts.TraceSink = func(ep *record.EpochLog) error {
		events += int64(ep.EventCount())
		return nil
	}
	rt, err := core.New(mod, opts)
	if err != nil {
		return nil, err
	}
	if setupOS != nil {
		setupOS(rt)
	}
	start := time.Now()
	rep, runErr := rt.Run()
	if rep == nil {
		return nil, runErr
	}
	var sum *trace.Summary
	if !isInterrupt(runErr) {
		sum = &trace.Summary{Exit: rep.Exit, Output: rep.Output}
	}
	stats, err := rec.Spill(st, name, sum)
	if err != nil {
		return nil, err
	}
	if isInterrupt(runErr) {
		// The partial suffix is stored; the job still reports the cancel.
		return nil, runErr
	}
	res := &RecordResult{
		Trace:      name,
		Path:       st.Path(name),
		Epochs:     stats.Epochs,
		Events:     events,
		Bytes:      stats.Bytes,
		Exit:       rep.Exit,
		WallNS:     time.Since(start).Nanoseconds(),
		Suffix:     stats.Suffix,
		FirstEpoch: stats.FirstEpoch,
	}
	if runErr != nil {
		res.Fault = runErr.Error()
	}
	return res, nil
}
