package server

// Server-side telemetry: the /metrics registry (every ir_served_* series,
// rendered through internal/obs so the exposition is lint-clean), per-route
// request latency instrumentation, and per-job span timelines served as
// Chrome trace-event JSON by GET /api/v1/jobs/{id}/timeline.
//
// The daemon's own series are point-in-time mirrors: handleMetrics snapshots
// the scheduler, store, and GC counters and Sets them into the registry at
// scrape time, then renders the server registry followed by the process-wide
// obs.Default() registry (scheduler wait/run histograms, trace-layer and
// core-layer timings). Request latency and request counts are the only
// series observed on the hot path.

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// serverMetrics is the daemon's /metrics registry. Everything except the
// HTTP families is Set at scrape time from authoritative counters held
// elsewhere (the scheduler, the store, the Server's atomics).
type serverMetrics struct {
	reg *obs.Registry

	httpLatency *obs.HistogramVec
	httpReqs    *obs.CounterVec

	queueDepth, queueLimit, workers, running *obs.Gauge
	jobsTotal                                *obs.CounterVec
	submitted, rejected                      *obs.Counter
	eventsReplayed                           *obs.Counter
	eventsPerSec                             *obs.Gauge

	cacheHits, cacheMisses, cacheEvictions *obs.Counter
	cacheBytes, cacheLimit                 *obs.Gauge
	cacheHitRate, cachedFrames             *obs.Gauge

	storeBytes, storeTraces *obs.Gauge
	tierTraces              *obs.GaugeVec
	pinned                  *obs.Gauge

	gcRuns, gcReclaimed *obs.Counter
	uptime              *obs.Gauge
}

func newServerMetrics() *serverMetrics {
	r := obs.NewRegistry()
	return &serverMetrics{
		reg: r,

		httpLatency: r.NewHistogramVec(obs.MServedHTTPLatency,
			"API request latency by route.", "route", obs.DefBuckets),
		httpReqs: r.NewCounterVec(obs.MServedHTTPRequests,
			"API requests served, by route.", "route"),

		queueDepth: r.NewGauge(obs.MServedQueueDepth, "Jobs waiting for a worker."),
		queueLimit: r.NewGauge(obs.MServedQueueLimit, "Queue capacity; submissions past it get 429."),
		workers:    r.NewGauge(obs.MServedWorkers, "Worker pool size."),
		running:    r.NewGauge(obs.MServedJobsRunning, "Jobs executing right now."),
		jobsTotal: r.NewCounterVec(obs.MServedJobsTotal,
			"Terminal jobs by final state.", "state"),
		submitted: r.NewCounter(obs.MServedJobsSubmitted, "Jobs accepted into the queue."),
		rejected:  r.NewCounter(obs.MServedJobsRejected, "Submissions refused by backpressure."),
		eventsReplayed: r.NewCounter(obs.MServedEventsReplayed,
			"Recorded events re-executed (or recorded) by completed jobs."),
		eventsPerSec: r.NewGauge(obs.MServedEventsPerSec,
			"Replay throughput: events_replayed_total / uptime."),

		cacheHits:      r.NewCounter(obs.MServedCacheHits, "Decode-cache hits."),
		cacheMisses:    r.NewCounter(obs.MServedCacheMisses, "Decode-cache misses."),
		cacheEvictions: r.NewCounter(obs.MServedCacheEvictions, "Decode-cache evictions."),
		cacheBytes:     r.NewGauge(obs.MServedCacheBytes, "Bytes of decoded frames cached."),
		cacheLimit:     r.NewGauge(obs.MServedCacheLimit, "Decode-cache byte budget."),
		cacheHitRate:   r.NewGauge(obs.MServedCacheHitRate, "Decode-cache hits / loads since start."),
		cachedFrames:   r.NewGauge(obs.MServedCachedFrames, "Decoded frames resident in the cache."),

		storeBytes:  r.NewGauge(obs.MServedStoreBytes, "Summed size of stored trace files."),
		storeTraces: r.NewGauge(obs.MServedStoreTraces, "Stored traces."),
		tierTraces: r.NewGaugeVec(obs.MServedTracesByTier,
			"Traces by encoding tier (cold = compressed frame bodies).", "tier"),
		pinned: r.NewGauge(obs.MServedPinnedTraces, "Traces pinned against retention GC."),

		gcRuns:      r.NewCounter(obs.MServedGCRuns, "Retention GC passes completed."),
		gcReclaimed: r.NewCounter(obs.MServedGCReclaimed, "Bytes reclaimed by retention GC passes."),
		uptime:      r.NewGauge(obs.MServedUptimeSeconds, "Seconds since the server started."),
	}
}

// route registers a handler wrapped with per-route instrumentation: a
// latency observation and request count under the route label, and a span
// in the server's bounded request-span ring. name must be low-cardinality
// (the route, never the path — path values carry trace names and job IDs).
func (s *Server) route(pattern, name string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sp := s.reqSpans.Start("http " + name)
		sp.SetAttr("method", r.Method)
		sp.SetAttr("path", r.URL.Path)
		defer func() {
			s.met.httpReqs.With(name).Inc()
			s.met.httpLatency.With(name).ObserveSince(start)
			sp.End()
		}()
		h(w, r)
	})
}

// handleMetrics renders the Prometheus text exposition: the daemon's own
// series (scheduler and store state mirrored into the registry at scrape
// time) followed by the process-wide obs.Default() registry — scheduler
// queue-wait/run histograms and the trace/core/flight layer timings.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.sched.Metrics()
	st := s.store.Stats()
	uptime := time.Since(s.start).Seconds()
	events := s.eventsReplayed.Load()
	eps := 0.0
	if uptime > 0 {
		eps = float64(events) / uptime
	}
	met := s.met
	met.queueDepth.Set(float64(m.QueueDepth))
	met.queueLimit.Set(float64(m.QueueLimit))
	met.workers.Set(float64(m.Workers))
	met.running.Set(float64(m.Running))
	met.jobsTotal.With("done").Set(float64(m.Done))
	met.jobsTotal.With("failed").Set(float64(m.Failed))
	met.jobsTotal.With("canceled").Set(float64(m.Canceled))
	met.submitted.Set(float64(m.Submitted))
	met.rejected.Set(float64(m.Rejected))
	met.eventsReplayed.Set(float64(events))
	met.eventsPerSec.Set(eps)
	met.cacheHits.Set(float64(st.Hits))
	met.cacheMisses.Set(float64(st.Misses))
	met.cacheEvictions.Set(float64(st.Evictions))
	met.cacheBytes.Set(float64(st.CachedBytes))
	met.cacheLimit.Set(float64(st.LimitBytes))
	met.cacheHitRate.Set(st.HitRate())
	met.cachedFrames.Set(float64(st.CachedFrames))
	if ds, err := s.store.DiskStats(); err == nil {
		met.storeBytes.Set(float64(ds.TotalBytes))
		met.storeTraces.Set(float64(ds.Traces))
	}
	if entries, err := s.store.List(); err == nil {
		hot, cold := 0, 0
		for _, e := range entries {
			if e.Err == nil && e.Header.Compressed {
				cold++
			} else {
				hot++
			}
		}
		met.tierTraces.With("hot").Set(float64(hot))
		met.tierTraces.With("cold").Set(float64(cold))
	}
	if pins, err := s.store.Pins(); err == nil {
		met.pinned.Set(float64(len(pins)))
	}
	met.gcRuns.Set(float64(s.gcRuns.Load()))
	met.gcReclaimed.Set(float64(s.gcReclaimed.Load()))
	met.uptime.Set(uptime)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = met.reg.Render(w)
	_ = obs.Default().Render(w)
}

// --- per-job timelines ---

// maxTimelines bounds the per-job span recorders retained for the timeline
// endpoint; the oldest submission is evicted first.
const maxTimelines = 256

// jobSpanCap bounds one job's span ring; a segment replay emits ~5 spans
// per segment plus core epoch boundaries, so this covers large fan-outs
// before drop-oldest kicks in.
const jobSpanCap = 4096

// jobTel couples one job's span recorder with submission-time bookkeeping:
// the recorder is registered under the job ID at submit, and the queued
// interval (submit → worker pickup) becomes the root span's first child.
type jobTel struct {
	rec      *obs.Recorder
	submitAt time.Time
	name     string
}

func newJobTel(name string) *jobTel {
	return &jobTel{rec: obs.NewRecorder(jobSpanCap), submitAt: time.Now(), name: name}
}

// begin opens the job's root span when a worker picks the job up. The root
// covers queue wait plus execution (it starts at submission), with the
// wait itself visible as the "queued" child.
func (t *jobTel) begin() (*obs.Span, time.Time) {
	start := time.Now()
	root := t.rec.StartAt(t.name, t.submitAt)
	root.Record("queued", t.submitAt, start)
	return root, start
}

// timing summarizes the job for its JSON result: queue wait, resolve time
// (trace open + module rebuild; zero for jobs that resolve nothing), and
// the remaining execution.
func (t *jobTel) timing(runStart time.Time, resolve time.Duration) *JobTiming {
	return &JobTiming{
		QueueMS:   durMS(runStart.Sub(t.submitAt)),
		ResolveMS: durMS(resolve),
		ExecuteMS: durMS(time.Since(runStart) - resolve),
	}
}

func durMS(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// JobTiming is the latency breakdown attached to every job result payload:
// where the wall-clock went, from submission to completion.
type JobTiming struct {
	// QueueMS is submission → worker pickup.
	QueueMS float64 `json:"queue_ms"`
	// ResolveMS is trace open + module rebuild (zero when the job resolves
	// no trace — record, compact).
	ResolveMS float64 `json:"resolve_ms,omitempty"`
	// ExecuteMS is the work itself.
	ExecuteMS float64 `json:"execute_ms"`
	// Segments breaks a segment-replay job down per segment.
	Segments []SegmentTiming `json:"segments,omitempty"`
}

// SegmentTiming is one segment's stage breakdown inside a segment-replay
// job result.
type SegmentTiming struct {
	Seg        int   `json:"seg"`
	FirstEpoch int64 `json:"first_epoch"`
	LastEpoch  int64 `json:"last_epoch"`
	// Stage milliseconds: checkpoint folds, epoch-slice decode, replay
	// execution, and the final-segment oracle check (interior segments
	// stitch inside execute).
	FoldMS    float64 `json:"fold_ms"`
	DecodeMS  float64 `json:"decode_ms"`
	ExecuteMS float64 `json:"execute_ms"`
	StitchMS  float64 `json:"stitch_ms"`
	// MergeMS is a segmented-analyze segment's share of the sequential
	// analyzer fold (tape re-delivery plus boundary state round-trip);
	// zero for segment-replay jobs.
	MergeMS float64 `json:"merge_ms,omitempty"`
	Matched bool    `json:"matched"`
}

// putTimeline retains a finished submission's span recorder under its job
// ID, evicting the oldest past maxTimelines.
func (s *Server) putTimeline(id uint64, rec *obs.Recorder) {
	if rec == nil {
		return
	}
	s.tlMu.Lock()
	defer s.tlMu.Unlock()
	s.timelines[id] = rec
	s.tlOrder = append(s.tlOrder, id)
	for len(s.tlOrder) > maxTimelines {
		delete(s.timelines, s.tlOrder[0])
		s.tlOrder = s.tlOrder[1:]
	}
}

// handleJobTimeline serves one job's span timeline as Chrome trace-event
// JSON (load it in chrome://tracing or Perfetto). The timeline is live —
// a running job shows its completed spans so far.
func (s *Server) handleJobTimeline(w http.ResponseWriter, r *http.Request) {
	id, ok := s.jobID(w, r)
	if !ok {
		return
	}
	s.tlMu.Lock()
	rec := s.timelines[id]
	s.tlMu.Unlock()
	if rec == nil {
		if _, err := s.sched.Info(id); err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		httpError(w, http.StatusNotFound, fmt.Errorf("job %d has no retained timeline (evicted, or telemetry disabled)", id))
		return
	}
	spans, dropped := rec.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	if dropped > 0 {
		w.Header().Set("X-IR-Spans-Dropped", strconv.FormatUint(dropped, 10))
	}
	_ = obs.ChromeTrace(w, spans)
}

// handleDebugSpans serves the bounded ring of recent HTTP request spans as
// Chrome trace-event JSON — a cheap always-on view of what the API surface
// has been doing lately.
func (s *Server) handleDebugSpans(w http.ResponseWriter, r *http.Request) {
	spans, dropped := s.reqSpans.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	if dropped > 0 {
		w.Header().Set("X-IR-Spans-Dropped", strconv.FormatUint(dropped, 10))
	}
	_ = obs.ChromeTrace(w, spans)
}
