// Telemetry end-to-end: the /metrics exposition must pass the obs linter
// with the route-latency and scheduler histograms present, and a
// segment-replay job's timeline endpoint must serve valid Chrome
// trace-event JSON — one span per segment, each with its four stage
// children — matching the per-segment timing rows in the job result.
package server_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/trace"
)

// chromeDoc mirrors the Chrome trace-event JSON the timeline endpoints
// emit, as a client would decode it.
type chromeDoc struct {
	TraceEvents []struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		Ts   float64           `json:"ts"`
		Dur  float64           `json:"dur"`
		PID  int               `json:"pid"`
		TID  int               `json:"tid"`
		Args map[string]string `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func getBody(t *testing.T, c *http.Client, url string) (string, int) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b), resp.StatusCode
}

func TestServerTelemetry(t *testing.T) {
	st, err := trace.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// A checkpointed multi-epoch recording so segment-replay fans out into
	// real segments: the small event cap forces epoch boundaries and the
	// checkpoint interval splits them (streamcluster is host-race-safe).
	if _, err := server.RecordTrace(st, server.RecordRequest{
		App: "streamcluster", Name: "seg", Scale: 0.2, Seed: 9,
		EventCap: 24, CheckpointEvery: 2,
	}, nil); err != nil {
		t.Fatal(err)
	}

	srv, err := server.New(server.Config{Store: st, Workers: 2, QueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Scheduler().Shutdown()
	c := &client{base: ts.URL, http: ts.Client()}

	info := c.submit(t, `{"kind":"segment-replay","trace":"seg"}`)
	final := c.wait(t, info.ID)
	if final.State != sched.Done {
		t.Fatalf("segment-replay job: %v (%s)", final.State, final.Err)
	}

	// The result payload carries the timing breakdown with one row per
	// segment.
	raw, err := json.Marshal(final.Result)
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Segments int `json:"segments"`
		Matched  int `json:"matched"`
		Timing   *struct {
			QueueMS   float64 `json:"queue_ms"`
			ResolveMS float64 `json:"resolve_ms"`
			ExecuteMS float64 `json:"execute_ms"`
			Segments  []struct {
				Seg       int     `json:"seg"`
				ExecuteMS float64 `json:"execute_ms"`
				Matched   bool    `json:"matched"`
			} `json:"segments"`
		} `json:"timing"`
	}
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.Segments < 2 {
		t.Fatalf("expected a multi-segment replay, got %d segments", res.Segments)
	}
	if res.Matched != res.Segments {
		t.Fatalf("only %d of %d segments matched", res.Matched, res.Segments)
	}
	if res.Timing == nil {
		t.Fatal("job result carries no timing breakdown")
	}
	if len(res.Timing.Segments) != res.Segments {
		t.Fatalf("timing has %d segment rows, result reports %d segments",
			len(res.Timing.Segments), res.Segments)
	}
	if res.Timing.ExecuteMS <= 0 {
		t.Fatalf("non-positive execute_ms: %+v", res.Timing)
	}

	t.Run("timeline", func(t *testing.T) {
		body, status := getBody(t, ts.Client(), fmt.Sprintf("%s/api/v1/jobs/%d/timeline", ts.URL, info.ID))
		if status != http.StatusOK {
			t.Fatalf("timeline: status %d: %s", status, body)
		}
		var doc chromeDoc
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("timeline is not valid JSON: %v\n%s", err, body)
		}
		names := make(map[string]int) // name -> count
		segTIDs := make(map[int]bool) // tids of "segment N" spans
		stages := make(map[int]map[string]bool)
		lastTs := -1.0
		for _, ev := range doc.TraceEvents {
			if ev.Ph != "X" {
				t.Fatalf("event %q has phase %q, want X", ev.Name, ev.Ph)
			}
			if ev.Ts < lastTs {
				t.Fatalf("event %q breaks ascending-ts order (%g after %g)", ev.Name, ev.Ts, lastTs)
			}
			lastTs = ev.Ts
			names[ev.Name]++
			if strings.HasPrefix(ev.Name, "segment ") {
				segTIDs[ev.TID] = true
			}
			switch ev.Name {
			case "fold", "decode", "execute", "stitch":
				if stages[ev.TID] == nil {
					stages[ev.TID] = make(map[string]bool)
				}
				stages[ev.TID][ev.Name] = true
			}
		}
		if names["segment-replay/seg"] != 1 {
			t.Fatalf("no root job span in timeline: %v", names)
		}
		if names["queued"] != 1 || names["resolve"] != 1 {
			t.Fatalf("missing queued/resolve children: %v", names)
		}
		nSeg := 0
		for name, n := range names {
			if strings.HasPrefix(name, "segment ") {
				nSeg += n
			}
		}
		if nSeg != res.Segments {
			t.Fatalf("timeline has %d segment spans, job replayed %d segments", nSeg, res.Segments)
		}
		for tid := range segTIDs {
			for _, stage := range []string{"fold", "decode", "execute", "stitch"} {
				if !stages[tid][stage] {
					t.Fatalf("segment track tid=%d lacks stage %q (has %v)", tid, stage, stages[tid])
				}
			}
		}
	})

	t.Run("metrics", func(t *testing.T) {
		body, status := getBody(t, ts.Client(), ts.URL+"/metrics")
		if status != http.StatusOK {
			t.Fatalf("/metrics: status %d", status)
		}
		if problems := obs.LintProm(body); len(problems) != 0 {
			t.Fatalf("/metrics fails exposition lint:\n%s", strings.Join(problems, "\n"))
		}
		for _, want := range []string{
			`ir_served_jobs_total{state="done"} 1`,
			`ir_served_http_request_seconds_bucket{route="jobs_submit",`,
			`ir_served_http_requests_total{route="job_timeline"}`,
			`ir_sched_queue_wait_seconds_bucket{kind="segment-replay",`,
			`ir_sched_run_seconds_bucket{kind="segment-replay",`,
			"ir_served_store_bytes ",
			"ir_trace_checkpoint_fold_seconds_bucket",
		} {
			if !strings.Contains(body, want) {
				t.Fatalf("/metrics lacks %q", want)
			}
		}
	})

	t.Run("debug-spans", func(t *testing.T) {
		body, status := getBody(t, ts.Client(), ts.URL+"/api/v1/debug/spans")
		if status != http.StatusOK {
			t.Fatalf("/api/v1/debug/spans: status %d", status)
		}
		var doc chromeDoc
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("debug spans are not valid JSON: %v", err)
		}
		seen := false
		for _, ev := range doc.TraceEvents {
			if ev.Name == "http jobs_submit" {
				seen = true
			}
		}
		if !seen {
			t.Fatal("request-span ring lacks the http jobs_submit span")
		}
	})

	t.Run("timeline-unknown-job", func(t *testing.T) {
		_, status := getBody(t, ts.Client(), ts.URL+"/api/v1/jobs/999999/timeline")
		if status != http.StatusNotFound {
			t.Fatalf("unknown-job timeline: status %d, want 404", status)
		}
	})
}

// TestServerSegmentedAnalyze drives the segment-parallel analyze path through
// the HTTP API: a checkpointed recording analyzed with "segments":true must
// report the same findings byte for byte as the whole-trace analyze job, and
// its timing breakdown must carry one row per analysis segment covering the
// epoch range contiguously (leak-dropped is host-race-safe, so this file
// stays -race clean).
func TestServerSegmentedAnalyze(t *testing.T) {
	st, err := trace.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// An aggressively small epoch cap plus a checkpoint at every boundary
	// splits even this short corpus program into several segments.
	if _, err := server.RecordTrace(st, server.RecordRequest{
		App: "leak-dropped", Name: "ck", Seed: 9, EventCap: 4, CheckpointEvery: 1,
	}, nil); err != nil {
		t.Fatal(err)
	}
	entry, err := st.Entry("ck")
	if err != nil {
		t.Fatal(err)
	}
	if entry.Checkpoints < 1 {
		t.Fatalf("recording carries no checkpoints (%d epochs)", entry.Epochs)
	}
	wantSegs := entry.Checkpoints + 1

	srv, err := server.New(server.Config{Store: st, Workers: 2, QueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Scheduler().Shutdown()
	c := &client{base: ts.URL, http: ts.Client()}

	whole := c.wait(t, c.submit(t, `{"kind":"analyze","trace":"ck"}`).ID)
	if whole.State != sched.Done {
		t.Fatalf("whole-trace analyze: %v (%s)", whole.State, whole.Err)
	}
	seg := c.wait(t, c.submit(t, `{"kind":"analyze","trace":"ck","segments":true,"workers":4}`).ID)
	if seg.State != sched.Done {
		t.Fatalf("segmented analyze: %v (%s)", seg.State, seg.Err)
	}

	if w, s := resultFindings(t, whole), resultFindings(t, seg); !strings.Contains(string(w), "memory-leak") {
		t.Fatalf("whole-trace findings lack the known leak: %s", w)
	} else if string(w) != string(s) {
		t.Fatalf("findings differ between paths:\nwhole:   %s\nsegment: %s", w, s)
	}

	raw, err := json.Marshal(seg.Result)
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Timing *struct {
			ExecuteMS float64 `json:"execute_ms"`
			Segments  []struct {
				Seg        int     `json:"seg"`
				FirstEpoch int64   `json:"first_epoch"`
				LastEpoch  int64   `json:"last_epoch"`
				ExecuteMS  float64 `json:"execute_ms"`
				MergeMS    float64 `json:"merge_ms"`
				Matched    bool    `json:"matched"`
			} `json:"segments"`
		} `json:"timing"`
	}
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.Timing == nil {
		t.Fatal("segmented analyze result carries no timing breakdown")
	}
	if len(res.Timing.Segments) != wantSegs {
		t.Fatalf("timing has %d segment rows, recording has %d checkpoints",
			len(res.Timing.Segments), entry.Checkpoints)
	}
	next := int64(1)
	for _, row := range res.Timing.Segments {
		if !row.Matched {
			t.Fatalf("segment %d reported unmatched: %+v", row.Seg, row)
		}
		if row.FirstEpoch != next {
			t.Fatalf("segment %d begins at epoch %d, want %d", row.Seg, row.FirstEpoch, next)
		}
		next = row.LastEpoch + 1
	}
	if nonSeg := c.wait(t, c.submit(t, `{"kind":"analyze","trace":"ck","segments":true}`).ID); nonSeg.State != sched.Done {
		t.Fatalf("segmented analyze with default workers: %v (%s)", nonSeg.State, nonSeg.Err)
	}
}
