// Store-lifecycle surface of the trace service: flight-recorder record
// jobs, the per-trace compact route (findings identical pre/post), trace
// deletion with 409 while held, retention GC through the API, and the
// pin-on-finding path that shields reproducing evidence from GC.
package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/trace"
)

// do issues one request against the API and returns status + body.
func (c *client) do(t *testing.T, method, path, body string) (int, []byte) {
	t.Helper()
	var rdr io.Reader
	if body != "" {
		rdr = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, rdr)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

// decodeResult re-marshals a terminal job's result into out.
func decodeResult(t *testing.T, info sched.Info, out any) {
	t.Helper()
	raw, err := json.Marshal(info.Result)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		t.Fatal(err)
	}
}

// TestServerFlightRecordJob records in flight-recorder mode through the
// API: the stored trace is a bounded suffix that replays (whole and
// segment-parallel) through ordinary jobs.
func TestServerFlightRecordJob(t *testing.T) {
	st, err := trace.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Store: st, Workers: 2, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Scheduler().Shutdown()
	c := &client{base: ts.URL, http: ts.Client()}

	rec := c.submit(t, `{"kind":"record","record":{"app":"streamcluster","name":"flt","scale":0.5,"seed":9,"event_cap":24,"flight_epochs":3}}`)
	final := c.wait(t, rec.ID)
	if final.State != sched.Done {
		t.Fatalf("flight record job: %v (%s)", final.State, final.Err)
	}
	var res server.RecordResult
	decodeResult(t, final, &res)
	if !res.Suffix || res.FirstEpoch == 0 {
		t.Fatalf("flight record result is not a suffix: %+v", res)
	}
	if res.Epochs < 3 || res.Epochs > 6 {
		t.Fatalf("flight record kept %d epochs, want within [3,6]", res.Epochs)
	}

	// The ring itself must not survive the job.
	if status, _ := c.do(t, http.MethodGet, "/api/v1/traces/flt", ""); status != http.StatusOK {
		t.Fatalf("spilled trace not listed: status %d", status)
	}

	for _, body := range []string{
		`{"kind":"replay","trace":"flt"}`,
		`{"kind":"segment-replay","trace":"flt","workers":2}`,
	} {
		info := c.submit(t, body)
		if final := c.wait(t, info.ID); final.State != sched.Done {
			t.Fatalf("%s on suffix trace: %v (%s)", body, final.State, final.Err)
		}
	}
}

// TestServerCompactRoute compacts a trace through POST /traces/{name}/compact
// and requires the analyzer findings to be byte-identical before and after —
// the compaction acceptance criterion, through the service surface.
func TestServerCompactRoute(t *testing.T) {
	st := seedStore(t, "leak-dropped")
	ref := referenceFindings(t, st, "leak-dropped")

	srv, err := server.New(server.Config{Store: st, Workers: 2, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Scheduler().Shutdown()
	c := &client{base: ts.URL, http: ts.Client()}

	status, body := c.do(t, http.MethodPost, "/api/v1/traces/leak-dropped/compact", "")
	if status != http.StatusAccepted {
		t.Fatalf("compact submit: status %d (%s)", status, body)
	}
	var info sched.Info
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	final := c.wait(t, info.ID)
	if final.State != sched.Done {
		t.Fatalf("compact job: %v (%s)", final.State, final.Err)
	}
	var res server.CompactResult
	decodeResult(t, final, &res)
	if res.Trace != "leak-dropped" || res.OldBytes == 0 || res.NewBytes == 0 || res.Epochs == 0 {
		t.Fatalf("compact result: %+v", res)
	}
	if res.NewBytes >= res.OldBytes {
		t.Errorf("compaction grew the trace: %d -> %d bytes", res.OldBytes, res.NewBytes)
	}

	// The compact route defaults to low priority.
	if !strings.HasPrefix(final.Name, "compact/") {
		t.Errorf("compact job name = %q", final.Name)
	}

	info = c.submit(t, `{"kind":"analyze","trace":"leak-dropped"}`)
	afinal := c.wait(t, info.ID)
	if afinal.State != sched.Done {
		t.Fatalf("analyze after compact: %v (%s)", afinal.State, afinal.Err)
	}
	if got := resultFindings(t, afinal); !bytes.Equal(got, ref) {
		t.Fatalf("findings changed across compaction:\nafter:  %s\nbefore: %s", got, ref)
	}

	// Compacting an unknown trace 404s at submission.
	if status, _ := c.do(t, http.MethodPost, "/api/v1/traces/nope/compact", ""); status != http.StatusNotFound {
		t.Fatalf("compact of missing trace: status %d, want 404", status)
	}
}

// TestServerDeleteTrace: DELETE is refused with 409 while a job holds the
// trace, succeeds once released, and 404s on a missing name.
func TestServerDeleteTrace(t *testing.T) {
	st := seedStore(t, "norace-locked")
	// relay-service replays slowly (think time), so its read hold is
	// observable from the outside.
	if _, err := server.RecordTrace(st, server.RecordRequest{App: "relay-service", Scale: 2}, nil); err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Store: st, Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Scheduler().Shutdown()
	c := &client{base: ts.URL, http: ts.Client()}

	if status, _ := c.do(t, http.MethodDelete, "/api/v1/traces/nope", ""); status != http.StatusNotFound {
		t.Fatalf("delete of missing trace: status %d, want 404", status)
	}

	slow := c.submit(t, `{"kind":"replay","trace":"relay-service"}`)
	waitState(t, c, slow.ID, sched.Running)
	time.Sleep(100 * time.Millisecond) // the hold lands as the job's first statement
	if status, _ := c.do(t, http.MethodDelete, "/api/v1/traces/relay-service", ""); status != http.StatusConflict {
		t.Fatalf("delete of held trace: status %d, want 409", status)
	}
	c.cancel(t, slow.ID)
	c.wait(t, slow.ID)

	if status, body := c.do(t, http.MethodDelete, "/api/v1/traces/relay-service", ""); status != http.StatusOK {
		t.Fatalf("delete after release: status %d (%s)", status, body)
	}
	if status, _ := c.do(t, http.MethodGet, "/api/v1/traces/relay-service", ""); status != http.StatusNotFound {
		t.Fatalf("deleted trace still listed: status %d", status)
	}
}

// TestServerGCAndPinOnFinding: an analyze job with findings pins its trace;
// a manual GC pass under a 1-byte cap then reclaims every unpinned trace
// and nothing else.
func TestServerGCAndPinOnFinding(t *testing.T) {
	st := seedStore(t, "leak-dropped", "norace-locked")
	srv, err := server.New(server.Config{
		Store: st, Workers: 2, QueueDepth: 8,
		GC: trace.GCPolicy{MaxBytes: 1}, // background loop ticks at DefaultGCInterval — never during this test
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Scheduler().Shutdown()
	c := &client{base: ts.URL, http: ts.Client()}

	// leak-dropped has findings -> pinned; norace-locked is clean -> not.
	for _, name := range []string{"leak-dropped", "norace-locked"} {
		info := c.submit(t, fmt.Sprintf(`{"kind":"analyze","trace":%q}`, name))
		final := c.wait(t, info.ID)
		if final.State != sched.Done {
			t.Fatalf("analyze %s: %v (%s)", name, final.State, final.Err)
		}
		var res server.AnalyzeJobResult
		decodeResult(t, final, &res)
		if want := name == "leak-dropped"; res.Pinned != want {
			t.Fatalf("analyze %s: pinned=%v, want %v (findings: %d)", name, res.Pinned, want, len(res.Findings))
		}
	}
	pins, err := st.Pins()
	if err != nil {
		t.Fatal(err)
	}
	if !pins["leak-dropped"] || pins["norace-locked"] {
		t.Fatalf("pins after analysis: %v", pins)
	}

	status, body := c.do(t, http.MethodPost, "/api/v1/gc", "")
	if status != http.StatusOK {
		t.Fatalf("gc: status %d (%s)", status, body)
	}
	var stats trace.GCStats
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Scanned != 2 || stats.Pinned != 1 || stats.Removed != 1 || stats.ReclaimedBytes == 0 {
		t.Fatalf("gc stats: %+v", stats)
	}

	// The pinned evidence survived; the clean trace did not.
	if status, _ := c.do(t, http.MethodGet, "/api/v1/traces/leak-dropped", ""); status != http.StatusOK {
		t.Fatalf("pinned trace reclaimed by GC: status %d", status)
	}
	if status, _ := c.do(t, http.MethodGet, "/api/v1/traces/norace-locked", ""); status != http.StatusNotFound {
		t.Fatalf("unpinned trace survived a 1-byte cap: status %d", status)
	}

	// /metrics reflects the lifecycle state.
	_, metrics := c.do(t, http.MethodGet, "/metrics", "")
	for _, want := range []string{
		"ir_served_store_pinned_traces 1",
		"ir_served_gc_runs_total 1",
		"ir_served_store_traces 1",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
}
