// Package server is the trace service: a local HTTP/JSON API over one
// trace store, multiplexing every client's record, replay, segment-replay,
// and analyze work through the shared priority scheduler (internal/sched).
// It is the layer that turns the record-once/replay-many toolbox into a
// multi-client system — one machine's recording and analysis capacity,
// shared, with backpressure instead of overload.
//
// Surface (all JSON; cmd/ir-served serves it):
//
//	GET    /api/v1/traces            store inventory (scanned, not decoded)
//	GET    /api/v1/traces/{name}     one trace's header and frame statistics
//	DELETE /api/v1/traces/{name}     remove a trace; 409 while a job holds it
//	POST   /api/v1/traces/{name}/compact  submit a low-priority compact job
//	POST   /api/v1/gc                run one synchronous retention pass
//	POST   /api/v1/jobs              submit a job; 202 Accepted, 429 when the
//	                                 queue is full, 503 while draining
//	GET    /api/v1/jobs              every retained job, by ID
//	GET    /api/v1/jobs/{id}         one job's snapshot (result once done)
//	GET    /api/v1/jobs/{id}/stream  NDJSON stream of state transitions
//	GET    /api/v1/jobs/{id}/timeline  the job's span timeline as Chrome
//	                                 trace-event JSON (chrome://tracing)
//	DELETE /api/v1/jobs/{id}         cancel (queued: immediate; running: the
//	                                 job's context is canceled and the replay
//	                                 layers unwind at their next gated point)
//	GET    /api/v1/debug/spans       recent HTTP request spans, Chrome JSON
//	GET    /metrics                  Prometheus text: scheduler + store state,
//	                                 route latency, and the process-wide
//	                                 obs.Default() histograms
//	GET    /healthz                  liveness
//
// Job state machine and backpressure rules are documented in DESIGN.md
// ("The trace service") and docs/ARCHITECTURE.md.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Config parameterizes a Server.
type Config struct {
	// Store is the trace directory served; required.
	Store *trace.Store
	// Workers bounds concurrently executing jobs (<= 0: GOMAXPROCS).
	Workers int
	// QueueDepth bounds waiting jobs; submissions past it get 429
	// (<= 0: sched.DefaultQueueDepth).
	QueueDepth int
	// GC is the store retention policy. A zero policy disables the
	// background pass (POST /api/v1/gc still runs manual passes, which are
	// then no-op scans). Pinned traces — including those the daemon pins
	// itself when an analyze job surfaces findings — are never removed.
	GC trace.GCPolicy
	// GCInterval is the background GC cadence; <= 0 with a non-zero policy
	// selects DefaultGCInterval.
	GCInterval time.Duration
}

// DefaultGCInterval is the background retention pass cadence when a GC
// policy is configured without an explicit interval.
const DefaultGCInterval = time.Minute

// Server owns the scheduler and the HTTP handler. It implements
// http.Handler; plug it into any http.Server (cmd/ir-served does).
type Server struct {
	store *trace.Store
	sched *sched.Scheduler
	mux   *http.ServeMux
	start time.Time

	// eventsReplayed counts recorded events re-executed by completed
	// replay/segment/analyze jobs, plus events recorded by record jobs —
	// the daemon's throughput numerator.
	eventsReplayed atomic.Int64

	// recording reserves trace names with an in-flight record or compact
	// job (both rewrite the named file): two concurrent writers of one name
	// would truncate and interleave writes into the same store file. The
	// reservation is taken when the job starts executing and checked at
	// submission for an early 409. reading counts running jobs replaying or
	// analyzing a name; together they are the "held" state that blocks
	// DELETE /traces/{name} and shields a trace from a GC pass.
	recMu     sync.Mutex
	recording map[string]struct{}
	reading   map[string]int

	// GC state: the configured policy, the background loop's stop channel,
	// and the cumulative reclaim counters /metrics exports.
	gcPolicy    trace.GCPolicy
	gcStop      chan struct{}
	gcStopOnce  sync.Once
	gcRuns      atomic.Int64
	gcReclaimed atomic.Int64

	// Telemetry: the /metrics registry, the bounded ring of recent HTTP
	// request spans, and the per-job span recorders the timeline endpoint
	// serves (FIFO-bounded at maxTimelines; see telemetry.go).
	met       *serverMetrics
	reqSpans  *obs.Recorder
	tlMu      sync.Mutex
	timelines map[uint64]*obs.Recorder
	tlOrder   []uint64
}

func (s *Server) tryReserveRecord(name string) bool {
	s.recMu.Lock()
	defer s.recMu.Unlock()
	if _, busy := s.recording[name]; busy {
		return false
	}
	s.recording[name] = struct{}{}
	return true
}

func (s *Server) releaseRecord(name string) {
	s.recMu.Lock()
	delete(s.recording, name)
	s.recMu.Unlock()
}

func (s *Server) recordHeld(name string) bool {
	s.recMu.Lock()
	defer s.recMu.Unlock()
	_, busy := s.recording[name]
	return busy
}

// holdRead marks a running job as consuming the named trace; the returned
// func releases it.
func (s *Server) holdRead(name string) func() {
	s.recMu.Lock()
	s.reading[name]++
	s.recMu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			s.recMu.Lock()
			if s.reading[name]--; s.reading[name] <= 0 {
				delete(s.reading, name)
			}
			s.recMu.Unlock()
		})
	}
}

// held reports whether any running job — writer or reader — is using the
// named trace.
func (s *Server) held(name string) bool {
	s.recMu.Lock()
	defer s.recMu.Unlock()
	_, rec := s.recording[name]
	return rec || s.reading[name] > 0
}

// New builds a Server and starts its worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("server: Config.Store is required")
	}
	s := &Server{
		store:     cfg.Store,
		sched:     sched.New(sched.Options{Workers: cfg.Workers, QueueDepth: cfg.QueueDepth}),
		mux:       http.NewServeMux(),
		start:     time.Now(),
		recording: make(map[string]struct{}),
		reading:   make(map[string]int),
		gcPolicy:  cfg.GC,
		gcStop:    make(chan struct{}),
		met:       newServerMetrics(),
		reqSpans:  obs.NewRecorder(1024),
		timelines: make(map[uint64]*obs.Recorder),
	}
	s.route("GET /api/v1/traces", "traces", s.handleTraces)
	s.route("GET /api/v1/traces/{name}", "trace", s.handleTrace)
	s.route("DELETE /api/v1/traces/{name}", "trace_delete", s.handleDeleteTrace)
	s.route("POST /api/v1/traces/{name}/compact", "trace_compact", s.handleCompactTrace)
	s.route("POST /api/v1/gc", "gc", s.handleGC)
	s.route("POST /api/v1/jobs", "jobs_submit", s.handleSubmit)
	s.route("GET /api/v1/jobs", "jobs", s.handleJobs)
	s.route("GET /api/v1/jobs/{id}", "job", s.handleJob)
	s.route("GET /api/v1/jobs/{id}/stream", "job_stream", s.handleJobStream)
	s.route("GET /api/v1/jobs/{id}/timeline", "job_timeline", s.handleJobTimeline)
	s.route("DELETE /api/v1/jobs/{id}", "job_cancel", s.handleCancel)
	s.route("GET /api/v1/debug/spans", "debug_spans", s.handleDebugSpans)
	s.route("GET /metrics", "metrics", s.handleMetrics)
	s.route("GET /healthz", "healthz", s.handleHealthz)
	if cfg.GC.MaxBytes > 0 || cfg.GC.MaxAge > 0 {
		interval := cfg.GCInterval
		if interval <= 0 {
			interval = DefaultGCInterval
		}
		go s.gcLoop(interval)
	}
	return s, nil
}

// ServeHTTP dispatches to the API routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Scheduler exposes the job scheduler (tests, the daemon's drain path).
func (s *Server) Scheduler() *sched.Scheduler { return s.sched }

// Drain stops accepting jobs and the GC loop, lets accepted work finish
// (canceling it if ctx expires first), and returns when every worker
// goroutine exited.
func (s *Server) Drain(ctx context.Context) error {
	s.gcStopOnce.Do(func() { close(s.gcStop) })
	return s.sched.Drain(ctx)
}

// gcLoop runs the configured retention policy at the configured cadence
// until Drain.
func (s *Server) gcLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.runGC()
		case <-s.gcStop:
			return
		}
	}
}

// runGC executes one retention pass, shielding traces running jobs hold,
// and feeds the cumulative counters /metrics exports.
func (s *Server) runGC() (trace.GCStats, error) {
	pol := s.gcPolicy
	pol.Keep = s.held
	stats, err := s.store.GC(pol)
	if err != nil {
		return stats, err
	}
	s.gcRuns.Add(1)
	s.gcReclaimed.Add(stats.ReclaimedBytes)
	return stats, nil
}

// --- traces ---

// TraceEntry is the JSON shape of one store entry — shared by the
// daemon's /traces endpoints and `ir-trace ls -json`, so the two surfaces
// cannot drift field by field.
type TraceEntry struct {
	Name        string `json:"name"`
	Path        string `json:"path"`
	App         string `json:"app,omitempty"`
	Module      string `json:"module,omitempty"`
	Version     int    `json:"version,omitempty"`
	Epochs      int    `json:"epochs"`
	Events      int64  `json:"events"`
	Checkpoints int    `json:"checkpoints"`
	Keyframes   int    `json:"keyframes"`
	Bytes       int64  `json:"bytes"`
	Complete    bool   `json:"complete"`
	// Indexed reports whether the statistics came from the v3 index footer.
	Indexed bool   `json:"indexed"`
	Error   string `json:"error,omitempty"`
}

// NewTraceEntry converts a store entry to its JSON shape.
func NewTraceEntry(e trace.Entry) TraceEntry {
	out := TraceEntry{
		Name:        e.Name,
		Path:        e.Path,
		App:         e.Header.App,
		Version:     e.Header.Version,
		Epochs:      e.Epochs,
		Events:      e.Events,
		Checkpoints: e.Checkpoints,
		Keyframes:   e.Keyframes,
		Bytes:       e.Size,
		Complete:    e.Complete,
		Indexed:     e.Indexed,
	}
	if e.Header.ModuleHash != 0 {
		out.Module = fmt.Sprintf("%016x", e.Header.ModuleHash)
	}
	if e.Err != nil {
		out.Error = e.Err.Error()
	}
	return out
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	entries, err := s.store.List()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	out := make([]TraceEntry, len(entries))
	for i, e := range entries {
		out[i] = NewTraceEntry(e)
	}
	writeJSON(w, http.StatusOK, map[string]any{"traces": out})
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	entry, err := s.store.Entry(r.PathValue("name"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, NewTraceEntry(entry))
}

// handleDeleteTrace removes a stored trace (and its pin). 409 while any
// running job holds the name — a record/compact writer or a replay/analyze
// reader. The held check and the remove do not exchange a lock with job
// startup; the residual race is harmless (a reader that wins it keeps its
// open descriptor, POSIX semantics).
func (s *Server) handleDeleteTrace(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if s.held(name) {
		httpError(w, http.StatusConflict, fmt.Errorf("trace %q is held by a running job", name))
		return
	}
	if err := s.store.Remove(name); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, fs.ErrNotExist) {
			status = http.StatusNotFound
		}
		httpError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"removed": name})
}

// handleCompactTrace submits a compact job for the named trace — low
// priority unless the (optional) body raises it, so housekeeping yields
// the worker pool to recording and analysis.
func (s *Server) handleCompactTrace(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Priority      string `json:"priority"`
		KeyframeEvery int    `json:"keyframe_every"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil && !errors.Is(err, io.EOF) {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad compact request: %w", err))
		return
	}
	if body.Priority == "" {
		body.Priority = "low"
	}
	s.submit(w, &JobRequest{
		Kind:          "compact",
		Trace:         r.PathValue("name"),
		Priority:      body.Priority,
		KeyframeEvery: body.KeyframeEvery,
	})
}

// handleGC runs one synchronous retention pass and reports it.
func (s *Server) handleGC(w http.ResponseWriter, r *http.Request) {
	stats, err := s.runGC()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, stats)
}

// --- jobs ---

// JobRequest is the POST /api/v1/jobs body. Kind selects the work; the
// remaining fields parameterize it (unused ones are ignored).
type JobRequest struct {
	// Kind: "record", "replay", "segment-replay", "analyze", or "compact".
	Kind string `json:"kind"`
	// Priority: "low", "normal" (default), or "high".
	Priority string `json:"priority,omitempty"`

	// Trace names the stored recording (replay / segment-replay / analyze).
	Trace string `json:"trace,omitempty"`
	// Analyzers is the analyze job's comma-separated analyzer list
	// (default "race,leak").
	Analyzers string `json:"analyzers,omitempty"`
	// MaxReplays bounds the divergence search (0 = default).
	MaxReplays int `json:"max_replays,omitempty"`
	// NoDelay disables randomized delays on divergence retries.
	NoDelay bool `json:"no_delay,omitempty"`
	// Workers bounds a segment-replay or segmented-analyze job's internal
	// fan-out (0 = GOMAXPROCS). Other kinds occupy exactly one scheduler
	// slot.
	Workers int `json:"workers,omitempty"`
	// Segments runs an analyze job segment-parallel: the trace splits at its
	// checkpoint frames, segments replay concurrently with observation tapes
	// attached, and a sequential fold reproduces the whole-trace findings
	// (trace.AnalyzeSegments). Per-segment stage rows land in the result's
	// timing breakdown. Ignored for other kinds.
	Segments bool `json:"segments,omitempty"`

	// KeyframeEvery sets a compact job's rewritten keyframe interval
	// (<= 0: the writer default).
	KeyframeEvery int `json:"keyframe_every,omitempty"`

	// Record-job parameters.
	Record RecordRequest `json:"record"`
}

// ReplayResult is a replay or analyze job's result payload.
type ReplayResult struct {
	Trace    string `json:"trace"`
	Matched  bool   `json:"matched"`
	Attempts int    `json:"attempts"`
	Events   int64  `json:"events"`
	// Fault is a reproduced recorded fault (a success, not an error).
	Fault  string     `json:"fault,omitempty"`
	WallNS int64      `json:"wall_ns"`
	Timing *JobTiming `json:"timing,omitempty"`
}

// AnalyzeJobResult extends ReplayResult with the findings. Pinned reports
// that the daemon pinned the trace because the run surfaced findings — the
// reproducing evidence is shielded from retention GC until an operator
// unpins it.
type AnalyzeJobResult struct {
	ReplayResult
	Findings []analysis.Finding `json:"findings"`
	Pinned   bool               `json:"pinned,omitempty"`
}

// SegmentReplayResult is a segment-replay job's result payload.
type SegmentReplayResult struct {
	Trace    string     `json:"trace"`
	Segments int        `json:"segments"`
	Matched  int        `json:"matched"`
	Events   int64      `json:"events"`
	WallNS   int64      `json:"wall_ns"`
	Timing   *JobTiming `json:"timing,omitempty"`
}

// CompactResult is a compact job's result payload.
type CompactResult struct {
	Trace       string     `json:"trace"`
	OldBytes    int64      `json:"old_bytes"`
	NewBytes    int64      `json:"new_bytes"`
	Epochs      int        `json:"epochs"`
	Checkpoints int        `json:"checkpoints"`
	WallNS      int64      `json:"wall_ns"`
	Timing      *JobTiming `json:"timing,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad job request: %w", err))
		return
	}
	s.submit(w, &req)
}

// submit validates, builds, and enqueues one job request, writing the
// HTTP response — shared by POST /jobs and the per-trace compact route.
func (s *Server) submit(w http.ResponseWriter, req *JobRequest) {
	prio, err := sched.ParsePriority(req.Priority)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	job, tel, err := s.buildJob(req)
	if err != nil {
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, errNoSuchTrace):
			status = http.StatusNotFound
		case errors.Is(err, errConflict):
			status = http.StatusConflict
		}
		httpError(w, status, err)
		return
	}
	job.Priority = prio
	job.Kind = req.Kind
	info, err := s.sched.Submit(*job)
	switch {
	case errors.Is(err, sched.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, sched.ErrDraining):
		httpError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	s.putTimeline(info.ID, tel.rec)
	writeJSON(w, http.StatusAccepted, info)
}

var (
	errNoSuchTrace = errors.New("no such trace")
	errConflict    = errors.New("conflict")
)

// buildJob validates a request eagerly — a bad trace name or analyzer list
// fails the submission, not the job — and returns the scheduler job whose
// closure runs it, plus the telemetry capsule submit registers under the
// job ID for the timeline endpoint. Every closure threads its context into
// the replay runtime through core.Options.Interrupt, so DELETE cancels
// mid-execution, and opens a root span covering queue wait + execution.
func (s *Server) buildJob(req *JobRequest) (*sched.Job, *jobTel, error) {
	switch req.Kind {
	case "record":
		rr := req.Record
		if rr.App == "" {
			return nil, nil, errors.New("record job: record.app is required")
		}
		if !workloads.Known(rr.App) {
			return nil, nil, fmt.Errorf("record job: unknown app %q (known: %s; analysis corpus: %s)",
				rr.App, strings.Join(workloads.Names(), ", "),
				strings.Join(workloads.AnalysisNames(), ", "))
		}
		name := rr.Name
		if name == "" {
			name = rr.App
		}
		// Early 409 for a name already being recorded; the authoritative
		// reservation is taken when the job actually starts, so two
		// same-name jobs racing through this check serialize at run time
		// (the loser fails with a conflict) instead of interleaving writes
		// into one store file.
		if s.recordHeld(name) {
			return nil, nil, fmt.Errorf("%w: trace %q is already being recorded", errConflict, name)
		}
		tel := newJobTel("record/" + name)
		return &sched.Job{
			Name: "record/" + name,
			Run: func(ctx context.Context) (any, error) {
				root, start := tel.begin()
				defer root.End()
				if !s.tryReserveRecord(name) {
					return nil, fmt.Errorf("%w: trace %q is already being recorded", errConflict, name)
				}
				defer s.releaseRecord(name)
				res, err := RecordTraceSpan(s.store, rr, ctx.Err, root)
				if err != nil {
					return nil, err
				}
				s.eventsReplayed.Add(res.Events)
				res.Timing = tel.timing(start, 0)
				return res, nil
			},
		}, tel, nil

	case "replay", "analyze":
		if req.Trace == "" {
			return nil, nil, fmt.Errorf("%s job: trace is required", req.Kind)
		}
		var factory func() []analysis.Analyzer
		if req.Kind == "analyze" {
			spec := req.Analyzers
			if spec == "" {
				spec = "race,leak"
			}
			if _, err := analysis.FromSpec(spec); err != nil {
				return nil, nil, err
			}
			factory = func() []analysis.Analyzer {
				az, _ := analysis.FromSpec(spec) // validated above
				return az
			}
		}
		if err := s.validateTrace(req.Trace); err != nil {
			return nil, nil, err
		}
		name := req.Kind + "/" + req.Trace
		opts := core.Options{MaxReplays: req.MaxReplays, DelayOnDivergence: !req.NoDelay}
		tname := req.Trace
		segmented := req.Kind == "analyze" && req.Segments
		workers := req.Workers
		tel := newJobTel(name)
		return &sched.Job{
			Name: name,
			Run: func(ctx context.Context) (any, error) {
				root, start := tel.begin()
				defer root.End()
				release := s.holdRead(tname)
				defer release()
				// Module and trace are resolved here, not at submission: a
				// queued job must not pin a trace handle and a rebuilt
				// module for its whole time in the queue. The handle itself
				// decodes lazily — the worker streams epochs through the
				// store's frame cache as the replay consumes them.
				resolveStart := time.Now()
				job, err := ResolveJob(s.store, tname, opts)
				if err != nil {
					return nil, err
				}
				resolve := time.Since(resolveStart)
				root.Record("resolve", resolveStart, resolveStart.Add(resolve))
				defer job.Handle.Close()
				job.Opts.Interrupt = ctx.Err
				job.Span = root
				if factory == nil {
					res, err := s.runReplay(&job)
					if err != nil {
						return nil, err
					}
					res.Timing = tel.timing(start, resolve)
					return res, nil
				}
				if segmented {
					res, attrib, err := s.runAnalyzeSegments(&job, factory, workers)
					if err != nil {
						return nil, err
					}
					timing := tel.timing(start, resolve)
					for _, at := range attrib {
						timing.Segments = append(timing.Segments, SegmentTiming{
							Seg:        at.Seg,
							FirstEpoch: at.FirstEpoch,
							LastEpoch:  at.LastEpoch,
							DecodeMS:   durMS(at.Decode),
							FoldMS:     durMS(at.Fold),
							ExecuteMS:  durMS(at.Exec),
							MergeMS:    durMS(at.Merge),
							Matched:    true,
						})
					}
					res.Timing = timing
					return res, nil
				}
				res, err := s.runAnalyze(&job, factory)
				if err != nil {
					return nil, err
				}
				res.Timing = tel.timing(start, resolve)
				return res, nil
			},
		}, tel, nil

	case "segment-replay":
		if req.Trace == "" {
			return nil, nil, errors.New("segment-replay job: trace is required")
		}
		if err := s.validateTrace(req.Trace); err != nil {
			return nil, nil, err
		}
		workers := req.Workers
		tname := req.Trace
		opts := core.Options{MaxReplays: req.MaxReplays, DelayOnDivergence: !req.NoDelay}
		tel := newJobTel("segment-replay/" + tname)
		return &sched.Job{
			Name: "segment-replay/" + tname,
			Run: func(ctx context.Context) (any, error) {
				root, begin := tel.begin()
				defer root.End()
				release := s.holdRead(tname)
				defer release()
				resolveStart := time.Now()
				job, err := ResolveJob(s.store, tname, opts)
				if err != nil {
					return nil, err
				}
				resolve := time.Since(resolveStart)
				root.Record("resolve", resolveStart, resolveStart.Add(resolve))
				defer job.Handle.Close()
				job.Opts.Interrupt = ctx.Err
				job.Span = root
				start := time.Now()
				results, stats, err := trace.ReplaySegments(job, workers)
				if err != nil {
					return nil, err
				}
				s.eventsReplayed.Add(stats.Events)
				timing := tel.timing(begin, resolve)
				for _, sr := range results {
					timing.Segments = append(timing.Segments, SegmentTiming{
						Seg:        sr.Seg,
						FirstEpoch: sr.FirstEpoch,
						LastEpoch:  sr.LastEpoch,
						FoldMS:     durMS(sr.Fold),
						DecodeMS:   durMS(sr.Decode),
						ExecuteMS:  durMS(sr.Exec),
						StitchMS:   durMS(sr.Stitch),
						Matched:    sr.Matched,
					})
				}
				return &SegmentReplayResult{
					Trace:    job.Name,
					Segments: len(results),
					Matched:  stats.Matched,
					Events:   stats.Events,
					WallNS:   time.Since(start).Nanoseconds(),
					Timing:   timing,
				}, nil
			},
		}, tel, nil

	case "compact":
		if req.Trace == "" {
			return nil, nil, errors.New("compact job: trace is required")
		}
		// Unlike replay, compact accepts an incomplete trace (a crashed
		// recording compacts to a complete partial-summary trace), so the
		// submission check is existence + readability only.
		entry, err := s.store.Entry(req.Trace)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: %v", errNoSuchTrace, err)
		}
		if entry.Err != nil {
			return nil, nil, fmt.Errorf("trace %q is unreadable: %v", req.Trace, entry.Err)
		}
		tname := req.Trace
		keyEvery := req.KeyframeEvery
		tel := newJobTel("compact/" + tname)
		return &sched.Job{
			Name: "compact/" + tname,
			Run: func(ctx context.Context) (any, error) {
				root, begin := tel.begin()
				defer root.End()
				// Compact rewrites the file, so it takes the same write
				// reservation as a record job. Concurrent readers are safe —
				// the rename-in-place leaves their open descriptors on the
				// old inode and the frame cache keys on content marks.
				if !s.tryReserveRecord(tname) {
					return nil, fmt.Errorf("%w: trace %q is being written", errConflict, tname)
				}
				defer s.releaseRecord(tname)
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				start := time.Now()
				cs, err := s.store.Compact(tname, keyEvery)
				if err != nil {
					return nil, err
				}
				root.Record("compact", start, time.Now())
				return &CompactResult{
					Trace:       tname,
					OldBytes:    cs.OldBytes,
					NewBytes:    cs.NewBytes,
					Epochs:      cs.Epochs,
					Checkpoints: cs.Checkpoints,
					WallNS:      time.Since(start).Nanoseconds(),
					Timing:      tel.timing(begin, 0),
				}, nil
			},
		}, tel, nil
	}
	return nil, nil, fmt.Errorf("unknown job kind %q (record, replay, segment-replay, analyze, compact)", req.Kind)
}

// validateTrace is the cheap submission-time check for trace-consuming
// jobs: the trace must exist, scan clean, be complete, and name a program
// the resolver can rebuild. The expensive half — decoding and module
// reconstruction — happens on the worker, so queued jobs pin nothing; a
// rare late failure there (e.g. a fingerprint mismatch) fails the job
// rather than the submission.
func (s *Server) validateTrace(name string) error {
	entry, err := s.store.Entry(name)
	if err != nil {
		return fmt.Errorf("%w: %v", errNoSuchTrace, err)
	}
	if entry.Err != nil {
		return fmt.Errorf("trace %q is unreadable: %v", name, entry.Err)
	}
	if !entry.Complete {
		return fmt.Errorf("trace %q is incomplete (no summary frame)", name)
	}
	if !workloads.Known(entry.Header.App) {
		return fmt.Errorf("trace %q was recorded from unknown app %q", name, entry.Header.App)
	}
	return nil
}

// runReplay executes one replay job on the calling worker.
func (s *Server) runReplay(job *trace.Job) (*ReplayResult, error) {
	results, stats := trace.ReplayBatch([]trace.Job{*job}, 1)
	r := results[0]
	if !r.Matched {
		return nil, r.Err
	}
	s.eventsReplayed.Add(stats.Events)
	res := &ReplayResult{
		Trace:   job.Name,
		Matched: true,
		Events:  stats.Events,
		WallNS:  r.Wall.Nanoseconds(),
	}
	if r.Report != nil {
		res.Attempts = r.Report.Stats.LastReplayAttempts
	}
	if r.Err != nil {
		res.Fault = r.Err.Error()
	}
	return res, nil
}

// runAnalyze executes one analyze job on the calling worker.
func (s *Server) runAnalyze(job *trace.Job, factory func() []analysis.Analyzer) (*AnalyzeJobResult, error) {
	results, stats := trace.AnalyzeBatch([]trace.AnalyzeJob{{
		Job:          *job,
		NewAnalyzers: factory,
	}}, 1)
	return s.analyzeResult(job, &results[0], stats.Events)
}

// runAnalyzeSegments executes one analyze job segment-parallel, returning
// the per-segment attribution rows alongside for the timing breakdown.
func (s *Server) runAnalyzeSegments(job *trace.Job, factory func() []analysis.Analyzer,
	workers int) (*AnalyzeJobResult, []trace.SegmentAttribution, error) {
	r, stats, err := trace.AnalyzeSegments(trace.AnalyzeJob{
		Job:          *job,
		NewAnalyzers: factory,
	}, workers)
	if err != nil {
		return nil, nil, err
	}
	res, err := s.analyzeResult(job, &r, stats.Events)
	if err != nil {
		return nil, nil, err
	}
	return res, r.Segments, nil
}

// analyzeResult builds the job result payload from an analysis outcome,
// pinning traces whose findings make them evidence.
func (s *Server) analyzeResult(job *trace.Job, r *trace.AnalyzeResult, events int64) (*AnalyzeJobResult, error) {
	if !r.Matched {
		return nil, r.Err
	}
	s.eventsReplayed.Add(events)
	res := &AnalyzeJobResult{
		ReplayResult: ReplayResult{
			Trace:   job.Name,
			Matched: true,
			Events:  events,
			WallNS:  r.Wall.Nanoseconds(),
		},
		Findings: r.Findings,
	}
	if res.Findings == nil {
		res.Findings = []analysis.Finding{}
	}
	if r.Report != nil {
		res.Attempts = r.Report.Stats.LastReplayAttempts
	}
	if r.Err != nil {
		res.Fault = r.Err.Error()
	}
	// A trace that reproduced a finding is evidence; pin it so no
	// retention policy reclaims it out from under the investigation.
	if len(res.Findings) > 0 {
		if err := s.store.Pin(job.Name); err == nil {
			res.Pinned = true
		}
	}
	return res, nil
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.sched.Jobs()})
}

func (s *Server) jobID(w http.ResponseWriter, r *http.Request) (uint64, bool) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad job id %q", r.PathValue("id")))
		return 0, false
	}
	return id, true
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id, ok := s.jobID(w, r)
	if !ok {
		return
	}
	info, err := s.sched.Info(id)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleJobStream streams a job's state transitions as NDJSON until the
// terminal snapshot (which carries the result and findings), then closes.
func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	id, ok := s.jobID(w, r)
	if !ok {
		return
	}
	ch, err := s.sched.Watch(id)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		select {
		case info, open := <-ch:
			if !open {
				return
			}
			if err := enc.Encode(info); err != nil {
				return // client went away
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id, ok := s.jobID(w, r)
	if !ok {
		return
	}
	info, err := s.sched.Cancel(id)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"uptime": time.Since(s.start).String(),
	})
}

// --- plumbing ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]any{"error": err.Error()})
}
