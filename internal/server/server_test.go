// End-to-end exercise of the trace service: concurrent clients over a
// seeded store, findings identical to the single-client run byte for byte,
// priority fairness and 429 backpressure under a full queue, cancellation
// mid-job, and a graceful drain that leaves no goroutines behind (the CI
// race job runs this file under -race).
//
// The corpus programs used here are the host-race-safe ones (leak corpus
// and race-free controls): deliberately racy programs are genuine Go-level
// races by design and are exercised without -race elsewhere.
package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/trace"
)

// seedStore records the host-race-safe corpus programs into a fresh store.
func seedStore(t *testing.T, names ...string) *trace.Store {
	t.Helper()
	st, err := trace.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if _, err := server.RecordTrace(st, server.RecordRequest{App: name}, nil); err != nil {
			t.Fatalf("recording %s: %v", name, err)
		}
	}
	return st
}

// referenceFindings runs the single-client analysis the server results must
// match byte for byte.
func referenceFindings(t *testing.T, st *trace.Store, name string) []byte {
	t.Helper()
	job, err := server.ResolveJob(st, name, core.Options{DelayOnDivergence: true})
	if err != nil {
		t.Fatal(err)
	}
	results, _ := trace.AnalyzeBatch([]trace.AnalyzeJob{{
		Job: job,
		NewAnalyzers: func() []analysis.Analyzer {
			az, _ := analysis.FromSpec("race,leak")
			return az
		},
	}}, 1)
	if !results[0].Matched {
		t.Fatalf("reference analysis of %s failed: %v", name, results[0].Err)
	}
	findings := results[0].Findings
	if findings == nil {
		findings = []analysis.Finding{}
	}
	b, err := json.Marshal(findings)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// client is a minimal typed HTTP client for the API.
type client struct {
	t    *testing.T
	base string
	http *http.Client
}

func (c *client) submit(t *testing.T, body string) sched.Info {
	t.Helper()
	info, status := c.trySubmit(t, body)
	if status != http.StatusAccepted {
		t.Fatalf("submit %s: status %d", body, status)
	}
	return info
}

func (c *client) trySubmit(t *testing.T, body string) (sched.Info, int) {
	t.Helper()
	resp, err := c.http.Post(c.base+"/api/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info sched.Info
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return info, resp.StatusCode
}

// wait streams the job until its terminal snapshot and returns it.
func (c *client) wait(t *testing.T, id uint64) sched.Info {
	t.Helper()
	resp, err := c.http.Get(fmt.Sprintf("%s/api/v1/jobs/%d/stream", c.base, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	var last sched.Info
	for {
		var info sched.Info
		if err := dec.Decode(&info); err != nil {
			break // stream closed after the terminal snapshot
		}
		last = info
	}
	if !last.State.Terminal() {
		t.Fatalf("job %d stream ended in non-terminal state %v", id, last.State)
	}
	return last
}

func (c *client) info(t *testing.T, id uint64) sched.Info {
	t.Helper()
	resp, err := c.http.Get(fmt.Sprintf("%s/api/v1/jobs/%d", c.base, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info sched.Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

func (c *client) cancel(t *testing.T, id uint64) sched.Info {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/api/v1/jobs/%d", c.base, id), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel job %d: status %d", id, resp.StatusCode)
	}
	var info sched.Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

// resultFindings re-marshals the findings array embedded in a terminal
// analyze job's result, for byte comparison against the reference.
func resultFindings(t *testing.T, info sched.Info) []byte {
	t.Helper()
	raw, err := json.Marshal(info.Result)
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Matched  bool               `json:"matched"`
		Findings []analysis.Finding `json:"findings"`
	}
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Matched {
		t.Fatalf("analyze job %d did not match: %+v", info.ID, info)
	}
	if res.Findings == nil {
		res.Findings = []analysis.Finding{}
	}
	b, err := json.Marshal(res.Findings)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// waitState polls a job until it reaches want (failing if it lands in a
// terminal state other than want first).
func waitState(t *testing.T, c *client, id uint64, want sched.State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		info := c.info(t, id)
		if info.State == want {
			return
		}
		if info.State.Terminal() {
			t.Fatalf("job %d reached %v (%s) while waiting for %v", id, info.State, info.Err, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %d never reached %v", id, want)
}

// TestServerConcurrentClients drives N analyze + M replay jobs from
// concurrent clients and requires every analyze job's findings to equal the
// single-client run byte for byte.
func TestServerConcurrentClients(t *testing.T) {
	corpus := []string{"leak-dropped", "leak-overwrite", "norace-locked"}
	st := seedStore(t, corpus...)
	ref := make(map[string][]byte)
	for _, name := range corpus {
		ref[name] = referenceFindings(t, st, name)
	}

	srv, err := server.New(server.Config{Store: st, Workers: 4, QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Scheduler().Shutdown()

	const analyzePerTrace = 3 // 9 analyze jobs
	const replayJobs = 4
	var wg sync.WaitGroup
	errCh := make(chan error, analyzePerTrace*len(corpus)+replayJobs)

	for i := 0; i < analyzePerTrace; i++ {
		for _, name := range corpus {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				c := &client{base: ts.URL, http: ts.Client()}
				info := c.submit(t, fmt.Sprintf(`{"kind":"analyze","trace":%q}`, name))
				final := c.wait(t, info.ID)
				if final.State != sched.Done {
					errCh <- fmt.Errorf("analyze %s job %d: %v (%s)", name, info.ID, final.State, final.Err)
					return
				}
				if got := resultFindings(t, final); !bytes.Equal(got, ref[name]) {
					errCh <- fmt.Errorf("analyze %s findings differ from the single-client run:\nserver: %s\nsingle: %s",
						name, got, ref[name])
				}
			}(name)
		}
	}
	for i := 0; i < replayJobs; i++ {
		name := corpus[i%len(corpus)]
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			c := &client{base: ts.URL, http: ts.Client()}
			info := c.submit(t, fmt.Sprintf(`{"kind":"replay","trace":%q}`, name))
			final := c.wait(t, info.ID)
			if final.State != sched.Done {
				errCh <- fmt.Errorf("replay %s job %d: %v (%s)", name, info.ID, final.State, final.Err)
			}
		}(name)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// The store served every job from at most one decode per trace.
	stats := st.Stats()
	if stats.Misses > uint64(2*len(corpus)) || stats.Hits == 0 {
		t.Errorf("decode cache ineffective under fan-out: %+v", stats)
	}
}

// TestServerFairnessBackpressureCancel pins scheduler behavior through the
// HTTP surface with a single worker: a long job occupies it, equal-priority
// jobs start in submission order, a high-priority job jumps them, the
// queue-depth bound turns into 429, and DELETE cancels both queued and
// running jobs (the running replay unwinds mid-execution).
func TestServerFairnessBackpressureCancel(t *testing.T) {
	st := seedStore(t, "norace-locked")
	// relay-service: think-time dominated, so its replay runs long enough
	// to observe and cancel mid-job deterministically.
	if _, err := server.RecordTrace(st, server.RecordRequest{App: "relay-service", Scale: 2}, nil); err != nil {
		t.Fatal(err)
	}

	srv, err := server.New(server.Config{Store: st, Workers: 1, QueueDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Scheduler().Shutdown()
	c := &client{base: ts.URL, http: ts.Client()}

	// Occupy the only worker with the slow replay.
	slow := c.submit(t, `{"kind":"replay","trace":"relay-service"}`)
	waitState(t, c, slow.ID, sched.Running)

	// Fill the queue: two normal jobs, then a high-priority one.
	n1 := c.submit(t, `{"kind":"analyze","trace":"norace-locked"}`)
	n2 := c.submit(t, `{"kind":"analyze","trace":"norace-locked"}`)
	hi := c.submit(t, `{"kind":"analyze","trace":"norace-locked","priority":"high"}`)

	// The queue (depth 3) is full: the next submission is refused with 429.
	if _, status := c.trySubmit(t, `{"kind":"analyze","trace":"norace-locked"}`); status != http.StatusTooManyRequests {
		t.Fatalf("over-depth submit: status %d, want 429", status)
	}

	// Cancel the running job mid-replay: it must terminate canceled, well
	// before its think time elapses.
	canceled := c.cancel(t, slow.ID)
	if canceled.State != sched.Running && !canceled.State.Terminal() {
		t.Fatalf("cancel of running job returned state %v", canceled.State)
	}
	final := c.wait(t, slow.ID)
	if final.State != sched.Canceled {
		t.Fatalf("running job after cancel: %v (%s), want canceled", final.State, final.Err)
	}

	// Queue order: high before the earlier normals, normals in FIFO order.
	fn1, fn2, fhi := c.wait(t, n1.ID), c.wait(t, n2.ID), c.wait(t, hi.ID)
	for _, f := range []sched.Info{fn1, fn2, fhi} {
		if f.State != sched.Done {
			t.Fatalf("job %d: %v (%s)", f.ID, f.State, f.Err)
		}
	}
	if !fhi.Started.Before(fn1.Started) || !fhi.Started.Before(fn2.Started) {
		t.Errorf("high-priority job did not jump the queue: hi=%v n1=%v n2=%v",
			fhi.Started, fn1.Started, fn2.Started)
	}
	if !fn1.Started.Before(fn2.Started) {
		t.Errorf("equal-priority jobs out of submission order: n1=%v n2=%v", fn1.Started, fn2.Started)
	}

	// Cancel a queued job outright.
	q := c.submit(t, `{"kind":"analyze","trace":"norace-locked","priority":"low"}`)
	// It may already be running (the queue is empty now); both cancels are
	// legal, but the terminal state must be canceled either way.
	c.cancel(t, q.ID)
	if final := c.wait(t, q.ID); final.State != sched.Canceled && final.State != sched.Done {
		t.Fatalf("canceled queued job: %v", final.State)
	}
}

// TestServerRecordConflictAndValidation: concurrent recordings of one
// trace name are refused with 409 (never interleaved into one file), and
// an unknown app is rejected at submission, not at run time.
func TestServerRecordConflictAndValidation(t *testing.T) {
	st, err := trace.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Store: st, Workers: 2, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Scheduler().Shutdown()
	c := &client{base: ts.URL, http: ts.Client()}

	if _, status := c.trySubmit(t, `{"kind":"record","record":{"app":"no-such-app"}}`); status != http.StatusBadRequest {
		t.Fatalf("unknown record app: status %d, want 400", status)
	}

	// relay-service records slowly (think time), so the name reservation is
	// observably held while the first job runs.
	body := `{"kind":"record","record":{"app":"relay-service","scale":2}}`
	first := c.submit(t, body)
	waitState(t, c, first.ID, sched.Running)
	// The name reservation lands as the job's first statement; the
	// recording itself runs ~1s of think time, so after a short grace the
	// hold is observable without racing a real duplicate submission.
	time.Sleep(200 * time.Millisecond)
	if _, status := c.trySubmit(t, body); status != http.StatusConflict {
		t.Fatalf("second same-name record submission: status %d, want 409", status)
	}
	if final := c.wait(t, first.ID); final.State != sched.Done {
		t.Fatalf("first record job: %v (%s)", final.State, final.Err)
	}
	// With the first done, the name is free again.
	second := c.submit(t, body)
	if final := c.wait(t, second.ID); final.State != sched.Done {
		t.Fatalf("re-record after release: %v (%s)", final.State, final.Err)
	}
	entries, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Err != nil || !entries[0].Complete {
		t.Fatalf("store after serialized re-record: %+v", entries)
	}
}

// TestServerEndpointsAndDrain covers the trace endpoints, bad requests,
// /metrics, and the drain-leaves-no-goroutines guarantee.
func TestServerEndpointsAndDrain(t *testing.T) {
	before := runtime.NumGoroutine()

	st := seedStore(t, "leak-dropped")
	srv, err := server.New(server.Config{Store: st, Workers: 2, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	c := &client{base: ts.URL, http: ts.Client()}

	// Record through the API, then inspect it.
	rec := c.submit(t, `{"kind":"record","record":{"app":"norace-locked","name":"via-api","seed":7}}`)
	if final := c.wait(t, rec.ID); final.State != sched.Done {
		t.Fatalf("record job: %v (%s)", final.State, final.Err)
	}
	resp, err := c.http.Get(ts.URL + "/api/v1/traces/via-api")
	if err != nil {
		t.Fatal(err)
	}
	var entry struct {
		Name     string `json:"name"`
		App      string `json:"app"`
		Complete bool   `json:"complete"`
		Events   int64  `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&entry); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if entry.App != "norace-locked" || !entry.Complete || entry.Events == 0 {
		t.Fatalf("trace entry after API record: %+v", entry)
	}

	// Error surfaces: unknown trace (404 at submit), unknown kind (400),
	// unknown job (404).
	if _, status := c.trySubmit(t, `{"kind":"analyze","trace":"nope"}`); status != http.StatusNotFound {
		t.Fatalf("analyze of missing trace: status %d, want 404", status)
	}
	if _, status := c.trySubmit(t, `{"kind":"frobnicate"}`); status != http.StatusBadRequest {
		t.Fatalf("unknown kind: status %d, want 400", status)
	}
	if resp, err := c.http.Get(ts.URL + "/api/v1/jobs/9999"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown job: status %d, want 404", resp.StatusCode)
		}
	}

	// /metrics carries the load-bearing gauges.
	resp, err = c.http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"ir_served_queue_depth", "ir_served_jobs_total{state=\"done\"} 1",
		"ir_served_events_replayed_total", "ir_served_store_cache_hit_rate",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	// Graceful drain: accepted jobs finish, then no goroutines survive.
	done := c.submit(t, `{"kind":"analyze","trace":"leak-dropped"}`)
	if err := srv.Drain(contextWithTimeout(t, 30*time.Second)); err != nil {
		t.Fatal(err)
	}
	if final := c.info(t, done.ID); final.State != sched.Done {
		t.Fatalf("job accepted before drain: %v (%s)", final.State, final.Err)
	}
	if _, status := c.trySubmit(t, `{"kind":"analyze","trace":"leak-dropped"}`); status != http.StatusServiceUnavailable {
		t.Fatalf("submit after drain: status %d, want 503", status)
	}
	ts.Close()
	c.http.CloseIdleConnections()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > before {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutines leaked across drain: %d -> %d\n%s",
			before, now, buf[:runtime.Stack(buf, true)])
	}
}

func contextWithTimeout(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}
