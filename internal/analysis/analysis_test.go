package analysis

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hostrace"
	"repro/internal/mem"
	"repro/internal/record"
	"repro/internal/tir"
	"repro/internal/workloads"
)

// recordEpochs runs mod under full recording and returns the flushed epoch
// logs plus the recording report.
func recordEpochs(t testing.TB, mod *tir.Module, opts core.Options,
	setup func(*core.Runtime)) ([]*record.EpochLog, *core.Report) {
	t.Helper()
	var epochs []*record.EpochLog
	opts.TraceSink = func(ep *record.EpochLog) error {
		epochs = append(epochs, ep)
		return nil
	}
	rt, err := core.New(mod, opts)
	if err != nil {
		t.Fatal(err)
	}
	if setup != nil {
		setup(rt)
	}
	rep, err := rt.Run()
	if err != nil {
		t.Fatalf("recording: %v", err)
	}
	if len(epochs) == 0 {
		t.Fatal("no epochs recorded")
	}
	return epochs, rep
}

// pairKey returns the unordered innermost-function pair of a race finding.
func pairKey(f Finding) [2]string {
	if len(f.Sites) != 2 {
		return [2]string{"?", "?"}
	}
	a, b := f.Sites[0].Func(), f.Sites[1].Func()
	if b < a {
		a, b = b, a
	}
	return [2]string{a, b}
}

// TestRaceCorpusGroundTruth: on every corpus entry the race analyzer must
// blame exactly the known racing pairs — each expected pair reported with
// both call stacks, and no pair outside the expected set (zero false
// positives; the norace-* controls expect the empty set).
//
//ir:racy executes the deliberately-racy analysis corpus to check blame assignment
func TestRaceCorpusGroundTruth(t *testing.T) {
	for _, c := range workloads.AnalysisCorpus() {
		if c.Leaks > 0 {
			continue // leak entries are covered below
		}
		c := c
		t.Run(c.Name, func(t *testing.T) {
			if hostrace.Enabled && len(c.RacePairs) > 0 {
				t.Skip("corpus program races on purpose; skipped under the host race detector")
			}
			mod := c.Build()
			epochs, recRep := recordEpochs(t, mod, core.Options{Seed: 11}, nil)

			race := NewRaceDetector()
			rep, findings, err := Run(mod, epochs, core.Options{}, nil, race)
			if err != nil {
				t.Fatalf("analysis replay: %v", err)
			}
			if rep.Exit != recRep.Exit || rep.Output != recRep.Output {
				t.Fatalf("analysis replay diverged from recording: exit %d/%d",
					rep.Exit, recRep.Exit)
			}

			expected := map[[2]string]bool{}
			for _, p := range c.RacePairs {
				a, b := p[0], p[1]
				if b < a {
					a, b = b, a
				}
				expected[[2]string{a, b}] = true
			}
			seen := map[[2]string]bool{}
			for _, f := range findings {
				k := pairKey(f)
				if !expected[k] {
					t.Errorf("false positive: %v", f)
					continue
				}
				seen[k] = true
				for i, s := range f.Sites {
					if len(s.Stack) == 0 {
						t.Errorf("finding %v: site %d has no call stack", k, i)
					}
				}
			}
			for k := range expected {
				if !seen[k] {
					t.Errorf("known racing pair %v not reported (findings: %v)", k, findings)
				}
			}
		})
	}
}

// TestLeakCorpusGroundTruth: the leak analyzer must report exactly the
// expected number of leaks, each blamed at a known allocation site with a
// call stack, and stay silent on the leak-free control.
func TestLeakCorpusGroundTruth(t *testing.T) {
	for _, c := range workloads.AnalysisCorpus() {
		if len(c.RacePairs) > 0 || (c.Leaks == 0 && c.Name != "noleak-freed") {
			continue
		}
		c := c
		t.Run(c.Name, func(t *testing.T) {
			mod := c.Build()
			epochs, _ := recordEpochs(t, mod, core.Options{Seed: 5}, nil)

			leak := NewLeakDetector()
			_, findings, err := Run(mod, epochs, core.Options{}, nil, leak)
			if err != nil {
				t.Fatalf("analysis replay: %v", err)
			}
			if len(findings) != c.Leaks {
				t.Fatalf("want %d leak(s), got %d: %v", c.Leaks, len(findings), findings)
			}
			sites := map[string]bool{}
			for _, s := range c.LeakSites {
				sites[s] = true
			}
			blamed := map[string]bool{}
			for _, f := range findings {
				if len(f.Sites) != 1 || len(f.Sites[0].Stack) == 0 {
					t.Fatalf("leak finding without an allocation-site stack: %v", f)
				}
				fn := f.Sites[0].Func()
				if !sites[fn] {
					t.Errorf("leak blamed at unexpected site %q: %v", fn, f)
				}
				blamed[fn] = true
			}
			for s := range sites {
				if !blamed[s] {
					t.Errorf("known leak site %q never blamed", s)
				}
			}
		})
	}
}

// TestRaceAnalyzerOnRaceFreeWorkloads: zero false positives on real
// (race-free) evaluated applications — mutex striping, barriers, condition
// variables, and allocator traffic must all be ordered by the delivered
// happens-before edges.
func TestRaceAnalyzerOnRaceFreeWorkloads(t *testing.T) {
	for _, name := range []string{"blackscholes", "fluidanimate", "streamcluster"} {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, ok := workloads.ByName(name)
			if !ok {
				t.Fatalf("unknown app %s", name)
			}
			spec.Iters = 8
			mod, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			epochs, _ := recordEpochs(t, mod, core.Options{Seed: 23},
				func(rt *core.Runtime) { spec.SetupOS(rt.OS()) })

			race := NewRaceDetector()
			_, findings, err := Run(mod, epochs, core.Options{DelayOnDivergence: true},
				func(rt *core.Runtime) error { spec.SetupOS(rt.OS()); return nil }, race)
			if err != nil {
				t.Fatalf("analysis replay: %v", err)
			}
			for _, f := range findings {
				t.Errorf("false positive on race-free %s: %v", name, f)
			}
		})
	}
}

// TestAnalyzerCompositionIdentity: several analyzers attached to one replay
// must not perturb identity — exit value, program output, and the final
// heap image must match a bare replay byte for byte.
func TestAnalyzerCompositionIdentity(t *testing.T) {
	spec, ok := workloads.ByName("streamcluster")
	if !ok {
		t.Fatal("unknown app streamcluster")
	}
	spec.Iters = 8
	mod, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	epochs, _ := recordEpochs(t, mod, core.Options{Seed: 31},
		func(rt *core.Runtime) { spec.SetupOS(rt.OS()) })

	replay := func(obs ...core.Observer) (*core.Report, []byte) {
		t.Helper()
		rt, err := core.PrepareReplay(mod, epochs, core.Options{
			DelayOnDivergence: true, Observers: obs,
		})
		if err != nil {
			t.Fatal(err)
		}
		spec.SetupOS(rt.OS())
		rep, err := rt.RunReplay()
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		m := rt.Mem()
		img, err := m.ReadBytes(mem.HeapBase, int(m.Config().HeapSize))
		if err != nil {
			t.Fatal(err)
		}
		return rep, img
	}

	bareRep, bareImg := replay()
	race, leak, prof := NewRaceDetector(), NewLeakDetector(), NewProfile()
	obsRep, obsImg := replay(race, leak, prof)

	if obsRep.Exit != bareRep.Exit {
		t.Errorf("analyzers perturbed exit: %d vs %d", obsRep.Exit, bareRep.Exit)
	}
	if obsRep.Output != bareRep.Output {
		t.Errorf("analyzers perturbed output")
	}
	for i := range bareImg {
		if bareImg[i] != obsImg[i] {
			t.Fatalf("analyzers perturbed the heap image at offset %#x", i)
		}
	}
	// The analyzers must actually have observed the execution.
	if prof.Syncs.Load() == 0 || prof.Accesses.Load() == 0 || prof.Allocs.Load() == 0 {
		t.Errorf("profile analyzer observed nothing: syncs=%d accesses=%d allocs=%d",
			prof.Syncs.Load(), prof.Accesses.Load(), prof.Allocs.Load())
	}
}

// runInSituWithReplays runs mod in-situ with the analyzers attached and a
// legacy tool hook forcing one re-execution at every epoch boundary, so
// every boundary's commit/stage/restore path is exercised.
func runInSituWithReplays(t *testing.T, mod *tir.Module, eventCap int, analyzers ...core.Observer) int {
	t.Helper()
	replayedAt := map[int64]bool{}
	opts := core.Options{
		Seed:              13,
		EventCap:          eventCap,
		MaxReplays:        64,
		DelayOnDivergence: true,
		Observers:         analyzers,
		OnEpochEnd: func(rt *core.Runtime, info core.EpochEndInfo) core.Decision {
			if !replayedAt[info.Epoch] {
				replayedAt[info.Epoch] = true
				return core.Replay
			}
			return core.Proceed
		},
	}
	rt, err := core.New(mod, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatalf("in-situ run: %v", err)
	}
	if len(replayedAt) == 0 {
		t.Fatal("no in-situ replay ever happened")
	}
	return len(replayedAt)
}

// TestInSituAnalyzersSurviveRollback: analyzers attached to an in-situ
// runtime must survive tool-driven replays — a rollback restores the state
// committed for the current epoch's beginning instead of wiping the whole
// run, so allocation sites from earlier epochs stay blamed and no
// happens-before edges are lost.
func TestInSituAnalyzersSurviveRollback(t *testing.T) {
	// Race-free multi-epoch program: replays at every boundary must not
	// manufacture findings.
	c, ok := workloads.AnalysisByName("norace-locked")
	if !ok {
		t.Fatal("unknown case norace-locked")
	}
	race := NewRaceDetector()
	runInSituWithReplays(t, c.Build(), 48, race)
	for _, f := range race.Findings() {
		t.Errorf("false positive after in-situ rollbacks: %v", f)
	}

	// Leaky program whose leaks happen in the FIRST epoch, padded with lock
	// traffic so later epochs (and their forced rollbacks) follow: the
	// allocation sites recorded before those rollbacks must survive them.
	leakMod := func() *tir.Module {
		mb := tir.NewModuleBuilder()
		gM := mb.Global("mutex", 8)
		leakFn := mb.Func("leak_loop", 0)
		{
			sz, p, i, lim, cond := leakFn.NewReg(), leakFn.NewReg(), leakFn.NewReg(), leakFn.NewReg(), leakFn.NewReg()
			leakFn.ConstI(i, 0)
			leakFn.ConstI(lim, 4)
			loop, done := leakFn.NewLabel(), leakFn.NewLabel()
			leakFn.Bind(loop)
			leakFn.Bin(tir.LtS, cond, i, lim)
			leakFn.Brz(cond, done)
			leakFn.ConstI(sz, 48)
			leakFn.Intrin(p, tir.IntrinMalloc, sz)
			leakFn.Store64(i, p, 0)
			leakFn.AddI(i, i, 1)
			leakFn.Jmp(loop)
			leakFn.Bind(done)
			leakFn.Ret(-1)
			leakFn.Seal()
		}
		m := mb.Func("main", 0)
		m.Call(-1, leakFn.Index())
		ma, i, lim, cond := m.NewReg(), m.NewReg(), m.NewReg(), m.NewReg()
		m.GlobalAddr(ma, gM)
		m.ConstI(i, 0)
		m.ConstI(lim, 60)
		loop, done := m.NewLabel(), m.NewLabel()
		m.Bind(loop)
		m.Bin(tir.LtS, cond, i, lim)
		m.Brz(cond, done)
		m.Intrin(-1, tir.IntrinMutexLock, ma)
		m.Intrin(-1, tir.IntrinMutexUnlock, ma)
		m.AddI(i, i, 1)
		m.Jmp(loop)
		m.Bind(done)
		m.Ret(-1)
		m.Seal()
		mb.SetEntry("main")
		return mb.MustBuild()
	}()

	leak := NewLeakDetector()
	prof := NewProfile()
	boundaries := runInSituWithReplays(t, leakMod, 24, leak, prof)
	if boundaries < 2 {
		t.Fatalf("want a multi-epoch run, got %d boundaries", boundaries)
	}
	findings := leak.Findings()
	if len(findings) != 4 {
		t.Fatalf("want 4 leaks after in-situ rollbacks, got %d: %v", len(findings), findings)
	}
	for _, f := range findings {
		if len(f.Sites) != 1 || f.Sites[0].Func() != "leak_loop" {
			t.Errorf("leak lost its allocation site across a rollback: %v", f)
		}
	}
	// Profile counts must reflect the whole run, not just the epochs after
	// the last rollback: 60 lock/unlock pairs = 120 sync events, plus the
	// replayed final epoch's events are restored-then-recounted, not lost.
	if got := prof.Syncs.Load(); got != 120 {
		t.Errorf("profile counted %d sync events across rollbacks, want 120", got)
	}
	if got := prof.Allocs.Load(); got != 4 {
		t.Errorf("profile counted %d allocs across rollbacks, want 4", got)
	}
}

// TestFromSpec: the analyzer-list syntax of ir-trace analyze.
func TestFromSpec(t *testing.T) {
	az, err := FromSpec("race, leak,profile")
	if err != nil {
		t.Fatal(err)
	}
	if len(az) != 3 {
		t.Fatalf("want 3 analyzers, got %d", len(az))
	}
	if _, err := FromSpec("race,nonsense"); err == nil {
		t.Fatal("unknown analyzer accepted")
	}
	if _, err := FromSpec(""); err == nil {
		t.Fatal("empty analyzer list accepted")
	}
}
