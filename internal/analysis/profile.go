package analysis

// Profile is the trivial analyzer: it counts what the replay delivered.
// Useful on its own as an `ir-trace analyze` summary, and in tests as the
// cheapest witness that observers actually fired while perturbing nothing.

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/interp"
)

// Profile counts observed operations by kind.
type Profile struct {
	Syncs    atomic.Int64
	Creates  atomic.Int64
	Exits    atomic.Int64
	Joins    atomic.Int64
	Allocs   atomic.Int64
	Frees    atomic.Int64
	Syscalls atomic.Int64
	Accesses atomic.Int64
	Resets   atomic.Int64

	// ckpt/pending implement the two-slot boundary checkpoint (see
	// RaceDetector): an in-situ rollback restores the counts at the current
	// epoch's beginning instead of zeroing the whole run.
	ckpt    atomic.Pointer[profileSnap]
	pending atomic.Pointer[profileSnap]
}

type profileSnap [8]int64

func (p *Profile) snap() *profileSnap {
	return &profileSnap{
		p.Syncs.Load(), p.Creates.Load(), p.Exits.Load(), p.Joins.Load(),
		p.Allocs.Load(), p.Frees.Load(), p.Syscalls.Load(), p.Accesses.Load(),
	}
}

func (p *Profile) restore(s *profileSnap) {
	p.Syncs.Store(s[0])
	p.Creates.Store(s[1])
	p.Exits.Store(s[2])
	p.Joins.Store(s[3])
	p.Allocs.Store(s[4])
	p.Frees.Store(s[5])
	p.Syscalls.Store(s[6])
	p.Accesses.Store(s[7])
}

// NewProfile builds a profile analyzer.
func NewProfile() *Profile { return &Profile{} }

// Name implements Analyzer.
func (p *Profile) Name() string { return "profile" }

// OnSync implements core.SyncObserver.
func (p *Profile) OnSync(tid int32, op core.SyncOp, addr uint64) { p.Syncs.Add(1) }

// OnThreadCreate implements core.ThreadObserver.
func (p *Profile) OnThreadCreate(parent, child int32) { p.Creates.Add(1) }

// OnThreadExit implements core.ThreadObserver.
func (p *Profile) OnThreadExit(tid int32) { p.Exits.Add(1) }

// OnThreadJoin implements core.ThreadObserver.
func (p *Profile) OnThreadJoin(joiner, joinee int32) { p.Joins.Add(1) }

// OnAlloc implements core.AllocObserver.
func (p *Profile) OnAlloc(tid int32, addr uint64, size int64, stack []interp.StackEntry) {
	p.Allocs.Add(1)
}

// OnFree implements core.AllocObserver.
func (p *Profile) OnFree(tid int32, addr uint64, stack []interp.StackEntry) { p.Frees.Add(1) }

// OnSyscall implements core.SyscallObserver.
func (p *Profile) OnSyscall(tid int32, num int64, ret uint64) { p.Syscalls.Add(1) }

// OnAccess implements core.AccessObserver.
func (p *Profile) OnAccess(tid int32, addr uint64, size int, write, atomic bool,
	stack func() []interp.StackEntry) {
	p.Accesses.Add(1)
}

// OnReset implements core.ResetObserver: restore the committed boundary
// snapshot (the in-situ rollback target's counts), or restart from zero
// when none exists (offline rollback restarts from program start).
func (p *Profile) OnReset() {
	p.pending.Store(nil)
	if s := p.ckpt.Load(); s != nil {
		p.restore(s)
	} else {
		p.restore(&profileSnap{})
	}
	p.Resets.Add(1)
}

// OnEpochEnd implements core.EpochObserver: commit the previous boundary's
// snapshot and stage this one.
func (p *Profile) OnEpochEnd(rt *core.Runtime, info core.EpochEndInfo) core.Decision {
	if s := p.pending.Load(); s != nil {
		p.ckpt.Store(s)
	}
	p.pending.Store(p.snap())
	return core.Proceed
}

// OnReplayMatched implements core.EpochObserver: re-stage from the matched
// replay's re-accumulated counts.
func (p *Profile) OnReplayMatched(rt *core.Runtime, attempts int) core.Decision {
	p.pending.Store(p.snap())
	return core.Proceed
}

// Finish implements Analyzer.
func (p *Profile) Finish(rt *core.Runtime) error { return nil }

// Findings implements Analyzer: one informational entry.
func (p *Profile) Findings() []Finding {
	return []Finding{{
		Analyzer: "profile",
		Kind:     "profile",
		Detail: fmt.Sprintf(
			"syncs=%d creates=%d exits=%d joins=%d allocs=%d frees=%d syscalls=%d accesses=%d",
			p.Syncs.Load(), p.Creates.Load(), p.Exits.Load(), p.Joins.Load(),
			p.Allocs.Load(), p.Frees.Load(), p.Syscalls.Load(), p.Accesses.Load()),
	}}
}
