package analysis

// Happens-before data-race detection over a replayed execution.
//
// The detector maintains one vector clock per thread, one per
// synchronization object (mutexes, condition variables, barriers, and —
// because they are ad hoc synchronization — atomically accessed cells), and
// a shadow cell per 8-byte granule of heap/global memory holding the last
// write and the reads since it. Two accesses to the same granule race when
// at least one writes and neither happens-before the other under the edges
// the replay delivers:
//
//   - thread create: parent → child's first action (ThreadObserver)
//   - thread exit → join (ThreadObserver)
//   - mutex release → subsequent acquire of the same mutex (SyncObserver;
//     trylock successes included, the runtime reports them as acquisitions)
//   - cond signal/broadcast → wake of a waiter on the same condition variable
//   - barrier: every arrival → the generation's release → every departure;
//     the release event rotates the barrier clock, so arrivals for the next
//     generation never leak into this generation's departures. (One
//     conservative corner: a sleeper still parked when a *later* generation
//     releases joins that newer, larger clock — an over-approximation that
//     can only mask races, never invent them.)
//   - atomic access → later atomic access of the same cell (acquire+release)
//
// Because identical replay fixes the order in which these edges are
// observed, the verdict — unlike the divergence signal of §5.2, which only
// says "some race exists somewhere" — is a precise racing pair: both access
// addresses and both call stacks, deterministically reproduced on every
// replay of the same trace.
//
// Runtime-internal ordering (thread-creation serialization, super-heap
// block fetches) is deliberately absent from the edge set: it is an
// implementation artifact whose edges would mask real races (core filters
// those pseudo-variables out of SyncObserver). Thread stacks are skipped
// entirely: a TIR stack slot is private to its thread.

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/mem"
)

// vclock is a dense vector clock indexed by thread ID.
type vclock []uint64

func (c vclock) get(t int32) uint64 {
	if int(t) < len(c) {
		return c[t]
	}
	return 0
}

func (c *vclock) grow(t int32) {
	for int32(len(*c)) <= t {
		*c = append(*c, 0)
	}
}

func (c *vclock) join(o vclock) {
	c.grow(int32(len(o)) - 1)
	for i, v := range o {
		if v > (*c)[i] {
			(*c)[i] = v
		}
	}
}

func (c *vclock) tick(t int32) {
	c.grow(t)
	(*c)[t]++
}

// access is one recorded memory access: who, what, and from where.
type access struct {
	tid    int32
	epoch  uint64 // accessor's own clock component at access time
	write  bool
	atomic bool
	addr   uint64
	size   int
	stack  []interp.StackEntry
}

func (a access) site() Site {
	return Site{TID: a.tid, Write: a.write, Atomic: a.atomic, Stack: a.stack}
}

// granule is the shadow state of one 8-byte-aligned memory cell.
type granule struct {
	write    access
	hasWrite bool
	reads    []access // one per reading thread since the last write
}

// Race is one reported racing pair; Prev was observed first during replay.
type Race struct {
	// Addr is the 8-byte granule both accesses touched.
	Addr      uint64
	Prev, Cur access
	PrevSite  Site
	CurSite   Site
}

// raceState is the detector's complete mutable state, separated out so an
// epoch boundary can checkpoint it and a rollback can restore it.
type raceState struct {
	threads map[int32]*vclock
	syncC   map[uint64]*vclock // per sync object (incl. atomic cells)
	// barriers holds the two-phase barrier clocks: arrivals accumulate in
	// pending; the release event moves pending to rel, which departures
	// join.
	barriers map[uint64]*barrierClock
	exits    map[int32]vclock
	shadow   map[uint64]*granule
	seen     map[string]bool // site-pair dedup
	races    []Race
}

type barrierClock struct {
	pending vclock // arrivals of the generation in progress
	rel     vclock // released clock departures join
}

func newRaceState() *raceState {
	return &raceState{
		threads:  make(map[int32]*vclock),
		syncC:    make(map[uint64]*vclock),
		barriers: make(map[uint64]*barrierClock),
		exits:    make(map[int32]vclock),
		shadow:   make(map[uint64]*granule),
		seen:     make(map[string]bool),
	}
}

func copyClock(c vclock) vclock { return append(vclock(nil), c...) }

func (s *raceState) deepCopy() *raceState {
	cp := newRaceState()
	for t, c := range s.threads {
		v := copyClock(*c)
		cp.threads[t] = &v
	}
	for a, c := range s.syncC {
		v := copyClock(*c)
		cp.syncC[a] = &v
	}
	for a, b := range s.barriers {
		cp.barriers[a] = &barrierClock{
			pending: copyClock(b.pending),
			rel:     copyClock(b.rel),
		}
	}
	for t, c := range s.exits {
		cp.exits[t] = copyClock(c)
	}
	for a, g := range s.shadow {
		cp.shadow[a] = &granule{
			write:    g.write,
			hasWrite: g.hasWrite,
			reads:    append([]access(nil), g.reads...),
		}
	}
	for k := range s.seen {
		cp.seen[k] = true
	}
	cp.races = append([]Race(nil), s.races...)
	return cp
}

// RaceDetector is the happens-before analyzer. Zero value is not ready; use
// NewRaceDetector.
//
// In-situ checkpointing: a rollback restores the world to the *current*
// epoch's beginning, but OnEpochEnd fires before the replay decision is
// known, so the snapshot taken at a boundary must not become the rollback
// target of that same boundary's replay. Snapshots therefore go through a
// two-slot commit: OnEpochEnd commits the previous boundary's snapshot
// (nothing observable runs between a boundary and the next epoch's
// checkpoint) and stages the new one; OnReset restores the committed slot
// and discards the staged one; OnReplayMatched re-stages from the matched
// state. Offline replay never sees a boundary, so OnReset restarts empty —
// program start is the rollback target there.
type RaceDetector struct {
	mu      sync.Mutex
	st      *raceState
	ckpt    *raceState // committed: state at the current epoch's beginning
	pending *raceState // staged at the just-closed boundary
}

// NewRaceDetector builds a race analyzer.
func NewRaceDetector() *RaceDetector {
	return &RaceDetector{st: newRaceState()}
}

// Name implements Analyzer.
func (d *RaceDetector) Name() string { return "race" }

// OnReset implements core.ResetObserver: restore the committed checkpoint
// (the rollback target's analyzer state), discarding the staged snapshot
// and everything observed since.
func (d *RaceDetector) OnReset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.pending = nil
	if d.ckpt != nil {
		d.st = d.ckpt.deepCopy()
		return
	}
	d.st = newRaceState()
}

// OnEpochEnd implements core.EpochObserver: commit the previous boundary's
// snapshot and stage this one.
func (d *RaceDetector) OnEpochEnd(rt *core.Runtime, info core.EpochEndInfo) core.Decision {
	d.mu.Lock()
	if d.pending != nil {
		d.ckpt = d.pending
	}
	d.pending = d.st.deepCopy()
	d.mu.Unlock()
	return core.Proceed
}

// OnReplayMatched implements core.EpochObserver: the matched replay
// re-accumulated the boundary state; re-stage it.
func (d *RaceDetector) OnReplayMatched(rt *core.Runtime, attempts int) core.Decision {
	d.mu.Lock()
	d.pending = d.st.deepCopy()
	d.mu.Unlock()
	return core.Proceed
}

// clock returns tid's vector clock, creating it at its first action.
func (d *RaceDetector) clock(tid int32) *vclock {
	c, ok := d.st.threads[tid]
	if !ok {
		c = &vclock{}
		c.tick(tid) // each thread starts in its own epoch 1
		d.st.threads[tid] = c
	}
	return c
}

func (d *RaceDetector) syncClock(addr uint64) *vclock {
	c, ok := d.st.syncC[addr]
	if !ok {
		c = &vclock{}
		d.st.syncC[addr] = c
	}
	return c
}

// OnSync implements core.SyncObserver.
func (d *RaceDetector) OnSync(tid int32, op core.SyncOp, addr uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c := d.clock(tid)
	switch op {
	case core.SyncAcquire, core.SyncWake:
		c.join(*d.syncClock(addr))
	case core.SyncRelease, core.SyncSignal:
		d.syncClock(addr).join(*c)
		c.tick(tid)
	case core.SyncBarrierArrive:
		b := d.barrier(addr)
		b.pending.join(*c)
		c.tick(tid)
	case core.SyncBarrierRelease:
		b := d.barrier(addr)
		b.rel = b.pending
		b.pending = nil
	case core.SyncBarrierDepart:
		c.join(d.barrier(addr).rel)
	}
}

func (d *RaceDetector) barrier(addr uint64) *barrierClock {
	b, ok := d.st.barriers[addr]
	if !ok {
		b = &barrierClock{}
		d.st.barriers[addr] = b
	}
	return b
}

// OnThreadCreate implements core.ThreadObserver.
func (d *RaceDetector) OnThreadCreate(parent, child int32) {
	d.mu.Lock()
	defer d.mu.Unlock()
	p := d.clock(parent)
	d.clock(child).join(*p)
	p.tick(parent)
}

// OnThreadExit implements core.ThreadObserver.
func (d *RaceDetector) OnThreadExit(tid int32) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c := d.clock(tid)
	final := make(vclock, len(*c))
	copy(final, *c)
	d.st.exits[tid] = final
}

// OnThreadJoin implements core.ThreadObserver.
func (d *RaceDetector) OnThreadJoin(joiner, joinee int32) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if final, ok := d.st.exits[joinee]; ok {
		d.clock(joiner).join(final)
	}
}

// OnAccess implements core.AccessObserver: the race check proper.
func (d *RaceDetector) OnAccess(tid int32, addr uint64, size int, write, atomic bool,
	stack func() []interp.StackEntry) {
	if addr >= mem.StackBase {
		return // thread-private stack slot
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	c := d.clock(tid)
	if atomic {
		// Ad hoc synchronization (§5.2): an atomic access is both an acquire
		// and a release on its own cell, and is not itself a race candidate.
		l := d.syncClock(addr)
		c.join(*l)
		l.join(*c)
		c.tick(tid)
		return
	}
	cur := access{
		tid: tid, epoch: c.get(tid), write: write, atomic: atomic,
		addr: addr, size: size, stack: stack(),
	}
	first := addr &^ 7
	last := (addr + uint64(size) - 1) &^ 7
	for ga := first; ga <= last; ga += 8 {
		d.checkGranule(ga, cur, *c)
	}
}

// checkGranule races cur against granule ga's shadow state and updates it.
func (d *RaceDetector) checkGranule(ga uint64, cur access, c vclock) {
	g, ok := d.st.shadow[ga]
	if !ok {
		g = &granule{}
		d.st.shadow[ga] = g
	}
	racesWith := func(prev access) bool {
		return prev.tid != cur.tid && prev.epoch > c.get(prev.tid)
	}
	// Any access — read or write — races with an unordered previous write.
	if g.hasWrite && racesWith(g.write) {
		d.report(ga, g.write, cur)
	}
	if cur.write {
		for _, r := range g.reads {
			if racesWith(r) {
				d.report(ga, r, cur)
			}
		}
		g.write, g.hasWrite = cur, true
		g.reads = g.reads[:0]
		return
	}
	for i := range g.reads {
		if g.reads[i].tid == cur.tid {
			g.reads[i] = cur
			return
		}
	}
	g.reads = append(g.reads, cur)
}

// report records a race, deduplicated by the unordered pair of innermost
// sites (function+PC) and access kinds, so a racing loop yields one finding.
func (d *RaceDetector) report(ga uint64, prev, cur access) {
	ps, cs := prev.site(), cur.site()
	k1 := fmt.Sprintf("%s+%d/%v", ps.Func(), topPC(ps), prev.write)
	k2 := fmt.Sprintf("%s+%d/%v", cs.Func(), topPC(cs), cur.write)
	key := k1 + "|" + k2
	if k2 < k1 {
		key = k2 + "|" + k1
	}
	if d.st.seen[key] {
		return
	}
	d.st.seen[key] = true
	d.st.races = append(d.st.races, Race{Addr: ga, Prev: prev, Cur: cur, PrevSite: ps, CurSite: cs})
}

func topPC(s Site) int {
	if len(s.Stack) == 0 {
		return -1
	}
	return s.Stack[0].PC
}

// Finish implements Analyzer (the race check needs no final pass).
func (d *RaceDetector) Finish(rt *core.Runtime) error { return nil }

// Races returns the reported racing pairs.
func (d *RaceDetector) Races() []Race {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Race(nil), d.st.races...)
}

// canonKey orders the two sides of a race independently of which was
// observed first during replay.
func canonKey(a access) string {
	return fmt.Sprintf("%s+%d/%v/%d", a.site().Func(), topPC(a.site()), a.write, a.tid)
}

// Findings implements Analyzer. The report is canonical: the two sides of
// each race are ordered by site key rather than observation order, and the
// kind is symmetric ("write/write" or "read/write"), so the same racing
// pair yields byte-identical findings no matter which access a particular
// replay — whole-trace or segment-folded — happened to deliver first.
func (d *RaceDetector) Findings() []Finding {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Finding, 0, len(d.st.races))
	for _, r := range d.st.races {
		a, b := r.Prev, r.Cur
		if canonKey(b) < canonKey(a) {
			a, b = b, a
		}
		kind := "read/write"
		if a.write && b.write {
			kind = "write/write"
		}
		out = append(out, Finding{
			Analyzer: "race",
			Kind:     "data-race",
			Addr:     a.addr,
			Size:     int64(a.size),
			Sites:    []Site{a.site(), b.site()},
			Detail: fmt.Sprintf("%s race on %#x between %s (thread %d) and %s (thread %d)",
				kind, a.addr, a.site().Func(), a.tid, b.site().Func(), b.tid),
		})
	}
	sortFindings(out)
	return out
}
