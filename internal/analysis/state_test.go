package analysis

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
)

func stk(fn string, pc int) func() []interp.StackEntry {
	return func() []interp.StackEntry { return []interp.StackEntry{{Func: fn, PC: pc}} }
}

// driveRaceState accumulates a nontrivial detector state: clocks for three
// threads, a mutex, a barrier, an exited thread, shadow cells with retained
// stacks, and one reported race.
func driveRaceState(d *RaceDetector) {
	d.OnThreadCreate(0, 1)
	d.OnThreadCreate(0, 2)
	d.OnSync(1, core.SyncAcquire, 0x9000)
	d.OnAccess(1, 0x4000, 8, true, false, stk("writer", 3))
	d.OnSync(1, core.SyncRelease, 0x9000)
	d.OnSync(2, core.SyncBarrierArrive, 0x9100)
	d.OnSync(2, core.SyncBarrierRelease, 0x9100)
	d.OnSync(2, core.SyncBarrierDepart, 0x9100)
	d.OnAccess(2, 0x4000, 8, true, false, stk("clobber", 7)) // unordered: races
	d.OnAccess(2, 0x4100, 4, false, false, stk("reader", 9))
	d.OnAccess(1, 0x4200, 8, false, true, nil) // atomic: sync clock only
	d.OnThreadExit(2)
	d.OnThreadJoin(0, 2)
}

// TestRaceStateRoundTrip: encode -> fresh detector decode -> re-encode is
// byte-identical, and the decoded detector reports the same findings and
// keeps detecting with the restored clocks and shadow cells.
func TestRaceStateRoundTrip(t *testing.T) {
	d := NewRaceDetector()
	driveRaceState(d)
	b := d.AppendState(nil)
	if len(b) == 0 {
		t.Fatal("empty encoding for nonempty state")
	}

	d2 := NewRaceDetector()
	rest, err := d2.DecodeState(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	if !bytes.Equal(b, d2.AppendState(nil)) {
		t.Fatal("re-encoding the decoded state differs")
	}
	if !reflect.DeepEqual(d.Findings(), d2.Findings()) {
		t.Fatalf("findings differ after round-trip:\n%+v\n%+v", d.Findings(), d2.Findings())
	}
	if len(d2.Findings()) == 0 {
		t.Fatal("driven state produced no race finding")
	}

	// The restored state must keep working: the same next access produces
	// the same verdict on both detectors (a fresh racing pair on 0x4100).
	d.OnAccess(1, 0x4100, 4, true, false, stk("late_writer", 11))
	d2.OnAccess(1, 0x4100, 4, true, false, stk("late_writer", 11))
	if !reflect.DeepEqual(d.Findings(), d2.Findings()) {
		t.Fatal("decoded detector diverges from original on the next access")
	}
	if len(d.Findings()) != len(d2.Findings()) || len(d.Findings()) < 2 {
		t.Fatalf("late access not detected identically (%d vs %d findings)",
			len(d.Findings()), len(d2.Findings()))
	}
}

// TestRaceStateRoundTripEmpty: a fresh detector's state survives the trip.
func TestRaceStateRoundTripEmpty(t *testing.T) {
	d := NewRaceDetector()
	b := d.AppendState(nil)
	d2 := NewRaceDetector()
	if _, err := d2.DecodeState(b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, d2.AppendState(nil)) {
		t.Fatal("empty-state re-encoding differs")
	}
}

// TestRaceStateDecodeCorrupt: truncated and implausible inputs fail cleanly
// instead of over-allocating or panicking.
func TestRaceStateDecodeCorrupt(t *testing.T) {
	d := NewRaceDetector()
	driveRaceState(d)
	b := d.AppendState(nil)
	for _, tc := range [][]byte{
		b[:1], b[:len(b)/2], b[:len(b)-1],
		{0xff, 0xff, 0xff, 0xff, 0x7f}, // implausible count
	} {
		if _, err := NewRaceDetector().DecodeState(tc); err == nil {
			t.Fatalf("corrupt input %x decoded without error", tc[:min(8, len(tc))])
		}
	}
}

// TestLeakStateRoundTrip mirrors the race round-trip for the site table,
// found leaks, and scan count.
func TestLeakStateRoundTrip(t *testing.T) {
	d := NewLeakDetector()
	d.OnAlloc(1, 0x5000, 64, []interp.StackEntry{{Func: "mk", PC: 2}})
	d.OnAlloc(2, 0x5100, 32, []interp.StackEntry{{Func: "mk", PC: 2}, {Func: "main", PC: 8}})
	d.OnAlloc(1, 0x5200, 16, nil)
	d.OnFree(1, 0x5200, nil)
	d.mu.Lock()
	d.leaks[0x5100] = Leak{Addr: 0x5100, Size: 32, TID: 2, Epoch: 3,
		Stack: []interp.StackEntry{{Func: "mk", PC: 2}}}
	d.scans = 4
	d.mu.Unlock()

	b := d.AppendState(nil)
	d2 := NewLeakDetector()
	rest, err := d2.DecodeState(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	if !bytes.Equal(b, d2.AppendState(nil)) {
		t.Fatal("re-encoding the decoded state differs")
	}
	if !reflect.DeepEqual(d.Leaks(), d2.Leaks()) {
		t.Fatalf("leaks differ after round-trip:\n%+v\n%+v", d.Leaks(), d2.Leaks())
	}
	if !reflect.DeepEqual(d.sites, d2.sites) {
		t.Fatalf("site tables differ after round-trip:\n%+v\n%+v", d.sites, d2.sites)
	}
	if d2.scans != 4 {
		t.Fatalf("scan count %d, want 4", d2.scans)
	}
}

// TestProfileStateRoundTrip: the counters survive, byte-stable.
func TestProfileStateRoundTrip(t *testing.T) {
	p := NewProfile()
	p.OnSync(1, core.SyncAcquire, 0x9000)
	p.OnThreadCreate(0, 1)
	p.OnAlloc(1, 0x5000, 8, nil)
	p.OnSyscall(1, 64, 0)
	p.OnAccess(1, 0x4000, 8, true, false, nil)
	p.OnAccess(1, 0x4000, 8, false, false, nil)

	b := p.AppendState(nil)
	p2 := NewProfile()
	rest, err := p2.DecodeState(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	if !bytes.Equal(b, p2.AppendState(nil)) {
		t.Fatal("re-encoding differs")
	}
	if !reflect.DeepEqual(p.Findings(), p2.Findings()) {
		t.Fatalf("profile findings differ:\n%+v\n%+v", p.Findings(), p2.Findings())
	}
}

// TestStateChainConcatenation: multiple analyzers' states append into one
// buffer and decode back in order, each consuming exactly its own bytes —
// the wire shape of a propagated state chain.
func TestStateChainConcatenation(t *testing.T) {
	r := NewRaceDetector()
	driveRaceState(r)
	l := NewLeakDetector()
	l.OnAlloc(1, 0x5000, 64, []interp.StackEntry{{Func: "mk", PC: 2}})
	p := NewProfile()
	p.OnSync(1, core.SyncAcquire, 0x9000)

	var buf []byte
	buf = r.AppendState(buf)
	buf = l.AppendState(buf)
	buf = p.AppendState(buf)

	r2, l2, p2 := NewRaceDetector(), NewLeakDetector(), NewProfile()
	rest, err := r2.DecodeState(buf)
	if err != nil {
		t.Fatal(err)
	}
	if rest, err = l2.DecodeState(rest); err != nil {
		t.Fatal(err)
	}
	if rest, err = p2.DecodeState(rest); err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after the chain", len(rest))
	}
	if !reflect.DeepEqual(r.Findings(), r2.Findings()) {
		t.Fatal("race findings differ through the chain")
	}
	if !reflect.DeepEqual(l.sites, l2.sites) {
		t.Fatal("leak sites differ through the chain")
	}
	if p2.Syncs.Load() != 1 {
		t.Fatal("profile counters differ through the chain")
	}
}

// TestTapeReplayAndReset: the tape re-delivers its stream faithfully (a
// detector fed via tape matches one fed directly) and OnReset drops the
// abandoned attempt.
func TestTapeReplayAndReset(t *testing.T) {
	tape := NewTape()
	// An abandoned divergent attempt, then the matched one.
	tape.OnAccess(7, 0xdead, 8, true, false, stk("garbage", 1))
	tape.OnReset()

	// Drive the same callback sequence into the tape and a direct detector.
	direct := NewRaceDetector()
	tape.OnThreadCreate(0, 1)
	direct.OnThreadCreate(0, 1)
	tape.OnThreadCreate(0, 2)
	direct.OnThreadCreate(0, 2)
	tape.OnAccess(1, 0x4000, 8, true, false, stk("writer", 3))
	direct.OnAccess(1, 0x4000, 8, true, false, stk("writer", 3))
	tape.OnSyscall(1, 64, 0)
	tape.OnAccess(2, 0x4000, 8, true, false, stk("clobber", 7))
	direct.OnAccess(2, 0x4000, 8, true, false, stk("clobber", 7))

	replayed := NewRaceDetector()
	prof := NewProfile()
	tape.Replay([]Analyzer{replayed, prof})

	if !reflect.DeepEqual(direct.Findings(), replayed.Findings()) {
		t.Fatalf("tape-fed findings differ from direct:\n%+v\n%+v",
			direct.Findings(), replayed.Findings())
	}
	if len(replayed.Findings()) == 0 {
		t.Fatal("tape replay detected no race")
	}
	if prof.Accesses.Load() != 2 || prof.Creates.Load() != 2 || prof.Syscalls.Load() != 1 {
		t.Fatalf("profile counted %d/%d/%d, want 2/2/1 (reset attempt must not count)",
			prof.Accesses.Load(), prof.Creates.Load(), prof.Syscalls.Load())
	}
}
