package analysis

// Checkpointable analyzer state: the append/decode codecs that let an
// analyzer's accumulated state cross a segment boundary as bytes.
//
// Segment-parallel analysis folds segments sequentially into one analyzer
// chain (see tape.go); at every boundary the fold serializes the chain's
// state and decodes it into a fresh analyzer set built by the job's
// factory — the propagated state chain of the multi-node design, exercised
// in-process on every boundary so the codecs cannot rot. The encodings
// follow the interp.AppendContext / mem.AppendSnapshotDelta house style:
// canonical (map keys sorted, addresses delta-encoded ascending),
// self-delimiting varints, an inline back-referencing string table for
// stack symbols, and bounded-allocation plausibility checks on decode.
//
//   - RaceDetector: vector clocks (per thread, per sync object, barriers,
//     exits), the 8-byte-granule shadow cells with their retained access
//     stacks, the dedup set, and the races found so far.
//   - LeakDetector: the allocation-site table (heap contents ride the
//     runtime checkpoint, not the analyzer), leaks found, and scan count.
//   - Profile: its counters.
//
// The in-situ two-slot boundary snapshots (ckpt/pending) are rollback
// machinery, not analysis state, and never fire offline — they are
// deliberately outside the codec.

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/interp"
)

// StateCheckpointer is the optional Analyzer extension for segment-parallel
// analysis: AppendState serializes the analyzer's complete accumulated
// state, DecodeState replaces the receiver's state with a decoded one and
// returns the unconsumed remainder. An analyzer set in which every member
// implements it can be handed across a segment boundary (or a wire) and
// resumed by a fresh set from the same factory.
type StateCheckpointer interface {
	AppendState(b []byte) []byte
	DecodeState(b []byte) ([]byte, error)
}

// --- codec primitives ---

// stateWriter accumulates a canonical varint encoding with an inline
// string table: the first occurrence of a string is emitted as a 0 marker
// plus its bytes, later occurrences as a 1-based back-reference.
type stateWriter struct {
	b    []byte
	strs map[string]uint64
}

func newStateWriter(b []byte) *stateWriter {
	return &stateWriter{b: b, strs: make(map[string]uint64)}
}

func (w *stateWriter) u(v uint64) { w.b = binary.AppendUvarint(w.b, v) }

// z zigzag-encodes a signed value.
func (w *stateWriter) z(v int64) { w.u(uint64((v << 1) ^ (v >> 63))) }

func (w *stateWriter) bool(v bool) {
	if v {
		w.u(1)
	} else {
		w.u(0)
	}
}

func (w *stateWriter) str(s string) {
	if ref, ok := w.strs[s]; ok {
		w.u(ref)
		return
	}
	w.strs[s] = uint64(len(w.strs)) + 1
	w.u(0)
	w.u(uint64(len(s)))
	w.b = append(w.b, s...)
}

func (w *stateWriter) stack(st []interp.StackEntry) {
	w.u(uint64(len(st)))
	for _, e := range st {
		w.str(e.Func)
		w.z(int64(e.PC))
	}
}

// stateReader inverts stateWriter with a sticky error, so decoders read
// straight through and check once.
type stateReader struct {
	b    []byte
	strs []string
	err  error
}

func (r *stateReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *stateReader) u() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail("analysis: truncated state")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *stateReader) z() int64 {
	v := r.u()
	return int64(v>>1) ^ -int64(v&1)
}

func (r *stateReader) bool() bool { return r.u() != 0 }

// count reads a collection length and bounds it by what the remaining
// buffer could plausibly hold (each element costs at least one byte).
func (r *stateReader) count(what string) int {
	n := r.u()
	if n > uint64(len(r.b))+1 {
		r.fail("analysis: implausible %s count %d in state", what, n)
		return 0
	}
	return int(n)
}

func (r *stateReader) str() string {
	ref := r.u()
	if ref == 0 {
		n := r.count("string byte")
		if r.err != nil || n > len(r.b) {
			r.fail("analysis: truncated string in state")
			return ""
		}
		s := string(r.b[:n])
		r.b = r.b[n:]
		r.strs = append(r.strs, s)
		return s
	}
	if ref > uint64(len(r.strs)) {
		r.fail("analysis: dangling string reference %d in state", ref)
		return ""
	}
	return r.strs[ref-1]
}

func (r *stateReader) stack() []interp.StackEntry {
	n := r.count("stack frame")
	if n == 0 {
		return nil
	}
	st := make([]interp.StackEntry, n)
	for i := range st {
		st[i] = interp.StackEntry{Func: r.str(), PC: int(r.z())}
	}
	return st
}

func sortedTIDs[V any](m map[int32]V) []int32 {
	out := make([]int32, 0, len(m))
	for t := range m {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedAddrs[V any](m map[uint64]V) []uint64 {
	out := make([]uint64, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// --- race detector ---

func (w *stateWriter) clock(c vclock) {
	w.u(uint64(len(c)))
	for _, v := range c {
		w.u(v)
	}
}

func (r *stateReader) clock() vclock {
	n := r.count("clock component")
	if n == 0 {
		return nil
	}
	c := make(vclock, n)
	for i := range c {
		c[i] = r.u()
	}
	return c
}

func (w *stateWriter) access(a *access) {
	w.u(uint64(a.tid))
	w.u(a.epoch)
	w.bool(a.write)
	w.bool(a.atomic)
	w.u(a.addr)
	w.z(int64(a.size))
	w.stack(a.stack)
}

func (r *stateReader) access() access {
	return access{
		tid:    int32(r.u()),
		epoch:  r.u(),
		write:  r.bool(),
		atomic: r.bool(),
		addr:   r.u(),
		size:   int(r.z()),
		stack:  r.stack(),
	}
}

// AppendState implements StateCheckpointer.
func (d *RaceDetector) AppendState(b []byte) []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	w := newStateWriter(b)
	s := d.st

	w.u(uint64(len(s.threads)))
	for _, t := range sortedTIDs(s.threads) {
		w.u(uint64(t))
		w.clock(*s.threads[t])
	}
	w.u(uint64(len(s.syncC)))
	prev := uint64(0)
	for _, a := range sortedAddrs(s.syncC) {
		w.u(a - prev)
		prev = a
		w.clock(*s.syncC[a])
	}
	w.u(uint64(len(s.barriers)))
	prev = 0
	for _, a := range sortedAddrs(s.barriers) {
		w.u(a - prev)
		prev = a
		w.clock(s.barriers[a].pending)
		w.clock(s.barriers[a].rel)
	}
	w.u(uint64(len(s.exits)))
	for _, t := range sortedTIDs(s.exits) {
		w.u(uint64(t))
		w.clock(s.exits[t])
	}
	w.u(uint64(len(s.shadow)))
	prev = 0
	for _, a := range sortedAddrs(s.shadow) {
		g := s.shadow[a]
		w.u(a - prev)
		prev = a
		w.bool(g.hasWrite)
		if g.hasWrite {
			w.access(&g.write)
		}
		w.u(uint64(len(g.reads)))
		for i := range g.reads {
			w.access(&g.reads[i])
		}
	}
	keys := make([]string, 0, len(s.seen))
	for k := range s.seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.u(uint64(len(keys)))
	for _, k := range keys {
		w.str(k)
	}
	w.u(uint64(len(s.races)))
	for i := range s.races {
		r := &s.races[i]
		w.u(r.Addr)
		w.access(&r.Prev)
		w.access(&r.Cur)
	}
	return w.b
}

// DecodeState implements StateCheckpointer. The decoded state replaces the
// receiver's wholesale; the in-situ two-slot snapshots are cleared, as a
// decoded state is a fresh segment start, not a rollback target.
func (d *RaceDetector) DecodeState(b []byte) ([]byte, error) {
	r := &stateReader{b: b}
	s := newRaceState()
	for i, n := 0, r.count("thread clock"); i < n && r.err == nil; i++ {
		t := int32(r.u())
		c := r.clock()
		s.threads[t] = &c
	}
	prev := uint64(0)
	for i, n := 0, r.count("sync clock"); i < n && r.err == nil; i++ {
		prev += r.u()
		c := r.clock()
		s.syncC[prev] = &c
	}
	prev = 0
	for i, n := 0, r.count("barrier clock"); i < n && r.err == nil; i++ {
		prev += r.u()
		s.barriers[prev] = &barrierClock{pending: r.clock(), rel: r.clock()}
	}
	for i, n := 0, r.count("exit clock"); i < n && r.err == nil; i++ {
		t := int32(r.u())
		s.exits[t] = r.clock()
	}
	prev = 0
	for i, n := 0, r.count("shadow cell"); i < n && r.err == nil; i++ {
		prev += r.u()
		g := &granule{}
		if r.bool() {
			g.write, g.hasWrite = r.access(), true
		}
		if nr := r.count("shadow read"); nr > 0 {
			g.reads = make([]access, nr)
			for j := range g.reads {
				g.reads[j] = r.access()
			}
		}
		s.shadow[prev] = g
	}
	for i, n := 0, r.count("dedup key"); i < n && r.err == nil; i++ {
		s.seen[r.str()] = true
	}
	for i, n := 0, r.count("race"); i < n && r.err == nil; i++ {
		rc := Race{Addr: r.u(), Prev: r.access(), Cur: r.access()}
		// Sites are derived views of the accesses; rebuild instead of
		// serializing them twice.
		rc.PrevSite, rc.CurSite = rc.Prev.site(), rc.Cur.site()
		s.races = append(s.races, rc)
	}
	if r.err != nil {
		return nil, fmt.Errorf("race state: %w", r.err)
	}
	d.mu.Lock()
	d.st, d.ckpt, d.pending = s, nil, nil
	d.mu.Unlock()
	return r.b, nil
}

// --- leak detector ---

// AppendState implements StateCheckpointer. Only the site table, found
// leaks, and scan count are analyzer state; heap contents ride the runtime
// checkpoint.
func (d *LeakDetector) AppendState(b []byte) []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	w := newStateWriter(b)
	w.u(uint64(len(d.sites)))
	prev := uint64(0)
	for _, a := range sortedAddrs(d.sites) {
		s := d.sites[a]
		w.u(a - prev)
		prev = a
		w.u(uint64(s.tid))
		w.stack(s.stack)
	}
	w.u(uint64(len(d.leaks)))
	prev = 0
	for _, a := range sortedAddrs(d.leaks) {
		l := d.leaks[a]
		w.u(a - prev)
		prev = a
		w.z(l.Size)
		w.u(uint64(l.TID))
		w.z(l.Epoch)
		w.stack(l.Stack)
	}
	w.z(d.scans)
	return w.b
}

// DecodeState implements StateCheckpointer.
func (d *LeakDetector) DecodeState(b []byte) ([]byte, error) {
	r := &stateReader{b: b}
	sites := make(map[uint64]allocSite)
	prev := uint64(0)
	for i, n := 0, r.count("alloc site"); i < n && r.err == nil; i++ {
		prev += r.u()
		sites[prev] = allocSite{tid: int32(r.u()), stack: r.stack()}
	}
	leaks := make(map[uint64]Leak)
	prev = 0
	for i, n := 0, r.count("leak"); i < n && r.err == nil; i++ {
		prev += r.u()
		leaks[prev] = Leak{
			Addr:  prev,
			Size:  r.z(),
			TID:   int32(r.u()),
			Epoch: r.z(),
			Stack: r.stack(),
		}
	}
	scans := r.z()
	if r.err != nil {
		return nil, fmt.Errorf("leak state: %w", r.err)
	}
	d.mu.Lock()
	d.sites, d.leaks, d.scans = sites, leaks, scans
	d.ckptSites, d.pendingSites = nil, nil
	d.mu.Unlock()
	return r.b, nil
}

// --- profile ---

// AppendState implements StateCheckpointer.
func (p *Profile) AppendState(b []byte) []byte {
	w := newStateWriter(b)
	w.z(p.Syncs.Load())
	w.z(p.Creates.Load())
	w.z(p.Exits.Load())
	w.z(p.Joins.Load())
	w.z(p.Allocs.Load())
	w.z(p.Frees.Load())
	w.z(p.Syscalls.Load())
	w.z(p.Accesses.Load())
	w.z(p.Resets.Load())
	return w.b
}

// DecodeState implements StateCheckpointer.
func (p *Profile) DecodeState(b []byte) ([]byte, error) {
	r := &stateReader{b: b}
	vals := make([]int64, 9)
	for i := range vals {
		vals[i] = r.z()
	}
	if r.err != nil {
		return nil, fmt.Errorf("profile state: %w", r.err)
	}
	p.Syncs.Store(vals[0])
	p.Creates.Store(vals[1])
	p.Exits.Store(vals[2])
	p.Joins.Store(vals[3])
	p.Allocs.Store(vals[4])
	p.Frees.Store(vals[5])
	p.Syscalls.Store(vals[6])
	p.Accesses.Store(vals[7])
	p.Resets.Store(vals[8])
	p.ckpt.Store(nil)
	p.pending.Store(nil)
	return r.b, nil
}
