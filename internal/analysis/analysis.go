// Package analysis is the replay-time analysis subsystem: pluggable
// analyzers attach to the offline replay path through core's observer
// surface (core/observer.go) and extract evidence — precise racing pairs,
// leaked allocation sites, execution profiles — from a single deterministic
// re-execution of a stored trace.
//
// Running analyses at replay time instead of record time is the paper's
// closing argument made concrete: the production run pays only the recording
// overhead, while arbitrarily heavy instrumentation (vector clocks on every
// memory access, conservative heap scans) runs later, offline, as many times
// and with as many analyzers as wanted, against the *same* execution. An
// identical replay fixes the synchronization/syscall order and each thread's
// program order, so the callback stream every analyzer consumes — and
// therefore its report — is deterministic for a matched replay.
//
// Analyzers are passive observers: they read, never write, and never block
// on application synchronization, so attaching any number of them cannot
// perturb replay identity (exit value, output, final heap image —
// TestAnalyzerCompositionIdentity holds them to the byte).
package analysis

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/record"
	"repro/internal/tir"
)

// Analyzer is one pluggable replay-time analysis. Implementations also
// implement whichever core observer interfaces (SyncObserver,
// AccessObserver, AllocObserver, ...) they need; Run attaches them to the
// replay runtime, drives the re-execution, then calls Finish for
// whole-state passes (reachability scans) before collecting findings.
type Analyzer interface {
	core.Observer
	// Name identifies the analyzer ("race", "leak", ...).
	Name() string
	// Finish runs after the replay completed, while the final program state
	// (memory image, allocator metadata) is still intact.
	Finish(rt *core.Runtime) error
	// Findings returns the machine-checkable report.
	Findings() []Finding
}

// Finding is one machine-checkable analysis result. The JSON shape is the
// contract `ir-trace analyze -json` emits.
type Finding struct {
	// Analyzer names the producer ("race", "leak").
	Analyzer string `json:"analyzer"`
	// Kind classifies the defect ("data-race", "memory-leak").
	Kind string `json:"kind"`
	// Addr is the implicated address (racing cell, leaked payload).
	Addr uint64 `json:"addr"`
	// Size is the access or object size in bytes.
	Size int64 `json:"size"`
	// Sites carries the blamed code locations: both racing accesses (in
	// observation order) for a race, the allocation site for a leak.
	Sites []Site `json:"sites"`
	// Detail is a one-line human-readable summary.
	Detail string `json:"detail"`
}

// Site is one blamed code location with its full call stack.
type Site struct {
	TID int32 `json:"tid"`
	// Write is meaningful for races: whether this side wrote.
	Write bool `json:"write"`
	// Atomic marks an atomic access.
	Atomic bool `json:"atomic,omitempty"`
	// Stack is the call stack, innermost frame first.
	Stack []interp.StackEntry `json:"stack"`
}

// Func returns the innermost function name, the site's short identity.
func (s Site) Func() string {
	if len(s.Stack) == 0 {
		return "?"
	}
	return s.Stack[0].Func
}

func (s Site) String() string {
	frames := make([]string, len(s.Stack))
	for i, e := range s.Stack {
		frames[i] = fmt.Sprintf("%s+%d", e.Func, e.PC)
	}
	return fmt.Sprintf("thread %d at %s", s.TID, strings.Join(frames, " < "))
}

func (f Finding) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "[%s] %s at %#x (%d bytes): %s\n", f.Analyzer, f.Kind, f.Addr, f.Size, f.Detail)
	for _, s := range f.Sites {
		switch {
		case f.Kind == "data-race" && s.Write:
			fmt.Fprintf(&sb, "  write by thread %d\n", s.TID)
		case f.Kind == "data-race":
			fmt.Fprintf(&sb, "  read by thread %d\n", s.TID)
		default:
			fmt.Fprintf(&sb, "  allocated by thread %d\n", s.TID)
		}
		for _, e := range s.Stack {
			fmt.Fprintf(&sb, "    at %s+%d\n", e.Func, e.PC)
		}
	}
	return sb.String()
}

// Run re-executes a recorded epoch sequence once with every analyzer
// attached, then collects their findings. opts is interpreted as for
// core.PrepareReplay (allocator selection and list capacities must match the
// recording); setup recreates recording-time virtual-OS state and may be
// nil. A trace that recorded a fault reproduces the fault, which is
// returned as err alongside the report and findings — analysis of crashing
// executions is the prime use case, not an error.
func Run(mod *tir.Module, epochs []*record.EpochLog, opts core.Options,
	setup func(*core.Runtime) error, analyzers ...Analyzer) (*core.Report, []Finding, error) {
	for _, a := range analyzers {
		opts.Observers = append(opts.Observers, a)
	}
	rt, err := core.PrepareReplay(mod, epochs, opts)
	if err != nil {
		return nil, nil, err
	}
	return runPrepared(rt, setup, analyzers)
}

// RunFlat is Run over a pre-flattened epoch range (record.Flattener): the
// streaming entry point for analyze workers that decode epochs in bounded
// windows instead of pinning the whole trace's frames at once.
func RunFlat(mod *tir.Module, fl *record.Flat, opts core.Options,
	setup func(*core.Runtime) error, analyzers ...Analyzer) (*core.Report, []Finding, error) {
	for _, a := range analyzers {
		opts.Observers = append(opts.Observers, a)
	}
	rt, err := core.PrepareReplayFlat(mod, fl, opts)
	if err != nil {
		return nil, nil, err
	}
	return runPrepared(rt, setup, analyzers)
}

func runPrepared(rt *core.Runtime, setup func(*core.Runtime) error,
	analyzers []Analyzer) (*core.Report, []Finding, error) {
	if setup != nil {
		if err := setup(rt); err != nil {
			rt.Shutdown()
			return nil, nil, err
		}
	}
	rep, runErr := rt.RunReplay()
	if rep == nil {
		// The replay never matched; there is no execution to report on.
		return nil, nil, runErr
	}
	findings, err := Collect(rt, analyzers, runErr)
	return rep, findings, err
}

// Collect runs every analyzer's Finish pass against the completed replay's
// final state and gathers findings in analyzer order. Finish every analyzer
// even when one fails, and never let a finish error displace runErr: a
// reproduced fault is the prime use case, not something to lose behind a
// broken analyzer.
func Collect(rt *core.Runtime, analyzers []Analyzer, runErr error) ([]Finding, error) {
	var findings []Finding
	var errs []error
	for _, a := range analyzers {
		if ferr := a.Finish(rt); ferr != nil {
			errs = append(errs, fmt.Errorf("analysis: %s finish: %w", a.Name(), ferr))
			continue
		}
		findings = append(findings, a.Findings()...)
	}
	if len(errs) > 0 {
		return findings, errors.Join(append(errs, runErr)...)
	}
	return findings, runErr
}

// FromSpec builds analyzers from a comma-separated list of names — the
// ir-trace analyze -analyzers flag syntax. Known names: "race", "leak",
// "profile".
func FromSpec(spec string) ([]Analyzer, error) {
	var out []Analyzer
	for _, name := range strings.Split(spec, ",") {
		switch strings.TrimSpace(name) {
		case "race":
			out = append(out, NewRaceDetector())
		case "leak":
			out = append(out, NewLeakDetector())
		case "profile":
			out = append(out, NewProfile())
		case "":
		default:
			return nil, fmt.Errorf("analysis: unknown analyzer %q (known: race, leak, profile)", name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("analysis: empty analyzer list %q", spec)
	}
	return out, nil
}

// sortFindings orders findings deterministically (by address, then detail)
// so reports are stable across runs.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Addr != fs[j].Addr {
			return fs[i].Addr < fs[j].Addr
		}
		return fs[i].Detail < fs[j].Detail
	})
}
