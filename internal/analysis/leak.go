package analysis

// Memory-leak detection by diffing allocator state against a conservative
// reachability scan of the virtual address space.
//
// The allocator side is exact: heap.Deterministic tracks every live object.
// The reachability side is a conservative mark pass in the GC tradition:
// roots are every 8-byte word of the globals segment plus, for threads that
// still have execution state, the live stack range and every frame register;
// any root word that points into a live object's payload marks it, and
// marking proceeds transitively through object payloads. A live object no
// root can reach is leaked — no pointer to it exists anywhere, so it can
// never be freed — and the allocation-site stack captured by the alloc
// observer blames the code that allocated it.
//
// Scans run at epoch boundaries (when attached to an in-situ runtime — the
// world is quiescent and register roots are capturable) and at program end
// via Finish. Offline replay has no epoch boundaries, so there the
// program-end scan is the whole story; by then every thread has exited and
// only globals root the heap, which is exactly the reachability that
// matters for "leaked at exit".

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/mem"
)

// Leak is one leaked allocation.
type Leak struct {
	Addr uint64
	Size int64
	// TID is the allocating thread.
	TID int32
	// Stack is the allocation site, innermost frame first.
	Stack []interp.StackEntry
	// Epoch is the 1-based scan that first found the object unreachable
	// (0 = the program-end scan).
	Epoch int64
}

// LeakDetector is the reachability analyzer. Use NewLeakDetector.
type LeakDetector struct {
	mu    sync.Mutex
	sites map[uint64]allocSite
	// ckptSites/pendingSites implement the two-slot boundary checkpoint
	// (see RaceDetector): an in-situ rollback restores the current epoch's
	// *beginning*, so the sites of older allocations survive the reset
	// while the just-staged boundary snapshot is discarded.
	ckptSites    map[uint64]allocSite
	pendingSites map[uint64]allocSite
	leaks        map[uint64]Leak // deduped across scans by payload address
	scans        int64
}

type allocSite struct {
	tid   int32
	stack []interp.StackEntry
}

// NewLeakDetector builds a leak analyzer.
func NewLeakDetector() *LeakDetector {
	return &LeakDetector{
		sites: make(map[uint64]allocSite),
		leaks: make(map[uint64]Leak),
	}
}

// Name implements Analyzer.
func (d *LeakDetector) Name() string { return "leak" }

func copySites(m map[uint64]allocSite) map[uint64]allocSite {
	cp := make(map[uint64]allocSite, len(m))
	for a, s := range m {
		cp[a] = s
	}
	return cp
}

// OnReset implements core.ResetObserver: restore the committed site table
// (the in-situ rollback target's state), or start empty when none exists
// (offline rollback restarts from program start). Leaks already found
// stay: an unreachable object cannot become reachable by re-executing the
// epoch that found it.
func (d *LeakDetector) OnReset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.pendingSites = nil
	if d.ckptSites != nil {
		d.sites = copySites(d.ckptSites)
		return
	}
	d.sites = make(map[uint64]allocSite)
}

// OnAlloc implements core.AllocObserver.
func (d *LeakDetector) OnAlloc(tid int32, addr uint64, size int64, stack []interp.StackEntry) {
	d.mu.Lock()
	d.sites[addr] = allocSite{tid: tid, stack: stack}
	d.mu.Unlock()
}

// OnFree implements core.AllocObserver.
func (d *LeakDetector) OnFree(tid int32, addr uint64, stack []interp.StackEntry) {
	d.mu.Lock()
	delete(d.sites, addr)
	d.mu.Unlock()
}

// OnEpochEnd implements core.EpochObserver: scan while the world is
// quiescent, commit the previous boundary's site snapshot, and stage this
// one. Always proceeds — leak evidence needs no re-execution, the
// allocation site was captured on the way in.
func (d *LeakDetector) OnEpochEnd(rt *core.Runtime, info core.EpochEndInfo) core.Decision {
	d.scan(rt, info.Epoch)
	d.mu.Lock()
	if d.pendingSites != nil {
		d.ckptSites = d.pendingSites
	}
	d.pendingSites = copySites(d.sites)
	d.mu.Unlock()
	return core.Proceed
}

// OnReplayMatched implements core.EpochObserver: the matched replay
// re-accumulated the boundary's site table; re-stage it.
func (d *LeakDetector) OnReplayMatched(rt *core.Runtime, attempts int) core.Decision {
	d.mu.Lock()
	d.pendingSites = copySites(d.sites)
	d.mu.Unlock()
	return core.Proceed
}

// Finish implements Analyzer: the program-end scan.
func (d *LeakDetector) Finish(rt *core.Runtime) error {
	return d.scan(rt, 0)
}

// scan diffs the allocator's live set against reachability.
func (d *LeakDetector) scan(rt *core.Runtime, epoch int64) error {
	det := rt.DetAllocator()
	if det == nil {
		return fmt.Errorf("leak analysis requires the deterministic allocator")
	}
	objs := det.LiveObjects() // sorted by payload address
	reach := markReachable(rt, objs)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.scans++
	for i, o := range objs {
		if reach[i] {
			continue
		}
		if _, dup := d.leaks[o.Addr]; dup {
			continue
		}
		l := Leak{Addr: o.Addr, Size: o.Size, TID: o.Tid, Epoch: epoch}
		if s, ok := d.sites[o.Addr]; ok {
			l.TID = s.tid
			l.Stack = s.stack
		}
		d.leaks[o.Addr] = l
	}
	return nil
}

// markReachable runs the conservative mark pass and returns a reachability
// bit per object (objs must be sorted by Addr, as LiveObjects guarantees).
func markReachable(rt *core.Runtime, objs []heap.Object) []bool {
	m := rt.Mem()
	cfg := m.Config()
	reach := make([]bool, len(objs))

	// find locates the object whose payload contains word w.
	find := func(w uint64) int {
		i := sort.Search(len(objs), func(i int) bool {
			return objs[i].Addr+uint64(objs[i].Size) > w
		})
		if i < len(objs) && w >= objs[i].Addr {
			return i
		}
		return -1
	}

	var work []int
	scanRange := func(addr uint64, size int64) {
		if size <= 0 {
			return
		}
		// Align the scan to 8-byte words inside the range.
		if r := addr % 8; r != 0 {
			addr += 8 - r
			size -= int64(8 - r)
		}
		b, err := m.ReadBytes(addr, int(size))
		if err != nil {
			return
		}
		for off := 0; off+8 <= len(b); off += 8 {
			w := uint64(b[off]) | uint64(b[off+1])<<8 | uint64(b[off+2])<<16 |
				uint64(b[off+3])<<24 | uint64(b[off+4])<<32 | uint64(b[off+5])<<40 |
				uint64(b[off+6])<<48 | uint64(b[off+7])<<56
			if w < mem.HeapBase || w >= mem.HeapBase+uint64(cfg.HeapSize) {
				continue
			}
			if i := find(w); i >= 0 && !reach[i] {
				reach[i] = true
				work = append(work, i)
			}
		}
	}

	// Roots: the globals segment, then live threads' stacks and registers.
	scanRange(mem.GlobalBase, cfg.GlobalSize)
	for _, tr := range rt.LiveThreadRoots() {
		scanRange(tr.StackLow, int64(tr.StackHigh-tr.StackLow))
		for _, w := range tr.Regs {
			if w >= mem.HeapBase && w < mem.HeapBase+uint64(cfg.HeapSize) {
				if i := find(w); i >= 0 && !reach[i] {
					reach[i] = true
					work = append(work, i)
				}
			}
		}
	}

	// Transitive marking through object payloads.
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		scanRange(objs[i].Addr, objs[i].Size)
	}
	return reach
}

// Leaks returns the leaked allocations found so far, sorted by address.
func (d *LeakDetector) Leaks() []Leak {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Leak, 0, len(d.leaks))
	for _, l := range d.leaks {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Findings implements Analyzer.
func (d *LeakDetector) Findings() []Finding {
	out := make([]Finding, 0)
	for _, l := range d.Leaks() {
		site := Site{TID: l.TID, Stack: l.Stack}
		when := "program end"
		if l.Epoch > 0 {
			when = fmt.Sprintf("epoch %d boundary", l.Epoch)
		}
		out = append(out, Finding{
			Analyzer: "leak",
			Kind:     "memory-leak",
			Addr:     l.Addr,
			Size:     l.Size,
			Sites:    []Site{site},
			Detail: fmt.Sprintf("%d bytes at %#x allocated by %s (thread %d) unreachable at %s",
				l.Size, l.Addr, site.Func(), l.TID, when),
		})
	}
	sortFindings(out)
	return out
}
