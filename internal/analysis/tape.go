package analysis

// Tape: a segment's recorded observation stream.
//
// Segment-parallel analysis (trace.AnalyzeSegments) cannot attach the real
// analyzers to each segment replay: a race detector's vector clocks or a
// leak detector's site table are prefix state — they only mean anything if
// everything since program start has already been folded in, which would
// serialize the segments. The tape decouples the two halves: each segment
// replay runs fully parallel with only a Tape attached (cheap appends, no
// analyzer math), and a sequential fold then re-delivers the tapes in
// segment order into one analyzer chain. Because every segment boundary is
// an epoch boundary — a globally quiescent point of the recorded execution —
// the concatenation of per-segment arrival orders is a legal observation
// order of the whole execution, so the fold reproduces exactly what the
// analyzers would have seen attached to a whole-trace replay delivering
// events in that order.
//
// Stacks are the one eager decision: OnAccess receives a lazy symbolizer
// that is only valid during the callback, so the tape materializes the
// stack up front for exactly the accesses a detector would retain one for
// (plain accesses outside the thread-stack segment; see
// RaceDetector.OnAccess). Alloc/free stacks arrive already materialized.
//
// A divergence retry inside a segment rolls the replay back to the segment
// start and re-executes; OnReset truncates the tape so only the matched
// attempt's stream survives.

import (
	"sync"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/mem"
)

// tapeKind enumerates the recorded callback kinds.
type tapeKind uint8

const (
	tapeSync tapeKind = iota
	tapeCreate
	tapeExit
	tapeJoin
	tapeAlloc
	tapeFree
	tapeSyscall
	tapeAccess
)

// tapeEvent is one recorded observer callback.
type tapeEvent struct {
	kind   tapeKind
	tid    int32
	tid2   int32 // create: child; join: joinee
	op     core.SyncOp
	write  bool
	atomic bool
	addr   uint64
	size   int64  // alloc/access size, syscall number
	ret    uint64 // syscall result
	stack  []interp.StackEntry
}

// Tape records one segment replay's observer callback stream in arrival
// order for later re-delivery. It implements every data-carrying observer
// interface; epoch observers never fire offline, so it has none.
type Tape struct {
	mu     sync.Mutex
	events []tapeEvent
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Len returns the number of recorded events.
func (t *Tape) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

func (t *Tape) append(ev tapeEvent) {
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// OnReset implements core.ResetObserver: a divergence retry rolls the
// segment back to its start, so the abandoned attempt's stream is dropped.
func (t *Tape) OnReset() {
	t.mu.Lock()
	t.events = t.events[:0]
	t.mu.Unlock()
}

// OnSync implements core.SyncObserver.
func (t *Tape) OnSync(tid int32, op core.SyncOp, addr uint64) {
	t.append(tapeEvent{kind: tapeSync, tid: tid, op: op, addr: addr})
}

// OnThreadCreate implements core.ThreadObserver.
func (t *Tape) OnThreadCreate(parent, child int32) {
	t.append(tapeEvent{kind: tapeCreate, tid: parent, tid2: child})
}

// OnThreadExit implements core.ThreadObserver.
func (t *Tape) OnThreadExit(tid int32) {
	t.append(tapeEvent{kind: tapeExit, tid: tid})
}

// OnThreadJoin implements core.ThreadObserver.
func (t *Tape) OnThreadJoin(joiner, joinee int32) {
	t.append(tapeEvent{kind: tapeJoin, tid: joiner, tid2: joinee})
}

// OnAlloc implements core.AllocObserver.
func (t *Tape) OnAlloc(tid int32, addr uint64, size int64, stack []interp.StackEntry) {
	t.append(tapeEvent{kind: tapeAlloc, tid: tid, addr: addr, size: size, stack: stack})
}

// OnFree implements core.AllocObserver.
func (t *Tape) OnFree(tid int32, addr uint64, stack []interp.StackEntry) {
	t.append(tapeEvent{kind: tapeFree, tid: tid, addr: addr, stack: stack})
}

// OnSyscall implements core.SyscallObserver.
func (t *Tape) OnSyscall(tid int32, num int64, ret uint64) {
	t.append(tapeEvent{kind: tapeSyscall, tid: tid, size: num, ret: ret})
}

// OnAccess implements core.AccessObserver. The stack is materialized now —
// lazily symbolized stacks are only valid during the callback — but only
// for the accesses a detector retains one for: plain (non-atomic) accesses
// outside the thread-stack segment. Atomic and stack-slot accesses are
// recorded stackless; the consumers that see them (the profile counter, the
// race detector's atomic acquire/release path) never symbolize.
func (t *Tape) OnAccess(tid int32, addr uint64, size int, write, atomic bool,
	stack func() []interp.StackEntry) {
	ev := tapeEvent{kind: tapeAccess, tid: tid, addr: addr, size: int64(size),
		write: write, atomic: atomic}
	if !atomic && addr < mem.StackBase {
		ev.stack = stack()
	}
	t.append(ev)
}

// tapeSinks caches one analyzer's observer capabilities so Replay pays the
// interface assertions once, not per event.
type tapeSinks struct {
	sync    core.SyncObserver
	thread  core.ThreadObserver
	alloc   core.AllocObserver
	access  core.AccessObserver
	syscall core.SyscallObserver
}

// Replay re-delivers the recorded stream, in arrival order, to every
// analyzer that implements the corresponding observer interface — the
// sequential fold half of segment-parallel analysis.
func (t *Tape) Replay(analyzers []Analyzer) {
	t.mu.Lock()
	events := t.events
	t.mu.Unlock()
	sinks := make([]tapeSinks, len(analyzers))
	for i, a := range analyzers {
		sinks[i].sync, _ = a.(core.SyncObserver)
		sinks[i].thread, _ = a.(core.ThreadObserver)
		sinks[i].alloc, _ = a.(core.AllocObserver)
		sinks[i].access, _ = a.(core.AccessObserver)
		sinks[i].syscall, _ = a.(core.SyscallObserver)
	}
	for i := range events {
		ev := &events[i]
		var stackFn func() []interp.StackEntry
		if ev.kind == tapeAccess {
			stack := ev.stack
			stackFn = func() []interp.StackEntry { return stack }
		}
		for j := range sinks {
			s := &sinks[j]
			switch ev.kind {
			case tapeSync:
				if s.sync != nil {
					s.sync.OnSync(ev.tid, ev.op, ev.addr)
				}
			case tapeCreate:
				if s.thread != nil {
					s.thread.OnThreadCreate(ev.tid, ev.tid2)
				}
			case tapeExit:
				if s.thread != nil {
					s.thread.OnThreadExit(ev.tid)
				}
			case tapeJoin:
				if s.thread != nil {
					s.thread.OnThreadJoin(ev.tid, ev.tid2)
				}
			case tapeAlloc:
				if s.alloc != nil {
					s.alloc.OnAlloc(ev.tid, ev.addr, ev.size, ev.stack)
				}
			case tapeFree:
				if s.alloc != nil {
					s.alloc.OnFree(ev.tid, ev.addr, ev.stack)
				}
			case tapeSyscall:
				if s.syscall != nil {
					s.syscall.OnSyscall(ev.tid, ev.size, ev.ret)
				}
			case tapeAccess:
				if s.access != nil {
					s.access.OnAccess(ev.tid, ev.addr, int(ev.size), ev.write, ev.atomic, stackFn)
				}
			}
		}
	}
}
