package vet

// annot: the //ir: annotation grammar is itself checked. Every suppression
// the other analyzers honor must be a known verb carrying a non-empty
// reason — `//ir:wallclock epoch latency telemetry`, never a bare
// `//ir:wallclock`. An unknown verb is almost always a typo that would
// silently fail to suppress (or worse, suggest a suppression that is not
// happening), so it is diagnosed too.

// knownVerbs is the annotation vocabulary; docs/STATIC_ANALYSIS.md is the
// prose catalog.
var knownVerbs = map[string]string{
	"wallclock": "detpure: reviewed wall-clock read (telemetry, stall detection)",
	"nondet":    "detpure: reviewed nondeterminism (rand, map order)",
	"nonatomic": "atomicmix: reviewed mixed atomic/plain access",
	"unguarded": "guardedby: reviewed access without the annotated mutex",
	"noctx":     "ctxpoll: job closure whose cancellation flows elsewhere",
	"nopoll":    "ctxpoll: wait loop woken by the quiescence protocol itself",
	"racy":      "racyskip: test exercising the deliberately-racy corpus",
}

// NewAnnot returns the annotation-grammar analyzer.
func NewAnnot() *Analyzer {
	a := &Analyzer{
		Name: "annot",
		Doc:  "//ir: annotations must use a known verb and carry a reason",
	}
	a.Run = runAnnot
	return a
}

func runAnnot(pass *Pass) error {
	for _, an := range pass.Annotations() {
		if _, ok := knownVerbs[an.Verb]; !ok {
			pass.Reportf(an.Pos, "unknown annotation verb //ir:%s (known: %s)", an.Verb, verbList())
			continue
		}
		if an.Reason == "" {
			pass.Reportf(an.Pos, "annotation //ir:%s needs a reason: //ir:%s <why this site is exempt>", an.Verb, an.Verb)
		}
	}
	return nil
}

func verbList() string {
	// Stable order for deterministic diagnostics.
	order := []string{"wallclock", "nondet", "nonatomic", "unguarded", "noctx", "nopoll", "racy"}
	s := ""
	for i, v := range order {
		if i > 0 {
			s += ", "
		}
		s += v
	}
	return s
}
