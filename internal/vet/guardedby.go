package vet

// guardedby: struct fields annotated `// guarded by <mu>` may only be
// touched in functions that visibly acquire that mutex first. It is a
// lightweight, function-local discipline checker for the runtime's shadow
// and scheduler structures, not a full lockset analysis: within the
// function containing an access to s.f (guarded by mu), one of these must
// hold or the access is flagged:
//
//   - a preceding s.mu.Lock()/RLock()/TryLock() call on the same base
//     expression (defer s.mu.Unlock() placement is not checked);
//   - the function's name ends in "Locked" — the repo convention for
//     helpers whose callers hold the lock;
//   - the base is a fresh, unpublished local (declared in this function
//     from a composite literal or new(T)) — the copy-on-write idiom;
//   - the access initializes the field in a composite literal;
//   - a reviewed //ir:unguarded <reason> annotation.
//
// The guard name is a sibling field ("mu" means base.mu); a dotted guard
// ("rt.schedMu") names an absolute expression. A malformed guard target is
// itself diagnosed.

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

var guardedByRe = regexp.MustCompile(`guarded by +([A-Za-z_][A-Za-z0-9_.]*)`)

var lockMethods = map[string]bool{"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true}

// NewGuardedBy returns the guarded-by discipline analyzer.
func NewGuardedBy() *Analyzer {
	a := &Analyzer{
		Name: "guardedby",
		Doc:  "fields annotated `// guarded by <mu>` must be accessed with that mutex held",
	}
	a.Run = runGuardedBy
	return a
}

func runGuardedBy(pass *Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	inspectStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, ok := identObj(pass.Info, sel.Sel).(*types.Var)
		if !ok {
			return true
		}
		guard, guarded := guards[obj]
		if !guarded {
			return true
		}
		if okGuardedAccess(pass, sel, guard, stack) {
			return true
		}
		if pass.Allowed(sel.Sel.Pos(), "unguarded") {
			return true
		}
		pass.Reportf(sel.Sel.Pos(), "field %s is guarded by %s but this function never acquires it before the access (lock it, rename the function *Locked, or annotate //ir:unguarded <reason>)",
			obj.Name(), guard)
		return true
	})
	return nil
}

// collectGuards maps annotated field objects to their guard spec.
func collectGuards(pass *Pass) map[*types.Var]string {
	guards := map[*types.Var]string{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				text := ""
				if field.Doc != nil {
					text += field.Doc.Text() + "\n"
				}
				if field.Comment != nil {
					text += field.Comment.Text()
				}
				if !strings.Contains(text, "guarded by") {
					continue
				}
				m := guardedByRe.FindStringSubmatch(text)
				if m == nil {
					pass.Reportf(field.Pos(), "malformed guard annotation: want `// guarded by <mu>` with a field or dotted mutex name")
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.Info.Defs[name].(*types.Var); ok {
						guards[v] = m[1]
					}
				}
			}
			return true
		})
	}
	return guards
}

// okGuardedAccess decides whether one guarded access is disciplined.
func okGuardedAccess(pass *Pass, sel *ast.SelectorExpr, guard string, stack []ast.Node) bool {
	// Composite-literal initialization: T{f: v}.
	if len(stack) >= 3 {
		if kv, ok := stack[len(stack)-2].(*ast.KeyValueExpr); ok && kv.Key == sel {
			// Selectors are never composite keys; keep for symmetry.
			_ = kv
		}
	}
	body, fname := enclosingFunc(append(stack, sel))
	if strings.HasSuffix(fname, "Locked") {
		return true
	}
	if body == nil {
		return false // package-level initializer: construction
	}

	base := ast.Unparen(sel.X)
	// An undotted guard usually names a sibling field (base.mu) but may be a
	// package-level mutex; a dotted guard is an absolute expression.
	candidates := []string{guard}
	if !strings.Contains(guard, ".") {
		candidates = append(candidates, types.ExprString(base)+"."+guard)
	}

	// Fresh unpublished local?
	if id, ok := base.(*ast.Ident); ok {
		if v, ok := identObj(pass.Info, id).(*types.Var); ok && freshLocal(pass, v, body) {
			return true
		}
	}

	// A preceding acquisition of guardExpr anywhere in this function.
	held := false
	ast.Inspect(body, func(n ast.Node) bool {
		if held {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() > sel.Pos() {
			return true
		}
		cs, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !lockMethods[cs.Sel.Name] {
			return true
		}
		lockee := types.ExprString(ast.Unparen(cs.X))
		for _, want := range candidates {
			if lockee == want {
				held = true
				return false
			}
		}
		return true
	})
	return held
}

// freshLocal reports whether v is declared inside body from a composite
// literal, &composite, or new(...) — a private value not yet published.
func freshLocal(pass *Pass, v *types.Var, body *ast.BlockStmt) bool {
	if v.Pos() < body.Pos() || v.Pos() > body.End() {
		return false
	}
	fresh := false
	ast.Inspect(body, func(n ast.Node) bool {
		if fresh {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || pass.Info.Defs[id] != v {
				continue
			}
			if i >= len(as.Rhs) {
				continue
			}
			switch rhs := ast.Unparen(as.Rhs[i]).(type) {
			case *ast.CompositeLit:
				fresh = true
			case *ast.UnaryExpr:
				if _, ok := rhs.X.(*ast.CompositeLit); ok {
					fresh = true
				}
			case *ast.CallExpr:
				if fn, ok := ast.Unparen(rhs.Fun).(*ast.Ident); ok && fn.Name == "new" && isBuiltin(pass.Info, fn) {
					fresh = true
				}
			}
		}
		return true
	})
	return fresh
}
