package vet

// atomicmix: a variable or struct field accessed through sync/atomic
// anywhere in a package must be accessed atomically everywhere in that
// package — the exact shape of the shadow-table publication race the -race
// CI job caught in PR 2 (a field published behind an atomic pointer but
// read plainly on another path). Initialization inside a composite literal
// of the owning struct is exempt (the value is unpublished), and a reviewed
// mixed-access site can carry //ir:nonatomic <reason>.
//
// The check is package-scoped, which is sound for the unexported fields it
// is aimed at: they cannot be touched from outside their package. Fields of
// the typed atomic.Int32/atomic.Pointer family need no checking — the type
// system already forces atomic access — so this analyzer is about the raw
// word-sized fields sync/atomic functions take by address.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewAtomicMix returns the mixed atomic/plain access analyzer.
func NewAtomicMix() *Analyzer {
	a := &Analyzer{
		Name: "atomicmix",
		Doc:  "a field accessed with sync/atomic anywhere must be accessed atomically everywhere",
	}
	a.Run = runAtomicMix
	return a
}

func runAtomicMix(pass *Pass) error {
	// Pass 1: objects that appear as &obj arguments of sync/atomic calls,
	// plus the identifier positions of those sanctioned accesses.
	atomicObjs := map[*types.Var]token.Pos{} // first atomic use, for the message
	sanctioned := map[token.Pos]bool{}
	inspectStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeFunc(pass.Info, call)
		if f == nil || funcPkgPath(f) != "sync/atomic" || recvNamed(f) != nil {
			return true
		}
		for _, arg := range call.Args {
			un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				continue
			}
			v := fieldOrVarOf(pass.Info, un.X)
			if v == nil {
				continue
			}
			if _, seen := atomicObjs[v]; !seen {
				atomicObjs[v] = un.Pos()
			}
			// Every identifier inside the &obj expression is sanctioned
			// (base selectors included: &s.x.f sanctions s, x, and f —
			// only f is the atomic word, the rest are path steps).
			var ids []*ast.Ident
			freeIdents(un, &ids)
			for _, id := range ids {
				sanctioned[id.Pos()] = true
			}
		}
		return true
	})
	if len(atomicObjs) == 0 {
		return nil
	}

	// Pass 2: any other use of those objects is a plain access.
	inspectStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, isUse := pass.Info.Uses[id].(*types.Var)
		if !isUse {
			return true
		}
		firstAtomic, tracked := atomicObjs[obj]
		if !tracked || sanctioned[id.Pos()] {
			return true
		}
		if inOwningCompositeLit(pass, id, obj, stack) {
			return true
		}
		if pass.Allowed(id.Pos(), "nonatomic") {
			return true
		}
		pass.Reportf(id.Pos(), "%s is accessed with sync/atomic at %s but plainly here — mixed atomic/plain access races; use the atomic API or annotate //ir:nonatomic <reason>",
			obj.Name(), pass.Fset.Position(firstAtomic))
		return true
	})
	return nil
}

// inOwningCompositeLit reports whether id is the key of a composite-literal
// field initialization (T{f: v}) — writing a field of a struct value that
// is still being constructed, before publication.
func inOwningCompositeLit(pass *Pass, id *ast.Ident, obj *types.Var, stack []ast.Node) bool {
	if !obj.IsField() || len(stack) < 3 {
		return false
	}
	kv, ok := stack[len(stack)-2].(*ast.KeyValueExpr)
	if !ok || kv.Key != id {
		return false
	}
	_, ok = stack[len(stack)-3].(*ast.CompositeLit)
	return ok
}
