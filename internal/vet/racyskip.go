package vet

// racyskip: the deliberately-racy corpus contract, machine-readable. The
// repo's ground-truth racy workloads are genuine Go-level data races, so
// tests that execute them consult hostrace.Enabled and skip under
// `go test -race`. That used to be convention; this analyzer pins it both
// ways in _test.go files:
//
//   - a test (or benchmark) that skips on hostrace.Enabled must carry an
//     //ir:racy <reason> annotation in its doc comment, so the skip is a
//     reviewed statement that the workload races by design;
//   - a function annotated //ir:racy must actually consult
//     hostrace.Enabled and skip — an annotation whose guard was lost in a
//     refactor would otherwise silently put the racy workload back into
//     the -race CI job.
//
// A guard may live in the function body or one helper call deep (a
// same-package skipIfHostRace(t)-style helper).

import (
	"go/ast"
	"go/types"
	"strings"
)

// NewRacySkip returns the racy-corpus contract analyzer. hostracePkgSuffix
// identifies the hostrace package by import-path suffix.
func NewRacySkip(hostracePkgSuffix string) *Analyzer {
	a := &Analyzer{
		Name: "racyskip",
		Doc:  "tests skipping under the host race detector must be annotated //ir:racy, and vice versa",
	}
	a.Run = func(pass *Pass) error {
		runRacySkip(pass, hostracePkgSuffix)
		return nil
	}
	return a
}

func runRacySkip(pass *Pass, hostracePkgSuffix string) {
	// Index function declarations for one-level helper resolution.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					decls[obj] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		if !pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			annotated := docHasRacy(fd)
			guarded := guardsOnHostRace(pass, fd.Body, hostracePkgSuffix, decls, true)
			switch {
			case guarded && !annotated:
				pass.Reportf(fd.Name.Pos(), "%s skips under the host race detector but has no //ir:racy <reason> annotation in its doc comment — make the racy-corpus contract explicit", fd.Name.Name)
			case annotated && !guarded:
				pass.Reportf(fd.Name.Pos(), "%s is annotated //ir:racy but never consults hostrace.Enabled to skip — the -race CI job would execute the racy workload", fd.Name.Name)
			}
		}
	}
}

func docHasRacy(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, "//ir:racy") {
			return true
		}
	}
	return false
}

// guardsOnHostRace reports whether body both references hostrace.Enabled
// and calls a skip method — directly, or (when recurse) through one
// same-package helper call.
func guardsOnHostRace(pass *Pass, body *ast.BlockStmt, suffix string, decls map[*types.Func]*ast.FuncDecl, recurse bool) bool {
	enabledRef, skips := false, false
	var helpers []*ast.FuncDecl
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if n.Sel.Name != "Enabled" {
				return true
			}
			if obj := identObj(pass.Info, n.Sel); obj != nil && obj.Pkg() != nil &&
				strings.HasSuffix(obj.Pkg().Path(), suffix) {
				enabledRef = true
			}
		case *ast.CallExpr:
			if f := calleeFunc(pass.Info, n); f != nil {
				switch f.Name() {
				case "Skip", "Skipf", "SkipNow":
					skips = true
				}
				if recurse && f.Pkg() == pass.Pkg {
					if fd := decls[f]; fd != nil && fd.Body != nil {
						helpers = append(helpers, fd)
					}
				}
			}
		}
		return true
	})
	if enabledRef && skips {
		return true
	}
	if recurse {
		for _, h := range helpers {
			if guardsOnHostRace(pass, h.Body, suffix, decls, false) {
				return true
			}
		}
	}
	return false
}
