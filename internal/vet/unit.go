package vet

// The vettool side: `go vet -vettool=$(which ir-vet)` invokes the tool once
// per package with a JSON config file describing the parsed unit — file
// list, import map, and the export-data file for every dependency (the same
// protocol golang.org/x/tools/go/analysis/unitchecker speaks, implemented
// here on the standard library). The go command handles build-graph
// discovery, caching, and parallelism; we type-check the unit and run the
// suite. Facts are not exchanged — every analyzer in the suite is
// package-local — so the .vetx output is a placeholder written only because
// the protocol requires the file to exist.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// UnitConfig mirrors the vet.cfg JSON the go command writes for -vettool.
type UnitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnit executes the suite over one vet.cfg unit, printing diagnostics to
// w. It returns the process exit code: 0 clean, 1 internal error (written
// to w too), 2 diagnostics found.
func RunUnit(cfgPath string, analyzers []*Analyzer, w io.Writer) int {
	cfg, err := readUnitConfig(cfgPath)
	if err != nil {
		fmt.Fprintf(w, "ir-vet: %v\n", err)
		return 1
	}
	// Dependencies are presented facts-only; with no cross-package facts
	// in the suite there is nothing to compute, but the output file must
	// exist for the go command to cache the unit.
	if cfg.VetxOnly {
		if err := writeVetx(cfg.VetxOutput); err != nil {
			fmt.Fprintf(w, "ir-vet: %v\n", err)
			return 1
		}
		return 0
	}
	pkg, err := typecheckUnit(cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			_ = writeVetx(cfg.VetxOutput)
			return 0
		}
		fmt.Fprintf(w, "ir-vet: %v\n", err)
		return 1
	}
	diags, err := Run([]*Package{pkg}, analyzers)
	if err != nil {
		fmt.Fprintf(w, "ir-vet: %v\n", err)
		return 1
	}
	if err := writeVetx(cfg.VetxOutput); err != nil {
		fmt.Fprintf(w, "ir-vet: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(w, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func readUnitConfig(path string) (*UnitConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(UnitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if !strings.HasSuffix(path, ".cfg") {
		return nil, fmt.Errorf("%s: vet config files must end in .cfg", path)
	}
	if cfg.Compiler == "" {
		cfg.Compiler = "gc"
	}
	return cfg, nil
}

func writeVetx(path string) error {
	if path == "" {
		return nil
	}
	return os.WriteFile(path, []byte("ir-vet: no facts\n"), 0o666)
}

func typecheckUnit(cfg *UnitConfig) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, gf := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, gf, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", gf, err)
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (importing %s)", path, cfg.ImportPath)
		}
		return os.Open(file)
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, cfg.Compiler, lookup),
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	path := basePath(cfg.ImportPath)
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", cfg.ImportPath, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
