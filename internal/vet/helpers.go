package vet

// Shared AST/type-resolution helpers the analyzers build on.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// calleeFunc resolves a call expression to the *types.Func it statically
// invokes (package function or method), or nil for indirect calls,
// conversions, and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// funcPkgPath returns the defining package path of f, "" for builtins.
func funcPkgPath(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// recvNamed returns the named type of f's receiver (through pointers), or
// nil for package-level functions.
func recvNamed(f *types.Func) *types.Named {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// inspectStack walks every node in every file, handing the visitor the
// enclosing-node stack (outermost first, current node last). Returning
// false prunes the subtree.
func inspectStack(files []*ast.File, visit func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if !visit(n, stack) {
				stack = stack[:len(stack)-1]
				return false
			}
			return true
		})
	}
}

// enclosingFunc returns the innermost function (decl or literal) in stack,
// excluding the node itself, as its body block plus a printable name.
func enclosingFunc(stack []ast.Node) (body *ast.BlockStmt, name string) {
	for i := len(stack) - 2; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body, fn.Name.Name
		case *ast.FuncLit:
			return fn.Body, "func literal"
		}
	}
	return nil, ""
}

// identObj resolves an identifier to its object through both Uses and Defs.
func identObj(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// fieldOrVarOf resolves an expression that names storage — a plain
// identifier or a field selector — to its *types.Var.
func fieldOrVarOf(info *types.Info, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, _ := identObj(info, e).(*types.Var)
		return v
	case *ast.SelectorExpr:
		v, _ := identObj(info, e.Sel).(*types.Var)
		return v
	}
	return nil
}

// freeIdents appends every identifier used (not defined) under e.
func freeIdents(e ast.Node, out *[]*ast.Ident) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			*out = append(*out, id)
		}
		return true
	})
}

// posBefore reports a < b within one file.
func posBefore(a, b token.Pos) bool { return a < b }

// isBuiltin reports whether id resolves to a predeclared builtin function
// (append, delete, ...) rather than a user identifier shadowing the name.
func isBuiltin(info *types.Info, id *ast.Ident) bool {
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}
