package vet

// detpure: replay-critical packages must be deterministic. Inside the
// configured package set it flags
//
//   - wall-clock reads (time.Now/Since/Until/Sleep and timer construction)
//     unless the site carries //ir:wallclock <reason> — the reviewed
//     allowlist for telemetry and stall-detection reads;
//   - math/rand calls that consume the process-global, time-seeded source
//     (rand.New over an explicit deterministic NewSource is fine) unless
//     annotated //ir:nondet <reason>;
//   - `for range` over a map whose iteration order escapes the loop. Order
//     does not escape when every effect in the body is commutative —
//     deletes, keyed map writes, += style accumulation — or when the body
//     only appends to a slice that the function visibly sorts afterwards
//     (the repo's canonical collect-then-sort encode idiom). Anything else
//     (appends without a sort, sends, returns, plain assignments, calls)
//     is order-dependent and needs a rewrite or //ir:nondet <reason>.
//
// Test files are exempt: tests run on host time by design.

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// wallclockFuncs are the time package entry points that read the host
// clock or start host timers.
var wallclockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// globalRandExempt are the math/rand package functions that do NOT touch
// the global source: explicit-source construction.
var globalRandExempt = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// NewDetPure returns the determinism analyzer restricted to the given
// scope: package path → file basenames to check, where a nil slice means
// every file in the package. File scoping exists for packages like the
// trace codec, where the on-disk format files are replay-critical but the
// host-side fetch/cache layers legitimately read the clock for telemetry.
func NewDetPure(scope map[string][]string) *Analyzer {
	a := &Analyzer{
		Name: "detpure",
		Doc:  "forbids wall-clock reads, global randomness, and order-escaping map iteration in replay-critical packages",
	}
	a.Run = func(pass *Pass) error {
		files, ok := scope[basePath(pass.Pkg.Path())]
		if !ok {
			return nil
		}
		var only map[string]bool
		if files != nil {
			only = make(map[string]bool, len(files))
			for _, f := range files {
				only[f] = true
			}
		}
		for _, file := range pass.Files {
			if pass.IsTestFile(file.Pos()) {
				continue
			}
			if only != nil && !only[filepath.Base(pass.Fset.Position(file.Pos()).Filename)] {
				continue
			}
			runDetPure(pass, file)
		}
		return nil
	}
	return a
}

func runDetPure(pass *Pass, file *ast.File) {
	inspectStack([]*ast.File{file}, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			f := calleeFunc(pass.Info, n)
			if f == nil {
				return true
			}
			switch funcPkgPath(f) {
			case "time":
				if recvNamed(f) == nil && wallclockFuncs[f.Name()] && !pass.Allowed(n.Pos(), "wallclock") {
					pass.Reportf(n.Pos(), "call to time.%s in deterministic package %s (replay-critical code must not read the wall clock; annotate //ir:wallclock <reason> if this is telemetry or stall detection)",
						f.Name(), basePath(pass.Pkg.Path()))
				}
			case "math/rand", "math/rand/v2":
				if recvNamed(f) == nil && !globalRandExempt[f.Name()] && !pass.Allowed(n.Pos(), "nondet") {
					pass.Reportf(n.Pos(), "call to rand.%s uses the process-global random source in deterministic package %s (seed an explicit rand.New(rand.NewSource(...)) instead, or annotate //ir:nondet <reason>)",
						f.Name(), basePath(pass.Pkg.Path()))
				}
			}
		case *ast.RangeStmt:
			t := pass.Info.TypeOf(n.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if pass.Allowed(n.For, "nondet") {
				return true
			}
			encl, _ := enclosingFunc(stack)
			if mapOrderEscapes(pass, n, encl) {
				pass.Reportf(n.For, "map iteration order escapes this loop in deterministic package %s (collect and sort the keys, keep the body commutative, or annotate //ir:nondet <reason>)",
					basePath(pass.Pkg.Path()))
			}
		}
		return true
	})
}

// mapOrderEscapes reports whether the body of a map-range loop has any
// order-dependent effect. encl is the enclosing function body, used to
// look for a sort of appended-to slices after the loop.
func mapOrderEscapes(pass *Pass, rng *ast.RangeStmt, encl *ast.BlockStmt) bool {
	for _, stmt := range rng.Body.List {
		if stmtOrderEscapes(pass, stmt, rng, encl) {
			return true
		}
	}
	return false
}

func stmtOrderEscapes(pass *Pass, stmt ast.Stmt, rng *ast.RangeStmt, encl *ast.BlockStmt) bool {
	switch s := stmt.(type) {
	case *ast.EmptyStmt, *ast.BranchStmt:
		// continue/break don't themselves leak order.
		return false
	case *ast.IncDecStmt:
		return false
	case *ast.ExprStmt:
		// Only delete(m, k) is a known-commutative call.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "delete" && isBuiltin(pass.Info, id) {
				return false
			}
		}
		return true
	case *ast.AssignStmt:
		return assignOrderEscapes(pass, s, rng, encl)
	case *ast.IfStmt:
		if s.Init != nil && stmtOrderEscapes(pass, s.Init, rng, encl) {
			return true
		}
		for _, st := range s.Body.List {
			if stmtOrderEscapes(pass, st, rng, encl) {
				return true
			}
		}
		if s.Else != nil {
			if blk, ok := s.Else.(*ast.BlockStmt); ok {
				for _, st := range blk.List {
					if stmtOrderEscapes(pass, st, rng, encl) {
						return true
					}
				}
				return false
			}
			return stmtOrderEscapes(pass, s.Else, rng, encl)
		}
		return false
	case *ast.BlockStmt:
		for _, st := range s.List {
			if stmtOrderEscapes(pass, st, rng, encl) {
				return true
			}
		}
		return false
	case *ast.DeclStmt:
		return false
	default:
		// returns, sends, gos, defers, nested ranges, switches: treat as
		// order-dependent rather than reason about them.
		return true
	}
}

// assignOrderEscapes classifies one assignment inside a map-range body.
func assignOrderEscapes(pass *Pass, s *ast.AssignStmt, rng *ast.RangeStmt, encl *ast.BlockStmt) bool {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// Commutative accumulation.
		return false
	case token.DEFINE:
		// Fresh locals are order-free until used; their uses are judged
		// where they occur.
		return false
	case token.ASSIGN:
		// x = append(x, ...) is order-free iff x is visibly sorted after
		// the loop; keyed map writes m[k] = v are order-free.
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && isBuiltin(pass.Info, id) {
					if target := fieldOrVarOf(pass.Info, s.Lhs[0]); target != nil {
						return !sortedAfter(pass, target, rng, encl)
					}
				}
			}
			if idx, ok := ast.Unparen(s.Lhs[0]).(*ast.IndexExpr); ok {
				if bt := pass.Info.TypeOf(idx.X); bt != nil {
					if _, isMap := bt.Underlying().(*types.Map); isMap {
						return false
					}
				}
			}
		}
		return true
	default:
		return true
	}
}

// sortedAfter reports whether, after the range loop, the enclosing function
// passes v to a sort/slices call — the collect-then-sort idiom that makes
// an order-free append acceptable.
func sortedAfter(pass *Pass, v *types.Var, rng *ast.RangeStmt, encl *ast.BlockStmt) bool {
	if encl == nil {
		return false
	}
	found := false
	ast.Inspect(encl, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		f := calleeFunc(pass.Info, call)
		if f == nil {
			return true
		}
		if p := funcPkgPath(f); p != "sort" && p != "slices" {
			return true
		}
		var ids []*ast.Ident
		for _, arg := range call.Args {
			freeIdents(arg, &ids)
		}
		for _, id := range ids {
			if identObj(pass.Info, id) == v {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
